package uniaddr_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"testing"

	"uniaddr"
	"uniaddr/internal/workloads"
)

// TestMain routes re-exec'd dist worker processes into the worker
// entrypoint — required because tests below run the dist backend,
// which re-execs this test binary.
func TestMain(m *testing.M) {
	uniaddr.MaybeChild()
	os.Exit(m.Run())
}

// sumTo50 runs the facade's doubling task (uniaddr_test.go) for
// sum(1..50) on the given backend with default workers/seed.
func sumTo50(t *testing.T, opts ...uniaddr.Option) (uniaddr.Report, error) {
	t.Helper()
	return uniaddr.Run(dblFID, 3*8, func(e *uniaddr.Env) { e.SetU64(0, 50) }, opts...)
}

// TestFacadeOptionMatrix sweeps every backend against the obs and
// fault toggles. WithObs is honoured EVERYWHERE (virtual-time rings on
// sim, wall-clock rings on rt/dist); the sim-only knobs — cost models
// and fabric fault injection — must still be REJECTED by the real
// backends with a structured UnsupportedOptionError, never silently
// ignored.
func TestFacadeOptionMatrix(t *testing.T) {
	const want = uint64(50 * 51 / 2)
	fc := uniaddr.FaultConfig{ReadFailProb: 0.01} // fabric knob: sim only
	for _, backend := range []string{uniaddr.BackendSim, uniaddr.BackendRT, uniaddr.BackendDist} {
		for _, tc := range []struct {
			name    string
			simOnly bool
			extra   []uniaddr.Option
		}{
			{"plain", false, nil},
			{"obs", false, []uniaddr.Option{uniaddr.WithObs(true)}},
			{"costs", true, []uniaddr.Option{uniaddr.WithCosts(uniaddr.XeonCosts())}},
			{"net", true, []uniaddr.Option{uniaddr.WithNet(uniaddr.DefaultNetParams())}},
			{"fault", true, []uniaddr.Option{uniaddr.WithFault(fc)}},
			{"obs+fault", true, []uniaddr.Option{uniaddr.WithObs(true), uniaddr.WithFault(fc)}},
		} {
			t.Run(backend+"/"+tc.name, func(t *testing.T) {
				rejects := backend != uniaddr.BackendSim && tc.simOnly
				if backend == uniaddr.BackendDist && !rejects && testing.Short() {
					t.Skip("multi-process run skipped in -short mode")
				}
				opts := append([]uniaddr.Option{uniaddr.WithBackend(backend), uniaddr.WithWorkers(2)}, tc.extra...)
				rep, err := sumTo50(t, opts...)
				if rejects {
					var uo *uniaddr.UnsupportedOptionError
					if !errors.As(err, &uo) {
						t.Fatalf("got %T (%v), want *uniaddr.UnsupportedOptionError", err, err)
					}
					if uo.Backend != backend {
						t.Fatalf("error names backend %q, want %q", uo.Backend, backend)
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				if rep.Root != want {
					t.Fatalf("root = %d, want %d", rep.Root, want)
				}
				if rep.Backend != backend {
					t.Fatalf("report backend %q, want %q", rep.Backend, backend)
				}
				if tc.name == "obs" || tc.name == "obs+fault" {
					if rep.ObsEvents == 0 {
						t.Fatal("WithObs(true) recorded no events")
					}
					if rep.Obs == nil {
						t.Fatal("WithObs(true) produced no Obs digest")
					}
					wantClock := "wall-ns"
					if backend == uniaddr.BackendSim {
						wantClock = "virtual-cycles"
					}
					if rep.Obs.Clock != wantClock {
						t.Fatalf("Obs clock %q, want %q", rep.Obs.Clock, wantClock)
					}
				} else if rep.Obs != nil {
					t.Fatal("Obs digest present with observability off")
				}
			})
		}
	}
}

// TestFacadeTrace drives WithTrace on every backend and checks each
// emits a self-describing Chrome trace: valid JSON, the backend's
// clock domain, and at least one steal-category event.
func TestFacadeTrace(t *testing.T) {
	for _, tc := range []struct {
		backend string
		clock   string
	}{
		{uniaddr.BackendSim, "virtual-cycles"},
		{uniaddr.BackendRT, "wall-ns"},
		{uniaddr.BackendDist, "wall-ns"},
	} {
		t.Run(tc.backend, func(t *testing.T) {
			if tc.backend == uniaddr.BackendDist && testing.Short() {
				t.Skip("multi-process run skipped in -short mode")
			}
			var buf bytes.Buffer
			rep, err := sumTo50(t,
				uniaddr.WithBackend(tc.backend), uniaddr.WithWorkers(2),
				uniaddr.WithTrace(&buf))
			if err != nil {
				t.Fatal(err)
			}
			// WithTrace implies WithObs.
			if rep.Obs == nil {
				t.Fatal("traced run produced no Obs digest")
			}
			var trace struct {
				ClockDomain string                   `json:"clockDomain"`
				TraceEvents []map[string]interface{} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
				t.Fatalf("trace not valid JSON: %v", err)
			}
			if trace.ClockDomain != tc.clock {
				t.Fatalf("clockDomain %q, want %q", trace.ClockDomain, tc.clock)
			}
			if len(trace.TraceEvents) == 0 {
				t.Fatal("empty trace")
			}
		})
	}
}

// TestFacadeShimEquivalence pins the deprecated shim to the new entry
// point: RunConfig(DefaultConfig(n), ...) and Run(..., WithBackend(sim),
// WithWorkers(n), WithSeed(s)) must drive byte-identical simulations —
// same root, same counters, same virtual clock.
func TestFacadeShimEquivalence(t *testing.T) {
	const workers, seed = 6, uint64(7)
	cfg := uniaddr.DefaultConfig(workers)
	cfg.Seed = seed
	//lint:ignore SA1019 the test exercises the deprecated shim on purpose
	oldRoot, m, err := uniaddr.RunConfig(cfg, dblFID, 3*8, func(e *uniaddr.Env) { e.SetU64(0, 50) })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sumTo50(t, uniaddr.WithWorkers(workers), uniaddr.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root != oldRoot {
		t.Fatalf("roots diverge: shim %d, options %d", oldRoot, rep.Root)
	}
	st := m.TotalStats()
	pairs := []struct {
		name     string
		old, new uint64
	}{
		{"tasks", st.TasksExecuted, rep.Tasks},
		{"spawns", st.Spawns, rep.Spawns},
		{"suspends", st.Suspends, rep.Suspends},
		{"steal_attempts", st.StealAttempts, rep.StealAttempts},
		{"steals_ok", st.StealsOK, rep.StealsOK},
		{"bytes_stolen", st.BytesStolen, rep.BytesStolen},
		{"virtual_cycles", m.ElapsedCycles(), rep.VirtualCycles},
	}
	for _, p := range pairs {
		if p.old != p.new {
			t.Errorf("%s diverges: shim %d, options %d", p.name, p.old, p.new)
		}
	}
}

// TestFacadeDistSmoke runs the dist backend through the public facade:
// real worker processes, cross-process steals, unified Report.
func TestFacadeDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	rep, err := sumTo50(t,
		uniaddr.WithBackend(uniaddr.BackendDist), uniaddr.WithWorkers(3), uniaddr.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(50 * 51 / 2); rep.Root != want {
		t.Fatalf("root = %d, want %d", rep.Root, want)
	}
	if rep.Backend != uniaddr.BackendDist || rep.Workers != 3 {
		t.Fatalf("report attribution: backend=%q workers=%d", rep.Backend, rep.Workers)
	}
	if rep.WallNS <= 0 {
		t.Fatalf("dist run reported wall time %d ns", rep.WallNS)
	}
	if rep.VirtualCycles != 0 {
		t.Fatal("dist run reported virtual time")
	}
}

// TestFacadeRTBackend runs the rt backend through the facade.
func TestFacadeRTBackend(t *testing.T) {
	rep, err := sumTo50(t, uniaddr.WithBackend(uniaddr.BackendRT), uniaddr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(50 * 51 / 2); rep.Root != want {
		t.Fatalf("root = %d, want %d", rep.Root, want)
	}
	if rep.WallNS <= 0 {
		t.Fatalf("rt run reported wall time %d ns", rep.WallNS)
	}
}

// TestFacadeBadOptions pins the error surface: unknown backends and
// nonsense worker counts are descriptive errors, not panics.
func TestFacadeBadOptions(t *testing.T) {
	if _, err := sumTo50(t, uniaddr.WithBackend("quantum")); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := sumTo50(t, uniaddr.WithWorkers(0)); err == nil {
		t.Fatal("0 workers accepted")
	}
}

// TestFacadeReportJSON pins the Report wire shape: canonical field
// names present, backend-irrelevant fields omitted.
func TestFacadeReportJSON(t *testing.T) {
	rep, err := sumTo50(t, uniaddr.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"backend", "workers", "root_result", "tasks_executed", "virtual_cycles"} {
		if _, ok := m[key]; !ok {
			t.Errorf("report JSON missing %q: %s", key, b)
		}
	}
	if _, ok := m["wall_ns"]; ok {
		t.Error("sim report carries wall_ns")
	}
}

// TestFacadeFaultKnobClasses pins the per-knob-class screening: each
// backend honours the fault knob classes it can model and rejects the
// rest with an UnsupportedOptionError NAMING the offending knob.
func TestFacadeFaultKnobClasses(t *testing.T) {
	const want = uint64(50 * 51 / 2)
	stealKnobs := uniaddr.FaultConfig{StealClaimFailProb: 0.05, StealCopyFailProb: 0.02}
	ctlKnobs := uniaddr.FaultConfig{CtlDropProb: 0.1}
	simKnobs := uniaddr.FaultConfig{ReadFailProb: 0.01}

	rejected := func(t *testing.T, backend string, fc uniaddr.FaultConfig, knob string) {
		t.Helper()
		_, err := sumTo50(t, uniaddr.WithBackend(backend), uniaddr.WithWorkers(2), uniaddr.WithFault(fc))
		var uo *uniaddr.UnsupportedOptionError
		if !errors.As(err, &uo) {
			t.Fatalf("%s + %s: got %T (%v), want *uniaddr.UnsupportedOptionError", backend, knob, err, err)
		}
		if uo.Option != "WithFault."+knob {
			t.Fatalf("%s: error names %q, want %q", backend, uo.Option, "WithFault."+knob)
		}
	}
	// Wrong-class knobs are rejected by name.
	rejected(t, uniaddr.BackendSim, stealKnobs, "StealClaimFailProb")
	rejected(t, uniaddr.BackendSim, ctlKnobs, "CtlDropProb")
	rejected(t, uniaddr.BackendRT, ctlKnobs, "CtlDropProb")
	rejected(t, uniaddr.BackendRT, simKnobs, "ReadFailProb")
	rejected(t, uniaddr.BackendDist, simKnobs, "ReadFailProb")

	// Right-class knobs run for real: rt honours steal faults and
	// reports the resilience counters through the unified Report.
	rep, err := sumTo50(t, uniaddr.WithBackend(uniaddr.BackendRT), uniaddr.WithWorkers(4), uniaddr.WithFault(stealKnobs))
	if err != nil {
		t.Fatalf("rt rejected its own steal knobs: %v", err)
	}
	if rep.Root != want {
		t.Fatalf("rt faulted run: root %d, want %d", rep.Root, want)
	}

	if testing.Short() {
		t.Skip("dist knob acceptance skipped in -short mode")
	}
	both := stealKnobs
	both.CtlDropProb = 0.1
	both.CtlTruncProb = 0.05
	rep, err = sumTo50(t, uniaddr.WithBackend(uniaddr.BackendDist), uniaddr.WithWorkers(2), uniaddr.WithFault(both))
	if err != nil {
		t.Fatalf("dist rejected steal+ctl knobs: %v", err)
	}
	if rep.Root != want {
		t.Fatalf("dist faulted run: root %d, want %d", rep.Root, want)
	}
}

// TestFacadeScalingKnobs covers the ISSUE-9 tuning surface: WithGrain
// works on every backend (granularity is a workload property), while
// the steal-transport knobs — WithStealBatch, WithTierGroup — are
// honoured by the real backends and rejected by sim, whose steal model
// is single-entry and whose victim order is flat.
func TestFacadeScalingKnobs(t *testing.T) {
	spec := workloads.Fib(16, 0)
	run := func(opts ...uniaddr.Option) (uniaddr.Report, error) {
		return uniaddr.Run(spec.Fid, spec.Locals, spec.Init, opts...)
	}

	for _, backend := range []string{uniaddr.BackendSim, uniaddr.BackendRT} {
		for _, grain := range []uint64{4, uniaddr.GrainAuto} {
			rep, err := run(uniaddr.WithBackend(backend), uniaddr.WithWorkers(2), uniaddr.WithGrain(grain))
			if err != nil {
				t.Fatalf("%s grain=%d: %v", backend, grain, err)
			}
			if rep.Root != spec.Expected {
				t.Fatalf("%s grain=%d: root %d, want %d", backend, grain, rep.Root, spec.Expected)
			}
		}
	}

	// Real backend honours the transport knobs; single-entry mode must
	// keep every batch at width 1.
	rep, err := run(uniaddr.WithBackend(uniaddr.BackendRT), uniaddr.WithWorkers(4),
		uniaddr.WithStealBatch(1), uniaddr.WithTierGroup(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Root != spec.Expected {
		t.Fatalf("rt batch=1: root %d, want %d", rep.Root, spec.Expected)
	}
	if rep.StealBatches != rep.StealsOK {
		t.Fatalf("WithStealBatch(1) moved %d entries in %d round trips — batching not bounded",
			rep.StealsOK, rep.StealBatches)
	}

	// Sim rejects them with the structured error.
	for _, opt := range []uniaddr.Option{uniaddr.WithStealBatch(1), uniaddr.WithTierGroup(2)} {
		var uo *uniaddr.UnsupportedOptionError
		if _, err := run(uniaddr.WithBackend(uniaddr.BackendSim), opt); !errors.As(err, &uo) {
			t.Fatalf("sim accepted a steal-transport knob (err=%v)", err)
		}
	}
}
