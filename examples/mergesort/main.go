// MergeSort example: sort an array block-distributed over the global
// heap with a fork-join mergesort, then verify the result element by
// element. Leaves sort locally; interior tasks merge through global
// references, so element traffic crosses the fabric whenever a task was
// stolen away from its data.
//
//	go run ./examples/mergesort -elems 4096 -workers 16
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

func main() {
	elems := flag.Uint64("elems", 4096, "array elements")
	chunk := flag.Uint64("chunk", 64, "leaf sort size")
	workers := flag.Int("workers", 16, "simulated worker processes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	spec := workloads.MergeSort(*elems, *chunk, *workers)
	cfg := uniaddr.DefaultConfig(*workers)
	cfg.Seed = *seed
	m, _, err := spec.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	if err := workloads.VerifySorted(m, *elems, *chunk); err != nil {
		fmt.Fprintln(os.Stderr, "VALIDATION FAILED:", err)
		os.Exit(1)
	}
	st := m.TotalStats()
	var rdma uint64
	for _, w := range m.Workers() {
		n := w.NetStats()
		rdma += n.BytesRead + n.BytesWritten
	}
	fmt.Printf("sorted %d distributed elements — verified in order and a permutation of the input\n", *elems)
	fmt.Printf("simulated time %.4f ms on %d workers\n", m.ElapsedSeconds()*1e3, *workers)
	fmt.Printf("tasks %d, steals %d, fabric traffic %s (array is %s)\n",
		st.TasksExecuted, st.StealsOK, stats.HumanBytes(rdma), stats.HumanBytes(*elems*8))
}
