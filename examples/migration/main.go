// Migration example: demonstrates THE uni-address property — a pointer
// into a thread's own stack stays valid after the thread's raw bytes
// migrate to another process, because the stack occupies the same
// virtual address everywhere (paper §5.1).
//
//	go run ./examples/migration
//
// A "pointerful" task builds a small linked list *inside its own frame*
// using simulated virtual addresses, spawns a slow child so its
// continuation gets stolen, and after migrating walks the list through
// those addresses and checks every node. Under uni-address this works
// by construction; the program prints where the thread ran before and
// after, and the verified pointer chain.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
)

// Frame layout:
//
//	slot 0: head pointer (simulated VA of node 0, inside this frame)
//	slot 1: child handle
//	slot 2: worker rank before migration
//	slots 4..4+3*nodes: nodes, each {value u64, next VA u64, pad}
const (
	slHead    = 0
	slChild   = 1
	slRank    = 2
	nodeSlots = 3
	numNodes  = 5
	locals    = (4 + nodeSlots*numNodes) * 8
)

var (
	migFID  uniaddr.FuncID
	slowFID uniaddr.FuncID
	verbose = flag.Bool("v", false, "print every pointer dereference")
)

func init() {
	migFID = uniaddr.Register("pointerful", pointerful)
	slowFID = uniaddr.Register("slow-child", func(e *uniaddr.Env) uniaddr.Status {
		e.Work(300_000) // long enough for the idle worker to steal our parent
		e.ReturnU64(1)
		return uniaddr.Done
	})
}

func nodeSlot(i int) int { return 4 + i*nodeSlots }

func pointerful(e *uniaddr.Env) uniaddr.Status {
	switch e.RP() {
	case 0:
		// Build a linked list in our own frame, chained by simulated
		// virtual addresses (intra-stack pointers).
		for i := 0; i < numNodes; i++ {
			e.SetU64(nodeSlot(i), uint64((i+1)*111)) // value
			if i+1 < numNodes {
				e.SetPtr(nodeSlot(i)+1, e.LocalAddr(nodeSlot(i+1)*8))
			} else {
				e.SetPtr(nodeSlot(i)+1, 0)
			}
		}
		e.SetPtr(slHead, e.LocalAddr(nodeSlot(0)*8))
		e.SetU64(slRank, uint64(e.Worker().Rank()))
		fmt.Printf("built %d-node list at VA %#x on worker %d\n",
			numNodes, e.PtrAt(slHead), e.Worker().Rank())
		if !e.Spawn(1, slChild, slowFID, 8, nil) {
			return uniaddr.Unwound // stolen mid-spawn: resumes at case 1
		}
		fallthrough
	case 1:
		before := int(e.U64(slRank))
		after := e.Worker().Rank()
		if after != before {
			fmt.Printf("continuation STOLEN: migrated from worker %d to worker %d "+
				"(stack bytes moved by one-sided RDMA READ, same VA)\n", before, after)
		} else {
			fmt.Printf("continuation was not stolen (still on worker %d); "+
				"try -v or rerun — the walk below still validates\n", before)
		}
		// Walk the list through the stored simulated addresses. The
		// addresses were created before migration; uni-address
		// guarantees they still resolve inside this frame.
		va := e.PtrAt(slHead)
		sum := uint64(0)
		count := 0
		base := e.LocalAddr(0)
		for va != 0 {
			off := int(va - base)
			slot := off / 8
			val := e.U64(slot)
			next := e.PtrAt(slot + 1)
			if *verbose {
				fmt.Printf("  node @ %#x: value=%d next=%#x\n", va, val, next)
			}
			sum += val
			count++
			va = next
		}
		want := uint64(0)
		for i := 0; i < numNodes; i++ {
			want += uint64((i + 1) * 111)
		}
		if count != numNodes || sum != want {
			fmt.Fprintf(os.Stderr, "POINTER CHAIN BROKEN: %d nodes, sum %d (want %d, %d)\n",
				count, sum, numNodes, want)
			os.Exit(1)
		}
		fmt.Printf("walked %d nodes through intra-stack pointers after migration: sum=%d ✓\n",
			count, sum)
		e.SetU64(3, sum) // stash for after the join
		fallthrough
	case 2:
		// The join gets its own resume point: a miss suspends us and the
		// retry re-enters here, not at the printing code above.
		if _, ok := e.Join(2, e.HandleAt(slChild)); !ok {
			return uniaddr.Unwound
		}
		e.ReturnU64(e.U64(3))
		return uniaddr.Done
	}
	panic("bad resume point")
}

func main() {
	flag.Parse()
	// Node topology is simulator-only surface, so this example uses the
	// NewMachine escape hatch rather than uniaddr.Run's options.
	cfg := uniaddr.DefaultConfig(2)
	cfg.WorkersPerNode = 1 // two nodes: the steal crosses the fabric
	m, err := uniaddr.NewMachine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "machine: ", err)
		os.Exit(1)
	}
	res, err := m.Run(migFID, locals, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	st := m.TotalStats()
	fmt.Printf("result=%d; steals=%d; stack bytes migrated=%d\n",
		res, st.StealsOK, st.BytesStolen)
}
