// Quickstart: fork-join fib on a simulated uni-address cluster.
//
// Run with:
//
//	go run ./examples/quickstart -n 20 -workers 30
//
// The program registers a fib task, runs it on an FX10-flavoured
// simulated machine, and reports the result plus what the runtime did
// to balance the load: one-sided steals, migrated stack bytes,
// suspensions, and the peak uni-address region usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
)

// fib's frame layout: slot 0 = n, slots 1–2 = child handles,
// slot 3 = first child's result.
const fibLocals = 4 * 8

var fibFID uniaddr.FuncID

func init() {
	fibFID = uniaddr.Register("fib", fibTask)
}

func fibTask(e *uniaddr.Env) uniaddr.Status {
	switch e.RP() {
	case 0:
		n := e.I64(0)
		if n < 2 {
			e.ReturnI64(n)
			return uniaddr.Done
		}
		// Child-first spawn: fib(n-1) runs immediately; our
		// continuation (resume point 1) becomes stealable.
		if !e.Spawn(1, 1, fibFID, fibLocals, func(c *uniaddr.Env) { c.SetI64(0, n-1) }) {
			return uniaddr.Unwound // we migrated; unwind this worker
		}
		fallthrough
	case 1:
		n := e.I64(0)
		if !e.Spawn(2, 2, fibFID, fibLocals, func(c *uniaddr.Env) { c.SetI64(0, n-2) }) {
			return uniaddr.Unwound
		}
		fallthrough
	case 2:
		r1, ok := e.Join(2, e.HandleAt(1))
		if !ok {
			return uniaddr.Unwound // suspended; we resume at case 2
		}
		e.SetU64(3, r1)
		fallthrough
	case 3:
		r2, ok := e.Join(3, e.HandleAt(2))
		if !ok {
			return uniaddr.Unwound
		}
		e.ReturnU64(e.U64(3) + r2)
		return uniaddr.Done
	}
	panic("fib: bad resume point")
}

func main() {
	n := flag.Int64("n", 20, "fib argument")
	workers := flag.Int("workers", 30, "simulated worker processes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	cfg := uniaddr.DefaultConfig(*workers)
	cfg.Seed = *seed
	res, m, err := uniaddr.Run(cfg, fibFID, fibLocals, func(e *uniaddr.Env) { e.SetI64(0, *n) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	st := m.TotalStats()
	fmt.Printf("fib(%d) = %d\n", *n, res)
	fmt.Printf("simulated time: %.3f ms on %d workers (%d nodes)\n",
		m.ElapsedSeconds()*1e3, *workers, (*workers+14)/15)
	fmt.Printf("tasks executed: %d (spawns %d)\n", st.TasksExecuted, st.Spawns)
	fmt.Printf("steals: %d ok / %d attempts, %d stack bytes migrated one-sidedly\n",
		st.StealsOK, st.StealAttempts, st.BytesStolen)
	fmt.Printf("suspensions: %d (join misses), wait-queue resumes: %d\n",
		st.Suspends, st.ResumesWait)
	fmt.Printf("peak uni-address region usage: %d bytes (region: %d)\n",
		m.MaxStackUsage(), cfg.UniSize)
}
