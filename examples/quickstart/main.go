// Quickstart: fork-join fib through the backend-neutral facade.
//
// Run with:
//
//	go run ./examples/quickstart -n 20 -workers 30
//	go run ./examples/quickstart -n 28 -workers 4 -backend rt
//	go run ./examples/quickstart -n 28 -workers 4 -backend dist
//
// The program registers a fib task once and runs it unchanged on the
// chosen backend — the FX10-flavoured simulator (default), real
// goroutines (rt), or one OS process per worker sharing a same-VA
// memory segment (dist) — then reports the unified uniaddr.Report:
// one-sided steals, migrated stack bytes, suspensions, peak
// uni-address region usage.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
)

// fib's frame layout: slot 0 = n, slots 1–2 = child handles,
// slot 3 = first child's result.
const fibLocals = 4 * 8

var fibFID uniaddr.FuncID

func init() {
	fibFID = uniaddr.Register("fib", fibTask)
}

func fibTask(e *uniaddr.Env) uniaddr.Status {
	switch e.RP() {
	case 0:
		n := e.I64(0)
		if n < 2 {
			e.ReturnI64(n)
			return uniaddr.Done
		}
		// Child-first spawn: fib(n-1) runs immediately; our
		// continuation (resume point 1) becomes stealable.
		if !e.Spawn(1, 1, fibFID, fibLocals, func(c *uniaddr.Env) { c.SetI64(0, n-1) }) {
			return uniaddr.Unwound // we migrated; unwind this worker
		}
		fallthrough
	case 1:
		n := e.I64(0)
		if !e.Spawn(2, 2, fibFID, fibLocals, func(c *uniaddr.Env) { c.SetI64(0, n-2) }) {
			return uniaddr.Unwound
		}
		fallthrough
	case 2:
		r1, ok := e.Join(2, e.HandleAt(1))
		if !ok {
			return uniaddr.Unwound // suspended; we resume at case 2
		}
		e.SetU64(3, r1)
		fallthrough
	case 3:
		r2, ok := e.Join(3, e.HandleAt(2))
		if !ok {
			return uniaddr.Unwound
		}
		e.ReturnU64(e.U64(3) + r2)
		return uniaddr.Done
	}
	panic("fib: bad resume point")
}

func main() {
	// MaybeChild must run first: the dist backend re-execs this binary
	// for its worker processes.
	uniaddr.MaybeChild()
	n := flag.Int64("n", 20, "fib argument")
	workers := flag.Int("workers", 30, "workers (simulated processes, threads, or OS processes)")
	seed := flag.Uint64("seed", 1, "scheduling seed")
	backend := flag.String("backend", uniaddr.BackendSim, "execution backend: sim | rt | dist")
	flag.Parse()

	rep, err := uniaddr.Run(fibFID, fibLocals, func(e *uniaddr.Env) { e.SetI64(0, *n) },
		uniaddr.WithBackend(*backend),
		uniaddr.WithWorkers(*workers),
		uniaddr.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	fmt.Printf("fib(%d) = %d\n", *n, rep.Root)
	if rep.Backend == uniaddr.BackendSim {
		fmt.Printf("simulated time: %.3f ms on %d workers (%d nodes)\n",
			rep.VirtualSeconds*1e3, rep.Workers, (rep.Workers+14)/15)
	} else {
		fmt.Printf("wall time: %.3f ms on %d %s workers\n",
			float64(rep.WallNS)/1e6, rep.Workers, rep.Backend)
	}
	fmt.Printf("tasks executed: %d (spawns %d)\n", rep.Tasks, rep.Spawns)
	fmt.Printf("steals: %d ok / %d attempts, %d stack bytes migrated one-sidedly\n",
		rep.StealsOK, rep.StealAttempts, rep.BytesStolen)
	fmt.Printf("suspensions: %d (join misses)\n", rep.Suspends)
	fmt.Printf("peak uni-address region usage: %d bytes\n", rep.MaxStackUsed)
}
