// Fig. 1, executable: the paper opens by contrasting Fibonacci in the
// "atomic tasks" model (explicit continuation passing, Cilk-NOW style)
// against the fork-join model. This example runs BOTH on identical
// simulated machines and prints what the contortion costs: the atomic
// version allocates a heap continuation record per internal node and
// moves every intermediate value through the global heap, while the
// fork-join version keeps everything in the migrating stack.
//
//	go run ./examples/fig1 -n 18 -workers 12
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
	"uniaddr/internal/atomictasks"
	"uniaddr/internal/workloads"
)

func main() {
	n := flag.Uint64("n", 18, "fib argument")
	workers := flag.Int("workers", 12, "simulated worker processes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	// Fork-join (Fig. 1 right): four lines of logic, state in the stack.
	fj := workloads.Fib(*n, 0)
	cfg := uniaddr.DefaultConfig(*workers)
	cfg.Seed = *seed
	mFJ, resFJ, err := fj.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fork-join run failed:", err)
		os.Exit(1)
	}

	// Atomic tasks (Fig. 1 left): continuation records + send_argument.
	cfg2 := uniaddr.DefaultConfig(*workers)
	cfg2.Seed = *seed
	resAT, mAT, err := atomictasks.RunFib(cfg2, *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atomic-tasks run failed:", err)
		os.Exit(1)
	}

	if resFJ != resAT {
		fmt.Fprintf(os.Stderr, "MODELS DISAGREE: fork-join %d, atomic %d\n", resFJ, resAT)
		os.Exit(1)
	}
	fmt.Printf("fib(%d) = %d under both models\n", *n, resFJ)

	stFJ, stAT := mFJ.TotalStats(), mAT.TotalStats()
	var rdmaFJ, rdmaAT uint64
	for i, w := range mFJ.Workers() {
		nf := w.NetStats()
		rdmaFJ += nf.BytesRead + nf.BytesWritten
		na := mAT.Workers()[i].NetStats()
		rdmaAT += na.BytesRead + na.BytesWritten
	}
	fmt.Printf("\n%-22s %15s %15s\n", "", "fork-join", "atomic tasks")
	fmt.Printf("%-22s %15d %15d\n", "tasks executed", stFJ.TasksExecuted, stAT.TasksExecuted)
	fmt.Printf("%-22s %15.3f %15.3f\n", "simulated ms", mFJ.ElapsedSeconds()*1e3, mAT.ElapsedSeconds()*1e3)
	fmt.Printf("%-22s %15d %15d\n", "fabric bytes", rdmaFJ, rdmaAT)
	fmt.Printf("%-22s %15d %15d\n", "steals", stFJ.StealsOK, stAT.StealsOK)
	fmt.Println("\n(the paper's point, measured: the atomic model pays a heap record and")
	fmt.Println(" heap traffic per synchronisation, and the code is the shape of Fig. 1 left)")
}
