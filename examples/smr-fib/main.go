// Native shared-memory baseline: fib on the real (non-simulated)
// work-stealing pool in internal/smr — the role MassiveThreads/Cilk
// play in the paper's Table 2, here executing on actual OS threads.
//
//	go run ./examples/smr-fib -n 32 -workers 4
package main

import (
	"flag"
	"fmt"
	"time"

	"uniaddr/internal/smr"
)

func fib(w *smr.Worker, n, cutoff int) int {
	if n < 2 {
		return n
	}
	if n < cutoff {
		return fibSeq(n)
	}
	f1 := smr.Spawn(w, func(w *smr.Worker) int { return fib(w, n-1, cutoff) })
	r2 := fib(w, n-2, cutoff)
	return smr.Join(w, f1) + r2
}

func fibSeq(n int) int {
	if n < 2 {
		return n
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func main() {
	n := flag.Int("n", 30, "fib argument")
	workers := flag.Int("workers", 0, "pool size (0 = GOMAXPROCS)")
	cutoff := flag.Int("cutoff", 16, "serial cutoff")
	flag.Parse()

	pool := smr.NewPool(*workers)
	defer pool.Close()

	start := time.Now()
	got := smr.Run(pool, func(w *smr.Worker) int { return fib(w, *n, *cutoff) })
	elapsed := time.Since(start)

	want := fibSeq(*n)
	status := "ok"
	if got != want {
		status = fmt.Sprintf("MISMATCH (want %d)", want)
	}
	fmt.Printf("fib(%d) = %d [%s]\n", *n, got, status)
	fmt.Printf("wall time %v on %d workers; %d tasks spawned, %d steals\n",
		elapsed, pool.Size(), pool.Spawns(), pool.Steals())
	if pool.Spawns() > 0 {
		fmt.Printf("≈%v per spawned task\n", elapsed/time.Duration(pool.Spawns()))
	}
}
