// GlobalSum example: a PGAS mini-application on the simulated cluster.
// An array is block-distributed over every process's pinned global-heap
// segment (the global address space library of §5.1); a fork-join task
// tree sums it, dereferencing global references that turn into
// one-sided RDMA READs whenever the executing worker does not own the
// block — including when a steal moved the task away from its data.
//
//	go run ./examples/globalsum -elems 20000 -workers 30 -chunk 64
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

func main() {
	elems := flag.Uint64("elems", 20000, "array elements (uint64)")
	chunk := flag.Uint64("chunk", 64, "elements per leaf task")
	workers := flag.Int("workers", 30, "simulated worker processes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	spec := workloads.GlobalSum(*elems, *chunk, *workers)
	cfg := uniaddr.DefaultConfig(*workers)
	cfg.Seed = *seed
	m, res, err := spec.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	if res != spec.Expected {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: %d != %d\n", res, spec.Expected)
		os.Exit(1)
	}
	st := m.TotalStats()
	var rdmaRead uint64
	for _, w := range m.Workers() {
		rdmaRead += w.NetStats().BytesRead
	}
	fmt.Printf("sum of %d distributed elements = %d (validated)\n", *elems, res)
	fmt.Printf("simulated time %.4f ms on %d workers → %s elems/s\n",
		m.ElapsedSeconds()*1e3, *workers, stats.HumanCount(float64(*elems)/m.ElapsedSeconds()))
	fmt.Printf("array bytes: %s; one-sided bytes read: %s (global-ref derefs + steals)\n",
		stats.HumanBytes(*elems*8), stats.HumanBytes(rdmaRead))
	fmt.Printf("tasks %d, steals %d, suspensions %d\n",
		st.TasksExecuted, st.StealsOK, st.Suspends)
}
