// NQueens example: BOTS-style NQueens (§6.1) run under BOTH schemes —
// uni-address and the iso-address baseline — on the same simulated
// machine, printing the side-by-side cost of thread migration.
//
//	go run ./examples/nqueens -n 10 -workers 30
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

func main() {
	n := flag.Uint64("n", 10, "board size N")
	work := flag.Uint64("work", 100, "cycles per placement attempt")
	workers := flag.Int("workers", 30, "simulated worker processes")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	spec := workloads.NQueens(*n, *work)
	wantSol, wantNodes := workloads.UnpackNQ(spec.Expected)
	fmt.Printf("NQueens N=%d — sequential reference: %d solutions, %d placements\n",
		*n, wantSol, wantNodes)

	for _, scheme := range []uniaddr.SchemeKind{uniaddr.SchemeUni, uniaddr.SchemeIso} {
		cfg := uniaddr.DefaultConfig(*workers)
		cfg.Scheme = scheme
		cfg.Seed = *seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s run failed: %v\n", scheme, err)
			os.Exit(1)
		}
		sol, nodes := workloads.UnpackNQ(res)
		if sol != wantSol || nodes != wantNodes {
			fmt.Fprintf(os.Stderr, "%s VALIDATION FAILED: (%d,%d) != (%d,%d)\n",
				scheme, sol, nodes, wantSol, wantNodes)
			os.Exit(1)
		}
		st := m.TotalStats()
		fmt.Printf("\n%s:\n", scheme)
		fmt.Printf("  validated %d solutions in %.4f simulated seconds (%s placements/s)\n",
			sol, m.ElapsedSeconds(), stats.HumanCount(float64(nodes)/m.ElapsedSeconds()))
		fmt.Printf("  steals %d, migrated %s of board-carrying stacks\n",
			st.StealsOK, stats.HumanBytes(st.BytesStolen))
		switch scheme {
		case uniaddr.SchemeUni:
			fmt.Printf("  peak uni-address usage %d B; per-process VA reserved %s\n",
				m.MaxStackUsage(), stats.HumanBytes(m.MaxReservedBytes()))
		default:
			fmt.Printf("  page faults %d; per-process VA reserved %s (grows with machine size)\n",
				st.PageFaults, stats.HumanBytes(m.MaxReservedBytes()))
		}
	}
}
