// UTS example: the paper's Unbalanced Tree Search benchmark (§6.1) on
// the simulated cluster, with the per-node validation the paper's
// authors get from the UTS reference implementation.
//
//	go run ./examples/uts -depth 12 -workers 60 -seed 1
//
// The tree is derived from a splittable SHA-1 hash (any process can
// expand any subtree), children follow a truncated geometric
// distribution with a linearly decreasing mean (-t 1 -b 4 -a 3), and
// the child loop is binarised so each task spawns zero or two subtasks.
package main

import (
	"flag"
	"fmt"
	"os"

	"uniaddr"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

func main() {
	depth := flag.Uint64("depth", 12, "tree cutoff depth (-d)")
	b0 := flag.Uint64("b0", workloads.DefaultUTSB0, "root branching factor (-b)")
	seed := flag.Uint64("seed", 1, "tree seed (-r)")
	work := flag.Uint64("work", 400, "cycles of simulated hashing per node")
	workers := flag.Int("workers", 60, "simulated worker processes")
	iso := flag.Bool("iso", false, "use the iso-address baseline scheme")
	flag.Parse()

	spec := workloads.UTS(*seed, *depth, *b0, *work)
	fmt.Printf("UTS: d=%d b0=%d seed=%d — sequential reference: %d nodes\n",
		*depth, *b0, *seed, spec.Expected)

	cfg := uniaddr.DefaultConfig(*workers)
	if *iso {
		cfg.Scheme = uniaddr.SchemeIso
	}
	m, res, err := spec.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "run failed:", err)
		os.Exit(1)
	}
	if res != spec.Expected {
		fmt.Fprintf(os.Stderr, "VALIDATION FAILED: parallel %d != sequential %d\n", res, spec.Expected)
		os.Exit(1)
	}
	st := m.TotalStats()
	sec := m.ElapsedSeconds()
	fmt.Printf("validated: %d nodes on %d workers (%s)\n", res, *workers, cfg.Scheme)
	fmt.Printf("simulated time %.4fs → %s nodes/s\n", sec, stats.HumanCount(float64(res)/sec))
	fmt.Printf("steals %d/%d, suspensions %d, stack bytes migrated %s\n",
		st.StealsOK, st.StealAttempts, st.Suspends, stats.HumanBytes(st.BytesStolen))
	if !*iso {
		fmt.Printf("peak uni-address usage: %d bytes (paper @ d=18: 147,392 B)\n", m.MaxStackUsage())
	} else {
		fmt.Printf("iso-address page faults: %d (21K cycles each)\n", st.PageFaults)
	}
}
