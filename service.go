package uniaddr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/obs"
	"uniaddr/internal/rt"
)

// Service is a worker pool that outlives jobs. Where Run builds a
// world, executes one root task and tears everything down, a Service
// keeps its workers alive between submissions and multiplexes many
// task trees over them:
//
//	svc, err := uniaddr.NewService(
//		uniaddr.ServiceBackend(uniaddr.BackendRT),
//		uniaddr.ServiceWorkers(4))
//	job, err := svc.Submit(ctx, fid, localsLen, init)
//	rep, err := job.Wait()
//	...
//	err = svc.Close()
//
// On the rt backend the pool is REAL: one set of arenas, deques and
// record tables serves every job, workers park on the idle ladder
// between jobs instead of exiting, task records carry job tags, and
// each job's Report comes from exact per-job quiescence counters. On
// sim and dist the segment layout still ties a world to one root task,
// so the Service runs each job in an ephemeral world behind the same
// facade — admission, backpressure and per-job Reports behave
// identically, and dist jobs serialize (one fixed-base segment mapping
// per process).
//
// Option classes split along the pool boundary. ServiceOption values
// configure what the pool IS (backend, workers, scheduling seed, steal
// transport, observability, admission bounds) and are fixed at
// NewService. JobOption values configure one submission (granularity,
// per-job deadline, weight; per-job seed and trace where each job gets
// its own world). Migration from Run options:
//
//	Run option       Service equivalent
//	WithBackend      ServiceBackend
//	WithWorkers      ServiceWorkers
//	WithSeed         ServiceSeed (rt pool) / JobSeed (sim, dist)
//	WithObs          ServiceObs
//	WithTrace        ServiceTrace (rt pool) / JobTrace (sim, dist)
//	WithStealBatch   ServiceStealBatch
//	WithTierGroup    ServiceTierGroup
//	WithFault        ServiceFault
//	WithCosts        ServiceCosts (sim)
//	WithNet          ServiceNet (sim)
//	WithMaxWall      ServiceMaxWall (pool lifetime) / JobMaxWall (one job)
//	WithGrain        JobGrain
//
// Run itself remains supported, byte-for-byte: it is sugar for a
// throwaway one-job Service.
type Service struct {
	o    serviceOptions
	pool *rt.Pool // rt backend only

	mu     sync.Mutex
	closed bool
	seq    uint64
	queued int           // sim/dist: admitted, not yet dispatched
	slots  chan struct{} // sim/dist: running-concurrency tokens
	wg     sync.WaitGroup
}

// ErrServiceSaturated is returned by Submit when the service's bounded
// admission queue is full — the backpressure signal. Callers decide
// whether to shed, retry or block.
var ErrServiceSaturated = errors.New("uniaddr: service admission queue full")

// ErrServiceClosed is returned by Submit after Close.
var ErrServiceClosed = errors.New("uniaddr: service closed")

// JobCanceledError reports a job canceled by its submission context or
// JobMaxWall deadline before completing; Cause carries the reason.
// Cancellation is surgical on the rt pool: the canceled job's frames
// drain without running, its records are swept, and co-resident jobs
// never observe it.
type JobCanceledError = rt.JobCanceledError

// serviceOptions is the pool-construction state.
type serviceOptions struct {
	backend    string
	workers    int
	seed       uint64
	obs        bool
	trace      io.Writer
	stealBatch int
	tierGroup  int
	fault      *FaultConfig
	costs      *Costs
	net        *NetParams
	maxJobs    int
	queueDepth int
	maxWall    time.Duration
}

// ServiceOption configures a Service at construction.
type ServiceOption func(*serviceOptions)

// ServiceBackend selects the backend: BackendSim (default), BackendRT
// (the persistent pool) or BackendDist.
func ServiceBackend(name string) ServiceOption { return func(o *serviceOptions) { o.backend = name } }

// ServiceWorkers sets the worker count. Default 4.
func ServiceWorkers(n int) ServiceOption { return func(o *serviceOptions) { o.workers = n } }

// ServiceSeed pins the scheduling seed of the rt pool's victim
// selection (fixed for the pool's lifetime — per-job seeds need a
// per-job world, i.e. JobSeed on sim/dist). Also the default JobSeed
// for sim/dist jobs. Default 1.
func ServiceSeed(seed uint64) ServiceOption { return func(o *serviceOptions) { o.seed = seed } }

// ServiceObs toggles the observability recorder for the service's
// workers; on the rt pool the one recorder spans every job and each
// task-execution event carries its job ID.
func ServiceObs(on bool) ServiceOption { return func(o *serviceOptions) { o.obs = on } }

// ServiceTrace streams the rt pool's whole timeline — every job,
// job-tagged — as a Chrome/Perfetto trace to w at Close (implies
// ServiceObs(true)). Sim and dist jobs each run in their own world, so
// per-job JobTrace applies there instead; ServiceTrace is rejected.
func ServiceTrace(w io.Writer) ServiceOption { return func(o *serviceOptions) { o.trace = w } }

// ServiceStealBatch bounds steal-batch width, as WithStealBatch.
func ServiceStealBatch(n int) ServiceOption { return func(o *serviceOptions) { o.stealBatch = n } }

// ServiceTierGroup sets the victim-selection tier width, as
// WithTierGroup.
func ServiceTierGroup(n int) ServiceOption { return func(o *serviceOptions) { o.tierGroup = n } }

// ServiceFault enables deterministic fault injection across the
// service's workers (knob classes screened per backend, as WithFault).
func ServiceFault(fc FaultConfig) ServiceOption { return func(o *serviceOptions) { o.fault = &fc } }

// ServiceCosts sets the simulated cost profile for sim jobs.
func ServiceCosts(c Costs) ServiceOption { return func(o *serviceOptions) { o.costs = &c } }

// ServiceNet sets the simulated fabric parameters for sim jobs.
func ServiceNet(p NetParams) ServiceOption { return func(o *serviceOptions) { o.net = &p } }

// ServiceMaxJobs bounds how many jobs may be resident (dispatched, not
// yet finalized) at once. Default 2×workers, at least 8. Dist is
// pinned to 1 by its one-fixed-base-segment-per-process layout, so
// values above 1 are rejected there with UnsupportedOptionError.
func ServiceMaxJobs(n int) ServiceOption { return func(o *serviceOptions) { o.maxJobs = n } }

// ServiceQueueDepth bounds the admission queue; Submit returns
// ErrServiceSaturated beyond it. Default max(MaxJobs, 16).
func ServiceQueueDepth(n int) ServiceOption { return func(o *serviceOptions) { o.queueDepth = n } }

// ServiceMaxWall bounds the SERVICE's whole lifetime (0, the default,
// is unbounded): past it the pool fails every outstanding job with a
// timeout error. Bound a single job with JobMaxWall.
func ServiceMaxWall(d time.Duration) ServiceOption { return func(o *serviceOptions) { o.maxWall = d } }

// jobOptions is the per-submission state.
type jobOptions struct {
	seed    *uint64
	grain   uint64
	maxWall time.Duration
	trace   io.Writer
	weight  int
}

// JobOption configures one Submit.
type JobOption func(*jobOptions)

// JobSeed pins the scheduling seed of this job's world. Sim and dist
// only — the rt pool's seed is a pool property (ServiceSeed).
func JobSeed(seed uint64) JobOption { return func(o *jobOptions) { s := seed; o.seed = &s } }

// JobGrain sets the job's granularity cutoff, as WithGrain: 0 (the
// default) disables coalescing, GrainAuto adapts, any other value is a
// static sequential cutoff. On the rt pool the grain travels with the
// job's task tree, so co-resident jobs run at different grains.
func JobGrain(g uint64) JobOption { return func(o *jobOptions) { o.grain = g } }

// JobMaxWall bounds this job's wall-clock time from dispatch — the
// clock arms only when a worker claims the job, so time spent in the
// admission queue never counts against the budget. Past it the job is
// canceled (JobCanceledError) without disturbing co-resident jobs.
// Sim jobs have no wall clock; the option is ignored there, matching
// WithMaxWall.
func JobMaxWall(d time.Duration) JobOption { return func(o *jobOptions) { o.maxWall = d } }

// JobTrace streams this job's Chrome trace to w (implies observability
// for the job's world). Sim and dist only — rt pool events span jobs
// in shared rings; use ServiceTrace for the pool-wide timeline.
func JobTrace(w io.Writer) JobOption { return func(o *jobOptions) { o.trace = w } }

// JobWeight biases admission order on the rt pool: among queued jobs
// the dispatcher picks the lowest arrival-sequence/weight key, so equal
// weights are FIFO and a weight-w job is admitted as if it had arrived
// w times earlier. <= 0 means 1. Sim/dist admission is FIFO.
func JobWeight(w int) JobOption { return func(o *jobOptions) { o.weight = w } }

// Job is the submitter's handle on one admitted job.
type Job struct {
	id   uint64
	done chan struct{}
	once sync.Once
	rep  Report
	err  error
}

// ID returns the job's service-wide submission sequence number
// (1-based). On the rt backend it is also the job tag on the job's obs
// events.
func (j *Job) ID() uint64 { return j.id }

// Done returns a channel closed when the job has been finalized.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job is finalized and returns its Report — the
// same shape Run returns, plus the Job and QueueNS fields. On the rt
// pool the report's task counters are the job's OWN (exact per-job
// quiescence accounting); pool-wide steal counters are not attributed
// to single jobs.
func (j *Job) Wait() (Report, error) {
	<-j.done
	return j.rep, j.err
}

func (j *Job) finalize(rep Report, err error) {
	j.once.Do(func() {
		j.rep, j.err = rep, err
		close(j.done)
	})
}

// NewService validates the option set and builds the service. On the
// rt backend the workers start immediately and park until jobs arrive.
func NewService(opts ...ServiceOption) (*Service, error) {
	o := serviceOptions{backend: BackendSim, workers: 4, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.workers < 1 {
		return nil, fmt.Errorf("uniaddr: ServiceWorkers(%d): need at least one worker", o.workers)
	}
	if err := rejectFaultKnobs(o.backend, o.fault); err != nil {
		return nil, err
	}
	switch o.backend {
	case BackendSim:
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.stealBatch != 0, "ServiceStealBatch"},
			{o.tierGroup != 0, "ServiceTierGroup"},
			{o.trace != nil, "ServiceTrace (sim jobs trace per job: JobTrace)"},
			{o.maxWall != 0, "ServiceMaxWall"},
		} {
			if bad.set {
				return nil, &UnsupportedOptionError{Backend: o.backend, Option: bad.name}
			}
		}
	case BackendRT, BackendDist:
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{o.costs != nil, "ServiceCosts"},
			{o.net != nil, "ServiceNet"},
		} {
			if bad.set {
				return nil, &UnsupportedOptionError{Backend: o.backend, Option: bad.name}
			}
		}
		if o.backend == BackendDist && o.trace != nil {
			return nil, &UnsupportedOptionError{Backend: o.backend, Option: "ServiceTrace (dist jobs trace per job: JobTrace)"}
		}
	default:
		return nil, fmt.Errorf("uniaddr: unknown backend %q (ServiceBackend accepts %q, %q, %q)",
			o.backend, BackendSim, BackendRT, BackendDist)
	}
	if o.backend == BackendDist {
		// One fixed-base segment mapping per process: dist jobs cannot
		// share a resident process, so they serialize through one slot —
		// a knob value asking for more is rejected, never ignored.
		if o.maxJobs > 1 {
			return nil, &UnsupportedOptionError{Backend: o.backend,
				Option: "ServiceMaxJobs > 1 (dist serializes jobs through one fixed-base segment mapping)"}
		}
		o.maxJobs = 1
	}
	if o.maxJobs <= 0 {
		o.maxJobs = 2 * o.workers
		if o.maxJobs < 8 {
			o.maxJobs = 8
		}
	}
	if o.queueDepth <= 0 {
		o.queueDepth = o.maxJobs
		if o.queueDepth < 16 {
			o.queueDepth = 16
		}
	}
	s := &Service{o: o}
	if o.backend == BackendRT {
		cfg := rt.DefaultConfig(o.workers)
		cfg.Seed = o.seed
		cfg.Obs = o.obs || o.trace != nil
		cfg.StealBatch = o.stealBatch
		cfg.TierGroup = o.tierGroup
		cfg.MaxWall = o.maxWall
		cfg.MaxJobs = o.maxJobs
		cfg.QueueDepth = o.queueDepth
		if o.fault != nil {
			cfg.Fault = *o.fault
		}
		pool, err := rt.NewPool(cfg)
		if err != nil {
			return nil, err
		}
		s.pool = pool
	} else {
		s.slots = make(chan struct{}, o.maxJobs)
	}
	return s, nil
}

// Submit admits fid(localsLen bytes of locals, initialised by init) as
// one job. It never blocks on a full queue: past ServiceQueueDepth it
// returns ErrServiceSaturated immediately. Canceling ctx cancels the
// job and its Wait returns a JobCanceledError. On the rt pool
// cancellation is effective queued or MID-RUN: the canceled tree's
// frames drain without executing and co-resident jobs are untouched.
// Sim and dist jobs run each in an ephemeral world that executes to
// completion once launched, so there ctx cancels the job only up to
// the moment its world starts.
func (s *Service) Submit(ctx context.Context, fid FuncID, localsLen uint32, init func(*Env), opts ...JobOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var jo jobOptions
	for _, opt := range opts {
		opt(&jo)
	}
	if jo.weight <= 0 {
		jo.weight = 1
	}
	if s.o.backend == BackendRT {
		for _, bad := range []struct {
			set  bool
			name string
		}{
			{jo.seed != nil, "JobSeed (the rt pool's seed is ServiceSeed)"},
			{jo.trace != nil, "JobTrace (the rt pool traces service-wide: ServiceTrace)"},
		} {
			if bad.set {
				return nil, &UnsupportedOptionError{Backend: s.o.backend, Option: bad.name}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.o.backend == BackendRT {
		return s.submitRT(ctx, fid, localsLen, init, jo)
	}
	return s.submitEphemeral(ctx, fid, localsLen, init, jo)
}

// submitRT admits a job onto the persistent rt pool and bridges its
// ticket to the facade Job, watching ctx and the JobMaxWall deadline.
func (s *Service) submitRT(ctx context.Context, fid FuncID, localsLen uint32, init func(*Env), jo jobOptions) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	tk, err := s.pool.Submit(fid, localsLen, init, rt.JobParams{Grain: jo.grain, Weight: jo.weight})
	if err != nil {
		s.mu.Unlock()
		switch {
		case errors.Is(err, rt.ErrPoolSaturated):
			return nil, ErrServiceSaturated
		case errors.Is(err, rt.ErrPoolClosed):
			return nil, ErrServiceClosed
		}
		return nil, err
	}
	s.wg.Add(1)
	s.mu.Unlock()
	j := &Job{id: tk.ID(), done: make(chan struct{})}
	go func() {
		defer s.wg.Done()
		var deadline *time.Timer
		select {
		case <-ctx.Done():
			s.pool.Cancel(tk, ctx.Err())
			<-tk.Done()
		case <-tk.Dispatched():
			// JobMaxWall bounds execution, not queueing: the deadline is
			// armed only once a worker claims the job, so a submission
			// that outwaits its budget in the admission queue still runs.
			if jo.maxWall > 0 {
				d := jo.maxWall
				deadline = time.AfterFunc(d, func() {
					s.pool.Cancel(tk, fmt.Errorf("job exceeded JobMaxWall %v", d))
				})
			}
			select {
			case <-ctx.Done():
				s.pool.Cancel(tk, ctx.Err())
				<-tk.Done()
			case <-tk.Done():
			}
		case <-tk.Done():
			// Finalized while still queued (canceled or pool failure).
		}
		if deadline != nil {
			deadline.Stop()
		}
		res, err := tk.Wait()
		rep := Report{
			Backend: BackendRT, Workers: s.o.workers,
			Root: res.Result, WallNS: res.ExecNS,
			Tasks: res.Tasks, Spawns: res.Spawns,
			Job: j.id, QueueNS: res.QueueNS,
		}
		j.finalize(rep, err)
	}()
	return j, nil
}

// submitEphemeral admits a sim/dist job: it waits for one of the
// MaxJobs concurrency slots, then runs an ephemeral world via the same
// paths Run uses, so the per-job Report is exactly Run's.
func (s *Service) submitEphemeral(ctx context.Context, fid FuncID, localsLen uint32, init func(*Env), jo jobOptions) (*Job, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	if s.queued >= s.o.queueDepth {
		s.mu.Unlock()
		return nil, ErrServiceSaturated
	}
	s.queued++
	s.seq++
	j := &Job{id: s.seq, done: make(chan struct{})}
	s.wg.Add(1)
	s.mu.Unlock()
	submitT := time.Now()
	go func() {
		defer s.wg.Done()
		select {
		case <-ctx.Done():
			s.mu.Lock()
			s.queued--
			s.mu.Unlock()
			j.finalize(Report{Backend: s.o.backend, Workers: s.o.workers, Job: j.id},
				&JobCanceledError{Job: j.id, Cause: ctx.Err()})
			return
		case s.slots <- struct{}{}:
		}
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		// Last cancellation point: an ephemeral world runs to completion
		// once launched (mid-run cancellation is an rt-pool capability),
		// so a ctx that expired while we waited for the slot must win
		// over the launch.
		if err := ctx.Err(); err != nil {
			<-s.slots
			j.finalize(Report{Backend: s.o.backend, Workers: s.o.workers, Job: j.id},
				&JobCanceledError{Job: j.id, Cause: err})
			return
		}
		queueNS := time.Since(submitT).Nanoseconds()
		ro := options{
			backend: s.o.backend, workers: s.o.workers, seed: s.o.seed,
			costs: s.o.costs, net: s.o.net, fault: s.o.fault,
			obs: s.o.obs || jo.trace != nil, trace: jo.trace,
			maxWall: jo.maxWall, grain: jo.grain,
			stealBatch: s.o.stealBatch, tierGroup: s.o.tierGroup,
		}
		if jo.seed != nil {
			ro.seed = *jo.seed
		}
		var rep Report
		var err error
		if s.o.backend == BackendSim {
			rep, err = runSim(ro, fid, localsLen, init)
		} else {
			rep, err = runDist(ro, fid, localsLen, init)
		}
		<-s.slots
		rep.Job = j.id
		rep.QueueNS = queueNS
		j.finalize(rep, err)
	}()
	return j, nil
}

// Close stops admission, waits for every submitted job to finalize and
// winds the service down. On the rt pool it verifies full pool
// quiescence (no surviving frame, waiter or record from any job) and
// streams the ServiceTrace timeline.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServiceClosed
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()
	if s.pool == nil {
		return nil
	}
	err := s.pool.Close()
	if errors.Is(err, rt.ErrPoolClosed) {
		err = ErrServiceClosed
	}
	if s.o.trace != nil {
		ex := s.pool.Obs().Export()
		if ex == nil {
			if err == nil {
				err = fmt.Errorf("uniaddr: ServiceTrace set but the pool recorded no observability data")
			}
		} else {
			opts := &obs.ChromeOpts{FuncName: func(id uint32) string { return core.FuncName(core.FuncID(id)) }}
			if terr := obs.WriteChromeTraceExport(s.o.trace, ex, opts); terr != nil && err == nil {
				err = fmt.Errorf("uniaddr: writing service trace: %w", terr)
			}
		}
	}
	return err
}

// Workers returns the service's worker count.
func (s *Service) Workers() int { return s.o.workers }

// JobsCompleted returns how many jobs have been finalized so far
// (including canceled ones). Safe to call mid-run.
func (s *Service) JobsCompleted() uint64 {
	if s.pool != nil {
		return s.pool.JobsCompleted()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq - uint64(s.queued) - uint64(len(s.slots))
}

// WorkersExited returns how many pool worker goroutines have returned
// (rt backend; 0 elsewhere). It must stay 0 until Close — the
// observable proof that the pool reuses its workers across jobs rather
// than recreating them. Safe to call mid-run.
func (s *Service) WorkersExited() uint64 {
	if s.pool != nil {
		return s.pool.WorkersExited()
	}
	return 0
}

// ParkedWorkers returns how many pool workers are currently parked
// between jobs (rt backend; 0 elsewhere). Safe to call mid-run.
func (s *Service) ParkedWorkers() int {
	if s.pool != nil {
		return s.pool.ParkedWorkers()
	}
	return 0
}
