package uniaddr_test

import (
	"fmt"

	"uniaddr"
)

// sumFID computes 1+2+...+n by spawning a child for n-1 and joining it
// — the smallest complete task function.
//
// Frame slots: 0 = n, 1 = child handle.
var sumFID uniaddr.FuncID

func init() {
	sumFID = uniaddr.Register("example-sum", func(e *uniaddr.Env) uniaddr.Status {
		switch e.RP() {
		case 0:
			n := e.U64(0)
			if n == 0 {
				e.ReturnU64(0)
				return uniaddr.Done
			}
			// Child-first: the child runs immediately; our continuation
			// (resume point 1) becomes stealable while it does.
			if !e.Spawn(1, 1, sumFID, 2*8, func(c *uniaddr.Env) { c.SetU64(0, n-1) }) {
				return uniaddr.Unwound
			}
			fallthrough
		case 1:
			r, ok := e.Join(1, e.HandleAt(1))
			if !ok {
				return uniaddr.Unwound
			}
			e.ReturnU64(e.U64(0) + r)
			return uniaddr.Done
		}
		panic("bad resume point")
	})
}

// Example runs a task tree on a 4-worker simulated cluster. Runs are
// deterministic for a fixed Config.Seed.
func Example() {
	cfg := uniaddr.DefaultConfig(4)
	cfg.Seed = 1
	res, m, err := uniaddr.Run(cfg, sumFID, 2*8, func(e *uniaddr.Env) { e.SetU64(0, 100) })
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..100) =", res)
	fmt.Println("tasks =", m.TotalStats().TasksExecuted)
	// Output:
	// sum(1..100) = 5050
	// tasks = 101
}

// Example_isoAddress runs the same computation under the iso-address
// baseline; results match, but the scheme pays page faults and reserves
// address space proportional to the machine size.
func Example_isoAddress() {
	cfg := uniaddr.DefaultConfig(4)
	cfg.Scheme = uniaddr.SchemeIso
	res, _, err := uniaddr.Run(cfg, sumFID, 2*8, func(e *uniaddr.Env) { e.SetU64(0, 50) })
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..50) =", res)
	// Output:
	// sum(1..50) = 1275
}
