package uniaddr_test

import (
	"fmt"

	"uniaddr"
)

// sumFID computes 1+2+...+n by spawning a child for n-1 and joining it
// — the smallest complete task function.
//
// Frame slots: 0 = n, 1 = child handle.
var sumFID uniaddr.FuncID

func init() {
	sumFID = uniaddr.Register("example-sum", func(e *uniaddr.Env) uniaddr.Status {
		switch e.RP() {
		case 0:
			n := e.U64(0)
			if n == 0 {
				e.ReturnU64(0)
				return uniaddr.Done
			}
			// Child-first: the child runs immediately; our continuation
			// (resume point 1) becomes stealable while it does.
			if !e.Spawn(1, 1, sumFID, 2*8, func(c *uniaddr.Env) { c.SetU64(0, n-1) }) {
				return uniaddr.Unwound
			}
			fallthrough
		case 1:
			r, ok := e.Join(1, e.HandleAt(1))
			if !ok {
				return uniaddr.Unwound
			}
			e.ReturnU64(e.U64(0) + r)
			return uniaddr.Done
		}
		panic("bad resume point")
	})
}

// Example runs a task tree on a 4-worker simulated cluster. Runs are
// deterministic for a fixed seed. Swap WithBackend(uniaddr.BackendRT)
// or (uniaddr.BackendDist) to run the same task on real threads or
// real processes — the Report keeps its shape.
func Example() {
	rep, err := uniaddr.Run(sumFID, 2*8, func(e *uniaddr.Env) { e.SetU64(0, 100) },
		uniaddr.WithWorkers(4), uniaddr.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..100) =", rep.Root)
	fmt.Println("tasks =", rep.Tasks)
	// Output:
	// sum(1..100) = 5050
	// tasks = 101
}

// Example_isoAddress runs the same computation under the iso-address
// baseline; results match, but the scheme pays page faults and reserves
// address space proportional to the machine size. Scheme selection is
// simulator-only surface, so this goes through the NewMachine escape
// hatch rather than Run's options.
func Example_isoAddress() {
	cfg := uniaddr.DefaultConfig(4)
	cfg.Scheme = uniaddr.SchemeIso
	m, err := uniaddr.NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	res, err := m.Run(sumFID, 2*8, func(e *uniaddr.Env) { e.SetU64(0, 50) })
	if err != nil {
		panic(err)
	}
	fmt.Println("sum(1..50) =", res)
	// Output:
	// sum(1..50) = 1275
}
