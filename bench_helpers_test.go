package uniaddr_test

import (
	"sync"
	"testing"

	"uniaddr/internal/smr"
)

var (
	benchPoolOnce sync.Once
	benchPool     *smr.Pool
)

// newBenchPool returns a shared native pool for the smr benchmarks.
func newBenchPool(b *testing.B) *smr.Pool {
	b.Helper()
	benchPoolOnce.Do(func() { benchPool = smr.NewPool(0) })
	return benchPool
}

// benchSpawnJoin spawns n trivial tasks and joins them all.
func benchSpawnJoin(p *smr.Pool, n int) {
	smr.Run(p, func(w *smr.Worker) int {
		futs := make([]*smr.Future[int], n)
		for i := range futs {
			futs[i] = smr.Spawn(w, func(*smr.Worker) int { return 1 })
		}
		total := 0
		for _, f := range futs {
			total += smr.Join(w, f)
		}
		return total
	})
}
