// Package stats provides the small statistical helpers the benchmark
// harness uses: means, standard deviations and the 95% confidence
// intervals the paper reports with its figures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// tCritical95 holds two-sided 95% critical values of Student's t for
// df = 1..30; beyond that the normal approximation 1.96 is used.
var tCritical95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean of xs (0 when fewer than two samples).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	t := 1.96
	if df := n - 1; df <= len(tCritical95) {
		t = tCritical95[df-1]
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Median returns the median of xs (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Sample accumulates observations and formats them paper-style.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the sample mean.
func (s *Sample) Mean() float64 { return Mean(s.xs) }

// CI95 returns the 95% confidence half-width.
func (s *Sample) CI95() float64 { return CI95(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// String formats "mean ± ci".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g", s.Mean(), s.CI95())
}

// HumanBytes renders a byte count the way the paper's tables do.
func HumanBytes(b uint64) string {
	switch {
	case b >= 1<<40:
		return fmt.Sprintf("%.1f TiB", float64(b)/(1<<40))
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// HumanCount renders large counts with K/M/B suffixes.
func HumanCount(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.2fB", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.2fM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.2fK", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}
