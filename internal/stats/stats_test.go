package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty not 0")
	}
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Fatal("mean wrong")
	}
}

func TestStdDevKnown(t *testing.T) {
	// {2,4,4,4,5,5,7,9}: population sd 2; sample sd = sqrt(32/7).
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(StdDev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("sd = %v", StdDev(xs))
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("sd of singleton not 0")
	}
}

func TestCI95Behaviour(t *testing.T) {
	if CI95([]float64{1}) != 0 {
		t.Fatal("CI of singleton not 0")
	}
	// Constant samples: zero CI.
	if CI95([]float64{3, 3, 3, 3}) != 0 {
		t.Fatal("CI of constants not 0")
	}
	// Two samples use t=12.706.
	ci := CI95([]float64{0, 2})
	want := 12.706 * math.Sqrt2 / math.Sqrt2 // sd=sqrt2, /sqrt(2)
	if !almost(ci, want, 1e-9) {
		t.Fatalf("ci = %v, want %v", ci, want)
	}
	// More samples shrink the interval.
	wide := CI95([]float64{0, 2})
	narrow := CI95([]float64{0, 2, 0, 2, 0, 2, 0, 2, 0, 2})
	if narrow >= wide {
		t.Fatalf("CI did not shrink: %v vs %v", narrow, wide)
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median")
	}
	in := []float64{9, 1, 5}
	_ = Median(in)
	if in[0] != 9 || in[2] != 5 {
		t.Fatal("median mutated input")
	}
}

func TestSampleAccumulates(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	if s.N() != 5 || !almost(s.Mean(), 3, 1e-12) {
		t.Fatalf("sample: n=%d mean=%v", s.N(), s.Mean())
	}
	if s.String() == "" {
		t.Fatal("empty format")
	}
}

func TestMeanWithinMinMaxProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // avoid overflow in the sum itself
			}
		}
		m := Mean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return m >= lo-1e-9*math.Abs(lo)-1e-9 && m <= hi+1e-9*math.Abs(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := map[uint64]string{
		512:        "512 B",
		144 * 1024: "144.0 KiB",
		3 << 30:    "3.0 GiB",
		1 << 49:    "512.0 TiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Fatalf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestHumanCount(t *testing.T) {
	if got := HumanCount(1.65e10); got != "16.50B" {
		t.Fatalf("HumanCount = %q", got)
	}
	if got := HumanCount(42); got != "42" {
		t.Fatalf("HumanCount = %q", got)
	}
}
