package rt

import (
	"testing"

	"uniaddr/internal/workloads"
)

// TestDequeOccupancyTracksSize checks the hint converges to the exact
// size at every quiescent point of a push/pop/steal history.
func TestDequeOccupancyTracksSize(t *testing.T) {
	d := NewDeque(16)
	check := func(when string) {
		t.Helper()
		if d.Occupancy() != d.Size() {
			t.Fatalf("%s: occupancy %d != size %d", when, d.Occupancy(), d.Size())
		}
	}
	check("fresh")
	for i := 1; i <= 5; i++ {
		if err := d.Push(Entry{FrameBase: 0x1000, FrameSize: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		check("after push")
	}
	if _, ok := d.Pop(nil); !ok {
		t.Fatal("pop failed")
	}
	check("after pop")

	if _, outcome := d.StealBegin(); outcome != StealOK {
		t.Fatalf("steal outcome %v", outcome)
	}
	d.StealCommit()
	check("after steal commit")

	if _, outcome := d.StealBegin(); outcome != StealOK {
		t.Fatalf("steal outcome %v", outcome)
	}
	d.StealAbort()
	check("after steal abort")

	for {
		if _, ok := d.Pop(nil); !ok {
			break
		}
		check("while draining")
	}
	check("empty")
	if d.Occupancy() != 0 {
		t.Fatalf("empty deque advertises occupancy %d", d.Occupancy())
	}
}

// TestStealProbeAccounting checks the probe taxonomy: every steal
// attempt is routed by exactly one of the three selectors (cache, hint
// sweep, blind fallback), so the buckets must sum to StealAttempts.
func TestStealProbeAccounting(t *testing.T) {
	for _, spec := range []workloads.Spec{
		workloads.Fib(17, 50),
		workloads.PingPong(64, 200, 0),
	} {
		for _, workers := range []int{2, 4, 8} {
			cfg := DefaultConfig(workers)
			cfg.NoPin = true
			r := New(cfg)
			got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				t.Fatalf("%s on %d workers: %v", spec.Name, workers, err)
			}
			if got != spec.Expected {
				t.Fatalf("%s on %d workers: result %d, want %d", spec.Name, workers, got, spec.Expected)
			}
			ts := r.TotalStats()
			probes := ts.StealCacheProbes + ts.StealHintProbes + ts.StealBlindProbes
			if probes != ts.StealAttempts {
				t.Errorf("%s on %d workers: probe buckets %d+%d+%d != attempts %d",
					spec.Name, workers,
					ts.StealCacheProbes, ts.StealHintProbes, ts.StealBlindProbes,
					ts.StealAttempts)
			}
			// One attempt = one round trip, which may move a whole
			// batch: conservation is over StealBatches, not entries.
			outcomes := ts.StealBatches + ts.StealAbortEmpty + ts.StealAbortLock
			if outcomes != ts.StealAttempts {
				t.Errorf("%s on %d workers: outcomes %d != attempts %d",
					spec.Name, workers, outcomes, ts.StealAttempts)
			}
		}
	}
}

// TestHintedStealsFindWork sanity-checks the selector on a workload
// with real migration: at 4+ workers a fib tree forces steals, and the
// hint/cache paths — not just blind luck — must be carrying traffic.
func TestHintedStealsFindWork(t *testing.T) {
	spec := workloads.Fib(18, 20)
	cfg := DefaultConfig(4)
	cfg.NoPin = true
	r := New(cfg)
	if _, err := r.Run(spec.Fid, spec.Locals, spec.Init); err != nil {
		t.Fatal(err)
	}
	ts := r.TotalStats()
	if ts.StealsOK == 0 {
		t.Skip("no steals occurred on this box; nothing to assert")
	}
	if ts.StealCacheProbes+ts.StealHintProbes == 0 {
		t.Errorf("%d successful steals but zero hint/cache-guided probes", ts.StealsOK)
	}
}
