package rt_test

import (
	"testing"
	"time"

	"uniaddr/internal/fault"
	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// runFaulted executes spec under an injected fault schedule and checks
// that the result is still correct and the scheduler quiesces — the
// whole point of the resilience protocol.
func runFaulted(t *testing.T, spec workloads.Spec, workers int, seed uint64, fc fault.Config) rt.Stats {
	t.Helper()
	cfg := rt.DefaultConfig(workers)
	cfg.Seed = seed
	cfg.NoPin = true
	cfg.MaxWall = 30 * time.Second
	cfg.Fault = fc
	r := rt.New(cfg)
	got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatalf("%s on %d workers under faults: %v", spec.Name, workers, err)
	}
	if got != spec.Expected {
		t.Fatalf("%s on %d workers under faults: result %d, want %d", spec.Name, workers, got, spec.Expected)
	}
	if err := r.CheckQuiescence(); err != nil {
		t.Fatalf("%s on %d workers under faults: %v", spec.Name, workers, err)
	}
	return r.TotalStats()
}

// fib20 has enough per-task work (500 simulated cycles) that victim
// deques stay populated and thieves land real steals; lighter specs
// drain locally before any thief arrives and exercise nothing.
func fib20() workloads.Spec { return workloads.Fib(20, 500) }

func TestRTStealClaimFaults(t *testing.T) {
	var sawFault bool
	for seed := uint64(1); seed <= 3; seed++ {
		ts := runFaulted(t, fib20(), 8, seed,
			fault.Config{StealClaimFailProb: 0.2})
		if ts.StealFaults > 0 {
			sawFault = true
			if ts.StealRetries+ts.StealAbortsFault == 0 {
				t.Errorf("seed %d: %d faults but no retries or aborts: %+v", seed, ts.StealFaults, ts)
			}
		}
	}
	if !sawFault {
		t.Error("no steal fault fired across 3 seeds at 20% claim-fail rate")
	}
}

func TestRTStealCopyRollback(t *testing.T) {
	var sawRollback bool
	for seed := uint64(1); seed <= 3; seed++ {
		ts := runFaulted(t, fib20(), 8, seed,
			fault.Config{StealCopyFailProb: 0.25})
		if ts.StealRollbacks > 0 {
			sawRollback = true
			// A rollback abandons the steal: rollbacks ⊆ fault aborts.
			if ts.StealRollbacks > ts.StealAbortsFault {
				t.Errorf("seed %d: %d rollbacks > %d fault aborts", seed, ts.StealRollbacks, ts.StealAbortsFault)
			}
		}
	}
	if !sawRollback {
		t.Error("no rollback fired across 3 seeds at 25% copy-fail rate")
	}
}

func TestRTCombinedFaultsAndDelays(t *testing.T) {
	ts := runFaulted(t, fib20(), 8, 2, fault.Config{
		StealClaimFailProb: 0.1,
		StealCopyFailProb:  0.05,
		StealDelayProb:     0.05,
		StealDelayMin:      20 * time.Microsecond,
		StealDelayMax:      200 * time.Microsecond,
	})
	if ts.StealFaults == 0 {
		t.Log("combined schedule fired no faults (legal but unusual at these rates)")
	}
}

// TestRTZeroFaultPinned pins the zero-fault path: an empty fault.Config
// must not move any resilience counter or change behaviour.
func TestRTZeroFaultPinned(t *testing.T) {
	ts := runFaulted(t, workloads.Fib(17, 50), 4, 1, fault.Config{})
	if ts.StealFaults != 0 || ts.StealRetries != 0 || ts.StealRollbacks != 0 ||
		ts.StealAbortsFault != 0 || ts.VictimBlacklists != 0 || ts.FaultBackoffNS != 0 {
		t.Fatalf("zero-fault run moved resilience counters: %+v", ts)
	}
}

func TestRTBadFaultConfigRejected(t *testing.T) {
	cfg := rt.DefaultConfig(2)
	cfg.NoPin = true
	cfg.Fault = fault.Config{StealClaimFailProb: 1.5}
	r := rt.New(cfg)
	spec := workloads.Fib(10, 0)
	if _, err := r.Run(spec.Fid, spec.Locals, spec.Init); err == nil {
		t.Fatal("invalid fault config accepted by rt.Run")
	}
}

// TestRTDeterministicFaultCounts: the per-edge schedules are
// deterministic, but real-concurrency interleaving varies per run, so
// total counters need not match run-to-run. This test only pins that
// the SAME seed with faults disabled vs. enabled keeps correctness,
// plus that the faulted run's steal accounting balances.
func TestRTFaultAccountingBalances(t *testing.T) {
	ts := runFaulted(t, fib20(), 8, 3,
		fault.Config{StealClaimFailProb: 0.1, StealCopyFailProb: 0.05})
	// Every fault either led to a retry or a fault abort.
	if ts.StealFaults != ts.StealRetries+ts.StealAbortsFault {
		t.Errorf("faults %d != retries %d + fault aborts %d",
			ts.StealFaults, ts.StealRetries, ts.StealAbortsFault)
	}
	if ts.TasksExecuted != ts.Spawns+1 {
		t.Errorf("executed %d != spawned %d + 1 under faults", ts.TasksExecuted, ts.Spawns)
	}
}
