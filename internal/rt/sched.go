// Package rt is the real-parallelism backend: it executes the same
// registered task functions as the virtual-time simulator
// (internal/core, internal/sim) on actual goroutines, one per worker,
// with a THE-protocol deque built from sync/atomic operations and
// steals performed as cross-arena memory copies. Where the simulator is
// the semantic oracle — deterministic, single-threaded, every cost
// modelled — rt is the measurement backend: wall-clock time, true
// concurrency, real cache traffic. Both run identical workload Specs,
// so a differential harness (internal/harness) can assert their root
// results agree.
//
// The scheduler data structures themselves — uni-address Arena,
// THE-protocol Deque, record Table — live in internal/sched, shared
// with the multi-process dist backend; this file re-exports the names
// rt's API historically used.
package rt

import "uniaddr/internal/sched"

// Deque, Entry and the steal outcomes are sched's, re-exported: rt's
// deque was factored out unchanged so the dist backend can run the
// identical protocol over an mmap'd segment.
type (
	Deque        = sched.Deque
	Entry        = sched.Entry
	StealOutcome = sched.StealOutcome
)

const (
	StealOK          = sched.StealOK
	StealEmpty       = sched.StealEmpty
	StealLockBusy    = sched.StealLockBusy
	StealEmptyLocked = sched.StealEmptyLocked
	StealFaulted     = sched.StealFaulted
)

// NewDeque allocates a private heap-backed deque (see sched.NewDeque).
func NewDeque(capacity uint64) *Deque { return sched.NewDeque(capacity) }
