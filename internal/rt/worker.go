package rt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"

	"uniaddr/internal/core"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// Stats counts one worker's scheduling events — the wall-clock
// counterparts of core.WorkerStats. Owner-written during the run; read
// by other goroutines only after Runtime.Run returns (WaitGroup edge).
type Stats struct {
	TasksExecuted uint64
	// TasksDrained counts frames completed WITHOUT running their body
	// because their job was canceled (a subset of TasksExecuted — the
	// quiescence arithmetic treats a drained task as executed).
	TasksDrained uint64
	Spawns       uint64
	JoinsFast     uint64
	JoinsMiss     uint64
	Suspends      uint64
	ResumesLocal  uint64
	ResumesWait   uint64
	ParentStolen  uint64

	StealAttempts   uint64
	StealsOK        uint64
	StealAbortEmpty uint64
	StealAbortLock  uint64
	BytesStolen     uint64

	// Steal-half batching: StealBatches counts successful batched
	// round trips, StealBatchEntries the entries they moved (so the
	// mean batch width is StealBatchEntries/StealBatches; StealsOK
	// counts the same entries for continuity with older reports).
	StealBatches      uint64
	StealBatchEntries uint64

	// Steal-hint counters: probes routed by a victim's occupancy hint or
	// by the last-successful-victim cache, vs blind random probes. Every
	// StealAttempt falls into exactly one bucket.
	StealHintProbes  uint64
	StealCacheProbes uint64
	StealBlindProbes uint64

	// Parks counts idle-parking episodes (worker went to sleep on the
	// parking lot); Wakes counts the wake tokens the worker consumed
	// (including a token claimed between register and cancel).
	Parks uint64
	Wakes uint64

	WorkCycles   uint64
	MaxStackUsed uint64

	// Fault-resilience counters (non-zero only under injection; see
	// sched.ResilienceStats, whose fields these mirror).
	StealFaults      uint64
	StealRetries     uint64
	StealRollbacks   uint64
	StealAbortsFault uint64
	VictimBlacklists uint64
	FaultBackoffNS   uint64
}

// savedCtx is a suspended thread parked on the Go heap — the rt
// analogue of the simulator's swap-out into the pinned RDMA region
// (Fig. 8): the frame bytes leave the uni-address region so stealing
// stays legal, and return to their original VA on resume. rec is the
// record the thread is joining on; the idle loop resumes a saved
// context only once rec completes, so a resume never bounces back into
// a re-suspend.
type savedCtx struct {
	base mem.VA
	size uint64
	buf  []byte
	rec  *sched.Record
}

// ctxPoolCap / envPoolCap bound the per-worker free lists so a burst of
// suspends (PingPong holds hundreds of saved contexts at once) cannot
// pin an unbounded amount of memory after it drains.
const (
	ctxPoolCap = 64
	envPoolCap = 64
)

// Worker is one scheduling context: a goroutine (optionally pinned to
// an OS thread), its uni-address arena, its deque and its record pool.
// It implements core.Exec, so task functions written against core.Env
// run on it unchanged.
type Worker struct {
	rt      *Runtime
	rank    int
	arena   *sched.Arena
	deque   *sched.Deque
	records *sched.Table
	waitq   []savedCtx
	rng     *rand.Rand
	stats   Stats
	spin    uint64 // ExecWork sink; kept per-worker to avoid false sharing

	// stopFn is w.rt.stopped pre-bound once: passing the method value
	// directly to Deque.Pop allocated a closure per pop — once per task
	// on the spawn path.
	stopFn func() bool

	// Idle engine / parking (see park.go).
	idle     idleState
	wakeCh   chan struct{} // 1-buffered wake token; see parkingLot
	parkSlot int32         // index in lot.parked; -1 when not registered
	// idleSpins counts idle-loop rounds. Atomic because quiescence tests
	// sample it mid-run to prove parked workers have stopped spinning.
	idleSpins atomic.Uint64

	// lastVictim caches the rank of the last successful steal victim
	// (-1 none); owner-only (see hints.go).
	lastVictim int32

	// tiers orders potential victims by rank-group distance; the hint
	// sweep walks them near-to-far (see hints.go and sched.BuildTiers).
	tiers [sched.NumTiers][]int

	// stealBuf is the reusable batch buffer for StealBatchFrom, sized
	// to the configured per-steal entry bound (owner-only).
	stealBuf []sched.Entry

	// grain is the CURRENT job's granularity cutoff, surfaced to
	// workloads via ExecGrain; reloaded from the job slot when an
	// invoked frame switches the worker onto another job.
	grain uint64

	// jobCounts is this worker's per-job-slot spawn/executed pairs: the
	// per-task bumps land on lines only this worker writes, and the
	// rare per-job quiescence checks sum across workers (sched.JobCount).
	jobCounts *sched.JobCounters
	// curJob / curJobID / curSlot cache the job the last invoked frame
	// belonged to (owner-only; ^uint32(0) = none yet). curJobID guards
	// against a slot being recycled to a new job between two frames.
	curJob   uint32
	curJobID uint64
	curSlot  *sched.JobSlot

	// res is the thief-side fault state machine (owner-only); with no
	// injector configured it is dormant and free (see sched.Resilience).
	res *sched.Resilience

	// wlog is this worker's wall-clock event ring (nil when obs is off;
	// every emission is a nil-safe method call).
	wlog *obs.WallLog

	// Per-worker free lists (owner-only): suspended-context buffers and
	// task Envs, recycled instead of heap-allocated per use.
	ctxFree [][]byte
	envFree []*core.Env
}

// Rank returns the worker's index.
func (w *Worker) Rank() int { return w.rank }

// Stats returns the worker's counters; call only after Run returns.
func (w *Worker) Stats() Stats {
	s := w.stats
	s.MaxStackUsed = w.arena.Max()
	rs := w.res.Stats
	s.StealFaults = rs.StealFaults
	s.StealRetries = rs.StealRetries
	s.StealRollbacks = rs.StealRollbacks
	s.StealAbortsFault = rs.StealAbortsFault
	s.VictimBlacklists = rs.VictimBlacklists
	s.FaultBackoffNS = rs.BackoffNS
	return s
}

// run is the worker goroutine body: start the root (rank 0), then the
// idle engine — pop local work, else clear dead stacks, resume a READY
// waiter or steal, else back off into the parking lot (Fig. 7's
// fallback chain with the blocking tail described in DESIGN.md §10).
func (w *Worker) run() {
	defer w.rt.wg.Done()
	defer w.rt.exited.Add(1)
	defer func() {
		if r := recover(); r != nil {
			w.rt.fail(fmt.Errorf("rt: worker %d panicked: %v", w.rank, r))
		}
	}()
	if !w.rt.cfg.NoPin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	if w.rank == 0 && !w.rt.persistent {
		w.runRoot()
	}
	for !w.rt.stopped() {
		if ent, ok := w.deque.Pop(w.stopFn); ok {
			w.stats.ResumesLocal++
			w.invoke(ent.FrameBase, ent.FrameSize)
			w.idle.reset()
			continue
		}
		// Deque empty and nothing running: whatever occupies the arena
		// is dead local copies of stolen threads. Reclaim, making the
		// region empty so it can host a steal (§5.2 rule 5).
		if !w.clearDead() {
			return
		}
		if w.rt.stopped() {
			return
		}
		// Resume before steal: a ready waiter is guaranteed-productive
		// local work, a steal probe is speculative remote work.
		if w.resumeReady() {
			w.idle.reset()
			continue
		}
		// Dispatch before steal: on a persistent pool an idle worker
		// serves admission latency first — a queued job's root beats
		// speculative remote probes (stealing then balances the tree).
		if w.startQueuedJob() {
			w.idle.reset()
			continue
		}
		if w.trySteal() {
			w.idle.reset()
			continue
		}
		w.idlePark()
	}
}

// clearDead empties the arena of dead stolen-thread copies. Unlike the
// simulator's clearDead this must synchronise: the owner's lock-free
// pop reports "empty" without touching the lock, so a thief that
// claimed our LAST entry may still be mid-copy of its frame bytes when
// we get here. Winning the deque lock once (thieves hold it across the
// whole copy) guarantees every in-flight copy has committed before the
// arena can be rewritten by an install or fresh frame; claims arriving
// later find bottom <= top and retreat without copying. Returns false
// only when shutdown interrupted the lock spin.
func (w *Worker) clearDead() bool {
	if !w.deque.LockOwner(w.stopFn) {
		return false
	}
	w.deque.Unlock()
	w.arena.Clear()
	return true
}

// runRoot builds the root thread's frame and runs it (the rt analogue
// of the simulator's newThread on rank 0). The root record was
// pre-allocated by Runtime.Run before goroutines started.
func (w *Worker) runRoot() {
	size := core.FrameBytes(w.rt.rootLocals)
	base := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.MustSlice(base, core.FrameHeaderBytes), w.rt.rootFid, w.rt.rootLocals, w.rt.rootRec)
	if w.rt.rootInit != nil {
		e := w.getEnv(base, size, 0)
		w.rt.rootInit(e)
		w.putEnv(e)
	}
	w.invoke(base, size)
}

// newFrame allocates and zeroes a frame of size bytes below the
// current chain.
func (w *Worker) newFrame(size uint64) mem.VA {
	base, err := w.arena.AllocBelow(size)
	if err != nil {
		panic(err)
	}
	clear(w.arena.MustSlice(base, size))
	return base
}

// getEnv returns a (possibly recycled) Env for one task entry; putEnv
// recycles it. Safe because task functions must not retain an Env past
// their return (the core.NewEnv contract).
func (w *Worker) getEnv(base mem.VA, size uint64, rp uint32) *core.Env {
	if n := len(w.envFree); n > 0 {
		e := w.envFree[n-1]
		w.envFree[n-1] = nil
		w.envFree = w.envFree[:n-1]
		e.Reset(w, base, size, rp)
		return e
	}
	return core.NewEnv(w, base, size, rp)
}

func (w *Worker) putEnv(e *core.Env) {
	if len(w.envFree) < envPoolCap {
		w.envFree = append(w.envFree, e)
	}
}

// getCtxBuf returns an n-byte buffer for a suspended context, reusing
// a pooled one when large enough; putCtxBuf recycles it.
func (w *Worker) getCtxBuf(n uint64) []byte {
	for len(w.ctxFree) > 0 {
		buf := w.ctxFree[len(w.ctxFree)-1]
		w.ctxFree[len(w.ctxFree)-1] = nil
		w.ctxFree = w.ctxFree[:len(w.ctxFree)-1]
		if uint64(cap(buf)) >= n {
			return buf[:n]
		}
		// Too small for this frame; drop it and keep looking.
	}
	return make([]byte, n)
}

func (w *Worker) putCtxBuf(buf []byte) {
	if len(w.ctxFree) < ctxPoolCap {
		w.ctxFree = append(w.ctxFree, buf)
	}
}

// invoke runs (or resumes) the thread whose stack starts at base. On
// return the stack is no longer occupied here: Done threads are
// retired; Unwound threads were swapped out by a suspend or released
// after a steal, inside ExecJoin/ExecSpawn.
func (w *Worker) invoke(base mem.VA, size uint64) core.Status {
	h := core.DecodeFrameHeader(w.arena.MustSlice(base, core.FrameHeaderBytes))
	// Map the frame to its job through its record's tag and switch this
	// worker's cached job context if the frame belongs to another job
	// (steals interleave jobs on one worker). The id recheck catches a
	// slot recycled to a new job between two frames.
	if tag := w.rt.workers[h.Record.Rank()].records.Get(sched.RecordIndex(h.Record)).Job.Load(); tag != 0 {
		slot := uint32(tag - 1)
		if slot != w.curJob || w.rt.jobMeta[slot].id != w.curJobID {
			w.curJob = slot
			w.curJobID = w.rt.jobMeta[slot].id
			w.curSlot = w.rt.jobs.Get(slot)
			w.grain = w.curSlot.Grain.Load()
			w.wlog.SetJob(w.curJobID)
		}
		// Canceled job: complete the frame without running its body.
		// Every task of a draining job is reached exactly once — it is
		// popped, stolen or resumed like any other frame — so the
		// per-job executed count still closes exactly, and completing
		// the record here is what unblocks (and in turn drains) any
		// parent suspended on it. Records the frame held references to
		// are reclaimed by the post-quiescence sweep (Table.SweepJob).
		if w.rt.anyCanceled.Load() > 0 && w.curSlot.State.Load() == sched.JobDraining {
			w.ExecComplete(h.Record, 0)
			w.stats.TasksExecuted++
			w.stats.TasksDrained++
			if err := w.arena.FreeLowest(base, size); err != nil {
				panic(err)
			}
			return core.Done
		}
	}
	e := w.getEnv(base, size, h.Resume)
	ts := w.wlog.Clock()
	st := core.TaskFn(h.Fid)(e)
	w.wlog.Emit(obs.KTask, ts, w.wlog.Clock()-ts, uint64(h.Fid), 0, -1)
	if st == core.Done {
		if !e.Returned() {
			w.ExecComplete(e.Self(), 0)
		}
		w.stats.TasksExecuted++
		if err := w.arena.FreeLowest(base, size); err != nil {
			panic(err)
		}
	}
	w.putEnv(e)
	return st
}

// resumeReady restores the first suspended thread whose join target has
// completed. Suspended threads whose record is still pending stay put:
// resuming them would only bounce through the task body back into
// another suspend (the pre-optimization idle loop did exactly that —
// tens of thousands of resume→miss→re-suspend round trips per run).
// Their completer wakes us precisely via Record.Waiter when the time
// comes.
func (w *Worker) resumeReady() bool {
	for i := range w.waitq {
		if w.waitq[i].rec.Done.Load() != 0 {
			sc := w.waitq[i]
			// Preserve FIFO order among the remaining waiters.
			copy(w.waitq[i:], w.waitq[i+1:])
			w.waitq[len(w.waitq)-1] = savedCtx{}
			w.waitq = w.waitq[:len(w.waitq)-1]
			w.resumeSaved(sc)
			return true
		}
	}
	return false
}

// resumeSaved restores a parked thread to its original VA (Fig. 7's
// resume_saved_context) and re-enters it at its saved resume point.
func (w *Worker) resumeSaved(sc savedCtx) {
	if err := w.arena.Install(sc.base, sc.size); err != nil {
		panic(err)
	}
	copy(w.arena.MustSlice(sc.base, sc.size), sc.buf)
	w.putCtxBuf(sc.buf)
	w.stats.ResumesWait++
	w.invoke(sc.base, sc.size)
}

// --- core.Exec implementation ----------------------------------------

// ExecReadU64 implements core.Exec over the worker's arena.
func (w *Worker) ExecReadU64(va mem.VA) uint64 { return w.arena.ReadU64(va) }

// ExecWriteU64 implements core.Exec over the worker's arena.
func (w *Worker) ExecWriteU64(va mem.VA, v uint64) { w.arena.WriteU64(va, v) }

// ExecSlice implements core.Exec over the worker's arena.
func (w *Worker) ExecSlice(va mem.VA, n uint64) ([]byte, error) { return w.arena.Slice(va, n) }

// ExecWork burns roughly `cycles` iterations of an LCG — the wall-clock
// stand-in for the simulator's virtual-time advance, so workload knobs
// like Fib's workCycles translate into real computation.
func (w *Worker) ExecWork(cycles uint64) {
	x := w.spin
	for i := uint64(0); i < cycles; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	w.spin = x
	w.stats.WorkCycles += cycles
}

// ExecComplete publishes a task's result: store result, then done
// (both seq-cst), so any joiner observing done==1 observes the result.
// If a joiner recorded itself as the record's waiter before we stored
// done, wake that worker precisely; the seq-cst done-store→waiter-load
// order pairs with the joiner's waiter-store→done-load recheck so at
// least one side always sees the other (DESIGN.md §10).
//
// Job-tagged completions run inside a Pending bracket (+1 before the
// Executed bump, -1 after everything below has retired). The bracket is
// what makes slot finalization safe against in-flight completers: the
// Executed bump must precede the Done store (the root's completer sums
// the counters, and every completion the join tree ordered before it
// must already be counted — that is what makes executed == spawns+1
// exact per job), so a finalizer that observes the count close can
// still race the stores and the slot reads below. Closure DOES imply
// every bracket's +1 landed (it precedes the counted bump), so a
// finalizer that then waits for ΣPending to drain (waitJobSettled)
// knows every record's Result/Done stores retired before it sweeps,
// and that no completer will read js.Root/js.State after the slot is
// recycled. Without the bracket, a drain finalizer could sweep and
// recycle this frame's still-tagged record between our Executed bump
// and our Done store — the stores would then land on a record already
// re-allocated to a co-resident job.
func (w *Worker) ExecComplete(rec core.Handle, result uint64) {
	r := w.rt.workers[rec.Rank()].records.Get(sched.RecordIndex(rec))
	// The tag cannot be stale: the job's quiescence count cannot close
	// before THIS completion's Executed bump, so the slot it names is
	// still the record's job for the whole bracket.
	tag := r.Job.Load()
	if tag == 0 {
		r.Result.Store(result)
		r.Done.Store(1)
		if wr := r.Waiter.Load(); wr != 0 {
			w.rt.lot.wakeWorker(w.rt.workers[wr-1])
		}
		return
	}
	slot := uint32(tag - 1)
	jc := w.jobCounts.Get(slot)
	jc.Pending.Add(1)
	jc.Executed.Add(1)
	r.Result.Store(result)
	r.Done.Store(1)
	if wr := r.Waiter.Load(); wr != 0 {
		w.rt.lot.wakeWorker(w.rt.workers[wr-1])
	}
	js := w.rt.jobs.Get(slot)
	if uint64(rec) == js.Root.Load() {
		w.rt.rootComplete(slot, result)
	} else if js.State.Load() == sched.JobDraining {
		w.rt.drainCheck(slot, 1)
	}
	jc.Pending.Add(-1)
}

// ExecSpawn is the child-first spawn (Fig. 4) on real concurrency:
// save the parent's resume point, publish its continuation on the
// deque, run the child inline, then pop — a failed pop means a real
// concurrent thief took the parent.
func (w *Worker) ExecSpawn(e *core.Env, resumeRP, handleSlot int, fid core.FuncID, localsLen uint32, init func(*core.Env)) bool {
	w.stats.Spawns++
	// The spawn is counted (and the child's record tagged) against the
	// spawning frame's job — w.curJob, set by the invoke that entered
	// this task — BEFORE the child becomes visible to any other worker.
	w.jobCounts.Get(w.curJob).Spawns.Add(1)
	core.SetFrameResume(w.arena.MustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	rec := w.newRecord(sched.JobTag(w.curJob))
	// The child's handle lands in the parent's frame BEFORE the
	// continuation is published, so a migrated parent finds it.
	e.SetHandle(handleSlot, rec)
	if err := w.deque.Push(Entry{FrameBase: e.FrameBase(), FrameSize: e.FrameSize()}); err != nil {
		panic(err)
	}
	// Work just became stealable: release one parked worker, if any.
	// The count load (one uncontended atomic read) keeps the common
	// nobody-parked spawn path free of lock traffic.
	if w.rt.lot.count.Load() > 0 {
		w.rt.lot.wakeOne()
	}
	size := core.FrameBytes(localsLen)
	cbase := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.MustSlice(cbase, core.FrameHeaderBytes), fid, localsLen, rec)
	if init != nil {
		ce := w.getEnv(cbase, size, 0)
		init(ce)
		w.putEnv(ce)
	}
	w.invoke(cbase, size)
	// Pop the continuation we pushed (Fig. 4 line 14).
	if ent, ok := w.deque.Pop(w.stopFn); ok {
		if ent.FrameBase != e.FrameBase() || ent.FrameSize != e.FrameSize() {
			panic(fmt.Sprintf("rt: deque corruption: popped %#x/%d, expected %#x/%d",
				ent.FrameBase, ent.FrameSize, e.FrameBase(), e.FrameSize()))
		}
		return true
	}
	// The continuation (and, by FIFO order, every ancestor's) was
	// stolen by a genuinely concurrent thief. Release the dead local
	// copy and unwind to the scheduler.
	w.stats.ParentStolen++
	if err := w.arena.FreeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	return false
}

// ExecJoin is Fig. 7's join: poll the record; on a miss, record
// ourselves as the waiter, re-check (the Dekker handshake with
// ExecComplete — see Record.Waiter), then swap the frame out to a
// pooled heap buffer and park it on the wait queue.
func (w *Worker) ExecJoin(e *core.Env, resumeRP int, h core.Handle) (uint64, bool) {
	if !h.Valid() {
		panic("rt: join on invalid handle")
	}
	r := w.rt.workers[h.Rank()].records.Get(sched.RecordIndex(h))
	if r.Done.Load() != 0 {
		w.stats.JoinsFast++
		v := r.Result.Load()
		w.releaseRecord(h)
		return v, true
	}
	// Publish intent to wait BEFORE the final done check: a completer
	// that misses our waiter store must have stored done before our
	// recheck loads it, and vice versa.
	r.Waiter.Store(int64(w.rank) + 1)
	if r.Done.Load() != 0 {
		r.Waiter.Store(0)
		w.stats.JoinsFast++
		v := r.Result.Load()
		w.releaseRecord(h)
		return v, true
	}
	w.stats.JoinsMiss++
	w.stats.Suspends++
	core.SetFrameResume(w.arena.MustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	buf := w.getCtxBuf(e.FrameSize())
	ss := w.wlog.Clock()
	copy(buf, w.arena.MustSlice(e.FrameBase(), e.FrameSize()))
	w.wlog.Suspend(ss, e.FrameSize())
	if err := w.arena.FreeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	w.waitq = append(w.waitq, savedCtx{base: e.FrameBase(), size: e.FrameSize(), buf: buf, rec: r})
	return 0, false
}

// newRecord allocates a record on this worker's pool, tagged with its
// job before the handle can escape to another worker.
func (w *Worker) newRecord(jobTag uint64) core.Handle {
	idx, err := w.records.Alloc()
	if err != nil {
		panic(err)
	}
	w.records.Get(idx).Job.Store(jobTag)
	return sched.RecordHandle(w.rank, idx)
}

// releaseRecord frees a joined record: straight onto the owning pool's
// private stack when we ARE the owner (no shared-memory traffic),
// through the CAS release stack otherwise.
func (w *Worker) releaseRecord(h core.Handle) {
	if h.Rank() == w.rank {
		w.records.ReleaseLocal(sched.RecordIndex(h))
		return
	}
	w.rt.workers[h.Rank()].records.Release(sched.RecordIndex(h))
}

// ExecGasHeap: the rt backend has no global heap; workloads that need
// one (MergeSort, GlobalSum) are sim-only and skipped by the harness.
func (w *Worker) ExecGasHeap() *gas.Heap { return nil }

func (w *Worker) execGasPanic() {
	panic("rt: global heap (gas) operations are not supported on the real-parallelism backend; run this workload on the simulator")
}

// ExecGasGet implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasGet(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasPut implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasPut(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasGetU64 implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasGetU64(r gas.Ref) uint64 { w.execGasPanic(); return 0 }

// ExecGasPutU64 implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasPutU64(r gas.Ref, v uint64) { w.execGasPanic() }

// ExecGasAlloc implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasAlloc(n uint64) gas.Ref { w.execGasPanic(); return gas.Ref(0) }

// ExecGrain returns the runtime's configured granularity cutoff.
func (w *Worker) ExecGrain() uint64 { return w.grain }

// ExecCoalesce reports local work surplus: this worker's own deque
// already holds enough unstolen entries that spawning finer tasks only
// adds overhead (the adaptive gate for core.GrainAuto).
func (w *Worker) ExecCoalesce() bool { return w.deque.Size() >= core.CoalesceDequeMin }

// SimWorker returns nil: this backend is not the simulator.
func (w *Worker) SimWorker() *core.Worker { return nil }
