package rt

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
)

// Stats counts one worker's scheduling events — the wall-clock
// counterparts of core.WorkerStats. Owner-written during the run; read
// by other goroutines only after Runtime.Run returns (WaitGroup edge).
type Stats struct {
	TasksExecuted uint64
	Spawns        uint64
	JoinsFast     uint64
	JoinsMiss     uint64
	Suspends      uint64
	ResumesLocal  uint64
	ResumesWait   uint64
	ParentStolen  uint64

	StealAttempts   uint64
	StealsOK        uint64
	StealAbortEmpty uint64
	StealAbortLock  uint64
	BytesStolen     uint64

	WorkCycles   uint64
	MaxStackUsed uint64
}

// savedCtx is a suspended thread parked on the Go heap — the rt
// analogue of the simulator's swap-out into the pinned RDMA region
// (Fig. 8): the frame bytes leave the uni-address region so stealing
// stays legal, and return to their original VA on resume.
type savedCtx struct {
	base mem.VA
	size uint64
	buf  []byte
}

// Worker is one scheduling context: a goroutine (optionally pinned to
// an OS thread), its uni-address arena, its deque and its record pool.
// It implements core.Exec, so task functions written against core.Env
// run on it unchanged.
type Worker struct {
	rt      *Runtime
	rank    int
	arena   *arena
	deque   *Deque
	records *recordPool
	waitq   []savedCtx
	rng     *rand.Rand
	stats   Stats
	spin    uint64 // ExecWork sink; kept per-worker to avoid false sharing
}

// Rank returns the worker's index.
func (w *Worker) Rank() int { return w.rank }

// Stats returns the worker's counters; call only after Run returns.
func (w *Worker) Stats() Stats {
	s := w.stats
	s.MaxStackUsed = w.arena.max
	return s
}

// run is the worker goroutine body: start the root (rank 0), then the
// idle engine — pop local work, else clear dead stacks and steal, else
// resume a waiter, else back off (Fig. 7's fallback chain).
func (w *Worker) run() {
	defer w.rt.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			w.rt.fail(fmt.Errorf("rt: worker %d panicked: %v", w.rank, r))
		}
	}()
	if !w.rt.cfg.NoPin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	if w.rank == 0 {
		w.runRoot()
	}
	idle := 0
	for !w.rt.stopped() {
		if ent, ok := w.deque.Pop(w.rt.stopped); ok {
			w.stats.ResumesLocal++
			w.invoke(ent.FrameBase, ent.FrameSize)
			idle = 0
			continue
		}
		// Deque empty and nothing running: whatever occupies the arena
		// is dead local copies of stolen threads. Reclaim, making the
		// region empty so it can host a steal (§5.2 rule 5).
		if !w.clearDead() {
			return
		}
		if w.rt.stopped() {
			return
		}
		if w.trySteal() {
			idle = 0
			continue
		}
		if len(w.waitq) > 0 {
			// FIFO, as in the simulator: the longest-suspended thread
			// is the most likely to have a completed join target.
			sc := w.waitq[0]
			w.waitq = w.waitq[1:]
			w.resumeSaved(sc)
			idle = 0
			continue
		}
		w.idleBackoff(&idle)
	}
}

// clearDead empties the arena of dead stolen-thread copies. Unlike the
// simulator's clearDead this must synchronise: the owner's lock-free
// pop reports "empty" without touching the lock, so a thief that
// claimed our LAST entry may still be mid-copy of its frame bytes when
// we get here. Winning the deque lock once (thieves hold it across the
// whole copy) guarantees every in-flight copy has committed before the
// arena can be rewritten by an install or fresh frame; claims arriving
// later find bottom <= top and retreat without copying. Returns false
// only when shutdown interrupted the lock spin.
func (w *Worker) clearDead() bool {
	if !w.deque.lockOwner(w.rt.stopped) {
		return false
	}
	w.deque.unlock()
	w.arena.clear()
	return true
}

// runRoot builds the root thread's frame and runs it (the rt analogue
// of the simulator's newThread on rank 0). The root record was
// pre-allocated by Runtime.Run before goroutines started.
func (w *Worker) runRoot() {
	size := core.FrameBytes(w.rt.rootLocals)
	base := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.mustSlice(base, core.FrameHeaderBytes), w.rt.rootFid, w.rt.rootLocals, w.rt.rootRec)
	if w.rt.rootInit != nil {
		w.rt.rootInit(core.NewEnv(w, base, size, 0))
	}
	w.invoke(base, size)
}

// newFrame allocates and zeroes a frame of size bytes below the
// current chain.
func (w *Worker) newFrame(size uint64) mem.VA {
	base, err := w.arena.allocBelow(size)
	if err != nil {
		panic(err)
	}
	b := w.arena.mustSlice(base, size)
	for i := range b {
		b[i] = 0
	}
	return base
}

// invoke runs (or resumes) the thread whose stack starts at base. On
// return the stack is no longer occupied here: Done threads are
// retired; Unwound threads were swapped out by a suspend or released
// after a steal, inside ExecJoin/ExecSpawn.
func (w *Worker) invoke(base mem.VA, size uint64) core.Status {
	h := core.DecodeFrameHeader(w.arena.mustSlice(base, core.FrameHeaderBytes))
	e := core.NewEnv(w, base, size, h.Resume)
	st := core.TaskFn(h.Fid)(e)
	if st == core.Done {
		if !e.Returned() {
			w.ExecComplete(e.Self(), 0)
		}
		w.stats.TasksExecuted++
		if err := w.arena.freeLowest(base, size); err != nil {
			panic(err)
		}
	}
	return st
}

// trySteal picks a random victim and runs the thief side of Fig. 6:
// claim under the FAA lock, memcpy the stack into the same offset of
// our own arena, release, run. Legal only while our region is empty.
func (w *Worker) trySteal() bool {
	n := len(w.rt.workers)
	if n < 2 || !w.arena.empty() {
		return false
	}
	w.stats.StealAttempts++
	victim := w.rng.Intn(n - 1)
	if victim >= w.rank {
		victim++
	}
	v := w.rt.workers[victim]
	ent, outcome := v.deque.StealBegin()
	switch outcome {
	case StealEmpty, StealEmptyLocked:
		w.stats.StealAbortEmpty++
		return false
	case StealLockBusy:
		w.stats.StealAbortLock++
		return false
	}
	// Claimed; the victim's lock is held, so the victim cannot recycle
	// these bytes until we commit. Copy stack → same VA in our arena.
	if err := w.arena.install(ent.FrameBase, ent.FrameSize); err != nil {
		panic(err)
	}
	src, err := v.arena.slice(ent.FrameBase, ent.FrameSize)
	if err != nil {
		panic(err)
	}
	copy(w.arena.mustSlice(ent.FrameBase, ent.FrameSize), src)
	v.deque.StealCommit()
	w.stats.StealsOK++
	w.stats.BytesStolen += ent.FrameSize
	w.invoke(ent.FrameBase, ent.FrameSize)
	return true
}

// resumeSaved restores a parked thread to its original VA (Fig. 7's
// resume_saved_context) and re-enters it at its saved resume point.
func (w *Worker) resumeSaved(sc savedCtx) {
	if err := w.arena.install(sc.base, sc.size); err != nil {
		panic(err)
	}
	copy(w.arena.mustSlice(sc.base, sc.size), sc.buf)
	w.stats.ResumesWait++
	w.invoke(sc.base, sc.size)
}

// idleBackoff yields, then sleeps: the first rounds stay hot for
// latency, after which the worker naps briefly so an idle machine does
// not spin 100% CPU.
func (w *Worker) idleBackoff(idle *int) {
	*idle++
	if *idle < 64 {
		runtime.Gosched()
		return
	}
	time.Sleep(20 * time.Microsecond)
}

// --- core.Exec implementation ----------------------------------------

// ExecReadU64 implements core.Exec over the worker's arena.
func (w *Worker) ExecReadU64(va mem.VA) uint64 { return w.arena.readU64(va) }

// ExecWriteU64 implements core.Exec over the worker's arena.
func (w *Worker) ExecWriteU64(va mem.VA, v uint64) { w.arena.writeU64(va, v) }

// ExecSlice implements core.Exec over the worker's arena.
func (w *Worker) ExecSlice(va mem.VA, n uint64) ([]byte, error) { return w.arena.slice(va, n) }

// ExecWork burns roughly `cycles` iterations of an LCG — the wall-clock
// stand-in for the simulator's virtual-time advance, so workload knobs
// like Fib's workCycles translate into real computation.
func (w *Worker) ExecWork(cycles uint64) {
	x := w.spin
	for i := uint64(0); i < cycles; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	w.spin = x
	w.stats.WorkCycles += cycles
}

// ExecComplete publishes a task's result: store result, then done
// (both seq-cst), so any joiner observing done==1 observes the result.
func (w *Worker) ExecComplete(rec core.Handle, result uint64) {
	r := w.rt.workers[rec.Rank()].records.get(recordIndex(rec))
	r.result.Store(result)
	r.done.Store(1)
	if rec == w.rt.rootRec {
		w.rt.finish(result)
	}
}

// ExecSpawn is the child-first spawn (Fig. 4) on real concurrency:
// save the parent's resume point, publish its continuation on the
// deque, run the child inline, then pop — a failed pop means a real
// concurrent thief took the parent.
func (w *Worker) ExecSpawn(e *core.Env, resumeRP, handleSlot int, fid core.FuncID, localsLen uint32, init func(*core.Env)) bool {
	w.stats.Spawns++
	core.SetFrameResume(w.arena.mustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	rec := w.newRecord()
	// The child's handle lands in the parent's frame BEFORE the
	// continuation is published, so a migrated parent finds it.
	e.SetHandle(handleSlot, rec)
	if err := w.deque.Push(Entry{FrameBase: e.FrameBase(), FrameSize: e.FrameSize()}); err != nil {
		panic(err)
	}
	size := core.FrameBytes(localsLen)
	cbase := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.mustSlice(cbase, core.FrameHeaderBytes), fid, localsLen, rec)
	if init != nil {
		init(core.NewEnv(w, cbase, size, 0))
	}
	w.invoke(cbase, size)
	// Pop the continuation we pushed (Fig. 4 line 14).
	if ent, ok := w.deque.Pop(w.rt.stopped); ok {
		if ent.FrameBase != e.FrameBase() || ent.FrameSize != e.FrameSize() {
			panic(fmt.Sprintf("rt: deque corruption: popped %#x/%d, expected %#x/%d",
				ent.FrameBase, ent.FrameSize, e.FrameBase(), e.FrameSize()))
		}
		return true
	}
	// The continuation (and, by FIFO order, every ancestor's) was
	// stolen by a genuinely concurrent thief. Release the dead local
	// copy and unwind to the scheduler.
	w.stats.ParentStolen++
	if err := w.arena.freeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	return false
}

// ExecJoin is Fig. 7's join: poll the record; on a miss, swap the
// frame out to the Go heap (the pinned-buffer analogue) and park it on
// the wait queue.
func (w *Worker) ExecJoin(e *core.Env, resumeRP int, h core.Handle) (uint64, bool) {
	if !h.Valid() {
		panic("rt: join on invalid handle")
	}
	r := w.rt.workers[h.Rank()].records.get(recordIndex(h))
	if r.done.Load() != 0 {
		w.stats.JoinsFast++
		v := r.result.Load()
		w.rt.workers[h.Rank()].records.release(recordIndex(h))
		return v, true
	}
	w.stats.JoinsMiss++
	w.stats.Suspends++
	core.SetFrameResume(w.arena.mustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	buf := make([]byte, e.FrameSize())
	copy(buf, w.arena.mustSlice(e.FrameBase(), e.FrameSize()))
	if err := w.arena.freeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	w.waitq = append(w.waitq, savedCtx{base: e.FrameBase(), size: e.FrameSize(), buf: buf})
	return 0, false
}

// newRecord allocates a record on this worker's pool.
func (w *Worker) newRecord() core.Handle {
	idx, err := w.records.alloc()
	if err != nil {
		panic(err)
	}
	return recordHandle(w.rank, idx)
}

// ExecGasHeap: the rt backend has no global heap; workloads that need
// one (MergeSort, GlobalSum) are sim-only and skipped by the harness.
func (w *Worker) ExecGasHeap() *gas.Heap { return nil }

func (w *Worker) execGasPanic() {
	panic("rt: global heap (gas) operations are not supported on the real-parallelism backend; run this workload on the simulator")
}

// ExecGasGet implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasGet(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasPut implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasPut(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasGetU64 implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasGetU64(r gas.Ref) uint64 { w.execGasPanic(); return 0 }

// ExecGasPutU64 implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasPutU64(r gas.Ref, v uint64) { w.execGasPanic() }

// ExecGasAlloc implements core.Exec; unsupported on rt.
func (w *Worker) ExecGasAlloc(n uint64) gas.Ref { w.execGasPanic(); return gas.Ref(0) }

// SimWorker returns nil: this backend is not the simulator.
func (w *Worker) SimWorker() *core.Worker { return nil }
