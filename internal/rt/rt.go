package rt

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// TimeoutError reports a run that exceeded its MaxWall budget — the
// structured replacement for an untyped deadline error, so chaos
// harnesses can distinguish "deadlocked or undersized budget" from a
// worker fault.
type TimeoutError struct {
	Budget time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("rt: run exceeded %v wall-clock budget (deadlock or undersized MaxWall?)", e.Budget)
}

// Config sizes a Runtime. The zero value of every field selects a
// sensible default (see DefaultConfig).
type Config struct {
	// Workers is the number of concurrently executing workers, one
	// goroutine each (pinned to an OS thread unless NoPin).
	Workers int
	// Seed drives victim selection; each worker derives its own stream.
	Seed uint64
	// ArenaBase / ArenaSize lay out the per-worker uni-address region;
	// identical across workers by construction, which is the whole
	// point.
	ArenaBase mem.VA
	ArenaSize uint64
	// DequeCap is the per-worker deque capacity (power of two).
	DequeCap uint64
	// RecordCap is the per-worker task-record table size.
	RecordCap uint64
	// MaxWall aborts a run that exceeds this wall-clock budget — the
	// analogue of the simulator's MaxCycles deadlock guard.
	MaxWall time.Duration
	// NoPin disables runtime.LockOSThread per worker (useful in tests
	// that run many runtimes concurrently).
	NoPin bool
	// Grain is the task-granularity cutoff workloads read back through
	// core.Env.Grain: 0 (default) disables coalescing, core.GrainAuto
	// selects the workload's own cutoff applied adaptively, any other
	// value is a static size-metric cutoff.
	Grain uint64
	// StealBatch bounds how many entries one steal round trip may move:
	// 0 selects the deque's own bound (MaxClaim — the steal-half
	// default), 1 restores single-entry steals, larger values clamp to
	// MaxClaim.
	StealBatch int
	// TierGroup is the rank-block width for distance-tiered victim
	// selection (<= 0 selects sched.DefaultTierGroup).
	TierGroup int
	// Fault is the deterministic fault schedule (zero value = none).
	// Only the backend-neutral knobs apply here (steal claim/copy
	// failures and delays); sim-only and dist-only knobs are rejected
	// at the facade.
	Fault fault.Config
	// Obs attaches a wall-clock recorder: one lock-free event ring per
	// worker plus steal/park/copy latency histograms (obs.WallRecorder).
	// Off by default — the disabled path costs one pointer compare per
	// instrumentation site and allocates nothing.
	Obs bool
	// ObsRingCap is the per-worker event-ring capacity (<= 0 selects
	// obs.DefaultWallRingCap; rounded up to a power of two).
	ObsRingCap int
	// MaxJobs bounds how many jobs may occupy job slots at once on a
	// persistent Pool (queued jobs beyond it wait in the admission
	// queue). Single-run Runtimes always use exactly one slot.
	MaxJobs int
	// QueueDepth bounds the Pool admission queue; Submit returns
	// ErrPoolSaturated beyond it. Ignored by single-run Runtimes.
	QueueDepth int
}

// DefaultConfig returns the standard layout for n workers.
func DefaultConfig(n int) Config {
	return Config{
		Workers:   n,
		Seed:      1,
		ArenaBase: core.DefaultUniBase,
		ArenaSize: core.DefaultUniSize,
		DequeCap:  core.DefaultDequeCap,
		RecordCap: 1 << 16,
		MaxWall:   2 * time.Minute,
	}
}

func (c *Config) fillDefaults(persistent bool) {
	d := DefaultConfig(c.Workers)
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ArenaBase == 0 {
		c.ArenaBase = d.ArenaBase
	}
	if c.ArenaSize == 0 {
		c.ArenaSize = d.ArenaSize
	}
	if c.DequeCap == 0 {
		c.DequeCap = d.DequeCap
	}
	if c.RecordCap == 0 {
		c.RecordCap = d.RecordCap
	}
	// A single run inherits the deadlock-guard default; a persistent
	// pool has no natural lifetime, so 0 means "no watchdog" there.
	if c.MaxWall == 0 && !persistent {
		c.MaxWall = d.MaxWall
	}
	if c.MaxJobs <= 0 {
		if persistent {
			c.MaxJobs = 2 * c.Workers
			if c.MaxJobs < 8 {
				c.MaxJobs = 8
			}
		} else {
			c.MaxJobs = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = c.MaxJobs
		if c.QueueDepth < 16 {
			c.QueueDepth = 16
		}
	}
}

// Runtime executes task trees across Config.Workers real workers. A
// single-run Runtime (New + Run) executes one root task and tears the
// world down; a persistent Runtime (NewPool, service.go) keeps the same
// workers parked between jobs and multiplexes many task trees over the
// one set of arenas/deques/record tables, one job slot per admitted
// job.
type Runtime struct {
	cfg     Config
	workers []*Worker

	rootFid    core.FuncID
	rootLocals uint32
	rootInit   func(*core.Env)
	rootRec    core.Handle

	// initErr records a construction failure (bad fault config);
	// returned by Run before any goroutine starts.
	initErr error

	done       atomic.Bool
	finishOnce sync.Once
	rootResult uint64
	failMu     sync.Mutex
	err        error
	wg         sync.WaitGroup

	// lot is the idle-parking lot: workers that exhaust the backoff
	// ladder block here until a push, a record completion or shutdown
	// wakes them (park.go).
	lot parkingLot

	// rec is the wall-clock observability recorder (nil when Config.Obs
	// is off — every instrumented site is nil-safe).
	rec *obs.WallRecorder

	// --- job multiplexing (see service.go for the Pool lifecycle) ---

	// persistent marks a Pool-owned runtime: workers park between jobs
	// instead of exiting, and idle workers dispatch queued jobs.
	persistent bool
	// jobs is the flat per-slot job state every worker consults on the
	// invoke path (state, root handle, grain).
	jobs *sched.JobTable
	// jobMeta is the Go-side per-slot companion: the ticket to signal
	// and the cancel cause. Written under jobMu at dispatch/finalize;
	// the hot-path id read is ordered by the atomics that publish the
	// job's frames.
	jobMeta []jobMeta
	// jobMu guards the admission queue, the slot free list and ticket
	// state transitions.
	jobMu       sync.Mutex
	jobQueue    []*pendingJob
	freeSlots   []uint32
	submitSeq   uint64
	closed      bool
	activeTk    map[*Ticket]struct{}
	jobWG       sync.WaitGroup
	queuedCount atomic.Int64 // mirror of len(jobQueue), read lock-free by idle workers
	// freeSlotCount mirrors len(freeSlots). A queued job is only
	// dispatchable when a slot is free, so the park-side work hint gates
	// on both counters — otherwise idle workers would busy-spin on a
	// non-empty queue for as long as every slot stays occupied.
	freeSlotCount atomic.Int64
	anyCanceled atomic.Int64 // jobs currently draining; gates the invoke-path drain check
	jobsDone    atomic.Uint64
	exited      atomic.Uint64 // workers whose goroutine has returned
	startT      time.Time
	watchdog    *time.Timer

	ran     bool
	elapsed time.Duration
}

// jobMeta is the Go-side half of a job slot.
type jobMeta struct {
	id        uint64 // global submission sequence; tags obs events
	single    bool   // classic Runtime.Run: finalize via finish()
	t         *Ticket
	cancelErr error // set before the Running→Draining CAS that publishes it
}

// New builds a single-run Runtime per cfg.
func New(cfg Config) *Runtime { return newRuntime(cfg, false) }

func newRuntime(cfg Config, persistent bool) *Runtime {
	cfg.fillDefaults(persistent)
	r := &Runtime{cfg: cfg, persistent: persistent}
	r.jobs = sched.NewJobTable(uint64(cfg.MaxJobs))
	r.jobMeta = make([]jobMeta, cfg.MaxJobs)
	if persistent {
		r.activeTk = make(map[*Ticket]struct{})
		r.freeSlots = make([]uint32, 0, cfg.MaxJobs)
		for i := cfg.MaxJobs - 1; i >= 0; i-- {
			r.freeSlots = append(r.freeSlots, uint32(i))
		}
		r.freeSlotCount.Store(int64(cfg.MaxJobs))
	}
	fc := cfg.Fault
	fc.Seed = cfg.Seed
	plan, err := fault.NewPlan(fc, cfg.Workers)
	if err != nil {
		r.initErr = fmt.Errorf("rt: %w", err)
		plan = nil
	}
	// The interface value must be nil (not a typed nil *Plan) for the
	// resilience fast path to collapse.
	var inj sched.StealInjector
	if plan != nil {
		inj = plan
	}
	if cfg.Obs {
		r.rec = obs.NewWallRecorder(cfg.Workers, cfg.ObsRingCap)
	}
	for i := 0; i < cfg.Workers; i++ {
		seed := cfg.Seed*0x9e3779b97f4a7c15 + uint64(i)*0xbf58476d1ce4e5b9 + 1
		w := &Worker{
			rt:         r,
			rank:       i,
			arena:      sched.NewArena(cfg.ArenaBase, cfg.ArenaSize),
			deque:      sched.NewDeque(cfg.DequeCap),
			records:    sched.NewTable(cfg.RecordCap),
			rng:        rand.New(rand.NewSource(int64(seed))),
			wakeCh:     make(chan struct{}, 1),
			parkSlot:   -1,
			lastVictim: -1,
		}
		w.res = sched.NewResilience(i, sched.DefaultResilienceConfig(), inj)
		w.wlog = r.rec.Worker(i)
		w.res.Log = w.wlog
		w.stopFn = r.stopped
		w.grain = cfg.Grain
		w.tiers = sched.BuildTiers(i, cfg.Workers, cfg.TierGroup)
		w.stealBuf = make([]sched.Entry, stealBatchLimit(cfg.StealBatch, w.deque.MaxClaim()))
		w.jobCounts = sched.NewJobCounters(uint64(cfg.MaxJobs))
		w.curJob = ^uint32(0) // force a slot reload on the first invoke
		r.workers = append(r.workers, w)
	}
	return r
}

// stealBatchLimit resolves the Config.StealBatch knob against the
// deque's claim bound: 0 → maxClaim, otherwise clamp to [1, maxClaim].
func stealBatchLimit(batch int, maxClaim uint64) int {
	n := int(maxClaim)
	if batch > 0 && batch < n {
		n = batch
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Run executes the root task fid(localsLen bytes of locals, initialised
// by init) to completion and returns its result. It blocks until every
// worker goroutine has exited.
func (r *Runtime) Run(fid core.FuncID, localsLen uint32, init func(*core.Env)) (uint64, error) {
	if r.ran {
		return 0, fmt.Errorf("rt: Runtime.Run called twice; build a fresh Runtime per run")
	}
	if r.persistent {
		return 0, fmt.Errorf("rt: Run on a persistent Pool runtime; use Pool.Submit")
	}
	r.ran = true
	if r.initErr != nil {
		return 0, r.initErr
	}
	r.rootFid, r.rootLocals, r.rootInit = fid, localsLen, init
	// The single run is job slot 0 of the job machinery the persistent
	// Pool shares: the root record is allocated and tagged before any
	// goroutine starts, and its handle published in the slot so every
	// worker's ExecComplete detects the root completion.
	r.rootRec = r.workers[0].newRecord(sched.JobTag(0))
	js := r.jobs.Get(0)
	js.Grain.Store(r.cfg.Grain)
	js.Root.Store(uint64(r.rootRec))
	js.State.Store(sched.JobRunning)
	r.jobMeta[0].single = true
	watchdog := time.AfterFunc(r.cfg.MaxWall, func() {
		r.fail(&TimeoutError{Budget: r.cfg.MaxWall})
	})
	start := time.Now()
	for _, w := range r.workers {
		r.wg.Add(1)
		go w.run()
	}
	r.wg.Wait()
	r.elapsed = time.Since(start)
	watchdog.Stop()
	r.failMu.Lock()
	err := r.err
	r.failMu.Unlock()
	if err != nil {
		return 0, err
	}
	if !r.done.Load() {
		return 0, fmt.Errorf("rt: workers exited without completing the root task")
	}
	return r.rootResult, nil
}

// finish publishes the root result and releases every worker's idle
// loop, including workers blocked in the parking lot. Called by
// whichever worker completes the root record.
func (r *Runtime) finish(result uint64) {
	r.finishOnce.Do(func() {
		r.rootResult = result
		r.done.Store(true)
		r.lot.wakeAll()
	})
}

// fail aborts the run; the first error wins. The wakeAll releases any
// parked worker so the run can actually wind down (the watchdog's
// deadline fail would otherwise leave them blocked forever).
func (r *Runtime) fail(err error) {
	r.failMu.Lock()
	if r.err == nil {
		r.err = err
	}
	r.failMu.Unlock()
	r.done.Store(true)
	r.lot.wakeAll()
	// A pool failure must also resolve every outstanding ticket — the
	// workers are winding down and will never finalize them.
	if r.persistent {
		r.failTickets(err)
	}
}

// stopped reports whether workers should wind down (root finished or
// run failed). Used as the abort predicate for lock spins.
func (r *Runtime) stopped() bool { return r.done.Load() }

// Elapsed returns the wall-clock duration of the completed run.
func (r *Runtime) Elapsed() time.Duration { return r.elapsed }

// Obs returns the wall-clock recorder (nil when observability is off).
// Export it only after Run returns — the rings are read at quiescence.
func (r *Runtime) Obs() *obs.WallRecorder { return r.rec }

// Workers returns the worker count.
func (r *Runtime) Workers() int { return len(r.workers) }

// WorkerStats returns rank's counters; call only after Run returns.
func (r *Runtime) WorkerStats(rank int) Stats { return r.workers[rank].Stats() }

// ParkedWorkers returns how many workers are currently blocked in the
// parking lot. Unlike most introspection here it is safe to call
// MID-RUN (one atomic load) — the quiescence tests poll it.
func (r *Runtime) ParkedWorkers() int { return int(r.lot.count.Load()) }

// IdleSpins sums every worker's idle-loop round counter. Safe to call
// mid-run (atomic loads); a fully parked runtime's value stops
// advancing, which is the whole point of parking.
func (r *Runtime) IdleSpins() uint64 {
	var n uint64
	for _, w := range r.workers {
		n += w.idleSpins.Load()
	}
	return n
}

// TotalStats sums all workers' counters; call only after Run returns.
func (r *Runtime) TotalStats() Stats {
	var t Stats
	for _, w := range r.workers {
		s := w.Stats()
		t.TasksExecuted += s.TasksExecuted
		t.TasksDrained += s.TasksDrained
		t.Spawns += s.Spawns
		t.JoinsFast += s.JoinsFast
		t.JoinsMiss += s.JoinsMiss
		t.Suspends += s.Suspends
		t.ResumesLocal += s.ResumesLocal
		t.ResumesWait += s.ResumesWait
		t.ParentStolen += s.ParentStolen
		t.StealAttempts += s.StealAttempts
		t.StealsOK += s.StealsOK
		t.StealAbortEmpty += s.StealAbortEmpty
		t.StealAbortLock += s.StealAbortLock
		t.BytesStolen += s.BytesStolen
		t.StealBatches += s.StealBatches
		t.StealBatchEntries += s.StealBatchEntries
		t.StealHintProbes += s.StealHintProbes
		t.StealCacheProbes += s.StealCacheProbes
		t.StealBlindProbes += s.StealBlindProbes
		t.Parks += s.Parks
		t.Wakes += s.Wakes
		t.WorkCycles += s.WorkCycles
		t.StealFaults += s.StealFaults
		t.StealRetries += s.StealRetries
		t.StealRollbacks += s.StealRollbacks
		t.StealAbortsFault += s.StealAbortsFault
		t.VictimBlacklists += s.VictimBlacklists
		t.FaultBackoffNS += s.FaultBackoffNS
		if s.MaxStackUsed > t.MaxStackUsed {
			t.MaxStackUsed = s.MaxStackUsed
		}
	}
	return t
}

// CheckQuiescence verifies the post-run invariants the simulator's
// Machine.CheckQuiescence checks: every spawned task executed exactly
// once, all deques and wait queues drained, and exactly one record (the
// root's, never joined) still live. Call after a successful Run.
func (r *Runtime) CheckQuiescence() error {
	var executed, spawned uint64
	live := 0
	for _, w := range r.workers {
		executed += w.stats.TasksExecuted
		spawned += w.stats.Spawns
		if n := w.deque.Size(); n != 0 {
			return fmt.Errorf("rt: worker %d deque holds %d entries after completion", w.rank, n)
		}
		if len(w.waitq) != 0 {
			return fmt.Errorf("rt: worker %d wait queue holds %d suspended threads after completion", w.rank, len(w.waitq))
		}
		live += w.records.Live()
	}
	if executed != spawned+1 {
		return fmt.Errorf("rt: %d tasks executed but %d spawned (+1 root)", executed, spawned)
	}
	if live != 1 {
		return fmt.Errorf("rt: %d records live after completion, want 1 (the root's)", live)
	}
	return nil
}
