package rt

import (
	"sync"
	"testing"
	"time"

	"uniaddr/internal/workloads"
)

// TestIdleStateLadder pins the backoff counter semantics: exactly
// idleSpinRounds hot spins, then naps doubling from idleNapStart to
// idleNapCap, then park forever (no overflow, no further naps) until a
// reset rewinds to hot spinning.
func TestIdleStateLadder(t *testing.T) {
	var s idleState
	for i := 0; i < idleSpinRounds; i++ {
		act, _ := s.step()
		if act != actSpin {
			t.Fatalf("round %d: action %d, want spin", i, act)
		}
	}
	wantNap := idleNapStart
	for wantNap <= idleNapCap {
		act, d := s.step()
		if act != actNap || d != wantNap {
			t.Fatalf("nap rung: action %d dur %v, want nap %v", act, d, wantNap)
		}
		wantNap *= 2
	}
	for i := 0; i < 10; i++ {
		if act, _ := s.step(); act != actPark {
			t.Fatalf("post-ladder round %d: action %d, want park", i, act)
		}
	}
	s.reset()
	if act, _ := s.step(); act != actSpin {
		t.Fatal("reset did not rewind the ladder to spinning")
	}
}

// TestIdleLadderTotalDelay documents the ladder's shape: an idle worker
// reaches the parking lot after roughly half a millisecond of napping,
// not never (the old engine polled every 20µs forever).
func TestIdleLadderTotalDelay(t *testing.T) {
	var s idleState
	var total time.Duration
	rounds := 0
	for {
		act, d := s.step()
		if act == actPark {
			break
		}
		total += d
		rounds++
		if rounds > 10_000 {
			t.Fatal("ladder never reaches park")
		}
	}
	if total > 2*time.Millisecond {
		t.Fatalf("ladder naps %v before parking; want under 2ms", total)
	}
}

// parkRig builds an un-run Runtime so lot/worker plumbing can be
// exercised directly.
func parkRig(workers int) *Runtime {
	cfg := DefaultConfig(workers)
	cfg.NoPin = true
	return New(cfg)
}

func TestParkingLotWakeOneLIFO(t *testing.T) {
	r := parkRig(3)
	lot := &r.lot
	for _, w := range r.workers {
		lot.register(w)
	}
	if got := lot.count.Load(); got != 3 {
		t.Fatalf("count = %d after 3 registers", got)
	}
	lot.wakeOne()
	// LIFO: the most recently registered worker (rank 2) gets the token.
	select {
	case <-r.workers[2].wakeCh:
	default:
		t.Fatal("wakeOne did not wake the most recent parker")
	}
	if r.workers[2].parkSlot != -1 {
		t.Fatal("woken worker still registered")
	}
	if got := lot.count.Load(); got != 2 {
		t.Fatalf("count = %d after wakeOne", got)
	}
	// The remaining workers must still be tracked under correct slots.
	for _, w := range []*Worker{r.workers[0], r.workers[1]} {
		if w.parkSlot < 0 || lot.parked[w.parkSlot] != w {
			t.Fatalf("rank %d slot bookkeeping broken after swap-remove", w.rank)
		}
	}
}

func TestParkingLotWakeWorkerPrecise(t *testing.T) {
	r := parkRig(4)
	lot := &r.lot
	for _, w := range r.workers {
		lot.register(w)
	}
	lot.wakeWorker(r.workers[1])
	select {
	case <-r.workers[1].wakeCh:
	default:
		t.Fatal("wakeWorker did not deliver to the target")
	}
	for _, rank := range []int{0, 2, 3} {
		select {
		case <-r.workers[rank].wakeCh:
			t.Fatalf("rank %d woken spuriously", rank)
		default:
		}
	}
	// Waking a non-parked worker is a no-op, not a stray token.
	lot.wakeWorker(r.workers[1])
	select {
	case <-r.workers[1].wakeCh:
		t.Fatal("wakeWorker sent a token to an unregistered worker")
	default:
	}
}

func TestParkingLotCancelVsWake(t *testing.T) {
	r := parkRig(2)
	lot := &r.lot
	w := r.workers[0]
	lot.register(w)
	if !lot.cancel(w) {
		t.Fatal("cancel failed with no waker in sight")
	}
	if got := lot.count.Load(); got != 0 {
		t.Fatalf("count = %d after cancel", got)
	}
	// Waker claims first: cancel must report false and the token must
	// be in the channel for the parker to consume.
	lot.register(w)
	lot.wakeOne()
	if lot.cancel(w) {
		t.Fatal("cancel succeeded after a waker claimed the worker")
	}
	select {
	case <-w.wakeCh:
	default:
		t.Fatal("claimed worker's token missing")
	}
}

// TestParkingLotStress hammers register/cancel/wakeOne/wakeAll from
// concurrent goroutines (run under -race): the token-pairing invariant
// means no send ever blocks and every parked goroutine is eventually
// released.
func TestParkingLotStress(t *testing.T) {
	r := parkRig(8)
	lot := &r.lot
	var wg sync.WaitGroup
	for _, w := range r.workers {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				lot.register(w)
				if i%3 == 0 {
					if !lot.cancel(w) {
						<-w.wakeCh // claimed: consume the in-flight token
					}
					continue
				}
				<-w.wakeCh
			}
		}(w)
	}
	stop := make(chan struct{})
	var wakers sync.WaitGroup
	for i := 0; i < 4; i++ {
		wakers.Add(1)
		go func() {
			defer wakers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					lot.wakeOne()
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parkers wedged: lost wakeup or blocked token send")
	}
	close(stop)
	wakers.Wait()
	if got := lot.count.Load(); got != 0 {
		t.Fatalf("count = %d after all parkers exited", got)
	}
}

// TestParkWakeNoLostWakeup runs suspend-heavy and steal-heavy workloads
// across seeds with a tight wall-clock budget: a lost wakeup parks a
// worker holding the only copy of a suspended thread, deadlocks the
// run, and trips the watchdog well inside the budget. Run under -race
// in CI.
func TestParkWakeNoLostWakeup(t *testing.T) {
	specs := []workloads.Spec{
		workloads.PingPong(64, 200, 0),
		workloads.Fib(16, 10),
		workloads.UTS(19, 7, workloads.DefaultUTSB0, 10),
	}
	for _, spec := range specs {
		for seed := uint64(1); seed <= 5; seed++ {
			cfg := DefaultConfig(8)
			cfg.Seed = seed
			cfg.NoPin = true
			cfg.MaxWall = 30 * time.Second
			r := New(cfg)
			got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec.Name, seed, err)
			}
			if got != spec.Expected {
				t.Fatalf("%s seed %d: result %d, want %d", spec.Name, seed, got, spec.Expected)
			}
			if err := r.CheckQuiescence(); err != nil {
				t.Fatalf("%s seed %d: %v", spec.Name, seed, err)
			}
		}
	}
}

// TestQuiescenceParkedWorkersStopSpinning proves parking actually
// stops the idle churn: with one worker grinding a single long task and
// everyone else idle, the other workers must all reach the lot and the
// global idle-round counter must stop advancing — the old 20µs
// sleep-poll engine advanced it forever.
func TestQuiescenceParkedWorkersStopSpinning(t *testing.T) {
	const workers = 8
	// One task, no spawns: the Work() burn keeps rank 0 busy for a few
	// seconds while the rest have nothing to do. It must run LONG: on a
	// saturated single-CPU box every idle-ladder round costs a whole
	// scheduling quantum, so the seven idle workers take over a second
	// of wall clock to walk their ladders into the lot.
	spec := workloads.Fib(1, 3_000_000_000)
	cfg := DefaultConfig(workers)
	cfg.NoPin = true
	r := New(cfg)
	resCh := make(chan error, 1)
	go func() {
		got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
		if err == nil && got != spec.Expected {
			err = &quiesceResultErr{got: got, want: spec.Expected}
		}
		resCh <- err
	}()
	deadline := time.Now().Add(90 * time.Second)
	for r.ParkedWorkers() != workers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d workers parked", r.ParkedWorkers(), workers-1)
		}
		time.Sleep(time.Millisecond)
	}
	// All idle workers are in the lot. Their spin counters must freeze.
	before := r.IdleSpins()
	time.Sleep(100 * time.Millisecond)
	if r.ParkedWorkers() == workers-1 {
		if after := r.IdleSpins(); after != before {
			t.Fatalf("idle spins advanced %d → %d while all idle workers were parked", before, after)
		}
	} // else: the run finished during the sample window; nothing to assert.
	if err := <-resCh; err != nil {
		t.Fatal(err)
	}
}

type quiesceResultErr struct{ got, want uint64 }

func (e *quiesceResultErr) Error() string {
	return "quiescence run: wrong root result"
}
