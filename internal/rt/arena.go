// Package rt is the real-parallelism backend: it executes the same
// registered task functions as the virtual-time simulator
// (internal/core, internal/sim) on actual goroutines, one per worker,
// with a THE-protocol deque built from sync/atomic operations and
// steals performed as cross-arena memory copies. Where the simulator is
// the semantic oracle — deterministic, single-threaded, every cost
// modelled — rt is the measurement backend: wall-clock time, true
// concurrency, real cache traffic. Both run identical workload Specs,
// so a differential harness (internal/harness) can assert their root
// results agree.
package rt

import (
	"encoding/binary"
	"fmt"

	"uniaddr/internal/mem"
)

// arena is one worker's uni-address region (paper §5.2, Fig. 3) backed
// by a plain byte slice. Every worker maps its arena at the same
// virtual base, so a frame's VA is position-independent across workers:
// a steal copies bytes from the victim's slice into the thief's slice
// at the SAME offset and every intra-stack pointer stays valid — the
// uni-address guarantee, realised with memcpy instead of RDMA READ.
//
// The stack discipline is the simulator's Region verbatim: the used
// part is one contiguous range [p, top); fresh stacks are pushed below
// p; only the lowest (running) stack is ever freed or swapped out; a
// stolen or saved thread may be installed at its original VA only while
// the region is empty (§5.2 rule 5).
//
// Concurrency: the owner mutates p/top; a thief reads the arena bytes
// of a claimed frame while holding the owner's deque lock, which the
// protocol proves cannot overlap any owner write to those bytes (see
// deque.go). No atomics are needed on the arena itself.
type arena struct {
	bytes []byte
	base  mem.VA
	end   mem.VA
	p     mem.VA // next free address (stacks grow down); used = [p, top)
	top   mem.VA
	max   uint64 // high-water usage in bytes
}

func newArena(base mem.VA, size uint64) *arena {
	end := base + mem.VA(size)
	return &arena{
		bytes: make([]byte, size),
		base:  base,
		end:   end,
		p:     end,
		top:   end,
	}
}

// slice returns the backing bytes for [va, va+n), bounds-checked
// against the arena (not against [p, top): thieves read frames they
// have claimed but not yet installed locally). slice and its wrappers
// below sit on every frame-slot access, so their fast paths carry no
// fmt machinery: error/panic construction lives in out-of-line
// noinline slow paths. The bounds check is wrap-safe — `n > len-off`
// cannot overflow where the old `off+n > len` form could — and the
// off > len comparison also catches va < a.base, because the
// subtraction wraps to a value far above any real arena length.
func (a *arena) slice(va mem.VA, n uint64) ([]byte, error) {
	off := uint64(va) - uint64(a.base)
	if off > uint64(len(a.bytes)) || n > uint64(len(a.bytes))-off {
		return nil, a.sliceErr(va, n)
	}
	return a.bytes[off : off+n : off+n], nil
}

//go:noinline
func (a *arena) sliceErr(va mem.VA, n uint64) error {
	return fmt.Errorf("rt: access [%#x,+%d) outside arena [%#x,%#x)", va, n, a.base, a.end)
}

func (a *arena) mustSlice(va mem.VA, n uint64) []byte {
	off := uint64(va) - uint64(a.base)
	if off > uint64(len(a.bytes)) || n > uint64(len(a.bytes))-off {
		a.sliceFail(va, n)
	}
	return a.bytes[off : off+n : off+n]
}

//go:noinline
func (a *arena) sliceFail(va mem.VA, n uint64) {
	panic(a.sliceErr(va, n))
}

func (a *arena) readU64(va mem.VA) uint64 {
	off := uint64(va) - uint64(a.base)
	if b := a.bytes; off < uint64(len(b)) && uint64(len(b))-off >= 8 {
		return binary.LittleEndian.Uint64(b[off:])
	}
	return a.readU64Slow(va)
}

//go:noinline
func (a *arena) readU64Slow(va mem.VA) uint64 {
	return binary.LittleEndian.Uint64(a.mustSlice(va, 8))
}

func (a *arena) writeU64(va mem.VA, v uint64) {
	off := uint64(va) - uint64(a.base)
	if b := a.bytes; off < uint64(len(b)) && uint64(len(b))-off >= 8 {
		binary.LittleEndian.PutUint64(b[off:], v)
		return
	}
	a.writeU64Slow(va, v)
}

//go:noinline
func (a *arena) writeU64Slow(va mem.VA, v uint64) {
	binary.LittleEndian.PutUint64(a.mustSlice(va, 8), v)
}

func (a *arena) empty() bool { return a.p == a.top }

func (a *arena) used() uint64 { return uint64(a.top - a.p) }

// allocBelow pushes a new stack of size bytes immediately below the
// current lowest stack (§5.2 rule 3).
func (a *arena) allocBelow(size uint64) (mem.VA, error) {
	if uint64(a.p-a.base) < size {
		return 0, fmt.Errorf("rt: arena exhausted: need %d, have %d free below p (raise Config.ArenaSize)", size, a.p-a.base)
	}
	a.p -= mem.VA(size)
	if u := a.used(); u > a.max {
		a.max = u
	}
	return a.p, nil
}

// freeLowest releases the lowest stack, which must start at base and be
// size bytes. When the region becomes empty, p and top snap back to the
// end so the next fresh task starts at the region's top.
func (a *arena) freeLowest(base mem.VA, size uint64) error {
	if base != a.p {
		return fmt.Errorf("rt: freeLowest(%#x) but lowest stack is %#x", base, a.p)
	}
	if uint64(a.top-a.p) < size {
		return fmt.Errorf("rt: freeLowest size %d exceeds used %d", size, a.used())
	}
	a.p += mem.VA(size)
	if a.p == a.top {
		a.p, a.top = a.end, a.end
	}
	return nil
}

// install places a thread occupying [base, base+size) into an empty
// region — the landing step of a steal or of resuming a saved context.
func (a *arena) install(base mem.VA, size uint64) error {
	if !a.empty() {
		return fmt.Errorf("rt: install into non-empty arena (used %d bytes)", a.used())
	}
	// size is compared against the space remaining above base rather
	// than added to base: `base+size > end` wraps for sizes near 2^64
	// and would admit an install whose top lies past the arena's end.
	if base < a.base || base > a.end || size > uint64(a.end-base) {
		return fmt.Errorf("rt: install [%#x,+%d) outside arena [%#x,%#x)", base, size, a.base, a.end)
	}
	a.p = base
	a.top = base + mem.VA(size)
	if u := a.used(); u > a.max {
		a.max = u
	}
	return nil
}

// clear empties the region, reclaiming space held by the dead local
// copies of stolen threads. Called only when no thread is running and
// the deque is empty, at which point everything left belongs to threads
// that now live elsewhere.
func (a *arena) clear() {
	a.p, a.top = a.end, a.end
}
