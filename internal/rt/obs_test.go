package rt

import (
	"testing"

	"uniaddr/internal/obs"
	"uniaddr/internal/workloads"
)

// TestRTObsStealLifecycle runs a steal-heavy workload with the wall
// recorder on and checks the exported events agree with the counters:
// every successful steal appears as a KStealOK interval (and a
// steal-latency sample), every probe is classified, tasks/parks show
// up, and nothing in the run's semantics changed.
func TestRTObsStealLifecycle(t *testing.T) {
	spec := workloads.Fib(18, 20)
	cfg := DefaultConfig(4)
	cfg.NoPin = true
	cfg.Obs = true
	r := New(cfg)
	got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec.Expected {
		t.Fatalf("result %d, want %d", got, spec.Expected)
	}
	rec := r.Obs()
	if rec == nil {
		t.Fatal("Obs() nil with Config.Obs set")
	}
	ex := rec.Export()
	if ex.Clock != obs.ClockWallNS {
		t.Fatalf("clock %q", ex.Clock)
	}
	ts := r.TotalStats()
	var kinds [64]uint64
	for _, l := range ex.Logs {
		for _, e := range l.Events {
			kinds[e.Kind]++
		}
	}
	if ex.Dropped() == 0 {
		// Default ring cap comfortably holds this run; every counter
		// must then match its event kind exactly.
		// One KStealOK interval per successful batched round trip;
		// StealsOK counts the entries those trips moved.
		if kinds[obs.KStealOK] != ts.StealBatches {
			t.Errorf("KStealOK events %d, StealBatches %d", kinds[obs.KStealOK], ts.StealBatches)
		}
		if ts.StealBatchEntries != ts.StealsOK {
			t.Errorf("StealBatchEntries %d, StealsOK %d", ts.StealBatchEntries, ts.StealsOK)
		}
		probes := kinds[obs.KProbeCache] + kinds[obs.KProbeHint] + kinds[obs.KProbeBlind]
		if probes != ts.StealAttempts {
			t.Errorf("probe events %d, StealAttempts %d", probes, ts.StealAttempts)
		}
		if kinds[obs.KPark] != ts.Parks {
			t.Errorf("KPark events %d, Parks %d", kinds[obs.KPark], ts.Parks)
		}
		if kinds[obs.KSuspend] != ts.Suspends {
			t.Errorf("KSuspend events %d, Suspends %d", kinds[obs.KSuspend], ts.Suspends)
		}
	}
	if kinds[obs.KTask] == 0 {
		t.Error("no KTask events recorded")
	}
	var stealHist uint64
	for _, nh := range ex.Hists {
		if nh.Name == "steal latency" {
			stealHist = nh.Hist.Count
		}
	}
	if stealHist != ts.StealBatches {
		t.Errorf("steal latency samples %d, StealBatches %d", stealHist, ts.StealBatches)
	}
}

// TestRTObsConcurrentStress is the -race stress of satellite 3: eight
// pinned-loop workers hammer their rings (a tiny cap forces constant
// wrap-around) while the run proceeds, then the reader decodes at
// quiescence. Corruption would surface as an out-of-range kind, a
// mangled peer, or a race report.
func TestRTObsConcurrentStress(t *testing.T) {
	spec := workloads.Fib(17, 50)
	cfg := DefaultConfig(8)
	cfg.NoPin = true
	cfg.Obs = true
	cfg.ObsRingCap = 256 // force heavy overflow
	r := New(cfg)
	got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec.Expected {
		t.Fatalf("result %d, want %d", got, spec.Expected)
	}
	ex := r.Obs().Export()
	if len(ex.Logs) != 8 {
		t.Fatalf("%d logs", len(ex.Logs))
	}
	var kept int
	for _, l := range ex.Logs {
		kept += len(l.Events)
		if uint64(len(l.Events)) > 256 {
			t.Fatalf("worker %d kept %d events, ring cap 256", l.Rank, len(l.Events))
		}
		if l.Total > 256 && l.Dropped != l.Total-256 {
			t.Fatalf("worker %d total %d dropped %d", l.Rank, l.Total, l.Dropped)
		}
		for _, e := range l.Events {
			if e.Kind.String()[0] == 'k' { // Kind.String falls back to "kind(%d)"
				t.Fatalf("worker %d: corrupt kind %d", l.Rank, e.Kind)
			}
			if e.Peer < -1 || e.Peer >= 8 {
				t.Fatalf("worker %d: corrupt peer %d", l.Rank, e.Peer)
			}
		}
	}
	if kept == 0 {
		t.Fatal("no events survived")
	}
}

// TestRTObsDisabledPath pins satellite 6: with observability off the
// runtime allocates no recorder, the instrumented steal round trip
// stays zero-alloc (the PR-4 rail), and a single-worker run's counters
// are bit-identical with and without the recorder attached — the
// nil-receiver path does not perturb scheduling.
func TestRTObsDisabledPath(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.NoPin = true
	r := New(cfg)
	if r.Obs() != nil {
		t.Fatal("recorder allocated with Obs off")
	}
	victim, thief := r.workers[0], r.workers[1]
	if victim.wlog != nil || victim.res.Log != nil {
		t.Fatal("worker log wired with Obs off")
	}
	const size = 128
	base := victim.newFrame(size)
	allocs := testing.AllocsPerRun(200, func() {
		if err := victim.deque.Push(Entry{FrameBase: base, FrameSize: size}); err != nil {
			t.Fatal(err)
		}
		ent, outcome := thief.res.StealFrom(0, victim.deque, victim.arena, thief.arena)
		if outcome != StealOK {
			t.Fatalf("steal outcome %v", outcome)
		}
		if err := thief.arena.FreeLowest(ent.FrameBase, ent.FrameSize); err != nil {
			t.Fatal(err)
		}
		thief.arena.Clear()
	})
	if allocs != 0 {
		t.Fatalf("instrumented steal round trip allocates %.1f/op with obs off, want 0", allocs)
	}

	// Single-worker schedules are deterministic, so every counter must
	// be identical with and without the recorder.
	spec := workloads.Fib(15, 0)
	run := func(withObs bool) Stats {
		c := DefaultConfig(1)
		c.NoPin = true
		c.Obs = withObs
		rt := New(c)
		got, err := rt.Run(spec.Fid, spec.Locals, spec.Init)
		if err != nil {
			t.Fatal(err)
		}
		if got != spec.Expected {
			t.Fatalf("result %d, want %d", got, spec.Expected)
		}
		return rt.TotalStats()
	}
	off, on := run(false), run(true)
	if off != on {
		t.Fatalf("single-worker counters diverge with obs on:\noff %+v\non  %+v", off, on)
	}
}
