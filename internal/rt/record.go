package rt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"uniaddr/internal/core"
	"uniaddr/internal/mem"
)

// Task records implement join (§5.4). As in the simulator, a record
// lives with the worker that executed the spawn, and its Handle packs
// (rank, VA) so any worker holding the handle can complete or poll it —
// here with atomic loads/stores on shared memory where the paper uses
// one-sided RDMA READ/WRITE.
//
// recordVABase anchors the handle address space: record i on any worker
// has VA recordVABase + i*recordBytes (the rank half of the Handle
// disambiguates workers, exactly like the simulator's per-process RDMA
// heaps all mapping at the same base).
const (
	recordVABase mem.VA = 0x6000_0000_0000
	recordBytes         = 16
)

// record is one completion record. done transitions 0→1 exactly once
// per allocation; result is stored before done (both seq-cst), so a
// joiner that loads done==1 also observes the result — the same
// publish order the simulator's 16-byte RDMA WRITE provides by landing
// atomically.
type record struct {
	done   atomic.Uint64
	result atomic.Uint64
}

// recordPool is one worker's record table: a fixed backing array (so
// &recs[i] stays valid forever — handles may be polled by any worker)
// with a mutex-guarded free list, because a record is freed by the
// JOINER, which may be a different worker than the owner allocating.
type recordPool struct {
	recs []record

	mu   sync.Mutex
	free []uint32
	next uint32 // first never-used index
	live int
}

func newRecordPool(capacity uint64) *recordPool {
	return &recordPool{recs: make([]record, capacity)}
}

// alloc returns a zeroed record's handle-VA offset index. The zeroing
// happens-before any other worker sees the handle: the handle only
// propagates through a frame slot published via deque push/steal, whose
// atomics carry the edge.
func (p *recordPool) alloc() (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var idx uint32
	switch {
	case len(p.free) > 0:
		idx = p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		p.recs[idx].done.Store(0)
		p.recs[idx].result.Store(0)
	case uint64(p.next) < uint64(len(p.recs)):
		idx = p.next
		p.next++
	default:
		return 0, fmt.Errorf("rt: record pool exhausted (%d records; raise Config.RecordCap)", len(p.recs))
	}
	p.live++
	return idx, nil
}

func (p *recordPool) release(idx uint32) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.live--
	p.free = append(p.free, idx)
}

func (p *recordPool) get(idx uint32) *record { return &p.recs[idx] }

// Live returns the number of allocated records (quiescence check).
func (p *recordPool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

func recordIndex(h core.Handle) uint32 {
	return uint32((h.VA() - recordVABase) / recordBytes)
}

func recordHandle(rank int, idx uint32) core.Handle {
	return core.MakeHandle(rank, recordVABase+mem.VA(idx)*recordBytes)
}
