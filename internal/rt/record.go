package rt

import (
	"fmt"
	"sync/atomic"

	"uniaddr/internal/core"
	"uniaddr/internal/mem"
)

// Task records implement join (§5.4). As in the simulator, a record
// lives with the worker that executed the spawn, and its Handle packs
// (rank, VA) so any worker holding the handle can complete or poll it —
// here with atomic loads/stores on shared memory where the paper uses
// one-sided RDMA READ/WRITE.
//
// recordVABase anchors the handle address space: record i on any worker
// has VA recordVABase + i*recordBytes (the rank half of the Handle
// disambiguates workers, exactly like the simulator's per-process RDMA
// heaps all mapping at the same base).
const (
	recordVABase mem.VA = 0x6000_0000_0000
	recordBytes         = 16
)

// record is one completion record. done transitions 0→1 exactly once
// per allocation; result is stored before done (both seq-cst), so a
// joiner that loads done==1 also observes the result — the same
// publish order the simulator's 16-byte RDMA WRITE provides by landing
// atomically.
type record struct {
	done   atomic.Uint64
	result atomic.Uint64
	// waiter publishes which worker suspended at a join on this record:
	// rank+1, 0 = none. The joiner stores waiter BEFORE re-checking done
	// (ExecJoin); the completer stores done BEFORE loading waiter
	// (ExecComplete). Under seq-cst ordering at least one side observes
	// the other, so a suspended joiner is always either resumed by its
	// own recheck or woken precisely by the completer — never silently
	// left parked (see DESIGN.md §10).
	waiter atomic.Int64
}

// recordPool is one worker's record table: a fixed backing array (so
// &recs[i] stays valid forever — handles may be polled by any worker)
// plus a free list. Allocation is owner-only (records are allocated by
// the spawning worker), but a record is freed by the JOINER, which may
// be any worker — so the free list is split:
//
//   - releaseHead/next form a Treiber stack any worker CAS-pushes freed
//     indices onto. Only the owner ever removes nodes, and it takes the
//     WHOLE stack with one Swap — there is no pop-side CAS, so the
//     classic Treiber pop ABA cannot occur (a push-side CAS that
//     succeeds has verified the head it links to is the current head).
//   - localFree is the owner's private stack, refilled by draining the
//     release stack; alloc touches no shared state on the fast path.
//
// This replaces a mutex pair per task (alloc by the owner + release by
// the joiner) that cost ~16% of a fib run's CPU on one core.
type recordPool struct {
	recs []record
	// next[i] holds idx+1 of the node below i on the release stack
	// (0 = end of chain). Only meaningful while i is on that stack.
	next        []atomic.Uint64
	releaseHead atomic.Uint64 // idx+1 of the top released record; 0 = empty

	// Owner-only state (no synchronisation needed):
	localFree []uint32
	nextFresh uint32 // first never-used index
	allocs    uint64 // owner-only allocation count
	freedLoc  uint64 // owner-only count of releaseLocal calls

	// freedRem counts cross-worker release calls. Live() subtracts both
	// freed counters from allocs; it is only meaningful post-run (the
	// WaitGroup edge publishes the owner-only counters).
	freedRem atomic.Uint64
}

func newRecordPool(capacity uint64) *recordPool {
	return &recordPool{
		recs: make([]record, capacity),
		next: make([]atomic.Uint64, capacity),
	}
}

// alloc returns a zeroed record's index. Owner-only: called by the
// spawning worker (and once by Runtime.Run for the root, before any
// worker goroutine starts).
func (p *recordPool) alloc() (uint32, error) {
	if len(p.localFree) == 0 {
		// Drain everything joiners have released since the last refill.
		// The Swap's seq-cst RMW makes each releaser's next-link store
		// (program-ordered before its publishing CAS) visible here.
		if h := p.releaseHead.Swap(0); h != 0 {
			idx := uint32(h - 1)
			for {
				p.localFree = append(p.localFree, idx)
				nx := p.next[idx].Load()
				if nx == 0 {
					break
				}
				idx = uint32(nx - 1)
			}
		}
	}
	var idx uint32
	if n := len(p.localFree); n > 0 {
		idx = p.localFree[n-1]
		p.localFree = p.localFree[:n-1]
		// Only done needs resetting for reuse. result is always stored
		// by the completer before it stores done=1, so the new epoch's
		// joiner can never read the old value; a stale waiter causes at
		// worst one spurious wake (the Dekker handshake in ExecJoin /
		// ExecComplete never depends on the field's initial value).
		p.recs[idx].done.Store(0)
	} else if uint64(p.nextFresh) < uint64(len(p.recs)) {
		idx = p.nextFresh
		p.nextFresh++
	} else {
		return 0, fmt.Errorf("rt: record pool exhausted (%d records; raise Config.RecordCap)", len(p.recs))
	}
	p.allocs++
	return idx, nil
}

// release returns a record to the pool. Called by the joiner — any
// worker — so it pushes onto the shared release stack.
func (p *recordPool) release(idx uint32) {
	for {
		h := p.releaseHead.Load()
		p.next[idx].Store(h)
		if p.releaseHead.CompareAndSwap(h, uint64(idx)+1) {
			break
		}
	}
	p.freedRem.Add(1)
}

// releaseLocal returns a record the OWNER itself is freeing (it joined
// its own child — the common case) straight onto the private free
// stack, skipping the CAS of the shared release path.
func (p *recordPool) releaseLocal(idx uint32) {
	p.localFree = append(p.localFree, idx)
	p.freedLoc++
}

func (p *recordPool) get(idx uint32) *record { return &p.recs[idx] }

// Live returns the number of allocated records (quiescence check; call
// only after the run's goroutines have stopped).
func (p *recordPool) Live() int {
	return int(p.allocs - p.freedLoc - p.freedRem.Load())
}

func recordIndex(h core.Handle) uint32 {
	return uint32((h.VA() - recordVABase) / recordBytes)
}

func recordHandle(rank int, idx uint32) core.Handle {
	return core.MakeHandle(rank, recordVABase+mem.VA(idx)*recordBytes)
}
