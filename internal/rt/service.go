package rt

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// Persistent worker pool: the same Config.Workers goroutines, arenas,
// deques and record tables serve MANY task trees, submitted while the
// pool runs. Workers park between jobs on the PR-4 idle ladder instead
// of exiting; an idle worker dispatches the next admitted job by
// allocating a tagged root record from its own table and invoking the
// root frame in its own arena. Per-job isolation and quiescence rest on
// the job tags (sched.Record.Job) and the per-worker counter pairs
// (sched.JobCounters); see DESIGN.md §15.

// ErrPoolSaturated is returned by Submit when the bounded admission
// queue is full — the pool's backpressure signal.
var ErrPoolSaturated = errors.New("rt: pool admission queue full")

// ErrPoolClosed is returned by Submit after Close has been called.
var ErrPoolClosed = errors.New("rt: pool closed")

// JobCanceledError reports a job that was canceled (by the submitter or
// a per-job deadline) before completing; Cause carries the reason.
type JobCanceledError struct {
	Job   uint64
	Cause error
}

func (e *JobCanceledError) Error() string {
	return fmt.Sprintf("rt: job %d canceled: %v", e.Job, e.Cause)
}

func (e *JobCanceledError) Unwrap() error { return e.Cause }

// JobParams are the per-job knobs of one Submit.
type JobParams struct {
	// Grain is the job's sequential cutoff (same semantics as
	// Config.Grain, per job).
	Grain uint64
	// Weight biases admission order: the dispatcher picks the queued
	// job with the lowest submission-sequence/weight key, so equal
	// weights reduce to FIFO and a weight-w job is admitted as if it
	// had arrived w times earlier. <= 0 means 1.
	Weight int
}

// JobResult is one job's per-job report.
type JobResult struct {
	// Result is the root task's result (0 for canceled jobs).
	Result uint64
	// Tasks and Spawns are the job's own executed/spawned counts
	// (drained frames of a canceled job count as executed).
	Tasks  uint64
	Spawns uint64
	// QueueNS is submit→dispatch latency; ExecNS dispatch→completion.
	QueueNS int64
	ExecNS  int64
}

// Ticket state, guarded by Runtime.jobMu.
const (
	tkQueued = iota
	tkRunning
	tkDone
)

// Ticket is the submitter's handle on one admitted job.
type Ticket struct {
	id   uint64
	done chan struct{}
	// dispatched is closed by the worker that claims the job off the
	// admission queue — the anchor for deadlines that must exclude queue
	// time. Never closed for jobs canceled or failed while still queued
	// (watch Done alongside it).
	dispatched chan struct{}
	once       sync.Once
	res        JobResult
	err        error
	submitNS   int64
	// dispatchNS is stamped by the dispatching worker; atomic because a
	// pool failure may finalize the ticket from another goroutine.
	dispatchNS atomic.Int64
	// cancelASAP closes the dispatch/cancel race: Cancel sets it before
	// trying the Running→Draining transition, the dispatcher rechecks
	// it after storing Running, so one of the two always lands.
	cancelASAP atomic.Bool

	// Guarded by Runtime.jobMu:
	state int
	slot  uint32
}

// ID returns the job's global submission sequence number (1-based).
func (t *Ticket) ID() uint64 { return t.id }

// Done returns a channel closed when the job has been finalized.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Dispatched returns a channel closed when a worker claims the job off
// the admission queue and begins executing it. It never closes for a
// job canceled (or failed) while still queued, so select on Done too.
func (t *Ticket) Dispatched() <-chan struct{} { return t.dispatched }

// Wait blocks until the job is finalized and returns its result.
func (t *Ticket) Wait() (JobResult, error) {
	<-t.done
	return t.res, t.err
}

// deliver publishes the job's outcome exactly once.
func (t *Ticket) deliver(r *Runtime, res JobResult, err error) {
	t.once.Do(func() {
		t.res, t.err = res, err
		r.jobsDone.Add(1)
		close(t.done)
		r.jobWG.Done()
	})
}

// pendingJob is one admission-queue entry.
type pendingJob struct {
	t      *Ticket
	fid    core.FuncID
	locals uint32
	init   func(*core.Env)
	grain  uint64
	weight int
	seq    uint64
}

// Pool is a persistent runtime: workers start at NewPool and outlive
// every job, parking between them.
type Pool struct {
	r *Runtime
}

// NewPool builds the runtime and starts its workers immediately; they
// park until jobs arrive. In pool mode Config.MaxWall bounds the POOL's
// whole lifetime (0 = unbounded, the default); bound individual jobs by
// canceling their tickets.
func NewPool(cfg Config) (*Pool, error) {
	r := newRuntime(cfg, true)
	if r.initErr != nil {
		return nil, r.initErr
	}
	r.ran = true
	r.startT = time.Now()
	if r.cfg.MaxWall > 0 {
		r.watchdog = time.AfterFunc(r.cfg.MaxWall, func() {
			r.fail(&TimeoutError{Budget: r.cfg.MaxWall})
		})
	}
	for _, w := range r.workers {
		r.wg.Add(1)
		go w.run()
	}
	return &Pool{r: r}, nil
}

// Submit admits one job: fid(localsLen bytes of locals, initialised by
// init), with per-job params. It never blocks: a full admission queue
// returns ErrPoolSaturated immediately.
func (p *Pool) Submit(fid core.FuncID, localsLen uint32, init func(*core.Env), par JobParams) (*Ticket, error) {
	r := p.r
	if par.Weight <= 0 {
		par.Weight = 1
	}
	r.jobMu.Lock()
	if r.closed {
		r.jobMu.Unlock()
		return nil, ErrPoolClosed
	}
	if r.done.Load() {
		// The pool failed (watchdog or worker panic); surface that
		// error rather than queueing a job no worker will serve.
		r.jobMu.Unlock()
		r.failMu.Lock()
		err := r.err
		r.failMu.Unlock()
		if err == nil {
			err = ErrPoolClosed
		}
		return nil, err
	}
	if len(r.jobQueue) >= r.cfg.QueueDepth {
		r.jobMu.Unlock()
		return nil, ErrPoolSaturated
	}
	r.submitSeq++
	t := &Ticket{
		id: r.submitSeq, done: make(chan struct{}),
		dispatched: make(chan struct{}), submitNS: nowNS(), state: tkQueued,
	}
	r.jobQueue = append(r.jobQueue, &pendingJob{
		t: t, fid: fid, locals: localsLen, init: init,
		grain: par.Grain, weight: par.Weight, seq: r.submitSeq,
	})
	r.queuedCount.Store(int64(len(r.jobQueue)))
	r.activeTk[t] = struct{}{}
	r.jobWG.Add(1)
	r.jobMu.Unlock()
	// Queued before waking: a parker that registered after our store
	// either sees the count in its recheck or is claimed by this wake.
	r.lot.wakeOne()
	return t, nil
}

// Cancel requests cancellation of t with the given cause. A queued job
// is removed and finalized immediately; a running job switches to
// draining — its remaining frames are completed without running their
// bodies, co-resident jobs are untouched, and the ticket resolves to a
// JobCanceledError once the job's quiescence count closes. Returns
// false if the job had already been finalized.
func (p *Pool) Cancel(t *Ticket, cause error) bool {
	r := p.r
	if cause == nil {
		cause = errors.New("canceled")
	}
	r.jobMu.Lock()
	switch t.state {
	case tkDone:
		r.jobMu.Unlock()
		return false
	case tkQueued:
		for i, pj := range r.jobQueue {
			if pj.t == t {
				r.jobQueue = append(r.jobQueue[:i], r.jobQueue[i+1:]...)
				break
			}
		}
		r.queuedCount.Store(int64(len(r.jobQueue)))
		t.state = tkDone
		delete(r.activeTk, t)
		r.jobMu.Unlock()
		t.deliver(r, JobResult{QueueNS: nowNS() - t.submitNS},
			&JobCanceledError{Job: t.id, Cause: cause})
		return true
	default: // tkRunning
		slot := t.slot
		meta := &r.jobMeta[slot]
		if meta.t != t {
			r.jobMu.Unlock()
			return false
		}
		// The cause must be readable by whichever worker finalizes the
		// drain: published by the Running→Draining CAS below (or by the
		// dispatcher's cancelASAP recheck).
		meta.cancelErr = &JobCanceledError{Job: t.id, Cause: cause}
		t.cancelASAP.Store(true)
		r.jobMu.Unlock()
		r.cancelRunning(slot)
		return true
	}
}

// cancelRunning flips a running job to draining and re-runs the
// quiescence check (the job may already be quiescent, or may never
// complete another task — e.g. every remaining frame is suspended).
func (r *Runtime) cancelRunning(slot uint32) {
	if r.jobs.Get(slot).State.CompareAndSwap(sched.JobRunning, sched.JobDraining) {
		r.anyCanceled.Add(1)
		// Parked workers must wake to pop-and-drain the job's frames.
		r.lot.wakeAll()
		r.drainCheck(slot, 0)
	}
}

// Close stops admission, waits for every submitted job to finalize,
// winds the workers down and verifies pool quiescence: no frames, no
// waiters, zero live records (every job's records returned), all slots
// free. Safe to call once; later calls return ErrPoolClosed.
func (p *Pool) Close() error {
	r := p.r
	r.jobMu.Lock()
	if r.closed {
		r.jobMu.Unlock()
		return ErrPoolClosed
	}
	r.closed = true
	r.jobMu.Unlock()
	r.jobWG.Wait()
	r.done.Store(true)
	r.lot.wakeAll()
	r.wg.Wait()
	if r.watchdog != nil {
		r.watchdog.Stop()
	}
	r.elapsed = time.Since(r.startT)
	r.failMu.Lock()
	err := r.err
	r.failMu.Unlock()
	if err != nil {
		return err
	}
	return r.checkPoolQuiescence()
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.r.Workers() }

// Obs returns the pool's wall-clock recorder (nil when off). Export it
// only after Close — the rings are read at quiescence.
func (p *Pool) Obs() *obs.WallRecorder { return p.r.Obs() }

// Elapsed returns the pool's lifetime; call after Close.
func (p *Pool) Elapsed() time.Duration { return p.r.Elapsed() }

// TotalStats sums all workers' counters; call only after Close.
func (p *Pool) TotalStats() Stats { return p.r.TotalStats() }

// ParkedWorkers returns how many workers are blocked on the parking lot
// right now (safe mid-run — one atomic load).
func (p *Pool) ParkedWorkers() int { return p.r.ParkedWorkers() }

// WorkersExited returns how many worker goroutines have returned. Safe
// mid-run; it must stay 0 until Close — the proof that the pool reuses
// workers across jobs instead of recreating them.
func (p *Pool) WorkersExited() uint64 { return p.r.exited.Load() }

// JobsCompleted returns how many jobs have been finalized (including
// canceled and failed ones). Safe mid-run.
func (p *Pool) JobsCompleted() uint64 { return p.r.jobsDone.Load() }

// --- runtime-side job machinery --------------------------------------

func nowNS() int64 { return time.Now().UnixNano() }

// startQueuedJob dispatches the next admitted job onto THIS worker:
// allocate and tag a root record from the worker's own table (Alloc is
// owner-only, which is why dispatch happens on a worker, not in
// Submit), publish it in the job slot, then build and invoke the root
// frame. Called from the idle loop with an empty deque and a cleared
// arena, so the root frame has the whole region.
func (w *Worker) startQueuedJob() bool {
	r := w.rt
	if !r.persistent || r.queuedCount.Load() == 0 || r.freeSlotCount.Load() == 0 {
		return false
	}
	pj, slot, ok := r.claimJob()
	if !ok {
		return false
	}
	// The previous tenant of this slot fully quiesced before the slot
	// was freed, so plain atomic stores reset every worker's pair.
	for _, v := range r.workers {
		v.jobCounts.Reset(slot)
	}
	js := r.jobs.Get(slot)
	js.Grain.Store(pj.grain)
	js.Result.Store(0)
	rec := w.newRecord(sched.JobTag(slot))
	js.Root.Store(uint64(rec))
	js.State.Store(sched.JobRunning)
	// Close the dispatch/cancel race: a Cancel that found the slot not
	// yet Running set cancelASAP before we stored it (see Ticket).
	if pj.t.cancelASAP.Load() {
		r.cancelRunning(slot)
	}
	size := core.FrameBytes(pj.locals)
	base := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.MustSlice(base, core.FrameHeaderBytes), pj.fid, pj.locals, rec)
	if pj.init != nil {
		e := w.getEnv(base, size, 0)
		pj.init(e)
		w.putEnv(e)
	}
	w.invoke(base, size)
	return true
}

// claimJob picks the admission-queue entry with the lowest seq/weight
// key (FIFO at equal weights) and binds it to a free job slot.
func (r *Runtime) claimJob() (*pendingJob, uint32, bool) {
	r.jobMu.Lock()
	defer r.jobMu.Unlock()
	if len(r.jobQueue) == 0 || len(r.freeSlots) == 0 {
		return nil, 0, false
	}
	best := 0
	bestKey := float64(r.jobQueue[0].seq) / float64(r.jobQueue[0].weight)
	for i := 1; i < len(r.jobQueue); i++ {
		if k := float64(r.jobQueue[i].seq) / float64(r.jobQueue[i].weight); k < bestKey {
			best, bestKey = i, k
		}
	}
	pj := r.jobQueue[best]
	r.jobQueue = append(r.jobQueue[:best], r.jobQueue[best+1:]...)
	r.queuedCount.Store(int64(len(r.jobQueue)))
	n := len(r.freeSlots) - 1
	slot := r.freeSlots[n]
	r.freeSlots = r.freeSlots[:n]
	r.freeSlotCount.Store(int64(n))
	meta := &r.jobMeta[slot]
	meta.id = pj.t.id
	meta.t = pj.t
	meta.cancelErr = nil
	meta.single = false
	pj.t.state = tkRunning
	pj.t.slot = slot
	pj.t.dispatchNS.Store(nowNS())
	close(pj.t.dispatched)
	return pj, slot, true
}

// rootComplete runs inside the ExecComplete that completed a job's root
// record (so the caller holds one Pending bracket). Exactly one
// finalizer wins the slot's state CAS, even against a concurrent
// cancel.
func (r *Runtime) rootComplete(slot uint32, result uint64) {
	js := r.jobs.Get(slot)
	meta := &r.jobMeta[slot]
	js.Result.Store(result)
	if js.State.CompareAndSwap(sched.JobRunning, sched.JobDone) {
		// Joined children's completers may still be inside their own
		// brackets (their Done stores landed — the join saw them — but
		// their slot reads have not necessarily retired). They must all
		// leave before the slot can be recycled under them.
		r.waitJobSettled(slot, 1)
		if meta.single {
			r.finish(result)
			return
		}
		r.finalizeSlot(slot, result, nil)
		return
	}
	// A cancel won the state race: the job reports canceled even though
	// its root raced to completion; the drain arithmetic closes it.
	if js.State.Load() == sched.JobDraining {
		r.drainCheck(slot, 1)
	}
}

// jobSums returns the job's cross-worker (executed, spawned) totals.
// All Executed counters are read BEFORE any Spawns counter: a spawn is
// counted before its child can execute, so reading in this order can
// only over-count spawns relative to executions — executed == spawns+1
// is therefore never observed early, and is exact once the job is
// quiescent.
func (r *Runtime) jobSums(slot uint32) (ex, sp uint64) {
	for _, w := range r.workers {
		ex += w.jobCounts.Get(slot).Executed.Load()
	}
	for _, w := range r.workers {
		sp += w.jobCounts.Get(slot).Spawns.Load()
	}
	return ex, sp
}

// drainCheck finalizes a draining job once its quiescence count closes:
// sweep the record tables for the tags the drained frames abandoned,
// then deliver the cancellation. Runs after every ExecComplete of a
// draining job and once from Cancel itself (the job may already be
// quiescent when the cancel lands). held is the number of Pending
// brackets the CALLER holds on this slot: 1 from an ExecComplete tail,
// 0 from the Cancel path.
func (r *Runtime) drainCheck(slot uint32, held int64) {
	ex, sp := r.jobSums(slot)
	if ex != sp+1 {
		return
	}
	js := r.jobs.Get(slot)
	if !js.State.CompareAndSwap(sched.JobDraining, sched.JobDone) {
		return
	}
	// The count closing proves every frame's Executed bump landed, NOT
	// that the Result/Done stores sequenced after those bumps did. Wait
	// for every other in-flight completion bracket to retire before
	// touching the records, or the sweep below could release (and a new
	// job re-allocate) a record whose completer is still mid-store.
	r.waitJobSettled(slot, held)
	r.anyCanceled.Add(-1)
	tag := sched.JobTag(slot)
	for _, w := range r.workers {
		w.records.SweepJob(tag)
	}
	r.finalizeSlot(slot, 0, r.jobMeta[slot].cancelErr)
}

// pendingSum is the slot's cross-worker in-flight-completion gauge.
func (r *Runtime) pendingSum(slot uint32) int64 {
	var n int64
	for _, w := range r.workers {
		n += w.jobCounts.Get(slot).Pending.Load()
	}
	return n
}

// waitJobSettled spins until every in-flight ExecComplete bracket for
// the slot other than the caller's own (held of them) has retired. Only
// a finalizer that already won the slot's terminal state CAS may call
// this, and only after quiescence-count closure, so no NEW bracket for
// this job can open during the wait; brackets never block between their
// +1 and -1 except to run this very finalization, so the spin is
// bounded by scheduler preemption. A stale +1 from a previous tenant's
// finalizer (slot recycled while it was between finalizeSlot and its
// own -1) only lengthens the wait — it retires without blocking.
func (r *Runtime) waitJobSettled(slot uint32, held int64) {
	for r.pendingSum(slot) != held {
		runtime.Gosched()
	}
}

// finalizeSlot releases the job's root record, checks per-job
// quiescence, delivers the ticket and recycles the slot. Called exactly
// once per dispatched job, by whichever goroutine won the JobDone CAS.
func (r *Runtime) finalizeSlot(slot uint32, result uint64, jobErr error) {
	js := r.jobs.Get(slot)
	meta := &r.jobMeta[slot]
	t := meta.t
	tag := sched.JobTag(slot)
	// Release the root record unless the cancel sweep already claimed
	// it (same CAS-the-tag protocol as SweepJob).
	if h := core.Handle(js.Root.Load()); h.Valid() {
		tb := r.workers[h.Rank()].records
		if tb.Get(sched.RecordIndex(h)).Job.CompareAndSwap(tag, 0) {
			tb.Release(sched.RecordIndex(h))
		}
	}
	ex, sp := r.jobSums(slot)
	if jobErr == nil && ex != sp+1 {
		jobErr = fmt.Errorf("rt: job %d quiescence violation: %d tasks executed, %d spawned (+1 root)", meta.id, ex, sp)
	}
	disp := t.dispatchNS.Load()
	res := JobResult{
		Result:  result,
		Tasks:   ex,
		Spawns:  sp,
		QueueNS: disp - t.submitNS,
		ExecNS:  nowNS() - disp,
	}
	r.jobMu.Lock()
	t.state = tkDone
	meta.t = nil
	js.Root.Store(0)
	js.State.Store(sched.JobFree)
	r.freeSlots = append(r.freeSlots, slot)
	r.freeSlotCount.Store(int64(len(r.freeSlots)))
	wake := len(r.jobQueue) > 0
	r.jobMu.Unlock()
	// A queued job just became dispatchable (the park-side work hint
	// gates on free slots, so parked workers ignored the queue while
	// every slot was busy). Free-count store before wake: a parker that
	// registered after the store sees it in its recheck, one that
	// registered before is claimed by this wake.
	if wake {
		r.lot.wakeOne()
	}
	t.deliver(r, res, jobErr)
}

// failTickets resolves every outstanding ticket with the pool error so
// a watchdog or worker panic can't strand submitters. Slots are not
// recycled — the pool is dead.
func (r *Runtime) failTickets(err error) {
	r.jobMu.Lock()
	ts := make([]*Ticket, 0, len(r.activeTk))
	for t := range r.activeTk {
		t.state = tkDone
		ts = append(ts, t)
	}
	clear(r.activeTk)
	r.jobQueue = nil
	r.queuedCount.Store(0)
	r.jobMu.Unlock()
	for _, t := range ts {
		t.deliver(r, JobResult{}, err)
	}
}

// checkPoolQuiescence is the pool analogue of CheckQuiescence: after
// the last job no frame, waiter or record may survive anywhere (job
// roots included — finalizeSlot released them), and every slot must be
// back on the free list.
func (r *Runtime) checkPoolQuiescence() error {
	live := 0
	for _, w := range r.workers {
		if n := w.deque.Size(); n != 0 {
			return fmt.Errorf("rt: worker %d deque holds %d entries after pool close", w.rank, n)
		}
		if len(w.waitq) != 0 {
			return fmt.Errorf("rt: worker %d wait queue holds %d suspended threads after pool close", w.rank, len(w.waitq))
		}
		live += w.records.Live()
	}
	if live != 0 {
		return fmt.Errorf("rt: %d records live after pool close, want 0", live)
	}
	for i := 0; i < r.cfg.MaxJobs; i++ {
		if st := r.jobs.Get(uint32(i)).State.Load(); st != sched.JobFree {
			return fmt.Errorf("rt: job slot %d in state %d after pool close, want free", i, st)
		}
	}
	if len(r.freeSlots) != r.cfg.MaxJobs {
		return fmt.Errorf("rt: %d of %d job slots free after pool close", len(r.freeSlots), r.cfg.MaxJobs)
	}
	return nil
}
