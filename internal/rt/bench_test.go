package rt

import (
	"fmt"
	"testing"

	"uniaddr/internal/sched"
	"uniaddr/internal/workloads"
)

// Microbenchmarks for the rt hot paths. CI runs them with
// -benchtime=1x as a smoke test; locally, `go test -bench . -run '^$'
// ./internal/rt` gives the real numbers, and -cpuprofile/-memprofile
// work as usual. The e2e benchmarks report ns/task and allocs/op —
// allocs/op is the regression guard for the pooling work: the steady
// state spawn/join path must not allocate.

func BenchmarkNewFrame(b *testing.B) {
	cfg := DefaultConfig(1)
	w := New(cfg).workers[0]
	const size = 128
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := w.newFrame(size)
		if err := w.arena.FreeLowest(base, size); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArenaReadU64(b *testing.B) {
	a := sched.NewArena(0x1000, 4096)
	a.WriteU64(0x1100, 7)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += a.ReadU64(0x1100)
	}
	_ = sink
}

func BenchmarkArenaWriteU64(b *testing.B) {
	a := sched.NewArena(0x1000, 4096)
	for i := 0; i < b.N; i++ {
		a.WriteU64(0x1100, uint64(i))
	}
}

func BenchmarkDequePushPop(b *testing.B) {
	d := NewDeque(1 << 10)
	e := Entry{FrameBase: 0x1000, FrameSize: 128}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := d.Push(e); err != nil {
			b.Fatal(err)
		}
		if _, ok := d.Pop(nil); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkStealRoundTrip measures the full thief-side sequence —
// claim under the victim's FAA lock, install, cross-arena memcpy,
// commit — for a 128-byte frame.
func BenchmarkStealRoundTrip(b *testing.B) {
	r := New(DefaultConfig(2))
	victim, thief := r.workers[0], r.workers[1]
	const size = 128
	base := victim.newFrame(size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := victim.deque.Push(Entry{FrameBase: base, FrameSize: size}); err != nil {
			b.Fatal(err)
		}
		ent, outcome := victim.deque.StealBegin()
		if outcome != StealOK {
			b.Fatalf("steal outcome %v", outcome)
		}
		if err := thief.arena.Install(ent.FrameBase, ent.FrameSize); err != nil {
			b.Fatal(err)
		}
		src, err := victim.arena.Slice(ent.FrameBase, ent.FrameSize)
		if err != nil {
			b.Fatal(err)
		}
		copy(thief.arena.MustSlice(ent.FrameBase, ent.FrameSize), src)
		victim.deque.StealCommit()
		thief.arena.Clear()
	}
}

// benchRun executes spec once per iteration and reports ns/task and
// allocs/op across the whole runtime lifecycle.
func benchRun(b *testing.B, spec workloads.Spec, workers int) {
	b.Helper()
	b.ReportAllocs()
	var tasks uint64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(workers)
		cfg.Seed = uint64(i) + 1
		cfg.NoPin = true
		r := New(cfg)
		got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
		if err != nil {
			b.Fatal(err)
		}
		if got != spec.Expected {
			b.Fatalf("result %d, want %d", got, spec.Expected)
		}
		tasks += r.TotalStats().TasksExecuted
	}
	if tasks > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tasks), "ns/task")
	}
}

// BenchmarkSpawnJoin is the pure scheduling cost: a fib tree with zero
// per-task work, so ns/task is spawn+join+frame overhead.
func BenchmarkSpawnJoin(b *testing.B) {
	benchRun(b, workloads.Fib(18, 0), 1)
}

// BenchmarkSuspendResume drives the swap-out/park/precise-wake/resume
// path: PingPong's joins almost always miss.
func BenchmarkSuspendResume(b *testing.B) {
	benchRun(b, workloads.PingPong(128, 200, 0), 2)
}

func BenchmarkFibE2E(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchRun(b, workloads.Fib(20, 50), workers)
		})
	}
}

func BenchmarkNQueensE2E(b *testing.B) {
	b.Run("workers=8", func(b *testing.B) {
		benchRun(b, workloads.NQueens(8, 50), 8)
	})
}
