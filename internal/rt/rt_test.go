package rt_test

import (
	"testing"

	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// runSpec executes a gas-free workload Spec on the rt backend and
// checks the root result against the sequential reference.
func runSpec(t *testing.T, spec workloads.Spec, workers int, seed uint64) {
	t.Helper()
	if spec.Setup != nil {
		t.Fatalf("%s needs machine Setup (global heap); sim-only", spec.Name)
	}
	cfg := rt.DefaultConfig(workers)
	cfg.Seed = seed
	cfg.NoPin = true // tests run many runtimes; don't monopolise OS threads
	r := rt.New(cfg)
	got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatalf("%s on %d workers: %v", spec.Name, workers, err)
	}
	if got != spec.Expected {
		t.Fatalf("%s on %d workers: result %d, want %d", spec.Name, workers, got, spec.Expected)
	}
	if err := r.CheckQuiescence(); err != nil {
		t.Fatalf("%s on %d workers: %v", spec.Name, workers, err)
	}
}

func TestFibSingleWorker(t *testing.T) {
	runSpec(t, workloads.Fib(15, 0), 1, 1)
}

func TestFibParallel(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		for seed := uint64(1); seed <= 3; seed++ {
			runSpec(t, workloads.Fib(17, 50), workers, seed)
		}
	}
}

func TestBTCParallel(t *testing.T) {
	runSpec(t, workloads.BTC(10, 1, 20), 4, 1)
}

// TestPingPongSuspend drives the suspend/park/resume path hard: deep
// sequential joins whose targets complete elsewhere.
func TestPingPongSuspend(t *testing.T) {
	runSpec(t, workloads.PingPong(64, 200, 0), 4, 2)
}

func TestUTSParallel(t *testing.T) {
	runSpec(t, workloads.UTS(19, 8, 4, 10), 4, 1)
}

func TestNQueensParallel(t *testing.T) {
	runSpec(t, workloads.NQueens(7, 10), 4, 3)
}

// TestStatsConservation checks the scheduler's books after a contended
// run: every spawn executed exactly once, steals moved real bytes.
func TestStatsConservation(t *testing.T) {
	spec := workloads.Fib(18, 20)
	cfg := rt.DefaultConfig(8)
	cfg.NoPin = true
	r := rt.New(cfg)
	got, err := r.Run(spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec.Expected {
		t.Fatalf("result %d, want %d", got, spec.Expected)
	}
	ts := r.TotalStats()
	if ts.TasksExecuted != ts.Spawns+1 {
		t.Errorf("executed %d != spawned %d + 1", ts.TasksExecuted, ts.Spawns)
	}
	if ts.StealsOK > 0 && ts.BytesStolen == 0 {
		t.Errorf("%d steals moved zero bytes", ts.StealsOK)
	}
	// Every entry stolen from its original spawner's deque is later
	// observed as that owner's failed ExecSpawn pop (ParentStolen). A
	// batch's surplus lands on the thief's deque, and a RE-steal of
	// such a migrated entry is a StealsOK with no spawn-path pop
	// anywhere — so under steal-half batching ParentStolen is a lower
	// bound, with equality only when no surplus was re-stolen.
	if ts.StealsOK > 0 && ts.ParentStolen == 0 {
		t.Errorf("%d steals but no owner ever observed a stolen continuation", ts.StealsOK)
	}
	if ts.ParentStolen > ts.StealsOK {
		t.Errorf("ParentStolen %d > StealsOK %d", ts.ParentStolen, ts.StealsOK)
	}
	if ts.StealBatchEntries != ts.StealsOK {
		t.Errorf("StealBatchEntries %d != StealsOK %d", ts.StealBatchEntries, ts.StealsOK)
	}
	if ts.StealBatches > ts.StealsOK {
		t.Errorf("StealBatches %d > StealsOK %d (entries per trip >= 1)", ts.StealBatches, ts.StealsOK)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	spec := workloads.Fib(5, 0)
	cfg := rt.DefaultConfig(1)
	cfg.NoPin = true
	r := rt.New(cfg)
	if _, err := r.Run(spec.Fid, spec.Locals, spec.Init); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(spec.Fid, spec.Locals, spec.Init); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}
