package rt_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// newPool builds a persistent pool for tests, failing on construction
// errors.
func newPool(t *testing.T, cfg rt.Config) *rt.Pool {
	t.Helper()
	cfg.NoPin = true
	p, err := rt.NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// submitSpec submits a workload Spec as one job.
func submitSpec(t *testing.T, p *rt.Pool, spec workloads.Spec, par rt.JobParams) *rt.Ticket {
	t.Helper()
	if spec.Setup != nil {
		t.Fatalf("%s needs machine Setup; sim-only", spec.Name)
	}
	tk, err := p.Submit(spec.Fid, spec.Locals, spec.Init, par)
	if err != nil {
		t.Fatalf("submit %s: %v", spec.Name, err)
	}
	return tk
}

// waitSpec waits for tk and checks the job's report against the spec's
// sequential oracle: the root result, and the exact per-job task/spawn
// conservation law (executed == spawned + 1 root).
func waitSpec(t *testing.T, tk *rt.Ticket, spec workloads.Spec) rt.JobResult {
	t.Helper()
	res, err := tk.Wait()
	if err != nil {
		t.Fatalf("%s (job %d): %v", spec.Name, tk.ID(), err)
	}
	if res.Result != spec.Expected {
		t.Fatalf("%s (job %d): result %d, want %d", spec.Name, tk.ID(), res.Result, spec.Expected)
	}
	if res.Tasks != res.Spawns+1 {
		t.Fatalf("%s (job %d): executed %d != spawned %d + 1", spec.Name, tk.ID(), res.Tasks, res.Spawns)
	}
	if res.QueueNS < 0 || res.ExecNS < 0 {
		t.Fatalf("%s (job %d): negative latency: queue %d, exec %d", spec.Name, tk.ID(), res.QueueNS, res.ExecNS)
	}
	return res
}

func TestPoolSingleJob(t *testing.T) {
	p := newPool(t, rt.DefaultConfig(4))
	spec := workloads.Fib(17, 50)
	res := waitSpec(t, submitSpec(t, p, spec, rt.JobParams{}), spec)
	if res.Tasks < 100 {
		t.Errorf("fib(17) ran %d tasks, expected a real tree", res.Tasks)
	}
	if got := p.WorkersExited(); got != 0 {
		t.Errorf("%d workers exited before Close", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.WorkersExited(); got != 4 {
		t.Errorf("%d workers exited after Close, want 4", got)
	}
}

// TestPoolWorkerReuse is the park-between-jobs proof: many jobs run
// back to back on one pool and no worker goroutine ever exits between
// them — the pool parks and re-arms the same workers.
func TestPoolWorkerReuse(t *testing.T) {
	p := newPool(t, rt.DefaultConfig(4))
	spec := workloads.Fib(15, 20)
	for i := 0; i < 8; i++ {
		waitSpec(t, submitSpec(t, p, spec, rt.JobParams{}), spec)
		if got := p.WorkersExited(); got != 0 {
			t.Fatalf("after job %d: %d workers exited mid-pool", i+1, got)
		}
		// Between jobs every worker ends up parked or napping; give the
		// ladder a moment and check the lot absorbed at least one.
		deadline := time.Now().Add(2 * time.Second)
		for p.ParkedWorkers() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if p.ParkedWorkers() == 0 {
			t.Fatalf("after job %d: no worker parked between jobs", i+1)
		}
	}
	if got := p.JobsCompleted(); got != 8 {
		t.Errorf("JobsCompleted = %d, want 8", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ts := p.TotalStats()
	if ts.Parks == 0 {
		t.Error("no parks across 8 sequential jobs; workers did not reuse the idle ladder")
	}
}

// TestPoolConcurrentMixedJobs races N jobs of different workloads over
// one pool from parallel submitters, each verified against its own
// sequential oracle — the per-job isolation test.
func TestPoolConcurrentMixedJobs(t *testing.T) {
	cfg := rt.DefaultConfig(4)
	cfg.MaxJobs = 8
	cfg.QueueDepth = 64
	p := newPool(t, cfg)
	specs := []workloads.Spec{
		workloads.Fib(16, 20),
		workloads.BTC(8, 1, 10),
		workloads.NQueens(6, 10),
		workloads.PingPong(32, 100, 0),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for round := 0; round < 4; round++ {
		for _, spec := range specs {
			wg.Add(1)
			go func(spec workloads.Spec) {
				defer wg.Done()
				tk, err := p.Submit(spec.Fid, spec.Locals, spec.Init, rt.JobParams{})
				if err != nil {
					errs <- fmt.Errorf("submit %s: %w", spec.Name, err)
					return
				}
				res, err := tk.Wait()
				if err != nil {
					errs <- fmt.Errorf("%s (job %d): %w", spec.Name, tk.ID(), err)
					return
				}
				if res.Result != spec.Expected {
					errs <- fmt.Errorf("%s (job %d): result %d, want %d", spec.Name, tk.ID(), res.Result, spec.Expected)
				}
				if res.Tasks != res.Spawns+1 {
					errs <- fmt.Errorf("%s (job %d): executed %d != spawned %d + 1", spec.Name, tk.ID(), res.Tasks, res.Spawns)
				}
			}(spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPerJobTaskCount pins the exactness of per-job counters: a BTC
// job's report must show the analytic task count even while co-resident
// jobs churn the same deques and record tables.
func TestPoolPerJobTaskCount(t *testing.T) {
	cfg := rt.DefaultConfig(4)
	cfg.MaxJobs = 4
	p := newPool(t, cfg)
	noise := workloads.Fib(16, 20)
	ntk := submitSpec(t, p, noise, rt.JobParams{})
	btc := workloads.BTC(8, 1, 10)
	res := waitSpec(t, submitSpec(t, p, btc, rt.JobParams{}), btc)
	if want := workloads.BTCTaskCount(8, 1); res.Tasks != want {
		t.Errorf("BTC job executed %d tasks, analytic count is %d", res.Tasks, want)
	}
	waitSpec(t, ntk, noise)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolSaturation drives the bounded admission queue to rejection:
// with one job slot and a depth-1 queue, a running job plus a queued
// job leaves no room — the third submit must bounce with
// ErrPoolSaturated, not block.
func TestPoolSaturation(t *testing.T) {
	cfg := rt.DefaultConfig(2)
	cfg.MaxJobs = 1
	cfg.QueueDepth = 1
	p := newPool(t, cfg)
	heavy := workloads.Fib(20, 500)
	tk1 := submitSpec(t, p, heavy, rt.JobParams{})
	// Admission means the queue was empty, i.e. tk1 was claimed and is
	// running (MaxJobs=1 keeps it in the only slot until done).
	var tk2 *rt.Ticket
	for {
		var err error
		tk2, err = p.Submit(heavy.Fid, heavy.Locals, heavy.Init, rt.JobParams{})
		if err == nil {
			break
		}
		if !errors.Is(err, rt.ErrPoolSaturated) {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Microsecond)
	}
	if _, err := p.Submit(heavy.Fid, heavy.Locals, heavy.Init, rt.JobParams{}); !errors.Is(err, rt.ErrPoolSaturated) {
		t.Fatalf("third submit: got %v, want ErrPoolSaturated", err)
	}
	waitSpec(t, tk1, heavy)
	waitSpec(t, tk2, heavy)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolCancelQueued(t *testing.T) {
	cfg := rt.DefaultConfig(2)
	cfg.MaxJobs = 1
	cfg.QueueDepth = 8
	p := newPool(t, cfg)
	heavy := workloads.Fib(20, 500)
	tk1 := submitSpec(t, p, heavy, rt.JobParams{})
	tk2 := submitSpec(t, p, heavy, rt.JobParams{})
	cause := errors.New("deadline blown")
	if !p.Cancel(tk2, cause) {
		t.Fatal("Cancel(queued) returned false")
	}
	if p.Cancel(tk2, cause) {
		t.Error("second Cancel returned true for a finalized ticket")
	}
	_, err := tk2.Wait()
	var jce *rt.JobCanceledError
	if !errors.As(err, &jce) {
		t.Fatalf("canceled queued job: got %v, want JobCanceledError", err)
	}
	if jce.Job != tk2.ID() || !errors.Is(err, cause) {
		t.Errorf("JobCanceledError{Job:%d, Cause:%v}, want job %d cause %v", jce.Job, jce.Cause, tk2.ID(), cause)
	}
	waitSpec(t, tk1, heavy)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolCancelRunningIsolation cancels a running job mid-flight while
// a co-resident job keeps working: the canceled ticket must resolve to
// JobCanceledError, the survivor must finish with a correct oracle-
// checked report, and Close must find full quiescence — no record of
// the canceled tree may leak.
func TestPoolCancelRunningIsolation(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := rt.DefaultConfig(4)
		cfg.Seed = seed
		cfg.MaxJobs = 4
		p := newPool(t, cfg)
		victim := workloads.Fib(24, 200)
		vtk := submitSpec(t, p, victim, rt.JobParams{})
		bystander := workloads.Fib(17, 50)
		btk := submitSpec(t, p, bystander, rt.JobParams{})
		time.Sleep(5 * time.Millisecond)
		cause := errors.New("operator abort")
		canceled := p.Cancel(vtk, cause)
		res, err := vtk.Wait()
		if canceled {
			var jce *rt.JobCanceledError
			if !errors.As(err, &jce) || !errors.Is(err, cause) {
				t.Fatalf("seed %d: canceled running job: got %v, want JobCanceledError(cause)", seed, err)
			}
			// Drained frames count as executed, so the conservation law
			// holds for the canceled tree too.
			if res.Tasks != res.Spawns+1 {
				t.Errorf("seed %d: canceled job executed %d != spawned %d + 1", seed, res.Tasks, res.Spawns)
			}
		} else if err != nil || res.Result != victim.Expected {
			// The job won the race and completed before the cancel.
			t.Fatalf("seed %d: uncanceled job: result %d err %v, want %d", seed, res.Result, err, victim.Expected)
		}
		waitSpec(t, btk, bystander)
		if err := p.Close(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestPoolCancelCompleteRaceStorm hammers the cancel-vs-complete
// window: rounds of co-resident jobs where most are canceled at
// staggered points mid-run while a bystander races to completion. The
// drain finalizer must never sweep-and-recycle a record whose completer
// is still mid-store (the completion-bracket protocol in ExecComplete /
// waitJobSettled) — corruption would surface as a bystander oracle
// miss, a conservation-law violation in a canceled report, or leaked /
// double-released records failing the Close quiescence check.
func TestPoolCancelCompleteRaceStorm(t *testing.T) {
	cfg := rt.DefaultConfig(4)
	cfg.MaxJobs = 4
	cfg.QueueDepth = 32
	p := newPool(t, cfg)
	victim := workloads.Fib(18, 50)
	bystander := workloads.Fib(15, 20)
	for round := 0; round < 20; round++ {
		v1 := submitSpec(t, p, victim, rt.JobParams{})
		v2 := submitSpec(t, p, victim, rt.JobParams{})
		btk := submitSpec(t, p, bystander, rt.JobParams{})
		// Stagger the two cancels across the jobs' lifetimes so some land
		// while completions are in full flight and some race the root.
		time.Sleep(time.Duration(round*37) * time.Microsecond)
		p.Cancel(v1, errors.New("storm"))
		time.Sleep(time.Duration(round*11) * time.Microsecond)
		p.Cancel(v2, errors.New("storm"))
		for _, tk := range []*rt.Ticket{v1, v2} {
			res, err := tk.Wait()
			if err != nil {
				var jce *rt.JobCanceledError
				if !errors.As(err, &jce) {
					t.Fatalf("round %d: job %d: %v", round, tk.ID(), err)
				}
			} else if res.Result != victim.Expected {
				t.Fatalf("round %d: job %d won the race but returned %d, want %d",
					round, tk.ID(), res.Result, victim.Expected)
			}
			// Tasks == Spawns == 0 means the cancel landed while the job
			// was still queued — nothing dispatched, nothing to conserve.
			// Any dispatched job executes at least its root.
			if res.Tasks != res.Spawns+1 && !(res.Tasks == 0 && res.Spawns == 0) {
				t.Fatalf("round %d: job %d: executed %d != spawned %d + 1",
					round, tk.ID(), res.Tasks, res.Spawns)
			}
		}
		waitSpec(t, btk, bystander)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolParksWhenSlotsSaturated pins the park-side slot gate and its
// wake: with the only job slot held by a gated single-task job and
// another job queued behind it, every idle worker must reach the
// parking lot — a work hint that looked at the queue alone would bar
// them from parking and busy-spin until the slot frees — and when the
// slot DOES free, the finalizer must wake a parker to dispatch the
// queued job. The gate job blocks on a channel rather than spinning so
// the idle workers' backoff ladders are not CPU-starved on small boxes.
func TestPoolParksWhenSlotsSaturated(t *testing.T) {
	cfg := rt.DefaultConfig(4)
	cfg.MaxJobs = 1
	cfg.QueueDepth = 8
	p := newPool(t, cfg)
	gate := make(chan struct{})
	gateFID := core.Register("rt_test.parkgate", func(e *core.Env) core.Status {
		<-gate
		e.ReturnU64(7)
		return core.Done
	})
	tk1, err := p.Submit(gateFID, 8, nil, rt.JobParams{})
	if err != nil {
		t.Fatal(err)
	}
	quick := workloads.Fib(1, 0)
	tk2 := submitSpec(t, p, quick, rt.JobParams{})
	// One worker is blocked inside the gate task; the other three are
	// idle with queuedCount > 0 and no free slot, so all three must park.
	deadline := time.After(30 * time.Second)
	for p.ParkedWorkers() < 3 {
		select {
		case <-deadline:
			close(gate)
			t.Fatalf("only %d of 3 idle workers parked while the queue was barred by slot saturation", p.ParkedWorkers())
		default:
		}
		time.Sleep(200 * time.Microsecond)
	}
	// Freeing the slot must wake a parker: with all idle workers on the
	// lot, the queued job completes only if finalizeSlot's wake lands.
	close(gate)
	if res, err := tk1.Wait(); err != nil || res.Result != 7 {
		t.Fatalf("gate job: result %d err %v, want 7", res.Result, err)
	}
	waitSpec(t, tk2, quick)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolChaosIsolation is the chaos cell: steal faults injected into
// the pool's transfer path must never corrupt any co-resident job's
// report — every job still matches its sequential oracle and the pool
// still reaches exact quiescence.
func TestPoolChaosIsolation(t *testing.T) {
	cfg := rt.DefaultConfig(4)
	cfg.MaxJobs = 4
	cfg.QueueDepth = 32
	cfg.MaxWall = 60 * time.Second
	cfg.Fault = fault.Config{StealClaimFailProb: 0.2, StealCopyFailProb: 0.1}
	p := newPool(t, cfg)
	specs := []workloads.Spec{
		workloads.Fib(18, 200),
		workloads.BTC(8, 1, 50),
		workloads.Fib(17, 100),
		workloads.NQueens(6, 20),
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for _, spec := range specs {
		wg.Add(1)
		go func(spec workloads.Spec) {
			defer wg.Done()
			tk, err := p.Submit(spec.Fid, spec.Locals, spec.Init, rt.JobParams{})
			if err != nil {
				errs <- fmt.Errorf("submit %s: %w", spec.Name, err)
				return
			}
			res, err := tk.Wait()
			if err != nil {
				errs <- fmt.Errorf("%s under faults: %w", spec.Name, err)
				return
			}
			if res.Result != spec.Expected {
				errs <- fmt.Errorf("%s under faults: result %d, want %d", spec.Name, res.Result, spec.Expected)
			}
		}(spec)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolWeightedAdmission checks the weighted-fair dispatcher: with
// one slot busy and two queued jobs, the heavier weight is admitted
// first even though it arrived later.
func TestPoolWeightedAdmission(t *testing.T) {
	cfg := rt.DefaultConfig(2)
	cfg.MaxJobs = 1
	cfg.QueueDepth = 8
	p := newPool(t, cfg)
	heavy := workloads.Fib(20, 500)
	small := workloads.Fib(12, 0)
	tk1 := submitSpec(t, p, heavy, rt.JobParams{})
	// Wait for tk1 to occupy the slot (queue empties on claim).
	var first, second *rt.Ticket
	for {
		tk, err := p.Submit(small.Fid, small.Locals, small.Init, rt.JobParams{Weight: 1})
		if err == nil {
			first = tk
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	second = submitSpec(t, p, small, rt.JobParams{Weight: 100})
	waitSpec(t, tk1, heavy)
	r1 := waitSpec(t, first, small)
	r2 := waitSpec(t, second, small)
	// Dispatch order is observable through queue latency endpoints:
	// the weighted job left the queue first.
	d1 := r1.QueueNS
	d2 := r2.QueueNS
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("queue latencies not recorded: %d, %d", d1, d2)
	}
	if got := p.JobsCompleted(); got != 3 {
		t.Errorf("JobsCompleted = %d, want 3", got)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolClosedRejectsSubmit(t *testing.T) {
	p := newPool(t, rt.DefaultConfig(2))
	spec := workloads.Fib(10, 0)
	waitSpec(t, submitSpec(t, p, spec, rt.JobParams{}), spec)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Submit(spec.Fid, spec.Locals, spec.Init, rt.JobParams{}); !errors.Is(err, rt.ErrPoolClosed) {
		t.Fatalf("Submit after Close: got %v, want ErrPoolClosed", err)
	}
	if err := p.Close(); !errors.Is(err, rt.ErrPoolClosed) {
		t.Fatalf("second Close: got %v, want ErrPoolClosed", err)
	}
}

// TestPoolWatchdogFailsTickets: a pool-lifetime budget that expires
// mid-job must resolve every outstanding ticket with the timeout error
// instead of stranding the submitters.
func TestPoolWatchdogFailsTickets(t *testing.T) {
	cfg := rt.DefaultConfig(2)
	cfg.MaxWall = 30 * time.Millisecond
	p := newPool(t, cfg)
	heavy := workloads.Fib(26, 2000)
	tk := submitSpec(t, p, heavy, rt.JobParams{})
	_, err := tk.Wait()
	var te *rt.TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("ticket after watchdog: got %v, want TimeoutError", err)
	}
	if err := p.Close(); !errors.As(err, &te) {
		t.Fatalf("Close after watchdog: got %v, want TimeoutError", err)
	}
}
