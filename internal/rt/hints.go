package rt

import "uniaddr/internal/obs"

// Hint-guided victim selection. The pre-optimization trySteal probed
// one uniformly random victim per idle round; with W workers and one
// busy victim, an idle worker burned W-2 empty probes (each a real
// StealBegin: an atomic RMW on the victim's lock line) for every hit.
// The replacement consults advisory occupancy hints — one atomic load
// per candidate, no RMW — and a last-successful-victim cache before
// falling back to a single blind probe.
//
// The hints are ADVISORY. A stale-high hint costs one wasted probe; a
// stale-low hint could starve a victim of thieves forever, which is why
// the no-hints-anywhere path still probes one random victim blindly:
// liveness never depends on hint freshness (DESIGN.md §10).

// trySteal attempts one steal round: cache first, then a hint sweep
// from a random start, then one blind probe. Returns true when a thread
// was stolen and executed. At most two StealBegin probes per round.
func (w *Worker) trySteal() bool {
	n := len(w.rt.workers)
	if n < 2 || !w.arena.Empty() {
		return false
	}
	// 1. Last successful victim: work-stealing victims are bursty — a
	// deep deque stays stealable across many rounds.
	if lv := w.lastVictim; lv >= 0 {
		if v := w.rt.workers[lv]; v.deque.Occupancy() > 0 && !w.res.Banned(int(lv)) {
			w.stats.StealCacheProbes++
			w.wlog.Instant(obs.KProbeCache, 0, 0, int(lv))
			if w.stealFrom(v, int(lv)) {
				return true
			}
		}
		w.lastVictim = -1
	}
	// 2. Hint sweep: scan every other worker's hint (cheap loads) from
	// a random start, probing the first that advertises work and is not
	// blacklisted. The random start keeps thieves from convoying on the
	// lowest rank.
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		vi := start + i
		if vi >= n {
			vi -= n
		}
		if vi == w.rank {
			continue
		}
		if v := w.rt.workers[vi]; v.deque.Occupancy() > 0 && !w.res.Banned(vi) {
			w.stats.StealHintProbes++
			w.wlog.Instant(obs.KProbeHint, 0, 0, vi)
			return w.stealFrom(v, vi)
		}
	}
	// 3. Every hint reads empty (or banned). Hints can be stale-low (a
	// thief's refresh can overwrite the owner's newer value), so probe
	// one random victim anyway: the blind probe is what makes progress
	// independent of hint freshness — and, matching the sim's
	// pickVictim, independent of the ban set (bans only redirect the
	// draw; after a few redraws the probe proceeds regardless, so
	// liveness never depends on bans expiring on time).
	vi := w.blindVictim(n)
	w.stats.StealBlindProbes++
	w.wlog.Instant(obs.KProbeBlind, 0, 0, vi)
	return w.stealFrom(w.rt.workers[vi], vi)
}

// blindVictim draws a uniformly random victim != self, redrawing up to
// three times to steer around blacklisted victims, then using the last
// draw anyway.
func (w *Worker) blindVictim(n int) int {
	vi := 0
	for redraw := 0; redraw < 4; redraw++ {
		vi = w.rng.Intn(n - 1)
		if vi >= w.rank {
			vi++
		}
		if !w.res.Banned(vi) {
			break
		}
	}
	return vi
}

// stealFrom runs the thief side of Fig. 6 against victim v through the
// shared resilience layer (sched.Resilience.StealFrom): claim under the
// FAA lock — with bounded retries and rollback when faults are injected
// — memcpy the stack into the same offset of our own arena, release,
// run. Legal only while our region is empty (the caller checked). On
// success v becomes the cached victim for the next round.
func (w *Worker) stealFrom(v *Worker, vi int) bool {
	w.stats.StealAttempts++
	ts := w.wlog.Clock()
	ent, outcome := w.res.StealFrom(vi, v.deque, v.arena, w.arena)
	switch outcome {
	case StealEmpty, StealEmptyLocked:
		w.stats.StealAbortEmpty++
		w.wlog.Emit(obs.KStealEmpty, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case StealLockBusy:
		w.stats.StealAbortLock++
		w.wlog.Emit(obs.KStealBusy, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case StealFaulted:
		// Fault budget exhausted against this victim; drop the cache so
		// the next round picks someone else. (The resilience layer
		// already emitted the fault/retry/abandon events.)
		w.lastVictim = -1
		return false
	}
	w.stats.StealsOK++
	w.stats.BytesStolen += ent.FrameSize
	w.lastVictim = int32(vi)
	w.wlog.StealOK(ts, ent.FrameSize, vi)
	w.invoke(ent.FrameBase, ent.FrameSize)
	return true
}
