package rt

import "uniaddr/internal/obs"

// Hint-guided, distance-tiered victim selection. The pre-optimization
// trySteal probed one uniformly random victim per idle round; with W
// workers and one busy victim, an idle worker burned W-2 empty probes
// (each a real StealBegin: an atomic RMW on the victim's lock line)
// for every hit. The replacement consults advisory occupancy hints —
// one atomic load per candidate, no RMW — and a last-successful-victim
// cache before falling back to a single blind probe.
//
// The hint sweep walks victims in DISTANCE order (sched.BuildTiers,
// after distbdd-spin17's VERYNEAR/NEAR/FAR/VERYFAR arrays): candidates
// in the thief's own rank block first, then outward tier by tier, with
// a random start inside each tier so thieves don't convoy on the
// lowest rank. On rt the tiers model cache/NUMA affinity between
// neighbouring workers; on dist the same construction tiers process
// ranks. Tier order is a pure preference — liveness never depends on
// it, nor on hint freshness: a stale-high hint costs one wasted probe;
// a stale-low hint could starve a victim of thieves forever, which is
// why the no-hints-anywhere path still probes one random victim
// blindly (DESIGN.md §10).

// trySteal attempts one steal round: cache first, then the tiered hint
// sweep, then one blind probe. Returns true when at least one thread
// was stolen (and the newest stolen thread executed). At most two
// StealBegin probes per round.
func (w *Worker) trySteal() bool {
	n := len(w.rt.workers)
	if n < 2 || !w.arena.Empty() {
		return false
	}
	// 1. Last successful victim: work-stealing victims are bursty — a
	// deep deque stays stealable across many rounds.
	if lv := w.lastVictim; lv >= 0 {
		if v := w.rt.workers[lv]; v.deque.Occupancy() > 0 && !w.res.Banned(int(lv)) {
			w.stats.StealCacheProbes++
			w.wlog.Instant(obs.KProbeCache, 0, 0, int(lv))
			if w.stealFrom(v, int(lv)) {
				return true
			}
		}
		w.lastVictim = -1
	}
	// 2. Tiered hint sweep: scan each distance tier's hints (cheap
	// loads) near-to-far, probing the first candidate that advertises
	// work and is not blacklisted.
	for tier := range w.tiers {
		cands := w.tiers[tier]
		if len(cands) == 0 {
			continue
		}
		start := w.rng.Intn(len(cands))
		for i := 0; i < len(cands); i++ {
			vi := cands[(start+i)%len(cands)]
			if v := w.rt.workers[vi]; v.deque.Occupancy() > 0 && !w.res.Banned(vi) {
				w.stats.StealHintProbes++
				w.wlog.Instant(obs.KProbeHint, 0, 0, vi)
				return w.stealFrom(v, vi)
			}
		}
	}
	// 3. Every hint reads empty (or banned). Hints can be stale-low (a
	// thief's refresh can overwrite the owner's newer value), so probe
	// one random victim anyway: the blind probe is what makes progress
	// independent of hint freshness — and, matching the sim's
	// pickVictim, independent of the ban set (bans only redirect the
	// draw; after a few redraws the probe proceeds regardless, so
	// liveness never depends on bans expiring on time).
	vi := w.blindVictim(n)
	w.stats.StealBlindProbes++
	w.wlog.Instant(obs.KProbeBlind, 0, 0, vi)
	return w.stealFrom(w.rt.workers[vi], vi)
}

// blindVictim draws a uniformly random victim != self, redrawing up to
// three times to steer around blacklisted victims, then using the last
// draw anyway.
func (w *Worker) blindVictim(n int) int {
	vi := 0
	for redraw := 0; redraw < 4; redraw++ {
		vi = w.rng.Intn(n - 1)
		if vi >= w.rank {
			vi++
		}
		if !w.res.Banned(vi) {
			break
		}
	}
	return vi
}

// stealFrom runs the thief side of Fig. 6 against victim v through the
// shared resilience layer — batched: one claim/verify round trip moves
// up to ⌈size/2⌉ entries (sched.Resilience.StealBatchFrom), landing as
// ONE contiguous install+memcpy in our arena. Legal only while our
// region is empty (the caller checked).
//
// The stolen entries are pushed onto our OWN deque oldest-first, so
// the deque order (and the arena's descending-VA chain) is preserved:
// the newest entry is popped and run immediately — exactly what the
// single-steal path executed — while the rest are real local work that
// other thieves can re-steal from us, which is how one round trip
// fans work out. On success v becomes the cached victim for the next
// round.
func (w *Worker) stealFrom(v *Worker, vi int) bool {
	w.stats.StealAttempts++
	ts := w.wlog.Clock()
	n, outcome := w.res.StealBatchFrom(vi, v.deque, v.arena, w.arena, w.stealBuf)
	switch outcome {
	case StealEmpty, StealEmptyLocked:
		w.stats.StealAbortEmpty++
		w.wlog.Emit(obs.KStealEmpty, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case StealLockBusy:
		w.stats.StealAbortLock++
		w.wlog.Emit(obs.KStealBusy, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case StealFaulted:
		// Fault budget exhausted against this victim; drop the cache so
		// the next round picks someone else. (The resilience layer
		// already emitted the fault/retry/abandon events.)
		w.lastVictim = -1
		return false
	}
	var total uint64
	for i := 0; i < n; i++ {
		total += w.stealBuf[i].FrameSize
		if err := w.deque.Push(w.stealBuf[i]); err != nil {
			panic(err)
		}
	}
	w.stats.StealsOK += uint64(n)
	w.stats.BytesStolen += total
	w.stats.StealBatches++
	w.stats.StealBatchEntries += uint64(n)
	w.lastVictim = int32(vi)
	w.wlog.StealOK(ts, total, vi)
	// Extra entries just became stealable from us: release a parked
	// worker so the fan-out actually happens.
	if n > 1 && w.rt.lot.count.Load() > 0 {
		w.rt.lot.wakeOne()
	}
	// Pop (not invoke directly): an entry on our deque is claimable by
	// other thieves, so only a successful pop grants execution rights.
	if ent, ok := w.deque.Pop(w.stopFn); ok {
		w.invoke(ent.FrameBase, ent.FrameSize)
	}
	return true
}
