package rt

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Idle parking. The pre-optimization idle engine was a flat 20µs
// sleep-poll: every idle worker woke 50,000 times a second to probe
// deques that were empty the last 50,000 times, stealing cycles (and,
// on a single-core box, the whole CPU quantum) from the one worker with
// actual work. The replacement is a three-stage ladder — spin hot,
// then nap with capped-exponential backoff, then PARK on a wakeable lot
// — plus precise wakeups: Push wakes one parker only when one exists,
// and a record completion wakes exactly the worker whose suspended
// thread it unblocks. The memory-ordering argument for why no wakeup
// can be lost is spelled out in DESIGN.md §10.

const (
	// idleSpinRounds: Gosched-only rounds before the first nap. Spinning
	// stays hot for the common steal-latency case (a victim is about to
	// push).
	idleSpinRounds = 64
	// idleNapStart / idleNapCap bound the exponential nap ladder:
	// 1µs, 2µs, … 256µs, then park. An idle worker reaches the lot after
	// ~½ms instead of polling forever.
	idleNapStart = time.Microsecond
	idleNapCap   = 256 * time.Microsecond
)

// idleAction is what the ladder tells the idle loop to do next.
type idleAction uint8

const (
	actSpin idleAction = iota
	actNap
	actPark
)

// idleState is the per-worker backoff ladder. Pure state machine —
// step decides, the caller sleeps — so the counter semantics are unit
// testable without a runtime.
type idleState struct {
	spins int
	nap   time.Duration
}

// step advances the ladder one round and returns the action to take
// (with the nap duration when the action is actNap).
func (s *idleState) step() (idleAction, time.Duration) {
	if s.spins < idleSpinRounds {
		s.spins++
		return actSpin, 0
	}
	switch {
	case s.nap == 0:
		s.nap = idleNapStart
	case s.nap < idleNapCap:
		s.nap *= 2
	default:
		return actPark, 0
	}
	return actNap, s.nap
}

// reset rewinds the ladder to hot spinning; called whenever the worker
// finds work (pop, steal, or resume succeeds) and after a wakeup.
func (s *idleState) reset() { s.spins, s.nap = 0, 0 }

// parkingLot tracks which workers are parked. count is read on the
// producer fast path (one atomic load per push when nobody is parked);
// the slice is mutated only under mu. A parked worker owns slot
// parkSlot in parked; every removal — by a waker or by the parker's own
// cancel — is paired with exactly one token send on the worker's
// 1-buffered wakeCh, and the worker consumes exactly one token per
// registration episode, so a send can never block and a wake can never
// be lost.
type parkingLot struct {
	count  atomic.Int64
	mu     sync.Mutex
	parked []*Worker
}

// register adds w to the lot. The count increment is a seq-cst RMW that
// program-order-precedes the caller's work recheck — the parker's half
// of the Dekker handshake with push/complete (DESIGN.md §10).
func (l *parkingLot) register(w *Worker) {
	l.mu.Lock()
	w.parkSlot = int32(len(l.parked))
	l.parked = append(l.parked, w)
	l.count.Add(1)
	l.mu.Unlock()
}

// cancel removes w if it is still registered, reporting whether it was.
// A false return means a waker already claimed w and its token is in
// flight — the caller must consume it.
func (l *parkingLot) cancel(w *Worker) bool {
	l.mu.Lock()
	ok := w.parkSlot >= 0
	if ok {
		l.removeLocked(w)
	}
	l.mu.Unlock()
	return ok
}

// removeLocked unregisters w (swap-remove; mu held).
func (l *parkingLot) removeLocked(w *Worker) {
	i := w.parkSlot
	last := len(l.parked) - 1
	moved := l.parked[last]
	l.parked[last] = nil
	if int(i) != last {
		l.parked[i] = moved
		moved.parkSlot = i
	}
	l.parked = l.parked[:last]
	w.parkSlot = -1
	l.count.Add(-1)
}

// wakeOne releases the most recently parked worker, if any (LIFO: its
// caches are the warmest). Called by Push-side producers.
func (l *parkingLot) wakeOne() {
	l.mu.Lock()
	if n := len(l.parked); n > 0 {
		w := l.parked[n-1]
		l.removeLocked(w)
		l.mu.Unlock()
		w.wakeCh <- struct{}{}
		return
	}
	l.mu.Unlock()
}

// wakeWorker releases w specifically, if it is parked — the precise
// wake a record completion sends to the joiner it unblocks.
func (l *parkingLot) wakeWorker(w *Worker) {
	l.mu.Lock()
	if w.parkSlot >= 0 {
		l.removeLocked(w)
		l.mu.Unlock()
		w.wakeCh <- struct{}{}
		return
	}
	l.mu.Unlock()
}

// wakeAll releases every parked worker — the shutdown broadcast from
// finish/fail.
func (l *parkingLot) wakeAll() {
	l.mu.Lock()
	ws := make([]*Worker, len(l.parked))
	copy(ws, l.parked)
	for _, w := range ws {
		l.removeLocked(w)
	}
	l.mu.Unlock()
	for _, w := range ws {
		w.wakeCh <- struct{}{}
	}
}

// hasWorkHint reports whether anything the parked-to-be worker could
// act on exists right now. This is the park-side recheck, so it reads
// EXACT state — other deques' atomic Size and waitq records' done flags
// — never the advisory occupancy hints: a stale hint here could strand
// a worker, whereas on the steal path it only wastes a probe.
func (w *Worker) hasWorkHint() bool {
	// A queued job is dispatchable work ONLY while a job slot is free
	// (persistent pools only; queuedCount stays 0 elsewhere): with every
	// slot occupied, startQueuedJob cannot claim the queue head, and a
	// hint that ignored the slots would bar every idle worker from
	// parking — busy-spinning for as long as sustained load keeps the
	// slots full. Exact for the same reason as the deque sizes: Submit
	// enqueues before it wakes, and finalizeSlot publishes the freed
	// slot before it wakes, so a parker that misses either count here is
	// claimed by the corresponding wake.
	if w.rt.queuedCount.Load() > 0 && w.rt.freeSlotCount.Load() > 0 {
		return true
	}
	for _, v := range w.rt.workers {
		if v != w && v.deque.Size() > 0 {
			return true
		}
	}
	for i := range w.waitq {
		if w.waitq[i].rec.Done.Load() != 0 {
			return true
		}
	}
	return false
}

// park blocks the worker on the lot until a producer, a completer or
// shutdown wakes it. The register→recheck order is what makes the sleep
// safe: work published after the recheck is published by a producer
// that observes count > 0 (or a completer that observes the recorded
// waiter) and sends a wake.
func (w *Worker) park() {
	w.rt.lot.register(w)
	if w.rt.stopped() || w.hasWorkHint() {
		if w.rt.lot.cancel(w) {
			return
		}
		// A waker claimed us between register and cancel; its token is
		// in flight and must be consumed to keep the pairing invariant.
		<-w.wakeCh
		w.stats.Wakes++
		return
	}
	w.stats.Parks++
	ps := w.wlog.Clock()
	<-w.wakeCh
	w.wlog.Park(ps)
	w.stats.Wakes++
}

// idlePark is one round of the idle engine: advance the ladder, then
// spin, nap or park accordingly. idleSpins is advanced on every round
// and NOT while parked — the quiescence tests assert it stops moving
// once the lot has absorbed the idle workers.
func (w *Worker) idlePark() {
	w.idleSpins.Add(1)
	act, nap := w.idle.step()
	switch act {
	case actSpin:
		runtime.Gosched()
	case actNap:
		ns := w.wlog.Clock()
		time.Sleep(nap)
		w.wlog.Nap(ns)
	case actPark:
		w.park()
		w.idle.reset()
	}
}
