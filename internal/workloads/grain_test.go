package workloads

import (
	"testing"

	"uniaddr/internal/core"
)

// TestGrainPreservesResults pins the granularity-control contract: a
// sequential cutoff — static or adaptive — changes HOW MUCH of the tree
// is spawned, never WHAT it computes. Every workload must return its
// exact sequential reference under every grain setting.
func TestGrainPreservesResults(t *testing.T) {
	specs := []Spec{
		Fib(16, 10),
		BTC(6, 2, 10),
		UTS(0, 8, DefaultUTSB0, 10),
		NQueens(7, 10),
	}
	for _, s := range specs {
		for _, grain := range []uint64{1, 3, 8, core.GrainAuto} {
			for _, workers := range []int{1, 5} {
				cfg := core.DefaultConfig(workers)
				cfg.Seed = 7
				cfg.Grain = grain
				m, res, err := s.Run(cfg)
				if err != nil {
					t.Fatalf("%s grain=%d workers=%d: %v", s.Name, grain, workers, err)
				}
				if res != s.Expected {
					t.Fatalf("%s grain=%d workers=%d: result %d, want %d",
						s.Name, grain, workers, res, s.Expected)
				}
				if err := m.CheckQuiescence(); err != nil {
					t.Fatalf("%s grain=%d workers=%d: %v", s.Name, grain, workers, err)
				}
			}
		}
	}
}

// TestGrainPreservesWorkCycles pins the accounting half of the
// contract: an inlined subtree charges exactly the Work cycles its
// spawned form would have, so cycle-level metrics stay comparable
// across grain settings. Single worker keeps the schedule deterministic
// enough that total WorkCycles must match bit-for-bit.
func TestGrainPreservesWorkCycles(t *testing.T) {
	specs := []Spec{
		Fib(14, 25),
		BTC(5, 2, 25),
		UTS(0, 7, DefaultUTSB0, 25),
		NQueens(6, 25),
	}
	for _, s := range specs {
		run := func(grain uint64) (work, tasks uint64) {
			cfg := core.DefaultConfig(1)
			cfg.Grain = grain
			m, res, err := s.Run(cfg)
			if err != nil {
				t.Fatalf("%s grain=%d: %v", s.Name, grain, err)
			}
			if res != s.Expected {
				t.Fatalf("%s grain=%d: result %d, want %d", s.Name, grain, res, s.Expected)
			}
			ts := m.TotalStats()
			return ts.WorkCycles, ts.TasksExecuted
		}
		baseWork, baseTasks := run(0)
		coalWork, coalTasks := run(4)
		if coalWork != baseWork {
			t.Errorf("%s: WorkCycles %d with grain=4, %d with grain=0 — inline path mischarges",
				s.Name, coalWork, baseWork)
		}
		if coalTasks >= baseTasks {
			t.Errorf("%s: grain=4 executed %d tasks vs %d without — coalescing had no effect",
				s.Name, coalTasks, baseTasks)
		}
	}
}

// TestGrainAutoAdapts pins the adaptive default: under GrainAuto a
// single worker (deque always deep once the tree fans out) coalesces
// heavily, so it must execute far fewer tasks than the uncoalesced run
// while returning the same result.
func TestGrainAutoAdapts(t *testing.T) {
	s := Fib(18, 0)
	count := func(grain uint64) uint64 {
		cfg := core.DefaultConfig(1)
		cfg.Grain = grain
		m, res, err := s.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res != s.Expected {
			t.Fatalf("grain=%d: result %d, want %d", grain, res, s.Expected)
		}
		return m.TotalStats().TasksExecuted
	}
	base, auto := count(0), count(core.GrainAuto)
	if auto >= base/2 {
		t.Fatalf("GrainAuto executed %d tasks vs %d uncoalesced — adaptive cutoff not engaging", auto, base)
	}
}
