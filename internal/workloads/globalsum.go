package workloads

import (
	"encoding/binary"
	"fmt"

	"uniaddr/internal/core"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
)

// GlobalSum is a PGAS mini-application exercising the global address
// space library the paper's memory model depends on (§5.1): a uint64
// array is block-distributed over every process's global-heap segment,
// and a divide-and-conquer task tree sums it. Leaf tasks dereference
// global references — cheap local copies when the block lives on the
// executing worker, one-sided RDMA READs otherwise — so data traffic
// interacts with task migration exactly as in a real PGAS program: a
// leaf that would have read locally reads remotely after being stolen.
//
// Frame slots: 0=lo, 1=hi (element indices), 2=elemsPerRank, 3=chunk,
// 4=h1, 5=h2, 6=acc; a chunk·8-byte staging buffer sits at offset 64.
const (
	gsLo     = 0
	gsHi     = 1
	gsPer    = 2
	gsChunk  = 3
	gsH1     = 4
	gsH2     = 5
	gsAcc    = 6
	gsBufOff = 64
)

func gsLocals(chunk uint64) uint32 { return uint32(gsBufOff + chunk*8) }

var gsFID core.FuncID

func init() { gsFID = core.Register("global-sum", gsTask) }

// gsRef returns the global reference of the element with global index
// i under a block distribution of per elements per rank.
func gsRef(i, per uint64) gas.Ref {
	return gas.MakeRef(int(i/per), gas.DefaultBase+mem.VA(8*(i%per)))
}

func gsTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			lo, hi := e.U64(gsLo), e.U64(gsHi)
			chunk := e.U64(gsChunk)
			if hi-lo <= chunk {
				// Leaf: fetch elements through global references, one
				// Get per same-rank run, and sum.
				per := e.U64(gsPer)
				var sum uint64
				for i := lo; i < hi; {
					runEnd := (i/per + 1) * per
					if runEnd > hi {
						runEnd = hi
					}
					n := runEnd - i
					buf := e.Bytes(gsBufOff, int(n*8))
					e.GasGet(gsRef(i, per), buf)
					for j := uint64(0); j < n; j++ {
						sum += binary.LittleEndian.Uint64(buf[j*8:])
					}
					i = runEnd
				}
				e.ReturnU64(sum)
				return core.Done
			}
			if !e.Spawn(1, gsH1, gsFID, uint32(e.FrameSize())-32, gsSub(e, lo, (lo+hi)/2)) {
				return core.Unwound
			}
			rp = 1
		case 1:
			lo, hi := e.U64(gsLo), e.U64(gsHi)
			if !e.Spawn(2, gsH2, gsFID, uint32(e.FrameSize())-32, gsSub(e, (lo+hi)/2, hi)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			r, ok := e.Join(2, e.HandleAt(gsH1))
			if !ok {
				return core.Unwound
			}
			e.SetU64(gsAcc, e.U64(gsAcc)+r)
			rp = 3
		case 3:
			r, ok := e.Join(3, e.HandleAt(gsH2))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(e.U64(gsAcc) + r)
			return core.Done
		default:
			panic("global-sum: bad resume point")
		}
	}
}

func gsSub(parent *core.Env, lo, hi uint64) func(*core.Env) {
	per, chunk := parent.U64(gsPer), parent.U64(gsChunk)
	return func(c *core.Env) {
		c.SetU64(gsLo, lo)
		c.SetU64(gsHi, hi)
		c.SetU64(gsPer, per)
		c.SetU64(gsChunk, chunk)
	}
}

// gsValue is the deterministic element generator (splitmix-style).
func gsValue(i uint64) uint64 {
	x := i + 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	return x % 1_000_003
}

// GlobalSumExpected computes the reference sum.
func GlobalSumExpected(elems uint64) uint64 {
	var s uint64
	for i := uint64(0); i < elems; i++ {
		s += gsValue(i)
	}
	return s
}

// GlobalSum builds the spec for a machine with the given worker count:
// elems uint64 values block-distributed over the workers' global-heap
// segments, summed in leaf chunks of chunk elements.
func GlobalSum(elems, chunk uint64, workers int) Spec {
	if chunk == 0 {
		chunk = 64
	}
	per := (elems + uint64(workers) - 1) / uint64(workers)
	return Spec{
		Name:   "GlobalSum",
		Fid:    gsFID,
		Locals: gsLocals(chunk),
		Setup: func(m *core.Machine) error {
			if m.Config().Workers != workers {
				return fmt.Errorf("globalsum: spec built for %d workers, machine has %d", workers, m.Config().Workers)
			}
			if per*8 > m.Config().GasSize {
				return fmt.Errorf("globalsum: %d elems/rank exceed the %s-byte gas segment", per, "configured")
			}
			buf := make([]byte, 8)
			for i := uint64(0); i < elems; i++ {
				binary.LittleEndian.PutUint64(buf, gsValue(i))
				h := m.Workers()[int(i/per)].Gas()
				if h == nil {
					return fmt.Errorf("globalsum: global heap disabled")
				}
				if err := h.StageLocal(gas.DefaultBase+mem.VA(8*(i%per)), buf); err != nil {
					return err
				}
			}
			return nil
		},
		Init: func(e *core.Env) {
			e.SetU64(gsLo, 0)
			e.SetU64(gsHi, elems)
			e.SetU64(gsPer, per)
			e.SetU64(gsChunk, chunk)
		},
		Expected: GlobalSumExpected(elems),
		Items:    func(r uint64) uint64 { return elems },
	}
}
