// Package workloads implements the paper's three benchmarks — Binary
// Task Creation (BTC), Unbalanced Tree Search (UTS) and NQueens (§6.1)
// — as uni-address task programs, together with exact sequential
// references used to validate every parallel run.
//
// Task bodies follow the resume-point discipline of internal/core: all
// live state sits in frame slots, so a task can be stolen at any spawn
// and suspended at any join, and the UTS/NQueens loops are binarised
// into divide-and-conquer ranges exactly as the paper describes
// ("each task generates zero or two subtasks", §6.1).
package workloads

import "uniaddr/internal/core"

// Spec is a runnable workload: the root function, its frame layout and
// argument initialiser, plus the exact expected result.
type Spec struct {
	Name string
	// Fid / Locals / Init describe the root task.
	Fid    core.FuncID
	Locals uint32
	Init   func(*core.Env)
	// Expected is the root task's result according to the sequential
	// reference (0 if not precomputed).
	Expected uint64
	// Items extracts the throughput quantity (tasks or nodes, Fig. 11)
	// from the root result.
	Items func(result uint64) uint64
	// Setup, when non-nil, stages input data on the built machine
	// before the run (e.g. distributing an array over the global heap).
	Setup func(m *core.Machine) error
}

// Run builds a machine from cfg, runs the spec and returns the machine
// and the root result.
func (s Spec) Run(cfg core.Config) (*core.Machine, uint64, error) {
	m, err := core.NewMachine(cfg)
	if err != nil {
		return nil, 0, err
	}
	if s.Setup != nil {
		if err := s.Setup(m); err != nil {
			return m, 0, err
		}
	}
	res, err := m.Run(s.Fid, s.Locals, s.Init)
	if err != nil {
		return m, 0, err
	}
	return m, res, nil
}
