package workloads

import "uniaddr/internal/core"

// Fib is the classic fork-join microbenchmark the paper uses to
// introduce the task model (Fig. 1, right): fib(n) spawns fib(n-1) and
// fib(n-2) and sums the joined results. It is the smallest complete
// example of the resume-point discipline and doubles as a stress test
// for spawn/join.
//
// Frame slots: 0=n, 1=work, 2=h1, 3=h2, 4=r1.
const (
	fibN      = 0
	fibWork   = 1
	fibH1     = 2
	fibH2     = 3
	fibR1     = 4
	fibLocals = 5 * 8
)

var fibFID core.FuncID

func init() { fibFID = core.Register("fib", fibTask) }

func fibTask(e *core.Env) core.Status {
	switch e.RP() {
	case 0:
		if w := e.U64(fibWork); w > 0 {
			e.Work(w)
		}
		n := e.I64(fibN)
		if n < 2 {
			e.ReturnI64(n)
			return core.Done
		}
		work := e.U64(fibWork)
		if g := grainCutoff(e, fibGrainAuto); g > 0 && uint64(n) <= g {
			// Coalesce: compute the subtree inline. It holds
			// 2·fib(n+1)-1 tasks; this activation already charged one
			// task's work above, so charge the other 2·fib(n+1)-2.
			if work > 0 {
				e.Work(work * (2*FibSequential(uint64(n)+1) - 2))
			}
			e.ReturnU64(FibSequential(uint64(n)))
			return core.Done
		}
		if !e.Spawn(1, fibH1, fibFID, fibLocals, func(c *core.Env) {
			c.SetI64(fibN, n-1)
			c.SetU64(fibWork, work)
		}) {
			return core.Unwound
		}
		fallthrough
	case 1:
		n := e.I64(fibN)
		work := e.U64(fibWork)
		if !e.Spawn(2, fibH2, fibFID, fibLocals, func(c *core.Env) {
			c.SetI64(fibN, n-2)
			c.SetU64(fibWork, work)
		}) {
			return core.Unwound
		}
		fallthrough
	case 2:
		r1, ok := e.Join(2, e.HandleAt(fibH1))
		if !ok {
			return core.Unwound
		}
		e.SetU64(fibR1, r1)
		fallthrough
	case 3:
		r2, ok := e.Join(3, e.HandleAt(fibH2))
		if !ok {
			return core.Unwound
		}
		e.ReturnU64(e.U64(fibR1) + r2)
		return core.Done
	}
	panic("fib: bad resume point")
}

// FibSequential computes fib(n) directly.
func FibSequential(n uint64) uint64 {
	a, b := uint64(0), uint64(1)
	for i := uint64(0); i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// Fib builds the fib spec; work is cycles of simulated computation per
// task.
func Fib(n, work uint64) Spec {
	return Spec{
		Name:   "Fib",
		Fid:    fibFID,
		Locals: fibLocals,
		Init: func(e *core.Env) {
			e.SetI64(fibN, int64(n))
			e.SetU64(fibWork, work)
		},
		Expected: FibSequential(n),
		Items: func(r uint64) uint64 {
			// Tasks in the fib call tree, not the numeric result:
			// T(n) = 2·fib(n+1) - 1.
			return 2*FibSequential(n+1) - 1
		},
	}
}
