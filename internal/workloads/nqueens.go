package workloads

import "uniaddr/internal/core"

// NQueens (§6.1, after BOTS): count the placements of N queens on an
// N×N board, searching row by row. The per-row column loop is
// binarised into range tasks (zero or two subtasks each), the paper's
// divide-and-conquer loop optimisation.
//
// The partial board travels inside the task frame — it is exactly the
// kind of stack-resident state whose bytes must survive migration
// unchanged, which is why NQueens has the third-largest uni-address
// footprint in Table 4.
//
// A task's result packs both reported quantities:
// solutions<<40 | nodes, where a "node" is one attempted placement.

// Range-task frame: slots 0=N, 1=row, 2=lo, 3=hi, 4=work, 5=h1, 6=h2,
// 7=acc; board bytes (one column index per placed row) at offset 64.
const (
	nqN        = 0
	nqRow      = 1
	nqLo       = 2
	nqHi       = 3
	nqWork     = 4
	nqH1       = 5
	nqH2       = 6
	nqAcc      = 7
	nqBoardOff = 64
)

func nqLocals(n uint64) uint32 { return uint32(nqBoardOff + n) }

// PackNQ packs (solutions, nodes) into one result word.
func PackNQ(solutions, nodes uint64) uint64 { return solutions<<40 | nodes }

// UnpackNQ splits a packed NQueens result.
func UnpackNQ(r uint64) (solutions, nodes uint64) { return r >> 40, r & (1<<40 - 1) }

var nqFID core.FuncID

func init() { nqFID = core.Register("nqueens-range", nqTask) }

// nqSafe reports whether placing a queen at (row, col) conflicts with
// the rows already on the board.
func nqSafe(board []byte, row, col uint64) bool {
	for r := uint64(0); r < row; r++ {
		c := uint64(board[r])
		if c == col {
			return false
		}
		d := row - r
		if c+d == col || c == col+d {
			return false
		}
	}
	return true
}

func nqTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			n := e.U64(nqN)
			lo, hi := e.U64(nqLo), e.U64(nqHi)
			if row := e.U64(nqRow); grainCutoff(e, nqGrainAuto) >= n-row {
				// Coalesce: ≤cutoff rows left — search the remaining
				// board inline. Every attempted placement charges one
				// task's work, exactly as the spawned tree would.
				sol, nodes := nqRangeWalk(e.Bytes(nqBoardOff, int(n)), n, row, lo, hi)
				if w := e.U64(nqWork); w > 0 && nodes > 0 {
					e.Work(w * nodes)
				}
				e.ReturnU64(PackNQ(sol, nodes))
				return core.Done
			}
			if hi-lo > 1 {
				mid := (lo + hi) / 2
				if !e.Spawn(1, nqH1, nqFID, nqLocals(n), nqSubRange(e, lo, mid)) {
					return core.Unwound
				}
				rp = 1
				continue
			}
			// Single column: try the placement.
			if w := e.U64(nqWork); w > 0 {
				e.Work(w)
			}
			row, col := e.U64(nqRow), lo
			board := e.Bytes(nqBoardOff, int(n))
			if !nqSafe(board, row, col) {
				e.ReturnU64(PackNQ(0, 1))
				return core.Done
			}
			if row == n-1 {
				e.ReturnU64(PackNQ(1, 1))
				return core.Done
			}
			board[row] = byte(col)
			if !e.Spawn(4, nqH1, nqFID, nqLocals(n), nqNextRow(e)) {
				return core.Unwound
			}
			rp = 4
		case 1:
			n := e.U64(nqN)
			lo, hi := e.U64(nqLo), e.U64(nqHi)
			if !e.Spawn(2, nqH2, nqFID, nqLocals(n), nqSubRange(e, (lo+hi)/2, hi)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			r, ok := e.Join(2, e.HandleAt(nqH1))
			if !ok {
				return core.Unwound
			}
			e.SetU64(nqAcc, e.U64(nqAcc)+r)
			rp = 3
		case 3:
			r, ok := e.Join(3, e.HandleAt(nqH2))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(e.U64(nqAcc) + r)
			return core.Done
		case 4:
			// Placement accepted: add the subtree below this row.
			r, ok := e.Join(4, e.HandleAt(nqH1))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(PackNQ(0, 1) + r)
			return core.Done
		default:
			panic("nqueens: bad resume point")
		}
	}
}

// nqSubRange clones the frame for a column sub-range of the same row.
func nqSubRange(parent *core.Env, lo, hi uint64) func(*core.Env) {
	n := parent.U64(nqN)
	row, work := parent.U64(nqRow), parent.U64(nqWork)
	board := make([]byte, n)
	copy(board, parent.Bytes(nqBoardOff, int(n)))
	return func(c *core.Env) {
		c.SetU64(nqN, n)
		c.SetU64(nqRow, row)
		c.SetU64(nqLo, lo)
		c.SetU64(nqHi, hi)
		c.SetU64(nqWork, work)
		copy(c.Bytes(nqBoardOff, int(n)), board)
	}
}

// nqNextRow clones the frame (with the updated board) for the full
// column range of the next row.
func nqNextRow(parent *core.Env) func(*core.Env) {
	n := parent.U64(nqN)
	row, work := parent.U64(nqRow), parent.U64(nqWork)
	board := make([]byte, n)
	copy(board, parent.Bytes(nqBoardOff, int(n)))
	return func(c *core.Env) {
		c.SetU64(nqN, n)
		c.SetU64(nqRow, row+1)
		c.SetU64(nqLo, 0)
		c.SetU64(nqHi, n)
		c.SetU64(nqWork, work)
		copy(c.Bytes(nqBoardOff, int(n)), board)
	}
}

// nqRangeWalk searches columns [lo,hi) of row and everything below
// sequentially, against a private copy of the partial board — the
// inline-path analogue of one range task's whole subtree. Counting
// conventions match the task program exactly: every attempted
// placement is one node.
func nqRangeWalk(board []byte, n, row, lo, hi uint64) (solutions, nodes uint64) {
	b := make([]byte, n)
	copy(b, board)
	var rec func(row, lo, hi uint64)
	rec = func(row, lo, hi uint64) {
		for col := lo; col < hi; col++ {
			nodes++
			if !nqSafe(b, row, col) {
				continue
			}
			if row == n-1 {
				solutions++
				continue
			}
			b[row] = byte(col)
			rec(row+1, 0, n)
		}
	}
	rec(row, lo, hi)
	return solutions, nodes
}

// NQueensSequential returns the exact (solutions, nodes) for N with the
// same node-counting convention as the task program.
func NQueensSequential(n uint64) (solutions, nodes uint64) {
	board := make([]byte, n)
	var rec func(row uint64)
	rec = func(row uint64) {
		for col := uint64(0); col < n; col++ {
			nodes++
			if !nqSafe(board, row, col) {
				continue
			}
			if row == n-1 {
				solutions++
				continue
			}
			board[row] = byte(col)
			rec(row + 1)
		}
	}
	rec(0)
	return solutions, nodes
}

// NQueens builds an NQueens spec. work is the simulated cost per
// placement attempt in cycles.
func NQueens(n, work uint64) Spec {
	sol, nodes := NQueensSequential(n)
	return Spec{
		Name:   "NQueens",
		Fid:    nqFID,
		Locals: nqLocals(n),
		Init: func(e *core.Env) {
			e.SetU64(nqN, n)
			e.SetU64(nqRow, 0)
			e.SetU64(nqLo, 0)
			e.SetU64(nqHi, n)
			e.SetU64(nqWork, work)
		},
		Expected: PackNQ(sol, nodes),
		Items:    func(r uint64) uint64 { _, nd := UnpackNQ(r); return nd },
	}
}
