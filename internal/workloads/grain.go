package workloads

import "uniaddr/internal/core"

// Granularity control (ISSUE 9): every recursive workload gains a
// sequential cutoff — below it a task computes its remaining subtree
// inline instead of spawning, trading exposed parallelism for far fewer
// deque operations. The inline paths are RESULT- and WORK-preserving:
// they return exactly the value the spawned subtree would have joined
// to, and they charge exactly the Work cycles the subtree's tasks would
// have charged, so goldens, differential comparisons and cycle
// accounting are unchanged — only the task count shrinks.
//
// The knob is core.Env.Grain():
//
//	0               coalescing off (the default; every spec stays a
//	                pure fork-join tree)
//	core.GrainAuto  adaptive: use the workload's default cutoff, but
//	                only while the backend reports local work surplus
//	                (Env.Coalesce()) — when the deque runs low the
//	                cutoff collapses to 0 so fresh steal targets keep
//	                being produced for idle thieves
//	n               static cutoff n, always applied
//
// Per-workload auto cutoffs, sized so an inlined subtree is tens to a
// few hundred leaf-equivalents — big enough to amortise a spawn, small
// enough that steal victims still expose outer tasks:
const (
	fibGrainAuto = 12 // subtree of 2·fib(13)-1 = 465 tasks
	btcGrainAuto = 3  // depth-3 subtree: 85 tasks at iter=2
	utsGrainAuto = 3  // ≤3 remaining levels of the geometric tree
	nqGrainAuto  = 3  // ≤3 remaining board rows
)

// grainCutoff resolves the effective cutoff for one task activation.
// auto is the workload's default used under GrainAuto; the adaptive
// branch consults Env.Coalesce() EVERY activation, so the same worker
// alternates between coalescing (deque deep) and full expansion (deque
// shallow) as steal pressure drains it.
func grainCutoff(e *core.Env, auto uint64) uint64 {
	switch g := e.Grain(); g {
	case 0:
		return 0
	case core.GrainAuto:
		if e.Coalesce() {
			return auto
		}
		return 0
	default:
		return g
	}
}
