package workloads

import (
	"crypto/sha1"
	"encoding/binary"

	"uniaddr/internal/core"
)

// Unbalanced Tree Search (§6.1, [23]): traverse an unpredictable tree
// whose shape is derived from a splittable cryptographic hash, so any
// process can expand any subtree deterministically. Mirroring the
// paper's configuration (-t 1 -r <seed> -b 4 -a 3), every node has 0–4
// children drawn from a truncated geometric distribution
// (P(K ≥ j) = q^j, j ≤ 4) and the tree is cut off at a fixed depth.
//
// As in the paper, the child loop is binarised into divide-and-conquer
// range tasks so each task generates zero or two subtasks.

// descLen is the UTS node descriptor size (SHA-1 digest).
const descLen = sha1.Size

// utsChildDesc derives child i's descriptor.
func utsChildDesc(parent []byte, i uint32) [descLen]byte {
	var buf [descLen + 4]byte
	copy(buf[:descLen], parent)
	binary.LittleEndian.PutUint32(buf[descLen:], i)
	return sha1.Sum(buf[:])
}

// utsRootDesc derives the root descriptor from a seed (-r).
func utsRootDesc(seed uint64) [descLen]byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	return sha1.Sum(b[:])
}

// GeomQForMean solves q in P(K ≥ j) = q^j (j = 1..4, truncated at 4)
// so that E[K] = q+q²+q³+q⁴ equals mean (clamped to [0,4]). Bisection
// over float64 is bit-deterministic, so every process derives the same
// tree.
func GeomQForMean(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	if mean >= 4 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 50; i++ {
		q := (lo + hi) / 2
		e := q + q*q + q*q*q + q*q*q*q
		if e < mean {
			lo = q
		} else {
			hi = q
		}
	}
	return (lo + hi) / 2
}

// utsChildCount maps a node's descriptor to its child count following
// the UTS geometric tree with linear shape (-t 1 -a 3): the expected
// branching factor decreases linearly from b0 at the root to 0 at the
// cutoff depth, and counts are capped at 4 ("nodes have 0-4 child
// nodes", §6.1).
func utsChildCount(desc []byte, depth, cutoff uint64, b0 uint64) uint64 {
	if depth >= cutoff {
		return 0
	}
	mean := float64(b0) * (1 - float64(depth)/float64(cutoff))
	q := GeomQForMean(mean)
	qfix := uint64(q * (1 << 32))
	if qfix >= 1<<32 {
		qfix = 1<<32 - 1
	}
	r := uint64(binary.LittleEndian.Uint32(desc[:4]))
	thr := qfix
	var k uint64
	for k < 4 && r < thr {
		k++
		thr = thr * qfix >> 32
	}
	return k
}

// DefaultUTSB0 is the paper's root branching factor (-b 4).
const DefaultUTSB0 = 4

// Node-task frame: bytes 0–23 descriptor (20 used), then slots
// 3=depth, 4=cutoff, 5=b0, 6=work, 7=range handle.
const (
	utsDepth      = 3
	utsCut        = 4
	utsB0         = 5
	utsWork       = 6
	utsH          = 7
	utsNodeLocals = 8 * 8
)

// Range-task frame: bytes 0–23 parent descriptor, slots 3..6 as above,
// 7=lo, 8=hi, 9=h1, 10=h2, 11=acc.
const (
	utsLo          = 7
	utsHi          = 8
	utsRH1         = 9
	utsRH2         = 10
	utsAcc         = 11
	utsRangeLocals = 12 * 8
)

var (
	utsNodeFID  core.FuncID
	utsRangeFID core.FuncID
)

func init() {
	utsNodeFID = core.Register("uts-node", utsNodeTask)
	utsRangeFID = core.Register("uts-range", utsRangeTask)
}

func utsNodeTask(e *core.Env) core.Status {
	switch e.RP() {
	case 0:
		if w := e.U64(utsWork); w > 0 {
			e.Work(w)
		}
		desc := e.Bytes(0, descLen)
		if d, cut := e.U64(utsDepth), e.U64(utsCut); d <= cut {
			if g := grainCutoff(e, utsGrainAuto); g > 0 && cut-d <= g {
				// Coalesce: ≤g remaining levels — walk the subtree
				// inline. Only node tasks charge work (range tasks are
				// free), and this node's share was charged above.
				nodes := utsSubtreeNodes(desc, d, cut, e.U64(utsB0))
				if w := e.U64(utsWork); w > 0 && nodes > 1 {
					e.Work(w * (nodes - 1))
				}
				e.ReturnU64(nodes)
				return core.Done
			}
		}
		k := utsChildCount(desc, e.U64(utsDepth), e.U64(utsCut), e.U64(utsB0))
		if k == 0 {
			e.ReturnU64(1)
			return core.Done
		}
		depth, cut, b0, work := e.U64(utsDepth), e.U64(utsCut), e.U64(utsB0), e.U64(utsWork)
		var d [descLen]byte
		copy(d[:], desc)
		if !e.Spawn(1, utsH, utsRangeFID, utsRangeLocals, func(c *core.Env) {
			copy(c.Bytes(0, descLen), d[:])
			c.SetU64(utsDepth, depth)
			c.SetU64(utsCut, cut)
			c.SetU64(utsB0, b0)
			c.SetU64(utsWork, work)
			c.SetU64(utsLo, 0)
			c.SetU64(utsHi, k)
		}) {
			return core.Unwound
		}
		fallthrough
	case 1:
		r, ok := e.Join(1, e.HandleAt(utsH))
		if !ok {
			return core.Unwound
		}
		e.ReturnU64(1 + r)
		return core.Done
	}
	panic("uts-node: bad resume point")
}

func utsRangeTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			lo, hi := e.U64(utsLo), e.U64(utsHi)
			if hi-lo == 1 {
				// Leaf range: expand one child node.
				cd := utsChildDesc(e.Bytes(0, descLen), uint32(lo))
				depth, cut, b0, work := e.U64(utsDepth), e.U64(utsCut), e.U64(utsB0), e.U64(utsWork)
				if !e.Spawn(3, utsRH1, utsNodeFID, utsNodeLocals, func(c *core.Env) {
					copy(c.Bytes(0, descLen), cd[:])
					c.SetU64(utsDepth, depth+1)
					c.SetU64(utsCut, cut)
					c.SetU64(utsB0, b0)
					c.SetU64(utsWork, work)
				}) {
					return core.Unwound
				}
				rp = 3
				continue
			}
			if !e.Spawn(1, utsRH1, utsRangeFID, utsRangeLocals, utsSubRange(e, lo, (lo+hi)/2)) {
				return core.Unwound
			}
			rp = 1
		case 1:
			lo, hi := e.U64(utsLo), e.U64(utsHi)
			if !e.Spawn(2, utsRH2, utsRangeFID, utsRangeLocals, utsSubRange(e, (lo+hi)/2, hi)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			r, ok := e.Join(2, e.HandleAt(utsRH1))
			if !ok {
				return core.Unwound
			}
			e.SetU64(utsAcc, e.U64(utsAcc)+r)
			rp = 4
		case 3:
			// Leaf join: a single child node's subtree.
			r, ok := e.Join(3, e.HandleAt(utsRH1))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(r)
			return core.Done
		case 4:
			r, ok := e.Join(4, e.HandleAt(utsRH2))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(e.U64(utsAcc) + r)
			return core.Done
		default:
			panic("uts-range: bad resume point")
		}
	}
}

func utsSubRange(parent *core.Env, lo, hi uint64) func(*core.Env) {
	var d [descLen]byte
	copy(d[:], parent.Bytes(0, descLen))
	depth, cut, b0, work := parent.U64(utsDepth), parent.U64(utsCut), parent.U64(utsB0), parent.U64(utsWork)
	return func(c *core.Env) {
		copy(c.Bytes(0, descLen), d[:])
		c.SetU64(utsDepth, depth)
		c.SetU64(utsCut, cut)
		c.SetU64(utsB0, b0)
		c.SetU64(utsWork, work)
		c.SetU64(utsLo, lo)
		c.SetU64(utsHi, hi)
	}
}

// utsSubtreeNodes counts the geometric-tree subtree rooted at an
// arbitrary node (inclusive) — the inline-path analogue of
// UTSSequential, which always starts at the root.
func utsSubtreeNodes(desc []byte, depth, cutoff, b0 uint64) uint64 {
	type item struct {
		desc  [descLen]byte
		depth uint64
	}
	var root item
	copy(root.desc[:], desc)
	root.depth = depth
	stack := []item{root}
	var nodes uint64
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		k := utsChildCount(it.desc[:], it.depth, cutoff, b0)
		for i := uint64(0); i < k; i++ {
			stack = append(stack, item{utsChildDesc(it.desc[:], uint32(i)), it.depth + 1})
		}
	}
	return nodes
}

// UTSSequential walks the tree iteratively and returns the exact node
// count.
func UTSSequential(seed, cutoff, b0 uint64) uint64 {
	type item struct {
		desc  [descLen]byte
		depth uint64
	}
	stack := []item{{utsRootDesc(seed), 0}}
	var nodes uint64
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		k := utsChildCount(it.desc[:], it.depth, cutoff, b0)
		for i := uint64(0); i < k; i++ {
			stack = append(stack, item{utsChildDesc(it.desc[:], uint32(i)), it.depth + 1})
		}
	}
	return nodes
}

// UTS builds an Unbalanced Tree Search spec with the given seed, depth
// cutoff, root branching factor and per-node work cost. Expected is
// computed by the sequential reference.
func UTS(seed, cutoff, b0, work uint64) Spec {
	root := utsRootDesc(seed)
	return Spec{
		Name:   "UTS",
		Fid:    utsNodeFID,
		Locals: utsNodeLocals,
		Init: func(e *core.Env) {
			copy(e.Bytes(0, descLen), root[:])
			e.SetU64(utsDepth, 0)
			e.SetU64(utsCut, cutoff)
			e.SetU64(utsB0, b0)
			e.SetU64(utsWork, work)
		},
		Expected: UTSSequential(seed, cutoff, b0),
		Items:    func(r uint64) uint64 { return r },
	}
}

// utsBinomialChildCount implements the UTS *binomial* tree variant
// (-t 0): the root has b0 children; every other node has m children
// with probability q and none with probability 1-q (q·m < 1 keeps the
// tree finite; E[size] = b0/(1-q·m) + 1). Unlike the geometric tree it
// has no depth cutoff — imbalance comes purely from chance, which makes
// it the classic stress test for dynamic load balancing.
func utsBinomialChildCount(desc []byte, depth, b0, m uint64, qfix uint64) uint64 {
	if depth == 0 {
		return b0
	}
	r := uint64(binary.LittleEndian.Uint32(desc[4:8]))
	if r < qfix {
		return m
	}
	return 0
}

// Binomial-tree node frame reuses the geometric layout; slot utsB0
// packs b0 (high 16), m (high 8 of low 48)… kept simpler: slots 3=depth,
// 4=qfix, 5=b0<<8|m, 6=work, 7=handle.

var utsBinNodeFID core.FuncID

func init() { utsBinNodeFID = core.Register("uts-binomial-node", utsBinNodeTask) }

func utsBinNodeTask(e *core.Env) core.Status {
	switch e.RP() {
	case 0:
		if w := e.U64(utsWork); w > 0 {
			e.Work(w)
		}
		desc := e.Bytes(0, descLen)
		packed := e.U64(utsB0)
		b0, m := packed>>8, packed&0xff
		k := utsBinomialChildCount(desc, e.U64(utsDepth), b0, m, e.U64(utsCut))
		if k == 0 {
			e.ReturnU64(1)
			return core.Done
		}
		depth, qfix, work := e.U64(utsDepth), e.U64(utsCut), e.U64(utsWork)
		var d [descLen]byte
		copy(d[:], desc)
		if !e.Spawn(1, utsH, utsBinRangeFID, utsRangeLocals, func(c *core.Env) {
			copy(c.Bytes(0, descLen), d[:])
			c.SetU64(utsDepth, depth)
			c.SetU64(utsCut, qfix)
			c.SetU64(utsB0, packed)
			c.SetU64(utsWork, work)
			c.SetU64(utsLo, 0)
			c.SetU64(utsHi, k)
		}) {
			return core.Unwound
		}
		fallthrough
	case 1:
		r, ok := e.Join(1, e.HandleAt(utsH))
		if !ok {
			return core.Unwound
		}
		e.ReturnU64(1 + r)
		return core.Done
	}
	panic("uts-binomial-node: bad resume point")
}

var utsBinRangeFID core.FuncID

func init() { utsBinRangeFID = core.Register("uts-binomial-range", utsBinRangeTask) }

func utsBinRangeTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			lo, hi := e.U64(utsLo), e.U64(utsHi)
			if hi-lo == 1 {
				cd := utsChildDesc(e.Bytes(0, descLen), uint32(lo))
				depth, qfix, packed, work := e.U64(utsDepth), e.U64(utsCut), e.U64(utsB0), e.U64(utsWork)
				if !e.Spawn(3, utsRH1, utsBinNodeFID, utsNodeLocals, func(c *core.Env) {
					copy(c.Bytes(0, descLen), cd[:])
					c.SetU64(utsDepth, depth+1)
					c.SetU64(utsCut, qfix)
					c.SetU64(utsB0, packed)
					c.SetU64(utsWork, work)
				}) {
					return core.Unwound
				}
				rp = 3
				continue
			}
			if !e.Spawn(1, utsRH1, utsBinRangeFID, utsRangeLocals, utsSubRange(e, lo, (lo+hi)/2)) {
				return core.Unwound
			}
			rp = 1
		case 1:
			lo, hi := e.U64(utsLo), e.U64(utsHi)
			if !e.Spawn(2, utsRH2, utsBinRangeFID, utsRangeLocals, utsSubRange(e, (lo+hi)/2, hi)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			r, ok := e.Join(2, e.HandleAt(utsRH1))
			if !ok {
				return core.Unwound
			}
			e.SetU64(utsAcc, e.U64(utsAcc)+r)
			rp = 4
		case 3:
			r, ok := e.Join(3, e.HandleAt(utsRH1))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(r)
			return core.Done
		case 4:
			r, ok := e.Join(4, e.HandleAt(utsRH2))
			if !ok {
				return core.Unwound
			}
			e.ReturnU64(e.U64(utsAcc) + r)
			return core.Done
		default:
			panic("uts-binomial-range: bad resume point")
		}
	}
}

// UTSBinomialSequential walks the binomial tree exactly.
func UTSBinomialSequential(seed, b0, m uint64, q float64) uint64 {
	qfix := uint64(q * (1 << 32))
	type item struct {
		desc  [descLen]byte
		depth uint64
	}
	stack := []item{{utsRootDesc(seed), 0}}
	var nodes uint64
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		k := utsBinomialChildCount(it.desc[:], it.depth, b0, m, qfix)
		for i := uint64(0); i < k; i++ {
			stack = append(stack, item{utsChildDesc(it.desc[:], uint32(i)), it.depth + 1})
		}
	}
	return nodes
}

// UTSBinomial builds the binomial-tree spec (q·m must be < 1).
func UTSBinomial(seed, b0, m uint64, q float64, work uint64) Spec {
	if q*float64(m) >= 1 {
		panic("workloads: supercritical binomial tree (q*m >= 1) would be infinite")
	}
	root := utsRootDesc(seed)
	qfix := uint64(q * (1 << 32))
	packed := b0<<8 | m
	return Spec{
		Name:   "UTS-binomial",
		Fid:    utsBinNodeFID,
		Locals: utsNodeLocals,
		Init: func(e *core.Env) {
			copy(e.Bytes(0, descLen), root[:])
			e.SetU64(utsDepth, 0)
			e.SetU64(utsCut, qfix)
			e.SetU64(utsB0, packed)
			e.SetU64(utsWork, work)
		},
		Expected: UTSBinomialSequential(seed, b0, m, q),
		Items:    func(r uint64) uint64 { return r },
	}
}
