package workloads

import (
	"encoding/binary"
	"fmt"
	"sort"

	"uniaddr/internal/core"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
)

// MergeSort is the second PGAS application: a block-distributed uint64
// array is sorted in place by a fork-join mergesort whose leaves sort
// their range locally and whose interior tasks merge two sorted runs —
// all element traffic moves through global references (Get/Put), so a
// task stolen away from its data pays one-sided RDMA for every access,
// exactly the locality/balance tension PGAS runtimes live with.
//
// The array is double-buffered in the global heap (src and dst areas at
// fixed offsets in every rank's segment); level parity decides the
// direction, so no task ever merges into the run it is reading.
//
// Frame slots: 0=lo, 1=hi, 2=per (elements/rank), 3=chunk, 4=h1, 5=h2,
// 6=depth (recursion level, for buffer parity), 7=spare; staging buffer
// for up to 2·chunk elements at offset 64.
const (
	msLo     = 0
	msHi     = 1
	msPer    = 2
	msChunk  = 3
	msH1     = 4
	msH2     = 5
	msDepth  = 6
	msBufOff = 64
)

// Array A lives at segment offset 0; array B at offset msAltOff.
func msAltOff(per uint64) uint64 { return per * 8 }

func msLocals(chunk uint64) uint32 { return uint32(msBufOff + 2*chunk*8) }

var msFID core.FuncID

func init() { msFID = core.Register("merge-sort", msTask) }

// msRef returns the global ref of element i in array "side" (0 = A,
// 1 = B) under a block distribution of per elements per rank.
func msRef(i, per, side uint64) gas.Ref {
	return gas.MakeRef(int(i/per), gas.DefaultBase+mem.VA(side*msAltOff(per)+8*(i%per)))
}

// msRead fetches elements [lo, hi) of the given side into buf (one Get
// per same-rank run).
func msRead(e *core.Env, lo, hi, per, side uint64, buf []byte) {
	for i := lo; i < hi; {
		runEnd := (i/per + 1) * per
		if runEnd > hi {
			runEnd = hi
		}
		e.GasGet(msRef(i, per, side), buf[(i-lo)*8:(runEnd-lo)*8])
		i = runEnd
	}
}

// msWrite stores elements [lo, hi) of the given side from buf.
func msWrite(e *core.Env, lo, hi, per, side uint64, buf []byte) {
	for i := lo; i < hi; {
		runEnd := (i/per + 1) * per
		if runEnd > hi {
			runEnd = hi
		}
		e.GasPut(msRef(i, per, side), buf[(i-lo)*8:(runEnd-lo)*8])
		i = runEnd
	}
}

// levelSide returns which array holds the sorted data produced at a
// node with the given recursion depth (leaves write A; each merge level
// flips).
func levelSide(depth, leafDepth uint64) uint64 { return (leafDepth - depth) % 2 }

// msLeafDepth computes the recursion depth at which ranges reach chunk
// size (same formula the task uses, so parity agrees everywhere).
func msLeafDepth(n, chunk uint64) uint64 {
	var d uint64
	for n > chunk {
		n = (n + 1) / 2
		d++
	}
	return d
}

func msTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			lo, hi := e.U64(msLo), e.U64(msHi)
			per, chunk := e.U64(msPer), e.U64(msChunk)
			if hi-lo <= chunk {
				// Leaf: fetch the raw input (array A), sort locally,
				// and write to the side this depth's parity dictates —
				// leaves can sit at different depths when spans split
				// unevenly, and side-of-depth keeps every parent's
				// child-side uniform.
				n := hi - lo
				outSide := levelSide(e.U64(msDepth), msLeafDepthOf(e))
				buf := e.Bytes(msBufOff, int(n*8))
				msRead(e, lo, hi, per, 0, buf)
				vals := make([]uint64, n)
				for i := range vals {
					vals[i] = binary.LittleEndian.Uint64(buf[i*8:])
				}
				sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
				for i, v := range vals {
					binary.LittleEndian.PutUint64(buf[i*8:], v)
				}
				e.Work(40 * n) // n log n-ish local sort cost
				msWrite(e, lo, hi, per, outSide, buf)
				e.ReturnU64(n)
				return core.Done
			}
			if !e.Spawn(1, msH1, msFID, uint32(e.FrameSize())-32, msSub(e, lo, (lo+hi)/2)) {
				return core.Unwound
			}
			rp = 1
		case 1:
			lo, hi := e.U64(msLo), e.U64(msHi)
			if !e.Spawn(2, msH2, msFID, uint32(e.FrameSize())-32, msSub(e, (lo+hi)/2, hi)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			if _, ok := e.Join(2, e.HandleAt(msH1)); !ok {
				return core.Unwound
			}
			rp = 3
		case 3:
			if _, ok := e.Join(3, e.HandleAt(msH2)); !ok {
				return core.Unwound
			}
			// Merge the halves. Children produced their output in the
			// side given by their depth's parity; we write the opposite.
			msMerge(e)
			e.ReturnU64(e.U64(msHi) - e.U64(msLo))
			return core.Done
		default:
			panic("merge-sort: bad resume point")
		}
	}
}

// msMerge merges [lo,mid) and [mid,hi) from the children's side into
// this level's side, streaming through the frame staging buffer in
// chunk-sized pieces.
func msMerge(e *core.Env) {
	lo, hi := e.U64(msLo), e.U64(msHi)
	per := e.U64(msPer)
	depth := e.U64(msDepth)
	total := hi - lo
	mid := (lo + hi) / 2
	childSide := levelSide(depth+1, msLeafDepthOf(e))
	outSide := levelSide(depth, msLeafDepthOf(e))
	// Stream-merge with full fetch (ranges at our scales fit the frame
	// for leaves; for interior nodes stream in chunk pieces).
	a := fetchAll(e, lo, mid, per, childSide)
	b := fetchAll(e, mid, hi, per, childSide)
	out := make([]uint64, 0, total)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	e.Work(8 * total) // merge cost
	storeAll(e, lo, hi, per, outSide, out)
}

// msLeafDepthOf recovers the nominal leaf depth for buffer parity from
// the root span stashed in the spare slot by Init and inherited.
func msLeafDepthOf(e *core.Env) uint64 { return msLeafDepth(e.U64(7), e.U64(msChunk)) }

// fetchAll loads [lo,hi) of side via chunked Gets using the frame
// staging buffer.
func fetchAll(e *core.Env, lo, hi, per, side uint64) []uint64 {
	chunk := e.U64(msChunk)
	vals := make([]uint64, 0, hi-lo)
	for s := lo; s < hi; s += 2 * chunk {
		t := s + 2*chunk
		if t > hi {
			t = hi
		}
		buf := e.Bytes(msBufOff, int((t-s)*8))
		msRead(e, s, t, per, side, buf)
		for i := uint64(0); i < t-s; i++ {
			vals = append(vals, binary.LittleEndian.Uint64(buf[i*8:]))
		}
	}
	return vals
}

// storeAll writes vals to [lo,hi) of side via chunked Puts.
func storeAll(e *core.Env, lo, hi, per, side uint64, vals []uint64) {
	chunk := e.U64(msChunk)
	for s := lo; s < hi; s += 2 * chunk {
		t := s + 2*chunk
		if t > hi {
			t = hi
		}
		buf := e.Bytes(msBufOff, int((t-s)*8))
		for i := uint64(0); i < t-s; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], vals[s-lo+i])
		}
		msWrite(e, s, t, per, side, buf)
	}
}

func msSub(parent *core.Env, lo, hi uint64) func(*core.Env) {
	per, chunk := parent.U64(msPer), parent.U64(msChunk)
	depth, span := parent.U64(msDepth), parent.U64(7)
	return func(c *core.Env) {
		c.SetU64(msLo, lo)
		c.SetU64(msHi, hi)
		c.SetU64(msPer, per)
		c.SetU64(msChunk, chunk)
		c.SetU64(msDepth, depth+1)
		c.SetU64(7, span)
	}
}

// msValue generates the unsorted input deterministically.
func msValue(i uint64) uint64 {
	x := i*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	x ^= x >> 29
	x *= 0xff51afd7ed558ccd
	x ^= x >> 32
	return x
}

// mergeSortReference computes the input's order-independent sum plus
// the sorted array's first and last elements for validation.
func mergeSortReference(elems uint64) (sum, first, last uint64) {
	vals := make([]uint64, elems)
	for i := range vals {
		vals[i] = msValue(uint64(i))
		sum += vals[i]
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	return sum, vals[0], vals[elems-1]
}

// MergeSort builds the spec. After the run, Validate(m) checks the
// final array is the sorted permutation of the input.
func MergeSort(elems, chunk uint64, workers int) Spec {
	if chunk == 0 {
		chunk = 64
	}
	per := (elems + uint64(workers) - 1) / uint64(workers)
	return Spec{
		Name:   "MergeSort",
		Fid:    msFID,
		Locals: msLocals(chunk),
		Setup: func(m *core.Machine) error {
			if m.Config().Workers != workers {
				return fmt.Errorf("mergesort: spec built for %d workers", workers)
			}
			if 2*per*8 > m.Config().GasSize {
				return fmt.Errorf("mergesort: need %d B/rank gas segment", 2*per*8)
			}
			buf := make([]byte, 8)
			for i := uint64(0); i < elems; i++ {
				binary.LittleEndian.PutUint64(buf, msValue(i))
				h := m.Workers()[int(i/per)].Gas()
				if err := h.StageLocal(gas.DefaultBase+mem.VA(8*(i%per)), buf); err != nil {
					return err
				}
			}
			return nil
		},
		Init: func(e *core.Env) {
			e.SetU64(msLo, 0)
			e.SetU64(msHi, elems)
			e.SetU64(msPer, per)
			e.SetU64(msChunk, chunk)
			e.SetU64(msDepth, 0)
			e.SetU64(7, elems)
		},
		Expected: elems, // root returns the element count; ordering checked by VerifySorted
		Items:    func(r uint64) uint64 { return elems },
	}
}

// VerifySorted checks (host-side, zero simulated cost) that the final
// array — in the side the root level wrote — is globally sorted and is
// a permutation of the input (by sum).
func VerifySorted(m *core.Machine, elems, chunk uint64) error {
	workers := m.Config().Workers
	per := (elems + uint64(workers) - 1) / uint64(workers)
	side := levelSide(0, msLeafDepth(elems, chunk))
	var prev uint64
	var sum uint64
	buf := make([]byte, 8)
	for i := uint64(0); i < elems; i++ {
		w := m.Workers()[int(i/per)]
		va := gas.DefaultBase + mem.VA(side*msAltOff(per)+8*(i%per))
		if _, err := w.Space().Read(va, buf); err != nil {
			return err
		}
		v := binary.LittleEndian.Uint64(buf)
		if i > 0 && v < prev {
			return fmt.Errorf("mergesort: out of order at %d: %d < %d", i, v, prev)
		}
		prev = v
		sum += v
	}
	wantSum, _, _ := mergeSortReference(elems)
	if sum != wantSum {
		return fmt.Errorf("mergesort: not a permutation of the input (sum %d != %d)", sum, wantSum)
	}
	return nil
}
