package workloads

import "uniaddr/internal/core"

// Binary Task Creation (§6.1): a task of depth d repeats iter times
// spawning two children of depth d-1 and joining both. With iter ≥ 2
// parallelism grows and shrinks rapidly, stressing load balancing.
//
// Frame slots:
//
//	0 depth   1 iter   2 i (loop counter)   3 h1   4 h2
//	5 acc (task count of the subtree so far)   6 work (cycles/task)
const (
	btcDepth = iota
	btcIter
	btcI
	btcH1
	btcH2
	btcAcc
	btcWork
	btcSlots
)

const btcLocals = btcSlots * 8

var btcFID core.FuncID

func init() { btcFID = core.Register("btc", btcTask) }

func btcTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			if w := e.U64(btcWork); w > 0 {
				e.Work(w)
			}
			if e.U64(btcDepth) == 0 {
				e.ReturnU64(1)
				return core.Done
			}
			if d := e.U64(btcDepth); grainCutoff(e, btcGrainAuto) >= d {
				// Coalesce: the whole depth-d subtree inline. It holds
				// BTCTaskCount(d, iter) tasks; one task's work was
				// charged above, so charge the rest.
				count := BTCTaskCount(d, e.U64(btcIter))
				if w := e.U64(btcWork); w > 0 && count > 1 {
					e.Work(w * (count - 1))
				}
				e.ReturnU64(count)
				return core.Done
			}
			e.SetU64(btcAcc, 1)
			e.SetU64(btcI, 0)
			rp = 1
		case 1:
			if e.U64(btcI) >= e.U64(btcIter) {
				e.ReturnU64(e.U64(btcAcc))
				return core.Done
			}
			// Children inherit the parent's frame size, so padded
			// variants (see BTCPadded) pad the whole tree.
			locals := uint32(e.FrameSize()) - 32
			if !e.Spawn(2, btcH1, btcFID, locals, btcChildInit(e)) {
				return core.Unwound
			}
			rp = 2
		case 2:
			locals := uint32(e.FrameSize()) - 32
			if !e.Spawn(3, btcH2, btcFID, locals, btcChildInit(e)) {
				return core.Unwound
			}
			rp = 3
		case 3:
			r, ok := e.Join(3, e.HandleAt(btcH1))
			if !ok {
				return core.Unwound
			}
			e.SetU64(btcAcc, e.U64(btcAcc)+r)
			rp = 4
		case 4:
			r, ok := e.Join(4, e.HandleAt(btcH2))
			if !ok {
				return core.Unwound
			}
			e.SetU64(btcAcc, e.U64(btcAcc)+r)
			e.SetU64(btcI, e.U64(btcI)+1)
			rp = 1
		default:
			panic("btc: bad resume point")
		}
	}
}

// btcChildInit copies the inherited parameters with depth-1.
func btcChildInit(parent *core.Env) func(*core.Env) {
	depth := parent.U64(btcDepth)
	iter := parent.U64(btcIter)
	work := parent.U64(btcWork)
	return func(c *core.Env) {
		c.SetU64(btcDepth, depth-1)
		c.SetU64(btcIter, iter)
		c.SetU64(btcWork, work)
	}
}

// BTCTaskCount returns the exact number of tasks in a BTC(depth, iter)
// run: T(0)=1, T(d)=1+2·iter·T(d-1).
func BTCTaskCount(depth, iter uint64) uint64 {
	var t uint64 = 1
	for d := uint64(0); d < depth; d++ {
		t = 1 + 2*iter*t
	}
	return t
}

// BTC builds a Binary Task Creation spec. work is the simulated
// compute cost per task in cycles (0 for the pure tasking benchmark).
func BTC(depth, iter, work uint64) Spec {
	return BTCPadded(depth, iter, work, 0)
}

// BTCPadded is BTC with every task frame padded so each stack occupies
// about stackBytes bytes — used by the migration-cost experiments, which
// follow the paper in moving ≈3055-byte stacks.
func BTCPadded(depth, iter, work, stackBytes uint64) Spec {
	locals := uint32(btcLocals)
	if stackBytes > 32+uint64(locals) {
		locals = uint32(stackBytes - 32)
	}
	return Spec{
		Name:   "BTC",
		Fid:    btcFID,
		Locals: locals,
		Init: func(e *core.Env) {
			e.SetU64(btcDepth, depth)
			e.SetU64(btcIter, iter)
			e.SetU64(btcWork, work)
		},
		Expected: BTCTaskCount(depth, iter),
		Items:    func(r uint64) uint64 { return r },
	}
}
