package workloads

import (
	"testing"

	"uniaddr/internal/core"
	tracepkg "uniaddr/internal/trace"
)

func runSpec(t *testing.T, s Spec, workers int, scheme core.SchemeKind, seed uint64) (*core.Machine, uint64) {
	t.Helper()
	cfg := core.DefaultConfig(workers)
	cfg.Scheme = scheme
	cfg.Seed = seed
	m, res, err := s.Run(cfg)
	if err != nil {
		t.Fatalf("%s on %d workers: %v", s.Name, workers, err)
	}
	return m, res
}

func TestBTCTaskCountClosedForm(t *testing.T) {
	// T(d)=1+2·iter·T(d-1); spot checks.
	if got := BTCTaskCount(0, 1); got != 1 {
		t.Fatalf("T(0)=%d", got)
	}
	if got := BTCTaskCount(3, 1); got != 15 {
		t.Fatalf("T(3,1)=%d, want 15", got)
	}
	if got := BTCTaskCount(2, 2); got != 21 {
		t.Fatalf("T(2,2)=%d, want 21", got)
	}
}

func TestBTCParallelMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct{ depth, iter uint64 }{{6, 1}, {8, 1}, {4, 2}, {5, 2}} {
		s := BTC(tc.depth, tc.iter, 0)
		for _, workers := range []int{1, 4, 9} {
			_, res := runSpec(t, s, workers, core.SchemeUni, 3)
			if res != s.Expected {
				t.Fatalf("BTC(%d,%d) on %d workers = %d, want %d",
					tc.depth, tc.iter, workers, res, s.Expected)
			}
		}
	}
}

func TestBTCTasksExecutedMatchesResult(t *testing.T) {
	s := BTC(8, 1, 0)
	m, res := runSpec(t, s, 6, core.SchemeUni, 1)
	if got := m.TotalStats().TasksExecuted; got != res {
		t.Fatalf("TasksExecuted=%d but tree says %d", got, res)
	}
}

func TestUTSSequentialDeterministic(t *testing.T) {
	a := UTSSequential(0, 8, DefaultUTSB0)
	b := UTSSequential(0, 8, DefaultUTSB0)
	if a != b {
		t.Fatalf("UTS sequential not deterministic: %d vs %d", a, b)
	}
	if a < 2 {
		t.Fatalf("UTS tree trivially small: %d nodes", a)
	}
	if c := UTSSequential(1, 8, DefaultUTSB0); c == a {
		t.Log("different seeds gave equal node counts (possible, unusual)")
	}
}

func TestUTSTreeGrowsWithDepth(t *testing.T) {
	prev := uint64(0)
	for _, d := range []uint64{4, 8, 12} {
		n := UTSSequential(0, d, DefaultUTSB0)
		if n < prev {
			t.Fatalf("UTS node count shrank with depth: d=%d n=%d prev=%d", d, n, prev)
		}
		prev = n
	}
}

func TestUTSParallelMatchesSequential(t *testing.T) {
	s := UTS(0, 9, DefaultUTSB0, 0)
	if s.Expected < 10 {
		t.Skipf("tree too small to be interesting: %d", s.Expected)
	}
	for _, workers := range []int{1, 5} {
		_, res := runSpec(t, s, workers, core.SchemeUni, 7)
		if res != s.Expected {
			t.Fatalf("UTS d=9 on %d workers = %d, want %d", workers, res, s.Expected)
		}
	}
}

func TestUTSUnbalanced(t *testing.T) {
	// The tree must actually be unbalanced: leaves at many depths.
	// Cheap proxy: node count is not a simple function of a full tree.
	n := UTSSequential(0, 10, DefaultUTSB0)
	full := (pow(4, 11) - 1) / 3
	if n == full {
		t.Fatalf("UTS tree is a complete 4-ary tree (%d nodes) — no imbalance", n)
	}
}

func pow(b, e uint64) uint64 {
	r := uint64(1)
	for i := uint64(0); i < e; i++ {
		r *= b
	}
	return r
}

func TestNQueensKnownSolutions(t *testing.T) {
	known := map[uint64]uint64{4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
	for n, want := range known {
		sol, nodes := NQueensSequential(n)
		if sol != want {
			t.Fatalf("NQueens(%d) sequential = %d solutions, want %d", n, sol, want)
		}
		if nodes == 0 {
			t.Fatalf("NQueens(%d): zero nodes", n)
		}
	}
}

func TestNQueensParallelMatchesSequential(t *testing.T) {
	for _, n := range []uint64{6, 8} {
		s := NQueens(n, 0)
		for _, workers := range []int{1, 6} {
			_, res := runSpec(t, s, workers, core.SchemeUni, 11)
			if res != s.Expected {
				gs, gn := UnpackNQ(res)
				ws, wn := UnpackNQ(s.Expected)
				t.Fatalf("NQueens(%d) on %d workers = (%d sol, %d nodes), want (%d, %d)",
					n, workers, gs, gn, ws, wn)
			}
		}
	}
}

func TestWorkloadsUnderIsoAddress(t *testing.T) {
	specs := []Spec{BTC(7, 1, 0), UTS(0, 8, DefaultUTSB0, 0), NQueens(7, 0)}
	for _, s := range specs {
		_, res := runSpec(t, s, 5, core.SchemeIso, 13)
		if res != s.Expected {
			t.Fatalf("%s under iso-address = %d, want %d", s.Name, res, s.Expected)
		}
	}
}

func TestWorkloadsDeterministicAcrossRuns(t *testing.T) {
	s := BTC(7, 1, 0)
	m1, _ := runSpec(t, s, 7, core.SchemeUni, 5)
	m2, _ := runSpec(t, s, 7, core.SchemeUni, 5)
	if m1.ElapsedCycles() != m2.ElapsedCycles() {
		t.Fatalf("same seed, different elapsed: %d vs %d", m1.ElapsedCycles(), m2.ElapsedCycles())
	}
	m3, _ := runSpec(t, s, 7, core.SchemeUni, 6)
	_ = m3 // different seed may legitimately differ; just must complete
}

func TestStackUsageOrderingAcrossBenchmarks(t *testing.T) {
	// Table 4's qualitative ordering: BTC(iter=2) uses less of the
	// region than comparable-depth BTC(iter=1)? (same frame size, less
	// nesting per task count). More robust: UTS frames nest deepest of
	// the three at comparable sizes. Here we just require everything
	// fits and is recorded.
	for _, s := range []Spec{BTC(8, 1, 0), UTS(0, 9, DefaultUTSB0, 0), NQueens(8, 0)} {
		m, _ := runSpec(t, s, 4, core.SchemeUni, 2)
		if m.MaxStackUsage() == 0 {
			t.Fatalf("%s recorded no stack usage", s.Name)
		}
		if m.MaxStackUsage() > core.DefaultUniSize {
			t.Fatalf("%s overflowed the uni-address region", s.Name)
		}
	}
}

func TestWorkStealingActuallyBalances(t *testing.T) {
	s := BTC(10, 1, 200)
	m, _ := runSpec(t, s, 8, core.SchemeUni, 9)
	var nonZero int
	for _, w := range m.Workers() {
		if w.Stats().TasksExecuted > 0 {
			nonZero++
		}
	}
	if nonZero < 6 {
		t.Fatalf("only %d/8 workers executed tasks", nonZero)
	}
}

func TestQuiescenceAfterRuns(t *testing.T) {
	specs := []Spec{BTC(9, 1, 0), BTC(5, 2, 0), UTS(0, 9, DefaultUTSB0, 0), NQueens(7, 0)}
	for _, s := range specs {
		for _, scheme := range []core.SchemeKind{core.SchemeUni, core.SchemeIso} {
			for _, workers := range []int{1, 6} {
				m, res := runSpec(t, s, workers, scheme, 21)
				if res != s.Expected {
					t.Fatalf("%s/%v/%d: result", s.Name, scheme, workers)
				}
				if err := m.CheckQuiescence(); err != nil {
					t.Fatalf("%s/%v/%d workers: %v", s.Name, scheme, workers, err)
				}
			}
		}
	}
}

func TestTraceRecordsTimeline(t *testing.T) {
	s := BTC(10, 1, 200)
	cfg := core.DefaultConfig(6)
	cfg.Trace = true
	cfg.Seed = 3
	m, res, err := s.Run(cfg)
	if err != nil || res != s.Expected {
		t.Fatalf("run: res=%d err=%v", res, err)
	}
	tr := m.Tracer()
	if tr == nil {
		t.Fatal("tracer missing")
	}
	u := tr.Utilization()
	if u.Total == 0 || u.Fraction(tracepkg.Work) <= 0 {
		t.Fatalf("no work recorded: %+v", u)
	}
	// Every worker lane must cover the full run.
	for i := range m.Workers() {
		wu := tr.WorkerUtilization(i)
		if wu.Total != tr.End() {
			t.Fatalf("worker %d lane covers %d of %d cycles", i, wu.Total, tr.End())
		}
	}
}

func TestGlobalSumMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4, 9} {
		s := GlobalSum(4000, 64, workers)
		cfg := core.DefaultConfig(workers)
		cfg.Seed = 17
		m, res, err := s.Run(cfg)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if res != s.Expected {
			t.Fatalf("%d workers: sum %d, want %d", workers, res, s.Expected)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
	}
}

func TestGlobalSumRemoteTraffic(t *testing.T) {
	// With several workers, most leaf fetches hit remote segments, so
	// RDMA read bytes must be a large share of the array size.
	s := GlobalSum(8000, 64, 8)
	cfg := core.DefaultConfig(8)
	m, res, err := s.Run(cfg)
	if err != nil || res != s.Expected {
		t.Fatalf("res=%d err=%v", res, err)
	}
	var rdmaBytes uint64
	for _, w := range m.Workers() {
		rdmaBytes += w.NetStats().BytesRead
	}
	if rdmaBytes < 8000*8/4 {
		t.Fatalf("only %d RDMA bytes read for a 64000-byte distributed array", rdmaBytes)
	}
}

func TestGlobalSumWorkerMismatchRejected(t *testing.T) {
	s := GlobalSum(100, 16, 4)
	cfg := core.DefaultConfig(2)
	if _, _, err := s.Run(cfg); err == nil {
		t.Fatal("mismatched worker count accepted")
	}
}

func TestFibWorkload(t *testing.T) {
	s := Fib(18, 0)
	for _, workers := range []int{1, 6} {
		_, res := runSpec(t, s, workers, core.SchemeUni, 3)
		if res != s.Expected {
			t.Fatalf("fib(18) on %d workers = %d, want %d", workers, res, s.Expected)
		}
	}
	if s.Items(s.Expected) != 2*FibSequential(19)-1 {
		t.Fatal("task count formula")
	}
}

func TestPingPongWorkload(t *testing.T) {
	s := PingPong(50, 50_000, PingPongStackBytes)
	cfg := core.DefaultConfig(2)
	cfg.WorkersPerNode = 1
	m, res, err := s.Run(cfg)
	if err != nil || res != 50 {
		t.Fatalf("res=%d err=%v", res, err)
	}
	if m.TotalStats().StealsOK == 0 {
		t.Fatal("ping-pong produced no steals")
	}
	// The migrating thread's stack is the padded size.
	st := m.TotalStats()
	if avg := st.BytesStolen / st.StealsOK; avg < 2500 || avg > 3600 {
		t.Fatalf("avg stolen stack %d, want ≈3055", avg)
	}
}

func TestHelpFirstAcrossWorkloads(t *testing.T) {
	specs := []Spec{BTC(8, 1, 0), UTS(0, 9, DefaultUTSB0, 0), NQueens(7, 0), Fib(14, 0)}
	for _, s := range specs {
		cfg := core.DefaultConfig(6)
		cfg.HelpFirst = true
		cfg.Seed = 9
		m, res, err := s.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res != s.Expected {
			t.Fatalf("%s help-first = %d, want %d", s.Name, res, s.Expected)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestHelpFirstDeterministic(t *testing.T) {
	s := BTC(8, 1, 0)
	run := func() uint64 {
		cfg := core.DefaultConfig(5)
		cfg.HelpFirst = true
		cfg.Seed = 4
		m, _, err := s.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m.ElapsedCycles()
	}
	if run() != run() {
		t.Fatal("help-first runs not deterministic")
	}
}

func TestUTSBinomialMatchesSequential(t *testing.T) {
	// b0=64, m=4, q=0.2 → E[size] ≈ 64/(1-0.8) = 320 nodes + root.
	s := UTSBinomial(3, 64, 4, 0.2, 0)
	if s.Expected < 65 {
		t.Fatalf("binomial tree too small: %d", s.Expected)
	}
	for _, workers := range []int{1, 6} {
		_, res := runSpec(t, s, workers, core.SchemeUni, 5)
		if res != s.Expected {
			t.Fatalf("binomial on %d workers = %d, want %d", workers, res, s.Expected)
		}
	}
}

func TestUTSBinomialSupercriticalRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("q*m >= 1 accepted")
		}
	}()
	UTSBinomial(1, 10, 4, 0.3, 0)
}

func TestMergeSortSortsDistributedArray(t *testing.T) {
	for _, tc := range []struct {
		elems, chunk uint64
		workers      int
	}{
		{512, 64, 4},
		{1000, 64, 7}, // non-power-of-two span: uneven leaf depths
		{2048, 128, 8},
	} {
		s := MergeSort(tc.elems, tc.chunk, tc.workers)
		cfg := core.DefaultConfig(tc.workers)
		cfg.Seed = 23
		m, res, err := s.Run(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if res != s.Expected {
			t.Fatalf("%+v: root returned %d", tc, res)
		}
		if err := VerifySorted(m, tc.elems, tc.chunk); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
	}
}

func TestMergeSortUnderStealsManySeeds(t *testing.T) {
	// Sorting correctness must survive arbitrary migration patterns.
	for seed := uint64(1); seed <= 6; seed++ {
		s := MergeSort(768, 64, 6)
		cfg := core.DefaultConfig(6)
		cfg.WorkersPerNode = 2
		cfg.Seed = seed
		m, _, err := s.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := VerifySorted(m, 768, 64); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
