package workloads

import "uniaddr/internal/core"

// Ping-pong steal microbenchmark (§6.3, Fig. 10): two workers steal a
// single long-lived thread from each other. The thread repeatedly
// spawns a child that computes for childWork cycles; while the child
// runs, the parent's continuation sits in the deque and the other
// (idle) worker steals it, moving the parent's whole stack — padded to
// the paper's 3055 bytes — across the fabric. The parent then joins the
// child (usually a remote miss → suspend/resume), and the roles swap.
//
// Frame slots: 0=iters, 1=i, 2=childWork, 3=h; padding bytes follow so
// the stolen stack is stackBytes long.
const (
	ppIters = 0
	ppI     = 1
	ppWork  = 2
	ppH     = 3
)

// PingPongStackBytes is the paper's measured stolen-stack size.
const PingPongStackBytes = 3055

var (
	ppFID      core.FuncID
	ppChildFID core.FuncID
)

func init() {
	ppFID = core.Register("pingpong", ppTask)
	ppChildFID = core.Register("pingpong-child", ppChildTask)
}

func ppChildTask(e *core.Env) core.Status {
	if w := e.U64(0); w > 0 {
		e.Work(w)
	}
	e.ReturnU64(1)
	return core.Done
}

func ppTask(e *core.Env) core.Status {
	rp := e.RP()
	for {
		switch rp {
		case 0:
			e.SetU64(ppI, 0)
			rp = 1
		case 1:
			if e.U64(ppI) >= e.U64(ppIters) {
				e.ReturnU64(e.U64(ppI))
				return core.Done
			}
			work := e.U64(ppWork)
			if !e.Spawn(2, ppH, ppChildFID, 8, func(c *core.Env) { c.SetU64(0, work) }) {
				return core.Unwound
			}
			rp = 2
		case 2:
			if _, ok := e.Join(2, e.HandleAt(ppH)); !ok {
				return core.Unwound
			}
			e.SetU64(ppI, e.U64(ppI)+1)
			rp = 1
		default:
			panic("pingpong: bad resume point")
		}
	}
}

// PingPong builds the Fig. 10 microbenchmark spec: iters rounds, each
// child computing childWork cycles, with the main thread's stack padded
// to stackBytes (frame header included).
func PingPong(iters, childWork, stackBytes uint64) Spec {
	locals := uint32(4 * 8)
	if stackBytes > 32+uint64(locals) {
		locals = uint32(stackBytes - 32)
	}
	return Spec{
		Name:   "PingPong",
		Fid:    ppFID,
		Locals: locals,
		Init: func(e *core.Env) {
			e.SetU64(ppIters, iters)
			e.SetU64(ppWork, childWork)
		},
		Expected: iters,
		Items:    func(r uint64) uint64 { return r },
	}
}
