package core_test

import (
	"testing"

	"uniaddr/internal/core"
	"uniaddr/internal/rdma"
)

// fib is the canonical fork-join microbenchmark (Fig. 1 right).
//
// Frame slots: 0=n, 1=handle(fib(n-1)), 2=handle(fib(n-2)), 3=r1.
var fibFID core.FuncID

const fibLocals = 4 * 8

func init() {
	fibFID = core.Register("fib-test", fibTask)
}

func fibTask(e *core.Env) core.Status {
	switch e.RP() {
	case 0:
		n := e.I64(0)
		if n < 2 {
			e.ReturnI64(n)
			return core.Done
		}
		if !e.Spawn(1, 1, fibFID, fibLocals, func(c *core.Env) { c.SetI64(0, n-1) }) {
			return core.Unwound
		}
		fallthrough
	case 1:
		n := e.I64(0)
		if !e.Spawn(2, 2, fibFID, fibLocals, func(c *core.Env) { c.SetI64(0, n-2) }) {
			return core.Unwound
		}
		fallthrough
	case 2:
		r1, ok := e.Join(2, e.HandleAt(1))
		if !ok {
			return core.Unwound
		}
		e.SetU64(3, r1)
		fallthrough
	case 3:
		r2, ok := e.Join(3, e.HandleAt(2))
		if !ok {
			return core.Unwound
		}
		e.ReturnU64(e.U64(3) + r2)
		return core.Done
	}
	panic("fib: bad resume point")
}

func fibSeq(n int64) int64 {
	if n < 2 {
		return n
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func runFib(t *testing.T, cfg core.Config, n int64) (*core.Machine, uint64) {
	t.Helper()
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(fibFID, fibLocals, func(e *core.Env) { e.SetI64(0, n) })
	if err != nil {
		t.Fatal(err)
	}
	return m, got
}

func TestFibSingleWorker(t *testing.T) {
	cfg := core.DefaultConfig(1)
	m, got := runFib(t, cfg, 12)
	if want := uint64(fibSeq(12)); got != want {
		t.Fatalf("fib(12) = %d, want %d", got, want)
	}
	st := m.TotalStats()
	// fib(12) spawns 2 tasks per internal call; total tasks = spawns+1
	// (the root), all executed exactly once.
	if st.TasksExecuted != st.Spawns+1 {
		t.Fatalf("tasks=%d spawns=%d: lost or duplicated tasks", st.TasksExecuted, st.Spawns)
	}
	if st.StealsOK != 0 {
		t.Fatalf("single worker stole %d threads", st.StealsOK)
	}
	if st.JoinsMiss != 0 {
		t.Fatalf("single worker missed %d joins (children always finish first)", st.JoinsMiss)
	}
}

func TestFibMultiWorkerWithSteals(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.WorkersPerNode = 4
	m, got := runFib(t, cfg, 16)
	if want := uint64(fibSeq(16)); got != want {
		t.Fatalf("fib(16) = %d, want %d", got, want)
	}
	st := m.TotalStats()
	if st.TasksExecuted != st.Spawns+1 {
		t.Fatalf("tasks=%d spawns=%d", st.TasksExecuted, st.Spawns)
	}
	if st.StealsOK == 0 {
		t.Fatal("no successful steals on 8 workers — load balancing dead")
	}
	if st.ParentStolen != st.StealsOK {
		// Every successful steal migrates exactly one continuation,
		// whose home worker observes exactly one failed pop.
		t.Fatalf("steals=%d but parent-stolen pops=%d", st.StealsOK, st.ParentStolen)
	}
	if st.BytesStolen == 0 {
		t.Fatal("steals moved no stack bytes")
	}
}

func TestFibResultAcrossWorkerCounts(t *testing.T) {
	want := uint64(fibSeq(14))
	for _, workers := range []int{1, 2, 3, 7, 16} {
		cfg := core.DefaultConfig(workers)
		cfg.WorkersPerNode = 5
		_, got := runFib(t, cfg, 14)
		if got != want {
			t.Fatalf("fib(14) on %d workers = %d, want %d", workers, got, want)
		}
	}
}

func TestFibDeterministicBySeed(t *testing.T) {
	run := func(seed uint64) (uint64, uint64, core.WorkerStats) {
		cfg := core.DefaultConfig(6)
		cfg.Seed = seed
		m, got := runFib(t, cfg, 14)
		return got, m.ElapsedCycles(), m.TotalStats()
	}
	r1, t1, s1 := run(7)
	r2, t2, s2 := run(7)
	if r1 != r2 || t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)\n%+v\n%+v", r1, t1, r2, t2, s1, s2)
	}
	_, t3, _ := run(8)
	if t3 == t1 {
		t.Log("different seeds gave identical times (possible but suspicious)")
	}
}

func TestFibParallelismSpeedsUp(t *testing.T) {
	cfg1 := core.DefaultConfig(1)
	m1, _ := runFib(t, cfg1, 17)
	cfg8 := core.DefaultConfig(8)
	cfg8.WorkersPerNode = 8
	m8, _ := runFib(t, cfg8, 17)
	sp := float64(m1.ElapsedCycles()) / float64(m8.ElapsedCycles())
	if sp < 3 {
		t.Fatalf("8 workers only %.2fx faster than 1", sp)
	}
}

func TestFibIsoAddressSameResult(t *testing.T) {
	want := uint64(fibSeq(14))
	cfg := core.DefaultConfig(6)
	cfg.Scheme = core.SchemeIso
	m, got := runFib(t, cfg, 14)
	if got != want {
		t.Fatalf("iso fib(14) = %d, want %d", got, want)
	}
	st := m.TotalStats()
	if st.StealsOK == 0 {
		t.Fatal("iso-address run had no steals")
	}
	if st.PageFaults == 0 {
		t.Fatal("iso-address run charged no page faults")
	}
}

func TestIsoReservesGlobalRange(t *testing.T) {
	cfgU := core.DefaultConfig(8)
	mU, _ := runFib(t, cfgU, 10)
	cfgI := core.DefaultConfig(8)
	cfgI.Scheme = core.SchemeIso
	mI, _ := runFib(t, cfgI, 10)
	// Iso must reserve ~Workers×slab per process; uni only its fixed
	// regions. (Both also carry the RDMA heap + deque reservations.)
	isoExtra := mI.MaxReservedBytes()
	uniExtra := mU.MaxReservedBytes()
	if isoExtra <= uniExtra {
		t.Fatalf("iso reserved %d <= uni %d", isoExtra, uniExtra)
	}
	slab := cfgI.IsoSlabSize
	if isoExtra-uniExtra < 7*slab/2 {
		t.Fatalf("iso reservation %d not scaling with worker count", isoExtra-uniExtra)
	}
}

func TestStackUsageTracked(t *testing.T) {
	cfg := core.DefaultConfig(4)
	m, _ := runFib(t, cfg, 14)
	if m.MaxStackUsage() == 0 {
		t.Fatal("no stack usage recorded")
	}
	// fib(14) nests ≤ 14 frames of (32+32)=64 bytes plus the root.
	if m.MaxStackUsage() > 64*20 {
		t.Fatalf("stack usage %d implausibly high", m.MaxStackUsage())
	}
}

func TestHardwareFAAMode(t *testing.T) {
	cfg := core.DefaultConfig(6)
	cfg.Net.HardwareFAA = true
	m, got := runFib(t, cfg, 14)
	if want := uint64(fibSeq(14)); got != want {
		t.Fatalf("hw-FAA fib(14) = %d, want %d", got, want)
	}
	if m.TotalStats().StealsOK == 0 {
		t.Fatal("no steals under hardware FAA")
	}
}

func TestXeonProfileFaster(t *testing.T) {
	cfgS := core.DefaultConfig(1)
	mS, _ := runFib(t, cfgS, 14)
	cfgX := core.DefaultConfig(1)
	cfgX.Costs = core.XeonCosts()
	mX, _ := runFib(t, cfgX, 14)
	if mX.ElapsedCycles() >= mS.ElapsedCycles() {
		t.Fatalf("Xeon profile (%d cycles) not faster than SPARC (%d)", mX.ElapsedCycles(), mS.ElapsedCycles())
	}
}

func TestSpawnCostMatchesPaperTable2(t *testing.T) {
	if got := core.SPARCCosts().SpawnCost(); got != 413 {
		t.Fatalf("SPARC spawn cost = %d, want 413 (Table 2)", got)
	}
	if got := core.XeonCosts().SpawnCost(); got != 100 {
		t.Fatalf("Xeon spawn cost = %d, want 100 (Table 2)", got)
	}
}

func TestMachineSingleShot(t *testing.T) {
	cfg := core.DefaultConfig(1)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fibFID, fibLocals, func(e *core.Env) { e.SetI64(0, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fibFID, fibLocals, nil); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestRdmaTrafficOnlyWithMultipleWorkers(t *testing.T) {
	cfg := core.DefaultConfig(1)
	m, _ := runFib(t, cfg, 10)
	st := m.Workers()[0].NetStats()
	if st.Reads != 0 || st.FAAs != 0 {
		t.Fatalf("single worker produced remote traffic: %+v", st)
	}
}

func TestStealPhaseBreakdownPopulated(t *testing.T) {
	cfg := core.DefaultConfig(8)
	m, _ := runFib(t, cfg, 16)
	ph := m.TotalStats().Phases
	if ph.EmptyCheck == 0 || ph.Lock == 0 || ph.Steal == 0 || ph.StackTransfer == 0 || ph.Unlock == 0 {
		t.Fatalf("steal phases missing: %+v", ph)
	}
}

func TestDequeCapOverflowDetected(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cfg.DequeCap = 2 // fib(6) nests deeper than 2
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fibFID, fibLocals, func(e *core.Env) { e.SetI64(0, 8) }); err == nil {
		t.Fatal("deque overflow not reported")
	}
}

func TestSoftwareVsHardwareFAALatencyVisible(t *testing.T) {
	// With everything else equal, hardware FAA should not be slower.
	run := func(hw bool) uint64 {
		cfg := core.DefaultConfig(8)
		cfg.Net.HardwareFAA = hw
		m, _ := runFib(t, cfg, 16)
		return m.ElapsedCycles()
	}
	sw, hw := run(false), run(true)
	if hw > sw+sw/10 {
		t.Fatalf("hardware FAA slower than software: %d vs %d", hw, sw)
	}
}

func init() {
	// Silence unused-import gymnastics for rdma in future edits.
	_ = rdma.DefaultParams
}

func TestVictimPoliciesAllComplete(t *testing.T) {
	want := uint64(fibSeq(15))
	for _, pol := range []core.VictimPolicy{core.VictimRandom, core.VictimLocalFirst, core.VictimLastSuccess} {
		cfg := core.DefaultConfig(9)
		cfg.WorkersPerNode = 3
		cfg.Victim = pol
		m, got := runFib(t, cfg, 15)
		if got != want {
			t.Fatalf("policy %v: fib(15) = %d, want %d", pol, got, want)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
		if pol != core.VictimRandom && m.TotalStats().StealsOK == 0 {
			t.Fatalf("policy %v: no steals", pol)
		}
	}
}

func TestLocalFirstPrefersCheapIntraNodeSteals(t *testing.T) {
	run := func(pol core.VictimPolicy) uint64 {
		cfg := core.DefaultConfig(12)
		cfg.WorkersPerNode = 6
		cfg.Net.IntraNodeFactor = 0.2 // shared-memory shortcut
		cfg.Victim = pol
		m, _ := runFib(t, cfg, 17)
		return m.ElapsedCycles()
	}
	rnd, local := run(core.VictimRandom), run(core.VictimLocalFirst)
	// Local-first should not be much worse; usually better with cheap
	// intra-node steals.
	if float64(local) > 1.25*float64(rnd) {
		t.Fatalf("local-first (%d cycles) much slower than random (%d)", local, rnd)
	}
}

func TestMultiWorkerSlotsCorrectness(t *testing.T) {
	want := uint64(fibSeq(15))
	cfg := core.DefaultConfig(8)
	cfg.SlotsPerProcess = 2
	m, got := runFib(t, cfg, 15)
	if got != want {
		t.Fatalf("slots=2 fib(15) = %d, want %d", got, want)
	}
	if err := m.CheckQuiescence(); err != nil {
		t.Fatal(err)
	}
	// Only slot-0 workers can host root-descendant work.
	for _, w := range m.Workers() {
		if w.Rank()%2 == 1 && w.Stats().TasksExecuted > 0 {
			t.Fatalf("slot-1 worker %d executed %d tasks", w.Rank(), w.Stats().TasksExecuted)
		}
	}
}

func TestIsoSlotsRejected(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Scheme = core.SchemeIso
	cfg.SlotsPerProcess = 2
	if _, err := core.NewMachine(cfg); err == nil {
		t.Fatal("iso + slots accepted")
	}
}

// pointerChainFID builds a linked list of intra-stack pointers, forces
// a migration by spawning a slow child, then walks the chain — the
// paper's core guarantee (§5.1): stack bytes move, addresses stay.
var pointerChainFID core.FuncID

func init() {
	pointerChainFID = core.Register("pointer-chain", func(e *core.Env) core.Status {
		const nodes = 8
		nodeSlot := func(i int) int { return 4 + 2*i }
		switch e.RP() {
		case 0:
			for i := 0; i < nodes; i++ {
				e.SetU64(nodeSlot(i), uint64(i)*3+1)
				if i+1 < nodes {
					e.SetPtr(nodeSlot(i)+1, e.LocalAddr((nodeSlot(i+1))*8))
				}
			}
			e.SetPtr(0, e.LocalAddr(nodeSlot(0)*8))
			e.SetU64(2, uint64(e.Worker().Rank()))
			if !e.Spawn(1, 1, slowChildFID, 8, func(c *core.Env) { c.SetU64(0, 200_000) }) {
				return core.Unwound
			}
			fallthrough
		case 1:
			// Walk the chain through stored addresses (possibly on a
			// different worker now).
			va := e.PtrAt(0)
			base := e.LocalAddr(0)
			var sum, count uint64
			for va != 0 {
				slot := int(va-base) / 8
				sum += e.U64(slot)
				count++
				va = e.PtrAt(slot + 1)
			}
			migrated := uint64(0)
			if uint64(e.Worker().Rank()) != e.U64(2) {
				migrated = 1
			}
			e.SetU64(3, sum<<16|count<<1|migrated)
			fallthrough
		case 2:
			if _, ok := e.Join(2, e.HandleAt(1)); !ok {
				return core.Unwound
			}
			e.ReturnU64(e.U64(3))
			return core.Done
		}
		panic("bad rp")
	})
}

var slowChildFID core.FuncID

func init() {
	slowChildFID = core.Register("slow-child-test", func(e *core.Env) core.Status {
		e.Work(e.U64(0))
		e.ReturnU64(0)
		return core.Done
	})
}

func TestIntraStackPointersSurviveMigration(t *testing.T) {
	const nodes = 8
	wantSum := uint64(0)
	for i := 0; i < nodes; i++ {
		wantSum += uint64(i)*3 + 1
	}
	locals := uint32((4 + 2*nodes) * 8)
	migratedRuns := 0
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := core.DefaultConfig(2)
		cfg.WorkersPerNode = 1
		cfg.Seed = seed
		m, err := core.NewMachine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(pointerChainFID, locals, nil)
		if err != nil {
			t.Fatal(err)
		}
		sum := res >> 16
		count := (res >> 1) & 0x7fff
		if sum != wantSum || count != nodes {
			t.Fatalf("seed %d: walked sum=%d count=%d, want %d/%d", seed, sum, count, wantSum, nodes)
		}
		if res&1 == 1 {
			migratedRuns++
		}
	}
	if migratedRuns == 0 {
		t.Fatal("no run migrated the pointer-chain thread; the test exercised nothing")
	}
}

// Property: migrations under many seeds never corrupt results across
// all three migration-relevant paths (steal, suspend, resume).
func TestMigrationStressManySeeds(t *testing.T) {
	want := uint64(fibSeq(13))
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := core.DefaultConfig(5)
		cfg.WorkersPerNode = 1 // everything crosses the fabric
		cfg.Seed = seed
		m, got := runFib(t, cfg, 13)
		if got != want {
			t.Fatalf("seed %d: fib(13) = %d, want %d", seed, got, want)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestHelpFirstCorrectness(t *testing.T) {
	want := uint64(fibSeq(15))
	for _, workers := range []int{1, 4, 9} {
		cfg := core.DefaultConfig(workers)
		cfg.HelpFirst = true
		m, got := runFib(t, cfg, 15)
		if got != want {
			t.Fatalf("help-first fib(15) on %d workers = %d, want %d", workers, got, want)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
	}
}

func TestHelpFirstStealsDescriptorsNotStacks(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.HelpFirst = true
	m, _ := runFib(t, cfg, 16)
	st := m.TotalStats()
	if st.StealsOK == 0 {
		t.Fatal("no steals")
	}
	// A fib descriptor is 16 B header + 40 B args; a stack would be
	// 80+ bytes per frame and typically several frames.
	avg := st.BytesStolen / st.StealsOK
	if avg > 80 {
		t.Fatalf("help-first moved %d bytes/steal — looks like stacks, not descriptors", avg)
	}
	if st.Suspends != 0 {
		t.Fatalf("help-first suspended %d times; joins should help inline", st.Suspends)
	}
	if st.ParentStolen != 0 {
		t.Fatalf("help-first migrated %d started parents", st.ParentStolen)
	}
}

func TestHelpFirstDeepensRegionUsage(t *testing.T) {
	// The known cost of help-first: a blocked parent helps run other
	// subtrees nested below it, so region occupancy grows past the
	// work-first level.
	run := func(helpFirst bool) uint64 {
		cfg := core.DefaultConfig(8)
		cfg.HelpFirst = helpFirst
		m, _ := runFib(t, cfg, 17)
		return m.MaxStackUsage()
	}
	wf, hf := run(false), run(true)
	if hf < wf {
		t.Logf("help-first usage %d < work-first %d (possible at small scale)", hf, wf)
	}
	if hf == 0 || wf == 0 {
		t.Fatal("stack usage not recorded")
	}
}

func TestUniRegionExhaustionSurfacesAsError(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cfg.UniSize = 64 // smaller than one fib frame
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fibFID, fibLocals, func(e *core.Env) { e.SetI64(0, 6) }); err == nil {
		t.Fatal("region exhaustion not reported")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	// A child that never completes would hang the root's join; the
	// MaxCycles guard must turn that into an error.
	hang := core.Register("hang-forever", func(e *core.Env) core.Status {
		// Never call Return; loop burning simulated time.
		e.Work(1 << 20)
		if _, ok := e.Join(0, core.MakeHandle(0, 0x6000_0000_0000)); !ok {
			return core.Unwound
		}
		return core.Done
	})
	_ = hang
	cfg := core.DefaultConfig(2)
	cfg.MaxCycles = 1 << 22
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(hang, 8, nil); err == nil {
		t.Fatal("MaxCycles exceeded without error")
	}
	_ = m
}

// TestConfigMatrixStress sweeps scheme × victim policy × scheduling
// mode × seeds and requires exact results and quiescence everywhere —
// the broad-interleaving correctness amplifier.
func TestConfigMatrixStress(t *testing.T) {
	want := uint64(fibSeq(12))
	for _, scheme := range []core.SchemeKind{core.SchemeUni, core.SchemeIso} {
		for _, pol := range []core.VictimPolicy{core.VictimRandom, core.VictimLocalFirst, core.VictimLastSuccess} {
			for _, hf := range []bool{false, true} {
				if hf && scheme == core.SchemeIso {
					continue // help-first is exercised under uni only
				}
				for seed := uint64(1); seed <= 3; seed++ {
					cfg := core.DefaultConfig(6)
					cfg.WorkersPerNode = 2
					cfg.Scheme = scheme
					cfg.Victim = pol
					cfg.HelpFirst = hf
					cfg.Seed = seed
					m, got := runFib(t, cfg, 12)
					if got != want {
						t.Fatalf("%v/%v/hf=%v/seed=%d: fib(12)=%d want %d", scheme, pol, hf, seed, got, want)
					}
					if err := m.CheckQuiescence(); err != nil {
						t.Fatalf("%v/%v/hf=%v/seed=%d: %v", scheme, pol, hf, seed, err)
					}
				}
			}
		}
	}
}

func TestLifelinesCorrectness(t *testing.T) {
	want := uint64(fibSeq(16))
	for _, workers := range []int{2, 8, 13} { // incl. non-power-of-two
		cfg := core.DefaultConfig(workers)
		cfg.Lifelines = true
		cfg.WorkersPerNode = 4
		m, got := runFib(t, cfg, 16)
		if got != want {
			t.Fatalf("lifelines fib(16) on %d workers = %d, want %d", workers, got, want)
		}
		if err := m.CheckQuiescence(); err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		st := m.TotalStats()
		if workers > 2 && st.LifelinePushes == 0 {
			t.Fatalf("%d workers: no lifeline pushes (receives %d)", workers, st.LifelineReceives)
		}
		if st.LifelinePushes != st.LifelineReceives {
			t.Fatalf("pushed %d but received %d", st.LifelinePushes, st.LifelineReceives)
		}
	}
}

func TestLifelinesReduceFailedProbes(t *testing.T) {
	run := func(lifelines bool) (uint64, uint64) {
		cfg := core.DefaultConfig(12)
		cfg.Lifelines = lifelines
		cfg.Seed = 5
		m, _ := runFib(t, cfg, 17)
		st := m.TotalStats()
		return st.StealAbortEmpty + st.StealAbortLock, m.ElapsedCycles()
	}
	randomAborts, _ := run(false)
	lifelineAborts, _ := run(true)
	if lifelineAborts >= randomAborts {
		t.Fatalf("lifelines did not reduce failed probes: %d vs %d", lifelineAborts, randomAborts)
	}
}

func TestLifelinesRejectIncompatibleConfigs(t *testing.T) {
	for _, tweak := range []func(*core.Config){
		func(c *core.Config) { c.Scheme = core.SchemeIso },
		func(c *core.Config) { c.HelpFirst = true },
		func(c *core.Config) { c.SlotsPerProcess = 2 },
	} {
		cfg := core.DefaultConfig(4)
		cfg.Lifelines = true
		tweak(&cfg)
		if _, err := core.NewMachine(cfg); err == nil {
			t.Fatal("incompatible lifeline config accepted")
		}
	}
}

func TestLifelinesDeterministic(t *testing.T) {
	run := func() uint64 {
		cfg := core.DefaultConfig(8)
		cfg.Lifelines = true
		cfg.Seed = 9
		m, _ := runFib(t, cfg, 15)
		return m.ElapsedCycles()
	}
	if run() != run() {
		t.Fatal("lifeline runs not deterministic")
	}
}
