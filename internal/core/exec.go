package core

import (
	"encoding/binary"

	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
)

// Exec is the contract between a task's Env and whichever backend is
// executing it. Task functions are written once against Env; the
// backend decides what a frame slot read, a spawn or a join actually
// does. Two implementations exist:
//
//   - *Worker (this package): the deterministic virtual-time simulator,
//     where memory is a simulated AddressSpace and every operation
//     advances a discrete-event clock.
//   - internal/rt's worker: the real-parallelism runtime, where frames
//     live in per-worker byte-slice arenas, the deque runs on real
//     sync/atomic operations and time is wall-clock time.
//
// The split keeps the simulator the semantic oracle: both backends run
// the exact same registered task functions, so a differential harness
// can assert the results agree.
type Exec interface {
	// ExecReadU64 / ExecWriteU64 access one 8-byte word of the frame
	// memory at a virtual address.
	ExecReadU64(va mem.VA) uint64
	ExecWriteU64(va mem.VA, v uint64)
	// ExecSlice returns a direct byte view of [va, va+n). The view is
	// invalidated by any migration of the owning frame.
	ExecSlice(va mem.VA, n uint64) ([]byte, error)
	// ExecWork charges cycles of task computation (virtual time on the
	// simulator; a calibrated spin on real hardware).
	ExecWork(cycles uint64)
	// ExecComplete publishes a task's result into its record.
	ExecComplete(rec Handle, result uint64)
	// ExecSpawn runs the child-first spawn protocol for e; see
	// Env.Spawn for the contract.
	ExecSpawn(e *Env, resumeRP, handleSlot int, fid FuncID, localsLen uint32, init func(*Env)) bool
	// ExecJoin runs the join protocol for e; see Env.Join.
	ExecJoin(e *Env, resumeRP int, h Handle) (uint64, bool)
	// Gas operations (§5.1 global references). Backends without a
	// global heap panic with a descriptive message.
	ExecGasHeap() *gas.Heap
	ExecGasGet(r gas.Ref, buf []byte)
	ExecGasPut(r gas.Ref, buf []byte)
	ExecGasGetU64(r gas.Ref) uint64
	ExecGasPutU64(r gas.Ref, v uint64)
	ExecGasAlloc(n uint64) gas.Ref
	// ExecGrain returns the configured task-granularity cutoff (see
	// Config.Grain / GrainAuto): 0 = no coalescing, GrainAuto = let the
	// workload pick a cutoff and gate it on ExecCoalesce.
	ExecGrain() uint64
	// ExecCoalesce reports whether, right now, spawning more parallelism
	// looks pointless — the adaptive signal behind GrainAuto. Backends
	// answer from local scheduler state (e.g. "my deque already holds
	// plenty of unstolen work"), so it is cheap and advisory.
	ExecCoalesce() bool
	// SimWorker returns the simulated worker executing the task, or nil
	// when the backend is not the simulator.
	SimWorker() *Worker
}

// GrainAuto, as a Config.Grain / Env.Grain value, selects the
// workload's own default sequential cutoff applied adaptively: the
// workload inlines a subtree only when Env.Coalesce reports local
// surplus of stealable work.
const GrainAuto = ^uint64(0)

// CoalesceDequeMin is the local-deque occupancy at which a backend
// answers ExecCoalesce true: enough unstolen entries that thieves are
// demonstrably not keeping up, so finer spawning only adds overhead.
// Shared by all three backends so the adaptive signal is comparable.
const CoalesceDequeMin = 4

// --- *Worker as an Exec (the simulator backend) ----------------------

// ExecReadU64 implements Exec over the worker's simulated memory.
func (w *Worker) ExecReadU64(va mem.VA) uint64 { return w.space.MustReadU64(va) }

// ExecWriteU64 implements Exec over the worker's simulated memory.
func (w *Worker) ExecWriteU64(va mem.VA, v uint64) { w.space.MustWriteU64(va, v) }

// ExecSlice implements Exec over the worker's simulated memory.
func (w *Worker) ExecSlice(va mem.VA, n uint64) ([]byte, error) { return w.space.Slice(va, n) }

// ExecWork advances simulated time by cycles of task computation
// (scaled on straggler workers).
func (w *Worker) ExecWork(cycles uint64) {
	w.stats.WorkCycles += cycles
	w.adv(cycles)
}

// ExecComplete publishes a result through the record protocol (local
// write or one-sided RDMA WRITE).
func (w *Worker) ExecComplete(rec Handle, result uint64) { w.completeRecord(rec, result) }

func (w *Worker) mustGas() *gas.Heap {
	if w.gas == nil {
		panic("core: global heap disabled (Config.GasSize = 0)")
	}
	return w.gas
}

// ExecGasHeap returns the worker's global-heap handle (nil when
// disabled).
func (w *Worker) ExecGasHeap() *gas.Heap { return w.gas }

// ExecGasGet dereferences a global reference into buf.
func (w *Worker) ExecGasGet(r gas.Ref, buf []byte) { w.mustGas().Get(w.proc, r, buf) }

// ExecGasPut stores buf through a global reference.
func (w *Worker) ExecGasPut(r gas.Ref, buf []byte) { w.mustGas().Put(w.proc, r, buf) }

// ExecGasGetU64 loads one word through a global reference.
func (w *Worker) ExecGasGetU64(r gas.Ref) uint64 { return w.mustGas().GetU64(w.proc, r) }

// ExecGasPutU64 stores one word through a global reference.
func (w *Worker) ExecGasPutU64(r gas.Ref, v uint64) { w.mustGas().PutU64(w.proc, r, v) }

// ExecGasAlloc allocates on this worker's global-heap segment.
func (w *Worker) ExecGasAlloc(n uint64) gas.Ref { return w.mustGas().MustAlloc(w.proc, n) }

// ExecGrain returns the machine's configured granularity cutoff.
func (w *Worker) ExecGrain() uint64 { return w.m.cfg.Grain }

// ExecCoalesce reports local work surplus: the worker's own deque
// already holds CoalesceDequeMin+ unstolen entries.
func (w *Worker) ExecCoalesce() bool { return w.deque.Size() >= CoalesceDequeMin }

// SimWorker returns w: the simulator is its own Exec.
func (w *Worker) SimWorker() *Worker { return w }

// --- alternate-backend support ---------------------------------------

// NewEnv constructs the Env for one (re-)entry of a task function on
// backend x. Alternate backends (internal/rt) use it together with
// TaskFn to drive task bodies; the simulator builds its Envs
// internally. The Env must not be retained across the function's
// return.
func NewEnv(x Exec, base mem.VA, size uint64, rp uint32) *Env {
	return &Env{x: x, base: base, size: size, rp: rp}
}

// Reset reinitialises e for a new task entry, so backends can pool Env
// values instead of heap-allocating one per invocation. The contract
// that task functions must not retain an Env past their return (see
// NewEnv) is what makes reuse safe.
func (e *Env) Reset(x Exec, base mem.VA, size uint64, rp uint32) {
	*e = Env{x: x, base: base, size: size, rp: rp}
}

// Returned reports whether the task called ReturnU64/ReturnI64 during
// this entry. Backends use it after a Done return to record the default
// zero result when the task never returned explicitly.
func (e *Env) Returned() bool { return e.returned }

// Grain returns the backend's granularity cutoff for this run: 0 = no
// coalescing, GrainAuto = workload-chosen cutoff gated on Coalesce,
// any other value = a static size metric below which the workload
// should run subtrees sequentially. Workloads that honour it must
// still charge the same ExecWork cycles the spawned subtree would
// have, so results and work accounting stay backend-comparable.
func (e *Env) Grain() uint64 { return e.x.ExecGrain() }

// Coalesce reports whether spawning more parallelism currently looks
// pointless (see Exec.ExecCoalesce) — the adaptive gate for GrainAuto.
func (e *Env) Coalesce() bool { return e.x.ExecCoalesce() }

// TaskFn returns the registered task function for id, panicking on an
// unregistered id (mirrors the simulator's internal lookup).
func TaskFn(id FuncID) Fn { return lookupFn(id) }

// FrameHeaderBytes is the size of the frame header at the base of every
// thread stack; the locals area follows it.
const FrameHeaderBytes = frameHdrSize

// FrameHeader is the decoded fixed-size header at the base of a
// thread's stack (see frame.go for the byte layout).
type FrameHeader struct {
	Fid       FuncID
	Resume    uint32
	LocalsLen uint32
	Record    Handle
	TaskID    uint64
}

// DecodeFrameHeader parses the header from the first FrameHeaderBytes
// of a frame.
func DecodeFrameHeader(b []byte) FrameHeader {
	return FrameHeader{
		Fid:       FuncID(binary.LittleEndian.Uint32(b[fhFuncIDOff:])),
		Resume:    binary.LittleEndian.Uint32(b[fhResumeOff:]),
		LocalsLen: binary.LittleEndian.Uint32(b[fhLocalsLenOff:]),
		Record:    Handle(binary.LittleEndian.Uint64(b[fhRecordOff:])),
		TaskID:    binary.LittleEndian.Uint64(b[fhTaskIDOff:]),
	}
}

// SetFrameResume stamps a resume point into a raw frame header — the
// backend-side half of Env.setRP for backends that own the frame bytes
// directly.
func SetFrameResume(b []byte, rp uint32) {
	binary.LittleEndian.PutUint32(b[fhResumeOff:], rp)
}

// EncodeFrameHeader writes a fresh header (resume point 0, task ID 0)
// into b, which must hold at least FrameHeaderBytes. The caller is
// responsible for zeroing the rest of the frame first, exactly like the
// simulator's frame initialisation.
func EncodeFrameHeader(b []byte, fid FuncID, localsLen uint32, rec Handle) {
	binary.LittleEndian.PutUint32(b[fhFuncIDOff:], uint32(fid))
	binary.LittleEndian.PutUint32(b[fhResumeOff:], 0)
	binary.LittleEndian.PutUint32(b[fhLocalsLenOff:], localsLen)
	binary.LittleEndian.PutUint32(b[fhLocalsLenOff+4:], 0)
	binary.LittleEndian.PutUint64(b[fhRecordOff:], uint64(rec))
	binary.LittleEndian.PutUint64(b[fhTaskIDOff:], 0)
}
