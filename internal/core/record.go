package core

import "encoding/binary"

// Task records implement inter-thread synchronisation (join, §5.4).
// A record lives in the pinned RDMA heap of the process that executed
// the spawn, so a child that finishes on another process (it was stolen)
// can publish its result with a single one-sided RDMA WRITE, and a
// parent that migrated away can poll it with a one-sided RDMA READ —
// try_join in Fig. 7 never needs the home CPU.
//
// Layout (little-endian): +0 done u64 (0/1), +8 result u64.
const recordBytes = 16

// newRecord allocates and zeroes a record in this worker's RDMA heap.
func (w *Worker) newRecord() Handle {
	va := w.heap.MustAlloc(recordBytes)
	w.space.MustWriteU64(va, 0)
	w.space.MustWriteU64(va+8, 0)
	return MakeHandle(w.rank, va)
}

// completeRecord publishes a result and the done flag. Local when the
// record lives here, otherwise a single 16-byte RDMA WRITE (the done
// word and result land atomically at completion time).
func (w *Worker) completeRecord(h Handle, result uint64) {
	if h.Rank() == w.rank {
		w.adv(w.costs.RecordWriteLocal)
		w.space.MustWriteU64(h.VA()+8, result)
		w.space.MustWriteU64(h.VA(), 1)
	} else {
		var b [recordBytes]byte
		binary.LittleEndian.PutUint64(b[0:], 1)
		binary.LittleEndian.PutUint64(b[8:], result)
		w.ep.Write(w.proc, h.Rank(), h.VA(), b[:])
	}
	if h == w.m.rootRecord {
		w.m.finish(result)
	}
}

// tryJoin polls a record. Local records cost a few cycles; remote ones
// a 16-byte one-sided READ.
func (w *Worker) tryJoin(h Handle) (done bool, result uint64) {
	if !h.Valid() {
		panic("core: join on invalid handle")
	}
	if h.Rank() == w.rank {
		w.adv(w.costs.TryJoinLocal)
		if w.space.MustReadU64(h.VA()) == 0 {
			return false, 0
		}
		return true, w.space.MustReadU64(h.VA() + 8)
	}
	var b [recordBytes]byte
	w.ep.Read(w.proc, h.Rank(), h.VA(), b[:])
	if binary.LittleEndian.Uint64(b[0:]) == 0 {
		return false, 0
	}
	return true, binary.LittleEndian.Uint64(b[8:])
}

// freeRecord releases a record after a successful join. When the joiner
// migrated away from the record's home, the release is cross-process
// bookkeeping only (a real implementation would use an RDMA free-list;
// the reclamation path is not load-bearing for any measured quantity).
func (w *Worker) freeRecord(h Handle) {
	w.m.workers[h.Rank()].heap.Free(h.VA())
}
