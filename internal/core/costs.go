package core

// Costs are the CPU-side cost parameters of the runtime, in cycles.
// Together with the fabric parameters (rdma.Params) they form a machine
// profile. Two calibrated profiles mirror the paper's test machines
// (Table 1): SPARC64IXfx (FX10) and Xeon E5-2660.
type Costs struct {
	// SaveContext is the register save at task creation (Fig. 4 /
	// Appendix A) plus task-record setup.
	SaveContext uint64
	// RestoreContext is the context restore when a parent resumes after
	// an un-stolen child returns.
	RestoreContext uint64
	// DequePush / DequePop are the local THE-protocol queue operations.
	DequePush uint64
	DequePop  uint64
	// TryJoinLocal is a local record poll; RecordWriteLocal a local
	// record completion.
	TryJoinLocal     uint64
	RecordWriteLocal uint64
	// SuspendCPU / ResumeCPU are the fixed parts of packing a thread
	// out of / back into the uni-address region (Fig. 8); the memcpy
	// part scales with MemCopyPerByte.
	SuspendCPU     uint64
	ResumeCPU      uint64
	MemCopyPerByte float64
	// VictimSelect is the cost of picking a random victim.
	VictimSelect uint64
	// IdleBackoff is the pause between scheduler rounds with no work.
	IdleBackoff uint64
	// PageFaultCycles is the demand-paging fault cost (21K cycles on
	// SPARC64IXfx per the paper §4), charged by the iso-address scheme.
	PageFaultCycles uint64
	// IsoVictimAssist models the remote-CPU involvement iso-address
	// stack transfer needs (paper footnote 2: it cannot be one-sided).
	IsoVictimAssist uint64
	// ClockHz converts cycles to seconds for reporting.
	ClockHz float64
}

// SPARCCosts is the FX10 SPARC64IXfx profile. The full cost of
// creating, running and retiring an empty task — save context, deque
// push/pop, context restore, the child's record write and the parent's
// try_join — sums to the paper's measured 413 cycles, and
// suspend+resume of the 3055-byte microbenchmark stack come to ≈3.5K
// cycles (Table 2, §6.3).
func SPARCCosts() Costs {
	return Costs{
		SaveContext:      120,
		RestoreContext:   93,
		DequePush:        50,
		DequePop:         50,
		TryJoinLocal:     60,
		RecordWriteLocal: 40,
		SuspendCPU:       1200,
		ResumeCPU:        1450,
		MemCopyPerByte:   0.25,
		VictimSelect:     100,
		IdleBackoff:      2000,
		PageFaultCycles:  21000,
		IsoVictimAssist:  2000,
		ClockHz:          1.848e9,
	}
}

// XeonCosts is the Xeon E5-2660 profile; the empty-task components sum
// to the paper's 100 cycles.
func XeonCosts() Costs {
	return Costs{
		SaveContext:      30,
		RestoreContext:   22,
		DequePush:        12,
		DequePop:         12,
		TryJoinLocal:     14,
		RecordWriteLocal: 10,
		SuspendCPU:       300,
		ResumeCPU:        350,
		MemCopyPerByte:   0.06,
		VictimSelect:     30,
		IdleBackoff:      600,
		PageFaultCycles:  4000,
		IsoVictimAssist:  700,
		ClockHz:          2.2e9,
	}
}

// SpawnCost returns the modelled cost of creating and synchronising one
// empty task (the Table 2 quantity) for the profile.
func (c Costs) SpawnCost() uint64 {
	return c.SaveContext + c.DequePush + c.DequePop + c.RestoreContext +
		c.TryJoinLocal + c.RecordWriteLocal
}

// copyCycles converts a memcpy size to cycles.
func (c Costs) copyCycles(n uint64) uint64 {
	return uint64(float64(n) * c.MemCopyPerByte)
}

// Seconds converts cycles to seconds under this profile's clock.
func (c Costs) Seconds(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz
}
