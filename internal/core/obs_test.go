package core_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"uniaddr/internal/core"
	"uniaddr/internal/obs"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files under testdata/")

func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: output differs from golden file (%d vs %d bytes); "+
			"rerun with -update-golden after verifying the change is intended",
			name, len(got), len(want))
	}
}

func TestObsDisabledByDefault(t *testing.T) {
	cfg := core.DefaultConfig(2)
	m, _ := runFib(t, cfg, 10)
	if m.Obs() != nil {
		t.Fatal("recorder exists without Config.Obs or Config.Trace")
	}
}

// TestObsEndToEnd checks the recorder against the machine's own
// counters: every successful steal shows up as a latency sample and a
// lineage hop, every executed task has a lineage, and the event rings
// hold the matching typed events.
func TestObsEndToEnd(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Obs = true
	cfg.Seed = 5
	m, _ := runFib(t, cfg, 14)
	rec := m.Obs()
	if rec == nil {
		t.Fatal("Config.Obs did not attach a recorder")
	}
	st := m.TotalStats()
	if st.StealsOK == 0 {
		t.Fatal("test needs steals; got none")
	}
	if rec.StealLatency.Count != st.StealsOK {
		t.Errorf("StealLatency.Count = %d, want StealsOK = %d",
			rec.StealLatency.Count, st.StealsOK)
	}
	if rec.StackXfer.Count != st.StealsOK {
		t.Errorf("StackXfer.Count = %d, want %d", rec.StackXfer.Count, st.StealsOK)
	}

	var stealOK, spawns, taskDone uint64
	var hops int
	for _, l := range rec.Logs() {
		if l.Dropped() != 0 {
			t.Errorf("worker %d ring dropped %d events at default capacity", l.Rank(), l.Dropped())
		}
		for _, e := range l.Events() {
			switch e.Kind {
			case obs.KStealOK:
				stealOK++
				if e.Task == 0 {
					t.Error("stolen thread without a task ID")
				}
				if e.Peer < 0 || int(e.Peer) >= cfg.Workers {
					t.Errorf("steal from bad victim %d", e.Peer)
				}
			case obs.KSpawn:
				spawns++
			case obs.KTaskDone:
				taskDone++
			}
		}
	}
	if stealOK != st.StealsOK {
		t.Errorf("ring holds %d steal-ok events, stats say %d", stealOK, st.StealsOK)
	}
	// Spawns: one KSpawn per task creation (root included).
	if spawns != st.Spawns+1 {
		t.Errorf("ring holds %d spawn events, stats say %d spawns + root", spawns, st.Spawns)
	}
	if taskDone != st.TasksExecuted {
		t.Errorf("ring holds %d task-done events, stats say %d executed", taskDone, st.TasksExecuted)
	}
	for _, ln := range rec.Tasks() {
		hops += len(ln.Hops)
		if ln.Done.Worker < 0 {
			t.Errorf("task %d never finished", ln.ID)
		}
	}
	// Work-first fib migrates threads only via steals (no lifelines in
	// this config), so hops == successful steals.
	if uint64(hops) != st.StealsOK {
		t.Errorf("lineages record %d hops, want %d steals", hops, st.StealsOK)
	}
	if uint64(len(rec.Tasks())) != st.TasksExecuted {
		t.Errorf("%d lineages, %d tasks executed", len(rec.Tasks()), st.TasksExecuted)
	}
}

// TestGanttGoldenUnchanged pins the Gantt timeline of a fixed run: the
// obs state stream now feeds internal/trace, and the rendered chart
// must stay byte-identical to the direct-mark era (satellite: trace
// migration).
func TestGanttGoldenUnchanged(t *testing.T) {
	cfg := core.DefaultConfig(4)
	cfg.Trace = true
	cfg.Seed = 7
	m, _ := runFib(t, cfg, 14)
	var buf bytes.Buffer
	m.Tracer().RenderGantt(&buf, 80)
	compareGolden(t, "gantt_fib14_w4_seed7.golden", buf.Bytes())
}

// TestChromeGoldenTinyRun pins the Chrome trace of a tiny 2-worker run
// byte-for-byte and validates its structure.
func TestChromeGoldenTinyRun(t *testing.T) {
	cfg := core.DefaultConfig(2)
	cfg.Obs = true
	cfg.Seed = 2
	m, _ := runFib(t, cfg, 10)
	var buf bytes.Buffer
	opts := &obs.ChromeOpts{
		FuncName: func(id uint32) string { return core.FuncName(core.FuncID(id)) },
		Label:    "fib(10) x2",
	}
	if err := obs.WriteChromeTrace(&buf, m.Obs(), opts); err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "chrome_fib10_w2_seed2.golden.json", buf.Bytes())

	// Validity: parses, every complete event has a duration, flows pair.
	var doc struct {
		TraceEvents []struct {
			Ph  string  `json:"ph"`
			Dur *uint64 `json:"dur"`
			ID  uint64  `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	flows := map[uint64]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.Dur == nil {
				t.Fatal("complete event without dur")
			}
		case "s":
			flows[e.ID]++
		case "f":
			flows[e.ID] += 100
		}
	}
	for id, v := range flows {
		if v != 101 {
			t.Errorf("flow %d not an s/f pair (code %d)", id, v)
		}
	}
}

// quiesceProbe runs StatsAtQuiescence from inside the simulation and
// reports (via frame slot 0 → return value) whether it panicked.
var quiesceProbeFID core.FuncID

func init() {
	quiesceProbeFID = core.Register("quiesce-probe", func(e *core.Env) core.Status {
		panicked := uint64(0)
		func() {
			defer func() {
				if recover() != nil {
					panicked = 1
				}
			}()
			e.Worker().StatsAtQuiescence()
		}()
		e.ReturnU64(panicked)
		return core.Done
	})
}

// TestStatsAtQuiescenceGuards pins the quiescence contract from both
// sides: mid-run access panics, post-run access succeeds and matches
// the unchecked snapshot.
func TestStatsAtQuiescenceGuards(t *testing.T) {
	cfg := core.DefaultConfig(2)
	m, err := core.NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Run(quiesceProbeFID, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatal("StatsAtQuiescence did not panic while the simulation was running")
	}
	for _, w := range m.Workers() {
		if w.StatsAtQuiescence() != w.Stats() {
			t.Fatal("post-run StatsAtQuiescence differs from Stats")
		}
	}
}
