package core

import (
	"fmt"

	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// The work-stealing deque, laid out in pinned simulated memory so that
// thieves can operate on it one-sidedly (§5.3). The owner pushes and
// pops at the bottom without locking (THE protocol fast path, as in
// Cilk-5 and MassiveThreads); thieves lock with a remote fetch-and-add
// and steal from the top (FIFO — the oldest, shallowest continuation).
//
// Memory layout at Deque.base (all little-endian uint64):
//
//	+0   lock    0 = free; acquired by FAA(+1) returning 0, released by
//	             writing 0 (which also absorbs increments from failed
//	             attempts, so a failed locker never writes)
//	+8   top     steal index (monotonic)
//	+16  bottom  owner index (monotonic)
//	+24  pad
//	+32  entries[cap], 16 bytes each: frameBase u64, frameSize u64
const (
	dqLockOff    = 0
	dqTopOff     = 8
	dqBottomOff  = 16
	dqEntriesOff = 32
	dqEntrySize  = 16
)

// Entry is one deque element: the continuation of a thread, identified
// by the address and size of its stack in the uni-address region. All
// resume information (function id, resume point) lives inside the stack
// bytes themselves, so this is all a thief needs.
type Entry struct {
	FrameBase mem.VA
	FrameSize uint64
}

// DequeBytes returns the memory footprint of a deque with cap entries.
func DequeBytes(cap uint64) uint64 { return dqEntriesOff + cap*dqEntrySize }

// Deque is the owner-side view of one process's task queue.
type Deque struct {
	space *mem.AddressSpace
	base  mem.VA
	cap   uint64
	// maxDepth tracks the high-water number of simultaneous entries.
	maxDepth uint64
	// log, when attached, receives deque-depth counter samples after
	// local push/pop/take operations (nil-safe).
	log *obs.WorkerLog
}

// SetLog attaches the owner's observability log; subsequent local
// push/pop/take operations sample the deque depth into it.
func (d *Deque) SetLog(l *obs.WorkerLog) { d.log = l }

// NewDeque reserves and pins the deque region in space at base.
func NewDeque(space *mem.AddressSpace, base mem.VA, cap uint64) (*Deque, error) {
	if _, err := space.Reserve("taskq", base, DequeBytes(cap), true); err != nil {
		return nil, err
	}
	return &Deque{space: space, base: base, cap: cap}, nil
}

// Base returns the deque's base VA (identical across processes).
func (d *Deque) Base() mem.VA { return d.base }

// MaxDepth returns the high-water entry count.
func (d *Deque) MaxDepth() uint64 { return d.maxDepth }

func (d *Deque) lockVA() mem.VA   { return d.base + dqLockOff }
func (d *Deque) topVA() mem.VA    { return d.base + dqTopOff }
func (d *Deque) bottomVA() mem.VA { return d.base + dqBottomOff }
func (d *Deque) entryVA(i uint64) mem.VA {
	return d.base + dqEntriesOff + mem.VA((i%d.cap)*dqEntrySize)
}

func (d *Deque) readEntry(i uint64) Entry {
	va := d.entryVA(i)
	return Entry{
		FrameBase: mem.VA(d.space.MustReadU64(va)),
		FrameSize: d.space.MustReadU64(va + 8),
	}
}

func (d *Deque) writeEntry(i uint64, e Entry) {
	va := d.entryVA(i)
	d.space.MustWriteU64(va, uint64(e.FrameBase))
	d.space.MustWriteU64(va+8, e.FrameSize)
}

// Size returns bottom-top as seen locally (owner view).
func (d *Deque) Size() uint64 {
	t := d.space.MustReadU64(d.topVA())
	b := d.space.MustReadU64(d.bottomVA())
	if b < t {
		return 0
	}
	return b - t
}

// Push appends an entry at the bottom (owner only; lock-free).
// bottom may transiently sit below top while a thief is between its
// claiming top-write and its undo (see StealRemote), so the size checks
// must tolerate b < t.
func (d *Deque) Push(e Entry) error {
	t := d.space.MustReadU64(d.topVA())
	b := d.space.MustReadU64(d.bottomVA())
	if b >= t && b-t >= d.cap {
		return fmt.Errorf("core: deque overflow (cap %d)", d.cap)
	}
	d.writeEntry(b, e)
	d.space.MustWriteU64(d.bottomVA(), b+1)
	if b+1 > t {
		if depth := b + 1 - t; depth > d.maxDepth {
			d.maxDepth = depth
		}
	}
	if d.log != nil {
		var depth uint64
		if b+1 > t {
			depth = b + 1 - t
		}
		d.log.Depth(depth)
	}
	return nil
}

// lockLocal spins on the lock word with local atomics until acquired.
// The owner only locks on the THE conflict path, and thieves hold the
// lock for a bounded time, so the spin terminates. p advances by the
// local atomic cost per attempt so simulated time moves while spinning.
func (d *Deque) lockLocal(p *sim.Proc, ep *rdma.Endpoint, self int) {
	for {
		if old := ep.FetchAdd(p, self, d.lockVA(), 1); old == 0 {
			return
		}
		p.Advance(200) // brief local backoff before retrying
	}
}

func (d *Deque) unlockLocal() {
	d.space.MustWriteU64(d.lockVA(), 0)
}

// Pop removes and returns the bottom entry (owner side, THE protocol).
// The fast path is lock-free; when the deque might be empty or a thief
// might be racing for the last entry, the owner re-checks under the
// lock (Cilk-5's T/H/E exception path).
func (d *Deque) Pop(p *sim.Proc, ep *rdma.Endpoint, self int) (Entry, bool) {
	b := d.space.MustReadU64(d.bottomVA())
	if b == 0 {
		return Entry{}, false
	}
	b--
	d.space.MustWriteU64(d.bottomVA(), b)
	t := d.space.MustReadU64(d.topVA())
	if t > b {
		// Possible conflict with a thief on the last entry: restore and
		// retry under the lock.
		d.space.MustWriteU64(d.bottomVA(), b+1)
		d.lockLocal(p, ep, self)
		b = d.space.MustReadU64(d.bottomVA()) - 1
		d.space.MustWriteU64(d.bottomVA(), b)
		t = d.space.MustReadU64(d.topVA())
		if t > b {
			// The thief won: the deque is empty.
			d.space.MustWriteU64(d.bottomVA(), b+1)
			d.unlockLocal()
			return Entry{}, false
		}
		e := d.readEntry(b)
		d.unlockLocal()
		if d.log != nil {
			d.log.Depth(b - t)
		}
		return e, true
	}
	if d.log != nil {
		d.log.Depth(b - t)
	}
	return d.readEntry(b), true
}

// StealPhases records the per-phase cycle costs of one remote steal
// attempt (Table 3 / Fig. 10 breakdown).
type StealPhases struct {
	EmptyCheck    uint64
	Lock          uint64
	Steal         uint64
	StackTransfer uint64
	Unlock        uint64
}

// Total sums all phases.
func (p StealPhases) Total() uint64 {
	return p.EmptyCheck + p.Lock + p.Steal + p.StackTransfer + p.Unlock
}

// Merge adds q's cycles into p.
func (p *StealPhases) Merge(q StealPhases) {
	p.EmptyCheck += q.EmptyCheck
	p.Lock += q.Lock
	p.Steal += q.Steal
	p.StackTransfer += q.StackTransfer
	p.Unlock += q.Unlock
}

// StealOutcome classifies a remote steal attempt.
type StealOutcome int

const (
	// StealOK means an entry was stolen; the caller must transfer the
	// stack and then Unlock.
	StealOK StealOutcome = iota
	// StealEmpty means the victim's deque was empty (before locking).
	StealEmpty
	// StealLockBusy means the lock FAA found the queue locked.
	StealLockBusy
	// StealEmptyLocked means the queue emptied between the check and
	// the lock; the lock has been released.
	StealEmptyLocked
	// StealReject means the accept callback declined the candidate
	// entry (e.g. a uni-address slot mismatch, §5.1); the entry was
	// left in place and the lock released.
	StealReject
	// StealFault means a fabric operation of the attempt hit an
	// injected fault. Any partial progress (a taken lock, a claimed
	// top) was rolled back before returning: the victim's deque is
	// consistent and the entry is still there. The caller may retry.
	StealFault
)

func (o StealOutcome) String() string {
	switch o {
	case StealOK:
		return "ok"
	case StealEmpty:
		return "empty"
	case StealLockBusy:
		return "lock-busy"
	case StealEmptyLocked:
		return "empty-locked"
	case StealReject:
		return "reject"
	case StealFault:
		return "fault"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// StealRemote runs the thief side of Fig. 6 up to and including the
// entry removal: empty check (RDMA READ), lock (remote FAA), then the
// "steal" op of Table 3 (index READs, the claiming top WRITE, and the
// entry READ; the paper counts two READs and a WRITE — we issue one
// extra 8-byte READ because top must be re-read under the lock before
// it can be claimed). On StealOK the lock is still held — the caller
// transfers the stack with an RDMA READ and then calls Unlock, matching
// the paper's ordering (resume_remote_context unlocks after RDMA_GET).
// accept, when non-nil, is consulted with the candidate entry before it
// is removed; declining leaves the entry for a matching thief.
// Fabric faults surface here as StealFault after an internal rollback.
// The rollback path itself uses the reliable (retry-until-success)
// endpoint operations: a taken lock or a claimed top MUST be restored
// or the victim's deque would be wedged/corrupted forever, and retrying
// is safe because injected failures have no remote effect.
func (d *Deque) StealRemote(p *sim.Proc, ep *rdma.Endpoint, victim int, ph *StealPhases, accept func(Entry) bool) (Entry, StealOutcome) {
	// unlock releases the victim's lock, charging ph.Unlock.
	unlock := func() {
		start := p.Now()
		ep.WriteU64(p, victim, d.lockVA(), 0)
		ph.Unlock += p.Now() - start
	}
	// Phase 1: empty check — one RDMA READ covering top and bottom.
	start := p.Now()
	var idx [16]byte
	err := ep.TryRead(p, victim, d.topVA(), idx[:])
	ph.EmptyCheck += p.Now() - start
	if err != nil {
		return Entry{}, StealFault
	}
	t := leU64(idx[0:8])
	b := leU64(idx[8:16])
	if t >= b {
		return Entry{}, StealEmpty
	}
	// Phase 2: lock — remote fetch-and-add. A failed FAA never acquired
	// the lock (fail-before-effect), so there is nothing to undo.
	start = p.Now()
	old, err := ep.TryFetchAdd(p, victim, d.lockVA(), 1)
	ph.Lock += p.Now() - start
	if err != nil {
		return Entry{}, StealFault
	}
	if old != 0 {
		return Entry{}, StealLockBusy
	}
	// Phase 3: steal — reads and a WRITE under the lock, in Cilk-5's
	// THE order: re-read top, *claim* it by writing top+1, only then
	// read bottom. Claiming before reading bottom is what guarantees
	// that the thief and a concurrent lock-free owner pop can never
	// both take the last entry: whoever's write lands second sees the
	// other's claim and backs off.
	start = p.Now()
	var w8 [8]byte
	if err := ep.TryRead(p, victim, d.topVA(), w8[:]); err != nil {
		ph.Steal += p.Now() - start
		unlock()
		return Entry{}, StealFault
	}
	t = leU64(w8[:])
	// Claim BEFORE reading anything else: once top = t+1 is visible and
	// bottom confirms b >= t+1, slot t is exclusively ours — the owner
	// can neither pop it (its pop sees the claim and backs off) nor
	// overwrite it (pushes go to b' >= b, and the overflow check keeps
	// b'-t < cap). Reading the entry before the claim is a TOCTOU: the
	// owner may pop that entry and push a new one into the recycled
	// slot while our reads are in flight.
	if err := ep.TryWriteU64(p, victim, d.topVA(), t+1); err != nil {
		// The claim never landed: only the lock needs releasing.
		ph.Steal += p.Now() - start
		unlock()
		return Entry{}, StealFault
	}
	if err := ep.TryRead(p, victim, d.bottomVA(), w8[:]); err != nil {
		// Half-completed: the claim is visible. Roll it back (reliable)
		// before releasing the lock — the THE abort path.
		ep.WriteU64(p, victim, d.topVA(), t)
		ph.Steal += p.Now() - start
		unlock()
		return Entry{}, StealFault
	}
	b = leU64(w8[:])
	if b < t+1 {
		// Lost the race to the owner: undo the claim and bail.
		ep.WriteU64(p, victim, d.topVA(), t)
		ph.Steal += p.Now() - start
		unlock()
		return Entry{}, StealEmptyLocked
	}
	var eb [dqEntrySize]byte
	if err := ep.TryRead(p, victim, d.entryVA(t), eb[:]); err != nil {
		ep.WriteU64(p, victim, d.topVA(), t)
		ph.Steal += p.Now() - start
		unlock()
		return Entry{}, StealFault
	}
	e := Entry{FrameBase: mem.VA(leU64(eb[0:8])), FrameSize: leU64(eb[8:16])}
	if accept != nil && !accept(e) {
		// Give the entry back: while we hold the lock, restoring top is
		// safe — any owner pop that saw our claim is spinning on the
		// lock and will re-check afterwards.
		ep.WriteU64(p, victim, d.topVA(), t)
		ph.Steal += p.Now() - start
		unlock()
		return e, StealReject
	}
	ph.Steal += p.Now() - start
	return e, StealOK
}

// AbortRemote rolls back a steal that returned StealOK but whose stack
// transfer failed: with the lock still held, the claimed top is moved
// back over the entry and the lock is released — the entry is again
// stealable and the victim's own pop will find it. Uses reliable
// (retrying) operations: a dangling claim or lock would wedge the
// victim.
func (d *Deque) AbortRemote(p *sim.Proc, ep *rdma.Endpoint, victim int, ph *StealPhases) {
	start := p.Now()
	t := ep.ReadU64(p, victim, d.topVA())
	ep.WriteU64(p, victim, d.topVA(), t-1)
	ph.Steal += p.Now() - start
	start = p.Now()
	ep.WriteU64(p, victim, d.lockVA(), 0)
	ph.Unlock += p.Now() - start
}

// TakeTop removes the oldest entry from the owner's OWN deque — the
// victim side of a lifeline push. Same claim-then-verify protocol as a
// remote steal, but against local memory under the local lock.
func (d *Deque) TakeTop(p *sim.Proc, ep *rdma.Endpoint, self int) (Entry, bool) {
	e, tk, ok := d.TakeTopBegin(p, ep, self)
	if ok {
		tk.Commit()
	}
	return e, ok
}

// TopTake is an open claim of the owner's oldest entry: the local lock
// is still held until Commit or Abort.
type TopTake struct {
	d *Deque
	t uint64
}

// TakeTopBegin claims the oldest entry while KEEPING the local lock
// held, so the caller can push the entry over the fabric and still
// abort the take if delivery fails. On ok the caller must call exactly
// one of tk.Commit (the entry is gone for good) or tk.Abort (top is
// restored; the entry is back in the deque). On !ok the deque was
// empty and the lock has been released.
func (d *Deque) TakeTopBegin(p *sim.Proc, ep *rdma.Endpoint, self int) (Entry, TopTake, bool) {
	d.lockLocal(p, ep, self)
	t := d.space.MustReadU64(d.topVA())
	d.space.MustWriteU64(d.topVA(), t+1) // claim
	b := d.space.MustReadU64(d.bottomVA())
	if b < t+1 {
		d.space.MustWriteU64(d.topVA(), t)
		d.unlockLocal()
		return Entry{}, TopTake{}, false
	}
	return d.readEntry(t), TopTake{d: d, t: t}, true
}

// Commit finalises the take and releases the lock.
func (tk TopTake) Commit() {
	if tk.d.log != nil {
		tk.d.log.Depth(tk.d.Size())
	}
	tk.d.unlockLocal()
}

// Abort restores the claimed top — safe because the lock was held
// throughout, so neither the owner's pop nor any thief has moved the
// indices — and releases the lock.
func (tk TopTake) Abort() {
	tk.d.space.MustWriteU64(tk.d.topVA(), tk.t)
	tk.d.unlockLocal()
}

// Unlock releases a victim's deque lock after a successful steal's
// stack transfer (one RDMA WRITE).
func (d *Deque) Unlock(p *sim.Proc, ep *rdma.Endpoint, victim int, ph *StealPhases) {
	start := p.Now()
	ep.WriteU64(p, victim, d.lockVA(), 0)
	ph.Unlock += p.Now() - start
}

func leU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
