package core

import (
	"fmt"

	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
)

// SchemeKind selects the thread-management scheme under test.
type SchemeKind int

const (
	// SchemeUni is the paper's contribution (§5).
	SchemeUni SchemeKind = iota
	// SchemeIso is the iso-address baseline (§4): stacks at globally
	// unique addresses reserved in every process, demand-paged, not
	// RDMA-accessible.
	SchemeIso
)

func (k SchemeKind) String() string {
	if k == SchemeIso {
		return "iso-address"
	}
	return "uni-address"
}

// DefaultIsoBase is the base of the global iso-address stack area; the
// slab of rank r starts at DefaultIsoBase + r*IsoSlabSize.
const DefaultIsoBase mem.VA = 0x0200_0000_0000

// saved is a parked (suspended) thread. For uni-address, buf is the
// pinned RDMA-heap buffer holding the swapped-out stack; for
// iso-address the stack never moves and buf is unused.
type saved struct {
	base mem.VA
	size uint64
	buf  mem.VA
}

// scheme abstracts the operations that differ between uni-address and
// iso-address; everything else (deque protocol, join logic, scheduler)
// is shared, so measured differences isolate the migration scheme.
type scheme interface {
	kind() SchemeKind
	// newFrame allocates a stack of size bytes for a fresh thread.
	newFrame(w *Worker, size uint64) mem.VA
	// retireFrame releases the stack of a thread that completed on w.
	retireFrame(w *Worker, base mem.VA, size uint64)
	// releaseStolen drops the local (dead) copy of a stack whose thread
	// was stolen away.
	releaseStolen(w *Worker, base mem.VA, size uint64)
	// suspend parks the running thread (charging its cost) and returns
	// the wait-queue token.
	suspend(w *Worker, base mem.VA, size uint64) saved
	// resumeSaved makes a parked thread's stack addressable again.
	resumeSaved(w *Worker, sc saved)
	// transferStolen brings a stolen thread's stack to w. A non-nil
	// error means the transfer failed on the fabric and all local state
	// was rolled back; the caller must then abort the steal remotely
	// (Deque.AbortRemote) so the victim keeps the thread.
	transferStolen(w *Worker, victim int, ent Entry, ph *StealPhases) error
	// clearDead reclaims stacks left behind by stolen threads once the
	// worker is idle.
	clearDead(w *Worker)
	// canSteal reports whether w may host a stolen thread right now
	// (uni-address: only with an empty region, §5.2 rule 5).
	canSteal(w *Worker) bool
}

// --- uni-address -----------------------------------------------------

type uniScheme struct{}

func (uniScheme) kind() SchemeKind { return SchemeUni }

func (uniScheme) newFrame(w *Worker, size uint64) mem.VA {
	base, err := w.region.AllocBelow(size)
	if err != nil {
		panic(err)
	}
	return base
}

func (uniScheme) retireFrame(w *Worker, base mem.VA, size uint64) {
	if err := w.region.FreeLowest(base, size); err != nil {
		panic(err)
	}
}

func (uniScheme) releaseStolen(w *Worker, base mem.VA, size uint64) {
	// The thief copied the bytes out one-sidedly; only the local
	// bookkeeping is released.
	if err := w.region.FreeLowest(base, size); err != nil {
		panic(err)
	}
}

func (uniScheme) suspend(w *Worker, base mem.VA, size uint64) saved {
	start := w.proc.Now()
	var tid obs.TaskID
	if w.obs != nil {
		tid = obs.TaskID(frameTaskID(w.space, base))
	}
	w.adv(w.costs.SuspendCPU + w.costs.copyCycles(size))
	buf := w.heap.MustAlloc(size)
	if err := w.region.CopyOut(base, size, buf); err != nil {
		panic(err)
	}
	w.stats.Suspends++
	w.stats.SuspendCycles += w.proc.Now() - start
	if w.obs != nil {
		d := w.proc.Now() - start
		w.m.obs.SuspendSwap.Record(d)
		w.obs.Emit(obs.KSuspend, start, d, size, tid, -1)
	}
	return saved{base: base, size: size, buf: buf}
}

func (uniScheme) resumeSaved(w *Worker, sc saved) {
	start := w.proc.Now()
	w.adv(w.costs.ResumeCPU + w.costs.copyCycles(sc.size))
	if err := w.region.CopyIn(sc.base, sc.size, sc.buf); err != nil {
		panic(err)
	}
	w.heap.Free(sc.buf)
	w.stats.ResumeCycles += w.proc.Now() - start
}

func (uniScheme) transferStolen(w *Worker, victim int, ent Entry, ph *StealPhases) error {
	start := w.proc.Now()
	if err := w.region.Install(ent.FrameBase, ent.FrameSize); err != nil {
		panic(err)
	}
	// One-sided stack transfer straight into the uni-address region at
	// the thread's own address (Fig. 6 RDMA_GET). On an injected fault
	// nothing landed: release the just-installed range (the region was
	// empty before — stealing requires it, §5.2 rule 5) and report so
	// the caller rolls the victim's deque back.
	if err := w.ep.TryReadToVA(w.proc, victim, ent.FrameBase, ent.FrameBase, ent.FrameSize); err != nil {
		w.region.Clear()
		ph.StackTransfer += w.proc.Now() - start
		return err
	}
	xfer := w.proc.Now() - start
	ph.StackTransfer += xfer
	w.stats.BytesStolen += ent.FrameSize
	if w.obs != nil {
		w.m.obs.StackXfer.Record(xfer)
		w.m.obs.StackBytes.Record(ent.FrameSize)
		w.obs.Emit(obs.KXfer, start, xfer, ent.FrameSize,
			obs.TaskID(frameTaskID(w.space, ent.FrameBase)), victim)
	}
	return nil
}

func (uniScheme) clearDead(w *Worker) {
	// Whatever remains in the region once the deque is empty and no
	// thread is running belongs to stolen threads; reclaim it.
	w.region.Clear()
}

func (uniScheme) canSteal(w *Worker) bool { return w.region.Empty() }

// --- iso-address -----------------------------------------------------

type isoScheme struct{}

func (isoScheme) kind() SchemeKind { return SchemeIso }

// isoSlabRegion materialises (reserves backing for) rank's slab in w's
// address space on first use. The full global range was already counted
// against w's reserved virtual memory at start-up — that reservation is
// the iso-address scalability problem (§4 item 1); materialisation just
// converts the phantom range into a touchable one.
func (w *Worker) isoSlabRegion(rank int) *mem.Region {
	if r, ok := w.isoSlabs[rank]; ok {
		return r
	}
	base := w.m.IsoSlabBase(rank)
	w.space.AdjustPhantom(-int64(w.m.cfg.IsoSlabSize))
	r := w.space.MustReserve(fmt.Sprintf("isoslab-%d", rank), base, w.m.cfg.IsoSlabSize, false)
	w.isoSlabs[rank] = r
	return r
}

// isoTouch commits [base, base+size) in the slab that owns base and
// charges page-fault costs for first touches.
func (w *Worker) isoTouch(base mem.VA, size uint64) {
	rank := w.m.IsoRankOfVA(base)
	r := w.isoSlabRegion(rank)
	before := r.Faults()
	if _, err := w.space.Slice(base, size); err != nil {
		panic(err)
	}
	if faults := r.Faults() - before; faults > 0 {
		w.stats.PageFaults += faults
		w.proc.Advance(faults * w.costs.PageFaultCycles)
	}
}

func (isoScheme) newFrame(w *Worker, size uint64) mem.VA {
	w.isoSlabRegion(w.rank) // ensure own slab exists
	base, err := w.isoAlloc.Alloc(size)
	if err != nil {
		panic(err)
	}
	w.isoTouch(base, size)
	return base
}

func (isoScheme) retireFrame(w *Worker, base mem.VA, size uint64) {
	// The slot belongs to the slab owner's allocator; the address must
	// stay unique while the thread lives, so it is freed only now, by
	// whichever process completed the thread (cross-process bookkeeping
	// when the thread died away from home).
	owner := w.m.IsoRankOfVA(base)
	w.m.workers[owner].isoAlloc.Free(base)
}

func (isoScheme) releaseStolen(w *Worker, base mem.VA, size uint64) {
	// Nothing: the address remains reserved for the (now remote)
	// thread, and the pages it touched here stay committed — the
	// physical-memory growth of §4 item 2, visible in the accounting.
}

func (isoScheme) suspend(w *Worker, base mem.VA, size uint64) saved {
	// Iso-address never moves a suspended stack; parking is just a
	// context save.
	start := w.proc.Now()
	w.adv(w.costs.SaveContext)
	w.stats.Suspends++
	w.stats.SuspendCycles += w.costs.SaveContext
	if w.obs != nil {
		d := w.proc.Now() - start
		w.m.obs.SuspendSwap.Record(d)
		w.obs.Emit(obs.KSuspend, start, d, size,
			obs.TaskID(frameTaskID(w.space, base)), -1)
	}
	return saved{base: base, size: size}
}

func (isoScheme) resumeSaved(w *Worker, sc saved) {
	w.adv(w.costs.RestoreContext)
	w.stats.ResumeCycles += w.costs.RestoreContext
}

func (isoScheme) transferStolen(w *Worker, victim int, ent Entry, ph *StealPhases) error {
	start := w.proc.Now()
	// The stack area is not pinned (it is far too large to pin, §4
	// item 3), so the transfer cannot be a one-sided RDMA READ: the
	// victim's CPU must assist, and the incoming pages fault on first
	// touch (21K cycles each on SPARC64IXfx).
	rank := w.m.IsoRankOfVA(ent.FrameBase)
	r := w.isoSlabRegion(rank)
	before := r.Faults()
	dst, err := w.space.Slice(ent.FrameBase, ent.FrameSize)
	if err != nil {
		panic(err)
	}
	faults := r.Faults() - before
	src, err := w.m.workers[victim].space.Slice(ent.FrameBase, ent.FrameSize)
	if err != nil {
		panic(err)
	}
	lat := w.m.cfg.Net.ReadLatency(int(ent.FrameSize)) +
		w.costs.IsoVictimAssist +
		faults*w.costs.PageFaultCycles
	w.stats.PageFaults += faults
	w.proc.Advance(lat)
	copy(dst, src)
	xfer := w.proc.Now() - start
	ph.StackTransfer += xfer
	w.stats.BytesStolen += ent.FrameSize
	if w.obs != nil {
		w.m.obs.StackXfer.Record(xfer)
		w.m.obs.StackBytes.Record(ent.FrameSize)
		w.obs.Emit(obs.KXfer, start, xfer, ent.FrameSize,
			obs.TaskID(frameTaskID(w.space, ent.FrameBase)), victim)
	}
	// The iso transfer is two-sided (victim CPU assists) and not part
	// of the injected one-sided fault model, so it cannot fail.
	return nil
}

func (isoScheme) clearDead(w *Worker) {}

func (isoScheme) canSteal(w *Worker) bool { return true }
