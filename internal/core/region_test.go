package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"uniaddr/internal/mem"
)

func newTestRegion(t *testing.T, size uint64) *Region {
	t.Helper()
	space := mem.NewAddressSpace("t")
	r, err := NewRegion(space, DefaultUniBase, size)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegionAllocGrowsDown(t *testing.T) {
	r := newTestRegion(t, 4096)
	a, err := r.AllocBelow(256)
	if err != nil {
		t.Fatal(err)
	}
	if a != r.End()-256 {
		t.Fatalf("first stack at %#x, want top of region %#x", a, r.End()-256)
	}
	b, _ := r.AllocBelow(128)
	if b != a-128 {
		t.Fatalf("second stack at %#x, want just below first", b)
	}
	if r.Used() != 384 || r.Lowest() != b {
		t.Fatalf("used=%d lowest=%#x", r.Used(), r.Lowest())
	}
	if err := r.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionFreeOnlyLowest(t *testing.T) {
	r := newTestRegion(t, 4096)
	a, _ := r.AllocBelow(256)
	b, _ := r.AllocBelow(128)
	if err := r.FreeLowest(a, 256); err == nil {
		t.Fatal("freed non-lowest stack")
	}
	if err := r.FreeLowest(b, 128); err != nil {
		t.Fatal(err)
	}
	if err := r.FreeLowest(a, 256); err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatal("region not empty after freeing all")
	}
	// Empty region resets to the top.
	c, _ := r.AllocBelow(64)
	if c != r.End()-64 {
		t.Fatalf("after reset alloc at %#x", c)
	}
}

func TestRegionExhaustion(t *testing.T) {
	r := newTestRegion(t, 1024)
	if _, err := r.AllocBelow(1024); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AllocBelow(1); err == nil {
		t.Fatal("overcommitted region")
	}
}

func TestRegionInstallRequiresEmpty(t *testing.T) {
	r := newTestRegion(t, 4096)
	r.AllocBelow(64)
	if err := r.Install(r.Base()+100, 200); err == nil {
		t.Fatal("installed into non-empty region")
	}
}

func TestRegionInstallAnywhereWhenEmpty(t *testing.T) {
	r := newTestRegion(t, 4096)
	base := r.Base() + 512
	if err := r.Install(base, 256); err != nil {
		t.Fatal(err)
	}
	if r.Lowest() != base || r.Top() != base+256 {
		t.Fatalf("installed range [%#x,%#x)", r.Lowest(), r.Top())
	}
	// Children allocate below the installed thread.
	c, err := r.AllocBelow(128)
	if err != nil {
		t.Fatal(err)
	}
	if c != base-128 {
		t.Fatalf("child at %#x, want %#x", c, base-128)
	}
	if err := r.Install(r.Base(), 10); err == nil {
		t.Fatal("double install accepted")
	}
	// Out-of-bounds installs rejected.
	r.Clear()
	if err := r.Install(r.End()-8, 16); err == nil {
		t.Fatal("install past region end accepted")
	}
}

func TestRegionCopyOutInRoundTrip(t *testing.T) {
	space := mem.NewAddressSpace("t")
	r, err := NewRegion(space, DefaultUniBase, 4096)
	if err != nil {
		t.Fatal(err)
	}
	space.MustReserve("buf", 0x1000, 4096, true)
	base, _ := r.AllocBelow(200)
	payload := make([]byte, 200)
	for i := range payload {
		payload[i] = byte(i*7 + 3)
	}
	if _, err := space.Write(base, payload); err != nil {
		t.Fatal(err)
	}
	if err := r.CopyOut(base, 200, 0x1000); err != nil {
		t.Fatal(err)
	}
	if !r.Empty() {
		t.Fatal("region not empty after copy-out")
	}
	// Scribble over the old location, then restore.
	junk := make([]byte, 200)
	space.Write(base, junk)
	if err := r.CopyIn(base, 200, 0x1000); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	space.Read(base, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("copy-in did not restore the exact bytes")
	}
}

func TestRegionMaxUsedHighWater(t *testing.T) {
	r := newTestRegion(t, 4096)
	a, _ := r.AllocBelow(100)
	b, _ := r.AllocBelow(300)
	r.FreeLowest(b, 300)
	r.FreeLowest(a, 100)
	r.AllocBelow(50)
	if r.MaxUsed() != 400 {
		t.Fatalf("high water = %d, want 400", r.MaxUsed())
	}
}

// Property: any sequence of stack-discipline alloc/free operations
// keeps the invariant and never produces overlapping live stacks.
func TestRegionInvariantProperty(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		r := newTestRegion(t, 1<<16)
		type stk struct {
			base mem.VA
			size uint64
		}
		var live []stk
		for _, op := range ops {
			if op%3 != 0 && len(live) < 100 {
				size := uint64(op%500) + 16
				base, err := r.AllocBelow(size)
				if err != nil {
					continue
				}
				for _, s := range live {
					if base < s.base+mem.VA(s.size) && s.base < base+mem.VA(size) {
						return false // overlap
					}
				}
				live = append(live, stk{base, size})
			} else if len(live) > 0 {
				s := live[len(live)-1]
				if err := r.FreeLowest(s.base, s.size); err != nil {
					return false
				}
				live = live[:len(live)-1]
			}
			if err := r.CheckInvariant(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionClearReclaimsDeadBytes(t *testing.T) {
	r := newTestRegion(t, 4096)
	r.AllocBelow(1000)
	r.Clear()
	if !r.Empty() {
		t.Fatal("clear did not empty region")
	}
	if err := r.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AllocBelow(4096); err != nil {
		t.Fatalf("full region not reusable after clear: %v", err)
	}
}

func TestRegionContains(t *testing.T) {
	r := newTestRegion(t, 4096)
	if !r.Contains(r.Base()) || !r.Contains(r.End()-1) {
		t.Fatal("contains misses own range")
	}
	if r.Contains(r.End()) || r.Contains(r.Base()-1) {
		t.Fatal("contains accepts outside addresses")
	}
}
