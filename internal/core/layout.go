package core

import (
	"fmt"

	"uniaddr/internal/mem"
)

// Fixed virtual layout items shared by all processes. Deques live at the
// same VA everywhere so a thief computes a victim's queue address from
// the rank alone (Fig. 6: get_remote_taskq).
const (
	// DefaultDequeBase is the base VA of the pinned work-stealing deque.
	DefaultDequeBase mem.VA = 0x6800_0000_0000
	// DefaultDequeCap is the entry capacity of the deque (entries track
	// the running chain's ancestors, so a few thousand is generous).
	DefaultDequeCap uint64 = 1 << 13
)

// Handle identifies a task record: the rank of the process whose RDMA
// region holds the record, plus the record's virtual address. Handles
// are plain integers so they can be stored in task frames and migrate
// with the stack.
type Handle uint64

// MakeHandle packs (rank, va) into a Handle. rank+1 is stored so that
// the zero Handle is invalid and catches uninitialised frame slots.
func MakeHandle(rank int, va mem.VA) Handle {
	if uint64(va) >= 1<<48 {
		panic(fmt.Sprintf("core: record VA %#x exceeds 48 bits", va))
	}
	return Handle(uint64(rank+1)<<48 | uint64(va))
}

// Valid reports whether h was produced by MakeHandle.
func (h Handle) Valid() bool { return h != 0 }

// Rank returns the home rank of the record.
func (h Handle) Rank() int { return int(h>>48) - 1 }

// VA returns the record's virtual address in the home process.
func (h Handle) VA() mem.VA { return mem.VA(h & (1<<48 - 1)) }

func (h Handle) String() string {
	if !h.Valid() {
		return "handle<invalid>"
	}
	return fmt.Sprintf("handle<rank %d va %#x>", h.Rank(), h.VA())
}
