package core

import (
	"encoding/binary"
	"fmt"

	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
	"uniaddr/internal/trace"
)

// WorkerStats counts one worker's activity over a run.
type WorkerStats struct {
	TasksExecuted uint64 // task functions run to completion here
	Spawns        uint64
	JoinsFast     uint64 // try_join succeeded immediately
	JoinsMiss     uint64 // join had to suspend
	Suspends      uint64
	ResumesLocal  uint64 // in-place resumes of deque entries
	ResumesWait   uint64 // resumes from the wait queue
	ParentStolen  uint64 // pops that failed because the parent migrated

	StealAttempts   uint64
	StealsOK        uint64
	StealAbortEmpty uint64
	StealAbortLock  uint64
	StealAbortSlot  uint64 // §5.1 multi-worker mode: address mismatch
	// Phases accumulates per-phase cycles of *successful* steals only
	// (the Fig. 10 quantity); aborted attempts go to StealAbortCycles.
	Phases           StealPhases
	StealAbortCycles uint64
	SuspendCycles    uint64
	ResumeCycles     uint64
	BytesStolen      uint64
	PageFaults       uint64 // iso-address demand-paging faults

	LifelinePushes   uint64 // threads pushed to quiescent neighbours
	LifelineReceives uint64 // threads received over a lifeline

	// Failure-handling counters (all zero without fault injection).
	StealFaults      uint64 // steal attempts that hit an injected fault
	StealRetries     uint64 // faulted attempts retried after backoff
	StealAbortsFault uint64 // attempts abandoned after exhausting retries
	StealRollbacks   uint64 // half-completed steals rolled back (THE abort)
	BackoffCycles    uint64 // virtual cycles spent backing off after faults
	VictimBlacklists uint64 // victims temporarily blacklisted
	LifelineFaults   uint64 // lifeline register/push ops that hit a fault

	WorkCycles uint64
	IdleCycles uint64
}

// Worker is one simulated process: a single core running the
// uni-address threads scheduler in its own address space
// (process-per-core, §5.1).
type Worker struct {
	m     *Machine
	rank  int
	node  int
	slot  int // uni-address region slot (§5.1 multi-worker mode)
	proc  *sim.Proc
	space *mem.AddressSpace
	ep    *rdma.Endpoint
	deque *Deque
	heap  *mem.Allocator // pinned RDMA-region heap (saved stacks, records)
	costs *Costs
	sch   scheme

	// uni-address state
	region *Region
	// iso-address state
	isoAlloc *mem.Allocator
	isoSlabs map[int]*mem.Region

	gas        *gas.Heap
	waitq      []saved
	stats      WorkerStats
	obs        *obs.WorkerLog // nil unless Config.Obs/Trace (nil-safe)
	lastVictim int            // last successful victim (VictimLastSuccess), -1 none
	slowFactor float64        // >1 = straggler (CPU costs scaled)

	// Graceful-degradation state, populated lazily and only under fault
	// injection: consecutive fabric failures per victim, and the virtual
	// time until which a repeatedly-failing victim is skipped.
	victimFails       map[int]int
	victimBannedUntil map[int]uint64

	// help-first staging buffer (see helpFirstStaging)
	hfStaging    mem.VA
	hfStagingLen uint64

	// lifeline state (Config.Lifelines)
	llOut          []int // hypercube out-links (-1 = unused axis)
	llRegistered   bool
	llSpawnCounter uint64
	llIdleRounds   uint64
}

// Gas returns the worker's global-heap handle (nil when disabled).
func (w *Worker) Gas() *gas.Heap { return w.gas }

// PeerGas returns another rank's global-heap handle — for bookkeeping
// releases of remotely-owned objects (cf. freeRecord).
func (w *Worker) PeerGas(rank int) *gas.Heap { return w.m.workers[rank].gas }

// Proc returns the worker's simulated process (for libraries layered on
// the runtime that issue their own fabric operations).
func (w *Worker) Proc() *sim.Proc { return w.proc }

// adv advances simulated time by c CPU cycles, scaled by the worker's
// speed factor (straggler modeling; fabric latencies are unaffected).
func (w *Worker) adv(c uint64) {
	if w.slowFactor > 1 {
		c = uint64(float64(c) * w.slowFactor)
	}
	w.proc.Advance(c)
}

// mark records a timeline state change when observability is enabled.
// The transitions feed both the typed event stream and, post-run, the
// Gantt recorder (Machine.Run replays them into internal/trace).
func (w *Worker) mark(s trace.State) {
	w.obs.State(uint8(s))
}

// Rank returns the worker's process rank.
func (w *Worker) Rank() int { return w.rank }

// Stats returns a snapshot of the worker's counters.
//
// The snapshot is only coherent at quiescence: while the simulation is
// running the counters mutate between events, so a mid-run read (e.g.
// from an Engine.After callback) can observe a half-updated pair such
// as StealAttempts without the matching outcome counter. Read it after
// Machine.Run returns, or use StatsAtQuiescence to have that checked.
func (w *Worker) Stats() WorkerStats { return w.stats }

// StatsAtQuiescence returns the worker's counters, panicking if the
// simulation is still running (when a coherent snapshot cannot be
// guaranteed).
func (w *Worker) StatsAtQuiescence() WorkerStats {
	if w.m.eng.Running() {
		panic("core: StatsAtQuiescence called while the simulation is running")
	}
	return w.stats
}

// Space returns the worker's address space (for memory accounting).
func (w *Worker) Space() *mem.AddressSpace { return w.space }

// Region returns the uni-address region (nil under iso-address).
func (w *Worker) Region() *Region { return w.region }

// Deque returns the worker's task queue.
func (w *Worker) Deque() *Deque { return w.deque }

// NetStats returns the worker's fabric counters.
func (w *Worker) NetStats() rdma.Stats { return w.ep.Stats() }

// run is the worker's simulated-process body.
func (w *Worker) run(p *sim.Proc) {
	w.proc = p
	p.SeedRNG(w.m.cfg.Seed*0x9e3779b97f4a7c15 + uint64(w.rank) + 1)
	if w.rank == 0 {
		base, size := w.newThread(w.m.rootFid, w.m.rootLocals, w.m.rootInit, true)
		w.invoke(base, size)
	}
	if w.m.cfg.HelpFirst {
		w.helpFirstSchedulerLoop()
		return
	}
	w.schedulerLoop()
}

func errMaxCycles(max uint64) error {
	return fmt.Errorf("core: exceeded MaxCycles=%d without completing (deadlock or undersized budget)", max)
}

// newThread creates a fresh thread: record, stack, header, arguments.
func (w *Worker) newThread(fid FuncID, localsLen uint32, init func(*Env), root bool) (mem.VA, uint64) {
	rec := w.newRecord()
	if root {
		w.m.rootRecord = rec
	}
	size := FrameBytes(localsLen)
	base := w.sch.newFrame(w, size)
	writeFrameHeader(w.space, base, fid, localsLen, rec)
	if w.obs != nil {
		id := w.m.obs.NewTask(0, w.rank, uint32(fid), uint64(rec))
		setFrameTaskID(w.space, base, uint64(id))
		w.obs.Instant(obs.KSpawn, 0, id, -1)
	}
	if init != nil {
		init(&Env{x: w, base: base, size: size})
	}
	return base, size
}

// invoke runs (or resumes) the thread whose stack starts at base. On
// return the thread's stack is no longer occupied on this worker: a
// Done thread was retired, an Unwound thread was either swapped out by
// a suspend or released after a steal.
func (w *Worker) invoke(base mem.VA, size uint64) Status {
	w.mark(trace.Work)
	hb, err := w.space.Slice(base, frameHdrSize)
	if err != nil {
		panic(err)
	}
	fid := FuncID(binary.LittleEndian.Uint32(hb[fhFuncIDOff:]))
	rp := binary.LittleEndian.Uint32(hb[fhResumeOff:])
	e := Env{x: w, base: base, size: size, rp: rp}
	var tid obs.TaskID
	var tstart uint64
	if w.obs != nil {
		tid = obs.TaskID(frameTaskID(w.space, base))
		tstart = w.proc.Now()
	}
	st := lookupFn(fid)(&e)
	if w.obs != nil {
		w.obs.Emit(obs.KTask, tstart, w.proc.Now()-tstart, uint64(fid), tid, -1)
	}
	if st == Done {
		if !e.returned {
			w.completeRecord(e.Self(), 0)
		}
		w.stats.TasksExecuted++
		if w.obs != nil {
			w.m.obs.TaskDone(tid, w.rank)
			w.obs.Instant(obs.KTaskDone, 0, tid, -1)
		}
		w.sch.retireFrame(w, base, size)
	}
	return st
}

// Spawn creates a child task and runs it immediately (child-first,
// Fig. 4): the parent's context is saved (resumeRP), its continuation
// is pushed on the deque where any thief can take it, and the child
// executes like a procedure call. On return true the parent was not
// stolen and continues. On false the parent's continuation now runs on
// another process — the caller must immediately `return core.Unwound`.
//
// The child's handle is stored into parent local slot handleSlot
// *before* the continuation is published, so a migrated parent finds it
// in its stack.
func (e *Env) Spawn(resumeRP, handleSlot int, fid FuncID, localsLen uint32, init func(child *Env)) bool {
	return e.x.ExecSpawn(e, resumeRP, handleSlot, fid, localsLen, init)
}

// ExecSpawn is the simulator's child-first spawn (Fig. 4).
func (w *Worker) ExecSpawn(e *Env, resumeRP, handleSlot int, fid FuncID, localsLen uint32, init func(child *Env)) bool {
	if w.m.cfg.HelpFirst {
		return w.spawnHelpFirst(e, handleSlot, fid, localsLen, init)
	}
	w.stats.Spawns++
	w.adv(w.costs.SaveContext + w.costs.DequePush)
	e.setRP(uint32(resumeRP))
	size := FrameBytes(localsLen)
	rec := w.newRecord()
	e.SetHandle(handleSlot, rec)
	if err := w.deque.Push(Entry{FrameBase: e.base, FrameSize: e.size}); err != nil {
		panic(err)
	}
	if w.m.cfg.Lifelines {
		w.llSpawnCounter++
		if w.llSpawnCounter%8 == 0 {
			w.llServe()
		}
	}
	cbase := w.sch.newFrame(w, size)
	writeFrameHeader(w.space, cbase, fid, localsLen, rec)
	if w.obs != nil {
		parent := obs.TaskID(frameTaskID(w.space, e.base))
		id := w.m.obs.NewTask(parent, w.rank, uint32(fid), uint64(rec))
		setFrameTaskID(w.space, cbase, uint64(id))
		w.obs.Instant(obs.KSpawn, uint64(parent), id, -1)
	}
	if init != nil {
		init(&Env{x: w, base: cbase, size: size})
	}
	w.invoke(cbase, size)
	// Pop the continuation we pushed (Fig. 4 line 14).
	w.adv(w.costs.DequePop + w.costs.RestoreContext)
	if ent, ok := w.deque.Pop(w.proc, w.ep, w.rank); ok {
		if ent.FrameBase != e.base || ent.FrameSize != e.size {
			panic(fmt.Sprintf("core: deque corruption: popped %#x/%d, expected %#x/%d",
				ent.FrameBase, ent.FrameSize, e.base, e.size))
		}
		return true
	}
	// The pop failed: this thread's continuation (and, by FIFO order,
	// every ancestor's) was stolen. Unwind to the scheduler.
	w.stats.ParentStolen++
	if w.obs != nil {
		w.obs.Instant(obs.KPopFail, 0, obs.TaskID(frameTaskID(w.space, e.base)), -1)
	}
	w.sch.releaseStolen(w, e.base, e.size)
	return false
}

// Join waits for the task behind h (Fig. 7). If the task has finished,
// Join frees its record and returns (result, true). Otherwise the
// current thread suspends — it is swapped out of the uni-address region
// into pinned memory and parked on the wait queue — and Join returns
// false: the caller must immediately `return core.Unwound`. When the
// thread is later resumed it re-enters the task function at resumeRP,
// which must re-execute this Join.
func (e *Env) Join(resumeRP int, h Handle) (uint64, bool) {
	return e.x.ExecJoin(e, resumeRP, h)
}

// ExecJoin is the simulator's join (Fig. 7).
func (w *Worker) ExecJoin(e *Env, resumeRP int, h Handle) (uint64, bool) {
	if w.m.cfg.HelpFirst {
		return w.helpFirstJoin(h), true
	}
	if done, v := w.tryJoin(h); done {
		w.stats.JoinsFast++
		if w.obs != nil {
			jid := w.m.obs.TaskJoined(uint64(h), w.rank)
			w.obs.Instant(obs.KJoinFast, 0, jid, -1)
		}
		w.freeRecord(h)
		return v, true
	}
	w.stats.JoinsMiss++
	if w.obs != nil {
		w.obs.Instant(obs.KJoinMiss, 0, obs.TaskID(frameTaskID(w.space, e.base)), -1)
	}
	e.setRP(uint32(resumeRP))
	w.mark(trace.Suspend)
	sc := w.sch.suspend(w, e.base, e.size)
	w.waitq = append(w.waitq, sc)
	return 0, false
}

// schedulerLoop is the idle engine (Fig. 7's fallback chain): resume a
// ready thread from the deque, else steal, else resume a waiter, else
// back off.
func (w *Worker) schedulerLoop() {
	p := w.proc
	for !w.m.done {
		if p.Now() > w.m.cfg.MaxCycles {
			w.m.fail(errMaxCycles(w.m.cfg.MaxCycles))
			return
		}
		if ent, ok := w.deque.Pop(p, w.ep, w.rank); ok {
			w.adv(w.costs.RestoreContext)
			w.stats.ResumesLocal++
			w.invoke(ent.FrameBase, ent.FrameSize)
			continue
		}
		w.sch.clearDead(w)
		if w.m.done {
			return
		}
		if w.m.cfg.Lifelines && w.sch.canSteal(w) {
			// Deliveries must be drained whenever the region can host
			// them: a registration left on one axis keeps producing
			// pushes even after other work arrived, and an unconsumed
			// delivery is a lost (live!) thread.
			if w.llConsume() {
				continue
			}
			if len(w.waitq) == 0 {
				// Lifeline idle protocol: register once, then wait for
				// a push, probing randomly only every 8th round.
				if !w.llRegistered {
					w.llRegister()
				}
				w.llIdleRounds++
				if w.llIdleRounds%8 == 0 && w.trySteal() {
					w.llIdleRounds = 0
					continue
				}
				w.mark(trace.Idle)
				w.stats.IdleCycles += w.costs.IdleBackoff
				w.adv(w.costs.IdleBackoff)
				continue
			}
		}
		if w.sch.canSteal(w) && w.trySteal() {
			continue
		}
		if len(w.waitq) > 0 {
			// FIFO: a waiter that re-suspends goes to the back, so every
			// suspended thread gets rescheduled and chains of dependent
			// waiters always make progress (a LIFO here can spin on the
			// most recent waiter forever and deadlock the run).
			sc := w.waitq[0]
			w.waitq = w.waitq[1:]
			w.mark(trace.Suspend)
			var rstart uint64
			if w.obs != nil {
				rstart = p.Now()
			}
			w.sch.resumeSaved(w, sc)
			w.stats.ResumesWait++
			if w.obs != nil {
				w.obs.Emit(obs.KResumeWait, rstart, p.Now()-rstart, 0,
					obs.TaskID(frameTaskID(w.space, sc.base)), -1)
			}
			w.invoke(sc.base, sc.size)
			continue
		}
		w.mark(trace.Idle)
		w.stats.IdleCycles += w.costs.IdleBackoff
		w.adv(w.costs.IdleBackoff)
	}
}

// victimBanned reports whether v is inside its blacklist window.
// Free (no map lookup, no RNG) unless faults have actually banned
// someone.
func (w *Worker) victimBanned(v int) bool {
	if len(w.victimBannedUntil) == 0 {
		return false
	}
	until, ok := w.victimBannedUntil[v]
	if !ok {
		return false
	}
	if w.proc.Now() >= until {
		delete(w.victimBannedUntil, v)
		return false
	}
	return true
}

// noteStealFault records a fabric failure against victim v; after
// VictimBlacklistAfter consecutive failures v is skipped for
// VictimBlacklistCycles of virtual time (graceful degradation: stop
// hammering a browned-out endpoint).
func (w *Worker) noteStealFault(v int) {
	w.lastVictim = -1
	if w.victimFails == nil {
		w.victimFails = make(map[int]int)
		w.victimBannedUntil = make(map[int]uint64)
	}
	w.victimFails[v]++
	if w.victimFails[v] >= w.m.cfg.VictimBlacklistAfter {
		delete(w.victimFails, v)
		w.victimBannedUntil[v] = w.proc.Now() + w.m.cfg.VictimBlacklistCycles
		w.stats.VictimBlacklists++
	}
}

// stealBackoff parks the worker for the attempt-th capped exponential
// backoff delay (virtual time, deterministic) after a faulted steal.
func (w *Worker) stealBackoff(attempt int) {
	d := w.m.cfg.StealBackoffCap
	if attempt < 63 {
		if d = w.m.cfg.StealBackoffBase << uint(attempt); d > w.m.cfg.StealBackoffCap {
			d = w.m.cfg.StealBackoffCap
		}
	}
	w.stats.BackoffCycles += d
	w.proc.Advance(d)
}

// pickVictim chooses a victim rank per the configured policy, or -1
// when there is no candidate. Blacklisted victims are re-drawn a few
// times; if the machine is so degraded that every draw is blacklisted,
// the last draw is used anyway so a recovering endpoint is eventually
// probed again.
func (w *Worker) pickVictim(n int) int {
	v := w.pickVictimOnce(n)
	if v < 0 || !w.victimBanned(v) {
		return v
	}
	for i := 0; i < 3; i++ {
		v = w.pickVictimOnce(n)
		if v < 0 || !w.victimBanned(v) {
			return v
		}
	}
	return v
}

func (w *Worker) pickVictimOnce(n int) int {
	rng := w.proc.RNG()
	randomGlobal := func() int {
		v := rng.Intn(n - 1)
		if v >= w.rank {
			v++
		}
		return v
	}
	switch w.m.cfg.Victim {
	case VictimLocalFirst:
		// Alternate: odd attempts go to a random same-node peer (cheap
		// when IntraNodeFactor < 1), even attempts roam globally so
		// remote imbalance is still found.
		if w.stats.StealAttempts%2 == 1 {
			per := w.m.cfg.WorkersPerNode
			lo := w.node * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if hi-lo > 1 {
				v := lo + rng.Intn(hi-lo-1)
				if v >= w.rank {
					v++
				}
				return v
			}
		}
		return randomGlobal()
	case VictimLastSuccess:
		if w.lastVictim >= 0 && w.lastVictim != w.rank {
			return w.lastVictim
		}
		return randomGlobal()
	default:
		return randomGlobal()
	}
}

// trySteal picks a victim per the configured policy and attempts the
// one-sided steal of Fig. 6. On success the stolen thread is installed
// at its original virtual address and executed.
//
// Fabric faults are retried against the same victim up to
// Config.StealMaxRetries times with capped exponential virtual-time
// backoff (transient faults heal; persistent ones trip the victim
// blacklist via noteStealFault, steering future attempts elsewhere). A
// fault after the entry was claimed rolls the victim's deque back over
// the THE abort path, so the thread is never lost.
func (w *Worker) trySteal() bool {
	n := len(w.m.workers)
	if n < 2 {
		return false
	}
	w.stats.StealAttempts++
	w.mark(trace.Steal)
	stealStart := w.proc.Now()
	w.adv(w.costs.VictimSelect)
	victim := w.pickVictim(n)
	if victim < 0 {
		return false
	}
	if w.obs != nil {
		w.obs.Emit(obs.KStealBegin, stealStart, 0, 0, 0, victim)
	}
	var ph StealPhases
	var accept func(Entry) bool
	if w.m.cfg.SlotsPerProcess > 1 {
		// §5.1 multi-worker mode: a thread's stack address binds it to
		// one region slot; this worker can only host matching threads.
		accept = func(e Entry) bool {
			return w.region.Contains(e.FrameBase)
		}
	}
	var ent Entry
	var outcome StealOutcome
	for attempt := 0; ; attempt++ {
		ent, outcome = w.deque.StealRemote(w.proc, w.ep, victim, &ph, accept)
		if outcome != StealFault {
			break
		}
		w.stats.StealFaults++
		if w.obs != nil {
			w.obs.Instant(obs.KStealFault, uint64(attempt), 0, victim)
		}
		w.noteStealFault(victim)
		if attempt >= w.m.cfg.StealMaxRetries || w.victimBanned(victim) {
			w.stats.StealAbortsFault++
			w.stats.StealAbortCycles += ph.Total()
			if w.obs != nil {
				w.obs.Emit(obs.KStealAbandon, stealStart, w.proc.Now()-stealStart, 0, 0, victim)
			}
			return false
		}
		bstart := w.proc.Now()
		w.stealBackoff(attempt)
		w.stats.StealRetries++
		if w.obs != nil {
			w.obs.Emit(obs.KStealRetry, bstart, w.proc.Now()-bstart, uint64(attempt+1), 0, victim)
		}
	}
	switch outcome {
	case StealEmpty, StealEmptyLocked:
		w.stats.StealAbortEmpty++
		w.stats.StealAbortCycles += ph.Total()
		w.lastVictim = -1
		if w.obs != nil {
			w.obs.Emit(obs.KStealEmpty, stealStart, w.proc.Now()-stealStart, 0, 0, victim)
		}
		return false
	case StealLockBusy:
		w.stats.StealAbortLock++
		w.stats.StealAbortCycles += ph.Total()
		if w.obs != nil {
			w.obs.Emit(obs.KStealBusy, stealStart, w.proc.Now()-stealStart, 0, 0, victim)
		}
		return false
	case StealReject:
		w.stats.StealAbortSlot++
		w.stats.StealAbortCycles += ph.Total()
		w.lastVictim = -1
		if w.obs != nil {
			w.obs.Emit(obs.KStealReject, stealStart, w.proc.Now()-stealStart, 0, 0, victim)
		}
		return false
	}
	// Transfer the stack while still holding the victim's queue lock,
	// then unlock and resume (resume_remote_context in Fig. 6).
	if err := w.sch.transferStolen(w, victim, ent, &ph); err != nil {
		// Half-completed steal: the entry is claimed and the lock held,
		// but the stack never arrived. Roll the victim's deque back so
		// it keeps the thread, and give up on this victim for now.
		w.stats.StealFaults++
		w.stats.StealRollbacks++
		if w.obs != nil {
			w.obs.Instant(obs.KStealFault, 0, 0, victim)
		}
		w.deque.AbortRemote(w.proc, w.ep, victim, &ph)
		if w.obs != nil {
			w.obs.Instant(obs.KStealRollback, 0, 0, victim)
		}
		w.noteStealFault(victim)
		w.stats.StealAbortsFault++
		w.stats.StealAbortCycles += ph.Total()
		if w.obs != nil {
			w.obs.Emit(obs.KStealAbandon, stealStart, w.proc.Now()-stealStart, 0, 0, victim)
		}
		return false
	}
	w.lastVictim = victim
	if w.victimFails != nil {
		delete(w.victimFails, victim)
	}
	w.deque.Unlock(w.proc, w.ep, victim, &ph)
	w.stats.Phases.Merge(ph)
	start := w.proc.Now()
	w.adv(w.costs.ResumeCPU)
	w.stats.ResumeCycles += w.proc.Now() - start
	w.stats.StealsOK++
	if w.obs != nil {
		lat := w.proc.Now() - stealStart
		tid := obs.TaskID(frameTaskID(w.space, ent.FrameBase))
		w.m.obs.StealLatency.Record(lat)
		w.obs.Emit(obs.KStealOK, stealStart, lat, ent.FrameSize, tid, victim)
		w.m.obs.TaskMoved(tid, victim, w.rank)
	}
	w.invoke(ent.FrameBase, ent.FrameSize)
	return true
}
