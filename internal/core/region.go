// Package core implements the paper's primary contribution: the
// uni-address thread-management scheme (§5) and the RDMA-based
// work-stealing runtime built on it — the uni-address region manager
// (this file), the THE-protocol deque laid out in pinned memory
// (deque.go), worker processes with child-first task creation (Fig. 4),
// join/suspend (Figs. 7–8), and one-sided stealing (Fig. 6).
package core

import (
	"fmt"

	"uniaddr/internal/mem"
)

// Default virtual layout shared by every simulated process. The whole
// point of uni-address is that UniBase is the SAME virtual address in
// all processes, so stacks move between nodes without pointer fix-up.
const (
	// DefaultUniBase is the base VA of the uni-address region.
	DefaultUniBase mem.VA = 0x7f00_0000_0000
	// DefaultUniSize accommodates the deepest benchmark in the paper
	// (UTS d=18 used 147,392 bytes; Table 4) with headroom. Every
	// simulated process backs its region eagerly, so the default stays
	// small enough for 3840-worker machines on a laptop.
	DefaultUniSize uint64 = 256 << 10
	// DefaultRDMABase is the base VA of the pinned RDMA region holding
	// suspended stacks, task records and the work-stealing deque.
	DefaultRDMABase mem.VA = 0x6000_0000_0000
	// DefaultRDMASize sizes the RDMA region (task records + swapped-out
	// stacks; a few MiB is ample at simulation scale, and it is backed
	// eagerly per process).
	DefaultRDMASize uint64 = 2 << 20
)

// Region is one process's uni-address region (paper §5.2, Fig. 3).
//
// The used part of the region is always a single contiguous range
// [p, top): stacks are pushed below p like frames of a linear stack
// (the running task occupies the lowest used addresses), and only the
// lowest stack is ever freed or swapped out, so the range never
// fragments. When the region is empty a stolen or saved thread may be
// installed at its original address anywhere inside [base, end); top
// then becomes that thread's upper bound.
type Region struct {
	space *mem.AddressSpace
	reg   *mem.Region
	base  mem.VA // S
	end   mem.VA // E
	p     mem.VA // next free address (stacks grow down); used = [p, top)
	top   mem.VA
	max   uint64 // high-water usage in bytes (Table 4 "stack usage")
}

// NewRegion reserves and pins the uni-address region [base, base+size)
// in space. It is pinned because thieves RDMA-READ stacks directly out
// of it (§5.3).
func NewRegion(space *mem.AddressSpace, base mem.VA, size uint64) (*Region, error) {
	reg, err := space.Reserve("uniaddr", base, size, true)
	if err != nil {
		return nil, err
	}
	end := base + mem.VA(size)
	return &Region{space: space, reg: reg, base: base, end: end, p: end, top: end}, nil
}

// Space returns the owning address space.
func (r *Region) Space() *mem.AddressSpace { return r.space }

// Base returns S, the lowest address of the region.
func (r *Region) Base() mem.VA { return r.base }

// End returns E, one past the highest address.
func (r *Region) End() mem.VA { return r.end }

// Lowest returns p, the base of the lowest (running) stack. When the
// region is empty Lowest == Top.
func (r *Region) Lowest() mem.VA { return r.p }

// Top returns the upper bound of the used range.
func (r *Region) Top() mem.VA { return r.top }

// Used returns the number of bytes currently occupied.
func (r *Region) Used() uint64 { return uint64(r.top - r.p) }

// MaxUsed returns the high-water occupancy in bytes.
func (r *Region) MaxUsed() uint64 { return r.max }

// Contains reports whether va lies inside the region — the slot-match
// test thieves apply in §5.1 multi-worker mode.
func (r *Region) Contains(va mem.VA) bool { return va >= r.base && va < r.end }

// Empty reports whether no stacks occupy the region. Work stealing is
// only permitted in this state (§5.2 rule 5), which guarantees the
// region can host a stolen thread at whatever address it was created.
func (r *Region) Empty() bool { return r.p == r.top }

// AllocBelow pushes a new stack of size bytes immediately below the
// current lowest stack and returns its base address (§5.2 rule 3).
func (r *Region) AllocBelow(size uint64) (mem.VA, error) {
	if uint64(r.p-r.base) < size {
		return 0, fmt.Errorf("core: uni-address region exhausted: need %d, have %d free below p", size, r.p-r.base)
	}
	r.p -= mem.VA(size)
	if u := r.Used(); u > r.max {
		r.max = u
	}
	return r.p, nil
}

// FreeLowest releases the lowest stack, which must start at base and be
// size bytes (the invariant that only the running, lowest thread is
// ever removed). When the region becomes empty, p and top snap back to
// E so the next fresh task starts at the region's top.
func (r *Region) FreeLowest(base mem.VA, size uint64) error {
	if base != r.p {
		return fmt.Errorf("core: FreeLowest(%#x) but lowest stack is %#x", base, r.p)
	}
	if uint64(r.top-r.p) < size {
		return fmt.Errorf("core: FreeLowest size %d exceeds used %d", size, r.Used())
	}
	r.p += mem.VA(size)
	if r.p == r.top {
		r.p, r.top = r.end, r.end
	}
	return nil
}

// Install places a thread occupying [base, base+size) into an empty
// region — the landing step of a steal (the RDMA READ target) or of
// resuming a saved context. The address is the thread's original
// creation address; because every process maps the region at the same
// VA, this always succeeds when the region is empty.
func (r *Region) Install(base mem.VA, size uint64) error {
	if !r.Empty() {
		return fmt.Errorf("core: Install into non-empty region (used %d bytes)", r.Used())
	}
	if base < r.base || base+mem.VA(size) > r.end {
		return fmt.Errorf("core: Install [%#x,+%d) outside region [%#x,%#x)", base, size, r.base, r.end)
	}
	r.p = base
	r.top = base + mem.VA(size)
	if u := r.Used(); u > r.max {
		r.max = u
	}
	return nil
}

// CopyOut copies the lowest stack's bytes [base, base+size) to dst in
// the same address space (the swap-out of Fig. 8; dst is a pinned
// buffer in the RDMA region) and frees the range.
func (r *Region) CopyOut(base mem.VA, size uint64, dst mem.VA) error {
	if base != r.p {
		return fmt.Errorf("core: CopyOut of non-lowest stack %#x (lowest %#x)", base, r.p)
	}
	src, err := r.space.Slice(base, size)
	if err != nil {
		return err
	}
	dstb, err := r.space.Slice(dst, size)
	if err != nil {
		return err
	}
	copy(dstb, src)
	return r.FreeLowest(base, size)
}

// CopyIn restores a saved stack from src (a pinned buffer) back to its
// original address base in an empty region (resume_saved_context,
// Fig. 7).
func (r *Region) CopyIn(base mem.VA, size uint64, src mem.VA) error {
	if err := r.Install(base, size); err != nil {
		return err
	}
	srcb, err := r.space.Slice(src, size)
	if err != nil {
		return err
	}
	dstb, err := r.space.Slice(base, size)
	if err != nil {
		return err
	}
	copy(dstb, srcb)
	return nil
}

// Clear empties the region, reclaiming space held by the dead local
// copies of stolen threads. The scheduler calls it once the deque is
// empty and no thread is running, at which point everything left in the
// region belongs to threads that now live elsewhere.
func (r *Region) Clear() {
	r.p, r.top = r.end, r.end
}

// CheckInvariant verifies internal consistency; tests call it after
// every mutation.
func (r *Region) CheckInvariant() error {
	if r.p > r.top {
		return fmt.Errorf("core: p %#x above top %#x", r.p, r.top)
	}
	if r.p < r.base || r.top > r.end {
		return fmt.Errorf("core: used range [%#x,%#x) escapes region [%#x,%#x)", r.p, r.top, r.base, r.end)
	}
	if r.p == r.top && r.p != r.end {
		return fmt.Errorf("core: empty region not reset to end (p=%#x)", r.p)
	}
	return nil
}
