package core

import (
	"fmt"

	"uniaddr/internal/fault"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
	"uniaddr/internal/trace"
)

// Config describes a simulated machine: how many worker processes, the
// CPU cost profile, the fabric parameters, the thread-management scheme
// and the virtual-memory layout.
type Config struct {
	// Workers is the number of worker processes (one per core, §5.1).
	Workers int
	// WorkersPerNode groups workers into nodes. With software
	// fetch-and-add each node also gets a communication-server core, so
	// the paper's 16-core FX10 nodes run 15 workers (§6).
	WorkersPerNode int
	// Costs is the CPU cost profile.
	Costs Costs
	// Net is the fabric parameter set.
	Net rdma.Params
	// Scheme picks uni-address or the iso-address baseline.
	Scheme SchemeKind
	// Seed drives every random decision (victim selection); equal seeds
	// give bit-identical runs.
	Seed uint64

	UniBase   mem.VA
	UniSize   uint64
	RDMABase  mem.VA
	RDMASize  uint64
	DequeBase mem.VA
	DequeCap  uint64
	// IsoBase/IsoSlabSize lay out the iso-address global stack area:
	// rank r's stacks live in [IsoBase+r*IsoSlabSize, +IsoSlabSize).
	IsoBase     mem.VA
	IsoSlabSize uint64

	// SlotsPerProcess models the paper's §5.1 alternative of hosting
	// several workers (and uni-address regions) in one address space to
	// reduce the process count: worker rank r owns region slot r mod
	// SlotsPerProcess at UniBase + slot·UniSize. A task allocated in
	// slot s can only ever run in slot s of some process, so thieves
	// must abort steals whose stolen address belongs to another slot —
	// the utilization loss the paper predicts. 1 (the default) is the
	// paper's process-per-core scheme.
	SlotsPerProcess int

	// Grain is the task-granularity cutoff workloads read back through
	// Env.Grain: subtrees whose size metric is at or below it run as
	// one sequential task instead of spawning. 0 (the default) disables
	// coalescing; GrainAuto asks the workload to pick a cutoff and
	// apply it adaptively, keyed off Env.Coalesce.
	Grain uint64

	// MaxCycles aborts the run if the virtual clock passes it (guards
	// against deadlocked workloads).
	MaxCycles uint64

	// Trace enables the per-worker execution timeline recorder
	// (internal/trace); retrieve it with Machine.Tracer after Run.
	// The Gantt timeline is derived from the observability event
	// stream, so Trace implies the obs recorder.
	Trace bool

	// Obs enables the structured event recorder (internal/obs):
	// per-worker typed event rings, task lineage and latency
	// histograms; retrieve it with Machine.Obs after Run. Recording is
	// host-side only — it never perturbs virtual time, so a run with
	// Obs on is cycle-identical to the same run with it off.
	Obs bool
	// ObsRingCap bounds each worker's event ring (<= 0 selects
	// obs.DefaultRingCap; oldest events are dropped on overflow).
	ObsRingCap int

	// Victim selects the victim-selection policy for work stealing.
	Victim VictimPolicy

	// SlowWorkerEvery/SlowWorkerFactor model performance variability
	// (stragglers): every SlowWorkerEvery-th worker runs its CPU-side
	// costs SlowWorkerFactor× slower (fabric latency is unaffected).
	// 0 disables. Work stealing's job is to absorb exactly this.
	SlowWorkerEvery  int
	SlowWorkerFactor float64

	// Lifelines enables lifeline-based global load balancing ([24],
	// Saraswat et al. PPoPP'11) as the idle protocol: failed thieves
	// register on hypercube neighbours and receive pushed work instead
	// of probing randomly. Uni-address work-first only.
	Lifelines       bool
	LifelineBase    mem.VA
	LifelineZ       int    // hypercube dimension (0 = ceil(log2 P))
	LifelineMaxPush uint64 // mailbox payload capacity per axis

	// HelpFirst switches the scheduler to the "tied tasks" strategy of
	// §2 (Satin/HotSLAW-style): spawns queue a descriptor and the
	// parent continues; a join helps by running queued tasks inline.
	// Steals move descriptors, never stacks. Default false = the
	// paper's child-first (work-first) scheme.
	HelpFirst bool

	// GasBase/GasSize lay out the per-process global-heap segment
	// (internal/gas) used for cross-thread data (§5.1's global
	// references). GasSize 0 disables the heap.
	GasBase mem.VA
	GasSize uint64

	// Fault configures deterministic fabric fault injection
	// (internal/fault). The zero value disables it entirely: no injector
	// is attached and the fabric's fast path is byte-identical to a
	// fault-free build.
	Fault fault.Config

	// StealMaxRetries bounds how often a thief retries a steal against
	// the same victim after an injected fabric fault before giving up
	// (0 = default 3; negative = no retries).
	StealMaxRetries int
	// StealBackoffBase/StealBackoffCap shape the capped exponential
	// virtual-time backoff between steal retries: the n-th retry waits
	// min(StealBackoffBase<<n, StealBackoffCap) cycles (0 = defaults
	// 2000 and 1<<17).
	StealBackoffBase uint64
	StealBackoffCap  uint64
	// VictimBlacklistAfter consecutive steal faults against one victim
	// blacklist it for VictimBlacklistCycles of virtual time; pickVictim
	// redraws around blacklisted ranks (0 = defaults 3 and 2_000_000;
	// VictimBlacklistAfter < 0 disables blacklisting).
	VictimBlacklistAfter  int
	VictimBlacklistCycles uint64
}

// VictimPolicy picks how an idle worker chooses whom to rob.
type VictimPolicy int

const (
	// VictimRandom is the paper's uniform random selection.
	VictimRandom VictimPolicy = iota
	// VictimLocalFirst alternates between a random same-node victim and
	// a random global one (HotSLAW-style hierarchical stealing) —
	// profitable when the fabric's IntraNodeFactor < 1.
	VictimLocalFirst
	// VictimLastSuccess retries the last successful victim before
	// falling back to random selection.
	VictimLastSuccess
)

func (v VictimPolicy) String() string {
	switch v {
	case VictimLocalFirst:
		return "local-first"
	case VictimLastSuccess:
		return "last-success"
	default:
		return "random"
	}
}

// DefaultConfig returns an FX10-flavoured configuration: SPARC costs,
// software fetch-and-add fabric, uni-address scheme, 15 workers per
// node.
func DefaultConfig(workers int) Config {
	return Config{
		Workers:         workers,
		WorkersPerNode:  15,
		Costs:           SPARCCosts(),
		Net:             rdma.DefaultParams(),
		Scheme:          SchemeUni,
		Seed:            1,
		UniBase:         DefaultUniBase,
		UniSize:         DefaultUniSize,
		RDMABase:        DefaultRDMABase,
		RDMASize:        DefaultRDMASize,
		DequeBase:       DefaultDequeBase,
		DequeCap:        DefaultDequeCap,
		IsoBase:         DefaultIsoBase,
		IsoSlabSize:     1 << 20,
		GasBase:         gas.DefaultBase,
		GasSize:         1 << 20,
		LifelineBase:    DefaultLifelineBase,
		LifelineMaxPush: 16 << 10,
		MaxCycles:       1 << 42,

		StealMaxRetries:       3,
		StealBackoffBase:      2000,
		StealBackoffCap:       1 << 17,
		VictimBlacklistAfter:  3,
		VictimBlacklistCycles: 2_000_000,
	}
}

// Machine is a built simulated cluster, ready for one Run.
type Machine struct {
	cfg     Config
	eng     *sim.Engine
	fab     *rdma.Fabric
	workers []*Worker
	servers []*rdma.Server

	rootFid    FuncID
	rootLocals uint32
	rootInit   func(*Env)
	rootRecord Handle
	rootResult uint64
	done       bool
	err        error
	elapsed    uint64
	ran        bool
	tracer     *trace.Recorder
	obs        *obs.Recorder
	injector   *fault.Injector
}

// NewMachine builds the cluster: one address space, deque, RDMA heap
// and endpoint per worker, plus one communication server per node when
// the fabric uses software fetch-and-add.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("core: need at least 1 worker")
	}
	if cfg.WorkersPerNode < 1 {
		cfg.WorkersPerNode = 15
	}
	if cfg.SlotsPerProcess < 1 {
		cfg.SlotsPerProcess = 1
	}
	if cfg.SlotsPerProcess > 1 && cfg.Scheme == SchemeIso {
		return nil, fmt.Errorf("core: SlotsPerProcess applies to the uni-address scheme only")
	}
	if cfg.Lifelines {
		if cfg.Scheme == SchemeIso || cfg.HelpFirst || cfg.SlotsPerProcess > 1 {
			return nil, fmt.Errorf("core: Lifelines requires the uni-address, work-first, single-slot configuration")
		}
		if cfg.LifelineZ <= 0 {
			cfg.LifelineZ = 1
			for 1<<cfg.LifelineZ < cfg.Workers {
				cfg.LifelineZ++
			}
		}
		if cfg.LifelineMaxPush == 0 {
			cfg.LifelineMaxPush = 16 << 10
		}
	}
	if cfg.StealMaxRetries == 0 {
		cfg.StealMaxRetries = 3
	}
	if cfg.StealBackoffBase == 0 {
		cfg.StealBackoffBase = 2000
	}
	if cfg.StealBackoffCap == 0 {
		cfg.StealBackoffCap = 1 << 17
	}
	if cfg.VictimBlacklistAfter == 0 {
		cfg.VictimBlacklistAfter = 3
	}
	if cfg.VictimBlacklistCycles == 0 {
		cfg.VictimBlacklistCycles = 2_000_000
	}
	var inj *fault.Injector
	if cfg.Fault.Enabled() {
		if cfg.Fault.Seed == 0 {
			// Fault patterns follow the run seed unless pinned: equal
			// seeds reproduce the exact same fault schedule.
			cfg.Fault.Seed = cfg.Seed ^ 0x6661756c74 // "fault"
		}
		if cfg.Fault.ServerDropProb > 0 && !cfg.Net.HardwareFAA && cfg.Net.FAATimeout == 0 {
			// Dropped software-FAA notices need a timeout or the
			// initiator wedges forever. Must be set before NewFabric
			// copies the params.
			cfg.Net.FAATimeout = 4 * cfg.Net.SoftwareFAALatency()
		}
		var err error
		if inj, err = fault.New(cfg.Fault); err != nil {
			return nil, err
		}
	}
	m := &Machine{cfg: cfg, eng: sim.NewEngine(), injector: inj}
	m.fab = rdma.NewFabric(m.eng, cfg.Net)
	if inj != nil {
		m.fab.SetInjector(inj)
	}
	if cfg.Trace || cfg.Obs {
		// One recorder serves both consumers: the typed event stream
		// (Machine.Obs) and, post-run, the Gantt timeline
		// (Machine.Tracer) replayed from its state transitions.
		m.obs = obs.NewRecorder(cfg.Workers, cfg.ObsRingCap, m.eng.Now)
	}
	var sch scheme
	if cfg.Scheme == SchemeIso {
		sch = isoScheme{}
	} else {
		sch = uniScheme{}
	}
	for rank := 0; rank < cfg.Workers; rank++ {
		space := mem.NewAddressSpace(fmt.Sprintf("w%d", rank))
		w := &Worker{
			m:          m,
			rank:       rank,
			node:       rank / cfg.WorkersPerNode,
			space:      space,
			costs:      &m.cfg.Costs,
			sch:        sch,
			lastVictim: -1,
			slowFactor: 1,
		}
		if cfg.SlowWorkerEvery > 0 && rank%cfg.SlowWorkerEvery == cfg.SlowWorkerEvery-1 && cfg.SlowWorkerFactor > 1 {
			w.slowFactor = cfg.SlowWorkerFactor
		}
		w.obs = m.obs.Worker(rank)
		w.ep = m.fab.AddEndpoint(space)
		w.ep.SetNode(w.node)
		w.ep.SetLog(w.obs)
		heapReg, err := space.Reserve("rdmaheap", cfg.RDMABase, cfg.RDMASize, true)
		if err != nil {
			return nil, err
		}
		w.heap = mem.NewAllocator(heapReg)
		if w.deque, err = NewDeque(space, cfg.DequeBase, cfg.DequeCap); err != nil {
			return nil, err
		}
		w.deque.SetLog(w.obs)
		if cfg.GasSize > 0 {
			if w.gas, err = gas.NewHeap(space, w.ep, cfg.GasBase, cfg.GasSize, gas.DefaultCosts()); err != nil {
				return nil, err
			}
		}
		if cfg.Lifelines {
			if _, err := space.Reserve("lifeline", cfg.LifelineBase,
				llRegionBytes(cfg.LifelineZ, cfg.LifelineMaxPush), true); err != nil {
				return nil, err
			}
			w.llOut = lifelineNeighbors(rank, cfg.Workers, cfg.LifelineZ)
		}
		switch cfg.Scheme {
		case SchemeIso:
			// Reserve the whole global stack range (the §4 problem):
			// own slab for real, every other rank's as phantom until
			// first touch.
			w.isoSlabs = make(map[int]*mem.Region)
			own, err := space.Reserve(fmt.Sprintf("isoslab-%d", rank),
				m.IsoSlabBase(rank), cfg.IsoSlabSize, false)
			if err != nil {
				return nil, err
			}
			w.isoSlabs[rank] = own
			w.isoAlloc = mem.NewAllocator(own)
			// Next-fit models isomalloc: live stacks spread over the
			// reserved range instead of recycling the lowest addresses,
			// so migrations keep first-touching pages (§4 item 2).
			w.isoAlloc.SetNextFit(true)
			space.AdjustPhantom(int64(uint64(cfg.Workers-1) * cfg.IsoSlabSize))
		default:
			w.slot = rank % cfg.SlotsPerProcess
			base := cfg.UniBase + mem.VA(uint64(w.slot)*cfg.UniSize)
			if w.region, err = NewRegion(space, base, cfg.UniSize); err != nil {
				return nil, err
			}
		}
		m.workers = append(m.workers, w)
	}
	if !cfg.Net.HardwareFAA {
		nodes := (cfg.Workers + cfg.WorkersPerNode - 1) / cfg.WorkersPerNode
		for n := 0; n < nodes; n++ {
			srv := rdma.NewServer(m.eng, fmt.Sprintf("comm%d", n))
			m.servers = append(m.servers, srv)
			for _, w := range m.workers {
				if w.node == n {
					w.ep.SetServer(srv)
				}
			}
		}
	}
	return m, nil
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// Workers returns the worker slice (rank order).
func (m *Machine) Workers() []*Worker { return m.workers }

// IsoSlabBase returns the base VA of rank's iso-address slab.
func (m *Machine) IsoSlabBase(rank int) mem.VA {
	return m.cfg.IsoBase + mem.VA(uint64(rank)*m.cfg.IsoSlabSize)
}

// IsoRankOfVA returns the rank owning the iso-address slab containing
// va.
func (m *Machine) IsoRankOfVA(va mem.VA) int {
	if va < m.cfg.IsoBase {
		panic(fmt.Sprintf("core: %#x below iso area", va))
	}
	r := int(uint64(va-m.cfg.IsoBase) / m.cfg.IsoSlabSize)
	if r >= m.cfg.Workers {
		panic(fmt.Sprintf("core: %#x beyond iso area", va))
	}
	return r
}

func (m *Machine) finish(result uint64) {
	if !m.done {
		m.rootResult = result
		m.done = true
	}
}

func (m *Machine) fail(err error) {
	if m.err == nil {
		m.err = err
	}
	m.done = true
}

// Run executes a root task created from fid with localsLen bytes of
// locals, initialised by init, on worker 0, and simulates until the
// root task completes. It returns the root task's result. A Machine is
// single-shot.
func (m *Machine) Run(fid FuncID, localsLen uint32, init func(*Env)) (uint64, error) {
	if m.ran {
		return 0, fmt.Errorf("core: machine already ran")
	}
	m.ran = true
	m.rootFid, m.rootLocals, m.rootInit = fid, localsLen, init
	for _, w := range m.workers {
		w := w
		m.eng.Spawn(fmt.Sprintf("worker%d", w.rank), w.run)
	}
	end, err := m.eng.Run()
	m.elapsed = end
	if m.cfg.Trace {
		// Build the Gantt timeline by replaying the obs state stream.
		// Transitions are recorded per worker in time order and
		// deduplicated exactly like the old direct-mark path, so the
		// rendered Gantt is byte-identical to it.
		m.tracer = trace.NewRecorder(m.cfg.Workers)
		for rank, l := range m.obs.Logs() {
			for _, sc := range l.StateChanges() {
				m.tracer.Switch(rank, sc.Time, trace.State(sc.State))
			}
		}
		m.tracer.Finish(end)
	}
	if err != nil {
		return 0, err
	}
	if m.err != nil {
		return 0, m.err
	}
	if !m.done {
		return 0, fmt.Errorf("core: run ended without completing the root task")
	}
	return m.rootResult, nil
}

// Tracer returns the execution-timeline recorder (nil unless
// Config.Trace was set; populated by Run).
func (m *Machine) Tracer() *trace.Recorder { return m.tracer }

// Obs returns the structured event recorder (nil unless Config.Obs or
// Config.Trace was set).
func (m *Machine) Obs() *obs.Recorder { return m.obs }

// ElapsedCycles returns the virtual time the run took.
func (m *Machine) ElapsedCycles() uint64 { return m.elapsed }

// ElapsedSeconds converts ElapsedCycles with the profile clock.
func (m *Machine) ElapsedSeconds() float64 { return m.cfg.Costs.Seconds(m.elapsed) }

// TotalStats sums all workers' counters.
func (m *Machine) TotalStats() WorkerStats {
	var t WorkerStats
	for _, w := range m.workers {
		s := w.stats
		t.TasksExecuted += s.TasksExecuted
		t.Spawns += s.Spawns
		t.JoinsFast += s.JoinsFast
		t.JoinsMiss += s.JoinsMiss
		t.Suspends += s.Suspends
		t.ResumesLocal += s.ResumesLocal
		t.ResumesWait += s.ResumesWait
		t.ParentStolen += s.ParentStolen
		t.StealAttempts += s.StealAttempts
		t.StealsOK += s.StealsOK
		t.StealAbortEmpty += s.StealAbortEmpty
		t.StealAbortLock += s.StealAbortLock
		t.StealAbortSlot += s.StealAbortSlot
		t.Phases.Merge(s.Phases)
		t.StealAbortCycles += s.StealAbortCycles
		t.SuspendCycles += s.SuspendCycles
		t.ResumeCycles += s.ResumeCycles
		t.BytesStolen += s.BytesStolen
		t.PageFaults += s.PageFaults
		t.LifelinePushes += s.LifelinePushes
		t.LifelineReceives += s.LifelineReceives
		t.WorkCycles += s.WorkCycles
		t.IdleCycles += s.IdleCycles
		t.StealFaults += s.StealFaults
		t.StealRetries += s.StealRetries
		t.StealAbortsFault += s.StealAbortsFault
		t.StealRollbacks += s.StealRollbacks
		t.BackoffCycles += s.BackoffCycles
		t.VictimBlacklists += s.VictimBlacklists
		t.LifelineFaults += s.LifelineFaults
	}
	return t
}

// TotalNetStats sums the fabric counters over every endpoint.
func (m *Machine) TotalNetStats() rdma.Stats {
	var t rdma.Stats
	for _, w := range m.workers {
		t.Merge(w.ep.Stats())
	}
	return t
}

// FaultStats returns the injector's decision counters (zero value if
// fault injection is disabled).
func (m *Machine) FaultStats() fault.Stats {
	if m.injector == nil {
		return fault.Stats{}
	}
	return m.injector.Stats()
}

// MaxStackUsage returns the largest uni-address region occupancy seen
// on any worker (Table 4's "stack usage"). Zero under iso-address.
func (m *Machine) MaxStackUsage() uint64 {
	var max uint64
	for _, w := range m.workers {
		if w.region != nil && w.region.MaxUsed() > max {
			max = w.region.MaxUsed()
		}
	}
	return max
}

// MaxReservedBytes returns the largest per-process reserved virtual
// address space (the §4 comparison quantity).
func (m *Machine) MaxReservedBytes() uint64 {
	var max uint64
	for _, w := range m.workers {
		if r := w.space.ReservedBytes(); r > max {
			max = r
		}
	}
	return max
}

// CheckQuiescence verifies the end-state invariants that must hold
// after a run completes successfully: the root can only finish after
// every descendant finished, so every deque must be empty, every wait
// queue drained, exactly one task record (the root's) still allocated,
// and the global task accounting exact (executed = spawned + root).
// Tests call it to catch lost or duplicated continuations.
func (m *Machine) CheckQuiescence() error {
	if !m.done || m.err != nil {
		return fmt.Errorf("core: quiescence check on incomplete run")
	}
	st := m.TotalStats()
	if st.TasksExecuted != st.Spawns+1 {
		return fmt.Errorf("core: executed %d tasks but spawned %d (+1 root): lost or duplicated work",
			st.TasksExecuted, st.Spawns)
	}
	liveRecords, expected := 0, 1 // the root record stays allocated
	for _, w := range m.workers {
		if n := w.deque.Size(); n != 0 {
			return fmt.Errorf("core: worker %d deque holds %d entries after completion", w.rank, n)
		}
		if len(w.waitq) != 0 {
			return fmt.Errorf("core: worker %d wait queue holds %d threads after completion", w.rank, len(w.waitq))
		}
		liveRecords += w.heap.Live()
		if w.hfStaging != 0 {
			expected++ // help-first argument-staging scratch, one per worker
		}
		if w.isoAlloc != nil && w.isoAlloc.Live() != 0 {
			return fmt.Errorf("core: worker %d leaks %d iso stacks", w.rank, w.isoAlloc.Live())
		}
	}
	if liveRecords != expected {
		return fmt.Errorf("core: %d live heap blocks after completion, want %d (root record + staging buffers)", liveRecords, expected)
	}
	return nil
}

// TotalCommittedBytes sums committed (physical) memory across
// processes.
func (m *Machine) TotalCommittedBytes() uint64 {
	var t uint64
	for _, w := range m.workers {
		t += w.space.CommittedBytes()
	}
	return t
}
