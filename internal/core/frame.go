package core

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
)

// Task functions and frames.
//
// The paper runs ordinary C functions on migratable native stacks and
// switches contexts with a few lines of assembly (Appendix A). Go's
// runtime owns goroutine stacks — they move during growth and cannot be
// pinned at chosen virtual addresses — so the migratable stack here is
// explicit: a frame of raw bytes inside the (simulated) uni-address
// region. A task body is a registered Go function; every value that
// must survive a migration lives in frame slots, and the saved
// "register context" is a resume point stored in the frame header.
// Because the frame bytes are the complete thread state, a steal is the
// paper's steal: a byte-for-byte RDMA READ of the stack into the same
// virtual address on another process, after which stored intra-stack
// addresses are still valid.

// FuncID identifies a registered task function. IDs are a 32-bit
// content hash of the registered name (FNV-1a), NOT a registration
// counter: two processes that register the same set of names agree on
// every id regardless of registration order. That is what lets the
// multi-process dist backend ship frame headers (which embed the fid)
// between address spaces and lets its handshake verify — by comparing
// RegistryFingerprint values — that every worker binary carries the
// same function table. The zero FuncID is never assigned and marks an
// uninitialised header.
type FuncID uint32

// Status is returned by task functions and by the runtime internals.
type Status uint8

const (
	// Done means the task function completed; its result is in its task
	// record.
	Done Status = iota
	// Unwound means this thread cannot continue on this worker: it
	// suspended at a join, or its continuation was stolen. The function
	// must return Unwound immediately when Spawn or Join report it.
	Unwound
)

func (s Status) String() string {
	switch s {
	case Done:
		return "Done"
	case Unwound:
		return "Unwound"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Fn is a task function. It runs with an Env giving access to its frame
// and to spawn/join primitives. It must return Done after calling a
// Return method (or with the default zero result), or propagate Unwound
// when a primitive reports it.
type Fn func(e *Env) Status

// The registry is copy-on-write: Register (init-time / test setup,
// rare) builds a fresh snapshot under regMu and publishes it with one
// atomic store; lookupFn (once per task invocation, the hottest lookup
// in the rt backend) is a single atomic load plus an open-addressing
// probe — one or two slice indexes in practice, no map, no mutex (a
// mutex-guarded lookup cost ~8% of a fib run's CPU on the
// real-parallelism backend).
//
// Slots with ids[i] == 0 are empty; content hashes that come out 0 are
// remapped at registration so 0 stays the "no function" sentinel.
type fnRegistry struct {
	mask  uint32
	ids   []FuncID // open-addressing keys; 0 = empty slot
	fns   []Fn
	names []string
	count int
	// fingerprint folds every registered name with XOR, so it is
	// independent of registration order — the property the dist
	// handshake relies on.
	fingerprint uint64
}

var (
	regMu  sync.Mutex                 // serialises writers only
	regTab atomic.Pointer[fnRegistry] // readers load the latest snapshot
)

func loadRegistry() *fnRegistry {
	if t := regTab.Load(); t != nil {
		return t
	}
	return &fnRegistry{}
}

// HashFuncName returns the content-hashed FuncID for a task-function
// name (FNV-1a 32, with 0 remapped so the zero FuncID stays invalid).
// Register(name, fn) always returns HashFuncName(name), so a process
// can predict another process's ids from names alone.
func HashFuncName(name string) FuncID {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	if h == 0 {
		h = offset32
	}
	return FuncID(h)
}

func hashFuncName64(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// probe returns the table slot holding id, or the empty slot where it
// would be inserted. Tables are kept at most half full, so the scan
// terminates.
func (t *fnRegistry) probe(id FuncID) int {
	i := uint32(id) & t.mask
	for {
		if t.ids[i] == id || t.ids[i] == 0 {
			return int(i)
		}
		i = (i + 1) & t.mask
	}
}

// Register adds fn to the global function table under a content-hashed
// id and returns that id. Call it from package init or test setup; ids
// depend only on the name, so they are stable across processes and
// registration orders. Registering the same name again replaces the
// function and returns the same id (so test setup can re-run);
// registering two DIFFERENT names whose hashes collide panics with
// both names — rename one.
func Register(name string, fn Fn) FuncID {
	regMu.Lock()
	defer regMu.Unlock()
	id := HashFuncName(name)
	old := loadRegistry()
	if len(old.ids) > 0 {
		if i := old.probe(id); old.ids[i] == id {
			if old.names[i] != name {
				panic(fmt.Sprintf(
					"core: FuncID hash collision: %q and %q both hash to %#x; rename one of them",
					old.names[i], name, uint32(id)))
			}
			// Same name re-registered: replace in a fresh snapshot.
			tab := old.clone(len(old.ids))
			tab.fns[i] = fn
			regTab.Store(tab)
			return id
		}
	}
	// Grow so the table stays at most half full (min size 16).
	size := len(old.ids)
	if size == 0 {
		size = 16
	}
	for 2*(old.count+1) > size {
		size *= 2
	}
	tab := old.clone(size)
	i := tab.probe(id)
	tab.ids[i], tab.fns[i], tab.names[i] = id, fn, name
	tab.count++
	tab.fingerprint ^= hashFuncName64(name)
	regTab.Store(tab)
	return id
}

// clone copies t into a table of size slots (a power of two >= the live
// count*2), rehashing every entry.
func (t *fnRegistry) clone(size int) *fnRegistry {
	n := &fnRegistry{
		mask:        uint32(size - 1),
		ids:         make([]FuncID, size),
		fns:         make([]Fn, size),
		names:       make([]string, size),
		count:       t.count,
		fingerprint: t.fingerprint,
	}
	for i, id := range t.ids {
		if id == 0 {
			continue
		}
		j := n.probe(id)
		n.ids[j], n.fns[j], n.names[j] = id, t.fns[i], t.names[i]
	}
	return n
}

func lookupFn(id FuncID) Fn {
	tab := loadRegistry()
	if id != 0 && len(tab.ids) > 0 {
		if i := tab.probe(id); tab.ids[i] == id {
			return tab.fns[i]
		}
	}
	panic(fmt.Sprintf("core: unregistered FuncID %#x", uint32(id)))
}

// FuncName returns the registered name of id (for traces).
func FuncName(id FuncID) string {
	tab := loadRegistry()
	if id != 0 && len(tab.ids) > 0 {
		if i := tab.probe(id); tab.ids[i] == id {
			return tab.names[i]
		}
	}
	return fmt.Sprintf("fn#%d", id)
}

// RegistryFingerprint summarises the registered function table: the
// number of distinct names and an order-independent 64-bit digest of
// them. Two processes whose fingerprints agree have registered exactly
// the same name set — and therefore, by content hashing, the same
// FuncID for every function. The dist backend's handshake compares
// fingerprints and refuses to run on divergence.
func RegistryFingerprint() (count int, digest uint64) {
	tab := loadRegistry()
	return tab.count, tab.fingerprint
}

// RegistryNames returns every registered function name, sorted — the
// diagnostic payload for a fingerprint mismatch.
func RegistryNames() []string {
	tab := loadRegistry()
	names := make([]string, 0, tab.count)
	for i, id := range tab.ids {
		if id != 0 {
			names = append(names, tab.names[i])
		}
	}
	sort.Strings(names)
	return names
}

// Frame header layout (little-endian), stored at the base (lowest
// address) of each thread's stack in the uni-address region:
//
//	+0   funcID     u32
//	+4   resumePt   u32  (the "saved instruction pointer")
//	+8   localsLen  u32  (bytes of locals following the header)
//	+12  reserved   u32
//	+16  record     u64  (Handle of this task's completion record)
//	+24  taskID     u64  (obs.TaskID for lineage tracking; 0 when
//	                      observability is disabled)
//
// The task ID lives in the frame header on purpose: the frame bytes
// are the complete migratable thread state, so the ID travels with
// every steal, suspend swap and lifeline push for free, and any worker
// holding the stack can attribute events to the task.
const (
	frameHdrSize   = 32
	fhFuncIDOff    = 0
	fhResumeOff    = 4
	fhLocalsLenOff = 8
	fhRecordOff    = 16
	fhTaskIDOff    = 24
)

// frameTaskID reads the lineage ID stored in the frame header at base
// (0 when observability was off at spawn time).
func frameTaskID(space *mem.AddressSpace, base mem.VA) uint64 {
	return space.MustReadU64(base + fhTaskIDOff)
}

// setFrameTaskID stamps the lineage ID into the frame header.
func setFrameTaskID(space *mem.AddressSpace, base mem.VA, id uint64) {
	space.MustWriteU64(base+fhTaskIDOff, id)
}

// FrameBytes returns the stack footprint of a task with localsLen bytes
// of locals (header + locals, 16-byte aligned).
func FrameBytes(localsLen uint32) uint64 {
	return (frameHdrSize + uint64(localsLen) + 15) &^ 15
}

// writeFrameHeader initialises a fresh frame: the whole footprint is
// zeroed (stack addresses are reused constantly, and a task must never
// observe a predecessor's bytes) and the header written.
func writeFrameHeader(space *mem.AddressSpace, base mem.VA, fid FuncID, localsLen uint32, rec Handle) {
	b, err := space.Slice(base, FrameBytes(localsLen))
	if err != nil {
		panic(err)
	}
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint32(b[fhFuncIDOff:], uint32(fid))
	binary.LittleEndian.PutUint32(b[fhLocalsLenOff:], localsLen)
	binary.LittleEndian.PutUint64(b[fhRecordOff:], uint64(rec))
}

// Env is a task function's view of its own frame plus the runtime
// primitives. Envs are created by the backend for each (re-)entry into
// a task function and must not be retained across returns.
type Env struct {
	x    Exec
	base mem.VA
	size uint64
	rp   uint32

	returned bool
}

// Worker returns the simulated worker currently executing the task, or
// nil when the task runs on a non-simulator backend (internal/rt).
func (e *Env) Worker() *Worker { return e.x.SimWorker() }

// FrameBase returns the base VA of this thread's stack.
func (e *Env) FrameBase() mem.VA { return e.base }

// FrameSize returns the stack footprint in bytes.
func (e *Env) FrameSize() uint64 { return e.size }

// RP returns the resume point: 0 on first entry, otherwise the value
// passed to the Spawn or Join the thread last suspended or migrated at.
func (e *Env) RP() int { return int(e.rp) }

// Self returns the Handle of this task's completion record.
func (e *Env) Self() Handle {
	return Handle(e.x.ExecReadU64(e.base + fhRecordOff))
}

func (e *Env) setRP(rp uint32) {
	b, err := e.x.ExecSlice(e.base+fhResumeOff, 4)
	if err != nil {
		panic(err)
	}
	binary.LittleEndian.PutUint32(b, rp)
}

// slotVA returns the address of 8-byte local slot i.
func (e *Env) slotVA(i int) mem.VA {
	va := e.base + frameHdrSize + mem.VA(i*8)
	if uint64(va)+8 > uint64(e.base)+e.size {
		panic(fmt.Sprintf("core: slot %d outside frame of %d bytes", i, e.size))
	}
	return va
}

// U64 loads local slot i.
func (e *Env) U64(i int) uint64 { return e.x.ExecReadU64(e.slotVA(i)) }

// SetU64 stores local slot i.
func (e *Env) SetU64(i int, v uint64) { e.x.ExecWriteU64(e.slotVA(i), v) }

// I64 loads local slot i as a signed integer.
func (e *Env) I64(i int) int64 { return int64(e.U64(i)) }

// SetI64 stores a signed integer in local slot i.
func (e *Env) SetI64(i int, v int64) { e.SetU64(i, uint64(v)) }

// HandleAt loads a Handle from local slot i.
func (e *Env) HandleAt(i int) Handle { return Handle(e.U64(i)) }

// SetHandle stores a Handle in local slot i.
func (e *Env) SetHandle(i int, h Handle) { e.SetU64(i, uint64(h)) }

// PtrAt loads a simulated address from slot i. Tasks may store
// addresses of their own frame bytes (intra-stack pointers); the
// uni-address guarantee is that they remain valid after migration.
func (e *Env) PtrAt(i int) mem.VA { return mem.VA(e.U64(i)) }

// SetPtr stores a simulated address in slot i.
func (e *Env) SetPtr(i int, va mem.VA) { e.SetU64(i, uint64(va)) }

// LocalAddr returns the simulated address of byte off of the locals
// area — for building intra-stack pointers.
func (e *Env) LocalAddr(off int) mem.VA { return e.base + frameHdrSize + mem.VA(off) }

// Bytes returns a direct view of locals [off, off+n) for bulk data
// (e.g. an NQueens board). The view is invalidated by any migration, so
// it must not be retained across Spawn or Join.
func (e *Env) Bytes(off, n int) []byte {
	if off < 0 || n < 0 || frameHdrSize+uint64(off)+uint64(n) > e.size {
		panic(fmt.Sprintf("core: Bytes(%d,%d) outside frame of %d bytes", off, n, e.size))
	}
	b, err := e.x.ExecSlice(e.base+frameHdrSize+mem.VA(off), uint64(n))
	if err != nil {
		panic(err)
	}
	return b
}

// Gas returns the global heap for cross-thread data. Refs obtained
// from it are plain integers: store them in frame slots with SetU64
// and they migrate with the thread.
func (e *Env) Gas() *gas.Heap {
	h := e.x.ExecGasHeap()
	if h == nil {
		panic("core: global heap disabled (Config.GasSize = 0)")
	}
	return h
}

// GasGet dereferences a global reference into buf, charging local-copy
// or RDMA cost as appropriate.
func (e *Env) GasGet(r gas.Ref, buf []byte) { e.x.ExecGasGet(r, buf) }

// GasPut stores buf through a global reference.
func (e *Env) GasPut(r gas.Ref, buf []byte) { e.x.ExecGasPut(r, buf) }

// GasGetU64 loads one word through a global reference.
func (e *Env) GasGetU64(r gas.Ref) uint64 { return e.x.ExecGasGetU64(r) }

// GasPutU64 stores one word through a global reference.
func (e *Env) GasPutU64(r gas.Ref, v uint64) { e.x.ExecGasPutU64(r, v) }

// GasAlloc allocates on this worker's segment of the global heap.
func (e *Env) GasAlloc(n uint64) gas.Ref { return e.x.ExecGasAlloc(n) }

// Work charges cycles of task computation: simulated time on the
// simulator (scaled on straggler workers), a calibrated spin on the
// real-parallelism backend.
func (e *Env) Work(cycles uint64) { e.x.ExecWork(cycles) }

// ReturnU64 records the task's result and marks its record done. Call
// it (at most once) before returning Done; returning Done without a
// Return records a zero result.
func (e *Env) ReturnU64(v uint64) {
	if e.returned {
		panic("core: duplicate ReturnU64")
	}
	e.returned = true
	e.x.ExecComplete(e.Self(), v)
}

// ReturnI64 is ReturnU64 for signed results.
func (e *Env) ReturnI64(v int64) { e.ReturnU64(uint64(v)) }
