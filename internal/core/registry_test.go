package core_test

import (
	"testing"

	"uniaddr/internal/core"
)

// Registered task bodies for the registry tests; behaviour is
// irrelevant, identity is what is under test.
func regBodyA(e *core.Env) core.Status { e.ReturnU64(1); return core.Done }
func regBodyB(e *core.Env) core.Status { e.ReturnU64(2); return core.Done }

func TestRegisterContentHashedIDs(t *testing.T) {
	id := core.Register("registry-test-alpha", regBodyA)
	if id == 0 {
		t.Fatal("Register returned the invalid zero FuncID")
	}
	if want := core.HashFuncName("registry-test-alpha"); id != want {
		t.Fatalf("Register returned %#x, want content hash %#x", id, want)
	}
	// Order independence: the id depends only on the name, so a process
	// that registers other functions first still derives the same id.
	if again := core.HashFuncName("registry-test-alpha"); again != id {
		t.Fatalf("HashFuncName unstable: %#x then %#x", id, again)
	}
	if core.FuncName(id) != "registry-test-alpha" {
		t.Fatalf("FuncName(%#x) = %q", id, core.FuncName(id))
	}
}

func TestRegisterSameNameReplaces(t *testing.T) {
	id1 := core.Register("registry-test-replace", regBodyA)
	n1, fp1 := core.RegistryFingerprint()
	id2 := core.Register("registry-test-replace", regBodyB)
	if id1 != id2 {
		t.Fatalf("re-registration changed the id: %#x -> %#x", id1, id2)
	}
	n2, fp2 := core.RegistryFingerprint()
	if n1 != n2 || fp1 != fp2 {
		t.Fatalf("re-registration changed the fingerprint: (%d,%#x) -> (%d,%#x)", n1, fp1, n2, fp2)
	}
	// The replacement function is the one that runs.
	if fn := core.TaskFn(id2); fn == nil {
		t.Fatal("TaskFn returned nil after replacement")
	}
}

func TestRegistryFingerprintOrderIndependent(t *testing.T) {
	// The fingerprint XOR-folds per-name digests, so registering A then
	// B must equal registering B then A. Simulate both orders by
	// checking the XOR identity on the digests directly (the process
	// registry is append-only, so we cannot rewind it).
	_, before := core.RegistryFingerprint()
	core.Register("registry-test-fp-a", regBodyA)
	_, afterA := core.RegistryFingerprint()
	core.Register("registry-test-fp-b", regBodyB)
	_, afterAB := core.RegistryFingerprint()
	// XOR-fold: contribution of each name is recoverable and
	// order-independent.
	contribA := before ^ afterA
	contribB := afterA ^ afterAB
	if contribA == 0 || contribB == 0 || contribA == contribB {
		t.Fatalf("degenerate name contributions: %#x %#x", contribA, contribB)
	}
	if afterAB != before^contribA^contribB {
		t.Fatal("fingerprint is not an XOR fold of per-name digests")
	}
}

func TestRegistryNamesContainsRegistered(t *testing.T) {
	core.Register("registry-test-names", regBodyA)
	found := false
	names := core.RegistryNames()
	for i, n := range names {
		if n == "registry-test-names" {
			found = true
		}
		if i > 0 && names[i-1] > n {
			t.Fatalf("RegistryNames not sorted: %q before %q", names[i-1], n)
		}
	}
	if !found {
		t.Fatal("registered name missing from RegistryNames")
	}
}

func TestLookupUnregisteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TaskFn on an unregistered id did not panic")
		}
	}()
	// An id that was never registered: flip a bit on a real one until it
	// is unknown.
	id := core.HashFuncName("registry-test-never-registered-name")
	core.TaskFn(id)
}
