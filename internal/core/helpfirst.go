package core

import (
	"encoding/binary"

	"uniaddr/internal/mem"
	"uniaddr/internal/trace"
)

// Help-first ("tied tasks") scheduling — the strategy of Satin, HotSLAW
// and Grappa that the paper contrasts with its work-first scheme (§2):
// a spawned task is NOT run immediately; a small descriptor (function
// id + arguments) is queued and the parent continues. Only tasks that
// have not started can be stolen, so no stack ever migrates — and once
// a task starts it is tied to its worker. A parent that reaches a join
// before its child ran helps: it pops and runs queued tasks (or steals
// descriptors) until the join target completes, nesting them below
// itself in the uni-address region.
//
// The mode exists to measure the trade the paper describes: steals get
// cheap (descriptor-sized payloads instead of stacks) but blocked
// parents pile up on the region (help-nesting), and a started task can
// never move, which costs utilization. Enable with Config.HelpFirst.
//
// Descriptor layout in the pinned RDMA heap (little-endian):
//
//	+0  funcID    u32
//	+4  localsLen u32 (the child frame's locals size)
//	+8  record    u64 (Handle)
//	+16 argsUsed  u32 (bytes of args actually carried; the rest of the
//	                   frame locals are zero and reconstructed on
//	                   materialization — descriptors are "fn + args",
//	                   not whole frames)
//	+20 pad       u32
//	+24 args      argsUsed bytes
const (
	descHdrSize = 24
	// descEntryFlag marks a deque entry as a descriptor reference:
	// FrameBase is the descriptor VA, FrameSize carries the flag plus
	// the descriptor's total length.
	descEntryFlag uint64 = 1 << 63
)

func descBytes(argsUsed uint32) uint64 { return descHdrSize + uint64(argsUsed) }

// isDescEntry reports whether a deque entry references a descriptor.
func isDescEntry(e Entry) bool { return e.FrameSize&descEntryFlag != 0 }

func descEntry(va mem.VA, total uint64) Entry {
	return Entry{FrameBase: va, FrameSize: descEntryFlag | total}
}

func descLen(e Entry) uint64 { return e.FrameSize &^ descEntryFlag }

// spawnHelpFirst queues the child instead of running it (the help-first
// side of Env.Spawn). It always returns true: the parent continues and
// is never stolen, because its continuation is never published.
func (w *Worker) spawnHelpFirst(e *Env, handleSlot int, fid FuncID, localsLen uint32, init func(child *Env)) bool {
	w.stats.Spawns++
	w.adv(w.costs.SaveContext + w.costs.DequePush)
	rec := w.newRecord()
	e.SetHandle(handleSlot, rec)
	// Stage the child's initial locals in a scratch buffer, then trim
	// trailing zeros: the descriptor carries only "fn + args", as in
	// real tied-task systems, not the whole (mostly empty) frame.
	args := make([]byte, localsLen)
	if init != nil {
		staging := w.helpFirstStaging(localsLen)
		init(&Env{x: w, base: staging - frameHdrSize, size: frameHdrSize + uint64(localsLen)})
		sb, err := w.space.Slice(staging, uint64(localsLen))
		if err != nil {
			panic(err)
		}
		copy(args, sb)
	}
	used := uint32(len(args))
	for used > 0 && args[used-1] == 0 {
		used--
	}
	total := descBytes(used)
	va := w.heap.MustAlloc(total)
	b, err := w.space.Slice(va, total)
	if err != nil {
		panic(err)
	}
	binary.LittleEndian.PutUint32(b[0:], uint32(fid))
	binary.LittleEndian.PutUint32(b[4:], localsLen)
	binary.LittleEndian.PutUint64(b[8:], uint64(rec))
	binary.LittleEndian.PutUint32(b[16:], used)
	binary.LittleEndian.PutUint32(b[20:], 0)
	copy(b[descHdrSize:], args[:used])
	if err := w.deque.Push(descEntry(va, total)); err != nil {
		panic(err)
	}
	return true
}

// helpFirstStaging returns a zeroed scratch area in the RDMA heap big
// enough for localsLen bytes of staged arguments; one per worker,
// grown on demand.
func (w *Worker) helpFirstStaging(localsLen uint32) mem.VA {
	need := uint64(localsLen)
	if need == 0 {
		need = 8
	}
	if w.hfStaging == 0 || w.hfStagingLen < need {
		if w.hfStaging != 0 {
			w.heap.Free(w.hfStaging)
		}
		w.hfStaging = w.heap.MustAlloc(need)
		w.hfStagingLen = need
	}
	b, err := w.space.Slice(w.hfStaging, need)
	if err != nil {
		panic(err)
	}
	for i := range b {
		b[i] = 0
	}
	return w.hfStaging
}

// materializeDescriptor turns a local descriptor into a runnable frame
// in the uni-address region (below the current chain) and frees the
// descriptor storage.
func (w *Worker) materializeDescriptor(va mem.VA, total uint64, ownerRank int) (mem.VA, uint64) {
	b, err := w.space.Slice(va, total)
	if err != nil {
		panic(err)
	}
	fid := FuncID(binary.LittleEndian.Uint32(b[0:]))
	localsLen := binary.LittleEndian.Uint32(b[4:])
	rec := Handle(binary.LittleEndian.Uint64(b[8:]))
	used := binary.LittleEndian.Uint32(b[16:])
	args := make([]byte, used)
	copy(args, b[descHdrSize:])
	size := FrameBytes(localsLen)
	base := w.sch.newFrame(w, size)
	writeFrameHeader(w.space, base, fid, localsLen, rec) // zeroes the frame
	if used > 0 {
		fb, err := w.space.Slice(base+frameHdrSize, uint64(used))
		if err != nil {
			panic(err)
		}
		copy(fb, args)
	}
	w.m.workers[ownerRank].heap.Free(va)
	return base, size
}

// runDescriptorEntry materializes and runs a descriptor entry popped
// from the local deque.
func (w *Worker) runDescriptorEntry(ent Entry) {
	base, size := w.materializeDescriptor(ent.FrameBase, descLen(ent), w.rank)
	w.invoke(base, size)
}

// stealDescriptor transfers a stolen descriptor's bytes from the victim
// (one small RDMA READ) into the local heap, then materializes and runs
// it. Unlike a work-first steal, no stack moves — this is the §2 "bag
// of not-yet-started tasks" economy.
func (w *Worker) stealDescriptor(victim int, ent Entry, ph *StealPhases) {
	total := descLen(ent)
	start := w.proc.Now()
	local := w.heap.MustAlloc(total)
	// Local region must be pinned for RDMA (it is: the heap region).
	w.ep.ReadToVA(w.proc, victim, ent.FrameBase, local, total)
	ph.StackTransfer += w.proc.Now() - start
	w.stats.BytesStolen += total
	// The victim-side descriptor storage is released (bookkeeping, as
	// with task records).
	w.m.workers[victim].heap.Free(ent.FrameBase)
	base, size := w.materializeDescriptor(local, total, w.rank)
	w.invoke(base, size)
}

// helpFirstJoin blocks the caller at a join by running other work
// inline until the target completes: pop local tasks, steal
// descriptors, back off. The parent's frame stays in place (tied), so
// helpers nest below it in the region.
func (w *Worker) helpFirstJoin(h Handle) uint64 {
	for {
		if done, v := w.tryJoin(h); done {
			w.stats.JoinsFast++
			w.freeRecord(h)
			return v
		}
		w.stats.JoinsMiss++
		if ent, ok := w.deque.Pop(w.proc, w.ep, w.rank); ok {
			if !isDescEntry(ent) {
				panic("core: continuation entry under help-first")
			}
			w.stats.ResumesLocal++
			w.runDescriptorEntry(ent)
			continue
		}
		if w.tryStealHelpFirst() {
			continue
		}
		w.mark(trace.Idle)
		w.stats.IdleCycles += w.costs.IdleBackoff
		w.adv(w.costs.IdleBackoff)
		w.mark(trace.Work)
	}
}

// tryStealHelpFirst is trySteal for descriptor entries.
func (w *Worker) tryStealHelpFirst() bool {
	n := len(w.m.workers)
	if n < 2 {
		return false
	}
	w.stats.StealAttempts++
	w.mark(trace.Steal)
	w.adv(w.costs.VictimSelect)
	victim := w.pickVictim(n)
	if victim < 0 {
		return false
	}
	var ph StealPhases
	var ent Entry
	var outcome StealOutcome
	for attempt := 0; ; attempt++ {
		ent, outcome = w.deque.StealRemote(w.proc, w.ep, victim, &ph, nil)
		if outcome != StealFault {
			break
		}
		w.stats.StealFaults++
		w.noteStealFault(victim)
		if attempt >= w.m.cfg.StealMaxRetries || w.victimBanned(victim) {
			w.stats.StealAbortsFault++
			w.stats.StealAbortCycles += ph.Total()
			return false
		}
		w.stealBackoff(attempt)
		w.stats.StealRetries++
	}
	switch outcome {
	case StealEmpty, StealEmptyLocked:
		w.stats.StealAbortEmpty++
		w.stats.StealAbortCycles += ph.Total()
		w.lastVictim = -1
		return false
	case StealLockBusy:
		w.stats.StealAbortLock++
		w.stats.StealAbortCycles += ph.Total()
		return false
	case StealReject:
		w.stats.StealAbortSlot++
		w.stats.StealAbortCycles += ph.Total()
		return false
	}
	w.lastVictim = victim
	if w.victimFails != nil {
		delete(w.victimFails, victim)
	}
	if !isDescEntry(ent) {
		panic("core: continuation entry stolen under help-first")
	}
	w.deque.Unlock(w.proc, w.ep, victim, &ph)
	w.stats.Phases.Merge(ph)
	w.stats.StealsOK++
	w.stealDescriptor(victim, ent, &ph)
	return true
}

// helpFirstSchedulerLoop is the idle loop for help-first mode.
func (w *Worker) helpFirstSchedulerLoop() {
	p := w.proc
	for !w.m.done {
		if p.Now() > w.m.cfg.MaxCycles {
			w.m.fail(errMaxCycles(w.m.cfg.MaxCycles))
			return
		}
		if ent, ok := w.deque.Pop(p, w.ep, w.rank); ok {
			w.stats.ResumesLocal++
			w.runDescriptorEntry(ent)
			continue
		}
		if w.m.done {
			return
		}
		if w.tryStealHelpFirst() {
			continue
		}
		w.mark(trace.Idle)
		w.stats.IdleCycles += w.costs.IdleBackoff
		p.Advance(w.costs.IdleBackoff)
	}
}
