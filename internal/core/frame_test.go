package core

import (
	"testing"
	"testing/quick"

	"uniaddr/internal/mem"
)

func TestHandleRoundTrip(t *testing.T) {
	f := func(rank uint16, va48 uint64) bool {
		va := mem.VA(va48 & (1<<48 - 1))
		h := MakeHandle(int(rank), va)
		return h.Valid() && h.Rank() == int(rank) && h.VA() == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHandleZeroInvalid(t *testing.T) {
	var h Handle
	if h.Valid() {
		t.Fatal("zero handle is valid")
	}
	if MakeHandle(0, 0).Valid() != true {
		t.Fatal("rank 0, va 0 should still be a valid handle (rank biased by 1)")
	}
}

func TestHandleOversizedVAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 49-bit VA")
		}
	}()
	MakeHandle(0, mem.VA(1)<<48)
}

func TestFrameBytesRounding(t *testing.T) {
	cases := map[uint32]uint64{
		0:   32,
		1:   48,
		16:  48,
		17:  64,
		100: 144,
	}
	for locals, want := range cases {
		if got := FrameBytes(locals); got != want {
			t.Fatalf("FrameBytes(%d) = %d, want %d", locals, got, want)
		}
	}
	// Always 16-aligned and big enough.
	f := func(locals uint16) bool {
		n := FrameBytes(uint32(locals))
		return n%16 == 0 && n >= frameHdrSize+uint64(locals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	space := mem.NewAddressSpace("t")
	space.MustReserve("stack", 0x1000, 4096, true)
	rec := MakeHandle(7, 0xabcd)
	writeFrameHeader(space, 0x1000, FuncID(3), 64, rec)
	b, _ := space.Slice(0x1000, frameHdrSize)
	if got := FuncID(leU64(b[0:8]) & 0xffffffff); got != 3 {
		t.Fatalf("funcID = %d", got)
	}
	if got := Handle(leU64(b[fhRecordOff : fhRecordOff+8])); got != rec {
		t.Fatalf("record = %v", got)
	}
}

func TestFrameHeaderZeroesLocals(t *testing.T) {
	space := mem.NewAddressSpace("t")
	space.MustReserve("stack", 0x1000, 4096, true)
	// Dirty the memory first (stack reuse).
	junk := make([]byte, 256)
	for i := range junk {
		junk[i] = 0xff
	}
	space.Write(0x1000, junk)
	writeFrameHeader(space, 0x1000, FuncID(1), 64, MakeHandle(0, 1))
	b, _ := space.Slice(0x1000+frameHdrSize, 64)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("local byte %d not zeroed: %#x", i, v)
		}
	}
}

func TestRegisterAndName(t *testing.T) {
	id := Register("test-named-fn", func(e *Env) Status { return Done })
	if FuncName(id) != "test-named-fn" {
		t.Fatalf("name = %q", FuncName(id))
	}
	if FuncName(FuncID(1<<30)) == "" {
		t.Fatal("unknown id should still format")
	}
}

func TestStatusString(t *testing.T) {
	if Done.String() != "Done" || Unwound.String() != "Unwound" {
		t.Fatal("status strings")
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status must format")
	}
}

func TestSchemeKindString(t *testing.T) {
	if SchemeUni.String() != "uni-address" || SchemeIso.String() != "iso-address" {
		t.Fatal("scheme strings")
	}
}

// envRig builds a 1-worker machine and runs fn as the body of a task
// with the given locals, for direct Env testing.
func envRig(t *testing.T, locals uint32, fn func(e *Env)) {
	t.Helper()
	fid := Register("env-rig", func(e *Env) Status {
		fn(e)
		e.ReturnU64(1)
		return Done
	})
	m, err := NewMachine(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fid, locals, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEnvSlotAccessors(t *testing.T) {
	envRig(t, 8*8, func(e *Env) {
		e.SetI64(0, -42)
		if e.I64(0) != -42 {
			t.Error("I64 round trip")
		}
		e.SetU64(1, 1<<63)
		if e.U64(1) != 1<<63 {
			t.Error("U64 round trip")
		}
		h := MakeHandle(3, 0x123)
		e.SetHandle(2, h)
		if e.HandleAt(2) != h {
			t.Error("handle round trip")
		}
		e.SetPtr(3, e.LocalAddr(32))
		if e.PtrAt(3) != e.FrameBase()+frameHdrSize+32 {
			t.Error("ptr round trip")
		}
	})
}

func TestEnvBytesView(t *testing.T) {
	envRig(t, 128, func(e *Env) {
		b := e.Bytes(16, 32)
		for i := range b {
			b[i] = byte(i)
		}
		again := e.Bytes(16, 32)
		for i := range again {
			if again[i] != byte(i) {
				t.Error("bytes view not stable")
			}
		}
	})
}

func TestEnvBytesOutOfRangePanics(t *testing.T) {
	envRig(t, 64, func(e *Env) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range Bytes did not panic")
			}
		}()
		e.Bytes(60, 16)
	})
}

func TestEnvSlotOutOfRangePanics(t *testing.T) {
	envRig(t, 16, func(e *Env) {
		defer func() {
			if recover() == nil {
				t.Error("out-of-range slot did not panic")
			}
		}()
		e.SetU64(2, 1) // slots 0..1 fit in 16 bytes
	})
}

func TestEnvDoubleReturnPanics(t *testing.T) {
	fid := Register("double-return", func(e *Env) Status {
		e.ReturnU64(1)
		defer func() {
			if recover() == nil {
				t.Error("double return did not panic")
			}
			panic("unwind-run") // keep the machine failing fast
		}()
		e.ReturnU64(2)
		return Done
	})
	m, err := NewMachine(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fid, 8, nil); err == nil {
		t.Fatal("expected run error")
	}
}

func TestEnvWorkAdvancesClock(t *testing.T) {
	fid := Register("worker-cost", func(e *Env) Status {
		e.Work(12345)
		e.ReturnU64(0)
		return Done
	})
	m, err := NewMachine(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(fid, 8, nil); err != nil {
		t.Fatal(err)
	}
	if m.ElapsedCycles() < 12345 {
		t.Fatalf("elapsed %d < work cost", m.ElapsedCycles())
	}
	if m.TotalStats().WorkCycles != 12345 {
		t.Fatalf("work cycles = %d", m.TotalStats().WorkCycles)
	}
}
