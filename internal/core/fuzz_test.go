package core

import (
	"testing"

	"uniaddr/internal/fault"
	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// Fuzz targets: byte-string-driven interleavings of the THE deque and
// the region's stack discipline. `go test` runs the seed corpus as unit
// tests; `go test -fuzz=FuzzDequeInterleavings ./internal/core` explores
// further. Every finding reduces to a deterministic byte string.

// FuzzDequeInterleavings drives an owner and a thief with delays and
// operation choices taken from the fuzz input, and checks exactly-once
// delivery of every entry.
func FuzzDequeInterleavings(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{10, 200, 30, 40, 7, 7, 7, 7, 90, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		eng := sim.NewEngine()
		params := rdma.DefaultParams()
		params.HardwareFAA = true // no comm server needed
		fab := rdma.NewFabric(eng, params)
		space0 := mem.NewAddressSpace("owner")
		fab.AddEndpoint(space0)
		space1 := mem.NewAddressSpace("thief")
		fab.AddEndpoint(space1)
		d, err := NewDeque(space0, DefaultDequeBase, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewDeque(space1, DefaultDequeBase, 64); err != nil {
			t.Fatal(err)
		}
		taken := map[uint64]int{}
		const total = 12
		eng.Spawn("owner", func(p *sim.Proc) {
			next := uint64(1)
			live := 0
			k := 0
			for next <= total || live > 0 {
				b := data[k%len(data)]
				k++
				if next <= total && (live == 0 || b%2 == 0) {
					if err := d.Push(Entry{FrameBase: mem.VA(next), FrameSize: next}); err == nil {
						next++
						live++
					}
				} else if e, ok := d.Pop(p, fab.Endpoint(0), 0); ok {
					taken[e.FrameSize]++
					live--
				} else {
					live = 0
				}
				p.Advance(uint64(b) * 37)
			}
			p.Advance(100_000)
		})
		eng.Spawn("thief", func(p *sim.Proc) {
			k := 0
			for i := 0; i < 200; i++ {
				b := data[(k+i)%len(data)]
				var ph StealPhases
				e, out := d.StealRemote(p, fab.Endpoint(1), 0, &ph, nil)
				if out == StealOK {
					taken[e.FrameSize]++
					d.Unlock(p, fab.Endpoint(1), 0, &ph)
				}
				p.Advance(uint64(b)*53 + 1)
			}
		})
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= total; i++ {
			if taken[i] != 1 {
				t.Fatalf("entry %d taken %d times (input %v)", i, taken[i], data)
			}
		}
	})
}

// FuzzRegionStackDiscipline drives alloc/free/install sequences from
// the fuzz input and checks the invariant after every operation.
func FuzzRegionStackDiscipline(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{200, 100, 50, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip()
		}
		space := mem.NewAddressSpace("t")
		r, err := NewRegion(space, DefaultUniBase, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		type stk struct {
			base mem.VA
			size uint64
		}
		var live []stk
		for _, b := range data {
			switch b % 3 {
			case 0, 1:
				size := uint64(b)*8 + 16
				base, err := r.AllocBelow(size)
				if err != nil {
					continue
				}
				live = append(live, stk{base, size})
			case 2:
				if len(live) > 0 {
					s := live[len(live)-1]
					if err := r.FreeLowest(s.base, s.size); err != nil {
						t.Fatal(err)
					}
					live = live[:len(live)-1]
				} else if r.Empty() {
					// Install anywhere in an empty region.
					at := r.Base() + mem.VA(uint64(b)*16%(1<<13))
					if err := r.Install(at, 64); err != nil {
						t.Fatal(err)
					}
					live = append(live, stk{at, 64})
				}
			}
			if err := r.CheckInvariant(); err != nil {
				t.Fatalf("%v (input %v)", err, data)
			}
		}
	})
}

// --- chaos fuzzing ---------------------------------------------------

// fuzzFib is the in-package fib task used by FuzzChaosFib (core_test's
// fib lives in the external test package and is not visible here).
// Frame slots: 0=n, 1=handle(fib(n-1)), 2=handle(fib(n-2)), 3=r1.
var fuzzFibFID FuncID

const fuzzFibLocals = 4 * 8

func init() { fuzzFibFID = Register("fuzz-chaos-fib", fuzzFibTask) }

func fuzzFibTask(e *Env) Status {
	switch e.RP() {
	case 0:
		n := e.I64(0)
		if n < 2 {
			e.ReturnI64(n)
			return Done
		}
		if !e.Spawn(1, 1, fuzzFibFID, fuzzFibLocals, func(c *Env) { c.SetI64(0, n-1) }) {
			return Unwound
		}
		fallthrough
	case 1:
		n := e.I64(0)
		if !e.Spawn(2, 2, fuzzFibFID, fuzzFibLocals, func(c *Env) { c.SetI64(0, n-2) }) {
			return Unwound
		}
		fallthrough
	case 2:
		r1, ok := e.Join(2, e.HandleAt(1))
		if !ok {
			return Unwound
		}
		e.SetU64(3, r1)
		fallthrough
	case 3:
		r2, ok := e.Join(3, e.HandleAt(2))
		if !ok {
			return Unwound
		}
		e.ReturnU64(e.U64(3) + r2)
		return Done
	}
	panic("fuzz-fib: bad resume point")
}

// FuzzChaosFib feeds arbitrary fault-injection configurations into a
// small fib run on 4 workers and checks the robustness contract: the
// run either completes with the correct result and a clean quiescence
// check, or fails with a reported error (the MaxCycles guard) — never
// a hang, never a silently wrong answer. Completed runs are replayed
// with the same seed and must reproduce result and virtual time
// exactly.
func FuzzChaosFib(f *testing.F) {
	f.Add(uint64(1), uint16(0), uint16(0), uint16(0), uint16(0), uint16(0), uint8(0), false)
	f.Add(uint64(7), uint16(33), uint16(33), uint16(33), uint16(33), uint16(50), uint8(2), false)
	f.Add(uint64(9), uint16(999), uint16(999), uint16(999), uint16(999), uint16(999), uint8(7), true)
	f.Add(uint64(42), uint16(0), uint16(0), uint16(0), uint16(500), uint16(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, seed uint64, readP, writeP, faaP, dropP, spikeP uint16, brown uint8, hwFAA bool) {
		// Probabilities capped below 0.3: the contract is recovery from
		// lossy fabrics, not livelock-freedom at adversarial rates.
		prob := func(x uint16) float64 { return float64(x%1000) / 3334 }
		run := func() (uint64, uint64, error) {
			cfg := DefaultConfig(4)
			cfg.Seed = seed | 1
			cfg.MaxCycles = 1 << 31
			cfg.Net.HardwareFAA = hwFAA
			cfg.Fault = fault.Config{
				Seed:             seed*2 + 1,
				ReadFailProb:     prob(readP),
				WriteFailProb:    prob(writeP),
				FAAFailProb:      prob(faaP),
				ServerDropProb:   prob(dropP),
				SpikeProb:        prob(spikeP),
				SpikeMinCycles:   500,
				SpikeMaxCycles:   5_000,
				BrownoutDuration: uint64(brown%8) * 1_000,
			}
			m, err := NewMachine(cfg)
			if err != nil {
				t.Fatalf("config rejected: %v", err)
			}
			got, err := m.Run(fuzzFibFID, fuzzFibLocals, func(e *Env) { e.SetI64(0, 10) })
			if err != nil {
				return 0, 0, err
			}
			if err := m.CheckQuiescence(); err != nil {
				t.Fatalf("quiescence after recovery: %v", err)
			}
			return got, m.ElapsedCycles(), nil
		}
		got, elapsed, err := run()
		if err != nil {
			// A reported failure is within contract; log it so corpus
			// entries that trip the guard are visible.
			t.Logf("run failed cleanly: %v", err)
			return
		}
		const want = 55 // fib(10)
		if got != want {
			t.Fatalf("fib(10) = %d, want %d", got, want)
		}
		got2, elapsed2, err := run()
		if err != nil || got2 != got || elapsed2 != elapsed {
			t.Fatalf("same-seed replay diverged: result %d/%d cycles %d/%d err %v",
				got, got2, elapsed, elapsed2, err)
		}
	})
}
