package core

import (
	"testing"

	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// Fuzz targets: byte-string-driven interleavings of the THE deque and
// the region's stack discipline. `go test` runs the seed corpus as unit
// tests; `go test -fuzz=FuzzDequeInterleavings ./internal/core` explores
// further. Every finding reduces to a deterministic byte string.

// FuzzDequeInterleavings drives an owner and a thief with delays and
// operation choices taken from the fuzz input, and checks exactly-once
// delivery of every entry.
func FuzzDequeInterleavings(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 0, 255, 255, 255, 255})
	f.Add([]byte{10, 200, 30, 40, 7, 7, 7, 7, 90, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			t.Skip()
		}
		eng := sim.NewEngine()
		params := rdma.DefaultParams()
		params.HardwareFAA = true // no comm server needed
		fab := rdma.NewFabric(eng, params)
		space0 := mem.NewAddressSpace("owner")
		fab.AddEndpoint(space0)
		space1 := mem.NewAddressSpace("thief")
		fab.AddEndpoint(space1)
		d, err := NewDeque(space0, DefaultDequeBase, 64)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewDeque(space1, DefaultDequeBase, 64); err != nil {
			t.Fatal(err)
		}
		taken := map[uint64]int{}
		const total = 12
		eng.Spawn("owner", func(p *sim.Proc) {
			next := uint64(1)
			live := 0
			k := 0
			for next <= total || live > 0 {
				b := data[k%len(data)]
				k++
				if next <= total && (live == 0 || b%2 == 0) {
					if err := d.Push(Entry{FrameBase: mem.VA(next), FrameSize: next}); err == nil {
						next++
						live++
					}
				} else if e, ok := d.Pop(p, fab.Endpoint(0), 0); ok {
					taken[e.FrameSize]++
					live--
				} else {
					live = 0
				}
				p.Advance(uint64(b) * 37)
			}
			p.Advance(100_000)
		})
		eng.Spawn("thief", func(p *sim.Proc) {
			k := 0
			for i := 0; i < 200; i++ {
				b := data[(k+i)%len(data)]
				var ph StealPhases
				e, out := d.StealRemote(p, fab.Endpoint(1), 0, &ph, nil)
				if out == StealOK {
					taken[e.FrameSize]++
					d.Unlock(p, fab.Endpoint(1), 0, &ph)
				}
				p.Advance(uint64(b)*53 + 1)
			}
		})
		if _, err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= total; i++ {
			if taken[i] != 1 {
				t.Fatalf("entry %d taken %d times (input %v)", i, taken[i], data)
			}
		}
	})
}

// FuzzRegionStackDiscipline drives alloc/free/install sequences from
// the fuzz input and checks the invariant after every operation.
func FuzzRegionStackDiscipline(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{200, 100, 50, 25})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip()
		}
		space := mem.NewAddressSpace("t")
		r, err := NewRegion(space, DefaultUniBase, 1<<14)
		if err != nil {
			t.Fatal(err)
		}
		type stk struct {
			base mem.VA
			size uint64
		}
		var live []stk
		for _, b := range data {
			switch b % 3 {
			case 0, 1:
				size := uint64(b)*8 + 16
				base, err := r.AllocBelow(size)
				if err != nil {
					continue
				}
				live = append(live, stk{base, size})
			case 2:
				if len(live) > 0 {
					s := live[len(live)-1]
					if err := r.FreeLowest(s.base, s.size); err != nil {
						t.Fatal(err)
					}
					live = live[:len(live)-1]
				} else if r.Empty() {
					// Install anywhere in an empty region.
					at := r.Base() + mem.VA(uint64(b)*16%(1<<13))
					if err := r.Install(at, 64); err != nil {
						t.Fatal(err)
					}
					live = append(live, stk{at, 64})
				}
			}
			if err := r.CheckInvariant(); err != nil {
				t.Fatalf("%v (input %v)", err, data)
			}
		}
	})
}
