package core

import (
	"encoding/binary"
	"fmt"

	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/trace"
)

// Lifeline-based global load balancing, after Saraswat et al.
// (PPoPP'11) — the paper's reference [24] and the system its UTS
// numbers are compared against. Random work stealing wastes probes when
// the machine drains; with lifelines, a worker whose random steals keep
// failing goes quiescent and *registers* on its z hypercube neighbours
// (rank XOR 2^j). A neighbour that later has surplus *pushes* one of
// its queued threads to the registered worker — work distribution
// becomes push-based and probe-free at the tails of the computation.
//
// The push path is deliberately NOT one-sided: the victim's CPU
// serialises its own oldest thread into the requester's delivery
// mailbox. Running it as an ablation against the paper's pure one-sided
// random stealing measures exactly the trade the two designs make.
//
// Per-process pinned layout at LifelineBase (z = LifelineZ axes):
//
//	+0                 reqFlags[z]   u64: requesterRank+1, written by
//	                                 the inbound neighbour of axis j
//	+8z                slots[z]      delivery mailboxes, each:
//	    +0   flag      u64 (1 = delivery present)
//	    +8   frameBase u64 (the thread's uni-address VA)
//	    +16  frameSize u64
//	    +24  bytes     [LifelineMaxPush]byte (the stack image)
const (
	// DefaultLifelineBase is the base VA of the lifeline region.
	DefaultLifelineBase mem.VA = 0x6c00_0000_0000
	llSlotHdr                  = 24
)

func llSlotBytes(maxPush uint64) uint64 { return llSlotHdr + maxPush }

func llRegionBytes(z int, maxPush uint64) uint64 {
	return uint64(z)*8 + uint64(z)*llSlotBytes(maxPush)
}

func llReqVA(base mem.VA, j int) mem.VA { return base + mem.VA(j*8) }

func llSlotVA(base mem.VA, z, j int, maxPush uint64) mem.VA {
	return base + mem.VA(uint64(z)*8+uint64(j)*llSlotBytes(maxPush))
}

// lifelineNeighbors returns the hypercube out-links of rank: rank XOR
// 2^j for j < z, skipping links that leave the machine.
func lifelineNeighbors(rank, workers, z int) []int {
	var out []int
	for j := 0; j < z; j++ {
		n := rank ^ (1 << j)
		if n < workers {
			out = append(out, n)
		} else {
			out = append(out, -1) // axis unused at this machine size
		}
	}
	return out
}

// llRegister writes this worker's rank into the request slot of each
// lifeline neighbour (one small RDMA WRITE per axis). A write that the
// fabric drops landed nothing (fail-before-effect), so the axis simply
// stays unregistered; llRegistered is left false so the idle loop tries
// again on its next pass (re-registering an already-written axis is
// idempotent).
func (w *Worker) llRegister() {
	ok := true
	for j, n := range w.llOut {
		if n < 0 {
			continue
		}
		if err := w.ep.TryWriteU64(w.proc, n, llReqVA(w.m.cfg.LifelineBase, j), uint64(w.rank)+1); err != nil {
			w.stats.LifelineFaults++
			ok = false
		}
	}
	w.llRegistered = ok
}

// llServe is called from the spawn path every few task creations: if a
// lifeline request is pending and the deque holds surplus, push the
// oldest thread to the requester. Returns whether a push happened.
func (w *Worker) llServe() bool {
	cfg := &w.m.cfg
	base := cfg.LifelineBase
	served := false
	for j := range w.llOut {
		req := w.space.MustReadU64(llReqVA(base, j))
		if req == 0 {
			continue
		}
		requester := int(req - 1)
		// Keep at least one entry for ourselves.
		if w.deque.Size() < 2 {
			return served
		}
		ent, take, ok := w.deque.TakeTopBegin(w.proc, w.ep, w.rank)
		if !ok {
			return served
		}
		if ent.FrameSize > cfg.LifelineMaxPush {
			// Too big for the mailbox: treat it like a normal local
			// steal target — run it ourselves later is not possible
			// (it is an ancestor's continuation), so push it back is
			// also impossible. In practice frames are far smaller than
			// the slot; guard anyway by delivering a truncation panic.
			panic(fmt.Sprintf("core: lifeline push of %d bytes exceeds LifelineMaxPush %d",
				ent.FrameSize, cfg.LifelineMaxPush))
		}
		// Clear the request before delivering so the requester can
		// re-register after consuming.
		w.space.MustWriteU64(llReqVA(base, j), 0)
		// Serialise header+stack into the requester's mailbox slot j'
		// where j' is the shared axis (same j by symmetry of XOR).
		slot := llSlotVA(base, len(w.llOut), j, cfg.LifelineMaxPush)
		var hdr [llSlotHdr]byte
		binary.LittleEndian.PutUint64(hdr[0:], 1)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(ent.FrameBase))
		binary.LittleEndian.PutUint64(hdr[16:], ent.FrameSize)
		stack, err := w.space.Slice(ent.FrameBase, ent.FrameSize)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, llSlotHdr+ent.FrameSize)
		copy(buf[llSlotHdr:], stack)
		// Write payload first, flag last? One write delivers both at
		// its completion instant (atomic in the DES), so a single
		// WRITE with the flag included is safe.
		copy(buf[:llSlotHdr], hdr[:])
		if w.m.injector == nil {
			// No faults possible: release the deque lock before the
			// delivery write, like the pre-injection protocol — holding
			// it across a fabric op would perturb fault-free timings.
			take.Commit()
			w.ep.Write(w.proc, requester, slot, buf)
		} else if err := w.ep.TryWrite(w.proc, requester, slot, buf); err != nil {
			// Delivery failed with nothing landed: restore the request
			// flag (the requester is still waiting) and put the thread
			// back — the take held the deque lock throughout, so the
			// abort is race-free.
			w.space.MustWriteU64(llReqVA(base, j), req)
			take.Abort()
			w.stats.LifelineFaults++
			continue
		} else {
			take.Commit()
		}
		w.stats.LifelinePushes++
		served = true
		if w.obs != nil {
			tid := obs.TaskID(frameTaskID(w.space, ent.FrameBase))
			w.obs.Instant(obs.KLifelinePush, ent.FrameSize, tid, requester)
			w.m.obs.TaskMoved(tid, w.rank, requester)
		}
		// The pushed thread's local bytes are dead; like a stolen
		// thread they are reclaimed by clearDead when we go idle.
	}
	return served
}

// llConsume checks this worker's delivery mailboxes; if a thread was
// pushed, it is installed at its own uni-address and run. Returns
// whether anything ran.
func (w *Worker) llConsume() bool {
	cfg := &w.m.cfg
	ran := false
	for j := range w.llOut {
		slot := llSlotVA(cfg.LifelineBase, len(w.llOut), j, cfg.LifelineMaxPush)
		if w.space.MustReadU64(slot) == 0 {
			continue
		}
		frameBase := mem.VA(w.space.MustReadU64(slot + 8))
		frameSize := w.space.MustReadU64(slot + 16)
		w.space.MustWriteU64(slot, 0)
		// Install the pushed stack at its original address (the region
		// is empty: only idle workers consume) and copy the bytes in.
		w.adv(w.costs.ResumeCPU + w.costs.copyCycles(frameSize))
		if err := w.region.Install(frameBase, frameSize); err != nil {
			panic(err)
		}
		src, err := w.space.Slice(slot+llSlotHdr, frameSize)
		if err != nil {
			panic(err)
		}
		dst, err := w.space.Slice(frameBase, frameSize)
		if err != nil {
			panic(err)
		}
		copy(dst, src)
		w.stats.LifelineReceives++
		if w.obs != nil {
			w.obs.Instant(obs.KLifelineRecv, frameSize,
				obs.TaskID(frameTaskID(w.space, frameBase)), w.llOut[j])
		}
		w.llRegistered = false // re-register next time we idle
		w.mark(trace.Work)
		w.invoke(frameBase, frameSize)
		ran = true
	}
	return ran
}
