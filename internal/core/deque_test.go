package core

import (
	"testing"
	"testing/quick"

	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// dequeRig builds an engine with two endpoints sharing the deque
// layout: rank 0 is the owner, rank 1 the thief.
type dequeRig struct {
	eng    *sim.Engine
	fab    *rdma.Fabric
	owner  *Deque
	spaces []*mem.AddressSpace
}

func newDequeRig(t *testing.T, cap uint64) *dequeRig {
	t.Helper()
	rig := &dequeRig{eng: sim.NewEngine()}
	params := rdma.DefaultParams()
	params.HardwareFAA = true // no comm server needed for these tests
	rig.fab = rdma.NewFabric(rig.eng, params)
	for i := 0; i < 2; i++ {
		s := mem.NewAddressSpace("p")
		rig.fab.AddEndpoint(s)
		rig.spaces = append(rig.spaces, s)
	}
	var err error
	rig.owner, err = NewDeque(rig.spaces[0], DefaultDequeBase, cap)
	if err != nil {
		t.Fatal(err)
	}
	// The thief needs the layout mapped locally too (for symmetry; it
	// only issues remote ops here).
	if _, err := NewDeque(rig.spaces[1], DefaultDequeBase, cap); err != nil {
		t.Fatal(err)
	}
	return rig
}

func TestDequeLocalPushPopLIFO(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		ep := rig.fab.Endpoint(0)
		for i := uint64(1); i <= 5; i++ {
			if err := rig.owner.Push(Entry{FrameBase: mem.VA(i * 0x100), FrameSize: i}); err != nil {
				t.Error(err)
			}
		}
		for i := uint64(5); i >= 1; i-- {
			e, ok := rig.owner.Pop(p, ep, 0)
			if !ok || e.FrameSize != i {
				t.Errorf("pop %d: ok=%v size=%d", i, ok, e.FrameSize)
			}
		}
		if _, ok := rig.owner.Pop(p, ep, 0); ok {
			t.Error("pop from empty succeeded")
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeOverflowReported(t *testing.T) {
	rig := newDequeRig(t, 4)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			if err := rig.owner.Push(Entry{FrameBase: 1, FrameSize: 1}); err != nil {
				t.Error(err)
			}
		}
		if err := rig.owner.Push(Entry{FrameBase: 1, FrameSize: 1}); err == nil {
			t.Error("overflow not reported")
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeRemoteStealFIFO(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		for i := uint64(1); i <= 3; i++ {
			rig.owner.Push(Entry{FrameBase: mem.VA(i), FrameSize: i})
		}
		p.Advance(1_000_000) // stay alive while the thief works
	})
	rig.eng.Spawn("thief", func(p *sim.Proc) {
		p.Advance(1000) // let the owner push first
		ep := rig.fab.Endpoint(1)
		var ph StealPhases
		for i := uint64(1); i <= 3; i++ {
			e, out := rig.owner.StealRemote(p, ep, 0, &ph, nil)
			if out != StealOK || e.FrameSize != i {
				t.Errorf("steal %d: out=%v size=%d", i, out, e.FrameSize)
			}
			rig.owner.Unlock(p, ep, 0, &ph)
		}
		if _, out := rig.owner.StealRemote(p, ep, 0, &ph, nil); out != StealEmpty {
			t.Errorf("steal from empty: %v", out)
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeStealLockBusy(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("setup", func(p *sim.Proc) {
		rig.owner.Push(Entry{FrameBase: 1, FrameSize: 1})
		// Simulate a lock holder.
		rig.spaces[0].MustWriteU64(DefaultDequeBase+dqLockOff, 1)
	})
	rig.eng.Spawn("thief", func(p *sim.Proc) {
		p.Advance(100)
		var ph StealPhases
		if _, out := rig.owner.StealRemote(p, rig.fab.Endpoint(1), 0, &ph, nil); out != StealLockBusy {
			t.Errorf("outcome %v, want lock-busy", out)
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeStealRejectLeavesEntry(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		rig.owner.Push(Entry{FrameBase: 0xabc, FrameSize: 7})
		p.Advance(1_000_000)
	})
	rig.eng.Spawn("thief", func(p *sim.Proc) {
		p.Advance(1000)
		ep := rig.fab.Endpoint(1)
		var ph StealPhases
		e, out := rig.owner.StealRemote(p, ep, 0, &ph, func(Entry) bool { return false })
		if out != StealReject || e.FrameBase != 0xabc {
			t.Errorf("outcome %v entry %+v", out, e)
		}
		// The rejected entry must still be stealable.
		e, out = rig.owner.StealRemote(p, ep, 0, &ph, nil)
		if out != StealOK || e.FrameSize != 7 {
			t.Errorf("entry lost after reject: %v %+v", out, e)
		}
		rig.owner.Unlock(p, ep, 0, &ph)
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDequeTHELastElementRace drives the classic THE conflict: the
// owner pops while a thief steals the only entry. Exactly one must win.
func TestDequeTHELastElementRace(t *testing.T) {
	for delay := uint64(0); delay < 30000; delay += 1500 {
		rig := newDequeRig(t, 16)
		var ownerGot, thiefGot int
		rig.eng.Spawn("owner", func(p *sim.Proc) {
			rig.owner.Push(Entry{FrameBase: 0x42, FrameSize: 42})
			p.Advance(delay) // vary the interleaving against the steal
			if _, ok := rig.owner.Pop(p, rig.fab.Endpoint(0), 0); ok {
				ownerGot++
			}
		})
		rig.eng.Spawn("thief", func(p *sim.Proc) {
			p.Advance(10)
			var ph StealPhases
			e, out := rig.owner.StealRemote(p, rig.fab.Endpoint(1), 0, &ph, nil)
			switch out {
			case StealOK:
				if e.FrameSize != 42 {
					t.Errorf("stole corrupt entry %+v", e)
				}
				thiefGot++
				rig.owner.Unlock(p, rig.fab.Endpoint(1), 0, &ph)
			case StealLockBusy, StealEmpty, StealEmptyLocked:
			}
		})
		if _, err := rig.eng.Run(); err != nil {
			t.Fatal(err)
		}
		if ownerGot+thiefGot != 1 {
			t.Fatalf("delay %d: entry taken %d times (owner %d, thief %d)",
				delay, ownerGot+thiefGot, ownerGot, thiefGot)
		}
	}
}

// Property: randomized owner pushes/pops against a stealing thief never
// lose or duplicate an entry.
func TestDequeNoLossNoDupProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rig := newDequeRig(t, 256)
		const total = 60
		taken := make(map[uint64]int)
		rig.eng.Spawn("owner", func(p *sim.Proc) {
			rng := sim.NewRNG(seed | 1)
			next := uint64(1)
			live := 0
			for next <= total || live > 0 {
				if next <= total && (live == 0 || rng.Intn(2) == 0) {
					if err := rig.owner.Push(Entry{FrameBase: mem.VA(next), FrameSize: next}); err == nil {
						next++
						live++
					}
				} else {
					if e, ok := rig.owner.Pop(p, rig.fab.Endpoint(0), 0); ok {
						taken[e.FrameSize]++
						live--
					} else {
						live = 0 // rest were stolen
					}
				}
				p.Advance(uint64(rng.Intn(3000)))
			}
			p.Advance(200_000) // let the thief finish draining
		})
		rig.eng.Spawn("thief", func(p *sim.Proc) {
			rng := sim.NewRNG(seed | 2)
			for i := 0; i < 400; i++ {
				var ph StealPhases
				e, out := rig.owner.StealRemote(p, rig.fab.Endpoint(1), 0, &ph, nil)
				if out == StealOK {
					taken[e.FrameSize]++
					rig.owner.Unlock(p, rig.fab.Endpoint(1), 0, &ph)
				}
				p.Advance(uint64(rng.Intn(2000)))
			}
		})
		if _, err := rig.eng.Run(); err != nil {
			return false
		}
		for i := uint64(1); i <= total; i++ {
			if taken[i] != 1 {
				t.Logf("seed %d: entry %d taken %d times", seed, i, taken[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDequeRingWrap(t *testing.T) {
	rig := newDequeRig(t, 4)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		ep := rig.fab.Endpoint(0)
		// Push/pop more entries than the capacity: indices keep rising,
		// the ring wraps, nothing corrupts.
		for round := uint64(0); round < 10; round++ {
			for i := uint64(0); i < 3; i++ {
				if err := rig.owner.Push(Entry{FrameBase: mem.VA(round), FrameSize: round*10 + i}); err != nil {
					t.Error(err)
				}
			}
			for i := uint64(3); i > 0; i-- {
				e, ok := rig.owner.Pop(p, ep, 0)
				if !ok || e.FrameSize != round*10+i-1 {
					t.Errorf("round %d: pop got %+v ok=%v", round, e, ok)
				}
			}
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDequeMaxDepthTracked(t *testing.T) {
	rig := newDequeRig(t, 64)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		for i := 0; i < 7; i++ {
			rig.owner.Push(Entry{FrameBase: 1, FrameSize: 1})
		}
		for i := 0; i < 7; i++ {
			rig.owner.Pop(p, rig.fab.Endpoint(0), 0)
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rig.owner.MaxDepth() != 7 {
		t.Fatalf("max depth %d, want 7", rig.owner.MaxDepth())
	}
}

// scriptInjector fails exactly the remote ops whose 1-based decision
// index is listed; every other op passes untouched. In these tests all
// remote traffic comes from the thief, so indices count its fabric ops
// in program order.
type scriptInjector struct {
	n    int
	fail map[int]bool
}

func (s *scriptInjector) Decide(op rdma.OpKind, from, target, bytes int, now uint64) (uint64, bool) {
	s.n++
	return 0, s.fail[s.n]
}

// TestDequeStealFaultRollback drives one injected fault into each
// fabric op of the steal protocol in turn and checks the invariant
// StealFault promises: the victim's deque is left consistent (lock
// free, entry still present) and a clean retry succeeds.
//
// Thief op indices: 1 empty-check READ, 2 lock FAA, 3 top re-read,
// 4 claiming top WRITE, 5 bottom READ, 6 entry READ. Ops 5 and 6 fail
// *after* the claim landed, exercising the THE abort path.
func TestDequeStealFaultRollback(t *testing.T) {
	cases := []struct {
		name   string
		failOp int
	}{
		{"empty-check-read", 1},
		{"lock-faa", 2},
		{"top-reread", 3},
		{"claim-write", 4},
		{"bottom-read-after-claim", 5},
		{"entry-read-after-claim", 6},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rig := newDequeRig(t, 16)
			rig.fab.SetInjector(&scriptInjector{fail: map[int]bool{tc.failOp: true}})
			rig.eng.Spawn("owner", func(p *sim.Proc) {
				rig.owner.Push(Entry{FrameBase: 0x7a57, FrameSize: 99})
				p.Advance(5_000_000)
			})
			rig.eng.Spawn("thief", func(p *sim.Proc) {
				p.Advance(1000)
				ep := rig.fab.Endpoint(1)
				var ph StealPhases
				if _, out := rig.owner.StealRemote(p, ep, 0, &ph, nil); out != StealFault {
					t.Fatalf("fail op %d: outcome %v, want fault", tc.failOp, out)
				}
				// Rollback invariant: lock released, indices restored.
				if l := rig.spaces[0].MustReadU64(DefaultDequeBase + dqLockOff); l != 0 {
					t.Fatalf("fail op %d: lock left held (%d)", tc.failOp, l)
				}
				// The script is exhausted, so a retry must find the entry
				// untouched.
				e, out := rig.owner.StealRemote(p, ep, 0, &ph, nil)
				if out != StealOK || e.FrameBase != 0x7a57 || e.FrameSize != 99 {
					t.Fatalf("fail op %d: retry got %v %+v", tc.failOp, out, e)
				}
				rig.owner.Unlock(p, ep, 0, &ph)
			})
			if _, err := rig.eng.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDequeStealFaultVictimPops checks exactly-once delivery when the
// steal faults mid-protocol and the victim then pops: the rolled-back
// entry must go to the owner, and the thief's retry must find the
// deque empty — never a duplicate, never a loss.
func TestDequeStealFaultVictimPops(t *testing.T) {
	for _, failOp := range []int{4, 5, 6} { // at and after the claim
		rig := newDequeRig(t, 16)
		rig.fab.SetInjector(&scriptInjector{fail: map[int]bool{failOp: true}})
		got := 0
		rig.eng.Spawn("owner", func(p *sim.Proc) {
			rig.owner.Push(Entry{FrameBase: 0xbeef, FrameSize: 7})
			p.Advance(3_000_000) // thief faults and rolls back in here
			if e, ok := rig.owner.Pop(p, rig.fab.Endpoint(0), 0); ok {
				if e.FrameSize != 7 {
					t.Errorf("fail op %d: owner popped corrupt entry %+v", failOp, e)
				}
				got++
			}
		})
		rig.eng.Spawn("thief", func(p *sim.Proc) {
			p.Advance(1000)
			ep := rig.fab.Endpoint(1)
			var ph StealPhases
			if e, out := rig.owner.StealRemote(p, ep, 0, &ph, nil); out != StealFault {
				if out == StealOK {
					got++
					rig.owner.Unlock(p, ep, 0, &ph)
					_ = e
				}
				t.Errorf("fail op %d: outcome %v, want fault", failOp, out)
			}
			p.Advance(4_000_000) // after the owner's pop
			if _, out := rig.owner.StealRemote(p, ep, 0, &ph, nil); out != StealEmpty {
				t.Errorf("fail op %d: post-pop steal outcome %v, want empty", failOp, out)
			}
		})
		if _, err := rig.eng.Run(); err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("fail op %d: entry delivered %d times, want exactly once", failOp, got)
		}
	}
}

// TestDequeAbortRemote exercises the caller-side rollback used when the
// stack transfer fails after StealOK: AbortRemote must return the
// claimed entry to the victim and release the lock.
func TestDequeAbortRemote(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		rig.owner.Push(Entry{FrameBase: 0xf00d, FrameSize: 13})
		p.Advance(2_000_000)
		// After the thief aborted, the entry is ours again.
		e, ok := rig.owner.Pop(p, rig.fab.Endpoint(0), 0)
		if !ok || e.FrameBase != 0xf00d || e.FrameSize != 13 {
			t.Errorf("owner pop after abort: ok=%v %+v", ok, e)
		}
	})
	rig.eng.Spawn("thief", func(p *sim.Proc) {
		p.Advance(1000)
		ep := rig.fab.Endpoint(1)
		var ph StealPhases
		e, out := rig.owner.StealRemote(p, ep, 0, &ph, nil)
		if out != StealOK || e.FrameSize != 13 {
			t.Fatalf("steal: %v %+v", out, e)
		}
		// Simulate a failed stack transfer: give the entry back.
		rig.owner.AbortRemote(p, ep, 0, &ph)
		if l := rig.spaces[0].MustReadU64(DefaultDequeBase + dqLockOff); l != 0 {
			t.Fatalf("lock left held after abort")
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDequeTakeTopAbort checks the lifeline-push rollback: TakeTopBegin
// claims the oldest entry under the held local lock; Abort must restore
// it so both owner pop and remote steal still see it exactly once.
func TestDequeTakeTopAbort(t *testing.T) {
	rig := newDequeRig(t, 16)
	rig.eng.Spawn("owner", func(p *sim.Proc) {
		ep := rig.fab.Endpoint(0)
		rig.owner.Push(Entry{FrameBase: 0x1, FrameSize: 1})
		rig.owner.Push(Entry{FrameBase: 0x2, FrameSize: 2})
		e, take, ok := rig.owner.TakeTopBegin(p, ep, 0)
		if !ok || e.FrameSize != 1 {
			t.Fatalf("take-top: ok=%v %+v", ok, e)
		}
		take.Abort()
		if n := rig.owner.Size(); n != 2 {
			t.Fatalf("size %d after abort, want 2", n)
		}
		// Commit path: the entry leaves for good.
		e, take, ok = rig.owner.TakeTopBegin(p, ep, 0)
		if !ok || e.FrameSize != 1 {
			t.Fatalf("take-top after abort: ok=%v %+v", ok, e)
		}
		take.Commit()
		if n := rig.owner.Size(); n != 1 {
			t.Fatalf("size %d after commit, want 1", n)
		}
		e, ok2 := rig.owner.Pop(p, ep, 0)
		if !ok2 || e.FrameSize != 2 {
			t.Fatalf("pop after commit: ok=%v %+v", ok2, e)
		}
	})
	if _, err := rig.eng.Run(); err != nil {
		t.Fatal(err)
	}
}
