// Package sim implements a conservative, sequential discrete-event
// simulation engine with coroutine-style processes.
//
// The engine owns a virtual clock measured in CPU cycles. Each simulated
// process (Proc) runs in its own goroutine, but the engine guarantees
// that exactly one process executes at a time and that processes are
// dispatched in global (time, sequence) order. Everything a process does
// between two scheduling points is therefore atomic at a single instant
// of virtual time, which gives race-free, deterministic semantics to the
// simulated shared-memory and RDMA operations built on top.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled wake-up for a process or a callback.
type event struct {
	at   uint64 // virtual time in cycles
	seq  uint64 // tie-breaker: insertion order
	proc *Proc  // process to resume (nil for callbacks)
	fn   func() // callback to run (when proc == nil)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create one with NewEngine.
type Engine struct {
	now     uint64
	seq     uint64
	events  eventHeap
	procs   []*Proc
	running bool
	stopped bool
	// handoff is signalled by a proc when it yields control back to the
	// engine loop.
	handoff chan struct{}
	// live counts procs that have been started and have not finished.
	live int
	// err records the first panic propagated out of a proc.
	err error
	// dispatched counts processed events (simulator-performance metric).
	dispatched uint64
}

// EventsDispatched returns the number of events the engine has
// processed — the denominator for real-time-per-event measurements.
func (e *Engine) EventsDispatched() uint64 { return e.dispatched }

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{handoff: make(chan struct{})}
}

// Now returns the current virtual time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// Running reports whether the engine is inside Run — i.e. simulated
// processes may still mutate state. Snapshot accessors that are only
// meaningful at quiescence assert !Running().
func (e *Engine) Running() bool { return e.running }

// Stop requests the simulation to end. Pending events are discarded once
// control returns to the engine loop. Procs that are still blocked are
// abandoned (their goroutines are released).
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

func (e *Engine) schedule(at uint64, p *Proc, fn func()) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p, fn: fn})
}

// After schedules fn to run at now+delay. fn executes in the engine's
// dispatch context and must not block.
func (e *Engine) After(delay uint64, fn func()) {
	e.schedule(e.now+delay, nil, fn)
}

// Spawn registers a new process whose body is fn. The process is
// scheduled to start at the current virtual time. It returns the Proc,
// which fn also receives.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     len(e.procs),
		name:   name,
		resume: make(chan struct{}),
		body:   fn,
	}
	e.procs = append(e.procs, p)
	e.live++
	e.schedule(e.now, p, nil)
	return p
}

// Run dispatches events until the event queue is empty, Stop is called,
// or every process has finished. It returns the virtual time at which
// the simulation ended.
func (e *Engine) Run() (uint64, error) {
	if e.running {
		return e.now, fmt.Errorf("sim: engine already running")
	}
	e.running = true
	defer func() { e.running = false }()
	for !e.stopped && e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			return e.now, fmt.Errorf("sim: event at %d before now %d", ev.at, e.now)
		}
		e.now = ev.at
		e.dispatched++
		if ev.proc != nil {
			if ev.proc.cancelled {
				continue
			}
			e.dispatch(ev.proc)
			if e.err != nil {
				return e.now, e.err
			}
		} else if ev.fn != nil {
			ev.fn()
		}
	}
	// Release any procs still parked so their goroutines can exit.
	for _, p := range e.procs {
		if p.started && !p.finished {
			p.cancelled = true
			select {
			case p.resume <- struct{}{}:
				<-e.handoff
			default:
			}
		}
	}
	return e.now, e.err
}

// dispatch hands control to p and waits until it yields.
func (e *Engine) dispatch(p *Proc) {
	if !p.started {
		p.started = true
		go p.run()
	} else {
		p.resume <- struct{}{}
	}
	<-e.handoff
}
