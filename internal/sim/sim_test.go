package sim

import (
	"testing"
	"testing/quick"
)

func TestAdvanceOrdering(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Spawn("a", func(p *Proc) {
		p.Advance(10)
		order = append(order, 1)
		p.Advance(20) // wakes at 30
		order = append(order, 3)
	})
	eng.Spawn("b", func(p *Proc) {
		p.Advance(20)
		order = append(order, 2)
		p.Advance(20) // wakes at 40
		order = append(order, 4)
	})
	end, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 40 {
		t.Fatalf("end time = %d, want 40", end)
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	eng := NewEngine()
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		eng.Spawn(name, func(p *Proc) {
			p.Advance(5)
			order = append(order, name)
		})
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if order[0] != "x" || order[1] != "y" || order[2] != "z" {
		t.Fatalf("tie-break order = %v", order)
	}
}

func TestBlockUnblock(t *testing.T) {
	eng := NewEngine()
	var got uint64
	var waiter *Proc
	waiter = eng.Spawn("waiter", func(p *Proc) {
		p.Block()
		got = p.Now()
	})
	eng.Spawn("waker", func(p *Proc) {
		p.Advance(100)
		p.Unblock(waiter, 25)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 125 {
		t.Fatalf("waiter resumed at %d, want 125", got)
	}
}

func TestAfterCallback(t *testing.T) {
	eng := NewEngine()
	fired := uint64(0)
	eng.After(77, func() { fired = eng.Now() })
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 77 {
		t.Fatalf("callback at %d, want 77", fired)
	}
}

func TestStopAbandonsBlockedProcs(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("stuck", func(p *Proc) {
		p.Block() // never unblocked
		t.Error("stuck proc resumed unexpectedly")
	})
	eng.Spawn("stopper", func(p *Proc) {
		p.Advance(10)
		p.Engine().Stop()
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !eng.Stopped() {
		t.Fatal("engine not stopped")
	}
}

func TestProcPanicSurfacesAsError(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("boom", func(p *Proc) {
		p.Advance(1)
		panic("kaboom")
	})
	if _, err := eng.Run(); err == nil {
		t.Fatal("expected error from panicking proc")
	}
}

func TestTimeNeverGoesBackwards(t *testing.T) {
	eng := NewEngine()
	var last uint64
	for i := 0; i < 8; i++ {
		seed := uint64(i + 1)
		eng.Spawn("w", func(p *Proc) {
			p.SeedRNG(seed)
			for j := 0; j < 50; j++ {
				before := p.Now()
				p.Advance(uint64(p.RNG().Intn(100)))
				if p.Now() < before {
					t.Errorf("time went backwards: %d -> %d", before, p.Now())
				}
				if p.Now() < last {
					t.Errorf("global time went backwards: %d after %d", p.Now(), last)
				}
				last = p.Now()
			}
		})
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs the same randomized workload twice and requires
// identical final times and event interleavings.
func TestDeterminism(t *testing.T) {
	run := func() (uint64, []int) {
		eng := NewEngine()
		var trace []int
		for i := 0; i < 6; i++ {
			id := i
			eng.Spawn("w", func(p *Proc) {
				p.SeedRNG(uint64(id)*7 + 3)
				for j := 0; j < 40; j++ {
					p.Advance(uint64(p.RNG().Intn(37) + 1))
					trace = append(trace, id)
				}
			})
		}
		end, err := eng.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end, trace
	}
	end1, tr1 := run()
	end2, tr2 := run()
	if end1 != end2 {
		t.Fatalf("non-deterministic end times: %d vs %d", end1, end2)
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, tr1[i], tr2[i])
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		if n == 0 {
			return true
		}
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(int(n))
			if v < 0 || v >= int(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGZeroSeedNotAbsorbing(t *testing.T) {
	r := NewRNG(0)
	a, b := r.Uint64(), r.Uint64()
	if a == 0 && b == 0 {
		t.Fatal("zero seed produced zero stream")
	}
	if a == b {
		t.Fatal("RNG repeated immediately")
	}
}

func TestRNGDistinctSeedsDistinctStreams(t *testing.T) {
	r1, r2 := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if r1.Uint64() == r2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different seeds coincide %d/64 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(42)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestEngineEmptyRun(t *testing.T) {
	eng := NewEngine()
	end, err := eng.Run()
	if err != nil || end != 0 {
		t.Fatalf("empty run: end=%d err=%v", end, err)
	}
}

func TestZeroCycleAdvanceKeepsFIFO(t *testing.T) {
	eng := NewEngine()
	var order []int
	eng.Spawn("a", func(p *Proc) {
		p.Advance(0)
		order = append(order, 0)
		p.Advance(0)
		order = append(order, 2)
	})
	eng.Spawn("b", func(p *Proc) {
		p.Advance(0)
		order = append(order, 1)
		p.Advance(0)
		order = append(order, 3)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("zero-advance order = %v", order)
		}
	}
}

func TestEventsDispatchedCounts(t *testing.T) {
	eng := NewEngine()
	eng.Spawn("w", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(5)
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// 1 spawn event + 10 advance wake-ups.
	if got := eng.EventsDispatched(); got != 11 {
		t.Fatalf("events = %d, want 11", got)
	}
}
