package sim

import "fmt"

// Proc is a simulated process: a coroutine scheduled by the Engine.
// All exported methods must be called from the proc's own goroutine
// (i.e., from within its body function) unless documented otherwise.
type Proc struct {
	eng  *Engine
	id   int
	name string
	body func(p *Proc)

	resume    chan struct{}
	started   bool
	finished  bool
	cancelled bool
	blocked   bool
	rng       RNG
}

// ID returns the process identifier (dense, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the debug name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() uint64 { return p.eng.now }

// RNG returns the process's deterministic random number generator.
// Seed it with SeedRNG before first use if a non-default stream is
// wanted.
func (p *Proc) RNG() *RNG { return &p.rng }

// SeedRNG seeds the per-process RNG.
func (p *Proc) SeedRNG(seed uint64) { p.rng = NewRNG(seed) }

func (p *Proc) run() {
	defer func() {
		p.finished = true
		p.eng.live--
		if r := recover(); r != nil {
			if r == errCancelled {
				// Engine tear-down: exit silently.
				p.eng.handoff <- struct{}{}
				return
			}
			if p.eng.err == nil {
				p.eng.err = fmt.Errorf("sim: proc %d (%s) panicked: %v", p.id, p.name, r)
			}
		}
		p.eng.handoff <- struct{}{}
	}()
	p.body(p)
}

// sentinel used to unwind cancelled procs.
var errCancelled = new(int)

// yield returns control to the engine loop and parks until resumed.
func (p *Proc) yield() {
	p.eng.handoff <- struct{}{}
	<-p.resume
	if p.cancelled {
		panic(errCancelled)
	}
}

// Advance moves this process's clock forward by cycles, yielding to the
// engine so other processes with earlier timestamps run first. On
// return, the virtual clock is exactly start+cycles and the process is
// executing atomically at that instant.
func (p *Proc) Advance(cycles uint64) {
	p.eng.schedule(p.eng.now+cycles, p, nil)
	p.yield()
}

// Block parks the process with no scheduled wake-up. Another process
// must call Unblock (from engine context) to resume it. Returns after
// being unblocked.
func (p *Proc) Block() {
	if p.blocked {
		panic("sim: double block")
	}
	p.blocked = true
	p.yield()
}

// Unblock schedules a blocked process q to resume after delay cycles.
// It may be called by any process or callback in engine context.
func (p *Proc) Unblock(q *Proc, delay uint64) {
	if !q.blocked {
		panic("sim: unblock of non-blocked proc " + q.name)
	}
	q.blocked = false
	p.eng.schedule(p.eng.now+delay, q, nil)
}

// UnblockProc is Unblock callable from engine context (e.g. an After
// callback), scheduling q to resume after delay cycles.
func (e *Engine) UnblockProc(q *Proc, delay uint64) {
	if !q.blocked {
		panic("sim: unblock of non-blocked proc " + q.name)
	}
	q.blocked = false
	e.schedule(e.now+delay, q, nil)
}

// Blocked reports whether q is currently parked in Block.
func (q *Proc) Blocked() bool { return q.blocked }

// Finished reports whether the proc's body has returned.
func (q *Proc) Finished() bool { return q.finished }
