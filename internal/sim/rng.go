package sim

// RNG is a small, fast, deterministic pseudo-random number generator
// (xorshift64*). Each simulated process owns one so that simulation
// outcomes are reproducible regardless of host scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed (zero is mapped to a fixed
// non-zero constant, since the all-zero state is absorbing).
func NewRNG(seed uint64) RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudo-random int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}
