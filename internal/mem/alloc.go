package mem

import "fmt"

// Allocator is a first-fit free-list allocator over a Region. The
// scheduler uses one per process to carve the pinned RDMA region into
// saved-thread stack buffers, task records, and deque storage (the
// paper's pinned_malloc).
//
// Block metadata is kept on the Go side (not inside simulated memory):
// real allocators store headers in memory, but the header layout is not
// load-bearing for any experiment, while keeping the simulated bytes
// purely payload simplifies byte-exact stack-copy assertions.
type Allocator struct {
	region *Region
	free   []span // sorted by base, coalesced
	inUse  map[VA]uint64
	peak   uint64
	used   uint64
	// nextFit rotates the search start through the region instead of
	// always reusing the lowest free addresses. The iso-address scheme
	// uses it to model PM2-style isomalloc, where live stacks spread
	// over the reserved range as the task tree wanders (so migrations
	// keep touching fresh pages — the paper's §4 fault-per-migration
	// premise).
	nextFit bool
	cursor  VA
}

// SetNextFit toggles next-fit (rotating) allocation.
func (a *Allocator) SetNextFit(v bool) { a.nextFit = v }

type span struct {
	base VA
	size uint64
}

// NewAllocator returns an allocator managing all bytes of r.
func NewAllocator(r *Region) *Allocator {
	return &Allocator{
		region: r,
		free:   []span{{base: r.Base, size: r.Size}},
		inUse:  make(map[VA]uint64),
	}
}

// Region returns the region being managed.
func (a *Allocator) Region() *Region { return a.region }

const allocAlign = 16

func alignUp(n uint64) uint64 { return (n + allocAlign - 1) &^ (allocAlign - 1) }

// Alloc returns the base address of a fresh block of at least size
// bytes, or an error when the region is exhausted.
func (a *Allocator) Alloc(size uint64) (VA, error) {
	if size == 0 {
		size = 1
	}
	size = alignUp(size)
	start := 0
	if a.nextFit {
		// Resume from the span containing (or following) the cursor; if
		// the cursor falls inside a span, carve from the cursor so the
		// allocation point really advances through the region.
		for i := range a.free {
			sp := a.free[i]
			if sp.base >= a.cursor {
				start = i
				break
			}
			if a.cursor < sp.base+VA(sp.size) {
				if sp.base+VA(sp.size)-a.cursor >= VA(size) {
					return a.take(i, a.cursor, size), nil
				}
				start = i + 1
				break
			}
		}
		if start >= len(a.free) {
			start = 0 // wrap
		}
	}
	n := len(a.free)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if a.free[i].size >= size {
			return a.take(i, a.free[i].base, size), nil
		}
	}
	return 0, fmt.Errorf("mem: allocator %q out of space (want %d, used %d of %d)",
		a.region.Name, size, a.used, a.region.Size)
}

// take carves [at, at+size) out of free span i (at must lie inside the
// span with room for size) and records the allocation.
func (a *Allocator) take(i int, at VA, size uint64) VA {
	sp := a.free[i]
	left := span{base: sp.base, size: uint64(at - sp.base)}
	right := span{base: at + VA(size), size: uint64(sp.base+VA(sp.size)) - uint64(at) - size}
	switch {
	case left.size > 0 && right.size > 0:
		a.free[i] = left
		a.free = append(a.free, span{})
		copy(a.free[i+2:], a.free[i+1:])
		a.free[i+1] = right
	case left.size > 0:
		a.free[i] = left
	case right.size > 0:
		a.free[i] = right
	default:
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.inUse[at] = size
	a.used += size
	if a.used > a.peak {
		a.peak = a.used
	}
	a.cursor = at + VA(size)
	return at
}

// MustAlloc is Alloc that panics on exhaustion.
func (a *Allocator) MustAlloc(size uint64) VA {
	va, err := a.Alloc(size)
	if err != nil {
		panic(err)
	}
	return va
}

// Free releases a block previously returned by Alloc.
func (a *Allocator) Free(base VA) {
	size, ok := a.inUse[base]
	if !ok {
		panic(fmt.Sprintf("mem: free of unallocated address %#x in %q", base, a.region.Name))
	}
	delete(a.inUse, base)
	a.used -= size
	// Insert, keeping the list sorted, then coalesce with neighbours.
	lo, hi := 0, len(a.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if a.free[mid].base < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	a.free = append(a.free, span{})
	copy(a.free[lo+1:], a.free[lo:])
	a.free[lo] = span{base: base, size: size}
	// Coalesce with next.
	if lo+1 < len(a.free) && a.free[lo].base+VA(a.free[lo].size) == a.free[lo+1].base {
		a.free[lo].size += a.free[lo+1].size
		a.free = append(a.free[:lo+1], a.free[lo+2:]...)
	}
	// Coalesce with previous.
	if lo > 0 && a.free[lo-1].base+VA(a.free[lo-1].size) == a.free[lo].base {
		a.free[lo-1].size += a.free[lo].size
		a.free = append(a.free[:lo], a.free[lo+1:]...)
	}
}

// Used returns the number of bytes currently allocated.
func (a *Allocator) Used() uint64 { return a.used }

// Peak returns the high-water mark of allocated bytes.
func (a *Allocator) Peak() uint64 { return a.peak }

// Live returns the number of outstanding blocks.
func (a *Allocator) Live() int { return len(a.inUse) }
