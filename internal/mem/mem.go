// Package mem models per-process virtual address spaces for the
// simulated cluster.
//
// Each simulated process owns an AddressSpace holding a set of reserved
// Regions. A Region tracks demand paging at page granularity: the first
// access to a page "commits" it (allocates a physical page) and counts a
// page fault, mirroring the first-touch behaviour that makes iso-address
// migration expensive (paper §4, item 2). Pinned regions — required for
// RDMA access — commit all of their pages eagerly, exactly as pinning
// does on real hardware.
//
// Addresses are plain uint64 virtual addresses (type VA). The package
// also keeps per-space accounting of reserved and committed bytes so the
// iso-address vs uni-address address-space comparison (paper §4/§5) can
// be measured rather than asserted.
package mem

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// VA is a simulated virtual address.
type VA uint64

// DefaultPageSize matches the 4 KiB base page size assumed in the paper's
// §4 analysis.
const DefaultPageSize = 4096

// Region is a reserved range of virtual addresses with byte-addressable
// backing store and per-page commit state.
type Region struct {
	Name   string
	Base   VA
	Size   uint64
	Pinned bool

	space     *AddressSpace
	data      []byte
	committed []bool
	faults    uint64
}

// End returns one past the last address of the region.
func (r *Region) End() VA { return r.Base + VA(r.Size) }

// Contains reports whether [va, va+n) lies fully inside the region.
func (r *Region) Contains(va VA, n uint64) bool {
	return va >= r.Base && va+VA(n) <= r.End() && va+VA(n) >= va
}

// Faults returns the number of first-touch page faults taken in this
// region so far.
func (r *Region) Faults() uint64 { return r.faults }

// CommittedBytes returns the number of bytes backed by committed pages.
func (r *Region) CommittedBytes() uint64 {
	var n uint64
	for _, c := range r.committed {
		if c {
			n += r.space.pageSize
		}
	}
	if n > r.Size {
		n = r.Size
	}
	return n
}

// touch commits every page overlapping [va, va+n) and returns how many
// new page faults that caused. Pinned regions never fault (their pages
// were committed when pinned).
func (r *Region) touch(va VA, n uint64) uint64 {
	if r.Pinned || n == 0 {
		return 0
	}
	ps := r.space.pageSize
	first := (uint64(va) - uint64(r.Base)) / ps
	last := (uint64(va) - uint64(r.Base) + n - 1) / ps
	var faults uint64
	for p := first; p <= last; p++ {
		if !r.committed[p] {
			r.committed[p] = true
			faults++
		}
	}
	r.faults += faults
	r.space.faults += faults
	return faults
}

// AddressSpace is one simulated process's virtual memory map.
type AddressSpace struct {
	Owner    string
	pageSize uint64
	regions  []*Region // sorted by Base
	reserved uint64
	phantom  int64
	faults   uint64
}

// AdjustPhantom adds delta bytes of "phantom" reservation: virtual
// address space that is reserved (and counted by ReservedBytes) but has
// no touchable backing yet. The iso-address scheme reserves the whole
// global stack range this way and converts slabs to real regions on
// first use.
func (s *AddressSpace) AdjustPhantom(delta int64) {
	s.phantom += delta
	if s.phantom < 0 {
		panic("mem: negative phantom reservation")
	}
}

// NewAddressSpace returns an empty address space using the default page
// size.
func NewAddressSpace(owner string) *AddressSpace {
	return &AddressSpace{Owner: owner, pageSize: DefaultPageSize}
}

// SetPageSize overrides the page size; it must be called before any
// region is reserved.
func (s *AddressSpace) SetPageSize(ps uint64) {
	if len(s.regions) > 0 {
		panic("mem: SetPageSize after Reserve")
	}
	if ps == 0 {
		panic("mem: zero page size")
	}
	s.pageSize = ps
}

// PageSize returns the page size in bytes.
func (s *AddressSpace) PageSize() uint64 { return s.pageSize }

// ReservedBytes returns the total virtual address space reserved,
// including phantom reservations.
func (s *AddressSpace) ReservedBytes() uint64 {
	return s.reserved + uint64(s.phantom)
}

// Faults returns the total first-touch page faults across all regions.
func (s *AddressSpace) Faults() uint64 { return s.faults }

// CommittedBytes returns the total bytes of committed (physical) memory.
func (s *AddressSpace) CommittedBytes() uint64 {
	var n uint64
	for _, r := range s.regions {
		if r.Pinned {
			n += r.Size
		} else {
			n += r.CommittedBytes()
		}
	}
	return n
}

// Reserve maps a new region [base, base+size). Reserving overlapping
// regions is an error. Pinned regions are committed eagerly.
func (s *AddressSpace) Reserve(name string, base VA, size uint64, pinned bool) (*Region, error) {
	if size == 0 {
		return nil, fmt.Errorf("mem: %s: zero-size region %q", s.Owner, name)
	}
	if uint64(base)+size < uint64(base) {
		return nil, fmt.Errorf("mem: %s: region %q wraps address space", s.Owner, name)
	}
	idx := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > base })
	if idx > 0 {
		prev := s.regions[idx-1]
		if prev.End() > base {
			return nil, fmt.Errorf("mem: %s: region %q [%#x,%#x) overlaps %q", s.Owner, name, base, base+VA(size), prev.Name)
		}
	}
	if idx < len(s.regions) {
		next := s.regions[idx]
		if base+VA(size) > next.Base {
			return nil, fmt.Errorf("mem: %s: region %q [%#x,%#x) overlaps %q", s.Owner, name, base, base+VA(size), next.Name)
		}
	}
	npages := (size + s.pageSize - 1) / s.pageSize
	r := &Region{
		Name:      name,
		Base:      base,
		Size:      size,
		Pinned:    pinned,
		space:     s,
		data:      make([]byte, size),
		committed: make([]bool, npages),
	}
	if pinned {
		for i := range r.committed {
			r.committed[i] = true
		}
	}
	s.regions = append(s.regions, nil)
	copy(s.regions[idx+1:], s.regions[idx:])
	s.regions[idx] = r
	s.reserved += size
	return r, nil
}

// MustReserve is Reserve that panics on error (for fixed start-up maps).
func (s *AddressSpace) MustReserve(name string, base VA, size uint64, pinned bool) *Region {
	r, err := s.Reserve(name, base, size, pinned)
	if err != nil {
		panic(err)
	}
	return r
}

// Unreserve removes a region, releasing its address range.
func (s *AddressSpace) Unreserve(r *Region) {
	for i, reg := range s.regions {
		if reg == r {
			s.regions = append(s.regions[:i], s.regions[i+1:]...)
			s.reserved -= r.Size
			r.space = nil
			return
		}
	}
	panic("mem: Unreserve of unknown region")
}

// Lookup returns the region containing [va, va+n), or an error.
func (s *AddressSpace) Lookup(va VA, n uint64) (*Region, error) {
	idx := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > va })
	if idx == 0 {
		return nil, fmt.Errorf("mem: %s: unmapped address %#x", s.Owner, va)
	}
	r := s.regions[idx-1]
	if !r.Contains(va, n) {
		return nil, fmt.Errorf("mem: %s: access [%#x,+%d) escapes region %q [%#x,%#x)", s.Owner, va, n, r.Name, r.Base, r.End())
	}
	return r, nil
}

// Read copies n = len(buf) bytes at va into buf. It returns the number
// of page faults the access caused.
func (s *AddressSpace) Read(va VA, buf []byte) (faults uint64, err error) {
	r, err := s.Lookup(va, uint64(len(buf)))
	if err != nil {
		return 0, err
	}
	faults = r.touch(va, uint64(len(buf)))
	copy(buf, r.data[va-r.Base:])
	return faults, nil
}

// Write copies buf to va. It returns the number of page faults caused.
func (s *AddressSpace) Write(va VA, buf []byte) (faults uint64, err error) {
	r, err := s.Lookup(va, uint64(len(buf)))
	if err != nil {
		return 0, err
	}
	faults = r.touch(va, uint64(len(buf)))
	copy(r.data[va-r.Base:], buf)
	return faults, nil
}

// Slice returns a direct view of the bytes [va, va+n). The access is
// counted as a touch (pages commit, faults accrue). The returned slice
// aliases the region's backing store; callers must stay within n bytes.
func (s *AddressSpace) Slice(va VA, n uint64) ([]byte, error) {
	r, err := s.Lookup(va, n)
	if err != nil {
		return nil, err
	}
	r.touch(va, n)
	return r.data[va-r.Base : uint64(va-r.Base)+n : uint64(va-r.Base)+n], nil
}

// ReadU64 loads a little-endian uint64 at va.
func (s *AddressSpace) ReadU64(va VA) (uint64, error) {
	var b [8]byte
	if _, err := s.Read(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 stores a little-endian uint64 at va.
func (s *AddressSpace) WriteU64(va VA, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := s.Write(va, b[:])
	return err
}

// MustReadU64 is ReadU64 that panics on error.
func (s *AddressSpace) MustReadU64(va VA) uint64 {
	v, err := s.ReadU64(va)
	if err != nil {
		panic(err)
	}
	return v
}

// MustWriteU64 is WriteU64 that panics on error.
func (s *AddressSpace) MustWriteU64(va VA, v uint64) {
	if err := s.WriteU64(va, v); err != nil {
		panic(err)
	}
}

// Regions returns the regions in address order (a copy of the slice).
func (s *AddressSpace) Regions() []*Region {
	out := make([]*Region, len(s.regions))
	copy(out, s.regions)
	return out
}
