package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReserveAndRW(t *testing.T) {
	s := NewAddressSpace("p0")
	r, err := s.Reserve("heap", 0x1000, 8192, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.ReservedBytes() != 8192 {
		t.Fatalf("reserved = %d", s.ReservedBytes())
	}
	in := []byte("hello, uni-address")
	if _, err := s.Write(0x1100, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(in))
	if _, err := s.Read(0x1100, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatalf("read back %q", out)
	}
	if r.Faults() == 0 {
		t.Fatal("expected first-touch fault")
	}
}

func TestOverlapRejected(t *testing.T) {
	s := NewAddressSpace("p0")
	s.MustReserve("a", 0x1000, 4096, false)
	cases := []struct {
		base VA
		size uint64
	}{
		{0x1000, 4096}, // identical
		{0x0800, 4096}, // overlaps start
		{0x1800, 4096}, // overlaps end
		{0x1100, 16},   // inside
	}
	for _, c := range cases {
		if _, err := s.Reserve("b", c.base, c.size, false); err == nil {
			t.Fatalf("overlap [%#x,+%d) accepted", c.base, c.size)
		}
	}
	// Adjacent is fine.
	if _, err := s.Reserve("c", 0x2000, 4096, false); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
}

func TestOutOfBoundsAccess(t *testing.T) {
	s := NewAddressSpace("p0")
	s.MustReserve("a", 0x1000, 4096, false)
	if _, err := s.Read(0x0f00, make([]byte, 8)); err == nil {
		t.Fatal("read below region succeeded")
	}
	if _, err := s.Read(0x1ffc, make([]byte, 8)); err == nil {
		t.Fatal("read straddling region end succeeded")
	}
	if _, err := s.Write(0x3000, []byte{1}); err == nil {
		t.Fatal("write to unmapped address succeeded")
	}
}

func TestDemandPagingFaultAccounting(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("stacks", 0x10000, 16*4096, false)
	// First touch of one page: exactly one fault.
	f, _ := s.Write(0x10000, make([]byte, 8))
	if f != 1 {
		t.Fatalf("first touch faults = %d, want 1", f)
	}
	// Second touch of the same page: no fault.
	f, _ = s.Write(0x10100, make([]byte, 8))
	if f != 0 {
		t.Fatalf("second touch faults = %d, want 0", f)
	}
	// Spanning write across 3 fresh pages: 3 faults.
	f, _ = s.Write(0x11000, make([]byte, 2*4096+1))
	if f != 3 {
		t.Fatalf("spanning faults = %d, want 3", f)
	}
	if r.Faults() != 4 || s.Faults() != 4 {
		t.Fatalf("cumulative faults region=%d space=%d, want 4", r.Faults(), s.Faults())
	}
	if got := r.CommittedBytes(); got != 4*4096 {
		t.Fatalf("committed = %d, want %d", got, 4*4096)
	}
}

func TestPinnedRegionNeverFaults(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("rdma", 0x100000, 8*4096, true)
	f, _ := s.Write(0x100000, make([]byte, 4096*8))
	if f != 0 || r.Faults() != 0 {
		t.Fatalf("pinned region faulted: %d/%d", f, r.Faults())
	}
	if r.CommittedBytes() != 8*4096 {
		t.Fatalf("pinned committed = %d", r.CommittedBytes())
	}
}

func TestU64RoundTrip(t *testing.T) {
	s := NewAddressSpace("p0")
	s.MustReserve("a", 0, 4096, true)
	f := func(va16 uint8, v uint64) bool {
		va := VA(va16) * 8
		if err := s.WriteU64(va, v); err != nil {
			return false
		}
		got, err := s.ReadU64(va)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSliceAliasesBacking(t *testing.T) {
	s := NewAddressSpace("p0")
	s.MustReserve("a", 0x1000, 4096, true)
	b, err := s.Slice(0x1010, 4)
	if err != nil {
		t.Fatal(err)
	}
	copy(b, []byte{1, 2, 3, 4})
	out := make([]byte, 4)
	s.Read(0x1010, out)
	if !bytes.Equal(out, []byte{1, 2, 3, 4}) {
		t.Fatalf("slice writes not visible: %v", out)
	}
}

func TestUnreserveFreesRange(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("a", 0x1000, 4096, false)
	s.Unreserve(r)
	if s.ReservedBytes() != 0 {
		t.Fatalf("reserved after unreserve = %d", s.ReservedBytes())
	}
	if _, err := s.Reserve("b", 0x1000, 4096, false); err != nil {
		t.Fatalf("range not reusable: %v", err)
	}
}

func TestLookupExactBounds(t *testing.T) {
	s := NewAddressSpace("p0")
	s.MustReserve("a", 0x1000, 4096, false)
	if _, err := s.Lookup(0x1000, 4096); err != nil {
		t.Fatalf("full-region lookup failed: %v", err)
	}
	if _, err := s.Lookup(0x1000, 4097); err == nil {
		t.Fatal("oversized lookup succeeded")
	}
	if _, err := s.Lookup(0x1fff, 1); err != nil {
		t.Fatalf("last-byte lookup failed: %v", err)
	}
}

func TestAllocatorBasic(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("heap", 0x1000, 1024, true)
	a := NewAllocator(r)
	v1 := a.MustAlloc(100) // rounds to 112
	v2 := a.MustAlloc(100)
	if v1 == v2 {
		t.Fatal("allocator returned same block twice")
	}
	if v1 < r.Base || v2+112 > r.End() {
		t.Fatalf("blocks outside region: %#x %#x", v1, v2)
	}
	a.Free(v1)
	a.Free(v2)
	if a.Used() != 0 || a.Live() != 0 {
		t.Fatalf("leak: used=%d live=%d", a.Used(), a.Live())
	}
	// After freeing everything the whole region should be allocatable.
	if _, err := a.Alloc(1024); err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("heap", 0, 256, true)
	a := NewAllocator(r)
	a.MustAlloc(128)
	a.MustAlloc(128)
	if _, err := a.Alloc(1); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	}
}

func TestAllocatorPeak(t *testing.T) {
	s := NewAddressSpace("p0")
	r := s.MustReserve("heap", 0, 4096, true)
	a := NewAllocator(r)
	v1 := a.MustAlloc(1000)
	v2 := a.MustAlloc(1000)
	a.Free(v1)
	a.Free(v2)
	if a.Peak() < 2000 {
		t.Fatalf("peak = %d, want >= 2000", a.Peak())
	}
}

func TestAllocatorDoubleFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	s := NewAddressSpace("p0")
	r := s.MustReserve("heap", 0, 256, true)
	a := NewAllocator(r)
	v := a.MustAlloc(16)
	a.Free(v)
	a.Free(v)
}

// Property: a random sequence of allocs and frees never hands out
// overlapping blocks and coalescing restores full capacity.
func TestAllocatorRandomizedNoOverlap(t *testing.T) {
	f := func(seed int64) bool {
		s := NewAddressSpace("p0")
		r := s.MustReserve("heap", 0x4000, 64*1024, true)
		a := NewAllocator(r)
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int(uint64(rng) >> 33)
			return v % n
		}
		type blk struct {
			base VA
			size uint64
		}
		var live []blk
		for i := 0; i < 300; i++ {
			if len(live) == 0 || next(2) == 0 {
				size := uint64(next(500) + 1)
				va, err := a.Alloc(size)
				if err != nil {
					continue // full; acceptable
				}
				for _, b := range live {
					if va < b.base+VA(alignUp(b.size)) && b.base < va+VA(alignUp(size)) {
						return false // overlap!
					}
				}
				live = append(live, blk{va, size})
			} else {
				i := next(len(live))
				a.Free(live[i].base)
				live = append(live[:i], live[i+1:]...)
			}
		}
		for _, b := range live {
			a.Free(b.base)
		}
		_, err := a.Alloc(64 * 1024)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPhantomReservationAccounting(t *testing.T) {
	s := NewAddressSpace("p")
	s.MustReserve("real", 0x1000, 4096, false)
	s.AdjustPhantom(1 << 30)
	if got := s.ReservedBytes(); got != 4096+1<<30 {
		t.Fatalf("reserved = %d", got)
	}
	s.AdjustPhantom(-(1 << 20))
	if got := s.ReservedBytes(); got != 4096+1<<30-1<<20 {
		t.Fatalf("reserved after adjust = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative phantom did not panic")
		}
	}()
	s.AdjustPhantom(-(1 << 40))
}

func TestNextFitSpreadsAllocations(t *testing.T) {
	s := NewAddressSpace("p")
	r := s.MustReserve("slab", 0, 64*1024, true)
	a := NewAllocator(r)
	a.SetNextFit(true)
	// Alloc/free a fixed size repeatedly: first-fit would reuse the
	// same address; next-fit must walk forward.
	seen := map[VA]bool{}
	for i := 0; i < 16; i++ {
		va := a.MustAlloc(1024)
		if seen[va] {
			t.Fatalf("next-fit reused address %#x at iteration %d", va, i)
		}
		seen[va] = true
		a.Free(va)
	}
	// And it must wrap instead of failing when the cursor passes the end.
	for i := 0; i < 200; i++ {
		va := a.MustAlloc(1024)
		a.Free(va)
	}
}

func TestNextFitStillUsesAllCapacity(t *testing.T) {
	s := NewAddressSpace("p")
	r := s.MustReserve("slab", 0, 4096, true)
	a := NewAllocator(r)
	a.SetNextFit(true)
	var blocks []VA
	for {
		va, err := a.Alloc(256)
		if err != nil {
			break
		}
		blocks = append(blocks, va)
	}
	if len(blocks) != 16 {
		t.Fatalf("allocated %d blocks of 256 from 4096", len(blocks))
	}
	for _, b := range blocks {
		a.Free(b)
	}
}
