package sched

// Distance-tiered victim selection, after distbdd-spin17's wstealer
// VERYNEAR/NEAR/FAR/VERYFAR arrays: a thief sweeps candidates in
// distance order, preferring victims whose frames are cheap to reach
// (same node / same process / hint-warm) and falling outward only when
// the near tiers are dry. On this repo's backends the "distance" is a
// rank-group metric — ranks are grouped into blocks of TierGroup and
// tiered by block distance — which stands in for the NUMA/fabric
// topology the original read from the machine. Selection order is a
// pure heuristic: correctness and liveness never depend on it (the
// backends keep their blind-probe fallback).

// NumTiers is the number of distance classes (VERYNEAR, NEAR, FAR,
// VERYFAR).
const NumTiers = 4

// DefaultTierGroup is the default rank-group width used to derive
// distance tiers.
const DefaultTierGroup = 4

// BuildTiers partitions the victims of rank (all ranks in [0, n)
// except rank itself) into NumTiers distance classes. group is the
// rank-block width (<= 0 selects DefaultTierGroup); with block
// distance d = |rank/group - v/group|:
//
//	tier 0 (VERYNEAR): d == 0 — same block
//	tier 1 (NEAR):     d == 1 — adjacent block
//	tier 2 (FAR):      d <= 4
//	tier 3 (VERYFAR):  everything beyond
//
// Within a tier victims keep ascending rank order; the caller
// randomises its sweep start per tier. Tiers may be empty (a 4-worker
// run has only tier 0).
func BuildTiers(rank, n, group int) [NumTiers][]int {
	var tiers [NumTiers][]int
	if group <= 0 {
		group = DefaultTierGroup
	}
	myBlock := rank / group
	for v := 0; v < n; v++ {
		if v == rank {
			continue
		}
		d := v/group - myBlock
		if d < 0 {
			d = -d
		}
		var tier int
		switch {
		case d == 0:
			tier = 0
		case d == 1:
			tier = 1
		case d <= 4:
			tier = 2
		default:
			tier = 3
		}
		tiers[tier] = append(tiers[tier], v)
	}
	return tiers
}
