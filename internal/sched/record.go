package sched

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"uniaddr/internal/core"
	"uniaddr/internal/mem"
)

// Task records implement join (§5.4). As in the simulator, a record
// lives with the worker that executed the spawn, and its Handle packs
// (rank, VA) so any worker holding the handle can complete or poll it —
// with atomic loads/stores on shared memory where the paper uses
// one-sided RDMA READ/WRITE.
//
// RecordVABase anchors the handle address space: record i on any worker
// has VA RecordVABase + i*RecordBytes (the rank half of the Handle
// disambiguates workers, exactly like the simulator's per-process RDMA
// heaps all mapping at the same base).
const (
	RecordVABase mem.VA = 0x6000_0000_0000
	RecordBytes         = uint64(unsafe.Sizeof(Record{}))
)

// Record is one completion record. Done transitions 0→1 exactly once
// per allocation; Result is stored before Done (both seq-cst), so a
// joiner that loads Done==1 also observes the result — the same
// publish order the simulator's 16-byte RDMA WRITE provides by landing
// atomically.
//
// The next field threads the record through the table's shared release
// stack; it is only meaningful while the record sits on that stack.
// Embedding it in the record (rather than a parallel array, as rt once
// did) keeps the Table a single flat region.
type Record struct {
	Done   atomic.Uint64
	Result atomic.Uint64
	// Waiter publishes which worker suspended at a join on this record:
	// rank+1, 0 = none. The joiner stores Waiter BEFORE re-checking Done
	// (ExecJoin); the completer stores Done BEFORE loading Waiter
	// (ExecComplete). Under seq-cst ordering at least one side observes
	// the other, so a suspended joiner is always either resumed by its
	// own recheck or woken precisely by the completer — never silently
	// left parked (see DESIGN.md §10).
	Waiter atomic.Int64
	// Job tags the record with its owning job while allocated: slot+1
	// (see JobTag), 0 when free or outside a persistent pool. The
	// allocator stores it before the record's handle is published and
	// Release/ReleaseLocal clear it before the index re-enters a free
	// list, so SweepJob can reclaim exactly the records a canceled job
	// leaked — and never one that was already freed and reused.
	Job atomic.Uint64
	// next holds idx+1 of the record below this one on the release
	// stack (0 = end of chain).
	next atomic.Uint64
}

// tableHdr is the shared word block at the start of a table region.
type tableHdr struct {
	// releaseHead is idx+1 of the top released record; 0 = empty.
	releaseHead atomic.Uint64
	_           [56]byte
	// freedRem counts cross-worker Release calls. It is shared (not
	// owner-only) because on the dist backend the releasing joiner is
	// another PROCESS: an owner-side Go counter would never see it.
	// Live() subtracts both freed counters from allocs; it is only
	// meaningful post-run (the stop edge publishes the owner-only
	// counters).
	freedRem atomic.Uint64
	_        [56]byte
}

const tableHdrBytes = uint64(unsafe.Sizeof(tableHdr{}))

// TableBytes returns the region footprint of a record table with the
// given capacity.
func TableBytes(capacity uint64) uint64 {
	return tableHdrBytes + capacity*RecordBytes
}

// Table is one worker's record table over a flat region: a fixed
// record array (so Get(i) stays valid forever — handles may be polled
// by any worker or process) plus a free list. Allocation is owner-only
// (records are allocated by the spawning worker), but a record is
// freed by the JOINER, which may be any worker — so the free list is
// split:
//
//   - hdr.releaseHead and the records' next links form a Treiber stack
//     any worker CAS-pushes freed indices onto. Only the owner ever
//     removes nodes, and it takes the WHOLE stack with one Swap — there
//     is no pop-side CAS, so the classic Treiber pop ABA cannot occur
//     (a push-side CAS that succeeds has verified the head it links to
//     is the current head).
//   - localFree is the owner's private stack, refilled by draining the
//     release stack; Alloc touches no shared state on the fast path.
//
// This replaces a mutex pair per task (alloc by the owner + release by
// the joiner) that cost ~16% of a fib run's CPU on one core.
//
// Like Deque, a Table value is one process's view; remote processes
// attach their own view to the same region to Get/Release records they
// hold handles to.
type Table struct {
	hdr  *tableHdr
	recs []Record

	// Owner-only state (no synchronisation needed):
	localFree []uint32
	nextFresh uint32 // first never-used index
	allocs    uint64 // owner-only allocation count
	freedLoc  uint64 // owner-only count of ReleaseLocal calls
}

// NewTableAt attaches a table view to a flat region (zeroed at first
// attach). The region must be 8-byte aligned and hold
// TableBytes(capacity).
func NewTableAt(region []byte, capacity uint64) (*Table, error) {
	if capacity == 0 {
		return nil, fmt.Errorf("sched: zero record table capacity")
	}
	if err := regionCheck(region, TableBytes(capacity), "record table"); err != nil {
		return nil, err
	}
	return &Table{
		hdr:  (*tableHdr)(unsafe.Pointer(&region[0])),
		recs: unsafe.Slice((*Record)(unsafe.Pointer(&region[tableHdrBytes])), capacity),
	}, nil
}

// NewTable allocates a private heap-backed table.
func NewTable(capacity uint64) *Table {
	t, err := NewTableAt(heapRegion(TableBytes(capacity)), capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// Alloc returns a record index whose Done field is zeroed. Owner-only:
// called by the spawning worker (and once by the runtime for the root,
// before any worker starts).
func (t *Table) Alloc() (uint32, error) {
	if len(t.localFree) == 0 {
		// Drain everything joiners have released since the last refill.
		// The Swap's seq-cst RMW makes each releaser's next-link store
		// (program-ordered before its publishing CAS) visible here.
		if h := t.hdr.releaseHead.Swap(0); h != 0 {
			idx := uint32(h - 1)
			for {
				t.localFree = append(t.localFree, idx)
				nx := t.recs[idx].next.Load()
				if nx == 0 {
					break
				}
				idx = uint32(nx - 1)
			}
		}
	}
	var idx uint32
	if n := len(t.localFree); n > 0 {
		idx = t.localFree[n-1]
		t.localFree = t.localFree[:n-1]
		// Only Done needs resetting for reuse. Result is always stored
		// by the completer before it stores Done=1, so the new epoch's
		// joiner can never read the old value; a stale Waiter causes at
		// worst one spurious wake (the Dekker handshake in ExecJoin /
		// ExecComplete never depends on the field's initial value).
		t.recs[idx].Done.Store(0)
	} else if uint64(t.nextFresh) < uint64(len(t.recs)) {
		idx = t.nextFresh
		t.nextFresh++
	} else {
		return 0, fmt.Errorf("sched: record table exhausted (%d records; raise Config.RecordCap)", len(t.recs))
	}
	t.allocs++
	return idx, nil
}

// Release returns a record to the pool. Called by the joiner — any
// worker, any process — so it pushes onto the shared release stack.
func (t *Table) Release(idx uint32) {
	t.recs[idx].Job.Store(0)
	for {
		h := t.hdr.releaseHead.Load()
		t.recs[idx].next.Store(h)
		if t.hdr.releaseHead.CompareAndSwap(h, uint64(idx)+1) {
			break
		}
	}
	t.hdr.freedRem.Add(1)
}

// ReleaseLocal returns a record the OWNER itself is freeing (it joined
// its own child — the common case) straight onto the private free
// stack, skipping the CAS of the shared release path.
func (t *Table) ReleaseLocal(idx uint32) {
	t.recs[idx].Job.Store(0)
	t.localFree = append(t.localFree, idx)
	t.freedLoc++
}

// SweepJob releases every record still tagged with the given job tag
// and returns how many it reclaimed. Called (from any worker) after a
// canceled job's per-job quiescence count has closed: no task of the
// job is running, so the only records still carrying the tag are the
// ones drained frames abandoned — suspended joins that were completed
// without their parent ever running the release, and child handles in
// frames that were completed without running their bodies. The CAS
// claims each record exactly once even if two sweepers race.
func (t *Table) SweepJob(tag uint64) int {
	n := 0
	for i := range t.recs {
		if t.recs[i].Job.Load() == tag && t.recs[i].Job.CompareAndSwap(tag, 0) {
			t.Release(uint32(i))
			n++
		}
	}
	return n
}

// Get returns the record at idx. Valid from any attached view.
func (t *Table) Get(idx uint32) *Record { return &t.recs[idx] }

// Live returns the number of allocated records (quiescence check; call
// only on the owner's view after the run's workers have stopped).
func (t *Table) Live() int {
	return int(t.allocs - t.freedLoc - t.hdr.freedRem.Load())
}

// RecordIndex recovers the table index from a handle minted by
// RecordHandle.
func RecordIndex(h core.Handle) uint32 {
	return uint32((h.VA() - RecordVABase) / mem.VA(RecordBytes))
}

// RecordHandle packs (rank, idx) into the uni-address handle any
// worker can complete or poll.
func RecordHandle(rank int, idx uint32) core.Handle {
	return core.MakeHandle(rank, RecordVABase+mem.VA(uint64(idx)*RecordBytes))
}
