package sched

import (
	"sync"
	"testing"
	"time"

	"uniaddr/internal/mem"
)

// scriptInjector replays a fixed per-call script of (stall, fail)
// decisions, split by op.
type scriptInjector struct {
	mu         sync.Mutex
	claimFails int // fail the first N claim consultations
	copyFails  int // fail the first N copy consultations
	claims     int
	copies     int
}

func (s *scriptInjector) StealClaim(thief, victim int) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.claims++
	return 0, s.claims <= s.claimFails
}

func (s *scriptInjector) StealCopy(thief, victim int) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.copies++
	return 0, s.copies <= s.copyFails
}

// testRig builds a victim deque+arena with one pushed frame and an
// empty thief arena at the same base.
type testRig struct {
	vd       *Deque
	src, dst *Arena
	ent      Entry
}

func newTestRig(t *testing.T) *testRig {
	t.Helper()
	const base, size = mem.VA(0x1000), uint64(1 << 16)
	src := NewArena(base, size)
	dst := NewArena(base, size)
	fb, err := src.AllocBelow(256)
	if err != nil {
		t.Fatal(err)
	}
	b := src.MustSlice(fb, 256)
	for i := range b {
		b[i] = byte(i)
	}
	vd := NewDeque(8)
	ent := Entry{FrameBase: fb, FrameSize: 256}
	if err := vd.Push(ent); err != nil {
		t.Fatal(err)
	}
	return &testRig{vd: vd, src: src, dst: dst, ent: ent}
}

func fastCfg() ResilienceConfig {
	return ResilienceConfig{MaxRetries: 3, BackoffBase: time.Microsecond, BackoffCap: 8 * time.Microsecond, BlacklistAfter: 3, BlacklistFor: time.Minute}
}

func TestResilienceNilInjectorIsPlainSteal(t *testing.T) {
	rig := newTestRig(t)
	r := NewResilience(1, fastCfg(), nil)
	ent, out := r.StealFrom(0, rig.vd, rig.src, rig.dst)
	if out != StealOK || ent != rig.ent {
		t.Fatalf("got (%+v, %v), want (%+v, ok)", ent, out, rig.ent)
	}
	got := rig.dst.MustSlice(ent.FrameBase, ent.FrameSize)
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("byte %d = %d after steal copy", i, b)
		}
	}
	if r.Stats != (ResilienceStats{}) {
		t.Fatalf("fault counters moved without injector: %+v", r.Stats)
	}
}

func TestResilienceClaimRetriesThenSucceeds(t *testing.T) {
	rig := newTestRig(t)
	r := NewResilience(1, fastCfg(), &scriptInjector{claimFails: 2})
	var slept time.Duration
	r.sleep = func(d time.Duration) { slept += d }
	ent, out := r.StealFrom(0, rig.vd, rig.src, rig.dst)
	if out != StealOK || ent != rig.ent {
		t.Fatalf("got (%+v, %v), want success after retries", ent, out)
	}
	if r.Stats.StealFaults != 2 || r.Stats.StealRetries != 2 {
		t.Fatalf("stats %+v, want 2 faults / 2 retries", r.Stats)
	}
	// Exponential: 1µs + 2µs.
	if slept != 3*time.Microsecond || r.Stats.BackoffNS != uint64(slept) {
		t.Fatalf("backoff slept %v (counter %d), want 3µs", slept, r.Stats.BackoffNS)
	}
	// Success cleared the consecutive-fault streak: no ban state.
	if r.Banned(0) {
		t.Fatal("victim banned after a successful steal")
	}
}

func TestResilienceClaimExhaustionAbandons(t *testing.T) {
	rig := newTestRig(t)
	r := NewResilience(1, fastCfg(), &scriptInjector{claimFails: 100})
	r.sleep = func(time.Duration) {}
	_, out := r.StealFrom(0, rig.vd, rig.src, rig.dst)
	if out != StealFaulted {
		t.Fatalf("outcome %v, want faulted", out)
	}
	// MaxRetries=3 → 4 consultations (attempts 0..3), all failing; the
	// 3rd fault trips the blacklist (BlacklistAfter=3), but the loop
	// only abandons at attempt >= MaxRetries or on a live ban.
	if r.Stats.StealAbortsFault != 1 {
		t.Fatalf("stats %+v, want exactly one fault abort", r.Stats)
	}
	if r.Stats.VictimBlacklists != 1 || !r.Banned(0) {
		t.Fatalf("stats %+v banned=%v, want the victim banned", r.Stats, r.Banned(0))
	}
	// The entry is still on the victim's deque (no claim completed).
	if rig.vd.Size() != 1 {
		t.Fatalf("victim deque size %d after abandoned claim, want 1", rig.vd.Size())
	}
}

func TestResilienceCopyFaultRollsBack(t *testing.T) {
	rig := newTestRig(t)
	r := NewResilience(1, fastCfg(), &scriptInjector{copyFails: 1})
	r.sleep = func(time.Duration) {}
	_, out := r.StealFrom(0, rig.vd, rig.src, rig.dst)
	if out != StealFaulted {
		t.Fatalf("outcome %v, want faulted rollback", out)
	}
	if r.Stats.StealRollbacks != 1 || r.Stats.StealFaults != 1 || r.Stats.StealAbortsFault != 1 {
		t.Fatalf("stats %+v, want one rollback", r.Stats)
	}
	// THE rollback: entry handed back, lock released, thief arena empty.
	if rig.vd.Size() != 1 {
		t.Fatalf("victim deque size %d after rollback, want 1 (entry handed back)", rig.vd.Size())
	}
	if !rig.dst.Empty() {
		t.Fatal("thief arena not empty after rollback")
	}
	// The same entry is still stealable (fresh resilience, no faults).
	r2 := NewResilience(2, fastCfg(), nil)
	ent, out := r2.StealFrom(0, rig.vd, rig.src, rig.dst)
	if out != StealOK || ent != rig.ent {
		t.Fatalf("re-steal after rollback: (%+v, %v)", ent, out)
	}
}

func TestResilienceBanExpires(t *testing.T) {
	cfg := fastCfg()
	cfg.BlacklistFor = time.Millisecond
	r := NewResilience(1, cfg, &scriptInjector{claimFails: 100})
	r.sleep = func(time.Duration) {}
	now := time.Now()
	r.now = func() time.Time { return now }
	rig := newTestRig(t)
	r.StealFrom(0, rig.vd, rig.src, rig.dst)
	if !r.Banned(0) {
		t.Fatal("victim not banned after fault burst")
	}
	now = now.Add(2 * time.Millisecond)
	if r.Banned(0) {
		t.Fatal("ban did not lazily expire")
	}
}

// Concurrent thieves with injected faults against one victim under
// -race: every pushed entry is stolen exactly once, rollbacks hand
// entries back intact, and accounting balances.
func TestResilienceConcurrentThievesRace(t *testing.T) {
	const (
		thieves = 4
		entries = 64
	)
	base, size := mem.VA(0x1000), uint64(1<<20)
	src := NewArena(base, size)
	vd := NewDeque(128)
	for i := 0; i < entries; i++ {
		fb, err := src.AllocBelow(128)
		if err != nil {
			t.Fatal(err)
		}
		b := src.MustSlice(fb, 128)
		for j := range b {
			b[j] = byte(i)
		}
		if err := vd.Push(Entry{FrameBase: fb, FrameSize: 128}); err != nil {
			t.Fatal(err)
		}
	}
	var (
		mu     sync.Mutex
		stolen = map[mem.VA]int{}
		wg     sync.WaitGroup
	)
	for th := 0; th < thieves; th++ {
		th := th
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := NewArena(base, size)
			// Every 5th copy consultation fails → rollbacks interleave
			// with commits across racing thieves.
			inj := &everyNthCopy{n: 5}
			r := NewResilience(th+1, fastCfg(), inj)
			for {
				ent, out := r.StealFrom(0, vd, src, dst)
				switch out {
				case StealOK:
					mu.Lock()
					stolen[ent.FrameBase]++
					mu.Unlock()
					// Free the copy so the arena stays empty for the
					// next steal (steal precondition).
					if err := dst.FreeLowest(ent.FrameBase, ent.FrameSize); err != nil {
						panic(err)
					}
				case StealEmpty, StealEmptyLocked:
					if vd.Size() == 0 {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if len(stolen) != entries {
		t.Fatalf("%d distinct entries stolen, want %d", len(stolen), entries)
	}
	for fb, n := range stolen {
		if n != 1 {
			t.Fatalf("entry %#x stolen %d times", fb, n)
		}
	}
}

// everyNthCopy fails every n-th copy consultation (thread-safe).
type everyNthCopy struct {
	mu sync.Mutex
	n  int
	c  int
}

func (e *everyNthCopy) StealClaim(thief, victim int) (time.Duration, bool) { return 0, false }

func (e *everyNthCopy) StealCopy(thief, victim int) (time.Duration, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.c++
	return 0, e.c%e.n == 0
}

// batchRig builds a victim with four CONTIGUOUS 256-byte frames (the
// adjacent descending chain real arenas produce) so batched steals can
// move a multi-frame block.
func newBatchRig(t *testing.T) *testRig {
	t.Helper()
	const base, size = mem.VA(0x1000), uint64(1 << 16)
	src := NewArena(base, size)
	dst := NewArena(base, size)
	vd := NewDeque(8) // MaxClaim 2
	for i := 0; i < 4; i++ {
		fb, err := src.AllocBelow(256)
		if err != nil {
			t.Fatal(err)
		}
		b := src.MustSlice(fb, 256)
		for j := range b {
			b[j] = byte(16*i + j%16)
		}
		if err := vd.Push(Entry{FrameBase: fb, FrameSize: 256}); err != nil {
			t.Fatal(err)
		}
	}
	return &testRig{vd: vd, src: src, dst: dst}
}

// TestResilienceBatchMovesBlock: a fault-free batched steal moves the
// claimed frames as one contiguous block, bytes intact.
func TestResilienceBatchMovesBlock(t *testing.T) {
	rig := newBatchRig(t)
	r := NewResilience(1, fastCfg(), nil)
	buf := make([]Entry, rig.vd.MaxClaim())
	n, out := r.StealBatchFrom(0, rig.vd, rig.src, rig.dst, buf)
	if out != StealOK || n != 2 {
		t.Fatalf("batch steal: n=%d %v, want 2 ok", n, out)
	}
	if rig.vd.Size() != 2 {
		t.Fatalf("victim deque size %d, want 2", rig.vd.Size())
	}
	// Both frames' bytes landed at their uni-addresses in the thief's
	// arena.
	for i := 0; i < n; i++ {
		got := rig.dst.MustSlice(buf[i].FrameBase, buf[i].FrameSize)
		want := rig.src.MustSlice(buf[i].FrameBase, buf[i].FrameSize)
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("frame %d byte %d: %d != %d", i, j, got[j], want[j])
			}
		}
	}
	if r.Stats != (ResilienceStats{}) {
		t.Fatalf("fault counters moved without injector: %+v", r.Stats)
	}
}

// TestResilienceBatchCopyFaultRollsBack: a copy fault mid-batch hands
// EVERY claimed entry back and frees the thief-side block — the THE
// abort generalised to the batch.
func TestResilienceBatchCopyFaultRollsBack(t *testing.T) {
	rig := newBatchRig(t)
	r := NewResilience(1, fastCfg(), &scriptInjector{copyFails: 1})
	r.sleep = func(time.Duration) {}
	buf := make([]Entry, rig.vd.MaxClaim())
	n, out := r.StealBatchFrom(0, rig.vd, rig.src, rig.dst, buf)
	if out != StealFaulted || n != 0 {
		t.Fatalf("batch under copy fault: n=%d %v, want rollback", n, out)
	}
	if r.Stats.StealRollbacks != 1 || r.Stats.StealAbortsFault != 1 {
		t.Fatalf("stats %+v, want one rollback", r.Stats)
	}
	if rig.vd.Size() != 4 {
		t.Fatalf("victim deque size %d after rollback, want 4", rig.vd.Size())
	}
	if !rig.dst.Empty() {
		t.Fatal("thief arena not empty after batch rollback")
	}
	// The block is still stealable by a healthy thief.
	r2 := NewResilience(2, fastCfg(), nil)
	if n, out := r2.StealBatchFrom(0, rig.vd, rig.src, rig.dst, buf); out != StealOK || n != 2 {
		t.Fatalf("re-steal after rollback: n=%d %v", n, out)
	}
}

// TestResilienceBatchClaimRetries: claim faults burn retries exactly as
// in the single-entry path, then the batch proceeds.
func TestResilienceBatchClaimRetries(t *testing.T) {
	rig := newBatchRig(t)
	r := NewResilience(1, fastCfg(), &scriptInjector{claimFails: 2})
	r.sleep = func(time.Duration) {}
	buf := make([]Entry, rig.vd.MaxClaim())
	n, out := r.StealBatchFrom(0, rig.vd, rig.src, rig.dst, buf)
	if out != StealOK || n != 2 {
		t.Fatalf("batch after claim retries: n=%d %v", n, out)
	}
	if r.Stats.StealFaults != 2 || r.Stats.StealRetries != 2 {
		t.Fatalf("stats %+v, want 2 faults / 2 retries", r.Stats)
	}
}
