// Package sched holds the scheduler data structures shared by every
// real-concurrency backend: the uni-address stack Arena, the
// THE-protocol work-stealing Deque and the task-record Table.
//
// The package exists because the same three structures must live in two
// very different kinds of memory:
//
//   - internal/rt (threads in one process) lays them out in ordinary
//     Go-heap allocations;
//   - internal/dist (one process per worker) lays them out inside an
//     mmap'd shared-memory segment mapped at the same base virtual
//     address in every process, so a cross-process steal is a one-sided
//     copy at identical offsets — the paper's uni-address region across
//     real address spaces.
//
// To serve both, Deque and Table are *flat*: all shared state (lock,
// top, bottom, occupancy hint, entry slots, records, release stack) is
// a fixed byte layout inside a caller-provided memory region, accessed
// through sync/atomic. NewDequeAt / NewTableAt attach a view to such a
// region (any number of processes may attach to the same one);
// NewDeque / NewTable allocate a private heap-backed region for the
// single-process case. Owner-only bookkeeping (the Table's private free
// list) stays in ordinary Go memory on the attaching side.
//
// Atomics on shared mappings are sound on every platform Go supports:
// the hardware's cache coherence does not care whether two racing
// addresses belong to one process or two.
package sched

import (
	"fmt"
	"unsafe"
)

// regionCheck validates a flat region's alignment and size once at
// attach time so Deque and Table hot paths can cast without checks.
func regionCheck(mem []byte, need uint64, what string) error {
	if uint64(len(mem)) < need {
		return fmt.Errorf("sched: %s region too small: %d bytes, need %d", what, len(mem), need)
	}
	if uintptr(unsafe.Pointer(&mem[0]))%8 != 0 {
		return fmt.Errorf("sched: %s region not 8-byte aligned", what)
	}
	return nil
}

// heapRegion allocates an 8-byte-aligned zeroed region of n bytes on
// the Go heap (backed by a []uint64 so alignment is guaranteed).
func heapRegion(n uint64) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
