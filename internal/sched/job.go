package sched

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Jobs give a persistent worker pool many concurrent task trees over
// one set of arenas/deques/record tables. Each admitted job owns a
// *slot* in a flat JobTable; every record a job's tasks allocate is
// tagged with slot+1 (Record.Job), so any worker holding a frame can
// map it back to its job, and a canceled job's leaked records can be
// swept by tag. Like Deque and Table, the JobTable is a fixed byte
// layout over a caller-provided region so it can later live inside a
// shared segment and ride the network fabric unchanged.
//
// Job lifecycle (State):
//
//	JobFree ──dispatch──▶ JobRunning ──root completes──▶ JobDone ──▶ JobFree
//	                          │                            ▲
//	                       cancel                          │
//	                          ▼                            │
//	                      JobDraining ──last task drains───┘
//
// All transitions after dispatch are CASes, so a root completion racing
// a cancel resolves to exactly one finalizer.
const (
	JobFree uint64 = iota
	// JobRunning: dispatched; tasks executing.
	JobRunning
	// JobDraining: canceled; remaining frames complete-without-running
	// until the per-job quiescence count closes.
	JobDraining
	// JobDone: finalized (result or cancellation delivered); the slot
	// is recycled by the pool once the ticket has been signaled.
	JobDone
)

// JobSlot is the shared per-job word block. Spawn/executed counts are
// NOT here: they are per-worker (JobCounters) so the spawn hot path
// never touches a cache line another worker writes.
type JobSlot struct {
	State atomic.Uint64
	// Root holds the packed core.Handle of the job's root record (set
	// before State becomes JobRunning); a completer compares its record
	// handle against this to detect per-job quiescence on the normal
	// path.
	Root atomic.Uint64
	// Result is the root task's result, stored by the finalizer before
	// the JobDone transition.
	Result atomic.Uint64
	// Grain is the job's sequential-cutoff knob (see rt.Config.Grain);
	// workers reload it when an invoked frame switches them onto this
	// job.
	Grain atomic.Uint64
	// Pad to a cache line pair so adjacent jobs never share a line.
	_ [128 - 4*8]byte
}

const jobSlotBytes = uint64(unsafe.Sizeof(JobSlot{}))

// JobTableBytes returns the region footprint of a job table with the
// given slot capacity.
func JobTableBytes(capacity uint64) uint64 { return capacity * jobSlotBytes }

// JobTable is a fixed array of job slots over a flat region. The pool
// that owns it hands out slot indices (free-list on the Go side); the
// flat part is only what remote workers/processes must see.
type JobTable struct {
	slots []JobSlot
}

// NewJobTableAt attaches a job table view to a flat region (zeroed at
// first attach: all slots JobFree).
func NewJobTableAt(region []byte, capacity uint64) (*JobTable, error) {
	if capacity == 0 {
		return nil, fmt.Errorf("sched: zero job table capacity")
	}
	if err := regionCheck(region, JobTableBytes(capacity), "job table"); err != nil {
		return nil, err
	}
	return &JobTable{
		slots: unsafe.Slice((*JobSlot)(unsafe.Pointer(&region[0])), capacity),
	}, nil
}

// NewJobTable allocates a private heap-backed job table.
func NewJobTable(capacity uint64) *JobTable {
	t, err := NewJobTableAt(heapRegion(JobTableBytes(capacity)), capacity)
	if err != nil {
		panic(err)
	}
	return t
}

// Get returns the slot at idx. Valid from any attached view.
func (t *JobTable) Get(idx uint32) *JobSlot { return &t.slots[idx] }

// Cap returns the number of slots.
func (t *JobTable) Cap() int { return len(t.slots) }

// JobTag is the Record.Job value for a job in slot idx (0 is reserved
// for "no job / released").
func JobTag(idx uint32) uint64 { return uint64(idx) + 1 }

// JobCount is one worker's spawn/executed pair for one job slot, padded
// to a cache line: each worker writes only its own JobCounters, so the
// per-task counter bumps are uncontended; cross-worker sums happen only
// on the rare quiescence/drain checks.
type JobCount struct {
	Spawns   atomic.Uint64
	Executed atomic.Uint64
	// Pending brackets one in-flight completion on this worker: +1
	// before the Executed bump, -1 after the completion's record stores
	// AND its finalize/drain dispatch have retired. A finalizer that
	// observed the quiescence count close must wait for ΣPending to
	// drain before it may sweep the job's records or recycle the slot —
	// closure alone only proves every Executed bump landed, not that the
	// Result/Done stores ordered after those bumps did (see
	// rt.Runtime.waitJobSettled). Unlike its siblings Pending is NEVER
	// reset between jobs: a completer may still be inside its bracket
	// when the finalizer (which itself holds a bracket) frees the slot,
	// and its trailing -1 must land on whatever value it incremented.
	Pending atomic.Int64
	_       [64 - 3*8]byte
}

const jobCountBytes = uint64(unsafe.Sizeof(JobCount{}))

// JobCountersBytes returns the region footprint of one worker's
// counter block for the given job-slot capacity.
func JobCountersBytes(capacity uint64) uint64 { return capacity * jobCountBytes }

// JobCounters is one worker's per-job counter block over a flat region.
type JobCounters struct {
	cnt []JobCount
}

// NewJobCountersAt attaches a counter view to a flat region.
func NewJobCountersAt(region []byte, capacity uint64) (*JobCounters, error) {
	if capacity == 0 {
		return nil, fmt.Errorf("sched: zero job counters capacity")
	}
	if err := regionCheck(region, JobCountersBytes(capacity), "job counters"); err != nil {
		return nil, err
	}
	return &JobCounters{
		cnt: unsafe.Slice((*JobCount)(unsafe.Pointer(&region[0])), capacity),
	}, nil
}

// NewJobCounters allocates a private heap-backed counter block.
func NewJobCounters(capacity uint64) *JobCounters {
	c, err := NewJobCountersAt(heapRegion(JobCountersBytes(capacity)), capacity)
	if err != nil {
		panic(err)
	}
	return c
}

// Get returns the counter pair for slot idx.
func (c *JobCounters) Get(idx uint32) *JobCount { return &c.cnt[idx] }

// Reset zeroes slot idx's spawn/executed pair for reuse by a new job.
// Called by the dispatching worker before the slot's State becomes
// JobRunning (no task of the new job exists yet, and the old job's
// finalizer has already read its final values), so atomic stores
// suffice. Pending is deliberately NOT reset: the previous tenant's
// finalizer may still be inside its own completion bracket when the
// slot is reused, and zeroing under it would drive the gauge negative.
func (c *JobCounters) Reset(idx uint32) {
	c.cnt[idx].Spawns.Store(0)
	c.cnt[idx].Executed.Store(0)
}
