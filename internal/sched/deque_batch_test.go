package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniaddr/internal/mem"
)

// White-box tests for the batched claim-then-verify steal
// (StealBeginBatch / StealAbortBatch). Batch entries must form an
// adjacent descending-VA chain — the invariant real deques satisfy
// because frames bump-allocate downward — so these helpers build
// chains instead of the scattered ent(i) entries the single-steal
// tests use.

// chainEnts returns n entries forming an adjacent descending chain:
// entry 0 sits highest (it will be pushed first, so thieves take it
// first), each later entry ends exactly at its predecessor's base.
func chainEnts(n int, size uint64) []Entry {
	base := mem.VA(0x7f00_0000_0000)
	out := make([]Entry, n)
	for i := 0; i < n; i++ {
		base -= mem.VA(size)
		out[i] = Entry{FrameBase: base, FrameSize: size}
	}
	return out
}

func pushAll(t *testing.T, d *Deque, ents []Entry) {
	t.Helper()
	for _, e := range ents {
		if err := d.Push(e); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDequeStealBatchTakesHalf(t *testing.T) {
	d := NewDeque(32) // MaxClaim 8
	ents := chainEnts(8, 64)
	pushAll(t, d, ents)
	buf := make([]Entry, d.MaxClaim())

	// ⌈8/2⌉ = 4 oldest entries, FIFO order.
	n, out := d.StealBeginBatch(buf)
	if out != StealOK || n != 4 {
		t.Fatalf("first batch: n=%d %v, want 4 ok", n, out)
	}
	for i := 0; i < n; i++ {
		if buf[i] != ents[i] {
			t.Fatalf("buf[%d] = %+v, want %+v", i, buf[i], ents[i])
		}
	}
	d.StealCommit()
	if got := d.Size(); got != 4 {
		t.Fatalf("size %d after batch of 4, want 4", got)
	}

	// Steal-half again: ⌈4/2⌉ = 2, continuing where the first left off.
	n, out = d.StealBeginBatch(buf)
	if out != StealOK || n != 2 {
		t.Fatalf("second batch: n=%d %v, want 2 ok", n, out)
	}
	if buf[0] != ents[4] || buf[1] != ents[5] {
		t.Fatalf("second batch got %+v %+v, want ents[4..5]", buf[0], buf[1])
	}
	d.StealCommit()

	// The owner keeps LIFO access to the remainder.
	for i := 7; i >= 6; i-- {
		e, ok := d.Pop(nil)
		if !ok || e != ents[i] {
			t.Fatalf("pop: %v %+v, want %+v", ok, e, ents[i])
		}
	}
}

func TestDequeStealBatchNearEmpty(t *testing.T) {
	d := NewDeque(32)
	buf := make([]Entry, d.MaxClaim())
	if n, out := d.StealBeginBatch(buf); n != 0 || out != StealEmpty {
		t.Fatalf("empty deque: n=%d %v", n, out)
	}
	ents := chainEnts(1, 64)
	pushAll(t, d, ents)
	// One entry: ⌈1/2⌉ = 1, degenerating to the single steal.
	n, out := d.StealBeginBatch(buf)
	if out != StealOK || n != 1 || buf[0] != ents[0] {
		t.Fatalf("single-entry batch: n=%d %v %+v", n, out, buf[0])
	}
	d.StealCommit()
	if d.Size() != 0 {
		t.Fatalf("size %d", d.Size())
	}
}

func TestDequeStealBatchAbortRollsBack(t *testing.T) {
	d := NewDeque(32)
	ents := chainEnts(6, 64)
	pushAll(t, d, ents)
	buf := make([]Entry, d.MaxClaim())
	n, out := d.StealBeginBatch(buf)
	if out != StealOK || n != 3 {
		t.Fatalf("batch: n=%d %v, want 3", n, out)
	}
	d.StealAbortBatch(n)
	if got := d.hdr.lock.Load(); got != 0 {
		t.Fatalf("lock word %d after abort", got)
	}
	if got := d.Size(); got != 6 {
		t.Fatalf("size %d after rollback, want 6", got)
	}
	// Every entry is recoverable, owner side, in LIFO order.
	for i := 5; i >= 0; i-- {
		e, ok := d.Pop(nil)
		if !ok || e != ents[i] {
			t.Fatalf("pop %d after rollback: %v %+v, want %+v", i, ok, e, ents[i])
		}
	}
	// And a fresh thief can re-steal what was handed back.
	pushAll(t, d, ents)
	if n, out := d.StealBeginBatch(buf); out != StealOK || n != 3 || buf[0] != ents[0] {
		t.Fatalf("re-steal after rollback: n=%d %v", n, out)
	} else {
		d.StealCommit()
	}
}

// TestDequeStealBatchStopsAtChainBreak: the defensive contiguity scan
// must shrink the batch to the adjacent prefix when the resident
// entries do not chain (possible transiently after owner pops and
// re-pushes interleave with steals).
func TestDequeStealBatchStopsAtChainBreak(t *testing.T) {
	d := NewDeque(32)
	ents := chainEnts(6, 64)
	ents[2].FrameBase -= 4096 // break the chain between [1] and [2]
	pushAll(t, d, ents)
	buf := make([]Entry, d.MaxClaim())
	n, out := d.StealBeginBatch(buf)
	if out != StealOK || n != 2 {
		t.Fatalf("batch across chain break: n=%d %v, want 2", n, out)
	}
	if buf[0] != ents[0] || buf[1] != ents[1] {
		t.Fatalf("batch contents %+v %+v", buf[0], buf[1])
	}
	d.StealCommit()
	// The over-claim was settled back: entry 2 is still stealable.
	n, out = d.StealBeginBatch(buf)
	if out != StealOK || buf[0] != ents[2] {
		t.Fatalf("steal after settle: n=%d %v %+v", n, out, buf[0])
	}
	d.StealCommit()
}

// TestDequeStealBatchClaimBound pins the ring reservation: a claim
// never exceeds MaxClaim = cap/4 (clamped to [1,64]) no matter how
// deep the deque, and Push respects the reserved slack.
func TestDequeStealBatchClaimBound(t *testing.T) {
	if got := maxClaimFor(4); got != 1 {
		t.Fatalf("maxClaimFor(4) = %d, want 1", got)
	}
	if got := maxClaimFor(32); got != 8 {
		t.Fatalf("maxClaimFor(32) = %d, want 8", got)
	}
	if got := maxClaimFor(1 << 13); got != 64 {
		t.Fatalf("maxClaimFor(8192) = %d, want 64 (clamp)", got)
	}

	d := NewDeque(32) // 32-8 = 24 usable slots
	ents := chainEnts(24, 64)
	pushAll(t, d, ents)
	if err := d.Push(ent(99)); err == nil {
		t.Fatal("push into reserved claim slack succeeded")
	}
	buf := make([]Entry, 64)
	n, out := d.StealBeginBatch(buf) // ⌈24/2⌉ = 12 > MaxClaim 8
	if out != StealOK || n != 8 {
		t.Fatalf("claim-bound batch: n=%d %v, want 8", n, out)
	}
	d.StealCommit()
	// Claim freed 8 slots: the owner can push again.
	if err := d.Push(Entry{FrameBase: ents[23].FrameBase - 64, FrameSize: 64}); err != nil {
		t.Fatalf("push after batch: %v", err)
	}
}

func TestDequeStealBatchBufLenBound(t *testing.T) {
	d := NewDeque(32)
	pushAll(t, d, chainEnts(8, 64))
	buf := make([]Entry, 2)
	n, out := d.StealBeginBatch(buf)
	if out != StealOK || n != 2 {
		t.Fatalf("buf-bound batch: n=%d %v, want 2", n, out)
	}
	d.StealCommit()
	if got := d.Size(); got != 6 {
		t.Fatalf("size %d, want 6", got)
	}
}

// TestDequeStealBatchRingWrap drives batches across the index
// wraparound: every round leaves the ring offset shifted, so repeated
// rounds cover claims that straddle the physical end of the ring.
func TestDequeStealBatchRingWrap(t *testing.T) {
	d := NewDeque(8) // MaxClaim 2, 6 usable
	buf := make([]Entry, 8)
	for round := 0; round < 20; round++ {
		ents := chainEnts(5, 64)
		pushAll(t, d, ents)
		n, out := d.StealBeginBatch(buf) // min(⌈5/2⌉, MaxClaim) = 2
		if out != StealOK || n != 2 {
			t.Fatalf("round %d: n=%d %v, want 2", round, n, out)
		}
		if buf[0] != ents[0] || buf[1] != ents[1] {
			t.Fatalf("round %d batch: %+v %+v", round, buf[0], buf[1])
		}
		d.StealCommit()
		for i := 4; i >= 2; i-- {
			if e, ok := d.Pop(nil); !ok || e != ents[i] {
				t.Fatalf("round %d pop %d: %v %+v", round, i, ok, e)
			}
		}
		if d.Size() != 0 {
			t.Fatalf("round %d size %d", round, d.Size())
		}
	}
}

// TestDequeStressMixedStealsRace is the satellite's -race headline: an
// owner pushing chained frames and popping, four single-entry thieves
// and four batch thieves racing it, with random batch aborts. Every
// pushed entry must be consumed exactly once.
func TestDequeStressMixedStealsRace(t *testing.T) {
	const (
		singleThieves = 4
		batchThieves  = 4
		total         = 20000
		frameSize     = 64
	)
	d := NewDeque(1 << 8) // MaxClaim 64
	var stop atomic.Bool
	stolen := make(chan Entry, total)
	var wg sync.WaitGroup
	for i := 0; i < singleThieves; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				e, outcome := d.StealBegin()
				if outcome == StealOK {
					if rng.Intn(16) == 0 {
						d.StealAbort()
					} else {
						d.StealCommit()
						stolen <- e
					}
				}
			}
		}(int64(i) + 1)
	}
	for i := 0; i < batchThieves; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			buf := make([]Entry, d.MaxClaim())
			for !stop.Load() {
				n, outcome := d.StealBeginBatch(buf)
				if outcome != StealOK {
					continue
				}
				if rng.Intn(4) == 0 {
					time.Sleep(time.Microsecond) // hold the lock like a copy
				}
				if rng.Intn(16) == 0 {
					d.StealAbortBatch(n)
				} else {
					d.StealCommit()
					for j := 0; j < n; j++ {
						stolen <- buf[j]
					}
				}
			}
		}(int64(100 + i))
	}

	// The owner pushes one long descending chain (as a real arena
	// would), popping under pressure.
	var popped []Entry
	rng := rand.New(rand.NewSource(42))
	base := mem.VA(0x7f00_0000_0000)
	for i := 0; i < total; i++ {
		base -= frameSize
		e := Entry{FrameBase: base, FrameSize: frameSize}
		for d.Push(e) != nil {
			if p, ok := d.Pop(nil); ok {
				popped = append(popped, p)
			}
		}
		if rng.Intn(3) == 0 {
			if p, ok := d.Pop(nil); ok {
				popped = append(popped, p)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	for {
		p, ok := d.Pop(nil)
		if !ok {
			break
		}
		popped = append(popped, p)
	}
	close(stolen)

	seen := make(map[Entry]int, total)
	for _, e := range popped {
		seen[e]++
	}
	for e := range stolen {
		seen[e]++
	}
	if len(seen) != total {
		t.Fatalf("consumed %d distinct entries, want %d", len(seen), total)
	}
	for e, n := range seen {
		if n != 1 {
			t.Fatalf("entry %+v consumed %d times", e, n)
		}
	}
	if got := d.hdr.lock.Load(); got != 0 {
		t.Fatalf("lock word %d at rest", got)
	}
}
