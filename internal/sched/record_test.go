package sched

import (
	"testing"
	"unsafe"
)

func TestRecordLayoutIsStable(t *testing.T) {
	// The flat layout is an ABI between processes: Record must stay at
	// its documented 40-byte stride (Done, Result, Waiter, Job, next)
	// and the header on two cache lines.
	if RecordBytes != 40 {
		t.Fatalf("Record is %d bytes, want 40", RecordBytes)
	}
	if tableHdrBytes != 128 {
		t.Fatalf("table header is %d bytes, want 128", tableHdrBytes)
	}
	if got := unsafe.Sizeof(dequeHdr{}); got != 256 {
		t.Fatalf("deque header is %d bytes, want 256", got)
	}
}

func TestTableAllocReleaseRecycles(t *testing.T) {
	tb := NewTable(4)
	seen := map[uint32]bool{}
	for i := 0; i < 4; i++ {
		idx, err := tb.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		seen[idx] = true
	}
	if len(seen) != 4 {
		t.Fatalf("allocated %d distinct records, want 4", len(seen))
	}
	if _, err := tb.Alloc(); err == nil {
		t.Fatal("alloc beyond capacity succeeded")
	}
	// Remote-style release via the Treiber stack, then realloc.
	tb.Get(2).Done.Store(1)
	tb.Release(2)
	idx, err := tb.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("realloc returned %d, want recycled 2", idx)
	}
	if tb.Get(idx).Done.Load() != 0 {
		t.Fatal("recycled record's Done not reset")
	}
	if live := tb.Live(); live != 4 {
		t.Fatalf("Live() = %d, want 4", live)
	}
}

// TestTableSharedRegionTwoViews models the dist split: the owner view
// allocates, a second (remote) view attached to the same region reads
// the record and releases it; the owner's next alloc drains the shared
// release stack.
func TestTableSharedRegionTwoViews(t *testing.T) {
	region := heapRegion(TableBytes(8))
	owner, err := NewTableAt(region, 8)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := NewTableAt(region, 8)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := owner.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	owner.Get(idx).Result.Store(77)
	owner.Get(idx).Done.Store(1)
	if got := remote.Get(idx).Result.Load(); got != 77 || remote.Get(idx).Done.Load() != 1 {
		t.Fatalf("remote view sees result %d done %d", got, remote.Get(idx).Done.Load())
	}
	remote.Release(idx)
	// The owner's Live() must account the remote free (shared counter).
	if live := owner.Live(); live != 0 {
		t.Fatalf("Live() = %d after remote release, want 0", live)
	}
	again, err := owner.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if again != idx {
		t.Fatalf("owner realloc returned %d, want %d drained from release stack", again, idx)
	}
}

func TestRecordHandleRoundTrip(t *testing.T) {
	for _, rank := range []int{0, 1, 7} {
		for _, idx := range []uint32{0, 1, 4095} {
			h := RecordHandle(rank, idx)
			if h.Rank() != rank {
				t.Fatalf("handle rank %d, want %d", h.Rank(), rank)
			}
			if got := RecordIndex(h); got != idx {
				t.Fatalf("RecordIndex = %d, want %d", got, idx)
			}
		}
	}
}

func TestRegionCheckRejectsBadRegions(t *testing.T) {
	if _, err := NewTableAt(make([]byte, 8), 8); err == nil {
		t.Fatal("undersized table region accepted")
	}
	if _, err := NewDequeAt(make([]byte, 8), 8); err == nil {
		t.Fatal("undersized deque region accepted")
	}
	if _, err := NewDequeAt(heapRegion(DequeBytes(8)), 7); err == nil {
		t.Fatal("non-power-of-two capacity accepted")
	}
	region := heapRegion(DequeBytes(8) + 1)
	if _, err := NewDequeAt(region[1:], 8); err == nil {
		t.Fatal("misaligned deque region accepted")
	}
}
