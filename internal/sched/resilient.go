package sched

import (
	"time"

	"uniaddr/internal/obs"
)

// Resilient steal protocol for the real backends — the wall-clock port
// of the simulator's bounded-retry / backoff / rollback / blacklist
// machinery (core.tryStealHelpFirst and DESIGN.md §6). The sim proved
// the protocol under virtual time; this file is the shared path both
// rt (threads) and dist (processes) run it on, so injected op failures
// exercise the SAME state machine under real concurrency.
//
// Protocol summary:
//
//   - A failed claim op (the injected stand-in for a lost RDMA FAA or
//     CAS) is retried up to MaxRetries times with capped exponential
//     backoff, then abandoned: the thief walks away and picks another
//     victim next round. No claim was completed, so nothing rolls back.
//   - A failed frame transfer (a lost RDMA READ) fires AFTER the bytes
//     moved — the one deliberate exception to fail-before-effect —
//     forcing the full THE rollback: free our local copy, hand the
//     claimed entry back (StealAbort), release the victim's lock. The
//     steal is abandoned, not retried: the transfer consumed real work
//     and the victim may have drained meanwhile.
//   - BlacklistAfter consecutive faults against one victim ban it for
//     BlacklistFor of wall time. Victim selection (backend-specific)
//     consults Banned and steers around live bans, but liveness never
//     depends on the ban set: bans expire, and selection falls back to
//     a banned victim rather than refusing to steal at all.
//
// A Resilience value is OWNER-ONLY state (one per worker, like the rng
// and stats): maps and counters are unsynchronised by design.

// StealInjector decides the fate of individual steal ops. fault.Plan
// implements it; the interface lives here so sched does not import
// fault. A nil injector means no faults (the zero-cost fast path — the
// resilience loop collapses to exactly the pre-fault steal sequence).
type StealInjector interface {
	// StealClaim is consulted before the claim; fail models a lost
	// claim op (nothing happened on the victim).
	StealClaim(thief, victim int) (stall time.Duration, fail bool)
	// StealCopy is consulted after the frame transfer; fail models a
	// failed RDMA READ discovered at completion, forcing rollback.
	StealCopy(thief, victim int) (stall time.Duration, fail bool)
}

// ResilienceConfig shapes the retry/backoff/blacklist budget. The
// defaults are the wall-clock translation of the sim's cycle-based
// ones (1 cycle ≈ 1ns at the sim's 1GHz reference clock).
type ResilienceConfig struct {
	MaxRetries     int           // claim-fault retries per steal before abandoning
	BackoffBase    time.Duration // first retry backoff; doubles per attempt
	BackoffCap     time.Duration // backoff ceiling
	BlacklistAfter int           // consecutive faults that trip a victim ban
	BlacklistFor   time.Duration // ban duration
}

// DefaultResilienceConfig mirrors core.DefaultConfig's steal knobs:
// 3 retries, 2000-cycle base / 1<<17-cycle cap backoff, blacklist
// after 3 for 2M cycles.
func DefaultResilienceConfig() ResilienceConfig {
	return ResilienceConfig{
		MaxRetries:     3,
		BackoffBase:    2 * time.Microsecond,
		BackoffCap:     128 * time.Microsecond,
		BlacklistAfter: 3,
		BlacklistFor:   2 * time.Millisecond,
	}
}

// ResilienceStats counts protocol events, matching the sim's fault
// counters field for field so chaos sweeps can compare backends.
type ResilienceStats struct {
	StealFaults      uint64 // injected op failures observed
	StealRetries     uint64 // claim retries taken
	StealRollbacks   uint64 // transfer faults rolled back (THE abort)
	StealAbortsFault uint64 // steals abandoned because of faults
	VictimBlacklists uint64 // ban events
	BackoffNS        uint64 // wall time spent in fault backoff
}

// Resilience is one worker's thief-side fault state machine.
type Resilience struct {
	cfg   ResilienceConfig
	inj   StealInjector
	rank  int
	sleep func(time.Duration) // injectable for tests
	now   func() time.Time    // injectable for tests

	fails  map[int]int       // victim → consecutive fault count
	banned map[int]time.Time // victim → ban expiry

	Stats ResilienceStats

	// Log is the owning worker's wall-clock event log; nil (the
	// default) disables event emission at the cost of one pointer
	// compare per call. Set by the backend after construction.
	Log *obs.WallLog
}

// NewResilience builds the state machine for one worker. inj may be
// nil (no faults; the machinery stays dormant and free).
func NewResilience(rank int, cfg ResilienceConfig, inj StealInjector) *Resilience {
	return &Resilience{
		cfg:   cfg,
		inj:   inj,
		rank:  rank,
		sleep: time.Sleep,
		now:   time.Now,
	}
}

// Banned reports whether victim is currently blacklisted, lazily
// expiring stale bans.
func (r *Resilience) Banned(victim int) bool {
	if r == nil || len(r.banned) == 0 {
		return false
	}
	until, ok := r.banned[victim]
	if !ok {
		return false
	}
	if r.now().After(until) {
		delete(r.banned, victim)
		return false
	}
	return true
}

// noteFault records one injected fault against victim and trips the
// blacklist when the consecutive count reaches the threshold.
func (r *Resilience) noteFault(victim int) {
	r.Stats.StealFaults++
	if r.cfg.BlacklistAfter <= 0 {
		return
	}
	if r.fails == nil {
		r.fails = make(map[int]int)
	}
	r.fails[victim]++
	if r.fails[victim] >= r.cfg.BlacklistAfter {
		if r.banned == nil {
			r.banned = make(map[int]time.Time)
		}
		r.banned[victim] = r.now().Add(r.cfg.BlacklistFor)
		delete(r.fails, victim)
		r.Stats.VictimBlacklists++
		r.Log.Instant(obs.KBlacklist, uint64(r.cfg.BlacklistFor), 0, victim)
	}
}

// backoff sleeps the capped exponential delay for the given attempt
// and returns it.
func (r *Resilience) backoff(attempt int) time.Duration {
	d := r.cfg.BackoffBase << uint(attempt)
	if r.cfg.BackoffCap > 0 && d > r.cfg.BackoffCap {
		d = r.cfg.BackoffCap
	}
	if d > 0 {
		r.Stats.BackoffNS += uint64(d)
		r.sleep(d)
	}
	return d
}

// StealFrom runs one resilient steal against victim's deque vd,
// copying the stolen frame from the victim's arena view src into the
// thief's own arena dst (same VA — the uni-address invariant). On
// StealOK the entry is installed and copied into dst and the caller
// runs it. StealFaulted means the fault budget was exhausted; the
// caller treats it like a failed probe (no retry against this victim
// this round). Other outcomes are the usual THE results.
//
// With a nil injector this is exactly the pre-fault steal sequence:
// one StealBegin, one copy, one StealCommit.
func (r *Resilience) StealFrom(victim int, vd *Deque, src, dst *Arena) (Entry, StealOutcome) {
	for attempt := 0; ; attempt++ {
		if r.inj != nil {
			stall, fail := r.inj.StealClaim(r.rank, victim)
			if stall > 0 {
				r.sleep(stall)
			}
			if fail {
				// Lost claim op: nothing happened on the victim, so
				// retry or abandon — never roll back.
				r.Log.Instant(obs.KStealFault, 0, 0, victim)
				r.noteFault(victim)
				if attempt >= r.cfg.MaxRetries || r.Banned(victim) {
					r.Stats.StealAbortsFault++
					r.Log.Instant(obs.KStealAbandon, 0, 0, victim)
					return Entry{}, StealFaulted
				}
				r.Stats.StealRetries++
				bs := r.Log.Clock()
				d := r.backoff(attempt)
				r.Log.Emit(obs.KStealRetry, bs, uint64(d), uint64(attempt), 0, victim)
				continue
			}
		}
		ent, outcome := vd.StealBegin()
		if outcome != StealOK {
			return Entry{}, outcome
		}
		// Claimed; the victim's lock is held, so the victim cannot
		// recycle these bytes until we commit or abort. Copy the stack
		// to the same VA in our arena.
		if err := dst.Install(ent.FrameBase, ent.FrameSize); err != nil {
			panic(err)
		}
		sb, err := src.Slice(ent.FrameBase, ent.FrameSize)
		if err != nil {
			panic(err)
		}
		cs := r.Log.Clock()
		copy(dst.MustSlice(ent.FrameBase, ent.FrameSize), sb)
		r.Log.Copy(cs, ent.FrameSize, victim)
		if r.inj != nil {
			stall, fail := r.inj.StealCopy(r.rank, victim)
			if stall > 0 {
				// Injected transfer stall (an ODP page-fault style
				// delay). The victim's lock is held across it, exactly
				// as a slow RDMA READ would hold it — THE tolerates
				// this; chaos schedules keep the stall bounded.
				r.sleep(stall)
			}
			if fail {
				// Transfer failed AFTER the bytes moved: the full THE
				// rollback. Free our copy, hand the entry back, walk
				// away — the transfer consumed real time and the
				// victim's state has moved on, so no same-steal retry.
				if err := dst.FreeLowest(ent.FrameBase, ent.FrameSize); err != nil {
					panic(err)
				}
				vd.StealAbort()
				r.Stats.StealRollbacks++
				r.Log.Instant(obs.KStealRollback, 0, 0, victim)
				r.noteFault(victim)
				r.Stats.StealAbortsFault++
				return Entry{}, StealFaulted
			}
		}
		vd.StealCommit()
		if r.fails != nil {
			// Success clears the victim's consecutive-fault streak.
			delete(r.fails, victim)
		}
		return ent, StealOK
	}
}

// StealBatchFrom is StealFrom generalised to the steal-half batch: one
// resilient round trip that claims up to len(buf) entries
// (StealBeginBatch), moves them with a SINGLE cross-arena memcpy — the
// batch is one contiguous byte range, see the deque's chain-contiguity
// argument — and commits. The fault model amortises with the batch:
// one claim consult gates the whole claim, one copy consult gates the
// whole transfer, and a transfer fault rolls back ALL claimed entries
// (FreeLowest of the combined range, StealAbortBatch) — a lost RDMA
// READ loses the whole message, not one frame of it.
//
// On StealOK buf[0..n) holds the stolen entries in deque order
// (buf[0] oldest / highest VA, buf[n-1] newest / lowest VA) and the
// frames are installed in dst. With a nil injector this is exactly
// one StealBeginBatch, one copy, one StealCommit.
func (r *Resilience) StealBatchFrom(victim int, vd *Deque, src, dst *Arena, buf []Entry) (int, StealOutcome) {
	for attempt := 0; ; attempt++ {
		if r.inj != nil {
			stall, fail := r.inj.StealClaim(r.rank, victim)
			if stall > 0 {
				r.sleep(stall)
			}
			if fail {
				r.Log.Instant(obs.KStealFault, 0, 0, victim)
				r.noteFault(victim)
				if attempt >= r.cfg.MaxRetries || r.Banned(victim) {
					r.Stats.StealAbortsFault++
					r.Log.Instant(obs.KStealAbandon, 0, 0, victim)
					return 0, StealFaulted
				}
				r.Stats.StealRetries++
				bs := r.Log.Clock()
				d := r.backoff(attempt)
				r.Log.Emit(obs.KStealRetry, bs, uint64(d), uint64(attempt), 0, victim)
				continue
			}
		}
		n, outcome := vd.StealBeginBatch(buf)
		if outcome != StealOK {
			return 0, outcome
		}
		// Claimed; the victim's lock is held across the whole batch. The
		// n entries tile one contiguous range [low, low+total): buf[0] is
		// the highest frame, buf[n-1] the lowest.
		low := buf[n-1].FrameBase
		total := uint64(buf[0].FrameBase-low) + buf[0].FrameSize
		if err := dst.Install(low, total); err != nil {
			panic(err)
		}
		sb, err := src.Slice(low, total)
		if err != nil {
			panic(err)
		}
		cs := r.Log.Clock()
		copy(dst.MustSlice(low, total), sb)
		r.Log.Copy(cs, total, victim)
		if r.inj != nil {
			stall, fail := r.inj.StealCopy(r.rank, victim)
			if stall > 0 {
				r.sleep(stall)
			}
			if fail {
				// The whole transfer failed after the bytes moved: roll
				// back the full batch through the existing THE abort
				// path — free our combined copy, hand every entry back.
				if err := dst.FreeLowest(low, total); err != nil {
					panic(err)
				}
				vd.StealAbortBatch(n)
				r.Stats.StealRollbacks++
				r.Log.Instant(obs.KStealRollback, 0, 0, victim)
				r.noteFault(victim)
				r.Stats.StealAbortsFault++
				return 0, StealFaulted
			}
		}
		vd.StealCommit()
		if r.fails != nil {
			delete(r.fails, victim)
		}
		return n, StealOK
	}
}
