package sched

import (
	"strings"
	"testing"

	"uniaddr/internal/mem"
)

func TestArenaSliceBounds(t *testing.T) {
	a := NewArena(0x1000, 256)
	if _, err := a.Slice(0x1000, 256); err != nil {
		t.Fatalf("full-arena slice rejected: %v", err)
	}
	if _, err := a.Slice(0x10ff, 1); err != nil {
		t.Fatalf("last-byte slice rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		va   mem.VA
		n    uint64
	}{
		{"below base", 0xfff, 1},
		{"past end", 0x1000, 257},
		{"offset past end", 0x1100, 1},
		// n near 2^64: off+n wraps, which the len-off form must catch.
		{"wrapping length", 0x1080, ^uint64(0) - 16},
		// va far below base: off wraps to a huge value.
		{"wrapping address", 0x10, 8},
	} {
		if _, err := a.Slice(tc.va, tc.n); err == nil {
			t.Errorf("%s: Slice(%#x, %d) accepted", tc.name, tc.va, tc.n)
		}
	}
}

func TestArenaU64FastAndSlowPaths(t *testing.T) {
	a := NewArena(0x1000, 64)
	a.WriteU64(0x1000, 0xdeadbeefcafef00d)
	if got := a.ReadU64(0x1000); got != 0xdeadbeefcafef00d {
		t.Fatalf("ReadU64 = %#x", got)
	}
	a.WriteU64(0x1038, 42) // last legal word
	if got := a.ReadU64(0x1038); got != 42 {
		t.Fatalf("ReadU64 at arena top = %d", got)
	}
	for _, va := range []mem.VA{0xff8, 0x1039, 0x1040, 0} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("ReadU64(%#x) did not panic", va)
					return
				}
				if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "outside arena") {
					t.Errorf("ReadU64(%#x) panic = %v, want arena bounds error", va, r)
				}
			}()
			a.ReadU64(va)
		}()
	}
}

// TestArenaInstallOverflowGuard pins the VA-overflow fix: an install
// whose base+size wraps past 2^64 used to pass the `base+size > end`
// check and admit a region lying far outside the arena.
func TestArenaInstallOverflowGuard(t *testing.T) {
	a := NewArena(0x1000, 256)

	if err := a.Install(0x1040, 64); err != nil {
		t.Fatalf("legal install rejected: %v", err)
	}
	a.Clear()
	if err := a.Install(0x1000, 256); err != nil {
		t.Fatalf("full-arena install rejected: %v", err)
	}
	a.Clear()

	for _, tc := range []struct {
		name string
		base mem.VA
		size uint64
	}{
		{"below base", 0xfff, 8},
		{"size past end", 0x1080, 256},
		{"base past end", 0x1101, 8},
		// The regression case: base+size wraps past zero, so the old
		// check base+size > end saw a tiny sum and accepted it.
		{"VA overflow", 0x1080, ^uint64(0) - 8},
		// size = -base: base+size wraps to exactly 0, far below end.
		{"VA overflow to zero", 0x1080, ^uint64(0x1080) + 1},
	} {
		if err := a.Install(tc.base, tc.size); err == nil {
			t.Errorf("%s: Install(%#x, %d) accepted", tc.name, tc.base, tc.size)
			a.Clear()
		}
	}

	// The guard must not have perturbed arena state: a legal install
	// still lands.
	if err := a.Install(0x1040, 32); err != nil {
		t.Fatalf("legal install after rejections: %v", err)
	}
}

// TestArenaOverSharedBacking: two arenas over the same backing (the
// dist same-VA trick in miniature) observe each other's bytes.
func TestArenaOverSharedBacking(t *testing.T) {
	backing := heapRegion(128)
	a := NewArenaOver(0x2000, backing)
	b := NewArenaOver(0x2000, backing)
	a.WriteU64(0x2040, 0xfeed)
	if got := b.ReadU64(0x2040); got != 0xfeed {
		t.Fatalf("second view read %#x, want 0xfeed", got)
	}
	if a.Base() != 0x2000 || a.Used() != 0 || !a.Empty() {
		t.Fatalf("fresh arena state: base %#x used %d", a.Base(), a.Used())
	}
}
