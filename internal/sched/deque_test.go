package sched

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"uniaddr/internal/mem"
)

// White-box tests for the atomics THE deque, mirroring the simulator's
// internal/core/deque_test.go cases where they apply (no fault
// injection here: rt has no simulated fabric) plus genuinely concurrent
// stress that the simulator cannot express.

func ent(i uint64) Entry {
	return Entry{FrameBase: mem.VA(0x7f00_0000_0000 + i*64), FrameSize: 64 + i}
}

func TestDequeLocalPushPopLIFO(t *testing.T) {
	d := NewDeque(16)
	for i := uint64(0); i < 10; i++ {
		if err := d.Push(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(9); ; i-- {
		e, ok := d.Pop(nil)
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if e != ent(i) {
			t.Fatalf("popped %+v, want %+v", e, ent(i))
		}
		if i == 0 {
			break
		}
	}
	if _, ok := d.Pop(nil); ok {
		t.Fatal("pop on empty deque succeeded")
	}
}

func TestDequeOverflowReported(t *testing.T) {
	d := NewDeque(4) // one slot reserved for an in-flight claim: 3 usable
	for i := uint64(0); i < 3; i++ {
		if err := d.Push(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Push(ent(3)); err == nil {
		t.Fatal("push into full deque succeeded")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := NewDeque(16)
	for i := uint64(0); i < 3; i++ {
		if err := d.Push(ent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Thieves take from the top: oldest (shallowest) first, the Cilk
	// steal order that moves the largest subtrees.
	for i := uint64(0); i < 3; i++ {
		e, outcome := d.StealBegin()
		if outcome != StealOK {
			t.Fatalf("steal %d: %v", i, outcome)
		}
		if e != ent(i) {
			t.Fatalf("stole %+v, want %+v", e, ent(i))
		}
		d.StealCommit()
	}
	if _, outcome := d.StealBegin(); outcome != StealEmpty {
		t.Fatalf("steal on empty: %v, want %v", outcome, StealEmpty)
	}
}

func TestDequeStealLockBusy(t *testing.T) {
	d := NewDeque(16)
	// Two entries: after the first thief claims ent(0), ent(1) still
	// shows bottom > top, so a second thief proceeds to the lock and
	// must find it busy. (With a single entry the claim itself makes
	// the deque look empty and the second thief never locks.)
	if err := d.Push(ent(0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(ent(1)); err != nil {
		t.Fatal(err)
	}
	// First thief claims and holds the lock mid-copy.
	e, outcome := d.StealBegin()
	if outcome != StealOK {
		t.Fatalf("first steal: %v", outcome)
	}
	// Second thief must observe the busy lock and back off without
	// retrying — and without corrupting the lock word.
	if _, o2 := d.StealBegin(); o2 != StealLockBusy {
		t.Fatalf("second steal: %v, want %v", o2, StealLockBusy)
	}
	// The holder's release absorbs the failed FAA increment.
	d.StealCommit()
	if got := d.hdr.lock.Load(); got != 0 {
		t.Fatalf("lock word %d after release, want 0", got)
	}
	_ = e
	// With the lock free again the second thief succeeds on ent(1).
	if e2, o3 := d.StealBegin(); o3 != StealOK || e2 != ent(1) {
		t.Fatalf("retry steal: %v %+v", o3, e2)
	}
	d.StealCommit()
}

func TestDequeStealAbortLeavesEntry(t *testing.T) {
	d := NewDeque(16)
	if err := d.Push(ent(7)); err != nil {
		t.Fatal(err)
	}
	e, outcome := d.StealBegin()
	if outcome != StealOK || e != ent(7) {
		t.Fatalf("steal: %v %+v", outcome, e)
	}
	d.StealAbort()
	// The THE abort hands the entry back; the owner recovers it.
	got, ok := d.Pop(nil)
	if !ok || got != ent(7) {
		t.Fatalf("pop after abort: %v %+v", ok, got)
	}
}

// TestDequeTHELastElementRace scripts the Fig. 6 showdown on the final
// entry: once the thief's claim lands (top = bottom), the owner's pop
// must lose — whether the thief is still mid-copy or has committed —
// and must never surface the claimed entry. (The interleaving where the
// owner's decrement lands first and both sides settle under the lock is
// inherently timing-dependent; the stress tests below drive it.)
func TestDequeTHELastElementRace(t *testing.T) {
	d := NewDeque(16)
	if err := d.Push(ent(3)); err != nil {
		t.Fatal(err)
	}
	e, outcome := d.StealBegin()
	if outcome != StealOK || e != ent(3) {
		t.Fatalf("steal: %v %+v", outcome, e)
	}
	// Claim held, copy in progress: the owner sees an empty deque.
	if got, ok := d.Pop(nil); ok {
		t.Fatalf("owner pop won claimed entry %+v", got)
	}
	d.StealCommit()
	if got, ok := d.Pop(nil); ok {
		t.Fatalf("owner pop after commit returned %+v", got)
	}
	if n := d.Size(); n != 0 {
		t.Fatalf("size %d after showdown, want 0", n)
	}
}

// TestDequeOwnerWinsBelowClaim: with two entries, a thief's claim on
// the top one must not disturb the owner's lock-free pop of the bottom
// one.
func TestDequeOwnerWinsBelowClaim(t *testing.T) {
	d := NewDeque(16)
	if err := d.Push(ent(0)); err != nil {
		t.Fatal(err)
	}
	if err := d.Push(ent(1)); err != nil {
		t.Fatal(err)
	}
	e, outcome := d.StealBegin() // claims ent(0), holds lock
	if outcome != StealOK || e != ent(0) {
		t.Fatalf("steal: %v %+v", outcome, e)
	}
	got, ok := d.Pop(nil) // fast path, no lock needed
	if !ok || got != ent(1) {
		t.Fatalf("pop under claim: %v %+v", ok, got)
	}
	d.StealCommit()
	if n := d.Size(); n != 0 {
		t.Fatalf("size %d, want 0", n)
	}
}

func TestDequeRingWrap(t *testing.T) {
	d := NewDeque(4) // 3 usable slots; rounds of 3 force index wraparound
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 3; i++ {
			if err := d.Push(ent(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint64(0); i < 1; i++ {
			if e, outcome := d.StealBegin(); outcome != StealOK || e != ent(i) {
				t.Fatalf("round %d steal %d: %v %+v", round, i, outcome, e)
			}
			d.StealCommit()
		}
		for i := uint64(2); i >= 1; i-- {
			if e, ok := d.Pop(nil); !ok || e != ent(i) {
				t.Fatalf("round %d pop %d: %v %+v", round, i, ok, e)
			}
		}
		if n := d.Size(); n != 0 {
			t.Fatalf("round %d size %d", round, n)
		}
	}
}

// TestDequeStressManyThieves is the satellite's headline case: one
// victim pushing and popping for real, many genuinely concurrent
// thieves, run under -race. Every pushed entry must be consumed exactly
// once — by the owner or by exactly one thief — and the lock word must
// come to rest at 0.
func TestDequeStressManyThieves(t *testing.T) {
	const (
		thieves = 8
		total   = 20000
	)
	d := NewDeque(1 << 10)
	var stop atomic.Bool
	stolen := make(chan Entry, total)
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				e, outcome := d.StealBegin()
				if outcome == StealOK {
					// Hold the lock for a beat, like a real stack copy.
					if rng.Intn(4) == 0 {
						time.Sleep(time.Microsecond)
					}
					if rng.Intn(16) == 0 {
						d.StealAbort() // exercise the THE abort under load
					} else {
						d.StealCommit()
						stolen <- e
					}
				}
			}
		}(int64(i) + 1)
	}

	var popped []Entry
	rng := rand.New(rand.NewSource(42))
	for i := uint64(1); i <= total; i++ {
		e := Entry{FrameBase: mem.VA(0x7f00_0000_0000 + i*16), FrameSize: i}
		for d.Push(e) != nil {
			// Full: drain one locally.
			if p, ok := d.Pop(nil); ok {
				popped = append(popped, p)
			}
		}
		if rng.Intn(3) == 0 {
			if p, ok := d.Pop(nil); ok {
				popped = append(popped, p)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	// Drain AFTER the thieves stop: a thief's final StealAbort can hand
	// an entry back to a deque the owner had already seen empty.
	for {
		p, ok := d.Pop(nil)
		if !ok {
			break
		}
		popped = append(popped, p)
	}
	close(stolen)

	seen := make(map[Entry]int, total)
	for _, e := range popped {
		seen[e]++
	}
	for e := range stolen {
		seen[e]++
	}
	if len(seen) != total {
		t.Fatalf("consumed %d distinct entries, want %d", len(seen), total)
	}
	for e, n := range seen {
		if n != 1 {
			t.Fatalf("entry %+v consumed %d times", e, n)
		}
	}
	if got := d.hdr.lock.Load(); got != 0 {
		t.Fatalf("lock word %d at rest, want 0", got)
	}
	if n := d.Size(); n != 0 {
		t.Fatalf("size %d at rest, want 0", n)
	}
}

// TestDequeStressOwnerConflict drives the pop conflict path hard: the
// deque is kept near-empty so owner and thieves constantly collide on
// the last entry.
func TestDequeStressOwnerConflict(t *testing.T) {
	const (
		thieves = 4
		total   = 10000
	)
	d := NewDeque(8)
	var stop atomic.Bool
	var stolenCount atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if _, outcome := d.StealBegin(); outcome == StealOK {
					d.StealCommit()
					stolenCount.Add(1)
				}
			}
		}()
	}
	var poppedCount uint64
	for i := uint64(1); i <= total; i++ {
		for d.Push(ent(i)) != nil {
			if _, ok := d.Pop(nil); ok {
				poppedCount++
			}
		}
		if _, ok := d.Pop(nil); ok {
			poppedCount++
		}
	}
	for {
		if _, ok := d.Pop(nil); !ok {
			break
		}
		poppedCount++
	}
	stop.Store(true)
	wg.Wait()
	if got := poppedCount + stolenCount.Load(); got != total {
		t.Fatalf("consumed %d entries (%d popped, %d stolen), want %d",
			got, poppedCount, stolenCount.Load(), total)
	}
}
