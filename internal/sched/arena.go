package sched

import (
	"encoding/binary"
	"fmt"

	"uniaddr/internal/mem"
)

// Arena is one worker's uni-address region (paper §5.2, Fig. 3) over a
// caller-provided byte slice. Every worker maps its arena at the same
// virtual base, so a frame's VA is position-independent across workers:
// a steal copies bytes from the victim's backing into the thief's
// backing at the SAME offset and every intra-stack pointer stays valid
// — the uni-address guarantee, realised with memcpy instead of RDMA
// READ. On the rt backend the backing is a private Go-heap slice; on
// the dist backend it is a window of the shared mmap segment, so the
// same memcpy becomes a genuine cross-process one-sided copy.
//
// The stack discipline is the simulator's Region verbatim: the used
// part is one contiguous range [p, top); fresh stacks are pushed below
// p; only the lowest (running) stack is ever freed or swapped out; a
// stolen or saved thread may be installed at its original VA only while
// the region is empty (§5.2 rule 5).
//
// Concurrency: only the bytes are shared; the bookkeeping (p/top/max)
// is owner-only Go state, which is why Arena is not a flat region
// structure like Deque and Table. The owner mutates p/top; a thief
// reads the arena bytes of a claimed frame while holding the owner's
// deque lock, which the protocol proves cannot overlap any owner write
// to those bytes (see deque.go). No atomics are needed on the arena
// itself.
type Arena struct {
	bytes []byte
	base  mem.VA
	end   mem.VA
	p     mem.VA // next free address (stacks grow down); used = [p, top)
	top   mem.VA
	max   uint64 // high-water usage in bytes
}

// NewArenaOver lays an arena with VA range [base, base+len(backing))
// over caller-provided memory. The backing is NOT zeroed (a dist worker
// attaches over a fresh mmap segment, which already is).
func NewArenaOver(base mem.VA, backing []byte) *Arena {
	end := base + mem.VA(uint64(len(backing)))
	return &Arena{
		bytes: backing,
		base:  base,
		end:   end,
		p:     end,
		top:   end,
	}
}

// NewArena allocates a private heap-backed arena of size bytes.
func NewArena(base mem.VA, size uint64) *Arena {
	return NewArenaOver(base, make([]byte, size))
}

// Slice returns the backing bytes for [va, va+n), bounds-checked
// against the arena (not against [p, top): thieves read frames they
// have claimed but not yet installed locally). Slice and its wrappers
// below sit on every frame-slot access, so their fast paths carry no
// fmt machinery: error/panic construction lives in out-of-line
// noinline slow paths. The bounds check is wrap-safe — `n > len-off`
// cannot overflow where the old `off+n > len` form could — and the
// off > len comparison also catches va < a.base, because the
// subtraction wraps to a value far above any real arena length.
func (a *Arena) Slice(va mem.VA, n uint64) ([]byte, error) {
	off := uint64(va) - uint64(a.base)
	if off > uint64(len(a.bytes)) || n > uint64(len(a.bytes))-off {
		return nil, a.sliceErr(va, n)
	}
	return a.bytes[off : off+n : off+n], nil
}

//go:noinline
func (a *Arena) sliceErr(va mem.VA, n uint64) error {
	return fmt.Errorf("sched: access [%#x,+%d) outside arena [%#x,%#x)", va, n, a.base, a.end)
}

// MustSlice is Slice with the out-of-range case promoted to a panic
// (worker-internal accesses whose VAs the scheduler itself produced).
func (a *Arena) MustSlice(va mem.VA, n uint64) []byte {
	off := uint64(va) - uint64(a.base)
	if off > uint64(len(a.bytes)) || n > uint64(len(a.bytes))-off {
		a.sliceFail(va, n)
	}
	return a.bytes[off : off+n : off+n]
}

//go:noinline
func (a *Arena) sliceFail(va mem.VA, n uint64) {
	panic(a.sliceErr(va, n))
}

// ReadU64 loads the little-endian word at va.
func (a *Arena) ReadU64(va mem.VA) uint64 {
	off := uint64(va) - uint64(a.base)
	if b := a.bytes; off < uint64(len(b)) && uint64(len(b))-off >= 8 {
		return binary.LittleEndian.Uint64(b[off:])
	}
	return a.readU64Slow(va)
}

//go:noinline
func (a *Arena) readU64Slow(va mem.VA) uint64 {
	return binary.LittleEndian.Uint64(a.MustSlice(va, 8))
}

// WriteU64 stores v little-endian at va.
func (a *Arena) WriteU64(va mem.VA, v uint64) {
	off := uint64(va) - uint64(a.base)
	if b := a.bytes; off < uint64(len(b)) && uint64(len(b))-off >= 8 {
		binary.LittleEndian.PutUint64(b[off:], v)
		return
	}
	a.writeU64Slow(va, v)
}

//go:noinline
func (a *Arena) writeU64Slow(va mem.VA, v uint64) {
	binary.LittleEndian.PutUint64(a.MustSlice(va, 8), v)
}

// Empty reports whether no stack occupies the region.
func (a *Arena) Empty() bool { return a.p == a.top }

// Used returns the occupied byte count [p, top).
func (a *Arena) Used() uint64 { return uint64(a.top - a.p) }

// Max returns the high-water usage in bytes.
func (a *Arena) Max() uint64 { return a.max }

// Base returns the arena's lowest VA.
func (a *Arena) Base() mem.VA { return a.base }

// AllocBelow pushes a new stack of size bytes immediately below the
// current lowest stack (§5.2 rule 3).
func (a *Arena) AllocBelow(size uint64) (mem.VA, error) {
	if uint64(a.p-a.base) < size {
		return 0, fmt.Errorf("sched: arena exhausted: need %d, have %d free below p (raise Config.ArenaSize)", size, a.p-a.base)
	}
	a.p -= mem.VA(size)
	if u := a.Used(); u > a.max {
		a.max = u
	}
	return a.p, nil
}

// FreeLowest releases the lowest stack, which must start at base and be
// size bytes. When the region becomes empty, p and top snap back to the
// end so the next fresh task starts at the region's top.
func (a *Arena) FreeLowest(base mem.VA, size uint64) error {
	if base != a.p {
		return fmt.Errorf("sched: FreeLowest(%#x) but lowest stack is %#x", base, a.p)
	}
	if uint64(a.top-a.p) < size {
		return fmt.Errorf("sched: FreeLowest size %d exceeds used %d", size, a.Used())
	}
	a.p += mem.VA(size)
	if a.p == a.top {
		a.p, a.top = a.end, a.end
	}
	return nil
}

// Install places a thread occupying [base, base+size) into an empty
// region — the landing step of a steal or of resuming a saved context.
func (a *Arena) Install(base mem.VA, size uint64) error {
	if !a.Empty() {
		return fmt.Errorf("sched: install into non-empty arena (used %d bytes)", a.Used())
	}
	// size is compared against the space remaining above base rather
	// than added to base: `base+size > end` wraps for sizes near 2^64
	// and would admit an install whose top lies past the arena's end.
	if base < a.base || base > a.end || size > uint64(a.end-base) {
		return fmt.Errorf("sched: install [%#x,+%d) outside arena [%#x,%#x)", base, size, a.base, a.end)
	}
	a.p = base
	a.top = base + mem.VA(size)
	if u := a.Used(); u > a.max {
		a.max = u
	}
	return nil
}

// Clear empties the region, reclaiming space held by the dead local
// copies of stolen threads. Called only when no thread is running and
// the deque is empty, at which point everything left belongs to threads
// that now live elsewhere.
func (a *Arena) Clear() {
	a.p, a.top = a.end, a.end
}
