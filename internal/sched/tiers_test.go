package sched

import "testing"

func TestBuildTiersPartition(t *testing.T) {
	// Every victim lands in exactly one tier, self excluded, ascending
	// rank order within a tier — across group widths and ranks.
	for _, n := range []int{1, 2, 4, 7, 16, 33} {
		for _, group := range []int{0, 1, 2, 4, 8} {
			for rank := 0; rank < n; rank++ {
				tiers := BuildTiers(rank, n, group)
				seen := map[int]bool{}
				for _, tier := range tiers {
					prev := -1
					for _, v := range tier {
						if v == rank {
							t.Fatalf("n=%d group=%d rank=%d: self in tiers", n, group, rank)
						}
						if v < 0 || v >= n {
							t.Fatalf("n=%d group=%d rank=%d: victim %d out of range", n, group, rank, v)
						}
						if seen[v] {
							t.Fatalf("n=%d group=%d rank=%d: victim %d in two tiers", n, group, rank, v)
						}
						if v <= prev {
							t.Fatalf("n=%d group=%d rank=%d: tier not ascending at %d", n, group, rank, v)
						}
						seen[v] = true
						prev = v
					}
				}
				if len(seen) != n-1 {
					t.Fatalf("n=%d group=%d rank=%d: %d victims tiered, want %d", n, group, rank, len(seen), n-1)
				}
			}
		}
	}
}

func TestBuildTiersDistances(t *testing.T) {
	// 32 ranks, group 4, thief rank 5 (block 1): blockmates are
	// VERYNEAR, blocks 0 and 2 NEAR, blocks up to distance 4 FAR, the
	// rest VERYFAR.
	tiers := BuildTiers(5, 32, 4)
	want := [NumTiers][]int{
		{4, 6, 7},
		{0, 1, 2, 3, 8, 9, 10, 11},
		{12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23},
		{24, 25, 26, 27, 28, 29, 30, 31},
	}
	for i := range want {
		if len(tiers[i]) != len(want[i]) {
			t.Fatalf("tier %d: %v, want %v", i, tiers[i], want[i])
		}
		for j := range want[i] {
			if tiers[i][j] != want[i][j] {
				t.Fatalf("tier %d: %v, want %v", i, tiers[i], want[i])
			}
		}
	}
	// Small runs collapse into tier 0 entirely.
	tiers = BuildTiers(2, 4, 4)
	if len(tiers[0]) != 3 || len(tiers[1])+len(tiers[2])+len(tiers[3]) != 0 {
		t.Fatalf("4-worker tiers: %v", tiers)
	}
	// group=1 degenerates to pure rank distance.
	tiers = BuildTiers(0, 8, 1)
	if len(tiers[0]) != 0 || len(tiers[1]) != 1 || len(tiers[2]) != 3 || len(tiers[3]) != 3 {
		t.Fatalf("group=1 tiers: %v", tiers)
	}
}
