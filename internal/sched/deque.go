package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"uniaddr/internal/mem"
)

// Deque is the THE-protocol work-stealing deque (paper Fig. 6) built
// from real sync/atomic operations — the concurrent twin of the
// simulator's core.Deque, which lays the same protocol out in simulated
// pinned memory and charges RDMA verbs for each step.
//
// Protocol, identical to the simulator's:
//
//   - The owner pushes and pops at bottom without the lock (fast path).
//   - A thief locks with fetch-add(+1) on the lock word: acquired iff
//     the previous value was 0. Failed lockers do NOT retry and never
//     write; the holder releases by storing 0, which absorbs every
//     failed increment — exactly the semantics of the paper's
//     RDMA-FAA-based mutex, where only one FAA can return 0 per
//     ownership epoch.
//   - A thief claims the top entry by writing top = t+1 BEFORE
//     re-reading bottom (the THE order). If the owner's pop decremented
//     bottom past the claim, the thief retreats (restores top) and
//     reports the deque empty.
//   - The owner's pop conflict path (bottom crossed top) restores
//     bottom, takes the lock, and re-checks — serialising against any
//     in-flight claim.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, which subsumes every ordering the protocol needs. The
// load-bearing happens-before edges are:
//
//  1. push(entry slots) → store(bottom)      : a thief that observes
//     bottom > t observes the entry bytes (slots use atomic stores, so
//     the race detector sees the edge too).
//  2. thief's frame-bytes copy → store(lock=0): the steal's cross-arena
//     memcpy completes before the lock release.
//  3. owner's lock acquire → frame reuse     : the owner only reuses a
//     frame's arena range after a pop that, if it conflicted with a
//     claim, went through the lock — so edge 2 makes the thief's copy
//     visible (and finished) before the owner can overwrite the bytes.
//     The lock-free pop fast path keeps entries that no thief can have
//     claimed (bottom-1 >= top was re-checked after the decrement).
//
// These edges hold across processes too: on the dist backend the words
// live in an mmap'd MAP_SHARED segment and the same hardware fences
// order the same physical memory.
//
// ABA on the ring: entry slots are indexed mod cap, so top could in
// principle wrap cap pushes during one claim window. The claim window
// is bounded (a thief holds the lock for one memcpy) while cap pushes
// require cap task spawns on the owner; with the default cap of 8192
// this cannot occur in practice, matching the simulator's stance.
//
// Layout: the flat region starts with four words, each alone on a
// 64-byte line (lock, top, bottom, occupancy), followed by cap 16-byte
// entry slots. A Deque value is one process's *view* of such a region;
// any number of views may attach to the same region.
type Deque struct {
	hdr   *dequeHdr
	slots []dqSlot
	cap   uint64
}

// dequeHdr is the shared word block at the start of a deque region.
// occupancy is the published steal hint: an approximate entry count a
// prospective thief can read with ONE load (top and bottom live on
// separate cache lines by design, so the exact Size() costs two). It is
// refreshed by the owner at every push/pop and by a thief at
// commit/abort while it still holds the lock. Both sides use plain
// last-writer-wins stores, so the value can go stale in either
// direction; it is ADVISORY ONLY — no correctness decision reads it.
type dequeHdr struct {
	lock      atomic.Uint64
	_         [56]byte
	top       atomic.Uint64
	_         [56]byte
	bottom    atomic.Uint64
	_         [56]byte
	occupancy atomic.Uint64
	_         [56]byte
}

// dqSlot is one deque entry. Fields are atomics so the entry publish
// (push before bottom-store) and the thief's read (after bottom-load)
// form explicit happens-before edges under the race detector.
type dqSlot struct {
	base atomic.Uint64
	size atomic.Uint64
}

const dequeHdrBytes = uint64(unsafe.Sizeof(dequeHdr{}))

// DequeBytes returns the region footprint of a deque with the given
// entry capacity.
func DequeBytes(capacity uint64) uint64 {
	return dequeHdrBytes + capacity*uint64(unsafe.Sizeof(dqSlot{}))
}

// Entry references a runnable thread: the base VA and byte size of its
// stack in the owner's arena.
type Entry struct {
	FrameBase mem.VA
	FrameSize uint64
}

// StealOutcome mirrors core.StealOutcome for the concurrent deque.
type StealOutcome uint8

const (
	// StealOK: the top entry is claimed and the victim's lock is HELD.
	// The thief must copy the frame bytes and then call StealCommit
	// (or StealAbort to hand the entry back).
	StealOK StealOutcome = iota
	// StealEmpty: nothing to steal (observed before locking).
	StealEmpty
	// StealLockBusy: another thief (or the owner's conflict path) holds
	// the lock; per THE, the thief backs off rather than spinning.
	StealLockBusy
	// StealEmptyLocked: the lock was taken but the re-read found the
	// deque drained; the claim was retreated and the lock released.
	StealEmptyLocked
	// StealFaulted: an injected fault exhausted the resilience budget
	// (retries or blacklist) — see Resilience.StealFrom. Any claimed
	// entry has been handed back; the victim's lock is released.
	StealFaulted
)

func (o StealOutcome) String() string {
	switch o {
	case StealOK:
		return "ok"
	case StealEmpty:
		return "empty"
	case StealLockBusy:
		return "lock-busy"
	case StealEmptyLocked:
		return "empty-locked"
	case StealFaulted:
		return "faulted"
	default:
		return fmt.Sprintf("StealOutcome(%d)", uint8(o))
	}
}

// NewDequeAt attaches a deque view to a flat region (zeroed at first
// attach; attaching to a live region yields a coherent second view,
// which is how dist thieves address a victim's deque). The region must
// be 8-byte aligned and hold DequeBytes(capacity). The deque holds up
// to capacity-1 entries (one ring slot is reserved for an in-flight
// claim; see Push). capacity must be a power of two >= 2.
func NewDequeAt(region []byte, capacity uint64) (*Deque, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("sched: deque capacity %d not a power of two >= 2", capacity)
	}
	if err := regionCheck(region, DequeBytes(capacity), "deque"); err != nil {
		return nil, err
	}
	d := &Deque{
		hdr:   (*dequeHdr)(unsafe.Pointer(&region[0])),
		slots: unsafe.Slice((*dqSlot)(unsafe.Pointer(&region[dequeHdrBytes])), capacity),
		cap:   capacity,
	}
	return d, nil
}

// NewDeque allocates a private heap-backed deque (the single-process
// backend's constructor). It panics on a bad capacity, preserving the
// contract rt's tests exercise.
func NewDeque(capacity uint64) *Deque {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("sched: deque capacity %d not a power of two >= 2", capacity))
	}
	d, err := NewDequeAt(heapRegion(DequeBytes(capacity)), capacity)
	if err != nil {
		panic(err)
	}
	return d
}

// syncOccupancy republishes the current Size as the steal hint.
func (d *Deque) syncOccupancy() { d.hdr.occupancy.Store(d.Size()) }

// Occupancy returns the advisory entry-count hint (single load).
func (d *Deque) Occupancy() uint64 { return d.hdr.occupancy.Load() }

func (d *Deque) entryAt(i uint64) Entry {
	s := &d.slots[i&(d.cap-1)]
	return Entry{FrameBase: mem.VA(s.base.Load()), FrameSize: s.size.Load()}
}

// Push publishes an entry at bottom (owner only, lock-free). One slot
// of the ring is reserved: a thief's in-flight claim inflates top by
// one until it commits or aborts, so the owner's occupancy read b-t can
// undercount by one — pushing into that slack would overwrite either
// the slot the thief is still copying or an entry an abort is about to
// hand back. At most one claim is ever in flight (the lock), so one
// reserved slot restores the bound.
func (d *Deque) Push(e Entry) error {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b-t >= d.cap-1 {
		return fmt.Errorf("sched: deque overflow (cap %d)", d.cap)
	}
	s := &d.slots[b&(d.cap-1)]
	s.base.Store(uint64(e.FrameBase))
	s.size.Store(e.FrameSize)
	d.hdr.bottom.Store(b + 1)
	// Hint refresh from the locals already in hand (an in-flight claim
	// can make this stale-high by one — advisory, so fine).
	d.hdr.occupancy.Store(b + 1 - t)
	return nil
}

// Pop takes the bottom entry (owner only; lock-free unless it collides
// with a thief's claim on the last entry). stop, if non-nil, aborts the
// conflict-path lock spin — used so a worker wedged behind a crashed
// lock holder can still observe shutdown; a stop-aborted Pop reports
// empty.
func (d *Deque) Pop(stop func() bool) (Entry, bool) {
	b := d.hdr.bottom.Load()
	t := d.hdr.top.Load()
	if b <= t {
		// Empty. No claim can be outstanding on entries below top, so
		// this path needs no lock (edge 3 note in the type comment).
		// Converge the hint toward the truth while we are here: a stale
		// non-zero hint would keep attracting thieves to a dry deque.
		d.hdr.occupancy.Store(0)
		return Entry{}, false
	}
	b--
	d.hdr.bottom.Store(b)
	if t = d.hdr.top.Load(); t <= b {
		// No conflict: the entry at b is ours, and no thief can claim
		// it any more (a claim writes top = b+1 > b only after reading
		// bottom > b, which is no longer true).
		d.hdr.occupancy.Store(b - t)
		return d.entryAt(b), true
	}
	// A thief's claim crossed our decrement. Restore bottom and settle
	// the race under the lock (THE slow path).
	d.hdr.bottom.Store(b + 1)
	if !d.LockOwner(stop) {
		return Entry{}, false
	}
	b = d.hdr.bottom.Load() - 1
	t = d.hdr.top.Load()
	if t > b {
		// The thief won: the last entry is gone.
		d.syncOccupancy()
		d.Unlock()
		return Entry{}, false
	}
	d.hdr.bottom.Store(b)
	e := d.entryAt(b)
	d.syncOccupancy()
	d.Unlock()
	return e, true
}

// StealBegin claims the victim's top entry (thief side, one-sided in
// the RDMA original: FAA-lock, READ top, WRITE top+1, READ bottom). On
// StealOK the victim's lock is held and the caller owns the claimed
// entry; it must copy the frame bytes out of the victim's arena and
// then StealCommit. The lock being held across the copy is what makes
// the copy safe: the victim cannot recycle the frame's arena bytes
// without first winning this lock (Pop's conflict path).
func (d *Deque) StealBegin() (Entry, StealOutcome) {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b <= t {
		return Entry{}, StealEmpty
	}
	if d.hdr.lock.Add(1) != 1 {
		// Someone else holds the lock; do not retry, do not unlock
		// (the holder's release absorbs our increment).
		return Entry{}, StealLockBusy
	}
	t = d.hdr.top.Load()
	d.hdr.top.Store(t + 1) // claim BEFORE re-reading bottom (THE order)
	b = d.hdr.bottom.Load()
	if b < t+1 {
		// Drained while we were locking; retreat the claim.
		d.hdr.top.Store(t)
		d.Unlock()
		return Entry{}, StealEmptyLocked
	}
	return d.entryAt(t), StealOK
}

// StealCommit releases the victim's lock after the frame copy. The
// seq-cst store orders the copy before the release (edge 2). The hint
// refresh happens while the lock is still held, so the committed
// claim's effect on top is already reflected.
func (d *Deque) StealCommit() {
	d.syncOccupancy()
	d.Unlock()
}

// StealAbort hands a claimed entry back (top = t) and releases the
// lock — the THE abort the simulator's fault-injection tests exercise.
func (d *Deque) StealAbort() {
	d.hdr.top.Store(d.hdr.top.Load() - 1)
	d.syncOccupancy()
	d.Unlock()
}

// Unlock releases the FAA lock (holder only).
func (d *Deque) Unlock() { d.hdr.lock.Store(0) }

// LockOwner spins on the FAA lock for the owner's pop conflict path.
// Only one FAA can observe 0 per ownership epoch; losers spin (the
// owner MUST eventually win — a thief holds the lock only for one
// bounded memcpy) unless stop fires.
func (d *Deque) LockOwner(stop func() bool) bool {
	for {
		if d.hdr.lock.Add(1) == 1 {
			return true
		}
		if stop != nil && stop() {
			return false
		}
		runtime.Gosched()
	}
}

// Size returns a racy snapshot of the entry count (quiescence checks
// and stats only).
func (d *Deque) Size() uint64 {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b <= t {
		return 0
	}
	return b - t
}
