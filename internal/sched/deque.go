package sched

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"unsafe"

	"uniaddr/internal/mem"
)

// Deque is the THE-protocol work-stealing deque (paper Fig. 6) built
// from real sync/atomic operations — the concurrent twin of the
// simulator's core.Deque, which lays the same protocol out in simulated
// pinned memory and charges RDMA verbs for each step.
//
// Protocol, identical to the simulator's:
//
//   - The owner pushes and pops at bottom without the lock (fast path).
//   - A thief locks with fetch-add(+1) on the lock word: acquired iff
//     the previous value was 0. Failed lockers do NOT retry and never
//     write; the holder releases by storing 0, which absorbs every
//     failed increment — exactly the semantics of the paper's
//     RDMA-FAA-based mutex, where only one FAA can return 0 per
//     ownership epoch.
//   - A thief claims the top entry by writing top = t+1 BEFORE
//     re-reading bottom (the THE order). If the owner's pop decremented
//     bottom past the claim, the thief retreats (restores top) and
//     reports the deque empty.
//   - The owner's pop conflict path (bottom crossed top) restores
//     bottom, takes the lock, and re-checks — serialising against any
//     in-flight claim.
//
// Memory ordering: Go's sync/atomic operations are sequentially
// consistent, which subsumes every ordering the protocol needs. The
// load-bearing happens-before edges are:
//
//  1. push(entry slots) → store(bottom)      : a thief that observes
//     bottom > t observes the entry bytes (slots use atomic stores, so
//     the race detector sees the edge too).
//  2. thief's frame-bytes copy → store(lock=0): the steal's cross-arena
//     memcpy completes before the lock release.
//  3. owner's lock acquire → frame reuse     : the owner only reuses a
//     frame's arena range after a pop that, if it conflicted with a
//     claim, went through the lock — so edge 2 makes the thief's copy
//     visible (and finished) before the owner can overwrite the bytes.
//     The lock-free pop fast path keeps entries that no thief can have
//     claimed (bottom-1 >= top was re-checked after the decrement).
//
// These edges hold across processes too: on the dist backend the words
// live in an mmap'd MAP_SHARED segment and the same hardware fences
// order the same physical memory.
//
// ABA on the ring: entry slots are indexed mod cap, so top could in
// principle wrap cap pushes during one claim window. The claim window
// is bounded (a thief holds the lock for one memcpy) while cap pushes
// require cap task spawns on the owner; with the default cap of 8192
// this cannot occur in practice, matching the simulator's stance.
//
// Batched steals (StealBeginBatch) claim up to maxClaim entries under
// ONE lock acquisition and ONE claim/verify exchange — the steal-half
// amortisation. The ring therefore reserves maxClaim slots instead of
// one (see Push); maxClaim is derived from the capacity alone
// (maxClaimFor), so every process view of a shared region computes the
// same bound without coordination.
//
// Layout: the flat region starts with four words, each alone on a
// 64-byte line (lock, top, bottom, occupancy), followed by cap 16-byte
// entry slots. A Deque value is one process's *view* of such a region;
// any number of views may attach to the same region.
type Deque struct {
	hdr      *dequeHdr
	slots    []dqSlot
	cap      uint64
	maxClaim uint64
}

// dequeHdr is the shared word block at the start of a deque region.
// occupancy is the published steal hint: an approximate entry count a
// prospective thief can read with ONE load (top and bottom live on
// separate cache lines by design, so the exact Size() costs two). It is
// refreshed by the owner at every push/pop and by a thief at
// commit/abort while it still holds the lock. Both sides use plain
// last-writer-wins stores, so the value can go stale in either
// direction; it is ADVISORY ONLY — no correctness decision reads it.
type dequeHdr struct {
	lock      atomic.Uint64
	_         [56]byte
	top       atomic.Uint64
	_         [56]byte
	bottom    atomic.Uint64
	_         [56]byte
	occupancy atomic.Uint64
	_         [56]byte
}

// dqSlot is one deque entry. Fields are atomics so the entry publish
// (push before bottom-store) and the thief's read (after bottom-load)
// form explicit happens-before edges under the race detector.
type dqSlot struct {
	base atomic.Uint64
	size atomic.Uint64
}

const dequeHdrBytes = uint64(unsafe.Sizeof(dequeHdr{}))

// DequeBytes returns the region footprint of a deque with the given
// entry capacity.
func DequeBytes(capacity uint64) uint64 {
	return dequeHdrBytes + capacity*uint64(unsafe.Sizeof(dqSlot{}))
}

// Entry references a runnable thread: the base VA and byte size of its
// stack in the owner's arena.
type Entry struct {
	FrameBase mem.VA
	FrameSize uint64
}

// StealOutcome mirrors core.StealOutcome for the concurrent deque.
type StealOutcome uint8

const (
	// StealOK: the top entry is claimed and the victim's lock is HELD.
	// The thief must copy the frame bytes and then call StealCommit
	// (or StealAbort to hand the entry back).
	StealOK StealOutcome = iota
	// StealEmpty: nothing to steal (observed before locking).
	StealEmpty
	// StealLockBusy: another thief (or the owner's conflict path) holds
	// the lock; per THE, the thief backs off rather than spinning.
	StealLockBusy
	// StealEmptyLocked: the lock was taken but the re-read found the
	// deque drained; the claim was retreated and the lock released.
	StealEmptyLocked
	// StealFaulted: an injected fault exhausted the resilience budget
	// (retries or blacklist) — see Resilience.StealFrom. Any claimed
	// entry has been handed back; the victim's lock is released.
	StealFaulted
)

func (o StealOutcome) String() string {
	switch o {
	case StealOK:
		return "ok"
	case StealEmpty:
		return "empty"
	case StealLockBusy:
		return "lock-busy"
	case StealEmptyLocked:
		return "empty-locked"
	case StealFaulted:
		return "faulted"
	default:
		return fmt.Sprintf("StealOutcome(%d)", uint8(o))
	}
}

// maxClaimFor bounds how many entries one batched claim may take from a
// deque of the given capacity: a quarter of the ring, clamped to
// [1, 64]. A quarter keeps the reservation (see Push) small relative to
// the usable ring; 64 caps the bytes a thief moves while holding the
// victim's lock. Deterministic in capacity alone so independent process
// views of one shared region agree without coordination.
func maxClaimFor(capacity uint64) uint64 {
	m := capacity / 4
	if m < 1 {
		m = 1
	}
	if m > 64 {
		m = 64
	}
	return m
}

// NewDequeAt attaches a deque view to a flat region (zeroed at first
// attach; attaching to a live region yields a coherent second view,
// which is how dist thieves address a victim's deque). The region must
// be 8-byte aligned and hold DequeBytes(capacity). The deque holds up
// to capacity-maxClaimFor(capacity) entries (ring slots are reserved
// for an in-flight batched claim; see Push). capacity must be a power
// of two >= 2.
func NewDequeAt(region []byte, capacity uint64) (*Deque, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("sched: deque capacity %d not a power of two >= 2", capacity)
	}
	if err := regionCheck(region, DequeBytes(capacity), "deque"); err != nil {
		return nil, err
	}
	d := &Deque{
		hdr:      (*dequeHdr)(unsafe.Pointer(&region[0])),
		slots:    unsafe.Slice((*dqSlot)(unsafe.Pointer(&region[dequeHdrBytes])), capacity),
		cap:      capacity,
		maxClaim: maxClaimFor(capacity),
	}
	return d, nil
}

// NewDeque allocates a private heap-backed deque (the single-process
// backend's constructor). It panics on a bad capacity, preserving the
// contract rt's tests exercise.
func NewDeque(capacity uint64) *Deque {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		panic(fmt.Sprintf("sched: deque capacity %d not a power of two >= 2", capacity))
	}
	d, err := NewDequeAt(heapRegion(DequeBytes(capacity)), capacity)
	if err != nil {
		panic(err)
	}
	return d
}

// syncOccupancy republishes the current Size as the steal hint.
func (d *Deque) syncOccupancy() { d.hdr.occupancy.Store(d.Size()) }

// Occupancy returns the advisory entry-count hint (single load).
func (d *Deque) Occupancy() uint64 { return d.hdr.occupancy.Load() }

func (d *Deque) entryAt(i uint64) Entry {
	s := &d.slots[i&(d.cap-1)]
	return Entry{FrameBase: mem.VA(s.base.Load()), FrameSize: s.size.Load()}
}

// Push publishes an entry at bottom (owner only, lock-free). maxClaim
// slots of the ring are reserved: a thief's in-flight claim inflates
// top by up to maxClaim until it commits or aborts, so the owner's
// occupancy read b-t can undercount by that much — pushing into the
// slack would overwrite either slots the thief is still copying or
// entries an abort is about to hand back. At most one claim is ever in
// flight (the lock), so maxClaim reserved slots restore the bound.
func (d *Deque) Push(e Entry) error {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b-t >= d.cap-d.maxClaim {
		return fmt.Errorf("sched: deque overflow (cap %d)", d.cap)
	}
	s := &d.slots[b&(d.cap-1)]
	s.base.Store(uint64(e.FrameBase))
	s.size.Store(e.FrameSize)
	d.hdr.bottom.Store(b + 1)
	// Hint refresh from the locals already in hand (an in-flight claim
	// can make this stale-high by one — advisory, so fine).
	d.hdr.occupancy.Store(b + 1 - t)
	return nil
}

// Pop takes the bottom entry (owner only; lock-free unless it collides
// with a thief's claim on the last entry). stop, if non-nil, aborts the
// conflict-path lock spin — used so a worker wedged behind a crashed
// lock holder can still observe shutdown; a stop-aborted Pop reports
// empty.
func (d *Deque) Pop(stop func() bool) (Entry, bool) {
	b := d.hdr.bottom.Load()
	t := d.hdr.top.Load()
	if b <= t {
		// Empty. No claim can be outstanding on entries below top, so
		// this path needs no lock (edge 3 note in the type comment).
		// Converge the hint toward the truth while we are here: a stale
		// non-zero hint would keep attracting thieves to a dry deque.
		d.hdr.occupancy.Store(0)
		return Entry{}, false
	}
	b--
	d.hdr.bottom.Store(b)
	if t = d.hdr.top.Load(); t <= b {
		// No conflict: the entry at b is ours, and no thief can claim
		// it any more (a claim writes top = b+1 > b only after reading
		// bottom > b, which is no longer true).
		d.hdr.occupancy.Store(b - t)
		return d.entryAt(b), true
	}
	// A thief's claim crossed our decrement. Restore bottom and settle
	// the race under the lock (THE slow path).
	d.hdr.bottom.Store(b + 1)
	if !d.LockOwner(stop) {
		return Entry{}, false
	}
	b = d.hdr.bottom.Load() - 1
	t = d.hdr.top.Load()
	if t > b {
		// The thief won: the last entry is gone.
		d.syncOccupancy()
		d.Unlock()
		return Entry{}, false
	}
	d.hdr.bottom.Store(b)
	e := d.entryAt(b)
	d.syncOccupancy()
	d.Unlock()
	return e, true
}

// StealBegin claims the victim's top entry (thief side, one-sided in
// the RDMA original: FAA-lock, READ top, WRITE top+1, READ bottom). On
// StealOK the victim's lock is held and the caller owns the claimed
// entry; it must copy the frame bytes out of the victim's arena and
// then StealCommit. The lock being held across the copy is what makes
// the copy safe: the victim cannot recycle the frame's arena bytes
// without first winning this lock (Pop's conflict path).
func (d *Deque) StealBegin() (Entry, StealOutcome) {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b <= t {
		return Entry{}, StealEmpty
	}
	if d.hdr.lock.Add(1) != 1 {
		// Someone else holds the lock; do not retry, do not unlock
		// (the holder's release absorbs our increment).
		return Entry{}, StealLockBusy
	}
	t = d.hdr.top.Load()
	d.hdr.top.Store(t + 1) // claim BEFORE re-reading bottom (THE order)
	b = d.hdr.bottom.Load()
	if b < t+1 {
		// Drained while we were locking; retreat the claim.
		d.hdr.top.Store(t)
		d.Unlock()
		return Entry{}, StealEmptyLocked
	}
	return d.entryAt(t), StealOK
}

// StealCommit releases the victim's lock after the frame copy. The
// seq-cst store orders the copy before the release (edge 2). The hint
// refresh happens while the lock is still held, so the committed
// claim's effect on top is already reflected.
func (d *Deque) StealCommit() {
	d.syncOccupancy()
	d.Unlock()
}

// StealAbort hands a claimed entry back (top = t) and releases the
// lock — the THE abort the simulator's fault-injection tests exercise.
func (d *Deque) StealAbort() {
	d.hdr.top.Store(d.hdr.top.Load() - 1)
	d.syncOccupancy()
	d.Unlock()
}

// MaxClaim returns the upper bound on a batched claim (and the ring
// slack Push reserves for one). Callers size their steal buffers with
// it.
func (d *Deque) MaxClaim() uint64 { return d.maxClaim }

// StealBeginBatch is the steal-half generalisation of StealBegin: one
// FAA lock acquisition, one claim write, one bottom verify — and up to
// ⌈size/2⌉ entries claimed instead of one. On StealOK it fills
// buf[0..k) with the claimed entries in deque order (buf[0] is the
// oldest, at the victim's top) and returns k with the victim's lock
// HELD; the caller copies the frames and then calls StealCommit, or
// StealAbortBatch(k) to hand everything back. k is bounded by len(buf)
// and MaxClaim (the ring reservation that keeps the owner from
// overwriting claimed slots).
//
// Sizing: the target ⌈n/2⌉ is computed from the bottom value read
// BEFORE the claim write, so the batch can never extend into entries
// the owner pushes after the claim; the post-claim re-read of bottom
// (the THE verify) then only ever SHRINKS the batch, when owner pops
// raced the claim. If the re-read shows the deque fully drained the
// claim retreats exactly as in StealBegin.
//
// Why one claim/verify exchange suffices for k entries: the claim
// write top = t+kTry publishes intent for the whole range before
// bottom is re-read, so the owner's pop conflict path (which fires
// when its bottom decrement crosses top) serialises against the WHOLE
// batch through the same lock as a single steal — entries [t, t+k)
// are exclusively the thief's once bottom >= t+k was observed, because
// any owner pop that could touch them must first win the lock the
// thief holds. A transiently over-advanced top (kTry > final k) only
// makes a concurrent owner pop enter its conflict path spuriously;
// it parks on the lock and re-checks after the thief settles top.
//
// Contiguity: entries resident on one deque always form an adjacent
// descending-VA chain (each frame is bump-allocated immediately below
// its pusher's previous one, and steals only peel frames off the top
// of the chain), so the claimed batch is ONE contiguous byte range —
// buf[k-1].FrameBase up to buf[0].FrameBase+buf[0].FrameSize — and the
// caller can move it with a single Install and a single memcpy. The
// scan below verifies the chain defensively and shrinks k to the
// contiguous prefix rather than trusting the invariant blindly.
func (d *Deque) StealBeginBatch(buf []Entry) (int, StealOutcome) {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b <= t || len(buf) == 0 {
		return 0, StealEmpty
	}
	if d.hdr.lock.Add(1) != 1 {
		return 0, StealLockBusy
	}
	t = d.hdr.top.Load()
	// Target half of the PRE-claim size (rounded up); b may predate the
	// lock, so guard the t reload having passed it.
	var kTry uint64 = 1
	if b > t {
		kTry = (b - t + 1) / 2
	}
	if kTry > uint64(len(buf)) {
		kTry = uint64(len(buf))
	}
	if kTry > d.maxClaim {
		kTry = d.maxClaim
	}
	d.hdr.top.Store(t + kTry) // claim BEFORE re-reading bottom (THE order)
	b = d.hdr.bottom.Load()
	if b <= t {
		// Drained while we were locking; retreat the whole claim.
		d.hdr.top.Store(t)
		d.Unlock()
		return 0, StealEmptyLocked
	}
	k := kTry
	if avail := b - t; k > avail {
		k = avail
	}
	// Fill buf with the contiguous prefix of the claimed range.
	buf[0] = d.entryAt(t)
	n := uint64(1)
	for ; n < k; n++ {
		e := d.entryAt(t + n)
		if prev := buf[n-1]; e.FrameBase+mem.VA(e.FrameSize) != prev.FrameBase {
			break
		}
		buf[n] = e
	}
	d.hdr.top.Store(t + n) // settle: hand back anything over-claimed
	return int(n), StealOK
}

// StealAbortBatch hands back all n entries of a batched claim and
// releases the lock — StealAbort generalised to the batch width.
func (d *Deque) StealAbortBatch(n int) {
	d.hdr.top.Store(d.hdr.top.Load() - uint64(n))
	d.syncOccupancy()
	d.Unlock()
}

// Unlock releases the FAA lock (holder only).
func (d *Deque) Unlock() { d.hdr.lock.Store(0) }

// LockOwner spins on the FAA lock for the owner's pop conflict path.
// Only one FAA can observe 0 per ownership epoch; losers spin (the
// owner MUST eventually win — a thief holds the lock only for one
// bounded memcpy) unless stop fires.
func (d *Deque) LockOwner(stop func() bool) bool {
	for {
		if d.hdr.lock.Add(1) == 1 {
			return true
		}
		if stop != nil && stop() {
			return false
		}
		runtime.Gosched()
	}
}

// Size returns a racy snapshot of the entry count (quiescence checks
// and stats only).
func (d *Deque) Size() uint64 {
	t := d.hdr.top.Load()
	b := d.hdr.bottom.Load()
	if b <= t {
		return 0
	}
	return b - t
}
