package sched

import (
	"testing"
	"unsafe"
)

func TestJobSlotLayoutIsStable(t *testing.T) {
	// Like Record, JobSlot is a cross-process ABI: two cache lines per
	// slot so adjacent jobs never false-share, one line per counter
	// pair.
	if got := unsafe.Sizeof(JobSlot{}); got != 128 {
		t.Fatalf("JobSlot is %d bytes, want 128", got)
	}
	if got := unsafe.Sizeof(JobCount{}); got != 64 {
		t.Fatalf("JobCount is %d bytes, want 64", got)
	}
}

func TestJobTableAttachAndTags(t *testing.T) {
	region := heapRegion(JobTableBytes(4))
	jt, err := NewJobTableAt(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	if jt.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", jt.Cap())
	}
	// Fresh slots are JobFree; a second view over the same region sees
	// state stored through the first.
	jt.Get(2).State.Store(JobRunning)
	jt2, err := NewJobTableAt(region, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := jt2.Get(2).State.Load(); got != JobRunning {
		t.Fatalf("second view sees state %d, want JobRunning", got)
	}
	if jt2.Get(0).State.Load() != JobFree {
		t.Fatal("fresh slot not JobFree")
	}
	if JobTag(0) == 0 {
		t.Fatal("JobTag(0) must be nonzero (0 means untagged)")
	}
	if JobTag(3) != 4 {
		t.Fatalf("JobTag(3) = %d, want 4", JobTag(3))
	}
	if _, err := NewJobTableAt(region[:10], 4); err == nil {
		t.Fatal("undersized region accepted")
	}
}

func TestJobCountersResetAndSum(t *testing.T) {
	jc := NewJobCounters(2)
	jc.Get(1).Spawns.Add(3)
	jc.Get(1).Executed.Add(4)
	jc.Get(0).Spawns.Add(7)
	if got := jc.Get(1).Spawns.Load(); got != 3 {
		t.Fatalf("slot 1 spawns %d, want 3", got)
	}
	jc.Reset(1)
	if jc.Get(1).Spawns.Load() != 0 || jc.Get(1).Executed.Load() != 0 {
		t.Fatal("Reset did not zero slot 1")
	}
	if got := jc.Get(0).Spawns.Load(); got != 7 {
		t.Fatalf("Reset disturbed slot 0: spawns %d, want 7", got)
	}
}

// TestSweepJobReclaimsExactlyTaggedRecords: sweep must free records
// carrying the tag, skip already-released ones, and never double-free
// when two sweepers race.
func TestSweepJobReclaimsExactlyTaggedRecords(t *testing.T) {
	tb := NewTable(8)
	var idxs []uint32
	for i := 0; i < 6; i++ {
		idx, err := tb.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		idxs = append(idxs, idx)
	}
	// Tag four records as job slot 1, two as job slot 2.
	for _, i := range idxs[:4] {
		tb.Get(i).Job.Store(JobTag(1))
	}
	for _, i := range idxs[4:] {
		tb.Get(i).Job.Store(JobTag(2))
	}
	// A normal release clears the tag, so the sweep skips it.
	tb.Release(idxs[0])
	if got := tb.Get(idxs[0]).Job.Load(); got != 0 {
		t.Fatalf("Release left tag %d", got)
	}
	if n := tb.SweepJob(JobTag(1)); n != 3 {
		t.Fatalf("sweep reclaimed %d records, want 3", n)
	}
	if n := tb.SweepJob(JobTag(1)); n != 0 {
		t.Fatalf("second sweep reclaimed %d records, want 0", n)
	}
	// Job 2's records are untouched.
	for _, i := range idxs[4:] {
		if got := tb.Get(i).Job.Load(); got != JobTag(2) {
			t.Fatalf("sweep disturbed other job's record %d: tag %d", i, got)
		}
	}
	if live := tb.Live(); live != 2 {
		t.Fatalf("Live() = %d after sweep, want 2", live)
	}
}
