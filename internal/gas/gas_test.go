package gas

import (
	"bytes"
	"testing"
	"testing/quick"

	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

func rig(t *testing.T, n int) (*sim.Engine, []*Heap) {
	t.Helper()
	eng := sim.NewEngine()
	params := rdma.DefaultParams()
	params.HardwareFAA = true
	fab := rdma.NewFabric(eng, params)
	var heaps []*Heap
	for i := 0; i < n; i++ {
		s := mem.NewAddressSpace("p")
		ep := fab.AddEndpoint(s)
		h, err := NewHeap(s, ep, DefaultBase, 1<<20, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		heaps = append(heaps, h)
	}
	return eng, heaps
}

func TestRefRoundTrip(t *testing.T) {
	f := func(rank uint16, va48 uint64) bool {
		va := mem.VA(va48 & (1<<48 - 1))
		r := MakeRef(int(rank), va)
		return !r.Nil() && r.Rank() == int(rank) && r.VA() == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if !Ref(0).Nil() {
		t.Fatal("zero ref not nil")
	}
}

func TestRefAdd(t *testing.T) {
	r := MakeRef(3, 0x1000)
	r2 := r.Add(0x20)
	if r2.Rank() != 3 || r2.VA() != 0x1020 {
		t.Fatalf("Add: %v", r2)
	}
}

func TestLocalAllocGetPut(t *testing.T) {
	eng, heaps := rig(t, 1)
	eng.Spawn("w", func(p *sim.Proc) {
		h := heaps[0]
		r := h.MustAlloc(p, 64)
		if r.Rank() != 0 {
			t.Errorf("local alloc on rank %d", r.Rank())
		}
		in := []byte("global heap payload")
		h.Put(p, r, in)
		out := make([]byte, len(in))
		h.Get(p, r, out)
		if !bytes.Equal(in, out) {
			t.Errorf("round trip: %q", out)
		}
		if err := h.Free(r); err != nil {
			t.Error(err)
		}
		if h.Live() != 0 {
			t.Errorf("leak: %d", h.Live())
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteGetPut(t *testing.T) {
	eng, heaps := rig(t, 2)
	eng.Spawn("owner", func(p *sim.Proc) {
		r := heaps[0].MustAlloc(p, 8)
		heaps[0].PutU64(p, r, 12345)
		// Publish by construction: the other proc derives the same ref.
		p.Advance(1_000_000)
	})
	eng.Spawn("peer", func(p *sim.Proc) {
		p.Advance(10_000)               // after the owner's write
		r := MakeRef(0, DefaultBase+16) // first alloc block (16-aligned)
		got := heaps[1].GetU64(p, r)
		_ = got
		// The exact VA of the first allocation is allocator-internal;
		// verify remote access via an explicit staged address instead.
		heaps[0].StageLocal(DefaultBase+1024, []byte{9, 8, 7, 6, 5, 4, 3, 2})
		buf := make([]byte, 8)
		start := p.Now()
		heaps[1].Get(p, MakeRef(0, DefaultBase+1024), buf)
		if p.Now() == start {
			t.Error("remote get took no simulated time")
		}
		if !bytes.Equal(buf, []byte{9, 8, 7, 6, 5, 4, 3, 2}) {
			t.Errorf("remote get: %v", buf)
		}
		heaps[1].PutU64(p, MakeRef(0, DefaultBase+2048), 777)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// The remote put must have landed in heap 0's space.
	var b [8]byte
	if _, err := heapSpace(heaps[0]).Read(DefaultBase+2048, b[:]); err != nil {
		t.Fatal(err)
	}
	if b[0] != 9 && b[0] != 0x09 {
		_ = b
	}
	v := uint64(b[0]) | uint64(b[1])<<8
	if v != 777 {
		t.Fatalf("remote put lost: %d", v)
	}
}

func heapSpace(h *Heap) *mem.AddressSpace { return h.space }

func TestRemoteCostsMoreThanLocal(t *testing.T) {
	eng, heaps := rig(t, 2)
	var localCost, remoteCost uint64
	eng.Spawn("w", func(p *sim.Proc) {
		heaps[0].StageLocal(DefaultBase+64, make([]byte, 256))
		heaps[1].StageLocal(DefaultBase+64, make([]byte, 256))
		buf := make([]byte, 256)
		start := p.Now()
		heaps[0].Get(p, MakeRef(0, DefaultBase+64), buf)
		localCost = p.Now() - start
		start = p.Now()
		heaps[0].Get(p, MakeRef(1, DefaultBase+64), buf)
		remoteCost = p.Now() - start
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if remoteCost <= localCost {
		t.Fatalf("remote get (%d) not dearer than local (%d)", remoteCost, localCost)
	}
}

func TestFetchAddAtomicCounter(t *testing.T) {
	eng, heaps := rig(t, 3)
	ctr := MakeRef(0, DefaultBase+512)
	for i := 1; i < 3; i++ {
		i := i
		eng.Spawn("adder", func(p *sim.Proc) {
			for j := 0; j < 5; j++ {
				heaps[i].FetchAdd(p, ctr, 1)
				p.Advance(uint64(i * 777))
			}
		})
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	heapSpace(heaps[0]).Read(DefaultBase+512, b[:])
	if v := uint64(b[0]); v != 10 {
		t.Fatalf("counter = %d, want 10", v)
	}
}

func TestFreeOnlyByOwner(t *testing.T) {
	eng, heaps := rig(t, 2)
	eng.Spawn("w", func(p *sim.Proc) {
		r := heaps[0].MustAlloc(p, 8)
		if err := heaps[1].Free(r); err == nil {
			t.Error("non-owner free accepted")
		}
		if err := heaps[0].Free(r); err != nil {
			t.Error(err)
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	fab := rdma.NewFabric(eng, rdma.DefaultParams())
	s := mem.NewAddressSpace("p")
	ep := fab.AddEndpoint(s)
	h, err := NewHeap(s, ep, DefaultBase, 128, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	eng.Spawn("w", func(p *sim.Proc) {
		if _, err := h.Alloc(p, 256); err == nil {
			t.Error("oversized alloc accepted")
		}
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilRefPanics(t *testing.T) {
	eng, heaps := rig(t, 1)
	eng.Spawn("w", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("nil deref did not panic")
			}
			panic("rethrow") // surface through the engine
		}()
		heaps[0].Get(p, 0, make([]byte, 4))
	})
	if _, err := eng.Run(); err == nil {
		t.Fatal("expected engine error")
	}
}
