// Package gas is the global address space library the paper's memory
// model assumes (§5.1): stacks may not be the target of cross-thread
// pointers, so "objects potentially referenced by multiple threads are
// always referenced by a global pointer. To dereference a global
// pointer, a function must be called, which can trigger data transfer."
//
// Each process contributes a pinned heap segment; a Ref names (rank,
// address) and Get/Put move bytes through the one-sided fabric exactly
// like the scheduler's stack transfers. Refs are plain integers, so
// they live happily in task frames and migrate with the thread —
// unlike raw pointers, they stay meaningful on every process.
package gas

import (
	"fmt"

	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// DefaultBase is the base VA of the global-heap segment in every
// process.
const DefaultBase mem.VA = 0x5000_0000_0000

// Ref is a global reference: 16 bits of rank+1, 48 bits of address.
// The zero Ref is nil.
type Ref uint64

// MakeRef packs (rank, va).
func MakeRef(rank int, va mem.VA) Ref {
	if uint64(va) >= 1<<48 {
		panic(fmt.Sprintf("gas: VA %#x exceeds 48 bits", va))
	}
	return Ref(uint64(rank+1)<<48 | uint64(va))
}

// Nil reports whether r is the nil reference.
func (r Ref) Nil() bool { return r == 0 }

// Rank returns the owning process.
func (r Ref) Rank() int { return int(r>>48) - 1 }

// VA returns the address within the owner's segment.
func (r Ref) VA() mem.VA { return mem.VA(r & (1<<48 - 1)) }

// Add offsets the reference by n bytes (within the same segment).
func (r Ref) Add(n uint64) Ref { return MakeRef(r.Rank(), r.VA()+mem.VA(n)) }

func (r Ref) String() string {
	if r.Nil() {
		return "gas<nil>"
	}
	return fmt.Sprintf("gas<rank %d va %#x>", r.Rank(), r.VA())
}

// Costs are the CPU-side costs of local heap operations, in cycles.
type Costs struct {
	Alloc       uint64
	LocalGet    uint64 // fixed part; bulk data adds CopyPerByte
	LocalPut    uint64
	CopyPerByte float64
}

// DefaultCosts returns costs in line with the SPARC profile.
func DefaultCosts() Costs {
	return Costs{Alloc: 120, LocalGet: 40, LocalPut: 40, CopyPerByte: 0.25}
}

// Heap is one process's view of the global heap: its own segment plus
// one-sided access to every other segment.
type Heap struct {
	rank  int
	space *mem.AddressSpace
	ep    *rdma.Endpoint
	alloc *mem.Allocator
	costs Costs
	base  mem.VA
	size  uint64
}

// NewHeap reserves and pins the segment [base, base+size) in space.
func NewHeap(space *mem.AddressSpace, ep *rdma.Endpoint, base mem.VA, size uint64, costs Costs) (*Heap, error) {
	reg, err := space.Reserve("gasheap", base, size, true)
	if err != nil {
		return nil, err
	}
	return &Heap{
		rank:  ep.Rank(),
		space: space,
		ep:    ep,
		alloc: mem.NewAllocator(reg),
		costs: costs,
		base:  base,
		size:  size,
	}, nil
}

// Rank returns the owning process rank.
func (h *Heap) Rank() int { return h.rank }

// Base returns the segment base (identical across processes).
func (h *Heap) Base() mem.VA { return h.base }

// Size returns the segment size.
func (h *Heap) Size() uint64 { return h.size }

// Used returns locally allocated bytes.
func (h *Heap) Used() uint64 { return h.alloc.Used() }

// Live returns the number of live local allocations.
func (h *Heap) Live() int { return h.alloc.Live() }

// Alloc allocates n bytes on this process's segment. Allocation is
// always local (like malloc); share the Ref to publish the object.
func (h *Heap) Alloc(p *sim.Proc, n uint64) (Ref, error) {
	if p != nil {
		p.Advance(h.costs.Alloc)
	}
	va, err := h.alloc.Alloc(n)
	if err != nil {
		return 0, err
	}
	return MakeRef(h.rank, va), nil
}

// MustAlloc is Alloc that panics on exhaustion.
func (h *Heap) MustAlloc(p *sim.Proc, n uint64) Ref {
	r, err := h.Alloc(p, n)
	if err != nil {
		panic(err)
	}
	return r
}

// Free releases a local allocation. Only the owning process may free.
func (h *Heap) Free(r Ref) error {
	if r.Rank() != h.rank {
		return fmt.Errorf("gas: rank %d cannot free %v", h.rank, r)
	}
	h.alloc.Free(r.VA())
	return nil
}

// Get dereferences r into buf: a cheap local copy when r lives here, a
// one-sided RDMA READ otherwise — the "function call that can trigger
// data transfer".
func (h *Heap) Get(p *sim.Proc, r Ref, buf []byte) {
	if r.Nil() {
		panic("gas: Get through nil reference")
	}
	if r.Rank() == h.rank {
		p.Advance(h.costs.LocalGet + uint64(float64(len(buf))*h.costs.CopyPerByte))
		if _, err := h.space.Read(r.VA(), buf); err != nil {
			panic(err)
		}
		return
	}
	h.ep.Read(p, r.Rank(), r.VA(), buf)
}

// Put stores buf at r (local copy or one-sided RDMA WRITE).
func (h *Heap) Put(p *sim.Proc, r Ref, buf []byte) {
	if r.Nil() {
		panic("gas: Put through nil reference")
	}
	if r.Rank() == h.rank {
		p.Advance(h.costs.LocalPut + uint64(float64(len(buf))*h.costs.CopyPerByte))
		if _, err := h.space.Write(r.VA(), buf); err != nil {
			panic(err)
		}
		return
	}
	h.ep.Write(p, r.Rank(), r.VA(), buf)
}

// GetU64 dereferences an 8-byte word.
func (h *Heap) GetU64(p *sim.Proc, r Ref) uint64 {
	var b [8]byte
	h.Get(p, r, b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// PutU64 stores an 8-byte word.
func (h *Heap) PutU64(p *sim.Proc, r Ref, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	h.Put(p, r, b[:])
}

// FetchAdd atomically adds delta to the word at r and returns the old
// value (local atomic or remote FAA via the fabric, including the
// software communication-server path).
func (h *Heap) FetchAdd(p *sim.Proc, r Ref, delta uint64) uint64 {
	if r.Nil() {
		panic("gas: FetchAdd through nil reference")
	}
	return h.ep.FetchAdd(p, r.Rank(), r.VA(), delta)
}

// StageLocal writes bytes into this process's segment at va without
// simulated cost — input staging before a run (host-side data load).
func (h *Heap) StageLocal(va mem.VA, data []byte) error {
	_, err := h.space.Write(va, data)
	return err
}
