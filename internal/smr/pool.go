package smr

import (
	"runtime"
	"sync"
	"sync/atomic"

	"uniaddr/internal/sim"
)

// task is one queued unit of work.
type task struct {
	fn   func(w *Worker)
	done atomic.Bool
}

// Pool is a work-stealing thread pool. Create with NewPool, submit a
// root computation with Run, and Close when finished.
type Pool struct {
	workers []*Worker
	wg      sync.WaitGroup
	closed  atomic.Bool

	// queued counts tasks sitting in some queue (not yet picked up);
	// used only for idle parking.
	queued atomic.Int64
	parkMu sync.Mutex
	parkCv *sync.Cond

	// injector receives tasks submitted from outside the pool (Run):
	// Chase–Lev pushes are owner-only, so external submissions cannot
	// touch a worker's deque. injCount mirrors len(injector) for a
	// lock-free emptiness probe.
	injMu    sync.Mutex
	injector []*task
	injCount atomic.Int64

	// Stats
	spawns atomic.Uint64
	steals atomic.Uint64
}

// Worker is a pool thread's local handle; task functions receive the
// worker executing them and must use it for nested Spawn/Join.
type Worker struct {
	pool *Pool
	id   int
	dq   *deque
	// rng drives victim selection. sim.RNG (xorshift64*) rather than
	// math/rand so the victim sequence each worker draws is a pure
	// function of the pool seed — host scheduling still interleaves
	// workers nondeterministically, but the per-worker streams are
	// reproducible and dependency-free.
	rng sim.RNG
}

// ID returns the worker index.
func (w *Worker) ID() int { return w.id }

// Pool returns the owning pool.
func (w *Worker) Pool() *Pool { return w.pool }

// NewPool starts n workers (n <= 0 selects GOMAXPROCS).
func NewPool(n int) *Pool {
	return NewPoolSeeded(n, 1)
}

// NewPoolSeeded is NewPool with an explicit seed for the per-worker
// victim-selection RNG streams (worker i draws from seed+i).
func NewPoolSeeded(n int, seed uint64) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{}
	p.parkCv = sync.NewCond(&p.parkMu)
	for i := 0; i < n; i++ {
		w := &Worker{pool: p, id: i, dq: newDeque(), rng: sim.NewRNG(seed + uint64(i))}
		p.workers = append(p.workers, w)
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Spawns returns the total number of tasks spawned.
func (p *Pool) Spawns() uint64 { return p.spawns.Load() }

// Steals returns the number of successful steals.
func (p *Pool) Steals() uint64 { return p.steals.Load() }

// Close shuts the pool down. Outstanding tasks must have completed.
func (p *Pool) Close() {
	p.closed.Store(true)
	p.parkCv.Broadcast()
	p.wg.Wait()
}

func (w *Worker) loop() {
	defer w.pool.wg.Done()
	idleSpins := 0
	for !w.pool.closed.Load() {
		if t := w.findTask(); t != nil {
			w.runTask(t)
			idleSpins = 0
			continue
		}
		idleSpins++
		if idleSpins < 64 {
			runtime.Gosched()
			continue
		}
		w.pool.parkMu.Lock()
		for w.pool.queued.Load() == 0 && !w.pool.closed.Load() {
			w.pool.parkCv.Wait()
		}
		w.pool.parkMu.Unlock()
		idleSpins = 0
	}
}

// findTask obtains work: own deque, then the injector, then stealing.
// The queued counter is decremented exactly when a task is obtained.
func (w *Worker) findTask() *task {
	if t := w.dq.pop(); t != nil {
		w.pool.queued.Add(-1)
		return t
	}
	if t := w.pool.takeInjected(); t != nil {
		w.pool.queued.Add(-1)
		return t
	}
	if t := w.stealTask(); t != nil {
		w.pool.queued.Add(-1)
		return t
	}
	return nil
}

func (p *Pool) takeInjected() *task {
	if p.injCount.Load() == 0 {
		return nil
	}
	p.injMu.Lock()
	defer p.injMu.Unlock()
	if len(p.injector) == 0 {
		return nil
	}
	t := p.injector[len(p.injector)-1]
	p.injector = p.injector[:len(p.injector)-1]
	p.injCount.Add(-1)
	return t
}

func (w *Worker) stealTask() *task {
	n := len(w.pool.workers)
	if n < 2 {
		return nil
	}
	for i := 0; i < 2; i++ {
		v := w.pool.workers[w.rng.Intn(n)]
		if v != w {
			if t := v.dq.steal(); t != nil {
				w.pool.steals.Add(1)
				return t
			}
		}
	}
	for _, v := range w.pool.workers {
		if v != w {
			if t := v.dq.steal(); t != nil {
				w.pool.steals.Add(1)
				return t
			}
		}
	}
	return nil
}

func (w *Worker) runTask(t *task) {
	t.fn(w)
	t.done.Store(true)
}

// submitLocal queues t on w's own deque (owner push).
func (p *Pool) submitLocal(w *Worker, t *task) {
	p.spawns.Add(1)
	w.dq.push(t)
	p.queued.Add(1)
	p.parkCv.Broadcast()
}

// submitExternal queues t from outside the pool.
func (p *Pool) submitExternal(t *task) {
	p.spawns.Add(1)
	p.injMu.Lock()
	p.injector = append(p.injector, t)
	p.injCount.Add(1)
	p.injMu.Unlock()
	p.queued.Add(1)
	p.parkCv.Broadcast()
}

// Future holds the eventual result of a spawned computation.
type Future[T any] struct {
	t      *task
	result T
}

// Done reports whether the computation has finished.
func (f *Future[T]) Done() bool { return f.t.done.Load() }

// Spawn queues f for parallel execution and returns its future
// (help-first: the caller keeps running).
func Spawn[T any](w *Worker, f func(*Worker) T) *Future[T] {
	fut := &Future[T]{}
	fut.t = &task{}
	fut.t.fn = func(w2 *Worker) { fut.result = f(w2) }
	w.pool.submitLocal(w, fut.t)
	return fut
}

// Join returns the future's result, helping to run other tasks while it
// is outstanding (leapfrogging, Wagner & Calder [27]).
func Join[T any](w *Worker, fut *Future[T]) T {
	for !fut.t.done.Load() {
		if t := w.findTask(); t != nil {
			w.runTask(t)
		} else {
			runtime.Gosched()
		}
	}
	return fut.result
}

// Run executes f as the root task and blocks until it completes.
func Run[T any](p *Pool, f func(*Worker) T) T {
	if p.closed.Load() {
		panic("smr: Run on closed pool")
	}
	var result T
	ch := make(chan struct{})
	t := &task{}
	t.fn = func(w *Worker) {
		result = f(w)
		close(ch)
	}
	p.submitExternal(t)
	<-ch
	return result
}
