package smr

import (
	"sync"
	"sync/atomic"
	"testing"
)

func fibSMR(w *Worker, n int) int {
	if n < 2 {
		return n
	}
	if n < 12 { // serial cutoff keeps the test fast
		return fibSMR(w, n-1) + fibSMR(w, n-2)
	}
	f1 := Spawn(w, func(w *Worker) int { return fibSMR(w, n-1) })
	r2 := fibSMR(w, n-2)
	return Join(w, f1) + r2
}

func fibSeq(n int) int {
	if n < 2 {
		return n
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

func TestPoolFib(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	got := Run(p, func(w *Worker) int { return fibSMR(w, 22) })
	if want := fibSeq(22); got != want {
		t.Fatalf("fib(22) = %d, want %d", got, want)
	}
	if p.Spawns() == 0 {
		t.Fatal("no tasks spawned")
	}
}

func TestPoolReusableAcrossRuns(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	for i := 0; i < 5; i++ {
		got := Run(p, func(w *Worker) int { return fibSMR(w, 15) })
		if want := fibSeq(15); got != want {
			t.Fatalf("run %d: %d != %d", i, got, want)
		}
	}
}

func TestPoolSingleWorker(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	got := Run(p, func(w *Worker) int { return fibSMR(w, 18) })
	if want := fibSeq(18); got != want {
		t.Fatalf("fib(18) = %d, want %d", got, want)
	}
}

func TestSpawnManyIndependent(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var sum atomic.Int64
	Run(p, func(w *Worker) int {
		futs := make([]*Future[int], 100)
		for i := range futs {
			i := i
			futs[i] = Spawn(w, func(*Worker) int {
				sum.Add(int64(i))
				return i
			})
		}
		total := 0
		for _, f := range futs {
			total += Join(w, f)
		}
		return total
	})
	if sum.Load() != 4950 {
		t.Fatalf("side effects sum = %d, want 4950", sum.Load())
	}
}

func TestDequeOwnerLIFO(t *testing.T) {
	d := newDeque()
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.push(t1)
	d.push(t2)
	d.push(t3)
	if d.pop() != t3 || d.pop() != t2 || d.pop() != t1 {
		t.Fatal("owner pops not LIFO")
	}
	if d.pop() != nil {
		t.Fatal("pop from empty returned a task")
	}
}

func TestDequeStealFIFO(t *testing.T) {
	d := newDeque()
	t1, t2 := &task{}, &task{}
	d.push(t1)
	d.push(t2)
	if d.steal() != t1 || d.steal() != t2 {
		t.Fatal("steals not FIFO")
	}
	if d.steal() != nil {
		t.Fatal("steal from empty returned a task")
	}
}

func TestDequeGrowth(t *testing.T) {
	d := newDeque()
	tasks := make([]*task, dqInitCap*4)
	for i := range tasks {
		tasks[i] = &task{}
		d.push(tasks[i])
	}
	for i := len(tasks) - 1; i >= 0; i-- {
		if d.pop() != tasks[i] {
			t.Fatalf("lost task %d across growth", i)
		}
	}
}

// TestDequeConcurrentNoLossNoDup hammers one owner against several
// thieves and checks every task is taken exactly once.
func TestDequeConcurrentNoLossNoDup(t *testing.T) {
	const total = 20000
	const thieves = 3
	d := newDeque()
	taken := make([]atomic.Int32, total)
	ids := make(map[*task]int, total)
	tasks := make([]*task, total)
	for i := range tasks {
		tasks[i] = &task{}
		ids[tasks[i]] = i
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if tk := d.steal(); tk != nil {
					taken[ids[tk]].Add(1)
				}
			}
		}()
	}
	got := 0
	for i := 0; i < total; i++ {
		d.push(tasks[i])
		if i%3 == 0 {
			if tk := d.pop(); tk != nil {
				taken[ids[tk]].Add(1)
				got++
			}
		}
	}
	// Drain.
	for {
		tk := d.pop()
		if tk == nil {
			if d.size() == 0 {
				break
			}
			continue
		}
		taken[ids[tk]].Add(1)
	}
	stop.Store(true)
	wg.Wait()
	// Thieves may hold stolen tasks counted already; verify exactness.
	for i := range taken {
		if n := taken[i].Load(); n != 1 {
			t.Fatalf("task %d taken %d times", i, n)
		}
	}
	_ = got
}

func TestStealsHappenUnderLoad(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	Run(p, func(w *Worker) int { return fibSMR(w, 24) })
	if p.Steals() == 0 {
		t.Log("no steals observed (possible on 1 CPU, not an error)")
	}
}
