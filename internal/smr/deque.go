// Package smr is a real (non-simulated) shared-memory work-stealing
// runtime for fork-join parallelism in Go: per-worker Chase–Lev deques,
// random stealing, and help-first joins.
//
// It plays the role MassiveThreads and MIT Cilk play in the paper's
// Table 2: a native shared-memory baseline to compare task-management
// overheads against. Go cannot implement the paper's work-first
// (child-first) discipline for native code — that requires switching
// machine contexts — so smr uses the classic help-first strategy
// ("tied tasks", §2): a spawned task is queued, the parent continues,
// and a join helps by running queued tasks until its target completes.
package smr

import "sync/atomic"

// dqCap must be a power of two. Deques grow by chaining into a larger
// ring when full.
const dqInitCap = 64

type ring struct {
	buf  []atomic.Pointer[task]
	mask int64
}

func newRing(capacity int64) *ring {
	return &ring{buf: make([]atomic.Pointer[task], capacity), mask: capacity - 1}
}

func (r *ring) get(i int64) *task    { return r.buf[i&r.mask].Load() }
func (r *ring) put(i int64, t *task) { r.buf[i&r.mask].Store(t) }
func (r *ring) grow(b, t int64) *ring {
	nr := newRing((r.mask + 1) * 2)
	for i := t; i < b; i++ {
		nr.put(i, r.get(i))
	}
	return nr
}

// deque is a Chase–Lev work-stealing deque: the owner pushes and pops
// at the bottom without contention; thieves CAS the top.
type deque struct {
	top    atomic.Int64
	bottom atomic.Int64
	ring   atomic.Pointer[ring]
}

func newDeque() *deque {
	d := &deque{}
	d.ring.Store(newRing(dqInitCap))
	return d
}

// push appends a task at the bottom (owner only).
func (d *deque) push(t *task) {
	b := d.bottom.Load()
	top := d.top.Load()
	r := d.ring.Load()
	if b-top > r.mask {
		r = r.grow(b, top)
		d.ring.Store(r)
	}
	r.put(b, t)
	d.bottom.Store(b + 1)
}

// pop removes the most recently pushed task (owner only).
func (d *deque) pop() *task {
	b := d.bottom.Load() - 1
	r := d.ring.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore.
		d.bottom.Store(b + 1)
		return nil
	}
	task := r.get(b)
	if t != b {
		return task // more than one element; no race possible
	}
	// Last element: race with thieves via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return nil
	}
	return task
}

// steal removes the oldest task (any thread).
func (d *deque) steal() *task {
	for {
		t := d.top.Load()
		b := d.bottom.Load()
		if t >= b {
			return nil
		}
		r := d.ring.Load()
		task := r.get(t)
		if d.top.CompareAndSwap(t, t+1) {
			return task
		}
		// Lost a race; retry (bounded by deque size).
	}
}

// size is a racy estimate of the number of queued tasks.
func (d *deque) size() int64 {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return n
}
