package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestLaneSegments(t *testing.T) {
	r := NewRecorder(1)
	r.Switch(0, 10, Work)
	r.Switch(0, 50, Steal)
	r.Switch(0, 50, Steal) // no-op repeat
	r.Switch(0, 80, Idle)
	r.Finish(100)
	segs := r.Lanes()[0].Segments()
	want := []Segment{
		{0, 10, Idle},
		{10, 50, Work},
		{50, 80, Steal},
		{80, 100, Idle},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments: %+v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestUtilizationFractions(t *testing.T) {
	r := NewRecorder(2)
	r.Switch(0, 0, Work)
	r.Switch(1, 50, Work)
	r.Finish(100)
	u := r.Utilization()
	if u.Total != 200 {
		t.Fatalf("total %d", u.Total)
	}
	if got := u.Fraction(Work); got != 0.75 {
		t.Fatalf("work fraction %v", got)
	}
	if got := u.Fraction(Idle); got != 0.25 {
		t.Fatalf("idle fraction %v", got)
	}
	w0 := r.WorkerUtilization(0)
	if w0.Fraction(Work) != 1 {
		t.Fatalf("worker 0 work fraction %v", w0.Fraction(Work))
	}
}

func TestGanttRendering(t *testing.T) {
	r := NewRecorder(2)
	r.Switch(0, 0, Work)
	r.Switch(1, 0, Steal)
	r.Switch(1, 500, Idle)
	r.Finish(1000)
	var buf bytes.Buffer
	r.RenderGantt(&buf, 10)
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("gantt lines: %q", out)
	}
	if !strings.Contains(lines[1], "##########") {
		t.Fatalf("worker 0 row should be all work: %q", lines[1])
	}
	if !strings.Contains(lines[2], "sssss") || !strings.Contains(lines[2], ".....") {
		t.Fatalf("worker 1 row should be half steal, half idle: %q", lines[2])
	}
}

func TestGanttEmpty(t *testing.T) {
	r := NewRecorder(1)
	var buf bytes.Buffer
	r.RenderGantt(&buf, 10)
	if !strings.Contains(buf.String(), "empty") {
		t.Fatalf("empty trace rendering: %q", buf.String())
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Switch(0, 1, Work) // must not panic
	r.Finish(5)
}

func TestZeroLengthSwitchesDropped(t *testing.T) {
	r := NewRecorder(1)
	r.Switch(0, 0, Work)  // replaces the initial idle opening at t=0
	r.Switch(0, 0, Steal) // and again
	r.Finish(10)
	segs := r.Lanes()[0].Segments()
	if len(segs) != 1 || segs[0].State != Steal {
		t.Fatalf("segments: %+v", segs)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{Idle: "idle", Work: "work", Steal: "steal", Suspend: "suspend"} {
		if s.String() != want {
			t.Fatalf("%v", s)
		}
	}
	if State(99).String() == "" {
		t.Fatal("unknown state must format")
	}
}

func TestRenderUtilization(t *testing.T) {
	r := NewRecorder(1)
	r.Switch(0, 0, Work)
	r.Finish(10)
	var buf bytes.Buffer
	r.RenderUtilization(&buf)
	if !strings.Contains(buf.String(), "work 100.0%") {
		t.Fatalf("utilization render: %q", buf.String())
	}
}
