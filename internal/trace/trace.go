// Package trace records per-worker execution timelines of a simulated
// run: which of working / stealing / suspended / idle each worker was
// in at every virtual instant. The recorder costs nothing when
// disabled; when enabled it produces utilization breakdowns and a text
// Gantt chart — the tool used to diagnose the load-balancing behaviour
// behind Fig. 11.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// State classifies what a worker is doing.
type State uint8

const (
	// Idle: no local work, steal attempts failing.
	Idle State = iota
	// Work: executing task code (including task management).
	Work
	// Steal: running the steal protocol or transferring a stack.
	Steal
	// Suspend: swapping threads out/in on join misses.
	Suspend
	numStates
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case Idle:
		return "idle"
	case Work:
		return "work"
	case Steal:
		return "steal"
	case Suspend:
		return "suspend"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

func (s State) glyph() byte {
	switch s {
	case Work:
		return '#'
	case Steal:
		return 's'
	case Suspend:
		return 'u'
	default:
		return '.'
	}
}

// Segment is a maximal run of one state on one worker.
type Segment struct {
	Start, End uint64 // [Start, End) in cycles
	State      State
}

// Lane is one worker's timeline.
type Lane struct {
	open     State
	openedAt uint64
	segments []Segment
}

// Segments returns the closed segments (call Finish first).
func (l *Lane) Segments() []Segment { return l.segments }

func (l *Lane) switchTo(t uint64, s State) {
	if s == l.open {
		return
	}
	if t > l.openedAt {
		l.segments = append(l.segments, Segment{Start: l.openedAt, End: t, State: l.open})
	}
	l.open = s
	l.openedAt = t
}

func (l *Lane) finish(t uint64) {
	if t > l.openedAt {
		l.segments = append(l.segments, Segment{Start: l.openedAt, End: t, State: l.open})
		l.openedAt = t
	}
}

// Recorder collects lanes for every worker of a machine.
type Recorder struct {
	lanes []*Lane
	end   uint64
}

// NewRecorder creates a recorder for n workers, all starting Idle at 0.
func NewRecorder(n int) *Recorder {
	r := &Recorder{lanes: make([]*Lane, n)}
	for i := range r.lanes {
		r.lanes[i] = &Lane{open: Idle}
	}
	return r
}

// Switch records that worker w entered state s at time t. Out-of-order
// times within a worker are clamped (the runtime reports transitions
// monotonically anyway).
func (r *Recorder) Switch(w int, t uint64, s State) {
	if r == nil {
		return
	}
	r.lanes[w].switchTo(t, s)
}

// Finish closes all lanes at time t.
func (r *Recorder) Finish(t uint64) {
	if r == nil {
		return
	}
	r.end = t
	for _, l := range r.lanes {
		l.finish(t)
	}
}

// Lanes returns the recorded lanes.
func (r *Recorder) Lanes() []*Lane { return r.lanes }

// End returns the finish time.
func (r *Recorder) End() uint64 { return r.end }

// Utilization sums, per state, the fraction of total worker-cycles.
type Utilization struct {
	Cycles [numStates]uint64
	Total  uint64
}

// Fraction returns the share of state s.
func (u Utilization) Fraction(s State) float64 {
	if u.Total == 0 {
		return 0
	}
	return float64(u.Cycles[s]) / float64(u.Total)
}

// Utilization aggregates all lanes.
func (r *Recorder) Utilization() Utilization {
	var u Utilization
	for _, l := range r.lanes {
		for _, seg := range l.segments {
			d := seg.End - seg.Start
			u.Cycles[seg.State] += d
			u.Total += d
		}
	}
	return u
}

// WorkerUtilization aggregates one lane.
func (r *Recorder) WorkerUtilization(w int) Utilization {
	var u Utilization
	for _, seg := range r.lanes[w].segments {
		d := seg.End - seg.Start
		u.Cycles[seg.State] += d
		u.Total += d
	}
	return u
}

// stateAt returns the dominant state of lane l in [a, b): the state
// holding the most cycles in the window.
func (l *Lane) stateAt(a, b uint64) State {
	var cyc [numStates]uint64
	for _, seg := range l.segments {
		lo, hi := seg.Start, seg.End
		if lo < a {
			lo = a
		}
		if hi > b {
			hi = b
		}
		if lo < hi {
			cyc[seg.State] += hi - lo
		}
	}
	best, bestC := Idle, uint64(0)
	for s := State(0); s < numStates; s++ {
		if cyc[s] > bestC {
			best, bestC = s, cyc[s]
		}
	}
	return best
}

// RenderGantt writes a text timeline: one row per worker, width columns
// across the run, '#'=work, 's'=steal, 'u'=suspend, '.'=idle.
func (r *Recorder) RenderGantt(w io.Writer, width int) {
	if width < 1 {
		width = 80
	}
	if r.end == 0 {
		fmt.Fprintln(w, "trace: empty recording")
		return
	}
	fmt.Fprintf(w, "timeline: %d cycles across %d columns ('#'=work 's'=steal 'u'=suspend '.'=idle)\n",
		r.end, width)
	for i, l := range r.lanes {
		var sb strings.Builder
		for c := 0; c < width; c++ {
			a := r.end * uint64(c) / uint64(width)
			b := r.end * uint64(c+1) / uint64(width)
			if b == a {
				b = a + 1
			}
			sb.WriteByte(l.stateAt(a, b).glyph())
		}
		fmt.Fprintf(w, "w%-4d %s\n", i, sb.String())
	}
}

// RenderUtilization writes the aggregate breakdown.
func (r *Recorder) RenderUtilization(w io.Writer) {
	u := r.Utilization()
	fmt.Fprintf(w, "utilization: work %.1f%%  steal %.1f%%  suspend %.1f%%  idle %.1f%%\n",
		100*u.Fraction(Work), 100*u.Fraction(Steal),
		100*u.Fraction(Suspend), 100*u.Fraction(Idle))
}
