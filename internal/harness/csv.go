package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every experiment can dump its data series as plain CSV
// for external plotting, one file per figure/table.

func writeCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fu(v uint64) string  { return strconv.FormatUint(v, 10) }
func ff(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// WriteFig9CSV dumps the latency curves.
func WriteFig9CSV(dir string, pts []Fig9Point) error {
	rows := make([][]string, 0, len(pts))
	for _, p := range pts {
		rows = append(rows, []string{
			strconv.Itoa(p.Bytes), fu(p.ReadCycles), fu(p.WriteCycles),
			ff(p.ReadMicros), ff(p.WriteMicros),
		})
	}
	return writeCSV(filepath.Join(dir, "fig9.csv"),
		[]string{"bytes", "read_cycles", "write_cycles", "read_us", "write_us"}, rows)
}

// WriteTable2CSV dumps the task-creation comparison.
func WriteTable2CSV(dir string, rowsIn []Table2Row) error {
	rows := make([][]string, 0, len(rowsIn))
	for _, r := range rowsIn {
		kind := "model"
		if r.Measured {
			kind = "measured"
		}
		paper := Table2Paper[r.System]
		rows = append(rows, []string{
			r.System, ff(r.SPARCCycles), ff(paper[0]), ff(r.XeonCycles), ff(paper[1]), kind,
		})
	}
	return writeCSV(filepath.Join(dir, "table2.csv"),
		[]string{"system", "sparc_cycles", "sparc_paper", "xeon_cycles", "xeon_paper", "kind"}, rows)
}

// WriteFig10CSV dumps a steal breakdown.
func WriteFig10CSV(dir, name string, b StealBreakdown) error {
	rows := [][]string{
		{"empty_check", ff(b.EmptyCheck)},
		{"lock", ff(b.Lock)},
		{"steal", ff(b.Steal)},
		{"suspend", ff(b.Suspend)},
		{"stack_transfer", ff(b.Transfer)},
		{"unlock", ff(b.Unlock)},
		{"resume", ff(b.Resume)},
		{"total", ff(b.Total())},
	}
	return writeCSV(filepath.Join(dir, name+".csv"), []string{"phase", "cycles"}, rows)
}

// WriteTable4CSV dumps the benchmark-footprint table.
func WriteTable4CSV(dir string, rowsIn []Table4Row) error {
	rows := make([][]string, 0, len(rowsIn))
	for _, r := range rowsIn {
		rows = append(rows, []string{
			r.Benchmark, r.Param, fu(r.Items), ff(r.Seconds), fu(r.StackBytes),
		})
	}
	return writeCSV(filepath.Join(dir, "table4.csv"),
		[]string{"benchmark", "param", "items", "sim_seconds", "stack_bytes"}, rows)
}

// WriteFig11CSV dumps one sub-figure's scaling curves.
func WriteFig11CSV(dir, fig string, curves []Fig11Curve) error {
	var rows [][]string
	for _, c := range curves {
		for _, p := range c.Points {
			rows = append(rows, []string{
				c.Label, strconv.Itoa(p.Workers), fu(p.Items),
				ff(p.Throughput.Mean()), ff(p.Throughput.CI95()),
				ff(p.Efficiency), ff(p.Steals),
			})
		}
	}
	return writeCSV(filepath.Join(dir, fig+".csv"),
		[]string{"series", "workers", "items", "throughput", "ci95", "efficiency", "steals"}, rows)
}

// EnsureWritableDir creates dir if needed and proves a file can be
// created inside it, so a long experiment fails before running rather
// than after when the output location is bad.
func EnsureWritableDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".writable-*")
	if err != nil {
		return fmt.Errorf("directory %s is not writable: %w", dir, err)
	}
	name := f.Name()
	f.Close()
	return os.Remove(name)
}

// MaybeCSV runs fn when dir is non-empty, creating the directory first.
func MaybeCSV(dir string, fn func() error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return fn()
}

// FprintCSVNote tells the user where files landed.
func FprintCSVNote(w io.Writer, dir string) {
	if dir != "" {
		fmt.Fprintf(w, "(CSV written to %s)\n", dir)
	}
}
