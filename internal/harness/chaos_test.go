package harness

import (
	"bytes"
	"strings"
	"testing"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/workloads"
)

// TestChaosSweepTiny runs the full chaos gate at the tiny scale: every
// workload × rate point must return the sequential reference, pass
// quiescence and replay bit-identically (ChaosSweep errors otherwise).
func TestChaosSweepTiny(t *testing.T) {
	pts, err := ChaosSweep(8, ChaosWorkloads("tiny"), DefaultChaosRates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(DefaultChaosRates); len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	faulted := false
	for _, p := range pts {
		if !p.Deterministic {
			t.Errorf("%s rate %g: not deterministic", p.Workload, p.Rate)
		}
		if p.Rate == 0 && p.InjectedFaults+p.StealFaults+p.FAATimeouts != 0 {
			t.Errorf("%s rate 0: spurious faults (%d/%d/%d)",
				p.Workload, p.InjectedFaults, p.StealFaults, p.FAATimeouts)
		}
		if p.InjectedFaults > 0 {
			faulted = true
		}
	}
	if !faulted {
		t.Error("no point injected any fault — the sweep tests nothing")
	}
	var buf bytes.Buffer
	PrintChaos(&buf, 8, pts)
	if !strings.Contains(buf.String(), "Chaos sweep") {
		t.Error("render missing header")
	}
}

// TestChaosFib30 is the headline robustness criterion: fib(30) on 8
// workers with every fault source firing at 1% completes with the
// correct result, passes the quiescence check after recovery, and two
// same-seed runs produce identical traces. ~15s of host time, so
// skipped under -short.
func TestChaosFib30(t *testing.T) {
	if testing.Short() {
		t.Skip("fib(30) chaos run takes ~15s")
	}
	pts, err := ChaosSweep(8, []workloads.Spec{workloads.Fib(30, 0)}, []float64{0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if !p.Deterministic {
		t.Error("replay diverged")
	}
	if p.InjectedFaults == 0 || p.StealFaults == 0 {
		t.Errorf("rate 0.01 injected %d fabric faults, %d steal faults — sweep not exercising recovery",
			p.InjectedFaults, p.StealFaults)
	}
}

// TestChaosFaultConfigScaling pins the knob derivation.
func TestChaosFaultConfigScaling(t *testing.T) {
	if ChaosFaultConfig(0).Enabled() {
		t.Error("rate 0 produced an enabled config")
	}
	c := ChaosFaultConfig(0.01)
	if !c.Enabled() || c.Validate() != nil {
		t.Fatalf("rate 0.01 config unusable: %+v", c)
	}
	if c.BrownoutDuration != 40_000 {
		t.Errorf("brownout duration %d, want rate-sized 40000", c.BrownoutDuration)
	}
}

// TestChaosMatrixRT is the acceptance matrix on the in-process real
// backend: 4 schedules × 3 tiny workloads × 3 seeds = 36 cells, every
// one ending in the oracle result (or a typed error) within its
// deadline. Runs un-gated — with -race in CI this doubles as the rt
// deque steal-fault stress.
func TestChaosMatrixRT(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	cells, failed := RunChaosMatrix(RTChaosBackend(true), 8, seeds, RTChaosSchedules(), "tiny")
	if failed > 0 {
		for _, c := range cells {
			if !c.Pass {
				t.Errorf("%s/%s/%s seed=%d: %s (%s)", c.Backend, c.Schedule, c.Workload, c.Seed, c.Outcome, c.Err)
			}
		}
	}
	ran := 0
	for _, c := range cells {
		if c.Outcome != "skipped" {
			ran++
		}
	}
	if want := len(RTChaosSchedules()) * 3 * len(seeds); ran != want {
		t.Fatalf("%d cells ran, want %d", ran, want)
	}
}

// TestChaosMatrixSim runs the same matrix machinery against the sim —
// the generalisation gate for satellite 4: one runner, three backends.
func TestChaosMatrixSim(t *testing.T) {
	cells, failed := RunChaosMatrix(SimChaosBackend(), 8, []uint64{1, 2}, SimChaosSchedules(), "tiny")
	if failed > 0 {
		for _, c := range cells {
			if !c.Pass {
				t.Errorf("%s/%s/%s seed=%d: %s (%s)", c.Backend, c.Schedule, c.Workload, c.Seed, c.Outcome, c.Err)
			}
		}
	}
}

// TestChaosMatrixDist is the full robustness gate on the multi-process
// backend: steal faults, control-plane socket faults, SIGKILLs (single
// and double) and the hung-worker heartbeat cell. Multi-process and
// minutes-long, so skipped under -short.
func TestChaosMatrixDist(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process chaos matrix skipped in -short mode")
	}
	cells, failed := RunChaosMatrix(DistChaosBackend(), 4, []uint64{1}, DistChaosSchedules(), "tiny")
	if failed > 0 {
		for _, c := range cells {
			if !c.Pass {
				t.Errorf("%s/%s/%s seed=%d: %s (%s)", c.Backend, c.Schedule, c.Workload, c.Seed, c.Outcome, c.Err)
			}
		}
	}
	// The schedule-specific postconditions (crash beats watchdog, hang
	// bounded) live in distChaosCheck; here just require that the
	// injection cells actually ran.
	byName := map[string]int{}
	for _, c := range cells {
		if c.Outcome != "skipped" {
			byName[c.Schedule]++
		}
	}
	for _, name := range []string{"ctl-faults", "kill-rank1", "double-kill", "hang-rank1"} {
		if byName[name] == 0 {
			t.Errorf("schedule %s ran no cells", name)
		}
	}
	var buf bytes.Buffer
	PrintChaosMatrix(&buf, cells, failed)
	if !strings.Contains(buf.String(), "Chaos matrix") {
		t.Error("matrix render missing header")
	}
}

// TestChaosMatrixRejectsMismatchedKnobs pins the Supports gates: sim
// knobs never reach rt/dist, plan/ctl knobs never reach sim.
func TestChaosMatrixRejectsMismatchedKnobs(t *testing.T) {
	simSch := ChaosSchedule{Name: "sim-knobs", Fault: ChaosFaultConfig(0.01)}
	planSch := ChaosSchedule{Name: "plan-knobs", Fault: fault.Config{StealClaimFailProb: 0.1}}
	killSch := ChaosSchedule{Name: "kill", Kill: []int{1}}
	if RTChaosBackend(true).Supports(simSch) == "" {
		t.Error("rt accepted sim-only knobs")
	}
	if RTChaosBackend(true).Supports(killSch) == "" {
		t.Error("rt accepted kill injection")
	}
	if SimChaosBackend().Supports(planSch) == "" {
		t.Error("sim accepted real-backend steal knobs")
	}
	if SimChaosBackend().Supports(killSch) == "" {
		t.Error("sim accepted kill injection")
	}
	if DistChaosBackend().Supports(simSch) == "" {
		t.Error("dist accepted sim-only knobs")
	}
	if DistChaosBackend().Supports(planSch) != "" {
		t.Error("dist rejected its own steal knobs")
	}
}

// TestChaosJSONReportCounters checks that a faulted run surfaces its
// failure counters through the JSON report.
func TestChaosJSONReportCounters(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.Seed = 3
	cfg.Fault = ChaosFaultConfig(0.05)
	spec := workloads.Fib(16, 100)
	m, res, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != spec.Expected {
		t.Fatalf("result %d != %d", res, spec.Expected)
	}
	r := BuildRunReport(m, spec.Items(res))
	if r.InjectedFaults == 0 {
		t.Error("report shows no injected faults at rate 0.05")
	}
	if r.NetRetries == 0 && r.StealFaults == 0 {
		t.Error("report shows neither retries nor steal faults")
	}
}
