package harness

import (
	"bytes"
	"strings"
	"testing"

	"uniaddr/internal/core"
	"uniaddr/internal/workloads"
)

// TestChaosSweepTiny runs the full chaos gate at the tiny scale: every
// workload × rate point must return the sequential reference, pass
// quiescence and replay bit-identically (ChaosSweep errors otherwise).
func TestChaosSweepTiny(t *testing.T) {
	pts, err := ChaosSweep(8, ChaosWorkloads("tiny"), DefaultChaosRates, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(DefaultChaosRates); len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	faulted := false
	for _, p := range pts {
		if !p.Deterministic {
			t.Errorf("%s rate %g: not deterministic", p.Workload, p.Rate)
		}
		if p.Rate == 0 && p.InjectedFaults+p.StealFaults+p.FAATimeouts != 0 {
			t.Errorf("%s rate 0: spurious faults (%d/%d/%d)",
				p.Workload, p.InjectedFaults, p.StealFaults, p.FAATimeouts)
		}
		if p.InjectedFaults > 0 {
			faulted = true
		}
	}
	if !faulted {
		t.Error("no point injected any fault — the sweep tests nothing")
	}
	var buf bytes.Buffer
	PrintChaos(&buf, 8, pts)
	if !strings.Contains(buf.String(), "Chaos sweep") {
		t.Error("render missing header")
	}
}

// TestChaosFib30 is the headline robustness criterion: fib(30) on 8
// workers with every fault source firing at 1% completes with the
// correct result, passes the quiescence check after recovery, and two
// same-seed runs produce identical traces. ~15s of host time, so
// skipped under -short.
func TestChaosFib30(t *testing.T) {
	if testing.Short() {
		t.Skip("fib(30) chaos run takes ~15s")
	}
	pts, err := ChaosSweep(8, []workloads.Spec{workloads.Fib(30, 0)}, []float64{0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if !p.Deterministic {
		t.Error("replay diverged")
	}
	if p.InjectedFaults == 0 || p.StealFaults == 0 {
		t.Errorf("rate 0.01 injected %d fabric faults, %d steal faults — sweep not exercising recovery",
			p.InjectedFaults, p.StealFaults)
	}
}

// TestChaosFaultConfigScaling pins the knob derivation.
func TestChaosFaultConfigScaling(t *testing.T) {
	if ChaosFaultConfig(0).Enabled() {
		t.Error("rate 0 produced an enabled config")
	}
	c := ChaosFaultConfig(0.01)
	if !c.Enabled() || c.Validate() != nil {
		t.Fatalf("rate 0.01 config unusable: %+v", c)
	}
	if c.BrownoutDuration != 40_000 {
		t.Errorf("brownout duration %d, want rate-sized 40000", c.BrownoutDuration)
	}
}

// TestChaosJSONReportCounters checks that a faulted run surfaces its
// failure counters through the JSON report.
func TestChaosJSONReportCounters(t *testing.T) {
	cfg := core.DefaultConfig(8)
	cfg.Seed = 3
	cfg.Fault = ChaosFaultConfig(0.05)
	spec := workloads.Fib(16, 100)
	m, res, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res != spec.Expected {
		t.Fatalf("result %d != %d", res, spec.Expected)
	}
	r := BuildRunReport(m, spec.Items(res))
	if r.InjectedFaults == 0 {
		t.Error("report shows no injected faults at rate 0.05")
	}
	if r.NetRetries == 0 && r.StealFaults == 0 {
		t.Error("report shows neither retries nor steal faults")
	}
}
