// Package harness regenerates every table and figure of the paper's
// evaluation (§6) on the simulated cluster: Fig. 9 (RDMA latencies),
// Table 2 (task-creation overhead), Fig. 10 / Table 3 (work-stealing
// breakdown), Table 4 (benchmark footprints), Fig. 11 (load-balancing
// scalability), the §6.3 uni-vs-iso steal-time comparison and the §4
// address-space analysis, plus the ablations called out in DESIGN.md.
package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/mem"
	"uniaddr/internal/rdma"
	"uniaddr/internal/sim"
)

// Fig9Point is one message size on the Fig. 9 latency curves.
type Fig9Point struct {
	Bytes       int
	ReadCycles  uint64
	WriteCycles uint64
	ReadMicros  float64
	WriteMicros float64
}

// Fig9Sizes are the measured message sizes (8 B – 1 MiB, powers of 4ish
// like the paper's sweep).
var Fig9Sizes = []int{8, 32, 128, 512, 2048, 8192, 32768, 131072, 524288, 1048576}

// Fig9 measures one-sided READ and WRITE latencies on a two-node
// simulated fabric by actually issuing the operations and timing them
// on the virtual clock (not just evaluating the model).
func Fig9(params rdma.Params, clockHz float64, sizes []int) ([]Fig9Point, error) {
	if len(sizes) == 0 {
		sizes = Fig9Sizes
	}
	var out []Fig9Point
	for _, n := range sizes {
		n := n
		eng := sim.NewEngine()
		fab := rdma.NewFabric(eng, params)
		for i := 0; i < 2; i++ {
			s := mem.NewAddressSpace(fmt.Sprintf("n%d", i))
			s.MustReserve("rdma", 0x100000, 4<<20, true)
			fab.AddEndpoint(s)
		}
		var rd, wr uint64
		eng.Spawn("bench", func(p *sim.Proc) {
			buf := make([]byte, n)
			start := p.Now()
			fab.Endpoint(0).Read(p, 1, 0x100000, buf)
			rd = p.Now() - start
			start = p.Now()
			fab.Endpoint(0).Write(p, 1, 0x100000, buf)
			wr = p.Now() - start
		})
		if _, err := eng.Run(); err != nil {
			return nil, err
		}
		out = append(out, Fig9Point{
			Bytes:       n,
			ReadCycles:  rd,
			WriteCycles: wr,
			ReadMicros:  float64(rd) / clockHz * 1e6,
			WriteMicros: float64(wr) / clockHz * 1e6,
		})
	}
	return out, nil
}

// PrintFig9 renders the curve as a table.
func PrintFig9(w io.Writer, pts []Fig9Point) {
	fmt.Fprintf(w, "Figure 9: RDMA READ/WRITE latency vs message size (FX10/Tofu model)\n")
	fmt.Fprintf(w, "%10s %14s %14s %12s %12s\n", "bytes", "READ cycles", "WRITE cycles", "READ µs", "WRITE µs")
	for _, p := range pts {
		fmt.Fprintf(w, "%10d %14d %14d %12.2f %12.2f\n",
			p.Bytes, p.ReadCycles, p.WriteCycles, p.ReadMicros, p.WriteMicros)
	}
}

// Fig10Config tweaks shared by microbenchmarks: a fresh FX10-flavoured
// two-node machine, one worker per node.
func twoNodeConfig(scheme core.SchemeKind, seed uint64) core.Config {
	cfg := core.DefaultConfig(2)
	cfg.WorkersPerNode = 1
	cfg.Scheme = scheme
	cfg.Seed = seed
	return cfg
}
