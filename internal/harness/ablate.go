package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

// AblateFAAPoint compares software fetch-and-add (the paper's FX10
// scheme, one core per node sacrificed to a communication server)
// against hypothetical hardware remote atomics.
type AblateFAAPoint struct {
	Workers      int
	SoftwareTput float64
	HardwareTput float64
}

// AblateFAA sweeps worker counts under both fetch-and-add
// implementations on the same workload.
func AblateFAA(workers []int, seed uint64) ([]AblateFAAPoint, error) {
	spec := workloads.BTC(13, 1, 0)
	var out []AblateFAAPoint
	for _, p := range workers {
		run := func(hw bool) (float64, error) {
			cfg := core.DefaultConfig(p)
			cfg.Seed = seed
			cfg.Net.HardwareFAA = hw
			m, res, err := spec.Run(cfg)
			if err != nil {
				return 0, err
			}
			if res != spec.Expected {
				return 0, fmt.Errorf("bad result")
			}
			return float64(spec.Items(res)) / m.ElapsedSeconds(), nil
		}
		sw, err := run(false)
		if err != nil {
			return nil, err
		}
		hw, err := run(true)
		if err != nil {
			return nil, err
		}
		out = append(out, AblateFAAPoint{Workers: p, SoftwareTput: sw, HardwareTput: hw})
	}
	return out, nil
}

// PrintAblateFAA renders the comparison.
func PrintAblateFAA(w io.Writer, pts []AblateFAAPoint) {
	fmt.Fprintf(w, "Ablation: software vs hardware remote fetch-and-add (BTC iter=1)\n")
	fmt.Fprintf(w, "  %8s %16s %16s %8s\n", "workers", "software tput/s", "hardware tput/s", "hw/sw")
	for _, p := range pts {
		fmt.Fprintf(w, "  %8d %16s %16s %8.2f\n",
			p.Workers, stats.HumanCount(p.SoftwareTput), stats.HumanCount(p.HardwareTput),
			p.HardwareTput/p.SoftwareTput)
	}
}

// AblateStackSizePoint measures steal cost as a function of the stolen
// stack's size — the knob behind the paper's footnote that stack
// transfer is one RDMA READ.
type AblateStackSizePoint struct {
	StackBytes uint64
	StealTotal float64
	Transfer   float64
}

// AblateStackSize runs the ping-pong microbenchmark with growing stack
// padding.
func AblateStackSize(sizes []uint64, iters uint64) ([]AblateStackSizePoint, error) {
	if len(sizes) == 0 {
		sizes = []uint64{256, 1024, 3055, 8192, 32768, 131072}
	}
	var out []AblateStackSizePoint
	for _, s := range sizes {
		spec := workloads.PingPong(iters, 120_000, s)
		cfg := twoNodeConfig(core.SchemeUni, 42)
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, err
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("ping-pong %d bytes: bad result", s)
		}
		st := m.TotalStats()
		if st.StealsOK == 0 {
			return nil, fmt.Errorf("ping-pong %d bytes: no steals", s)
		}
		n := float64(st.StealsOK)
		out = append(out, AblateStackSizePoint{
			StackBytes: s,
			StealTotal: float64(st.Phases.Total()) / n,
			Transfer:   float64(st.Phases.StackTransfer) / n,
		})
	}
	return out, nil
}

// PrintAblateStackSize renders the curve.
func PrintAblateStackSize(w io.Writer, pts []AblateStackSizePoint) {
	fmt.Fprintf(w, "Ablation: steal cost vs stolen stack size (uni-address)\n")
	fmt.Fprintf(w, "  %12s %16s %16s\n", "stack bytes", "steal cycles", "transfer cycles")
	for _, p := range pts {
		fmt.Fprintf(w, "  %12d %16.0f %16.0f\n", p.StackBytes, p.StealTotal, p.Transfer)
	}
}

// AblateVictimLocalityPoint compares per-node worker grouping: the
// paper dedicates one core per 16-core node to the comm server; this
// ablation varies workers-per-node, which changes how many FAA servers
// exist and how much they are shared.
type AblateVictimLocalityPoint struct {
	WorkersPerNode int
	Tput           float64
}

// AblateWorkersPerNode sweeps the node grouping at a fixed total core
// count.
func AblateWorkersPerNode(total int, groupings []int, seed uint64) ([]AblateVictimLocalityPoint, error) {
	if len(groupings) == 0 {
		groupings = []int{1, 5, 15, 30}
	}
	spec := workloads.BTC(13, 1, 0)
	var out []AblateVictimLocalityPoint
	for _, g := range groupings {
		cfg := core.DefaultConfig(total)
		cfg.WorkersPerNode = g
		cfg.Seed = seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, err
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("grouping %d: bad result", g)
		}
		out = append(out, AblateVictimLocalityPoint{
			WorkersPerNode: g,
			Tput:           float64(spec.Items(res)) / m.ElapsedSeconds(),
		})
	}
	return out, nil
}

// PrintAblateWorkersPerNode renders the sweep.
func PrintAblateWorkersPerNode(w io.Writer, total int, pts []AblateVictimLocalityPoint) {
	fmt.Fprintf(w, "Ablation: comm-server sharing (total %d workers)\n", total)
	fmt.Fprintf(w, "  %16s %16s\n", "workers/node", "throughput/s")
	for _, p := range pts {
		fmt.Fprintf(w, "  %16d %16s\n", p.WorkersPerNode, stats.HumanCount(p.Tput))
	}
}

// AblateVictimPoint compares victim-selection policies on a
// hierarchical machine (cheap intra-node fabric).
type AblateVictimPoint struct {
	Policy core.VictimPolicy
	Tput   float64
	Steals uint64
}

// AblateVictim sweeps victim policies at a fixed machine size, with
// IntraNodeFactor < 1 so locality can pay off.
func AblateVictim(workers int, intraNodeFactor float64, seed uint64) ([]AblateVictimPoint, error) {
	spec := workloads.BTC(14, 1, 200)
	var out []AblateVictimPoint
	for _, pol := range []core.VictimPolicy{core.VictimRandom, core.VictimLocalFirst, core.VictimLastSuccess} {
		cfg := core.DefaultConfig(workers)
		cfg.Victim = pol
		cfg.Net.IntraNodeFactor = intraNodeFactor
		cfg.Seed = seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("policy %v: %w", pol, err)
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("policy %v: bad result", pol)
		}
		out = append(out, AblateVictimPoint{
			Policy: pol,
			Tput:   float64(spec.Items(res)) / m.ElapsedSeconds(),
			Steals: m.TotalStats().StealsOK,
		})
	}
	return out, nil
}

// PrintAblateVictim renders the sweep.
func PrintAblateVictim(w io.Writer, workers int, factor float64, pts []AblateVictimPoint) {
	fmt.Fprintf(w, "Ablation: victim selection policy (%d workers, intra-node latency ×%.2f)\n", workers, factor)
	fmt.Fprintf(w, "  %-14s %16s %10s\n", "policy", "throughput/s", "steals")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-14s %16s %10d\n", p.Policy, stats.HumanCount(p.Tput), p.Steals)
	}
}

// AblateHelpFirstPoint compares the paper's work-first (child-first)
// scheduling against help-first "tied tasks" (§2) on one workload.
type AblateHelpFirstPoint struct {
	Mode          string
	Tput          float64
	Steals        uint64
	BytesPerSteal uint64
	MaxStack      uint64
	JoinsMiss     uint64
}

// AblateHelpFirst runs the same workload both ways at a fixed size.
func AblateHelpFirst(workers int, seed uint64) ([]AblateHelpFirstPoint, error) {
	spec := workloads.BTCPadded(14, 1, 200, 2048)
	var out []AblateHelpFirstPoint
	for _, hf := range []bool{false, true} {
		cfg := core.DefaultConfig(workers)
		cfg.HelpFirst = hf
		cfg.Seed = seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("helpFirst=%v: %w", hf, err)
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("helpFirst=%v: bad result", hf)
		}
		st := m.TotalStats()
		mode := "work-first (paper)"
		if hf {
			mode = "help-first (tied)"
		}
		pt := AblateHelpFirstPoint{
			Mode:      mode,
			Tput:      float64(spec.Items(res)) / m.ElapsedSeconds(),
			Steals:    st.StealsOK,
			MaxStack:  m.MaxStackUsage(),
			JoinsMiss: st.JoinsMiss,
		}
		if st.StealsOK > 0 {
			pt.BytesPerSteal = st.BytesStolen / st.StealsOK
		}
		out = append(out, pt)
	}
	return out, nil
}

// PrintAblateHelpFirst renders the comparison.
func PrintAblateHelpFirst(w io.Writer, workers int, pts []AblateHelpFirstPoint) {
	fmt.Fprintf(w, "Ablation (§2): work-first vs help-first scheduling (%d workers, 2 KiB task stacks)\n", workers)
	fmt.Fprintf(w, "  %-20s %14s %8s %12s %12s %10s\n",
		"mode", "throughput/s", "steals", "bytes/steal", "max region", "join-miss")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-20s %14s %8d %12d %12d %10d\n",
			p.Mode, stats.HumanCount(p.Tput), p.Steals, p.BytesPerSteal, p.MaxStack, p.JoinsMiss)
	}
}

// AblateStragglerPoint measures how work stealing absorbs performance
// variability (the intro's motivation): some workers run their CPU
// work slower; random stealing should keep throughput near the
// machine's aggregate capacity instead of collapsing to the slowest
// worker's pace (which is what a static partition would do).
type AblateStragglerPoint struct {
	Label        string
	Tput         float64
	RelToUniform float64 // measured throughput / uniform-machine throughput
	CapacityRel  float64 // aggregate capacity / uniform capacity (the ideal)
	StaticRel    float64 // what a static partition would achieve (slowest-bound)
}

// AblateStraggler compares a uniform machine against machines where
// every k-th worker is f× slower.
func AblateStraggler(workers int, seed uint64) ([]AblateStragglerPoint, error) {
	spec := workloads.BTC(15, 1, 300)
	run := func(every int, factor float64) (float64, error) {
		cfg := core.DefaultConfig(workers)
		cfg.Seed = seed
		cfg.SlowWorkerEvery = every
		cfg.SlowWorkerFactor = factor
		m, res, err := spec.Run(cfg)
		if err != nil {
			return 0, err
		}
		if res != spec.Expected {
			return 0, fmt.Errorf("bad result")
		}
		return float64(spec.Items(res)) / m.ElapsedSeconds(), nil
	}
	uniform, err := run(0, 1)
	if err != nil {
		return nil, err
	}
	out := []AblateStragglerPoint{{Label: "uniform", Tput: uniform, RelToUniform: 1, CapacityRel: 1, StaticRel: 1}}
	for _, cse := range []struct {
		every  int
		factor float64
		label  string
	}{
		{4, 4, "25% of workers 4x slower"},
		{2, 2, "50% of workers 2x slower"},
	} {
		tput, err := run(cse.every, cse.factor)
		if err != nil {
			return nil, err
		}
		slowFrac := 1.0 / float64(cse.every)
		capacity := (1 - slowFrac) + slowFrac/cse.factor
		out = append(out, AblateStragglerPoint{
			Label:        cse.label,
			Tput:         tput,
			RelToUniform: tput / uniform,
			CapacityRel:  capacity,
			StaticRel:    1 / cse.factor, // a static partition finishes with the slowest
		})
	}
	return out, nil
}

// PrintAblateStraggler renders the comparison.
func PrintAblateStraggler(w io.Writer, workers int, pts []AblateStragglerPoint) {
	fmt.Fprintf(w, "Ablation: absorbing performance variability (%d workers, BTC iter=1)\n", workers)
	fmt.Fprintf(w, "  %-28s %14s %10s %10s %12s\n", "machine", "throughput/s", "rel", "capacity", "static part.")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-28s %14s %9.2fx %9.2fx %11.2fx\n",
			p.Label, stats.HumanCount(p.Tput), p.RelToUniform, p.CapacityRel, p.StaticRel)
	}
	fmt.Fprintf(w, "  (work stealing should land near 'capacity'; a static partition lands at\n")
	fmt.Fprintf(w, "   'static part.' — the dynamic-load-balancing motivation of the paper's intro)\n")
}

// AblateLifelinesPoint compares the paper's pure one-sided random
// stealing against lifeline-based global load balancing ([24]) as the
// idle protocol.
type AblateLifelinesPoint struct {
	Mode         string
	Tput         float64
	FailedProbes uint64 // steal attempts that came back empty/locked
	Pushes       uint64
}

// AblateLifelines runs the same workload under both idle protocols.
func AblateLifelines(workers int, seed uint64) ([]AblateLifelinesPoint, error) {
	spec := workloads.BTC(15, 1, 300)
	var out []AblateLifelinesPoint
	for _, ll := range []bool{false, true} {
		cfg := core.DefaultConfig(workers)
		cfg.Lifelines = ll
		cfg.Seed = seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("lifelines=%v: %w", ll, err)
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("lifelines=%v: bad result", ll)
		}
		st := m.TotalStats()
		mode := "random stealing (paper)"
		if ll {
			mode = "lifelines [24]"
		}
		out = append(out, AblateLifelinesPoint{
			Mode:         mode,
			Tput:         float64(spec.Items(res)) / m.ElapsedSeconds(),
			FailedProbes: st.StealAbortEmpty + st.StealAbortLock,
			Pushes:       st.LifelinePushes,
		})
	}
	return out, nil
}

// PrintAblateLifelines renders the comparison.
func PrintAblateLifelines(w io.Writer, workers int, pts []AblateLifelinesPoint) {
	fmt.Fprintf(w, "Ablation ([24]): random one-sided stealing vs lifeline push (%d workers)\n", workers)
	fmt.Fprintf(w, "  %-26s %14s %14s %10s\n", "idle protocol", "throughput/s", "failed probes", "pushes")
	for _, p := range pts {
		fmt.Fprintf(w, "  %-26s %14s %14d %10d\n",
			p.Mode, stats.HumanCount(p.Tput), p.FailedProbes, p.Pushes)
	}
	fmt.Fprintf(w, "  (lifelines trade one-sidedness — the victim's CPU serialises the push —\n")
	fmt.Fprintf(w, "   for probe-free idling at the tails; the paper keeps steals one-sided)\n")
}
