package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/workloads"
)

// Table2Row is one system on one machine profile.
type Table2Row struct {
	System      string
	SPARCCycles float64
	XeonCycles  float64
	Measured    bool // true when timed on the simulator, false for a model
}

// Paper's Table 2 reference values, for the report column.
var Table2Paper = map[string][2]float64{
	"Uni-address threads": {413, 100},
	"MassiveThreads":      {658, 110},
	"Cilk":                {47, 59},
}

// measureSpawnCost runs a single-worker spawn microbenchmark (BTC with
// depth 1: the root creates, runs and joins 2·iter empty children) and
// returns the average cycles per child task.
func measureSpawnCost(costs core.Costs, iter uint64) (float64, error) {
	spec := workloads.BTC(1, iter, 0)
	cfg := core.DefaultConfig(1)
	cfg.Costs = costs
	m, res, err := spec.Run(cfg)
	if err != nil {
		return 0, err
	}
	if res != spec.Expected {
		return 0, fmt.Errorf("harness: spawn bench result %d != %d", res, spec.Expected)
	}
	children := float64(2 * iter)
	// Subtract the root task's own creation cost before averaging.
	return (float64(m.ElapsedCycles()) - float64(costs.SpawnCost())) / children, nil
}

// Baseline models for the shared-memory systems of Table 2. These are
// cost models, not ports: MassiveThreads performs the same THE-protocol
// deque work plus a heavier full-context switch and malloc-backed stack
// management; MIT Cilk's compiled fast clone skips the context save and
// record entirely and only touches the deque. The extra/lighter
// components are calibrated so the models land on the paper's measured
// values, and EXPERIMENTS.md flags them as models.
func massiveThreadsModel(c core.Costs, uni float64) float64 {
	switch {
	case c.ClockHz > 2e9: // Xeon profile
		return uni + 10 // slightly heavier context handling
	default: // SPARC profile
		return uni + 245 // ucontext-style switch + stack pool on SPARC
	}
}

func cilkModel(c core.Costs) float64 {
	// MIT Cilk's compiled fast clone is a different code path entirely
	// (no runtime context save, no record): its cost is dominated by
	// compiler-generated frame bookkeeping and does not decompose into
	// our runtime's components — notably, the paper measures Cilk as
	// *cheaper in cycles on SPARC than on Xeon* (47 vs 59). We report
	// the paper's measured values as the reference row.
	if c.ClockHz > 2e9 {
		return Table2Paper["Cilk"][1]
	}
	return Table2Paper["Cilk"][0]
}

// Table2 measures uni-address threads on both machine profiles and
// fills in the baseline models.
func Table2(iter uint64) ([]Table2Row, error) {
	if iter == 0 {
		iter = 2000
	}
	sparc, err := measureSpawnCost(core.SPARCCosts(), iter)
	if err != nil {
		return nil, err
	}
	xeon, err := measureSpawnCost(core.XeonCosts(), iter)
	if err != nil {
		return nil, err
	}
	return []Table2Row{
		{System: "Uni-address threads", SPARCCycles: sparc, XeonCycles: xeon, Measured: true},
		{System: "MassiveThreads", SPARCCycles: massiveThreadsModel(core.SPARCCosts(), sparc), XeonCycles: massiveThreadsModel(core.XeonCosts(), xeon)},
		{System: "Cilk", SPARCCycles: cilkModel(core.SPARCCosts()), XeonCycles: cilkModel(core.XeonCosts())},
	}, nil
}

// PrintTable2 renders the comparison with the paper's values alongside.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: thread creation overhead (cycles)\n")
	fmt.Fprintf(w, "%-22s %12s %12s %12s %12s %s\n",
		"system", "SPARC64IXfx", "paper", "XeonE5-2660", "paper", "kind")
	for _, r := range rows {
		paper := Table2Paper[r.System]
		kind := "model"
		if r.Measured {
			kind = "measured"
		}
		fmt.Fprintf(w, "%-22s %12.0f %12.0f %12.0f %12.0f %s\n",
			r.System, r.SPARCCycles, paper[0], r.XeonCycles, paper[1], kind)
	}
}
