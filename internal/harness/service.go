// Service load generator: an open-loop benchmark of the persistent rt
// worker pool (rt.Pool / uniaddr.Service). Jobs arrive as a Poisson
// process at a target rate — arrivals do NOT wait for completions, so
// queueing shows up as latency instead of silently throttling the
// offered load — and every completed job's report is checked against
// its workload's sequential oracle. The output (BENCH_service.json)
// carries per-job queue/execution/total latency percentiles plus the
// pool-reuse proof: parks between jobs and zero mid-run worker exits.
package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"uniaddr/internal/obs"
	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// ServiceBenchConfig parameterises one service load-gen run.
type ServiceBenchConfig struct {
	// Workers is the pool size.
	Workers int
	// QPS is the target Poisson arrival rate (jobs per second).
	QPS float64
	// Jobs is how many arrivals to generate.
	Jobs int
	// Seed drives both the pool's victim selection and the arrival
	// process.
	Seed uint64
	// MaxJobs / QueueDepth bound residency and admission (0 = pool
	// defaults).
	MaxJobs    int
	QueueDepth int
	// NoPin disables per-worker OS-thread pinning (tests).
	NoPin bool
}

// ServiceLatency is one latency distribution's digest, in nanoseconds.
type ServiceLatency struct {
	Count  uint64  `json:"count"`
	MeanNS float64 `json:"mean_ns"`
	P50NS  uint64  `json:"p50_ns"`
	P95NS  uint64  `json:"p95_ns"`
	P99NS  uint64  `json:"p99_ns"`
	MaxNS  uint64  `json:"max_ns"`
}

func latencyDigest(h *obs.Hist) ServiceLatency {
	return ServiceLatency{
		Count: h.Count, MeanNS: h.Mean(),
		P50NS: h.Quantile(0.50), P95NS: h.Quantile(0.95), P99NS: h.Quantile(0.99),
		MaxNS: h.Max,
	}
}

// ServiceBenchReport is the schema of BENCH_service.json.
type ServiceBenchReport struct {
	Benchmark string `json:"benchmark"` // "rt-service"
	// Host provenance: a latency distribution is only meaningful
	// relative to the machine that produced it.
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	// Underprovisioned flags a run with more workers than host CPUs:
	// latencies then measure scheduler time-slicing, not the pool.
	Underprovisioned bool `json:"underprovisioned,omitempty"`
	Note             string `json:"note,omitempty"`

	Workers   int     `json:"workers"`
	Seed      uint64  `json:"seed"`
	TargetQPS float64 `json:"target_qps"`

	// Offered vs served load: Jobs arrivals, of which Admitted entered
	// the pool and Rejected bounced off the full admission queue
	// (open-loop shedding, not an error).
	Jobs     int `json:"jobs"`
	Admitted int `json:"admitted"`
	Rejected int `json:"rejected,omitempty"`

	DurationNS  int64   `json:"duration_ns"`
	AchievedQPS float64 `json:"achieved_qps"`

	// Per-job latency digests: queue (submit→dispatch), exec
	// (dispatch→completion), total (submit→completion).
	QueueLatency ServiceLatency `json:"queue_latency"`
	ExecLatency  ServiceLatency `json:"exec_latency"`
	TotalLatency ServiceLatency `json:"total_latency"`

	// OracleMismatches counts jobs whose report disagreed with the
	// workload's sequential reference or violated the per-job
	// conservation law. Must be 0.
	OracleMismatches int `json:"oracle_mismatches"`
	// WorkersExitedMidRun must be 0: the proof that the pool reuses
	// its workers across jobs instead of recreating them.
	WorkersExitedMidRun uint64 `json:"workers_exited_mid_run"`
	// Parks/Wakes count idle-ladder park episodes across the run — the
	// workers repeatedly parking BETWEEN jobs and being re-armed.
	Parks uint64 `json:"parks"`
	Wakes uint64 `json:"wakes"`
	// TasksExecuted sums every job's tasks (work actually multiplexed
	// over the one pool).
	TasksExecuted uint64 `json:"tasks_executed"`
}

// serviceMix is the oracle-checked workload rotation the generator
// submits: small trees with distinct shapes (divide-and-conquer,
// wide-and-regular, search), each with an exact sequential reference.
func serviceMix() []workloads.Spec {
	return []workloads.Spec{
		workloads.Fib(15, 20),
		workloads.BTC(7, 1, 10),
		workloads.NQueens(6, 10),
		workloads.Fib(13, 50),
	}
}

// RunServiceBench drives one open-loop load-gen run against a fresh
// persistent pool and returns the report. It fails on oracle
// mismatches only via the report counters, but returns an error for
// structural failures (pool construction, submit errors other than
// saturation, failed Close).
func RunServiceBench(cfg ServiceBenchConfig) (ServiceBenchReport, error) {
	if cfg.Workers < 1 || cfg.Jobs < 1 || cfg.QPS <= 0 {
		return ServiceBenchReport{}, fmt.Errorf("service bench needs workers >= 1, jobs >= 1, qps > 0 (got %d, %d, %g)",
			cfg.Workers, cfg.Jobs, cfg.QPS)
	}
	pcfg := rt.DefaultConfig(cfg.Workers)
	pcfg.Seed = cfg.Seed
	pcfg.NoPin = cfg.NoPin
	pcfg.MaxJobs = cfg.MaxJobs
	pcfg.QueueDepth = cfg.QueueDepth
	pcfg.MaxWall = 0 // pool lifetime is the run's
	pool, err := rt.NewPool(pcfg)
	if err != nil {
		return ServiceBenchReport{}, err
	}
	rep := ServiceBenchReport{
		Benchmark:  "rt-service",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Workers:    cfg.Workers,
		Seed:       cfg.Seed,
		TargetQPS:  cfg.QPS,
		Jobs:       cfg.Jobs,
	}
	rep.Underprovisioned = cfg.Workers > rep.NumCPU
	mix := serviceMix()
	// The arrival clock is its own RNG stream so changing the mix
	// cannot perturb arrival times.
	arrivals := rand.New(rand.NewSource(int64(cfg.Seed*0x9e3779b97f4a7c15 + 1)))
	type inflight struct {
		tk   *rt.Ticket
		spec workloads.Spec
	}
	var live []inflight
	start := time.Now()
	next := start
	for i := 0; i < cfg.Jobs; i++ {
		// Open loop: the next arrival time is drawn from Exp(QPS)
		// regardless of how far behind the pool is.
		next = next.Add(time.Duration(arrivals.ExpFloat64() / cfg.QPS * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		spec := mix[i%len(mix)]
		tk, err := pool.Submit(spec.Fid, spec.Locals, spec.Init, rt.JobParams{})
		if err != nil {
			if errors.Is(err, rt.ErrPoolSaturated) {
				rep.Rejected++
				continue
			}
			return rep, fmt.Errorf("submit %s (arrival %d): %w", spec.Name, i, err)
		}
		live = append(live, inflight{tk: tk, spec: spec})
	}
	rep.Admitted = len(live)
	var qh, eh, th obs.Hist
	for _, j := range live {
		res, err := j.tk.Wait()
		if err != nil {
			return rep, fmt.Errorf("%s (job %d): %w", j.spec.Name, j.tk.ID(), err)
		}
		if res.Result != j.spec.Expected || res.Tasks != res.Spawns+1 {
			rep.OracleMismatches++
		}
		rep.TasksExecuted += res.Tasks
		// All three latencies come from the pool's own submit/dispatch/
		// completion timestamps — collection order here cannot skew them.
		q, e := max64(res.QueueNS, 0), max64(res.ExecNS, 0)
		qh.Record(uint64(q))
		eh.Record(uint64(e))
		th.Record(uint64(q + e))
	}
	// Read BEFORE Close: the claim is that no worker exited while jobs
	// were still being served.
	rep.WorkersExitedMidRun = pool.WorkersExited()
	rep.DurationNS = time.Since(start).Nanoseconds()
	if err := pool.Close(); err != nil {
		return rep, fmt.Errorf("pool close: %w", err)
	}
	ts := pool.TotalStats()
	rep.Parks = ts.Parks
	rep.Wakes = ts.Wakes
	rep.QueueLatency = latencyDigest(&qh)
	rep.ExecLatency = latencyDigest(&eh)
	rep.TotalLatency = latencyDigest(&th)
	if rep.DurationNS > 0 {
		rep.AchievedQPS = float64(rep.Admitted) / (float64(rep.DurationNS) / 1e9)
	}
	return rep, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// WriteServiceBenchJSON writes the report, indented, to w.
func WriteServiceBenchJSON(w io.Writer, r ServiceBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// PrintServiceBench renders the report for terminals.
func PrintServiceBench(w io.Writer, rep ServiceBenchReport) {
	fmt.Fprintf(w, "## %s: %d workers, %d jobs at %.1f QPS target (%.1f achieved)\n",
		rep.Benchmark, rep.Workers, rep.Jobs, rep.TargetQPS, rep.AchievedQPS)
	fmt.Fprintf(w, "host: %s %s/%s, GOMAXPROCS=%d, %d CPUs", rep.GoVersion, rep.GOOS, rep.GOARCH, rep.GoMaxProcs, rep.NumCPU)
	if rep.Underprovisioned {
		fmt.Fprintf(w, "  [UNDERPROVISIONED: %d workers > %d CPUs]", rep.Workers, rep.NumCPU)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "admitted %d / rejected %d over %.2fs; %d tasks executed; oracle mismatches %d; workers exited mid-run %d; parks %d\n",
		rep.Admitted, rep.Rejected, float64(rep.DurationNS)/1e9, rep.TasksExecuted, rep.OracleMismatches, rep.WorkersExitedMidRun, rep.Parks)
	row := func(name string, l ServiceLatency) {
		fmt.Fprintf(w, "%-8s p50 %s  p95 %s  p99 %s  max %s  (mean %s, n=%d)\n",
			name,
			time.Duration(l.P50NS), time.Duration(l.P95NS), time.Duration(l.P99NS),
			time.Duration(l.MaxNS), time.Duration(int64(l.MeanNS)), l.Count)
	}
	row("queue", rep.QueueLatency)
	row("exec", rep.ExecLatency)
	row("total", rep.TotalLatency)
}
