package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uniaddr/internal/workloads"
)

// TestChaosTraceExport is the observability acceptance gate: a chaos
// sweep at a 1% fault rate must export a Perfetto-loadable Chrome
// trace that shows at least one injected fault (on both the initiator's
// and the target's tracks), the retries, and an eventual successful
// steal.
func TestChaosTraceExport(t *testing.T) {
	var trace, summary bytes.Buffer
	obsv := &ChaosObserve{Trace: &trace, Summary: &summary}
	pts, err := ChaosSweepObserved(8,
		[]workloads.Spec{workloads.Fib(14, 50)}, []float64{0.01}, 1, obsv)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].InjectedFaults == 0 {
		t.Fatalf("sweep point did not inject faults: %+v", pts)
	}

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int32  `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(trace.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	faultTids := map[int32]bool{}
	var retries, stealsOK int
	for _, e := range doc.TraceEvents {
		switch e.Name {
		case "fault":
			faultTids[e.Tid] = true
		case "net-retry", "steal-retry":
			retries++
		case "steal":
			if e.Ph == "X" {
				stealsOK++
			}
		}
	}
	if len(faultTids) < 2 {
		t.Errorf("injected faults visible on %d tracks, want both ends (>= 2)", len(faultTids))
	}
	if retries == 0 {
		t.Error("no retry events in the trace")
	}
	if stealsOK == 0 {
		t.Error("no successful steal slices in the trace")
	}
	if !strings.Contains(summary.String(), "chaos artifact:") {
		t.Errorf("summary missing artifact header:\n%s", summary.String())
	}
	if !strings.Contains(summary.String(), "steal latency") {
		t.Errorf("summary missing steal-latency histogram:\n%s", summary.String())
	}
}

// TestEnsureWritableDir covers the fail-early output validation used by
// cmd/uniaddr-bench for -csv and -trace.
func TestEnsureWritableDir(t *testing.T) {
	if err := EnsureWritableDir(t.TempDir() + "/new/nested"); err != nil {
		t.Fatalf("creatable directory rejected: %v", err)
	}
	// A path through an existing *file* can never become a directory.
	f := t.TempDir() + "/occupied"
	if err := writeCSV(f, []string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := EnsureWritableDir(f + "/sub"); err == nil {
		t.Fatal("want error for a directory path through a file")
	}
}
