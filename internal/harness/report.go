package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
)

// ReportRun renders a full post-mortem of one machine run: aggregate
// counters, steal outcome mix, fabric traffic, memory accounting and a
// per-worker table.
func ReportRun(w io.Writer, m *core.Machine, items uint64) {
	st := m.TotalStats()
	cfg := m.Config()
	sec := m.ElapsedSeconds()
	fmt.Fprintf(w, "run: %d workers (%d/node, scheme %s, victim %s, seed %d)\n",
		cfg.Workers, cfg.WorkersPerNode, cfg.Scheme, cfg.Victim, cfg.Seed)
	fmt.Fprintf(w, "simulated time: %.6f s (%d cycles at %.3f GHz)\n",
		sec, m.ElapsedCycles(), cfg.Costs.ClockHz/1e9)
	if items > 0 {
		fmt.Fprintf(w, "throughput: %s items/s\n", stats.HumanCount(float64(items)/sec))
	}
	fmt.Fprintf(w, "tasks: %d executed, %d spawned\n", st.TasksExecuted, st.Spawns)
	fmt.Fprintf(w, "joins: %d fast, %d missed (suspensions %d, wait-queue resumes %d)\n",
		st.JoinsFast, st.JoinsMiss, st.Suspends, st.ResumesWait)
	fmt.Fprintf(w, "steals: %d ok / %d attempts (aborts: %d empty, %d lock, %d slot); %s migrated\n",
		st.StealsOK, st.StealAttempts, st.StealAbortEmpty, st.StealAbortLock, st.StealAbortSlot,
		stats.HumanBytes(st.BytesStolen))
	if st.StealsOK > 0 {
		n := float64(st.StealsOK)
		fmt.Fprintf(w, "steal breakdown (avg cycles): empty %.0f, lock %.0f, steal %.0f, transfer %.0f, unlock %.0f\n",
			float64(st.Phases.EmptyCheck)/n, float64(st.Phases.Lock)/n,
			float64(st.Phases.Steal)/n, float64(st.Phases.StackTransfer)/n,
			float64(st.Phases.Unlock)/n)
	}
	if cfg.Scheme == core.SchemeUni {
		fmt.Fprintf(w, "peak uni-address region usage: %d B of %s reserved\n",
			m.MaxStackUsage(), stats.HumanBytes(cfg.UniSize))
	} else {
		fmt.Fprintf(w, "iso-address page faults: %d (at %d cycles each)\n",
			st.PageFaults, cfg.Costs.PageFaultCycles)
	}
	fmt.Fprintf(w, "memory: max %s VA reserved per process, %s committed total\n",
		stats.HumanBytes(m.MaxReservedBytes()), stats.HumanBytes(m.TotalCommittedBytes()))
	if tr := m.Tracer(); tr != nil {
		tr.RenderUtilization(w)
	}
}

// ReportWorkers renders the per-worker table (tasks, steals, traffic).
func ReportWorkers(w io.Writer, m *core.Machine) {
	fmt.Fprintf(w, "%6s %10s %8s %8s %9s %9s %10s %11s\n",
		"worker", "tasks", "steals", "stolen←", "suspends", "idle%", "rdma-ops", "rdma-bytes")
	elapsed := float64(m.ElapsedCycles())
	for _, wk := range m.Workers() {
		s := wk.Stats()
		net := wk.NetStats()
		idlePct := 0.0
		if elapsed > 0 {
			idlePct = 100 * float64(s.IdleCycles) / elapsed
		}
		fmt.Fprintf(w, "%6d %10d %8d %8d %9d %8.1f%% %10d %11s\n",
			wk.Rank(), s.TasksExecuted, s.StealsOK, s.ParentStolen, s.Suspends, idlePct,
			net.Reads+net.Writes+net.FAAs, stats.HumanBytes(net.BytesRead+net.BytesWritten))
	}
}
