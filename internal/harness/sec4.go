package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

// Sec4Analytic reproduces the paper's §4 back-of-envelope: with W
// workers, task-tree depth D and per-task stack S, iso-address must
// reserve W·D·S bytes of virtual address space in EVERY process (each
// live stack's address is globally unique and reserved everywhere),
// while uni-address reserves only D·S (the deepest chain that can be
// simultaneously live in one address space).
type Sec4Analysis struct {
	Workers    uint64
	Depth      uint64
	StackBytes uint64
	IsoBytes   uint64 // per-process reservation under iso-address
	UniBytes   uint64 // per-process reservation under uni-address
	ExceedsX86 bool   // iso reservation > 2^48 (x86-64 VA limit)
}

// Sec4Paper returns the paper's example: 2^22 workers, tree depth 2^13,
// 16 KiB stacks → 2^49 bytes, past the 2^48 x86-64 limit.
func Sec4Paper() Sec4Analysis {
	return Sec4Analytic(1<<22, 1<<13, 1<<14)
}

// Sec4Analytic computes the analysis for arbitrary parameters.
func Sec4Analytic(workers, depth, stack uint64) Sec4Analysis {
	return Sec4Analysis{
		Workers:    workers,
		Depth:      depth,
		StackBytes: stack,
		IsoBytes:   workers * depth * stack,
		UniBytes:   depth * stack,
		ExceedsX86: workers*depth*stack > 1<<48,
	}
}

// Sec4MeasuredPoint is a measured per-process reservation at one
// machine size.
type Sec4MeasuredPoint struct {
	Workers       int
	IsoReserved   uint64 // max per-process reserved bytes
	UniReserved   uint64
	IsoCommitted  uint64 // total committed (physical) bytes, all processes
	UniCommitted  uint64
	IsoPageFaults uint64
}

// Sec4Measured builds real simulated machines of growing size, runs the
// same workload under both schemes, and reports the actual address-
// space accounting: iso reservations grow linearly with the worker
// count while uni-address stays flat.
func Sec4Measured(workerCounts []int, seed uint64) ([]Sec4MeasuredPoint, error) {
	if len(workerCounts) == 0 {
		workerCounts = []int{8, 16, 32, 64}
	}
	var out []Sec4MeasuredPoint
	for _, p := range workerCounts {
		spec := workloads.BTC(10, 1, 0)
		run := func(k core.SchemeKind) (*core.Machine, error) {
			cfg := core.DefaultConfig(p)
			cfg.Scheme = k
			cfg.Seed = seed
			m, res, err := spec.Run(cfg)
			if err != nil {
				return nil, err
			}
			if res != spec.Expected {
				return nil, fmt.Errorf("scheme %v on %d workers: bad result", k, p)
			}
			return m, nil
		}
		mi, err := run(core.SchemeIso)
		if err != nil {
			return nil, err
		}
		mu, err := run(core.SchemeUni)
		if err != nil {
			return nil, err
		}
		out = append(out, Sec4MeasuredPoint{
			Workers:       p,
			IsoReserved:   mi.MaxReservedBytes(),
			UniReserved:   mu.MaxReservedBytes(),
			IsoCommitted:  mi.TotalCommittedBytes(),
			UniCommitted:  mu.TotalCommittedBytes(),
			IsoPageFaults: mi.TotalStats().PageFaults,
		})
	}
	return out, nil
}

// PrintSec4 renders both the analytic and the measured comparison.
func PrintSec4(w io.Writer, an Sec4Analysis, pts []Sec4MeasuredPoint) {
	fmt.Fprintf(w, "§4/§5: virtual address space for thread migration\n")
	fmt.Fprintf(w, "Analytic (paper example: %d workers, depth %d, %s stacks):\n",
		an.Workers, an.Depth, stats.HumanBytes(an.StackBytes))
	fmt.Fprintf(w, "  iso-address per-process reservation: %s (2^%.0f bytes)%s\n",
		stats.HumanBytes(an.IsoBytes), log2u(an.IsoBytes), exceedNote(an.ExceedsX86))
	fmt.Fprintf(w, "  uni-address per-process reservation: %s\n", stats.HumanBytes(an.UniBytes))
	if len(pts) > 0 {
		fmt.Fprintf(w, "Measured on simulated machines (BTC d=10, per-process reservation incl. fixed regions):\n")
		fmt.Fprintf(w, "  %8s %14s %14s %14s %14s %10s\n",
			"workers", "iso reserved", "uni reserved", "iso committed", "uni committed", "iso faults")
		for _, p := range pts {
			fmt.Fprintf(w, "  %8d %14s %14s %14s %14s %10d\n",
				p.Workers, stats.HumanBytes(p.IsoReserved), stats.HumanBytes(p.UniReserved),
				stats.HumanBytes(p.IsoCommitted), stats.HumanBytes(p.UniCommitted), p.IsoPageFaults)
		}
	}
}

func exceedNote(b bool) string {
	if b {
		return "  — EXCEEDS the 2^48 x86-64 virtual address space"
	}
	return ""
}

func log2u(v uint64) float64 {
	n := 0.0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
