package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDifferentialSimVsRT is the acceptance gate for the rt backend:
// every workload, both backends, 3 seeds × {1,2,4,8} workers, identical
// root results. The sim is the oracle; the rt runs execute under real
// concurrency (and under -race in CI).
func TestDifferentialSimVsRT(t *testing.T) {
	workerCounts := []int{1, 2, 4, 8}
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		workerCounts = []int{1, 4}
		seeds = []uint64{1, 2, 3}
	}
	rep, err := RunDifferential(DiffWorkloads(), workerCounts, seeds, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Skipped {
			t.Logf("skipped %s: %s", row.Workload, row.SkipReason)
			continue
		}
		if !row.Match {
			t.Errorf("%s workers=%d seed=%d: sim=%d rt=%d",
				row.Workload, row.Workers, row.Seed, row.SimResult, row.GotResult)
		}
		if row.Expected != 0 && row.SimResult != row.Expected {
			t.Errorf("%s workers=%d seed=%d: sim=%d disagrees with sequential reference %d",
				row.Workload, row.Workers, row.Seed, row.SimResult, row.Expected)
		}
	}
	if rep.Compared == 0 {
		t.Fatal("differential sweep compared nothing")
	}
	if rep.Skipped == 0 {
		t.Error("expected gas-dependent workloads to be reported as skipped")
	}
	// Every skip must carry a reason — satellite requirement: no silent
	// omissions.
	for _, row := range rep.Rows {
		if row.Skipped && row.SkipReason == "" {
			t.Errorf("%s skipped without a reason", row.Workload)
		}
	}
}

// TestDiffWorkloadsCoverCatalog pins the differential catalog to the
// full workload family list, so adding a workload without wiring it
// into the oracle fails loudly.
func TestDiffWorkloadsCoverCatalog(t *testing.T) {
	want := []string{"fib", "btc", "btc-padded", "uts", "uts-binomial", "nqueens", "pingpong", "mergesort", "globalsum"}
	got := DiffWorkloads()
	if len(got) != len(want) {
		t.Fatalf("catalog has %d workloads, want %d", len(got), len(want))
	}
	for i, wl := range got {
		if wl.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, wl.Name, want[i])
		}
	}
}

func TestRTBenchReportJSON(t *testing.T) {
	rep, err := RunRTBench(DiffWorkloads(), []int{1, 2}, 1, 1, true, BenchTuning{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("bench produced no rows")
	}
	if len(rep.Skipped) == 0 {
		t.Error("gas-dependent workloads missing from skipped list")
	}
	for _, row := range rep.Rows {
		if row.WallNS <= 0 {
			t.Errorf("%s workers=%d: wall_ns %d", row.Workload, row.Workers, row.WallNS)
		}
		if row.TasksPerSec <= 0 {
			t.Errorf("%s workers=%d: tasks_per_second %f", row.Workload, row.Workers, row.TasksPerSec)
		}
	}
	var buf bytes.Buffer
	if err := WriteRTBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var round RTBenchReport
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("BENCH_rt.json does not round-trip: %v", err)
	}
	if len(round.Rows) != len(rep.Rows) || len(round.Skipped) != len(rep.Skipped) {
		t.Fatalf("round-trip lost rows: %d/%d vs %d/%d",
			len(round.Rows), len(round.Skipped), len(rep.Rows), len(rep.Skipped))
	}
	if !strings.Contains(buf.String(), "\"reason\"") {
		t.Error("skip reasons missing from JSON")
	}
}
