package harness

import (
	"fmt"

	"uniaddr/internal/core"
	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// Differential testing: the deterministic virtual-time simulator is the
// semantic oracle for the real backends — rt (threads in one process)
// and dist (one process per worker over shared memory). All backends
// execute the exact same registered task functions, so for every
// workload, worker count and seed the root results must be identical —
// any divergence means the backend broke the task semantics (lost a
// steal, resumed a stale frame, torn a record) in a way its own tests
// didn't catch.

// DiffWorkload pairs a stable row name with a workload Spec.
type DiffWorkload struct {
	Name string
	Spec workloads.Spec
}

// DiffWorkloads returns the differential catalog: every workload family
// in internal/workloads at a scale small enough to run the full
// (workload × workers × seed) matrix in a unit test. Gas-dependent
// workloads are included on purpose — the harness must *report* that it
// skips them on rt, not silently omit them.
func DiffWorkloads() []DiffWorkload {
	return []DiffWorkload{
		{"fib", workloads.Fib(14, 10)},
		{"btc", workloads.BTC(8, 2, 10)},
		{"btc-padded", workloads.BTCPadded(7, 1, 10, 2048)},
		{"uts", workloads.UTS(19, 5, workloads.DefaultUTSB0, 10)},
		{"uts-binomial", workloads.UTSBinomial(42, 4, 2, 0.35, 10)},
		{"nqueens", workloads.NQueens(6, 10)},
		{"pingpong", workloads.PingPong(16, 50, 0)},
		{"mergesort", workloads.MergeSort(1<<10, 1<<7, 4)},
		{"globalsum", workloads.GlobalSum(1<<10, 1<<7, 4)},
	}
}

// RTSkipReason explains why a Spec cannot run on the rt backend, or ""
// if it can. Centralised so the differential harness and the rt bench
// report identical reasons.
func RTSkipReason(s workloads.Spec) string {
	if s.Setup != nil {
		return "requires machine Setup (global-heap staging); sim-only until rt grows a shared heap"
	}
	return ""
}

// DiffRow is one (workload, workers, seed) comparison. GotResult is the
// backend-under-test's root result (the report's Backend field says
// which backend that was).
type DiffRow struct {
	Workload   string `json:"workload"`
	Workers    int    `json:"workers"`
	Seed       uint64 `json:"seed"`
	Skipped    bool   `json:"skipped,omitempty"`
	SkipReason string `json:"skip_reason,omitempty"`
	SimResult  uint64 `json:"sim_result,omitempty"`
	GotResult  uint64 `json:"got_result,omitempty"`
	Expected   uint64 `json:"expected,omitempty"`
	Match      bool   `json:"match"`
}

// DiffReport aggregates a differential sweep against one backend.
type DiffReport struct {
	Backend    string    `json:"backend"`
	Rows       []DiffRow `json:"rows"`
	Compared   int       `json:"compared"`
	Mismatches int       `json:"mismatches"`
	Skipped    int       `json:"skipped"`
}

// DiffBackend abstracts the backend under differential test. The sim is
// always the oracle side; this is the other side. Skip explains why a
// workload cannot run on this backend ("" = it can); Run executes the
// workload and returns the root result, erroring only on infrastructure
// failure (a wrong ANSWER is the harness's job to detect, not Run's).
type DiffBackend struct {
	Name string
	Skip func(workloads.Spec) string
	Run  func(spec workloads.Spec, workers int, seed uint64) (uint64, error)
}

// RTDiffBackend is the in-process real-parallelism backend as a
// differential target. noPin disables OS-thread pinning, which test
// runs want.
func RTDiffBackend(noPin bool) DiffBackend {
	return DiffBackend{
		Name: "rt",
		Skip: RTSkipReason,
		Run: func(spec workloads.Spec, workers int, seed uint64) (uint64, error) {
			cfg := rt.DefaultConfig(workers)
			cfg.Seed = seed
			cfg.NoPin = noPin
			r := rt.New(cfg)
			res, err := r.Run(spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				return 0, err
			}
			if err := r.CheckQuiescence(); err != nil {
				return 0, err
			}
			return res, nil
		},
	}
}

// RunDifferentialBackend runs every workload on the sim oracle and on b
// for every (workers, seed) combination and compares root results.
// Workloads b cannot execute produce one skipped row each (with the
// reason) instead of disappearing. The returned error is non-nil only
// for infrastructure failures; result mismatches are reported in the
// rows so the caller can print all of them, not just the first.
func RunDifferentialBackend(b DiffBackend, wls []DiffWorkload, workerCounts []int, seeds []uint64) (DiffReport, error) {
	rep := DiffReport{Backend: b.Name}
	for _, wl := range wls {
		if reason := b.Skip(wl.Spec); reason != "" {
			rep.Rows = append(rep.Rows, DiffRow{Workload: wl.Name, Skipped: true, SkipReason: reason})
			rep.Skipped++
			continue
		}
		for _, workers := range workerCounts {
			for _, seed := range seeds {
				row := DiffRow{Workload: wl.Name, Workers: workers, Seed: seed, Expected: wl.Spec.Expected}

				scfg := core.DefaultConfig(workers)
				scfg.Seed = seed
				_, simRes, err := wl.Spec.Run(scfg)
				if err != nil {
					return rep, fmt.Errorf("sim %s workers=%d seed=%d: %w", wl.Name, workers, seed, err)
				}
				row.SimResult = simRes

				got, err := b.Run(wl.Spec, workers, seed)
				if err != nil {
					return rep, fmt.Errorf("%s %s workers=%d seed=%d: %w", b.Name, wl.Name, workers, seed, err)
				}
				row.GotResult = got

				row.Match = simRes == got
				if !row.Match {
					rep.Mismatches++
				}
				rep.Compared++
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}

// RunDifferential is the sim-vs-rt matrix (see RunDifferentialBackend).
func RunDifferential(wls []DiffWorkload, workerCounts []int, seeds []uint64, noPin bool) (DiffReport, error) {
	return RunDifferentialBackend(RTDiffBackend(noPin), wls, workerCounts, seeds)
}
