package harness

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/obs"
	"uniaddr/internal/workloads"
)

// Chaos harness: run the paper's workloads under sweeping fault rates
// and assert the three robustness invariants on every point —
//
//  1. determinism: two runs with identical seeds produce identical
//     traces (checked via a fingerprint over every worker's timeline,
//     the final result and the virtual clock);
//  2. correctness: the root result matches the sequential reference no
//     matter how many steals were retried, rolled back or abandoned;
//  3. quiescence: after recovery the machine passes CheckQuiescence —
//     no lost or duplicated continuations, no leaked records.
//
// A violated invariant returns an error (the harness is a test, not a
// report generator), so `-exp chaos` doubles as a regression gate.

// DefaultChaosRates is the default fault-rate sweep. Zero is included
// deliberately: it pins the fault-free baseline (no injector attached)
// against which the faulted runs' results are compared.
var DefaultChaosRates = []float64{0, 0.001, 0.01, 0.05}

// ChaosFaultConfig builds an injector config where every per-op fault
// source fires at rate, latency spikes add 1–20K cycles, and endpoints
// are browned out for a rate-sized fraction of every 4M-cycle window.
func ChaosFaultConfig(rate float64) fault.Config {
	if rate <= 0 {
		return fault.Config{}
	}
	return fault.Config{
		ReadFailProb:     rate,
		WriteFailProb:    rate,
		FAAFailProb:      rate,
		ServerDropProb:   rate,
		SpikeProb:        rate,
		SpikeMinCycles:   1_000,
		SpikeMaxCycles:   20_000,
		BrownoutPeriod:   4_000_000,
		BrownoutDuration: uint64(rate * 4_000_000),
	}
}

// ChaosWorkloads returns the fib / NQueens / UTS specs swept by the
// chaos harness at a problem scale.
func ChaosWorkloads(scale string) []workloads.Spec {
	switch scale {
	case "tiny":
		return []workloads.Spec{
			workloads.Fib(14, 50),
			workloads.NQueens(7, 100),
			workloads.UTS(1, 6, workloads.DefaultUTSB0, 400),
		}
	case "large":
		return []workloads.Spec{
			workloads.Fib(30, 0),
			workloads.NQueens(12, 100),
			workloads.UTS(1, 14, workloads.DefaultUTSB0, 400),
		}
	default: // small
		return []workloads.Spec{
			workloads.Fib(20, 100),
			workloads.NQueens(9, 100),
			workloads.UTS(1, 10, workloads.DefaultUTSB0, 400),
		}
	}
}

// ChaosPoint is one (workload, fault rate) cell of the sweep.
type ChaosPoint struct {
	Workload      string
	Rate          float64
	ElapsedCycles uint64
	Fingerprint   uint64
	Deterministic bool // second same-seed run fingerprinted identically

	StealsOK         uint64
	StealFaults      uint64
	StealRetries     uint64
	StealRollbacks   uint64
	StealAbortsFault uint64
	VictimBlacklists uint64
	LifelineFaults   uint64

	InjectedFaults uint64 // fabric ops failed by the injector
	NetRetries     uint64 // reliable-op transparent retries
	FAATimeouts    uint64 // software FAAs abandoned by the initiator
}

// RunFingerprint hashes everything observable about a completed run:
// the root result, the virtual clock, the task/steal accounting and —
// when tracing was on — every worker's full execution timeline. Two
// same-seed runs must collide exactly; any divergence in event order
// shows up as a different segment boundary somewhere.
func RunFingerprint(m *core.Machine, result uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(result)
	put(m.ElapsedCycles())
	st := m.TotalStats()
	put(st.TasksExecuted)
	put(st.Spawns)
	put(st.StealsOK)
	put(st.StealFaults)
	put(st.StealRetries)
	put(st.StealRollbacks)
	put(st.StealAbortsFault)
	put(st.BackoffCycles)
	ns := m.TotalNetStats()
	put(ns.Reads)
	put(ns.Writes)
	put(ns.FAAs)
	put(ns.InjectedFaults)
	put(ns.Retries)
	put(ns.FAATimeouts)
	if tr := m.Tracer(); tr != nil {
		for _, lane := range tr.Lanes() {
			for _, s := range lane.Segments() {
				put(s.Start)
				put(s.End)
				put(uint64(s.State))
			}
		}
	}
	return h.Sum64()
}

func chaosRun(spec workloads.Spec, workers int, seed uint64, rate float64) (*core.Machine, uint64, error) {
	cfg := core.DefaultConfig(workers)
	cfg.Seed = seed
	cfg.Trace = true
	cfg.Fault = ChaosFaultConfig(rate)
	return spec.Run(cfg)
}

// ChaosObserve requests observability artifacts from a chaos sweep:
// the Chrome trace-event JSON (Perfetto-loadable) and/or compact text
// summary of one representative faulted run. The sweep prefers a run
// that exhibits the full failure story — at least one injected steal
// fault, a retry, and an eventual successful steal — falling back to
// any faulted run, so the exported timeline shows the fault, its
// retries and the recovery side by side on the victim's and thief's
// tracks.
type ChaosObserve struct {
	Trace   io.Writer // Chrome trace JSON destination (nil = skip)
	Summary io.Writer // text summary destination (nil = skip)
}

// ChaosSweep runs every workload at every fault rate, each point twice
// with the same seed, asserting the three invariants. It errors out on
// the first violation.
func ChaosSweep(workers int, specs []workloads.Spec, rates []float64, seed uint64) ([]ChaosPoint, error) {
	return ChaosSweepObserved(workers, specs, rates, seed, nil)
}

// ChaosSweepObserved is ChaosSweep with optional artifact export (see
// ChaosObserve; nil behaves exactly like ChaosSweep).
func ChaosSweepObserved(workers int, specs []workloads.Spec, rates []float64, seed uint64, obsv *ChaosObserve) ([]ChaosPoint, error) {
	if len(rates) == 0 {
		rates = DefaultChaosRates
	}
	var pts []ChaosPoint
	// Representative faulted run for artifact export: highest score
	// wins, earliest sweep order breaks ties (deterministic).
	var obsM *core.Machine
	var obsTag string
	obsScore := 0
	for _, spec := range specs {
		for _, rate := range rates {
			tag := fmt.Sprintf("%s at rate %g on %d workers", spec.Name, rate, workers)
			m, res, err := chaosRun(spec, workers, seed, rate)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s: %w", tag, err)
			}
			if res != spec.Expected {
				return nil, fmt.Errorf("chaos: %s: result %d != sequential reference %d", tag, res, spec.Expected)
			}
			if err := m.CheckQuiescence(); err != nil {
				return nil, fmt.Errorf("chaos: %s: %w", tag, err)
			}
			fp := RunFingerprint(m, res)
			m2, res2, err := chaosRun(spec, workers, seed, rate)
			if err != nil {
				return nil, fmt.Errorf("chaos: %s (replay): %w", tag, err)
			}
			fp2 := RunFingerprint(m2, res2)
			if fp != fp2 {
				return nil, fmt.Errorf("chaos: %s: same-seed replay diverged (fingerprint %#x != %#x)", tag, fp, fp2)
			}
			st := m.TotalStats()
			ns := m.TotalNetStats()
			pts = append(pts, ChaosPoint{
				Workload:      spec.Name,
				Rate:          rate,
				ElapsedCycles: m.ElapsedCycles(),
				Fingerprint:   fp,
				Deterministic: true,

				StealsOK:         st.StealsOK,
				StealFaults:      st.StealFaults,
				StealRetries:     st.StealRetries,
				StealRollbacks:   st.StealRollbacks,
				StealAbortsFault: st.StealAbortsFault,
				VictimBlacklists: st.VictimBlacklists,
				LifelineFaults:   st.LifelineFaults,

				InjectedFaults: ns.InjectedFaults,
				NetRetries:     ns.Retries,
				FAATimeouts:    ns.FAATimeouts,
			})
			if obsv != nil && rate > 0 && ns.InjectedFaults > 0 {
				score := 1
				if st.StealFaults > 0 {
					score = 2
				}
				if st.StealFaults > 0 && st.StealRetries > 0 && st.StealsOK > 0 {
					score = 3
				}
				if score > obsScore {
					obsScore = score
					obsM = m
					obsTag = tag
				}
			}
		}
	}
	if obsv != nil && obsM != nil {
		opts := &obs.ChromeOpts{
			FuncName: func(id uint32) string { return core.FuncName(core.FuncID(id)) },
			Label:    "chaos: " + obsTag,
		}
		if obsv.Trace != nil {
			if err := obs.WriteChromeTrace(obsv.Trace, obsM.Obs(), opts); err != nil {
				return pts, fmt.Errorf("chaos: trace export: %w", err)
			}
		}
		if obsv.Summary != nil {
			fmt.Fprintf(obsv.Summary, "chaos artifact: %s\n", obsTag)
			obs.WriteSummary(obsv.Summary, obsM.Obs(), opts.FuncName)
		}
	}
	return pts, nil
}

// PrintChaos renders the sweep, one block per workload.
func PrintChaos(w io.Writer, workers int, pts []ChaosPoint) {
	fmt.Fprintf(w, "Chaos sweep (%d workers): deterministic fault injection on the RDMA fabric\n", workers)
	fmt.Fprintf(w, "  every point: result == sequential reference, quiescence clean,\n")
	fmt.Fprintf(w, "  and a same-seed replay reproduced the identical trace fingerprint\n")
	last := ""
	for _, p := range pts {
		if p.Workload != last {
			fmt.Fprintf(w, "  %s\n", p.Workload)
			fmt.Fprintf(w, "    %7s %12s %10s %8s %8s %9s %8s %7s %10s %16s\n",
				"rate", "cycles", "injected", "retries", "faults", "rollback", "aborts", "bans", "faa-tmo", "fingerprint")
			last = p.Workload
		}
		fmt.Fprintf(w, "    %7g %12d %10d %8d %8d %9d %8d %7d %10d %#16x\n",
			p.Rate, p.ElapsedCycles, p.InjectedFaults, p.NetRetries,
			p.StealFaults, p.StealRollbacks, p.StealAbortsFault,
			p.VictimBlacklists, p.FAATimeouts, p.Fingerprint)
	}
	fmt.Fprintf(w, "  (injected = fabric ops failed; retries = transparent reliable-op retries;\n")
	fmt.Fprintf(w, "   faults/rollback/aborts = steal-protocol events; bans = victim blacklistings)\n")
}
