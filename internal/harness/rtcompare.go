package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
)

// Baseline comparison for the rt bench: load a committed BENCH_rt
// report (the pre-optimization numbers) and emit a before/after delta
// table, so a performance PR carries its own evidence. Rows are matched
// by (workload, workers); rows present on only one side are reported,
// never silently dropped — a vanished row usually means a workload was
// renamed or a worker count changed, which a reviewer should see.

// RTBenchDelta is one matched (workload, workers) pair across two
// reports.
type RTBenchDelta struct {
	Workload string `json:"workload"`
	Workers  int    `json:"workers"`

	BaseWallNS int64 `json:"base_wall_ns"`
	CurWallNS  int64 `json:"cur_wall_ns"`
	// Speedup is base wall / current wall: > 1 means the current run is
	// faster. TasksPerSecRatio is the same comparison in throughput
	// terms (cur / base). MeanSpeedup compares mean-of-reps walls,
	// where idle-worker interference shows up long before it moves the
	// best-of minimum (0 when either side predates the mean field).
	Speedup          float64 `json:"speedup"`
	MeanSpeedup      float64 `json:"mean_speedup,omitempty"`
	TasksPerSecRatio float64 `json:"tasks_per_sec_ratio"`

	BaseAbortEmpty uint64 `json:"base_steal_abort_empty"`
	CurAbortEmpty  uint64 `json:"cur_steal_abort_empty"`
	BaseAbortLock  uint64 `json:"base_steal_abort_lock"`
	CurAbortLock   uint64 `json:"cur_steal_abort_lock"`
	BaseStealsOK   uint64 `json:"base_steals_ok"`
	CurStealsOK    uint64 `json:"cur_steals_ok"`
	CurParks       uint64 `json:"cur_parks,omitempty"`

	// Underprovisioned marks a pair where either side ran with more
	// workers than its host's CPUs — the speedup then compares
	// time-slicing regimes, not the scheduler, and must be discounted.
	BaseUnderprovisioned bool `json:"base_underprovisioned,omitempty"`
	CurUnderprovisioned  bool `json:"cur_underprovisioned,omitempty"`
}

// RTBenchComparison pairs the deltas with the rows that had no partner
// on the other side.
type RTBenchComparison struct {
	Deltas       []RTBenchDelta `json:"deltas"`
	BaseOnly     []RTBenchRow   `json:"base_only,omitempty"`
	CurrentOnly  []RTBenchRow   `json:"current_only,omitempty"`
	BaseMachine  string         `json:"base_machine"`
	CurMachine   string         `json:"cur_machine"`
	MachineMatch bool           `json:"machine_match"`
}

func rtMachineID(r RTBenchReport) string {
	id := fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d", r.GoMaxProcs, r.NumCPU)
	// Toolchain/platform provenance was added later; reports predating
	// it keep the short form so machine matching stays backward
	// compatible (an old baseline vs a tagged current run still compares
	// the CPU topology, the part that moves wall clocks).
	if r.GoVersion != "" {
		id += fmt.Sprintf(" %s %s/%s", r.GoVersion, r.GOOS, r.GOARCH)
	}
	return id
}

// rtMachineMatch compares only the fields both reports carry, so a
// provenance-tagged run still matches an untagged committed baseline
// from the same host.
func rtMachineMatch(base, cur RTBenchReport) bool {
	if base.GoMaxProcs != cur.GoMaxProcs || base.NumCPU != cur.NumCPU {
		return false
	}
	if base.GoVersion == "" || cur.GoVersion == "" {
		return true
	}
	return base.GoVersion == cur.GoVersion && base.GOOS == cur.GOOS && base.GOARCH == cur.GOARCH
}

// ReadRTBenchJSON loads a report written by WriteRTBenchJSON.
func ReadRTBenchJSON(path string) (RTBenchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return RTBenchReport{}, fmt.Errorf("rt bench baseline: %w", err)
	}
	var r RTBenchReport
	if err := json.Unmarshal(b, &r); err != nil {
		return RTBenchReport{}, fmt.Errorf("rt bench baseline %s: %w", path, err)
	}
	if r.Benchmark == "" || len(r.Rows) == 0 {
		return RTBenchReport{}, fmt.Errorf("rt bench baseline %s: no rows (not a BENCH_rt report?)", path)
	}
	return r, nil
}

// CompareRTBench matches rows of base and cur by (workload, workers)
// and computes wall-clock and steal-churn deltas.
func CompareRTBench(base, cur RTBenchReport) RTBenchComparison {
	cmp := RTBenchComparison{
		BaseMachine:  rtMachineID(base),
		CurMachine:   rtMachineID(cur),
		MachineMatch: rtMachineMatch(base, cur),
	}
	type key struct {
		wl string
		w  int
	}
	baseRows := make(map[key]RTBenchRow, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[key{r.Workload, r.Workers}] = r
	}
	matched := make(map[key]bool, len(cur.Rows))
	for _, c := range cur.Rows {
		k := key{c.Workload, c.Workers}
		b, ok := baseRows[k]
		if !ok {
			cmp.CurrentOnly = append(cmp.CurrentOnly, c)
			continue
		}
		matched[k] = true
		d := RTBenchDelta{
			Workload:       c.Workload,
			Workers:        c.Workers,
			BaseWallNS:     b.WallNS,
			CurWallNS:      c.WallNS,
			BaseAbortEmpty: b.StealAbortEmpty,
			CurAbortEmpty:  c.StealAbortEmpty,
			BaseAbortLock:  b.StealAbortLock,
			CurAbortLock:   c.StealAbortLock,
			BaseStealsOK:   b.StealsOK,
			CurStealsOK:    c.StealsOK,
			CurParks:       c.Parks,

			BaseUnderprovisioned: b.Underprovisioned,
			CurUnderprovisioned:  c.Underprovisioned,
		}
		if c.WallNS > 0 {
			d.Speedup = float64(b.WallNS) / float64(c.WallNS)
		}
		if b.MeanWallNS > 0 && c.MeanWallNS > 0 {
			d.MeanSpeedup = float64(b.MeanWallNS) / float64(c.MeanWallNS)
		}
		if b.TasksPerSec > 0 {
			d.TasksPerSecRatio = c.TasksPerSec / b.TasksPerSec
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, b := range base.Rows {
		if !matched[key{b.Workload, b.Workers}] {
			cmp.BaseOnly = append(cmp.BaseOnly, b)
		}
	}
	return cmp
}

// PrintRTBenchCompare renders the delta table. Speedup > 1 means the
// current build is faster than the baseline.
func PrintRTBenchCompare(w io.Writer, cmp RTBenchComparison) {
	fmt.Fprintf(w, "baseline comparison (speedup = baseline wall / current wall; >1 is faster)\n")
	if !cmp.MachineMatch {
		fmt.Fprintf(w, "WARNING: machine mismatch — baseline %s vs current %s; wall-clock ratios are not meaningful across machines\n",
			cmp.BaseMachine, cmp.CurMachine)
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tworkers\tbase ms\tcur ms\tspeedup\tmean ×\ttasks/s ×\tabort-empty\tabort-lock\tsteals\tparks")
	var underprovisioned bool
	for _, d := range cmp.Deltas {
		mean := "-"
		if d.MeanSpeedup > 0 {
			mean = fmt.Sprintf("%.2fx", d.MeanSpeedup)
		}
		mark := ""
		if d.BaseUnderprovisioned || d.CurUnderprovisioned {
			mark, underprovisioned = "*", true
		}
		fmt.Fprintf(tw, "%s\t%d%s\t%.2f\t%.2f\t%.2fx\t%s\t%.2fx\t%d → %d\t%d → %d\t%d → %d\t%d\n",
			d.Workload, d.Workers, mark,
			float64(d.BaseWallNS)/1e6, float64(d.CurWallNS)/1e6,
			d.Speedup, mean, d.TasksPerSecRatio,
			d.BaseAbortEmpty, d.CurAbortEmpty,
			d.BaseAbortLock, d.CurAbortLock,
			d.BaseStealsOK, d.CurStealsOK,
			d.CurParks)
	}
	tw.Flush()
	if underprovisioned {
		fmt.Fprintf(w, "* underprovisioned on at least one side (more workers than host CPUs); speedup reflects time-slicing, not the scheduler\n")
	}
	for _, r := range cmp.BaseOnly {
		fmt.Fprintf(w, "baseline-only row (not measured in this run): %s workers=%d\n", r.Workload, r.Workers)
	}
	for _, r := range cmp.CurrentOnly {
		fmt.Fprintf(w, "new row (absent from baseline): %s workers=%d\n", r.Workload, r.Workers)
	}
}

// WriteRTBenchCompareJSON writes the comparison, indented, to w — the
// machine-readable twin of PrintRTBenchCompare for CI artifacts.
func WriteRTBenchCompareJSON(w io.Writer, cmp RTBenchComparison) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cmp)
}
