package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/workloads"
)

// StealBreakdown is the Fig. 10 / Table 3 result: average cycles per
// successful inter-node steal, split by operation.
type StealBreakdown struct {
	Scheme     core.SchemeKind
	Steals     uint64
	EmptyCheck float64
	Lock       float64
	Steal      float64
	Suspend    float64
	Transfer   float64
	Unlock     float64
	Resume     float64
	AvgBytes   float64
}

// Total returns the average end-to-end steal time.
func (b StealBreakdown) Total() float64 {
	return b.EmptyCheck + b.Lock + b.Steal + b.Suspend + b.Transfer + b.Unlock + b.Resume
}

// Fig10 runs the two-worker ping-pong microbenchmark (§6.3): the
// paper's setup where two workers steal a single thread — stack padded
// to 3055 bytes — from each other, and the per-phase times of the steal
// are measured. childWork controls how long the child computes, giving
// the other worker time to steal the parent.
func Fig10(scheme core.SchemeKind, iters uint64) (StealBreakdown, error) {
	spec := workloads.PingPong(iters, 120_000, workloads.PingPongStackBytes)
	cfg := twoNodeConfig(scheme, 42)
	m, res, err := spec.Run(cfg)
	if err != nil {
		return StealBreakdown{}, err
	}
	if res != spec.Expected {
		return StealBreakdown{}, fmt.Errorf("harness: ping-pong returned %d, want %d", res, spec.Expected)
	}
	st := m.TotalStats()
	if st.StealsOK == 0 {
		return StealBreakdown{}, fmt.Errorf("harness: ping-pong produced no steals")
	}
	n := float64(st.StealsOK)
	bd := StealBreakdown{
		Scheme:     scheme,
		Steals:     st.StealsOK,
		EmptyCheck: float64(st.Phases.EmptyCheck) / n,
		Lock:       float64(st.Phases.Lock) / n,
		Steal:      float64(st.Phases.Steal) / n,
		Transfer:   float64(st.Phases.StackTransfer) / n,
		Unlock:     float64(st.Phases.Unlock) / n,
		AvgBytes:   float64(st.BytesStolen) / n,
	}
	if st.Suspends > 0 {
		bd.Suspend = float64(st.SuspendCycles) / float64(st.Suspends)
	}
	if resumes := st.StealsOK + st.ResumesWait; resumes > 0 {
		bd.Resume = float64(st.ResumeCycles) / float64(resumes)
	}
	return bd, nil
}

// PrintFig10 renders the breakdown like Fig. 10's stacked bar plus the
// Table 3 operation list.
func PrintFig10(w io.Writer, b StealBreakdown) {
	fmt.Fprintf(w, "Figure 10 / Table 3: work stealing breakdown (%s, %d steals, avg stolen stack %.0f B)\n",
		b.Scheme, b.Steals, b.AvgBytes)
	total := b.Total()
	row := func(name string, v float64) {
		fmt.Fprintf(w, "  %-15s %9.0f cycles  %5.1f%%\n", name, v, 100*v/total)
	}
	row("empty check", b.EmptyCheck)
	row("lock", b.Lock)
	row("steal", b.Steal)
	row("suspend", b.Suspend)
	row("stack transfer", b.Transfer)
	row("unlock", b.Unlock)
	row("resume", b.Resume)
	fmt.Fprintf(w, "  %-15s %9.0f cycles (paper: ~42K; suspend+resume %.1f%%, paper: 7.7%%)\n",
		"TOTAL", total, 100*(b.Suspend+b.Resume)/total)
}

// migrationBreakdown runs a padded BTC tree on a small machine so that
// every steal migrates a *different* thread at a different address —
// unlike the ping-pong, whose single thread would let iso-address
// amortise its first-touch faults after one round trip. This matches
// the paper's §4 premise for the 71% estimate: iso migrations keep
// faulting because live stacks spread over the reserved range.
func migrationBreakdown(scheme core.SchemeKind, depth uint64) (StealBreakdown, error) {
	spec := workloads.BTCPadded(depth, 1, 20_000, workloads.PingPongStackBytes)
	cfg := core.DefaultConfig(8)
	cfg.WorkersPerNode = 1
	cfg.Scheme = scheme
	cfg.Seed = 42
	m, res, err := spec.Run(cfg)
	if err != nil {
		return StealBreakdown{}, err
	}
	if res != spec.Expected {
		return StealBreakdown{}, fmt.Errorf("harness: migration bench returned %d, want %d", res, spec.Expected)
	}
	st := m.TotalStats()
	if st.StealsOK == 0 {
		return StealBreakdown{}, fmt.Errorf("harness: migration bench produced no steals")
	}
	n := float64(st.StealsOK)
	bd := StealBreakdown{
		Scheme:     scheme,
		Steals:     st.StealsOK,
		EmptyCheck: float64(st.Phases.EmptyCheck) / n,
		Lock:       float64(st.Phases.Lock) / n,
		Steal:      float64(st.Phases.Steal) / n,
		Transfer:   float64(st.Phases.StackTransfer) / n,
		Unlock:     float64(st.Phases.Unlock) / n,
		AvgBytes:   float64(st.BytesStolen) / n,
	}
	if st.Suspends > 0 {
		bd.Suspend = float64(st.SuspendCycles) / float64(st.Suspends)
	}
	if resumes := st.StealsOK + st.ResumesWait; resumes > 0 {
		bd.Resume = float64(st.ResumeCycles) / float64(resumes)
	}
	return bd, nil
}

// IsoVsUni measures the per-steal migration cost under both schemes and
// returns (uni, iso, ratio): the paper's §6.3 estimate is uni ≈ 71% of
// iso, driven by iso's 21K-cycle page faults and two-sided transfer.
func IsoVsUni(depth uint64) (uni, iso StealBreakdown, ratio float64, err error) {
	if depth == 0 {
		depth = 12
	}
	uni, err = migrationBreakdown(core.SchemeUni, depth)
	if err != nil {
		return
	}
	iso, err = migrationBreakdown(core.SchemeIso, depth)
	if err != nil {
		return
	}
	ratio = uni.Total() / iso.Total()
	return
}

// PrintIsoVsUni renders the comparison.
func PrintIsoVsUni(w io.Writer, uni, iso StealBreakdown, ratio float64) {
	fmt.Fprintf(w, "§6.3: uni-address vs iso-address steal time\n")
	fmt.Fprintf(w, "  uni-address: %8.0f cycles/steal\n", uni.Total())
	fmt.Fprintf(w, "  iso-address: %8.0f cycles/steal (incl. %0.f-cycle page faults + victim assist)\n",
		iso.Total(), 21000.0)
	fmt.Fprintf(w, "  ratio uni/iso = %.2f (paper's estimate: 0.71)\n", ratio)
}
