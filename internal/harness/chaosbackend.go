package harness

import (
	"errors"
	"fmt"
	"io"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/dist"
	"uniaddr/internal/fault"
	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// Backend-generalised chaos: the sim-only sweep in chaos.go proved the
// resilience protocol under virtual time; this file runs the same shape
// of matrix — (schedule × workload × seed) cells, each with a verdict —
// against ANY backend, including the real ones, with real wall-clock
// deadlines. The acceptance contract per cell is the ISSUE's bounded-
// time failure guarantee:
//
//   - the run completes with the oracle's root result, OR
//   - it returns a STRUCTURED, TYPED error, AND
//   - either way it does so within the cell's deadline — never a hang.
//
// Schedules that inject unsurvivable faults (SIGKILL, a wedged worker)
// set WantErr: there a "successful" run is the failure, because it
// means the injection never happened.

// ChaosSchedule is one fault scenario of the matrix. The zero value of
// every injection field means "don't".
type ChaosSchedule struct {
	Name  string
	Fault fault.Config
	// Kill SIGKILLs these child ranks After into the run (dist only).
	Kill []int
	// Hang wedges this child rank After into the run: alive, silent,
	// heartbeats stopped (dist only).
	Hang  int
	After time.Duration
	// Heartbeat overrides the dist heartbeat timeout so hang detection
	// is fast enough to measure.
	Heartbeat time.Duration
	// WantErr: the cell must END IN a structured error; a clean result
	// means the injection did not happen.
	WantErr bool
	// Long selects the long-running workload (one that cannot finish
	// before After) instead of the tiny spec set.
	Long bool
	// Deadline bounds the cell's wall time. Exceeding it is the one
	// unforgivable outcome: a hang.
	Deadline time.Duration
}

// ChaosBackend adapts one backend to the matrix.
type ChaosBackend struct {
	Name string
	// Supports returns "" when the backend can run the schedule, or the
	// reason it cannot (sim-only knobs on rt, kill injection on sim, …).
	Supports func(ChaosSchedule) string
	// SkipSpec is the usual workload gate (gas-staged specs are
	// sim-only).
	SkipSpec func(workloads.Spec) string
	// Typed reports whether err is one of the backend's structured
	// error types — the difference between graceful degradation and an
	// accidental failure.
	Typed func(err error) bool
	// Check, when non-nil, asserts schedule-specific postconditions on
	// the cell's error ("" = satisfied): the right rank blamed, the
	// hang reported within its bound, crash beating the watchdog.
	Check func(sch ChaosSchedule, err error) string
	// Run executes one cell and returns the root result.
	Run func(spec workloads.Spec, workers int, seed uint64, sch ChaosSchedule) (uint64, error)
}

// ChaosCell is one matrix cell's verdict.
type ChaosCell struct {
	Backend  string        `json:"backend"`
	Schedule string        `json:"schedule"`
	Workload string        `json:"workload"`
	Workers  int           `json:"workers"`
	Seed     uint64        `json:"seed"`
	WallNS   int64         `json:"wall_ns"`
	Result   uint64        `json:"result,omitempty"`
	Err      string        `json:"err,omitempty"`
	Outcome  string        `json:"outcome"` // result | typed-error | skipped | <failure kind>
	Pass     bool          `json:"pass"`
	Deadline time.Duration `json:"-"`
}

// chaosLongSpec is the workload for WantErr schedules: heavy enough
// that the run cannot complete before a ~50ms injection fires.
func chaosLongSpec() workloads.Spec { return workloads.Fib(30, 2000) }

// RunChaosMatrix runs every supported (schedule × workload × seed) cell
// on b and returns all verdicts plus the count of failed cells. The
// infrastructure error return is reserved for harness bugs; injected
// failures land in the cells.
func RunChaosMatrix(b ChaosBackend, workers int, seeds []uint64, schedules []ChaosSchedule, scale string) ([]ChaosCell, int) {
	var cells []ChaosCell
	failed := 0
	for _, sch := range schedules {
		if reason := b.Supports(sch); reason != "" {
			cells = append(cells, ChaosCell{
				Backend: b.Name, Schedule: sch.Name,
				Outcome: "skipped", Err: reason, Pass: true,
			})
			continue
		}
		specs := ChaosWorkloads(scale)
		if sch.Long {
			specs = []workloads.Spec{chaosLongSpec()}
		}
		for _, spec := range specs {
			if b.SkipSpec != nil {
				if reason := b.SkipSpec(spec); reason != "" {
					cells = append(cells, ChaosCell{
						Backend: b.Name, Schedule: sch.Name, Workload: spec.Name,
						Outcome: "skipped", Err: reason, Pass: true,
					})
					continue
				}
			}
			for _, seed := range seeds {
				cell := runChaosCell(b, spec, workers, seed, sch)
				if !cell.Pass {
					failed++
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, failed
}

func runChaosCell(b ChaosBackend, spec workloads.Spec, workers int, seed uint64, sch ChaosSchedule) ChaosCell {
	cell := ChaosCell{
		Backend: b.Name, Schedule: sch.Name, Workload: spec.Name,
		Workers: workers, Seed: seed, Deadline: sch.Deadline,
	}
	deadline := sch.Deadline
	if deadline <= 0 {
		deadline = 60 * time.Second
	}
	type out struct {
		res uint64
		err error
	}
	ch := make(chan out, 1)
	start := time.Now()
	go func() {
		res, err := b.Run(spec, workers, seed, sch)
		ch <- out{res, err}
	}()
	var o out
	select {
	case o = <-ch:
	case <-time.After(deadline):
		// THE failure the whole PR exists to prevent: the backend
		// neither finished nor errored inside the bound.
		cell.WallNS = time.Since(start).Nanoseconds()
		cell.Outcome = "hang"
		cell.Err = fmt.Sprintf("no result and no error within %v", deadline)
		return cell
	}
	cell.WallNS = time.Since(start).Nanoseconds()
	if o.err == nil {
		cell.Result = o.res
		switch {
		case sch.WantErr:
			cell.Outcome = "unexpected-success"
			cell.Err = "injection demanded a structured error; run completed cleanly"
		case o.res != spec.Expected:
			cell.Outcome = "mismatch"
			cell.Err = fmt.Sprintf("result %d, oracle %d", o.res, spec.Expected)
		default:
			cell.Outcome = "result"
			cell.Pass = true
		}
		return cell
	}
	cell.Err = o.err.Error()
	if !b.Typed(o.err) {
		cell.Outcome = "untyped-error"
		return cell
	}
	if b.Check != nil {
		if reason := b.Check(sch, o.err); reason != "" {
			cell.Outcome = "check-failed"
			cell.Err = reason + ": " + cell.Err
			return cell
		}
	}
	// A typed error satisfies the contract only when the schedule
	// injected something that can legitimately defeat the run (WantErr,
	// or a fault schedule whose retry budget is exhaustible). A typed
	// error on a zero-fault cell is still a regression.
	if sch.WantErr || sch.Fault.PlanEnabled() || sch.Fault.CtlEnabled() || sch.Fault.Enabled() {
		cell.Outcome = "typed-error"
		cell.Pass = true
		return cell
	}
	cell.Outcome = "error-without-fault"
	return cell
}

// SimChaosSchedules: the virtual-time fabric sweep reshaped as matrix
// schedules (rate-derived sim knobs; see ChaosFaultConfig).
func SimChaosSchedules() []ChaosSchedule {
	mk := func(name string, rate float64) ChaosSchedule {
		return ChaosSchedule{Name: name, Fault: ChaosFaultConfig(rate), Deadline: 60 * time.Second}
	}
	return []ChaosSchedule{
		mk("none", 0),
		mk("fabric-0.001", 0.001),
		mk("fabric-0.01", 0.01),
		mk("fabric-0.05", 0.05),
	}
}

// RTChaosSchedules: steal-path fault schedules for the in-process real
// backend.
func RTChaosSchedules() []ChaosSchedule {
	d := 30 * time.Second
	return []ChaosSchedule{
		{Name: "none", Deadline: d},
		{Name: "claim-faults", Fault: fault.Config{StealClaimFailProb: 0.05}, Deadline: d},
		{Name: "copy-faults", Fault: fault.Config{StealCopyFailProb: 0.03}, Deadline: d},
		{Name: "claim+copy+delay", Fault: fault.Config{
			StealClaimFailProb: 0.05,
			StealCopyFailProb:  0.03,
			StealDelayProb:     0.02,
			StealDelayMin:      20 * time.Microsecond,
			StealDelayMax:      200 * time.Microsecond,
		}, Deadline: d},
	}
}

// DistChaosSchedules: the rt schedules plus the dist-only scenarios —
// control-plane socket faults, concurrent SIGKILLs, and the hung-worker
// heartbeat cell.
func DistChaosSchedules() []ChaosSchedule {
	s := RTChaosSchedules()
	s = append(s,
		ChaosSchedule{
			Name: "ctl-faults",
			Fault: fault.Config{
				CtlDropProb:  0.2,
				CtlTruncProb: 0.1,
				CtlDelayProb: 0.2,
				CtlDelay:     5 * time.Millisecond,
			},
			Deadline: 60 * time.Second,
		},
		ChaosSchedule{
			Name: "kill-rank1", Kill: []int{1}, After: 50 * time.Millisecond,
			WantErr: true, Long: true, Deadline: 15 * time.Second,
		},
		ChaosSchedule{
			Name: "double-kill", Kill: []int{1, 2}, After: 50 * time.Millisecond,
			WantErr: true, Long: true, Deadline: 15 * time.Second,
		},
		ChaosSchedule{
			Name: "hang-rank1", Hang: 1, After: 50 * time.Millisecond,
			Heartbeat: 250 * time.Millisecond,
			WantErr:   true, Long: true, Deadline: 15 * time.Second,
		},
	)
	return s
}

// SimChaosBackend adapts the virtual-time simulator.
func SimChaosBackend() ChaosBackend {
	return ChaosBackend{
		Name: "sim",
		Supports: func(sch ChaosSchedule) string {
			if len(sch.Kill) > 0 || sch.Hang > 0 {
				return "process kill/hang injection needs real processes; sim-only virtual time"
			}
			if ks := sch.Fault.PlanKnobs(); len(ks) > 0 {
				return "real-backend steal knob " + ks[0] + " not modelled by the sim fabric"
			}
			if ks := sch.Fault.CtlKnobs(); len(ks) > 0 {
				return "control-plane knob " + ks[0] + " has no sim control plane to act on"
			}
			return ""
		},
		SkipSpec: func(workloads.Spec) string { return "" },
		Typed:    func(error) bool { return false }, // sim chaos must not error at all
		Run: func(spec workloads.Spec, workers int, seed uint64, sch ChaosSchedule) (uint64, error) {
			cfg := core.DefaultConfig(workers)
			cfg.Seed = seed
			cfg.Fault = sch.Fault
			m, res, err := spec.Run(cfg)
			if err != nil {
				return 0, err
			}
			if err := m.CheckQuiescence(); err != nil {
				return 0, err
			}
			return res, nil
		},
	}
}

// RTChaosBackend adapts the in-process real backend.
func RTChaosBackend(noPin bool) ChaosBackend {
	return ChaosBackend{
		Name: "rt",
		Supports: func(sch ChaosSchedule) string {
			if len(sch.Kill) > 0 || sch.Hang > 0 {
				return "kill/hang injection targets worker processes; rt workers share one process"
			}
			if ks := sch.Fault.SimKnobs(); len(ks) > 0 {
				return "sim-only knob " + ks[0] + " not supported on rt"
			}
			if ks := sch.Fault.CtlKnobs(); len(ks) > 0 {
				return "control-plane knob " + ks[0] + " not supported on rt (no control plane)"
			}
			return ""
		},
		SkipSpec: RTSkipReason,
		Typed: func(err error) bool {
			var to *rt.TimeoutError
			return errors.As(err, &to)
		},
		Run: func(spec workloads.Spec, workers int, seed uint64, sch ChaosSchedule) (uint64, error) {
			cfg := rt.DefaultConfig(workers)
			cfg.Seed = seed
			cfg.NoPin = noPin
			cfg.Fault = sch.Fault
			if sch.Deadline > 0 {
				cfg.MaxWall = sch.Deadline
			}
			r := rt.New(cfg)
			res, err := r.Run(spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				return 0, err
			}
			if err := r.CheckQuiescence(); err != nil {
				return 0, err
			}
			return res, nil
		},
	}
}

// DistChaosBackend adapts the multi-process backend — the only one
// every schedule kind applies to.
func DistChaosBackend() ChaosBackend {
	return ChaosBackend{
		Name: "dist",
		Supports: func(sch ChaosSchedule) string {
			if ks := sch.Fault.SimKnobs(); len(ks) > 0 {
				return "sim-only knob " + ks[0] + " not supported on dist"
			}
			return ""
		},
		SkipSpec: DistSkipReason,
		Typed:    distTypedError,
		Check:    distChaosCheck,
		Run: func(spec workloads.Spec, workers int, seed uint64, sch ChaosSchedule) (uint64, error) {
			cfg := dist.DefaultConfig(workers)
			cfg.Seed = seed
			cfg.Fault = sch.Fault
			cfg.KillRanks = sch.Kill
			cfg.HangRank = sch.Hang
			if sch.After > 0 {
				cfg.KillAfter = sch.After
				cfg.HangAfter = sch.After
			}
			if sch.Heartbeat > 0 {
				cfg.HeartbeatTimeout = sch.Heartbeat
				cfg.HeartbeatInterval = sch.Heartbeat / 10
			}
			if sch.Deadline > 0 {
				cfg.MaxWall = sch.Deadline
			}
			res, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				return 0, err
			}
			return res.Root, nil
		},
	}
}

// distTypedError recognises every structured dist error type.
func distTypedError(err error) bool {
	var crash *dist.WorkerCrashError
	var hung *dist.WorkerHungError
	var ctl *dist.ControlTimeoutError
	var wall *dist.MaxWallError
	var fp *dist.FingerprintMismatchError
	return errors.As(err, &crash) || errors.As(err, &hung) ||
		errors.As(err, &ctl) || errors.As(err, &wall) || errors.As(err, &fp)
}

// distChaosCheck pins schedule-specific postconditions:
//
//   - kill cells: a WorkerCrashError blaming one of the killed ranks —
//     and NEVER a MaxWallError, which would mean the watchdog beat the
//     crash monitor (the double-kill regression);
//   - hang cells: a WorkerHungError blaming the wedged rank, whose
//     observed silence shows detection within 1s of it becoming
//     possible (silence ≤ heartbeat timeout + 1s).
func distChaosCheck(sch ChaosSchedule, err error) string {
	if len(sch.Kill) > 0 {
		var wall *dist.MaxWallError
		if errors.As(err, &wall) {
			return "MaxWall watchdog won over the crash monitor"
		}
		var crash *dist.WorkerCrashError
		if !errors.As(err, &crash) {
			return fmt.Sprintf("kill cell yielded %T, want *dist.WorkerCrashError", err)
		}
		for _, r := range sch.Kill {
			if crash.Rank == r {
				return ""
			}
		}
		return fmt.Sprintf("crash blamed rank %d, not one of %v", crash.Rank, sch.Kill)
	}
	if sch.Hang > 0 {
		var hung *dist.WorkerHungError
		if !errors.As(err, &hung) {
			return fmt.Sprintf("hang cell yielded %T, want *dist.WorkerHungError", err)
		}
		if hung.Rank != sch.Hang {
			return fmt.Sprintf("hang blamed rank %d, want %d", hung.Rank, sch.Hang)
		}
		if sch.Heartbeat > 0 && hung.Silence > sch.Heartbeat+time.Second {
			return fmt.Sprintf("hang detected after %v of silence; bound is timeout %v + 1s", hung.Silence, sch.Heartbeat)
		}
	}
	return ""
}

// PrintChaosMatrix renders the matrix verdicts, one line per cell.
func PrintChaosMatrix(w io.Writer, cells []ChaosCell, failed int) {
	fmt.Fprintf(w, "Chaos matrix: every cell must end, within its deadline, in the oracle result or a typed error\n")
	for _, c := range cells {
		status := "ok  "
		if !c.Pass {
			status = "FAIL"
		}
		if c.Outcome == "skipped" {
			fmt.Fprintf(w, "  skip %-7s %-18s %s\n", c.Backend, c.Schedule, c.Err)
			continue
		}
		detail := ""
		if c.Err != "" {
			detail = " — " + c.Err
		}
		fmt.Fprintf(w, "  %s %-7s %-18s %-9s seed=%-3d %7.1fms %s%s\n",
			status, c.Backend, c.Schedule, c.Workload, c.Seed,
			float64(c.WallNS)/1e6, c.Outcome, detail)
	}
	fmt.Fprintf(w, "%d cells, %d failed\n", len(cells), failed)
}
