package harness

import (
	"os"
	"testing"

	"uniaddr/internal/dist"
)

// TestMain routes re-exec'd dist worker processes into the child
// entrypoint before any harness test runs (a no-op for every other
// invocation of this test binary).
func TestMain(m *testing.M) {
	dist.MaybeChild()
	os.Exit(m.Run())
}

// TestDifferentialSimVsDist is the acceptance gate for the dist
// backend: every workload at 2 and 4 worker PROCESSES, 3 seeds, root
// results identical to the sim oracle, with gas-dependent workloads
// reported (not silently dropped).
func TestDifferentialSimVsDist(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process differential matrix skipped in -short mode")
	}
	rep, err := RunDifferentialBackend(DistDiffBackend(), DiffWorkloads(), []int{2, 4}, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "dist" {
		t.Errorf("report backend %q, want dist", rep.Backend)
	}
	for _, row := range rep.Rows {
		if row.Skipped {
			if row.SkipReason == "" {
				t.Errorf("%s skipped without a reason", row.Workload)
			}
			continue
		}
		if !row.Match {
			t.Errorf("%s workers=%d seed=%d: sim=%d dist=%d",
				row.Workload, row.Workers, row.Seed, row.SimResult, row.GotResult)
		}
	}
	if rep.Compared == 0 {
		t.Fatal("differential sweep compared nothing")
	}
	if rep.Skipped == 0 {
		t.Error("expected gas-dependent workloads to be reported as skipped")
	}
}

// TestDistCrashProbe runs the harness-level resilience probe: a
// SIGKILL'd worker process must surface as a structured error, fast.
func TestDistCrashProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash probe skipped in -short mode")
	}
	if err := DistCrashProbe(3, 1); err != nil {
		t.Fatal(err)
	}
}

// TestDistBenchReport exercises RunDistBench at the smallest scale and
// checks the report carries the dist benchmark tag and sane rows.
func TestDistBenchReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process bench skipped in -short mode")
	}
	rep, err := RunDistBench(DiffWorkloads(), []int{2}, 1, 1, BenchTuning{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Benchmark != "dist-scaling" {
		t.Errorf("benchmark tag %q, want dist-scaling", rep.Benchmark)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("bench produced no rows")
	}
	if len(rep.Skipped) == 0 {
		t.Error("gas-dependent workloads missing from skipped list")
	}
	for _, row := range rep.Rows {
		if row.WallNS <= 0 {
			t.Errorf("%s procs=%d: wall_ns %d", row.Workload, row.Workers, row.WallNS)
		}
	}
}
