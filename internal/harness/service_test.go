package harness

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestServiceBenchSmoke runs a small open-loop load-gen against a real
// pool and checks the report's internal consistency: every admitted
// job oracle-verified, zero mid-run worker exits, latency digests
// covering exactly the admitted jobs, and a round-trippable JSON form.
func TestServiceBenchSmoke(t *testing.T) {
	rep, err := RunServiceBench(ServiceBenchConfig{
		Workers: 2, QPS: 500, Jobs: 30, Seed: 3, NoPin: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OracleMismatches != 0 {
		t.Errorf("%d per-job reports diverged from the sequential oracle", rep.OracleMismatches)
	}
	if rep.WorkersExitedMidRun != 0 {
		t.Errorf("%d workers exited while jobs were in flight", rep.WorkersExitedMidRun)
	}
	if rep.Admitted+rep.Rejected != rep.Jobs {
		t.Errorf("admitted %d + rejected %d != %d arrivals", rep.Admitted, rep.Rejected, rep.Jobs)
	}
	if rep.Admitted == 0 {
		t.Fatal("no job was admitted")
	}
	for _, l := range []ServiceLatency{rep.QueueLatency, rep.ExecLatency, rep.TotalLatency} {
		if l.Count != uint64(rep.Admitted) {
			t.Errorf("latency digest covers %d jobs, want %d", l.Count, rep.Admitted)
		}
		if l.P50NS > l.P95NS || l.P95NS > l.P99NS || l.P99NS > l.MaxNS {
			t.Errorf("percentiles not monotone: p50 %d p95 %d p99 %d max %d", l.P50NS, l.P95NS, l.P99NS, l.MaxNS)
		}
	}
	if rep.DurationNS <= 0 || rep.AchievedQPS <= 0 {
		t.Errorf("duration %dns, achieved %.1f qps", rep.DurationNS, rep.AchievedQPS)
	}
	if rep.TasksExecuted == 0 {
		t.Error("no tasks executed")
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Errorf("host provenance incomplete: %q %q/%q", rep.GoVersion, rep.GOOS, rep.GOARCH)
	}
	var buf bytes.Buffer
	if err := WriteServiceBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back ServiceBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "rt-service" || back.TotalLatency.Count != rep.TotalLatency.Count {
		t.Errorf("JSON round trip diverged: %+v", back)
	}
}

func TestServiceBenchRejectsBadConfig(t *testing.T) {
	for _, cfg := range []ServiceBenchConfig{
		{Workers: 0, QPS: 10, Jobs: 10},
		{Workers: 2, QPS: 0, Jobs: 10},
		{Workers: 2, QPS: 10, Jobs: 0},
	} {
		if _, err := RunServiceBench(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
