package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

// AblateMultiWorkerPoint is one slots-per-process setting of the §5.1
// ablation: several workers (and uni-address regions) share an address
// space, and a stolen task must land in a region with its own address.
type AblateMultiWorkerPoint struct {
	Slots       int
	Tput        float64
	SlotAborts  uint64
	BusyWorkers int // workers that executed at least one task
}

// AblateMultiWorker sweeps slots-per-process at a fixed total worker
// count. Under single-root fork-join, every task is created in the
// running worker's own region, so all work stays in the root's slot:
// the paper's "may lower processor utilization" is maximally pessimal
// here, and throughput degrades toward 1/slots.
func AblateMultiWorker(total int, slots []int, seed uint64) ([]AblateMultiWorkerPoint, error) {
	if len(slots) == 0 {
		slots = []int{1, 2, 4}
	}
	spec := workloads.BTC(14, 1, 200)
	var out []AblateMultiWorkerPoint
	for _, k := range slots {
		cfg := core.DefaultConfig(total)
		cfg.SlotsPerProcess = k
		cfg.Seed = seed
		m, res, err := spec.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("slots=%d: %w", k, err)
		}
		if res != spec.Expected {
			return nil, fmt.Errorf("slots=%d: result %d != %d", k, res, spec.Expected)
		}
		busy := 0
		for _, w := range m.Workers() {
			if w.Stats().TasksExecuted > 0 {
				busy++
			}
		}
		out = append(out, AblateMultiWorkerPoint{
			Slots:       k,
			Tput:        float64(spec.Items(res)) / m.ElapsedSeconds(),
			SlotAborts:  m.TotalStats().StealAbortSlot,
			BusyWorkers: busy,
		})
	}
	return out, nil
}

// PrintAblateMultiWorker renders the sweep.
func PrintAblateMultiWorker(w io.Writer, total int, pts []AblateMultiWorkerPoint) {
	fmt.Fprintf(w, "Ablation (§5.1 future work): workers per address space (total %d workers)\n", total)
	fmt.Fprintf(w, "  %8s %16s %12s %14s %10s\n", "slots", "throughput/s", "slot-aborts", "busy workers", "rel tput")
	base := pts[0].Tput
	for _, p := range pts {
		fmt.Fprintf(w, "  %8d %16s %12d %14d %9.2fx\n",
			p.Slots, stats.HumanCount(p.Tput), p.SlotAborts, p.BusyWorkers, p.Tput/base)
	}
	fmt.Fprintf(w, "  (single-root fork-join keeps all tasks in the root's slot — the paper's\n")
	fmt.Fprintf(w, "   predicted utilization loss is maximal: only 1/slots of the workers can help)\n")
}
