package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// TraceInfo summarises a validated Chrome trace file.
type TraceInfo struct {
	Clock       string // clockDomain metadata ("virtual-cycles" or "wall-ns")
	Events      int    // total trace events
	StealEvents int    // events in the steal lifecycle (attempt/ok/empty/busy/fault/...)
}

// CheckTrace validates a trace file produced by the unified exporter
// (-trace / uniaddr.WithTrace): it must parse as Chrome trace-event
// JSON, carry the clock-domain metadata that tells a viewer what the
// timestamps mean, and contain at least one steal-lifecycle event —
// the signal this whole observability layer exists to expose. CI runs
// this over the smoke-job artifacts; the CLI exposes it as
// -check-trace.
func CheckTrace(path string) (TraceInfo, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return TraceInfo{}, err
	}
	var trace struct {
		ClockDomain string `json:"clockDomain"`
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &trace); err != nil {
		return TraceInfo{}, fmt.Errorf("%s: not valid Chrome trace JSON: %w", path, err)
	}
	info := TraceInfo{Clock: trace.ClockDomain, Events: len(trace.TraceEvents)}
	if trace.ClockDomain == "" {
		return info, fmt.Errorf("%s: missing clockDomain metadata — a viewer cannot tell virtual cycles from wall ns", path)
	}
	if len(trace.TraceEvents) == 0 {
		return info, fmt.Errorf("%s: no trace events", path)
	}
	for _, e := range trace.TraceEvents {
		if strings.Contains(e.Cat, "steal") || strings.HasPrefix(e.Name, "steal") {
			info.StealEvents++
		}
	}
	if info.StealEvents == 0 {
		return info, fmt.Errorf("%s: %d events but none from the steal lifecycle", path, info.Events)
	}
	return info, nil
}
