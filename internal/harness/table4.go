package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

// Table4Row mirrors a row of the paper's Table 4: benchmark, parameter,
// total tasks or nodes, execution time, and maximum uni-address region
// usage.
type Table4Row struct {
	Benchmark  string
	Param      string
	Items      uint64
	Seconds    float64
	StackBytes uint64
	PaperRef   string // the paper's stack usage at full scale, for context
}

// Table4Workloads returns the scaled benchmark set used for Table 4 and
// Fig. 11. scale "small" keeps everything test-sized; "large" pushes
// depths up for long runs.
func Table4Workloads(scale string) []struct {
	Name  string
	Param string
	Spec  workloads.Spec
	Paper string
} {
	type w = struct {
		Name  string
		Param string
		Spec  workloads.Spec
		Paper string
	}
	switch scale {
	case "tiny": // fast unit-test scale
		return []w{
			{"BTC (iter=1)", "depth=10", workloads.BTC(10, 1, 0), "43,568 B @ d=38"},
			{"BTC (iter=1)", "depth=11", workloads.BTC(11, 1, 0), "44,688 B @ d=39"},
			{"BTC (iter=2)", "depth=5", workloads.BTC(5, 2, 0), "22,288 B @ d=19"},
			{"BTC (iter=2)", "depth=6", workloads.BTC(6, 2, 0), "23,408 B @ d=20"},
			{"UTS", "depth=9", workloads.UTS(1, 9, workloads.DefaultUTSB0, 400), "139,536 B @ d=17"},
			{"UTS", "depth=10", workloads.UTS(1, 10, workloads.DefaultUTSB0, 400), "147,392 B @ d=18"},
			{"NQueens", "N=8", workloads.NQueens(8, 100), "74,272 B @ N=17"},
			{"NQueens", "N=9", workloads.NQueens(9, 100), "79,120 B @ N=18"},
		}
	case "large":
		return []w{
			{"BTC (iter=1)", "depth=20", workloads.BTC(20, 1, 0), "43,568 B @ d=38"},
			{"BTC (iter=1)", "depth=21", workloads.BTC(21, 1, 0), "44,688 B @ d=39"},
			{"BTC (iter=2)", "depth=10", workloads.BTC(10, 2, 0), "22,288 B @ d=19"},
			{"BTC (iter=2)", "depth=11", workloads.BTC(11, 2, 0), "23,408 B @ d=20"},
			{"UTS", "depth=15", workloads.UTS(1, 15, workloads.DefaultUTSB0, 400), "139,536 B @ d=17"},
			{"UTS", "depth=16", workloads.UTS(1, 16, workloads.DefaultUTSB0, 400), "147,392 B @ d=18"},
			{"NQueens", "N=13", workloads.NQueens(13, 100), "74,272 B @ N=17"},
			{"NQueens", "N=14", workloads.NQueens(14, 100), "79,120 B @ N=18"},
		}
	default:
		return []w{
			{"BTC (iter=1)", "depth=14", workloads.BTC(14, 1, 0), "43,568 B @ d=38"},
			{"BTC (iter=1)", "depth=15", workloads.BTC(15, 1, 0), "44,688 B @ d=39"},
			{"BTC (iter=2)", "depth=7", workloads.BTC(7, 2, 0), "22,288 B @ d=19"},
			{"BTC (iter=2)", "depth=8", workloads.BTC(8, 2, 0), "23,408 B @ d=20"},
			{"UTS", "depth=12", workloads.UTS(1, 12, workloads.DefaultUTSB0, 400), "139,536 B @ d=17"},
			{"UTS", "depth=13", workloads.UTS(1, 13, workloads.DefaultUTSB0, 400), "147,392 B @ d=18"},
			{"NQueens", "N=10", workloads.NQueens(10, 100), "74,272 B @ N=17"},
			{"NQueens", "N=11", workloads.NQueens(11, 100), "79,120 B @ N=18"},
		}
	}
}

// Table4 runs every benchmark on a machine with the given worker count
// and reports the paper's Table 4 columns.
func Table4(workers int, scale string, seed uint64) ([]Table4Row, error) {
	var rows []Table4Row
	for _, wl := range Table4Workloads(scale) {
		cfg := core.DefaultConfig(workers)
		cfg.Seed = seed
		m, res, err := wl.Spec.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s: %w", wl.Name, wl.Param, err)
		}
		if res != wl.Spec.Expected {
			return nil, fmt.Errorf("%s %s: result %d != expected %d", wl.Name, wl.Param, res, wl.Spec.Expected)
		}
		rows = append(rows, Table4Row{
			Benchmark:  wl.Name,
			Param:      wl.Param,
			Items:      wl.Spec.Items(res),
			Seconds:    m.ElapsedSeconds(),
			StackBytes: m.MaxStackUsage(),
			PaperRef:   wl.Paper,
		})
	}
	return rows, nil
}

// PrintTable4 renders the table.
func PrintTable4(w io.Writer, workers int, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: benchmark footprints on %d simulated workers (scaled problem sizes)\n", workers)
	fmt.Fprintf(w, "%-14s %-10s %14s %10s %14s   %s\n",
		"benchmark", "param", "tasks/nodes", "time", "stack usage", "paper @ full scale")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %-10s %14s %9.3fs %14s   %s\n",
			r.Benchmark, r.Param, stats.HumanCount(float64(r.Items)), r.Seconds,
			fmt.Sprintf("%d B", r.StackBytes), r.PaperRef)
	}
}
