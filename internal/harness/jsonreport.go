package harness

import (
	"encoding/json"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/trace"
)

// RunReport is the machine-readable post-mortem of one simulated run
// (the -json output of cmd/uniaddr-sim).
type RunReport struct {
	Workers        int     `json:"workers"`
	WorkersPerNode int     `json:"workers_per_node"`
	Scheme         string  `json:"scheme"`
	Victim         string  `json:"victim_policy"`
	HelpFirst      bool    `json:"help_first"`
	Seed           uint64  `json:"seed"`
	ElapsedCycles  uint64  `json:"elapsed_cycles"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Items          uint64  `json:"items"`
	Throughput     float64 `json:"items_per_second"`

	Tasks        uint64 `json:"tasks_executed"`
	Spawns       uint64 `json:"spawns"`
	JoinsFast    uint64 `json:"joins_fast"`
	JoinsMiss    uint64 `json:"joins_miss"`
	Suspends     uint64 `json:"suspends"`
	ResumesWait  uint64 `json:"resumes_wait"`
	ParentStolen uint64 `json:"parents_stolen"`

	StealAttempts   uint64  `json:"steal_attempts"`
	StealsOK        uint64  `json:"steals_ok"`
	StealAbortEmpty uint64  `json:"steal_abort_empty"`
	StealAbortLock  uint64  `json:"steal_abort_lock"`
	StealAbortSlot  uint64  `json:"steal_abort_slot"`
	BytesStolen     uint64  `json:"bytes_stolen"`
	AvgStealCycles  float64 `json:"avg_steal_cycles"`

	// Steal-latency tail percentiles in virtual cycles (begin → stolen
	// thread runnable), measured by the observability recorder. Present
	// only when Config.Obs or Config.Trace was set and steals happened,
	// so reports from runs without observability are byte-identical to
	// pre-observability ones.
	StealLatencyP50 uint64 `json:"steal_latency_p50,omitempty"`
	StealLatencyP95 uint64 `json:"steal_latency_p95,omitempty"`
	StealLatencyP99 uint64 `json:"steal_latency_p99,omitempty"`

	PageFaults     uint64 `json:"page_faults"`
	MaxStackBytes  uint64 `json:"max_stack_bytes"`
	MaxReservedVA  uint64 `json:"max_reserved_bytes"`
	CommittedBytes uint64 `json:"committed_bytes"`

	// Failure counters, all zero unless fault injection was enabled.
	InjectedFaults   uint64 `json:"injected_faults,omitempty"`
	SpikeCycles      uint64 `json:"spike_cycles,omitempty"`
	NetRetries       uint64 `json:"net_retries,omitempty"`
	FAATimeouts      uint64 `json:"faa_timeouts,omitempty"`
	StealFaults      uint64 `json:"steal_faults,omitempty"`
	StealRetries     uint64 `json:"steal_retries,omitempty"`
	StealAbortsFault uint64 `json:"steal_aborts_fault,omitempty"`
	StealRollbacks   uint64 `json:"steal_rollbacks,omitempty"`
	BackoffCycles    uint64 `json:"backoff_cycles,omitempty"`
	VictimBlacklists uint64 `json:"victim_blacklists,omitempty"`
	LifelineFaults   uint64 `json:"lifeline_faults,omitempty"`

	UtilizationWork  float64 `json:"utilization_work,omitempty"`
	UtilizationSteal float64 `json:"utilization_steal,omitempty"`
	UtilizationIdle  float64 `json:"utilization_idle,omitempty"`
}

// BuildRunReport assembles the report from a completed machine run.
func BuildRunReport(m *core.Machine, items uint64) RunReport {
	st := m.TotalStats()
	cfg := m.Config()
	r := RunReport{
		Workers:        cfg.Workers,
		WorkersPerNode: cfg.WorkersPerNode,
		Scheme:         cfg.Scheme.String(),
		Victim:         cfg.Victim.String(),
		HelpFirst:      cfg.HelpFirst,
		Seed:           cfg.Seed,
		ElapsedCycles:  m.ElapsedCycles(),
		ElapsedSeconds: m.ElapsedSeconds(),
		Items:          items,

		Tasks:        st.TasksExecuted,
		Spawns:       st.Spawns,
		JoinsFast:    st.JoinsFast,
		JoinsMiss:    st.JoinsMiss,
		Suspends:     st.Suspends,
		ResumesWait:  st.ResumesWait,
		ParentStolen: st.ParentStolen,

		StealAttempts:   st.StealAttempts,
		StealsOK:        st.StealsOK,
		StealAbortEmpty: st.StealAbortEmpty,
		StealAbortLock:  st.StealAbortLock,
		StealAbortSlot:  st.StealAbortSlot,
		BytesStolen:     st.BytesStolen,

		PageFaults:     st.PageFaults,
		MaxStackBytes:  m.MaxStackUsage(),
		MaxReservedVA:  m.MaxReservedBytes(),
		CommittedBytes: m.TotalCommittedBytes(),

		StealFaults:      st.StealFaults,
		StealRetries:     st.StealRetries,
		StealAbortsFault: st.StealAbortsFault,
		StealRollbacks:   st.StealRollbacks,
		BackoffCycles:    st.BackoffCycles,
		VictimBlacklists: st.VictimBlacklists,
		LifelineFaults:   st.LifelineFaults,
	}
	ns := m.TotalNetStats()
	r.InjectedFaults = ns.InjectedFaults
	r.SpikeCycles = ns.SpikeCycles
	r.NetRetries = ns.Retries
	r.FAATimeouts = ns.FAATimeouts
	if r.ElapsedSeconds > 0 {
		r.Throughput = float64(items) / r.ElapsedSeconds
	}
	if st.StealsOK > 0 {
		r.AvgStealCycles = float64(st.Phases.Total()) / float64(st.StealsOK)
	}
	if rec := m.Obs(); rec != nil && rec.StealLatency.Count > 0 {
		r.StealLatencyP50 = rec.StealLatency.Quantile(0.50)
		r.StealLatencyP95 = rec.StealLatency.Quantile(0.95)
		r.StealLatencyP99 = rec.StealLatency.Quantile(0.99)
	}
	if tr := m.Tracer(); tr != nil {
		u := tr.Utilization()
		r.UtilizationWork = u.Fraction(trace.Work)
		r.UtilizationSteal = u.Fraction(trace.Steal)
		r.UtilizationIdle = u.Fraction(trace.Idle)
	}
	return r
}

// WriteJSONReport writes the report, indented, to w.
func WriteJSONReport(w io.Writer, r RunReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
