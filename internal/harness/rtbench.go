package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"

	"uniaddr/internal/rt"
	"uniaddr/internal/workloads"
)

// The rt benchmark: wall-clock throughput of the real-parallelism
// backend across worker counts — the Fig. 11 sweep measured on actual
// cores instead of virtual time. Rows land in BENCH_rt.json so the
// repo's performance trajectory accumulates from real numbers.

// RTBenchRow is one (workload, workers) measurement. WallNS is the
// best of Reps runs (min wall time: the least-disturbed measurement);
// MeanWallNS averages all reps — scheduling noise and idle-worker
// interference show up here long before they move the minimum.
type RTBenchRow struct {
	Workload    string  `json:"workload"`
	Workers     int     `json:"workers"`
	Reps        int     `json:"reps"`
	WallNS      int64   `json:"wall_ns"`
	MeanWallNS  int64   `json:"wall_ns_mean,omitempty"`
	Result      uint64  `json:"result"`
	Tasks       uint64  `json:"tasks_executed"`
	TasksPerSec float64 `json:"tasks_per_second"`
	// Items / ItemsPerSec are present only when the workload defines an
	// items extractor (nodes for UTS, tasks for BTC, …, per Fig. 11).
	Items       uint64  `json:"items,omitempty"`
	ItemsPerSec float64 `json:"items_per_second,omitempty"`
	StealsOK    uint64  `json:"steals_ok"`
	// StealBatches counts successful steal round trips; StealsOK counts
	// the entries they moved (mean batch width = StealsOK/StealBatches).
	StealBatches uint64 `json:"steal_batches,omitempty"`
	BytesStolen  uint64 `json:"bytes_stolen"`
	Suspends     uint64 `json:"suspends"`
	// Steal-churn counters: how many probes the thieves burned, and how
	// they failed. These are the regression targets for the steal-hint
	// work — a hint-guided thief should convert more attempts into
	// StealsOK and fewer into AbortEmpty.
	StealAttempts   uint64 `json:"steal_attempts"`
	StealAbortEmpty uint64 `json:"steal_abort_empty"`
	StealAbortLock  uint64 `json:"steal_abort_lock"`
	// Parks counts idle-parking episodes (0 on runtimes without a
	// parking lot, e.g. the committed pre-optimization baseline).
	Parks uint64 `json:"parks,omitempty"`
	// Underprovisioned flags a row measured with more workers than the
	// host has CPUs: the workers time-slice one another, so the row says
	// NOTHING about scaling — absolute throughput and speedup ratios
	// from such rows must not be compared against provisioned hosts.
	// See EXPERIMENTS.md.
	Underprovisioned bool   `json:"underprovisioned,omitempty"`
	Note             string `json:"note,omitempty"`
}

// BenchTuning carries the ISSUE-9 scheduler knobs a bench run applies
// to every backend config. The zero value keeps backend defaults
// (steal-half batching on, flat grain off, default tier width).
type BenchTuning struct {
	Grain      uint64 `json:"grain,omitempty"`
	StealBatch int    `json:"steal_batch,omitempty"`
	TierGroup  int    `json:"tier_group,omitempty"`
}

// warnUnderprovisioned emits the bench-environment blind-spot warning
// once per (benchmark, workers) and reports whether the host is
// underprovisioned for the requested worker count.
func warnUnderprovisioned(benchmark string, workers int, warned map[int]bool) bool {
	if runtime.NumCPU() >= workers {
		return false
	}
	if !warned[workers] {
		warned[workers] = true
		fmt.Fprintf(os.Stderr,
			"%s: WARNING: %d workers on %d CPUs — rows tagged underprovisioned; speedups are not meaningful on this host\n",
			benchmark, workers, runtime.NumCPU())
	}
	return true
}

// RTBenchSkip records a workload the rt backend could not run, and why
// — skipped rows are part of the report, never silently dropped.
type RTBenchSkip struct {
	Workload string `json:"workload"`
	Reason   string `json:"reason"`
}

// RTBenchReport is the schema of BENCH_rt.json.
type RTBenchReport struct {
	Benchmark  string `json:"benchmark"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Host provenance: toolchain and platform the numbers were measured
	// on. Empty on reports predating these fields.
	GoVersion string `json:"go_version,omitempty"`
	GOOS      string `json:"goos,omitempty"`
	GOARCH    string `json:"goarch,omitempty"`
	Seed      uint64 `json:"seed"`
	// Tuning records the scheduler knobs the sweep ran with, so two
	// BENCH files are only comparable when their tunings agree.
	Tuning BenchTuning `json:"tuning"`
	// Note is free-form provenance for committed artifacts (host
	// regime, regeneration caveats); the harness never sets it.
	Note    string        `json:"note,omitempty"`
	Rows    []RTBenchRow  `json:"rows"`
	Skipped []RTBenchSkip `json:"skipped,omitempty"`
}

// RunRTBench measures every runnable workload at every worker count,
// reps times each, keeping the fastest run. Workloads rt cannot execute
// (and workloads with a nil root-task Init producing no work) are
// reported in Skipped with a reason. tune applies the ISSUE-9 scheduler
// knobs to every run; rows measured with more workers than CPUs are
// tagged Underprovisioned (and a warning lands on stderr).
func RunRTBench(wls []DiffWorkload, workerCounts []int, reps int, seed uint64, noPin bool, tune BenchTuning) (RTBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := RTBenchReport{
		Benchmark:  "rt-scaling",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Seed:       seed,
		Tuning:     tune,
	}
	warned := map[int]bool{}
	for _, wl := range wls {
		if reason := RTSkipReason(wl.Spec); reason != "" {
			rep.Skipped = append(rep.Skipped, RTBenchSkip{Workload: wl.Name, Reason: reason})
			continue
		}
		for _, workers := range workerCounts {
			row := RTBenchRow{Workload: wl.Name, Workers: workers, Reps: reps,
				Underprovisioned: warnUnderprovisioned("rt-scaling", workers, warned)}
			var wallSum int64
			for i := 0; i < reps; i++ {
				cfg := rt.DefaultConfig(workers)
				cfg.Seed = seed + uint64(i)
				cfg.NoPin = noPin
				cfg.Grain = tune.Grain
				cfg.StealBatch = tune.StealBatch
				cfg.TierGroup = tune.TierGroup
				r := rt.New(cfg)
				res, err := r.Run(wl.Spec.Fid, wl.Spec.Locals, wl.Spec.Init)
				if err != nil {
					return RTBenchReport{}, fmt.Errorf("rt bench %s workers=%d: %w", wl.Name, workers, err)
				}
				if wl.Spec.Expected != 0 && res != wl.Spec.Expected {
					return RTBenchReport{}, fmt.Errorf("rt bench %s workers=%d: result %d, want %d", wl.Name, workers, res, wl.Spec.Expected)
				}
				wall := r.Elapsed().Nanoseconds()
				wallSum += wall
				if row.WallNS == 0 || wall < row.WallNS {
					ts := r.TotalStats()
					row.WallNS = wall
					row.Result = res
					row.Tasks = ts.TasksExecuted
					row.StealsOK = ts.StealsOK
					row.StealBatches = ts.StealBatches
					row.BytesStolen = ts.BytesStolen
					row.Suspends = ts.Suspends
					row.StealAttempts = ts.StealAttempts
					row.StealAbortEmpty = ts.StealAbortEmpty
					row.StealAbortLock = ts.StealAbortLock
					row.Parks = ts.Parks
				}
			}
			row.MeanWallNS = wallSum / int64(reps)
			secs := float64(row.WallNS) / 1e9
			if secs > 0 {
				row.TasksPerSec = float64(row.Tasks) / secs
			}
			if wl.Spec.Items != nil {
				row.Items = wl.Spec.Items(row.Result)
				if secs > 0 {
					row.ItemsPerSec = float64(row.Items) / secs
				}
			} else {
				row.Note = "no items extractor; tasks/s only"
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// RTBenchWorkloads returns the rt bench suite at a named scale (the
// same tiny/small/large vocabulary as the simulator experiments). All
// suites are gas-free; the gas-dependent workloads appear only in the
// differential catalog, where their skip is reported.
//
// Sizing note: BTC's task count is (2·iter)^depth, so the depths here
// stay modest on purpose — the original small/large suites used BTC
// depths 14/18 with iter 2, which is 2.7e8 / 6.9e10 tasks and does not
// finish inside the wall-clock budget on any machine this repo has met.
// Every suite below completes in seconds on a single core, so the
// committed BENCH_rt_baseline.json can actually be regenerated.
func RTBenchWorkloads(scale string) ([]DiffWorkload, error) {
	switch scale {
	case "tiny":
		return []DiffWorkload{
			{"fib", workloads.Fib(16, 20)},
			{"btc", workloads.BTC(10, 1, 20)},
			{"uts", workloads.UTS(19, 6, workloads.DefaultUTSB0, 20)},
			{"nqueens", workloads.NQueens(7, 20)},
		}, nil
	case "small":
		return []DiffWorkload{
			{"fib", workloads.Fib(22, 50)},
			{"btc", workloads.BTC(8, 2, 30)},
			{"uts", workloads.UTS(19, 8, workloads.DefaultUTSB0, 50)},
			{"nqueens", workloads.NQueens(8, 50)},
			{"pingpong", workloads.PingPong(256, 500, 0)},
		}, nil
	case "large":
		return []DiffWorkload{
			{"fib", workloads.Fib(25, 50)},
			{"btc", workloads.BTC(10, 2, 50)},
			{"uts", workloads.UTS(19, 11, workloads.DefaultUTSB0, 100)},
			{"nqueens", workloads.NQueens(10, 100)},
			{"pingpong", workloads.PingPong(512, 2000, 0)},
		}, nil
	case "bench":
		// The ISSUE-9 scaling suite: per-task work is high enough that a
		// single worker spends SECONDS per workload (so wall times dwarf
		// startup, steal latency and timer jitter) and the spawn tree is
		// deep enough that coalescing (WithGrain) has structure to chew
		// on. This is the suite the CI rt-perf job and the scalefloor
		// experiment run at {1, 8} workers.
		return []DiffWorkload{
			{"fib", workloads.Fib(26, 2500)},
			{"btc", workloads.BTC(9, 2, 2500)},
			{"uts", workloads.UTS(19, 10, workloads.DefaultUTSB0, 2500)},
			{"nqueens", workloads.NQueens(9, 2500)},
		}, nil
	default:
		return nil, fmt.Errorf("unknown scale %q (tiny | small | large | bench)", scale)
	}
}

// PrintRTBench renders the report as a human-readable table; the JSON
// in BENCH_rt.json is the machine-readable twin.
func PrintRTBench(w io.Writer, rep RTBenchReport) {
	fmt.Fprintf(w, "%s (wall clock; GOMAXPROCS=%d, %d CPUs; best of reps)\n",
		rep.Benchmark, rep.GoMaxProcs, rep.NumCPU)
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tworkers\twall ms\ttasks/s\titems/s\tsteals\tbatches\tMB stolen")
	var underprovisioned bool
	for _, row := range rep.Rows {
		items := "-"
		if row.ItemsPerSec > 0 {
			items = fmt.Sprintf("%.3g", row.ItemsPerSec)
		}
		mark := ""
		if row.Underprovisioned {
			mark, underprovisioned = "*", true
		}
		fmt.Fprintf(tw, "%s\t%d%s\t%.2f\t%.3g\t%s\t%d\t%d\t%.2f\n",
			row.Workload, row.Workers, mark, float64(row.WallNS)/1e6,
			row.TasksPerSec, items, row.StealsOK, row.StealBatches,
			float64(row.BytesStolen)/(1<<20))
	}
	tw.Flush()
	if underprovisioned {
		fmt.Fprintf(w, "* underprovisioned: more workers than the host's %d CPUs; not a scaling measurement\n", rep.NumCPU)
	}
	for _, sk := range rep.Skipped {
		fmt.Fprintf(w, "skipped %s: %s\n", sk.Workload, sk.Reason)
	}
}

// WriteRTBenchJSON writes the report, indented, to w.
func WriteRTBenchJSON(w io.Writer, r RTBenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
