package harness

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"strings"
	"testing"

	"uniaddr/internal/core"
	"uniaddr/internal/rdma"
	"uniaddr/internal/workloads"
)

func TestFig9CurveShape(t *testing.T) {
	pts, err := Fig9(rdma.DefaultParams(), core.SPARCCosts().ClockHz, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(Fig9Sizes) {
		t.Fatalf("points: %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ReadCycles < pts[i-1].ReadCycles || pts[i].WriteCycles < pts[i-1].WriteCycles {
			t.Fatalf("latency not monotonic at %d bytes", pts[i].Bytes)
		}
	}
	// Small messages are latency-bound (read ≈ base), large ones
	// bandwidth-bound (~0.37 cycles/byte).
	small := pts[0]
	if small.ReadCycles < 3000 || small.ReadCycles > 8000 {
		t.Fatalf("8B read latency %d cycles implausible for Tofu", small.ReadCycles)
	}
	big := pts[len(pts)-1]
	perByte := float64(big.ReadCycles-small.ReadCycles) / float64(big.Bytes-small.Bytes)
	if math.Abs(perByte-0.37) > 0.05 {
		t.Fatalf("bandwidth term %.3f cycles/B, want ≈0.37", perByte)
	}
	var buf bytes.Buffer
	PrintFig9(&buf, pts)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(1500)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	uni := byName["Uni-address threads"]
	if !uni.Measured {
		t.Fatal("uni-address row must be measured, not modelled")
	}
	// Paper: 413 cycles (SPARC), 100 cycles (Xeon); allow 3%.
	if math.Abs(uni.SPARCCycles-413) > 413*0.03 {
		t.Fatalf("SPARC spawn cost %.1f, want ≈413", uni.SPARCCycles)
	}
	if math.Abs(uni.XeonCycles-100) > 100*0.05 {
		t.Fatalf("Xeon spawn cost %.1f, want ≈100", uni.XeonCycles)
	}
	mt, cilk := byName["MassiveThreads"], byName["Cilk"]
	// Shape: Cilk ≪ uni ≈ MT, uni slightly cheaper than MT.
	if !(cilk.SPARCCycles < uni.SPARCCycles && uni.SPARCCycles < mt.SPARCCycles) {
		t.Fatalf("SPARC ordering broken: cilk=%.0f uni=%.0f mt=%.0f",
			cilk.SPARCCycles, uni.SPARCCycles, mt.SPARCCycles)
	}
	if !(cilk.XeonCycles < uni.XeonCycles && uni.XeonCycles <= mt.XeonCycles) {
		t.Fatalf("Xeon ordering broken")
	}
}

func TestFig10BreakdownMatchesPaperShape(t *testing.T) {
	bd, err := Fig10(core.SchemeUni, 300)
	if err != nil {
		t.Fatal(err)
	}
	total := bd.Total()
	// Paper: total ≈ 42K cycles; allow 20%.
	if total < 42000*0.8 || total > 42000*1.2 {
		t.Fatalf("steal total %.0f cycles, want ≈42K", total)
	}
	// Suspend+resume ≈ 7.7% of the steal (paper: 3.5K of 42K).
	frac := (bd.Suspend + bd.Resume) / total
	if frac < 0.04 || frac > 0.14 {
		t.Fatalf("suspend+resume fraction %.3f, want ≈0.077", frac)
	}
	// Lock is the single most expensive fabric op (software FAA 9.8K).
	if bd.Lock < 9000 || bd.Lock > 11000 {
		t.Fatalf("lock %.0f cycles, want ≈9.8K", bd.Lock)
	}
	// The stolen stack is the padded 3055-byte thread (ping-pong main).
	if bd.AvgBytes < 2500 || bd.AvgBytes > 3600 {
		t.Fatalf("avg stolen stack %.0f B, want ≈3055", bd.AvgBytes)
	}
	var buf bytes.Buffer
	PrintFig10(&buf, bd)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestIsoVsUniRatio(t *testing.T) {
	uni, iso, ratio, err := IsoVsUni(12)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.3 estimates uni ≈ 71% of iso; require the right ballpark
	// and direction.
	if !(ratio > 0.5 && ratio < 0.9) {
		t.Fatalf("uni/iso ratio %.2f (uni=%.0f iso=%.0f), want ≈0.7", ratio, uni.Total(), iso.Total())
	}
	if iso.Transfer <= uni.Transfer {
		t.Fatalf("iso transfer %.0f should exceed uni %.0f (page faults + assist)", iso.Transfer, uni.Transfer)
	}
}

func TestTable4SmallScale(t *testing.T) {
	rows, err := Table4(30, "tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Items == 0 || r.Seconds <= 0 || r.StackBytes == 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
		if r.StackBytes > core.DefaultUniSize {
			t.Fatalf("%s %s stack %d overflows region", r.Benchmark, r.Param, r.StackBytes)
		}
	}
	// BTC iter=1 nests twice as deep as iter=2 at these sizes.
	if !(rows[0].StackBytes > rows[2].StackBytes) {
		t.Fatalf("BTC1 stack %d not above BTC2 %d", rows[0].StackBytes, rows[2].StackBytes)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, 30, rows)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestScalingSweepEfficiency(t *testing.T) {
	spec := workloads.BTC(18, 1, 0) // 524287 tasks
	pts, err := ScalingSweep(spec, []int{15, 30, 60}, 1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Efficiency != 1 {
		t.Fatalf("base efficiency %.2f != 1", pts[0].Efficiency)
	}
	for _, p := range pts {
		if p.Throughput.Mean() <= 0 {
			t.Fatalf("no throughput at %d workers", p.Workers)
		}
	}
	// Shape: 4× the workers at ~9K tasks/worker must stay efficient
	// (the paper's headline ≥95% needs its billions-of-tasks runs; the
	// efficiency-vs-size trend is recorded in EXPERIMENTS.md).
	if eff := pts[len(pts)-1].Efficiency; eff < 0.72 {
		t.Fatalf("efficiency at 60 workers %.2f — load balancing broken", eff)
	}
	// Throughput must actually grow with workers.
	if pts[2].Throughput.Mean() <= pts[0].Throughput.Mean() {
		t.Fatal("no speedup from 15 to 60 workers")
	}
}

func TestSec4AnalyticPaperNumbers(t *testing.T) {
	an := Sec4Paper()
	if an.IsoBytes != 1<<49 {
		t.Fatalf("iso reservation %d, want 2^49", an.IsoBytes)
	}
	if !an.ExceedsX86 {
		t.Fatal("2^49 should exceed the x86-64 VA limit")
	}
	if an.UniBytes != 1<<27 {
		t.Fatalf("uni reservation %d, want 2^27", an.UniBytes)
	}
}

func TestSec4MeasuredScaling(t *testing.T) {
	pts, err := Sec4Measured([]int{8, 24}, 2)
	if err != nil {
		t.Fatal(err)
	}
	small, big := pts[0], pts[1]
	// Iso reservations grow with machine size; uni stays flat.
	if big.IsoReserved <= small.IsoReserved {
		t.Fatalf("iso reservation did not grow: %d -> %d", small.IsoReserved, big.IsoReserved)
	}
	if big.UniReserved != small.UniReserved {
		t.Fatalf("uni reservation changed with machine size: %d -> %d", small.UniReserved, big.UniReserved)
	}
	if big.IsoReserved <= big.UniReserved {
		t.Fatal("iso should reserve more than uni")
	}
	if big.IsoPageFaults == 0 {
		t.Fatal("iso runs should take page faults")
	}
	var buf bytes.Buffer
	PrintSec4(&buf, Sec4Paper(), pts)
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestAblateFAA(t *testing.T) {
	pts, err := AblateFAA([]int{16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := pts[0]
	if p.HardwareTput < p.SoftwareTput*0.8 {
		t.Fatalf("hardware FAA much slower than software: %.0f vs %.0f", p.HardwareTput, p.SoftwareTput)
	}
}

func TestAblateStackSizeMonotoneTransfer(t *testing.T) {
	pts, err := AblateStackSize([]uint64{256, 3055, 32768}, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Transfer <= pts[i-1].Transfer {
			t.Fatalf("transfer cost not increasing with stack size: %+v", pts)
		}
	}
}

func TestAblateWorkersPerNode(t *testing.T) {
	pts, err := AblateWorkersPerNode(30, []int{5, 15}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Tput <= 0 {
			t.Fatalf("no throughput for grouping %d", p.WorkersPerNode)
		}
	}
}

func TestAblateMultiWorkerUtilizationLoss(t *testing.T) {
	pts, err := AblateMultiWorker(16, []int{1, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := pts[0], pts[1]
	if k2.SlotAborts == 0 {
		t.Fatal("no slot-mismatch aborts with 2 slots per process")
	}
	// Single-root fork-join: only slot-0 workers can ever host work.
	if k2.BusyWorkers > 16/2 {
		t.Fatalf("slots=2 busy workers = %d, want <= 8", k2.BusyWorkers)
	}
	if k2.Tput >= k1.Tput {
		t.Fatalf("slots=2 should lower throughput: %.0f vs %.0f", k2.Tput, k1.Tput)
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	pts, err := Fig9(rdma.DefaultParams(), core.SPARCCosts().ClockHz, []int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig9CSV(dir, pts); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dir + "/fig9.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 3 {
		t.Fatalf("fig9.csv lines: %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "bytes,read_cycles") {
		t.Fatalf("header: %q", lines[0])
	}
	// Table 4 + Fig 11 writers on tiny data.
	rows, err := Table4(8, "tiny", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTable4CSV(dir, rows); err != nil {
		t.Fatal(err)
	}
	spec := workloads.BTC(8, 1, 0)
	sp, err := ScalingSweep(spec, []int{4, 8}, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFig11CSV(dir, "fig11a", []Fig11Curve{{Label: "x", Points: sp}}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"table4.csv", "fig11a.csv"} {
		if _, err := os.Stat(dir + "/" + f); err != nil {
			t.Fatalf("%s missing: %v", f, err)
		}
	}
	if err := MaybeCSV("", func() error { t.Fatal("fn called for empty dir"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestAblateHelpFirst(t *testing.T) {
	pts, err := AblateHelpFirst(12, 5)
	if err != nil {
		t.Fatal(err)
	}
	wf, hf := pts[0], pts[1]
	if wf.Steals == 0 || hf.Steals == 0 {
		t.Fatalf("steals: %+v", pts)
	}
	// Help-first steals move descriptors, far smaller than the padded
	// 2 KiB stacks work-first migrates.
	if hf.BytesPerSteal*4 > wf.BytesPerSteal {
		t.Fatalf("help-first payload %d not ≪ work-first %d", hf.BytesPerSteal, wf.BytesPerSteal)
	}
}

func TestEfficiencyTrendRises(t *testing.T) {
	pts, err := EfficiencyTrend([]uint64{13, 17}, 10, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pts[1].Efficiency <= pts[0].Efficiency {
		t.Fatalf("efficiency did not rise with problem size: %.2f -> %.2f",
			pts[0].Efficiency, pts[1].Efficiency)
	}
	if pts[1].TasksPerWorker <= pts[0].TasksPerWorker {
		t.Fatal("tasks/worker not increasing")
	}
}

func TestReportRendering(t *testing.T) {
	spec := workloads.BTC(9, 1, 0)
	cfg := core.DefaultConfig(6)
	cfg.Trace = true
	m, res, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ReportRun(&buf, m, spec.Items(res))
	out := buf.String()
	for _, want := range []string{"run: 6 workers", "throughput:", "steals:", "peak uni-address", "utilization:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	ReportWorkers(&buf, m)
	if lines := strings.Count(buf.String(), "\n"); lines != 7 { // header + 6 workers
		t.Fatalf("worker table lines = %d:\n%s", lines, buf.String())
	}
}

func TestReportRunIsoVariant(t *testing.T) {
	spec := workloads.BTC(8, 1, 0)
	cfg := core.DefaultConfig(4)
	cfg.Scheme = core.SchemeIso
	m, res, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ReportRun(&buf, m, spec.Items(res))
	if !strings.Contains(buf.String(), "page faults") {
		t.Fatalf("iso report missing fault line:\n%s", buf.String())
	}
}

func TestAblateStragglerAbsorbed(t *testing.T) {
	pts, err := AblateStraggler(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts[1:] {
		// Work stealing must land clearly above the static-partition
		// bound and within reach of the capacity bound.
		if p.RelToUniform <= p.StaticRel {
			t.Fatalf("%s: rel %.2f not above static bound %.2f", p.Label, p.RelToUniform, p.StaticRel)
		}
		if p.RelToUniform < 0.7*p.CapacityRel {
			t.Fatalf("%s: rel %.2f far below capacity %.2f", p.Label, p.RelToUniform, p.CapacityRel)
		}
	}
}

func TestJSONReportRoundTrip(t *testing.T) {
	spec := workloads.BTC(8, 1, 0)
	cfg := core.DefaultConfig(4)
	cfg.Trace = true
	m, res, err := spec.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := BuildRunReport(m, spec.Items(res))
	if r.Tasks != spec.Expected || r.Throughput <= 0 {
		t.Fatalf("report: %+v", r)
	}
	if r.UtilizationWork <= 0 {
		t.Fatal("trace utilization missing from report")
	}
	var buf bytes.Buffer
	if err := WriteJSONReport(&buf, r); err != nil {
		t.Fatal(err)
	}
	var back RunReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Tasks != r.Tasks || back.Scheme != "uni-address" {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestAblateLifelines(t *testing.T) {
	pts, err := AblateLifelines(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	random, ll := pts[0], pts[1]
	if ll.Pushes == 0 {
		t.Fatal("lifeline mode pushed nothing")
	}
	if ll.FailedProbes >= random.FailedProbes {
		t.Fatalf("lifelines did not cut failed probes: %d vs %d", ll.FailedProbes, random.FailedProbes)
	}
}
