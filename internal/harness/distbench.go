package harness

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"uniaddr/internal/dist"
	"uniaddr/internal/workloads"
)

// The dist harness: the multi-process backend measured and validated
// through the same instruments as rt — a differential matrix with the
// simulator as oracle, a wall-clock scaling bench (BENCH_dist.json,
// same schema as BENCH_rt.json), and a crash probe that SIGKILLs a
// worker process mid-run and requires a structured error back.
//
// IMPORTANT: any binary that calls into these helpers spawns worker
// processes by re-exec'ing itself, so its main / TestMain must call
// dist.MaybeChild() before anything else.

// DistSkipReason explains why a Spec cannot run on the dist backend, or
// "" if it can. Same constraint as rt: gas-staged workloads need a
// machine-global heap neither real backend has yet.
func DistSkipReason(s workloads.Spec) string {
	if s.Setup != nil {
		return "requires machine Setup (global-heap staging); sim-only until dist grows a shared heap"
	}
	return ""
}

// DistDiffBackend is the multi-process backend as a differential
// target: workers = OS processes.
func DistDiffBackend() DiffBackend {
	return DiffBackend{
		Name: "dist",
		Skip: DistSkipReason,
		Run: func(spec workloads.Spec, workers int, seed uint64) (uint64, error) {
			cfg := dist.DefaultConfig(workers)
			cfg.Seed = seed
			res, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
			if err != nil {
				return 0, err
			}
			return res.Root, nil
		},
	}
}

// RunDistBench measures every runnable workload at every process count,
// reps times each, keeping the fastest run. The report reuses the
// RTBenchReport schema (Benchmark: "dist-scaling") so the comparison
// tooling works across backends; it lands in BENCH_dist.json. tune and
// the underprovisioned tagging work exactly as in RunRTBench.
func RunDistBench(wls []DiffWorkload, procCounts []int, reps int, seed uint64, tune BenchTuning) (RTBenchReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := RTBenchReport{
		Benchmark:  "dist-scaling",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Seed:       seed,
		Tuning:     tune,
	}
	warned := map[int]bool{}
	for _, wl := range wls {
		if reason := DistSkipReason(wl.Spec); reason != "" {
			rep.Skipped = append(rep.Skipped, RTBenchSkip{Workload: wl.Name, Reason: reason})
			continue
		}
		for _, procs := range procCounts {
			row := RTBenchRow{Workload: wl.Name, Workers: procs, Reps: reps,
				Underprovisioned: warnUnderprovisioned("dist-scaling", procs, warned)}
			var wallSum int64
			for i := 0; i < reps; i++ {
				cfg := dist.DefaultConfig(procs)
				cfg.Seed = seed + uint64(i)
				cfg.Grain = tune.Grain
				cfg.StealBatch = tune.StealBatch
				cfg.TierGroup = tune.TierGroup
				res, err := dist.Run(cfg, wl.Spec.Fid, wl.Spec.Locals, wl.Spec.Init)
				if err != nil {
					return RTBenchReport{}, fmt.Errorf("dist bench %s procs=%d: %w", wl.Name, procs, err)
				}
				if wl.Spec.Expected != 0 && res.Root != wl.Spec.Expected {
					return RTBenchReport{}, fmt.Errorf("dist bench %s procs=%d: result %d, want %d", wl.Name, procs, res.Root, wl.Spec.Expected)
				}
				wall := res.Elapsed.Nanoseconds()
				wallSum += wall
				if row.WallNS == 0 || wall < row.WallNS {
					ts := res.TotalStats()
					row.WallNS = wall
					row.Result = res.Root
					row.Tasks = ts.TasksExecuted
					row.StealsOK = ts.StealsOK
					row.StealBatches = ts.StealBatches
					row.BytesStolen = ts.BytesStolen
					row.Suspends = ts.Suspends
					row.StealAttempts = ts.StealAttempts
					row.StealAbortEmpty = ts.StealAbortEmpty
					row.StealAbortLock = ts.StealAbortLock
				}
			}
			row.MeanWallNS = wallSum / int64(reps)
			secs := float64(row.WallNS) / 1e9
			if secs > 0 {
				row.TasksPerSec = float64(row.Tasks) / secs
			}
			if wl.Spec.Items != nil {
				row.Items = wl.Spec.Items(row.Result)
				if secs > 0 {
					row.ItemsPerSec = float64(row.Items) / secs
				}
			} else {
				row.Note = "no items extractor; tasks/s only"
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// DistCrashProbe verifies the resilience contract end to end: SIGKILL a
// worker process mid-run and require a prompt, structured
// *dist.WorkerCrashError attributing the right rank — not a hang, not a
// silent wrong answer. Returns nil iff the contract holds.
func DistCrashProbe(workers int, seed uint64) error {
	if workers < 2 {
		workers = 2
	}
	cfg := dist.DefaultConfig(workers)
	cfg.Seed = seed
	cfg.KillRank = 1
	cfg.KillAfter = 50 * time.Millisecond
	// Big enough that the run cannot finish before the kill fires.
	spec := workloads.Fib(30, 2000)
	start := time.Now()
	_, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	elapsed := time.Since(start)
	if err == nil {
		return fmt.Errorf("dist crash probe: run with a SIGKILL'd worker reported success")
	}
	var crash *dist.WorkerCrashError
	if !errors.As(err, &crash) {
		return fmt.Errorf("dist crash probe: got %T (%v), want *dist.WorkerCrashError", err, err)
	}
	if crash.Rank != 1 {
		return fmt.Errorf("dist crash probe: crash attributed to rank %d, want 1", crash.Rank)
	}
	if elapsed > 30*time.Second {
		return fmt.Errorf("dist crash probe: detection took %v — that is a hang with extra steps", elapsed)
	}
	return nil
}
