package harness

import (
	"fmt"
	"io"

	"uniaddr/internal/core"
	"uniaddr/internal/stats"
	"uniaddr/internal/workloads"
)

// ScalingPoint is one core count on a Fig. 11 curve.
type ScalingPoint struct {
	Workers    int
	Items      uint64
	Seconds    stats.Sample
	Throughput stats.Sample // items per second
	Efficiency float64      // vs the first (smallest) worker count
	Steals     float64      // mean successful steals per run
}

// ScalingSweep runs spec at each worker count, reps times with distinct
// seeds, and reports throughput and parallel efficiency relative to the
// smallest count — the paper's Fig. 11 normalisation (480 cores).
func ScalingSweep(spec workloads.Spec, workers []int, reps int, seed uint64, tweak func(*core.Config)) ([]ScalingPoint, error) {
	if reps < 1 {
		reps = 1
	}
	var pts []ScalingPoint
	for _, p := range workers {
		pt := ScalingPoint{Workers: p}
		for r := 0; r < reps; r++ {
			cfg := core.DefaultConfig(p)
			cfg.Seed = seed + uint64(r)*7919
			if tweak != nil {
				tweak(&cfg)
			}
			m, res, err := spec.Run(cfg)
			if err != nil {
				return nil, fmt.Errorf("%s on %d workers: %w", spec.Name, p, err)
			}
			if res != spec.Expected {
				return nil, fmt.Errorf("%s on %d workers: result %d != %d", spec.Name, p, res, spec.Expected)
			}
			pt.Items = spec.Items(res)
			sec := m.ElapsedSeconds()
			pt.Seconds.Add(sec)
			pt.Throughput.Add(float64(pt.Items) / sec)
			pt.Steals += float64(m.TotalStats().StealsOK) / float64(reps)
		}
		pts = append(pts, pt)
	}
	base := pts[0]
	for i := range pts {
		speedup := pts[i].Throughput.Mean() / base.Throughput.Mean()
		ideal := float64(pts[i].Workers) / float64(base.Workers)
		pts[i].Efficiency = speedup / ideal
	}
	return pts, nil
}

// Fig11Curve is one benchmark line of Fig. 11.
type Fig11Curve struct {
	Label  string
	Points []ScalingPoint
}

// Fig11Benchmarks returns the four sub-figures' workloads at a scale.
// Per-task work costs follow the paper's regimes: BTC is pure tasking,
// UTS hashes per node, NQueens validates boards.
func Fig11Benchmarks(scale string) map[string][]struct {
	Label string
	Spec  workloads.Spec
} {
	type entry = struct {
		Label string
		Spec  workloads.Spec
	}
	small := map[string][]entry{
		"fig11a": {
			{"BTC iter=1 depth=19", workloads.BTC(19, 1, 0)},
			{"BTC iter=1 depth=20", workloads.BTC(20, 1, 0)},
		},
		"fig11b": {
			{"BTC iter=2 depth=9", workloads.BTC(9, 2, 0)},
			{"BTC iter=2 depth=10", workloads.BTC(10, 2, 0)},
		},
		"fig11c": {
			{"UTS depth=14", workloads.UTS(1, 14, workloads.DefaultUTSB0, 400)},
			{"UTS depth=15", workloads.UTS(1, 15, workloads.DefaultUTSB0, 400)},
		},
		"fig11d": {
			{"NQueens N=11", workloads.NQueens(11, 100)},
			{"NQueens N=12", workloads.NQueens(12, 100)},
		},
	}
	large := map[string][]entry{
		"fig11a": {
			{"BTC iter=1 depth=21", workloads.BTC(21, 1, 0)},
			{"BTC iter=1 depth=22", workloads.BTC(22, 1, 0)},
		},
		"fig11b": {
			{"BTC iter=2 depth=11", workloads.BTC(11, 2, 0)},
			{"BTC iter=2 depth=12", workloads.BTC(12, 2, 0)},
		},
		"fig11c": {
			{"UTS depth=16", workloads.UTS(1, 16, workloads.DefaultUTSB0, 400)},
			{"UTS depth=17", workloads.UTS(1, 17, workloads.DefaultUTSB0, 400)},
		},
		"fig11d": {
			{"NQueens N=13", workloads.NQueens(13, 100)},
			{"NQueens N=14", workloads.NQueens(14, 100)},
		},
	}
	if scale == "large" {
		return large
	}
	return small
}

// DefaultWorkerCounts mirrors the paper's 480→3840 sweep at 1/8 scale
// (the shape claim — ≥95% efficiency at 8× the base — is preserved).
var DefaultWorkerCounts = []int{60, 120, 240, 480}

// PaperWorkerCounts is the full-scale sweep.
var PaperWorkerCounts = []int{480, 960, 1920, 3840}

// PrintFig11 renders one sub-figure's curves.
func PrintFig11(w io.Writer, fig string, curves []Fig11Curve, clock float64) {
	fmt.Fprintf(w, "Figure 11 (%s): throughput and efficiency vs workers\n", fig)
	for _, c := range curves {
		fmt.Fprintf(w, "  %s (%s items/run)\n", c.Label, stats.HumanCount(float64(c.Points[0].Items)))
		fmt.Fprintf(w, "    %8s %16s %12s %12s %10s\n", "workers", "throughput/s", "±95%CI", "efficiency", "steals")
		for _, p := range c.Points {
			fmt.Fprintf(w, "    %8d %16s %12s %11.1f%% %10.0f\n",
				p.Workers, stats.HumanCount(p.Throughput.Mean()),
				stats.HumanCount(p.Throughput.CI95()), 100*p.Efficiency, p.Steals)
		}
	}
	_ = clock
}

// TrendPoint records parallel efficiency at a fixed worker ratio for
// one problem size — the bridge between simulator-scale runs and the
// paper's regime: efficiency at a fixed core ratio rises with problem
// size because steal/start-up costs amortise, converging toward the
// paper's ≥95% (measured there with ~10^5 more work per core).
type TrendPoint struct {
	Depth          uint64
	Tasks          uint64
	TasksPerWorker uint64
	Efficiency     float64
}

// EfficiencyTrend measures BTC(iter=1) efficiency between baseWorkers
// and ratio·baseWorkers for growing depths.
func EfficiencyTrend(depths []uint64, baseWorkers, ratio int, seed uint64) ([]TrendPoint, error) {
	if len(depths) == 0 {
		depths = []uint64{16, 18, 20}
	}
	var out []TrendPoint
	for _, d := range depths {
		spec := workloads.BTC(d, 1, 0)
		pts, err := ScalingSweep(spec, []int{baseWorkers, baseWorkers * ratio}, 1, seed, nil)
		if err != nil {
			return nil, err
		}
		out = append(out, TrendPoint{
			Depth:          d,
			Tasks:          spec.Expected,
			TasksPerWorker: spec.Expected / uint64(baseWorkers*ratio),
			Efficiency:     pts[1].Efficiency,
		})
	}
	return out, nil
}

// PrintTrend renders the size/efficiency trend.
func PrintTrend(w io.Writer, baseWorkers, ratio int, pts []TrendPoint) {
	fmt.Fprintf(w, "Efficiency vs problem size at a fixed %d× worker ratio (%d→%d, BTC iter=1)\n",
		ratio, baseWorkers, baseWorkers*ratio)
	fmt.Fprintf(w, "  %8s %12s %16s %12s\n", "depth", "tasks", "tasks/worker", "efficiency")
	for _, p := range pts {
		fmt.Fprintf(w, "  %8d %12s %16d %11.1f%%\n",
			p.Depth, stats.HumanCount(float64(p.Tasks)), p.TasksPerWorker, 100*p.Efficiency)
	}
	fmt.Fprintf(w, "  (the paper's 480→3840-core runs put ~10^5× more work behind each core,\n")
	fmt.Fprintf(w, "   which is where the ≥95%% headline lives; the trend here shows the same\n")
	fmt.Fprintf(w, "   convergence as size grows)\n")
}
