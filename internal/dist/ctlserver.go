package dist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
)

// ctlServer is the coordinator's control-plane endpoint: a persistent
// accept loop whose per-connection handlers run the hello→start→bye→ack
// conversation and fold the results into per-rank LATEST state. Losing
// a connection at any point is recoverable — the child redials and
// replays — so the server never needs reliable delivery, only
// idempotent registration: a re-hello supersedes the rank's previous
// connection, a re-bye overwrites, start is re-sent on demand.
type ctlServer struct {
	ln      *net.UnixListener
	workers int
	plan    *fault.Plan
	// byeWait bounds the handler's bye read: the run's MaxWall plus
	// control slack (the child cannot report before its loop exits).
	byeWait time.Duration

	mu       sync.Mutex
	conns    map[int]net.Conn
	pids     map[int]int
	byes     map[int]*byeMsg
	started  bool
	abortMsg string
	setupErr error
	pCount   int
	pDigest  uint64
}

func newCtlServer(ln *net.UnixListener, workers int, plan *fault.Plan, byeWait time.Duration) *ctlServer {
	pCount, pDigest := core.RegistryFingerprint()
	return &ctlServer{
		ln: ln, workers: workers, plan: plan, byeWait: byeWait,
		conns: make(map[int]net.Conn), pids: make(map[int]int), byes: make(map[int]*byeMsg),
		pCount: pCount, pDigest: pDigest,
	}
}

// serve accepts connections until the listener closes. Run in its own
// goroutine; handlers are per-connection goroutines.
func (s *ctlServer) serve() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		go s.handle(conn)
	}
}

// handle runs one connection's conversation. Any failure just closes
// the connection: the child's retry loop owns recovery.
func (s *ctlServer) handle(conn net.Conn) {
	dec := json.NewDecoder(conn) // ONE decoder per conn: it read-aheads
	conn.SetReadDeadline(time.Now().Add(ctlHelloTimeout))
	var hello helloMsg
	if err := dec.Decode(&hello); err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	if hello.Rank < 1 || hello.Rank >= s.workers {
		conn.Close()
		return
	}
	rank := hello.Rank

	s.mu.Lock()
	// Supersede: a redialing child's old connection (and its possibly
	// wedged handler) is closed so exactly one live conn serves a rank.
	if old := s.conns[rank]; old != nil && old != conn {
		old.Close()
	}
	s.conns[rank] = conn
	s.pids[rank] = hello.PID
	if s.setupErr == nil {
		if hello.Err != "" {
			s.setupErr = fmt.Errorf("dist: worker rank %d failed to attach the segment: %s", rank, hello.Err)
		} else if hello.Count != s.pCount || hello.Digest != s.pDigest {
			s.setupErr = &FingerprintMismatchError{
				Rank: rank, ParentCount: s.pCount, RankCount: hello.Count,
				ParentDigest: s.pDigest, RankDigest: hello.Digest,
			}
		}
	}
	s.mu.Unlock()

	// Barrier: wait for release or abort. Polling (2ms) keeps the state
	// machine trivial; the control plane is latency-insensitive at this
	// scale.
	deadline := time.Now().Add(handshakeTimeout)
	for {
		s.mu.Lock()
		abortMsg, started, superseded := s.abortMsg, s.started, s.conns[rank] != conn
		s.mu.Unlock()
		if superseded {
			conn.Close()
			return
		}
		if abortMsg != "" {
			json.NewEncoder(wrapCtl(conn, s.plan, rank)).Encode(startMsg{OK: false, Err: abortMsg})
			conn.Close()
			return
		}
		if started {
			break
		}
		if time.Now().After(deadline) {
			conn.Close()
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The start send goes through the fault wrapper: a dropped start is
	// exactly a lost barrier release, which the child's redial recovers.
	if err := json.NewEncoder(wrapCtl(conn, s.plan, rank)).Encode(startMsg{OK: true}); err != nil {
		conn.Close()
		return
	}

	conn.SetReadDeadline(time.Now().Add(s.byeWait))
	var bye byeMsg
	if err := dec.Decode(&bye); err != nil {
		conn.Close()
		return
	}
	s.mu.Lock()
	if s.conns[rank] == conn {
		s.byes[rank] = &bye
	}
	s.mu.Unlock()
	json.NewEncoder(wrapCtl(conn, s.plan, rank)).Encode(ackMsg{OK: true})
	conn.Close()
}

// awaitHellos blocks until every child rank has registered, a child
// reported a setup failure, or the deadline passes.
func (s *ctlServer) awaitHellos(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		setupErr := s.setupErr
		missing := -1
		for r := 1; r < s.workers; r++ {
			if _, ok := s.pids[r]; !ok {
				missing = r
				break
			}
		}
		s.mu.Unlock()
		if setupErr != nil {
			return setupErr
		}
		if missing < 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return &ControlTimeoutError{Phase: "hello", Rank: missing, Timeout: timeout}
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// release opens the start barrier; handlers (present and future) send
// start{OK:true} to their child.
func (s *ctlServer) release() {
	s.mu.Lock()
	s.started = true
	s.mu.Unlock()
}

// abort makes every handler reply start{OK:false, Err:msg} instead.
func (s *ctlServer) abort(msg string) {
	s.mu.Lock()
	s.abortMsg = msg
	s.mu.Unlock()
}

// bye returns rank's latest bye, or nil.
func (s *ctlServer) bye(rank int) *byeMsg {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byes[rank]
}

// waitBye polls for rank's bye for at most wait.
func (s *ctlServer) waitBye(rank int, wait time.Duration) *byeMsg {
	deadline := time.Now().Add(wait)
	for {
		if b := s.bye(rank); b != nil {
			return b
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// close shuts the listener (ending serve) and every registered conn
// (ending any blocked handler read).
func (s *ctlServer) close() {
	s.ln.Close()
	s.mu.Lock()
	for _, c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// faultConn injects control-plane faults at the socket Write layer.
// json.Encoder issues exactly one Write per Encode, so each decision
// maps to one whole message:
//
//   - Delay: the write happens late (a congested control network).
//   - Drop: the write never happens, but reports success — the peer
//     must discover the loss by deadline, exactly like a lost packet.
//   - Trunc: a prefix is written and the connection is severed — the
//     peer's decoder sees malformed JSON or EOF.
type faultConn struct {
	net.Conn
	plan *fault.Plan
	rank int
}

// wrapCtl wraps conn with the plan's control-plane schedule; a nil or
// ctl-disabled plan returns conn unchanged.
func wrapCtl(conn net.Conn, plan *fault.Plan, rank int) net.Conn {
	if plan == nil || !plan.Config().CtlEnabled() {
		return conn
	}
	return &faultConn{Conn: conn, plan: plan, rank: rank}
}

func (f *faultConn) Write(b []byte) (int, error) {
	dec := f.plan.CtlSend(f.rank)
	if dec.Delay > 0 {
		time.Sleep(dec.Delay)
	}
	switch {
	case dec.Trunc:
		f.Conn.Write(b[:len(b)/2])
		f.Conn.Close()
		return len(b), nil
	case dec.Drop:
		return len(b), nil
	default:
		return f.Conn.Write(b)
	}
}

// ctlBackoff sleeps the jittered exponential redial backoff for the
// given attempt (1-based retries): base<<n capped, with ±50% jitter so
// retrying children do not stampede in lockstep.
func ctlBackoff(rng *rand.Rand, attempt int) {
	d := ctlBackoffBase << uint(attempt-1)
	if d > ctlBackoffCap {
		d = ctlBackoffCap
	}
	jit := time.Duration(rng.Int63n(int64(d))) - d/2
	time.Sleep(d + jit)
}
