package dist_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"uniaddr/internal/dist"
	"uniaddr/internal/workloads"
)

// TestMain routes re-exec'd worker processes into the child entrypoint:
// when the parent (another run of this same test binary) spawns a
// worker, MaybeChild takes over the process before any test runs.
func TestMain(m *testing.M) {
	dist.MaybeChild()
	os.Exit(m.Run())
}

func runSpec(t *testing.T, cfg dist.Config, spec workloads.Spec) dist.Result {
	t.Helper()
	res, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	if err != nil {
		t.Fatalf("dist.Run: %v", err)
	}
	if res.Root != spec.Expected {
		t.Fatalf("root result %d, want %d", res.Root, spec.Expected)
	}
	return res
}

// TestDistSingleProcess: Workers=1 degenerates to an in-process run
// with no children — the cheapest end-to-end exercise of the segment
// machinery, so it runs even under -short.
func TestDistSingleProcess(t *testing.T) {
	cfg := dist.DefaultConfig(1)
	res := runSpec(t, cfg, workloads.Fib(12, 5))
	if got := res.TotalStats().StealsOK; got != 0 {
		t.Fatalf("%d steals with one worker", got)
	}
}

// TestDistSmoke runs real multi-process work: fib and nqueens at 2 and
// 4 worker processes, checking the root result and that genuine
// cross-process steals happened.
func TestDistSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	for _, workers := range []int{2, 4} {
		for _, wl := range []struct {
			name string
			spec workloads.Spec
		}{
			{"fib", workloads.Fib(18, 20)},
			{"nqueens", workloads.NQueens(7, 20)},
			{"pingpong", workloads.PingPong(16, 50, 0)},
		} {
			cfg := dist.DefaultConfig(workers)
			res := runSpec(t, cfg, wl.spec)
			ts := res.TotalStats()
			if ts.TasksExecuted != ts.Spawns+1 {
				t.Errorf("%s workers=%d: %d tasks executed, %d spawned (+1 root)",
					wl.name, workers, ts.TasksExecuted, ts.Spawns)
			}
			if len(res.PerWorker) != workers {
				t.Errorf("%s workers=%d: %d per-worker stat rows", wl.name, workers, len(res.PerWorker))
			}
		}
	}
}

// TestDistStealsHappen pins the point of the backend: with multiple
// processes and enough parallel slack, at least one frame migrates
// between address spaces.
func TestDistStealsHappen(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke test skipped in -short mode")
	}
	res := runSpec(t, dist.DefaultConfig(4), workloads.Fib(22, 200))
	if ts := res.TotalStats(); ts.StealsOK == 0 {
		t.Fatal("no cross-process steals in a 4-process fib(22) run")
	} else if ts.BytesStolen == 0 {
		t.Fatal("steals reported but zero bytes copied")
	}
}

// TestDistWorkerCrashReported is the resilience gate: SIGKILL a worker
// process mid-run and require a structured WorkerCrashError, promptly —
// not a hang, not a zero result.
func TestDistWorkerCrashReported(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(3)
	cfg.KillRank = 1
	cfg.KillAfter = 100 * time.Millisecond
	// Big enough that the run cannot finish before the kill fires.
	spec := workloads.Fib(30, 2000)
	start := time.Now()
	_, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with a SIGKILL'd worker reported success")
	}
	var crash *dist.WorkerCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("error is %T (%v), want *dist.WorkerCrashError", err, err)
	}
	if crash.Rank != 1 {
		t.Fatalf("crash attributed to rank %d, want 1", crash.Rank)
	}
	// "Detected, not hung": the failure must surface in seconds, far
	// inside the 2-minute watchdog.
	if elapsed > 30*time.Second {
		t.Fatalf("crash detection took %v", elapsed)
	}
}
