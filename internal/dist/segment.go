package dist

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// ctlHdr is the control page at the start of the segment: the words
// every process polls instead of receiving messages. Each sits alone on
// a cache line.
type ctlHdr struct {
	// done becomes 1 when some worker — in whichever process — completes
	// the root record. The one-sided analogue of the simulator's
	// termination broadcast.
	done atomic.Uint64
	_    [56]byte
	// fail holds rank+1 of the first process to report failure (or
	// failCoordinator for a coordinator-side abort: crash detection,
	// watchdog, handshake error). Non-zero fail releases every spin in
	// every process — including deque lock spins wedged behind a crashed
	// lock holder — so a dead worker yields a structured error, not a
	// hang.
	fail atomic.Uint64
	_    [56]byte
	// result is the root task's result; stored before done (both
	// seq-cst), same publish order as a record completion.
	result atomic.Uint64
	_      [56]byte
}

const (
	ctlBytes        = uint64(unsafe.Sizeof(ctlHdr{}))
	failCoordinator = 1 << 16
)

// hbSlot is one rank's liveness stamp: unix nanos of the rank's last
// heartbeat, alone on a cache line so stamping never contends. The
// child stamps it from a dedicated goroutine; the coordinator's monitor
// reads it one-sidedly — the same no-messages discipline as the data
// plane, so a hung worker is detected without the worker cooperating.
type hbSlot struct {
	stamp atomic.Uint64
	_     [56]byte
}

const hbSlotBytes = uint64(unsafe.Sizeof(hbSlot{}))

// segment is one process's view of the mapped shared region: the
// control header plus per-rank deque/table/arena views. The underlying
// bytes live at the same virtual address in every process, so the
// offsets these views encapsulate denote the same physical words
// everywhere.
type segment struct {
	bytes []byte
	lay   layout
	ctl   *ctlHdr
	// deques[r], tables[r], arenas[r] are THIS process's views of rank
	// r's structures. A view is just (pointer into segment, layout);
	// only rank r's process uses the owner-side operations.
	deques []*sched.Deque
	tables []*sched.Table
	arenas []*sched.Arena
	hb     []hbSlot
	// obs[r] is rank r's wall-clock event ring, hosted in the segment so
	// the coordinator can harvest every rank's trace after the run — even
	// a rank that was SIGKILLed mid-event (the flat ring decodes around
	// torn slots). nil entries when observability is off.
	obs []*obs.WallLog
}

// attachSegment builds views over mapped segment memory. Safe to call
// in every process, any number of times; it writes nothing.
func attachSegment(b []byte, lay layout) (*segment, error) {
	if uint64(len(b)) < lay.total {
		return nil, fmt.Errorf("dist: segment is %d bytes, layout needs %d", len(b), lay.total)
	}
	s := &segment{
		bytes: b,
		lay:   lay,
		ctl:   (*ctlHdr)(unsafe.Pointer(&b[0])),
		hb:    unsafe.Slice((*hbSlot)(unsafe.Pointer(&b[lay.hbOff])), lay.workers),
	}
	for r := 0; r < lay.workers; r++ {
		d, err := sched.NewDequeAt(b[lay.dequeOff[r]:], lay.dequeCap)
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d deque: %w", r, err)
		}
		t, err := sched.NewTableAt(b[lay.tableOff[r]:], lay.recordCap)
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d table: %w", r, err)
		}
		s.deques = append(s.deques, d)
		s.tables = append(s.tables, t)
		s.arenas = append(s.arenas, sched.NewArenaOver(lay.arenaBase, b[lay.arenaOff[r]:lay.arenaOff[r]+lay.arenaSize]))
	}
	return s, nil
}

// attachObs builds per-rank wall-log views over the segment's obs
// blocks. Like attachSegment it writes nothing — zeroed segment memory
// IS an empty ring — so the coordinator and every child can attach
// independently. now is the process-local clock (nil for a
// harvest-only view).
func (s *segment) attachObs(now func() uint64) error {
	if s.lay.obsCap == 0 {
		return nil
	}
	s.obs = make([]*obs.WallLog, s.lay.workers)
	for r := 0; r < s.lay.workers; r++ {
		l, err := obs.NewWallLogAt(s.bytes[s.lay.obsOff[r]:], r, s.lay.obsCap, now)
		if err != nil {
			return fmt.Errorf("dist: rank %d obs ring: %w", r, err)
		}
		s.obs[r] = l
	}
	return nil
}

// obsLog returns rank's wall log (nil when observability is off —
// every WallLog method is a nil-receiver no-op, so callers just emit).
func (s *segment) obsLog(rank int) *obs.WallLog {
	if s.obs == nil {
		return nil
	}
	return s.obs[rank]
}

// stopped is the shared stop predicate: run finished or failed.
func (s *segment) stopped() bool {
	return s.ctl.done.Load() != 0 || s.ctl.fail.Load() != 0
}

// failStore publishes a failure (first reporter wins is not needed —
// any non-zero value releases the spins; last-writer-wins is fine).
func (s *segment) failStore(code uint64) { s.ctl.fail.Store(code) }

// hbStamp records rank's liveness as unix nanos.
func (s *segment) hbStamp(rank int, unixNano uint64) { s.hb[rank].stamp.Store(unixNano) }

// hbLast returns rank's last heartbeat stamp (0 = never stamped).
func (s *segment) hbLast(rank int) uint64 { return s.hb[rank].stamp.Load() }
