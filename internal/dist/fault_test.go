package dist_test

import (
	"errors"
	"testing"
	"time"

	"uniaddr/internal/dist"
	"uniaddr/internal/fault"
	"uniaddr/internal/workloads"
)

// TestDistDoubleKill is the MaxWall-vs-crash arbitration regression:
// SIGKILL two ranks at once and require EXACTLY one structured
// WorkerCrashError — never a MaxWallError (the timeout is a symptom;
// the dead worker is the cause), never a zero-value Report, never a
// hang.
func TestDistDoubleKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(4)
	cfg.KillRanks = []int{1, 2}
	cfg.KillAfter = 100 * time.Millisecond
	cfg.MaxWall = 20 * time.Second
	spec := workloads.Fib(30, 2000)
	start := time.Now()
	_, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with two SIGKILL'd workers reported success")
	}
	var crash *dist.WorkerCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("error is %T (%v), want *dist.WorkerCrashError", err, err)
	}
	if crash.Rank != 1 && crash.Rank != 2 {
		t.Fatalf("crash attributed to rank %d, want 1 or 2", crash.Rank)
	}
	var wall *dist.MaxWallError
	if errors.As(err, &wall) {
		t.Fatalf("MaxWallError won over the crash: %v", err)
	}
	if elapsed > 15*time.Second {
		t.Fatalf("double-crash detection took %v", elapsed)
	}
}

// TestDistHungWorker: wedge a child (alive, not exited, heartbeats
// stopped) and require the heartbeat monitor to surface a structured
// WorkerHungError within the ISSUE's 1-second bound of the detection
// becoming possible (hang time + heartbeat timeout).
func TestDistHungWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process hang test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(3)
	cfg.HangRank = 1
	cfg.HangAfter = 50 * time.Millisecond
	cfg.HeartbeatInterval = 10 * time.Millisecond
	cfg.HeartbeatTimeout = 250 * time.Millisecond
	cfg.MaxWall = 20 * time.Second
	spec := workloads.Fib(30, 2000)
	start := time.Now()
	_, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("run with a hung worker reported success")
	}
	var hung *dist.WorkerHungError
	if !errors.As(err, &hung) {
		t.Fatalf("error is %T (%v), want *dist.WorkerHungError", err, err)
	}
	if hung.Rank != 1 {
		t.Fatalf("hang attributed to rank %d, want 1", hung.Rank)
	}
	if hung.Silence < cfg.HeartbeatTimeout {
		t.Fatalf("reported silence %v below the %v timeout", hung.Silence, cfg.HeartbeatTimeout)
	}
	// Detection becomes possible at HangAfter+HeartbeatTimeout ≈ 300ms;
	// the ISSUE requires the structured error within 1s of that. Allow
	// teardown slack on loaded CI.
	if limit := cfg.HangAfter + cfg.HeartbeatTimeout + time.Second; elapsed > limit+2*time.Second {
		t.Fatalf("hang detection took %v, want < ~%v", elapsed, limit)
	}
}

// TestDistStealFaults injects claim+copy faults into a real
// multi-process run: the resilience protocol must absorb every fault
// and still produce the correct root result.
func TestDistStealFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fault test skipped in -short mode")
	}
	for seed := uint64(1); seed <= 2; seed++ {
		cfg := dist.DefaultConfig(4)
		cfg.Seed = seed
		cfg.Fault = fault.Config{
			StealClaimFailProb: 0.1,
			StealCopyFailProb:  0.05,
		}
		spec := workloads.Fib(22, 200)
		res := runSpec(t, cfg, spec)
		ts := res.TotalStats()
		if ts.TasksExecuted != ts.Spawns+1 {
			t.Errorf("seed %d: %d executed, %d spawned (+1 root) under faults", seed, ts.TasksExecuted, ts.Spawns)
		}
		if ts.StealFaults != ts.StealRetries+ts.StealAbortsFault {
			t.Errorf("seed %d: faults %d != retries %d + fault aborts %d",
				seed, ts.StealFaults, ts.StealRetries, ts.StealAbortsFault)
		}
	}
}

// TestDistCtlFaults drops, truncates and delays control-plane messages;
// the redial-and-replay protocol must still deliver a correct run.
// Fault rates are chosen so 8 retry attempts make per-exchange failure
// astronomically unlikely (p_all_fail ≈ 0.3^8 ≈ 7e-5 per exchange).
func TestDistCtlFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process fault test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(3)
	cfg.Fault = fault.Config{
		CtlDropProb:  0.2,
		CtlTruncProb: 0.1,
		CtlDelayProb: 0.2,
		CtlDelay:     5 * time.Millisecond,
	}
	runSpec(t, cfg, workloads.Fib(18, 20))
}

// TestDistZeroFaultPinned pins the zero-fault dist path: identical
// Report (modulo wall-clock) to a config that never mentions faults,
// and zero resilience counters.
func TestDistZeroFaultPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	spec := workloads.Fib(18, 20)
	base := runSpec(t, dist.DefaultConfig(2), spec)
	cfg := dist.DefaultConfig(2)
	cfg.Fault = fault.Config{} // explicit zero value
	faulted := runSpec(t, cfg, spec)
	bt, ft := base.TotalStats(), faulted.TotalStats()
	if ft.StealFaults != 0 || ft.StealRetries != 0 || ft.StealRollbacks != 0 ||
		ft.StealAbortsFault != 0 || ft.VictimBlacklists != 0 || ft.FaultBackoffNS != 0 {
		t.Fatalf("zero-fault run moved resilience counters: %+v", ft)
	}
	// Steal interleaving varies run to run, but the conservation books
	// must match: same spawn tree either way.
	if bt.Spawns != ft.Spawns || bt.TasksExecuted != ft.TasksExecuted {
		t.Fatalf("zero fault.Config changed the task tree: base %d/%d vs %d/%d",
			bt.Spawns, bt.TasksExecuted, ft.Spawns, ft.TasksExecuted)
	}
}

// TestDistBadFaultConfigRejected: an invalid schedule must fail fast
// with a structured validation error before any child spawns.
func TestDistBadFaultConfigRejected(t *testing.T) {
	cfg := dist.DefaultConfig(2)
	cfg.Fault = fault.Config{CtlDropProb: 1.5}
	spec := workloads.Fib(10, 0)
	if _, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init); err == nil {
		t.Fatal("invalid fault config accepted by dist.Run")
	}
}

// TestDistSimOnlyKnobRejected: sim-only knobs cannot reach dist; the
// plan builder ignores them, so they must be screened out before Run —
// this pins that a sim-only-knob config yields a nil plan (no
// injection) rather than silently enabling anything.
func TestDistSimOnlyKnobIsNoop(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(2)
	cfg.Fault = fault.Config{ReadFailProb: 0.9} // sim-only; plan ignores it
	res := runSpec(t, cfg, workloads.Fib(14, 5))
	if ts := res.TotalStats(); ts.StealFaults != 0 {
		t.Fatalf("sim-only knob injected %d faults on dist", ts.StealFaults)
	}
}
