package dist_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"uniaddr/internal/dist"
	"uniaddr/internal/obs"
	"uniaddr/internal/workloads"
)

// TestDistObsHarvest runs a real multi-process workload with the
// segment-hosted event rings on and checks the parent harvests every
// rank's trace: wall-clock domain, steal lifecycle from the worker
// goroutines, and heartbeat/control events written by the CHILD
// processes (proof the rings crossed the process boundary).
func TestDistObsHarvest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process obs test skipped in -short mode")
	}
	// With steal-half batching a short run on a loaded host can finish
	// before any child process wins a steal; the harvest checks below
	// need at least one, so retry the run a few times (each run is a
	// fresh process tree — seed variation changes the interleaving).
	var res dist.Result
	spec := workloads.Fib(20, 100)
	for attempt := 0; ; attempt++ {
		cfg := dist.DefaultConfig(3)
		cfg.Obs = true
		cfg.Seed = uint64(1 + attempt)
		var err error
		res, err = dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
		if err != nil {
			t.Fatalf("dist.Run: %v", err)
		}
		if res.Root != spec.Expected {
			t.Fatalf("root result %d, want %d", res.Root, spec.Expected)
		}
		if res.TotalStats().StealsOK > 0 || attempt >= 4 {
			break
		}
	}
	ex := res.Obs
	if ex == nil {
		t.Fatal("Result.Obs nil with Config.Obs set")
	}
	if ex.Clock != obs.ClockWallNS {
		t.Fatalf("clock %q, want %q", ex.Clock, obs.ClockWallNS)
	}
	if len(ex.Logs) != 3 {
		t.Fatalf("%d rank logs, want 3", len(ex.Logs))
	}
	var kinds [64]uint64
	childEvents := 0
	for _, l := range ex.Logs {
		if l.Rank > 0 {
			childEvents += len(l.Events)
		}
		for _, e := range l.Events {
			kinds[e.Kind]++
		}
	}
	if childEvents == 0 {
		t.Fatal("no events harvested from child-process ranks")
	}
	if kinds[obs.KTask] == 0 {
		t.Error("no task events")
	}
	if kinds[obs.KStealOK] == 0 {
		t.Error("no successful-steal events in a 3-process fib(20) run")
	}
	// Child-only kinds: heartbeats come from the children's stamping
	// goroutines, ctl-hello/bye from their control handshakes.
	if kinds[obs.KHeartbeat] == 0 {
		t.Error("no heartbeat events from child processes")
	}
	if kinds[obs.KCtlHello] == 0 || kinds[obs.KCtlBye] == 0 {
		t.Errorf("control-plane events missing: hello %d bye %d",
			kinds[obs.KCtlHello], kinds[obs.KCtlBye])
	}
	// One KStealOK interval per successful batched round trip;
	// StealsOK counts the entries those trips moved.
	if ts := res.TotalStats(); res.Obs.Dropped() == 0 && kinds[obs.KStealOK] != ts.StealBatches {
		t.Errorf("KStealOK events %d, StealBatches counter %d", kinds[obs.KStealOK], ts.StealBatches)
	}

	// The harvested export must drive the unified Chrome exporter.
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceExport(&buf, ex, nil); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		ClockDomain string                   `json:"clockDomain"`
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if trace.ClockDomain != obs.ClockWallNS {
		t.Fatalf("trace clockDomain %q", trace.ClockDomain)
	}
}

// TestDistObsCrashHarvest is the crash-forensics gate: SIGKILL a rank
// mid-run and require that the failed run STILL returns the harvested
// export — with the dead rank's last recorded events in it. The ring
// lives in the shared segment, so the kill cannot take it down.
func TestDistObsCrashHarvest(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process crash test skipped in -short mode")
	}
	cfg := dist.DefaultConfig(3)
	cfg.Obs = true
	cfg.KillRank = 1
	cfg.KillAfter = 200 * time.Millisecond
	spec := workloads.Fib(30, 2000)
	res, err := dist.Run(cfg, spec.Fid, spec.Locals, spec.Init)
	if err == nil {
		t.Fatal("run with a SIGKILL'd worker reported success")
	}
	var crash *dist.WorkerCrashError
	if !errors.As(err, &crash) {
		t.Fatalf("error is %T (%v), want *dist.WorkerCrashError", err, err)
	}
	ex := res.Obs
	if ex == nil {
		t.Fatal("Result.Obs nil on crash path — dead rank's trace lost")
	}
	var dead *obs.ExportLog
	for i := range ex.Logs {
		if ex.Logs[i].Rank == int32(crash.Rank) {
			dead = &ex.Logs[i]
		}
	}
	if dead == nil {
		t.Fatalf("no log for killed rank %d", crash.Rank)
	}
	if len(dead.Events) == 0 {
		t.Fatalf("killed rank %d ran for %v but its ring harvested empty", crash.Rank, cfg.KillAfter)
	}
	for _, e := range dead.Events {
		if e.Kind.String()[0] == 'k' { // Kind.String falls back to "kind(%d)"
			t.Fatalf("killed rank's ring decoded a corrupt kind %d", e.Kind)
		}
	}
	// And the export still serialises.
	var buf bytes.Buffer
	if err := obs.WriteChromeTraceExport(&buf, ex, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDistObsOff pins the default: without Config.Obs the segment grows
// no obs blocks and the result carries no export.
func TestDistObsOff(t *testing.T) {
	cfg := dist.DefaultConfig(1)
	res := runSpec(t, cfg, workloads.Fib(12, 5))
	if res.Obs != nil {
		t.Fatal("Result.Obs non-nil with Config.Obs unset")
	}
}
