package dist

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync/atomic"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/obs"
)

// MaybeChild is the worker-process entrypoint hook. Any binary that can
// act as a dist parent (cmd/uniaddr-bench, test binaries) must call it
// FIRST in main/TestMain: the parent re-execs its own executable with
// the child spec in the environment, and MaybeChild detects that, runs
// the worker to completion and exits the process. In an ordinary
// invocation (no spec in the environment) it returns immediately.
//
// Re-execing the same binary is also what keeps the function registry
// aligned: every process runs the same package init chain, so the same
// names are registered — which the hello fingerprint then verifies
// rather than assumes.
func MaybeChild() {
	spec, present, err := childSpecFromEnv()
	if !present {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(childMain(spec))
}

// ctlConn bundles a control connection with its one Encoder/Decoder
// pair. ONE decoder per connection is load-bearing: json.Decoder reads
// ahead, so a second decoder on the same conn could lose buffered
// bytes of the next message.
type ctlConn struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

func (c *ctlConn) close() {
	if c != nil && c.conn != nil {
		c.conn.Close()
	}
}

// dialCtl dials the coordinator, with the child's sends routed through
// the fault wrapper.
func dialCtl(spec childSpec, plan *fault.Plan) (*ctlConn, error) {
	raw, err := net.Dial("unix", spec.SockPath)
	if err != nil {
		return nil, err
	}
	conn := wrapCtl(raw, plan, spec.Rank)
	return &ctlConn{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}, nil
}

// ctlHandshake runs hello→start with bounded per-exchange deadlines,
// redialing with jittered exponential backoff on any failure. Every
// attempt replays the whole exchange — the coordinator's state machine
// is idempotent, so replays are always safe. setupErrText, when
// non-empty, travels in the hello and the returned start will be an
// abort.
func ctlHandshake(spec childSpec, plan *fault.Plan, setupErrText string, rng *rand.Rand, wlog *obs.WallLog) (*ctlConn, startMsg, error) {
	count, digest := core.RegistryFingerprint()
	hello := helloMsg{Rank: spec.Rank, PID: os.Getpid(), Count: count, Digest: digest, Err: setupErrText}
	var lastErr error
	for attempt := 0; attempt < ctlMaxAttempts; attempt++ {
		if attempt > 0 {
			wlog.Instant(obs.KCtlRetry, uint64(attempt), 0, -1)
			ctlBackoff(rng, attempt)
		}
		c, err := dialCtl(spec, plan)
		if err != nil {
			lastErr = err
			continue
		}
		if err := c.enc.Encode(hello); err != nil {
			lastErr = err
			c.close()
			continue
		}
		c.conn.SetReadDeadline(time.Now().Add(ctlStartTimeout))
		var start startMsg
		if err := c.dec.Decode(&start); err != nil {
			lastErr = err
			c.close()
			continue
		}
		c.conn.SetReadDeadline(time.Time{})
		return c, start, nil
	}
	return nil, startMsg{}, fmt.Errorf("dist child %d: handshake failed after %d attempts: %w", spec.Rank, ctlMaxAttempts, lastErr)
}

// sendBye delivers the final report and waits for the coordinator's
// ack. A lost bye or ack is retried on a FRESH handshake: the child
// redials, replays hello (the coordinator re-sends start immediately,
// the barrier being long open) and resends the bye. Without the ack a
// dropped final report would be indistinguishable from success.
func sendBye(spec childSpec, plan *fault.Plan, c *ctlConn, bye byeMsg, rng *rand.Rand, wlog *obs.WallLog) error {
	var lastErr error
	for attempt := 0; attempt < ctlMaxAttempts; attempt++ {
		if attempt > 0 {
			wlog.Instant(obs.KCtlRetry, uint64(attempt), 0, -1)
			ctlBackoff(rng, attempt)
			c.close()
			var start startMsg
			var err error
			// One re-handshake try per bye attempt keeps the total
			// conversation bounded by ctlMaxAttempts dials, not a
			// nested product.
			if c, err = dialCtl(spec, plan); err != nil {
				lastErr = err
				c = &ctlConn{}
				continue
			}
			count, digest := core.RegistryFingerprint()
			if err := c.enc.Encode(helloMsg{Rank: spec.Rank, PID: os.Getpid(), Count: count, Digest: digest}); err != nil {
				lastErr = err
				continue
			}
			c.conn.SetReadDeadline(time.Now().Add(ctlStartTimeout))
			if err := c.dec.Decode(&start); err != nil {
				lastErr = err
				continue
			}
			c.conn.SetReadDeadline(time.Time{})
			if !start.OK {
				// The run is aborting; the coordinator no longer wants
				// the bye. Not an error worth retrying.
				return nil
			}
		}
		if c.conn == nil {
			continue
		}
		if err := c.enc.Encode(bye); err != nil {
			lastErr = err
			continue
		}
		c.conn.SetReadDeadline(time.Now().Add(ctlAckTimeout))
		var ack ackMsg
		if err := c.dec.Decode(&ack); err != nil {
			lastErr = err
			continue
		}
		c.conn.SetReadDeadline(time.Time{})
		if ack.OK {
			return nil
		}
	}
	return fmt.Errorf("dist child %d: bye not acknowledged after %d attempts: %w", spec.Rank, ctlMaxAttempts, lastErr)
}

// childMain is a worker process's whole life: map the segment at the
// agreed address, say hello, wait for start, run the scheduler loop
// (stamping heartbeats), say bye and wait for the ack. All scheduling
// in between is one-sided shared memory.
func childMain(spec childSpec) int {
	lay := spec.layout()
	var seg *segment
	var setupErr error
	if err := assertLayoutSane(lay); err != nil {
		setupErr = err
	} else if f, err := os.OpenFile(spec.ShmPath, os.O_RDWR, 0); err != nil {
		setupErr = fmt.Errorf("dist: opening segment file: %w", err)
	} else {
		defer f.Close()
		// The child maps at EXACTLY the parent's address — no fallback.
		// If something already occupies that range in this process, the
		// uni-address contract is unsatisfiable and the error travels
		// back in the hello.
		b, err := mapSegmentAt(f, lay.total, uintptr(spec.SegBase))
		if err != nil {
			setupErr = err
		} else {
			seg, setupErr = attachSegment(b, lay)
			if setupErr == nil {
				// Attach this process's views of the segment-hosted event
				// rings (writes nothing; the parent zeroed the file).
				setupErr = seg.attachObs(wallClockSince(spec.ObsEpoch))
			}
		}
	}
	var wlog *obs.WallLog
	if seg != nil && setupErr == nil {
		wlog = seg.obsLog(spec.Rank)
	}
	plan, planErr := fault.NewPlan(spec.Fault, spec.Workers)
	if setupErr == nil && planErr != nil {
		setupErr = planErr
	}

	rng := rand.New(rand.NewSource(int64(spec.Seed*0x9e3779b97f4a7c15 + uint64(spec.Rank)*0xd6e8feb86659fd93 + 7)))
	setupErrText := ""
	if setupErr != nil {
		setupErrText = setupErr.Error()
	}
	hs := wlog.Clock()
	c, start, err := ctlHandshake(spec, plan, setupErrText, rng, wlog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: %v\n", spec.Rank, err)
		return 2
	}
	defer c.close()
	if setupErr != nil {
		return 3
	}
	if !start.OK {
		fmt.Fprintf(os.Stderr, "dist child %d: aborted by coordinator: %s\n", spec.Rank, start.Err)
		return 4
	}
	wlog.Emit(obs.KCtlHello, hs, wlog.Clock()-hs, 0, 0, -1)

	// Injected hang: after the delay the whole process falls silent —
	// the worker wedges at its next task entry AND the heartbeat stops,
	// modelling a process that is alive (no exit for the crash monitor
	// to see) but making no progress.
	var hung atomic.Bool
	if spec.HangRank == spec.Rank && spec.HangRank > 0 {
		time.AfterFunc(spec.HangAfter, func() { hung.Store(true) })
	}
	if spec.HeartbeatInterval > 0 {
		go func() {
			for !hung.Load() {
				seg.hbStamp(spec.Rank, uint64(time.Now().UnixNano()))
				// Second producer on the rank's ring — the FAA slot
				// reservation makes this safe beside the worker goroutine.
				wlog.Instant(obs.KHeartbeat, 0, 0, -1)
				time.Sleep(spec.HeartbeatInterval)
			}
		}()
	}

	w := newWorker(seg, spec.Rank, spec.Seed, plan, &hung, tuning{grain: spec.Grain, stealBatch: spec.StealBatch, tierGroup: spec.TierGroup})
	runErr := w.run()
	bye := byeMsg{Rank: spec.Rank, Stats: w.stats}
	if runErr != nil {
		// Publish failure through the segment FIRST so sibling spins
		// unwedge even if the control plane is slow, then report it.
		seg.failStore(uint64(spec.Rank) + 1)
		bye.Err = runErr.Error()
	}
	bs := wlog.Clock()
	if err := sendBye(spec, plan, c, bye, rng, wlog); err != nil {
		fmt.Fprintf(os.Stderr, "%v\n", err)
		return 2
	}
	wlog.Emit(obs.KCtlBye, bs, wlog.Clock()-bs, 0, 0, -1)
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: %v\n", spec.Rank, runErr)
		return 5
	}
	return 0
}
