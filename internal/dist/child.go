package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"os"

	"uniaddr/internal/core"
)

// MaybeChild is the worker-process entrypoint hook. Any binary that can
// act as a dist parent (cmd/uniaddr-bench, test binaries) must call it
// FIRST in main/TestMain: the parent re-execs its own executable with
// the child spec in the environment, and MaybeChild detects that, runs
// the worker to completion and exits the process. In an ordinary
// invocation (no spec in the environment) it returns immediately.
//
// Re-execing the same binary is also what keeps the function registry
// aligned: every process runs the same package init chain, so the same
// names are registered — which the hello fingerprint then verifies
// rather than assumes.
func MaybeChild() {
	spec, present, err := childSpecFromEnv()
	if !present {
		return
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	os.Exit(childMain(spec))
}

// childMain is a worker process's whole life: map the segment at the
// agreed address, say hello, wait for start, run the scheduler loop,
// say bye. All scheduling in between is one-sided shared memory.
func childMain(spec childSpec) int {
	conn, err := net.Dial("unix", spec.SockPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: control socket: %v\n", spec.Rank, err)
		return 2
	}
	defer conn.Close()
	enc := json.NewEncoder(conn)
	dec := json.NewDecoder(conn)

	lay := spec.layout()
	var seg *segment
	var setupErr error
	if err := assertLayoutSane(lay); err != nil {
		setupErr = err
	} else if f, err := os.OpenFile(spec.ShmPath, os.O_RDWR, 0); err != nil {
		setupErr = fmt.Errorf("dist: opening segment file: %w", err)
	} else {
		defer f.Close()
		// The child maps at EXACTLY the parent's address — no fallback.
		// If something already occupies that range in this process, the
		// uni-address contract is unsatisfiable and the error travels
		// back in the hello.
		b, err := mapSegmentAt(f, lay.total, uintptr(spec.SegBase))
		if err != nil {
			setupErr = err
		} else {
			seg, setupErr = attachSegment(b, lay)
		}
	}

	count, digest := core.RegistryFingerprint()
	hello := helloMsg{Rank: spec.Rank, PID: os.Getpid(), Count: count, Digest: digest}
	if setupErr != nil {
		hello.Err = setupErr.Error()
	}
	if err := enc.Encode(hello); err != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: sending hello: %v\n", spec.Rank, err)
		return 2
	}
	if setupErr != nil {
		return 3
	}

	var start startMsg
	if err := dec.Decode(&start); err != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: waiting for start: %v\n", spec.Rank, err)
		return 2
	}
	if !start.OK {
		fmt.Fprintf(os.Stderr, "dist child %d: aborted by coordinator: %s\n", spec.Rank, start.Err)
		return 4
	}

	w := newWorker(seg, spec.Rank, spec.Seed)
	runErr := w.run()
	bye := byeMsg{Rank: spec.Rank, Stats: w.stats}
	if runErr != nil {
		// Publish failure through the segment FIRST so sibling spins
		// unwedge even if the control plane is slow, then report it.
		seg.failStore(uint64(spec.Rank) + 1)
		bye.Err = runErr.Error()
	}
	if err := enc.Encode(bye); err != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: sending bye: %v\n", spec.Rank, err)
		return 2
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dist child %d: %v\n", spec.Rank, runErr)
		return 5
	}
	return 0
}
