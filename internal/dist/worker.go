package dist

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/gas"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// Stats counts one worker process's scheduling events — the dist
// counterparts of rt.Stats. Owner-written during the run; serialised
// into the bye message (children) or read after the loop exits
// (parent).
type Stats struct {
	TasksExecuted uint64
	Spawns        uint64
	JoinsFast     uint64
	JoinsMiss     uint64
	Suspends      uint64
	ResumesLocal  uint64
	ResumesWait   uint64
	ParentStolen  uint64

	StealAttempts   uint64
	StealsOK        uint64
	StealAbortEmpty uint64
	StealAbortLock  uint64
	BytesStolen     uint64

	// Steal-half batching, mirroring rt.Stats: batched round trips and
	// the entries they moved.
	StealBatches      uint64
	StealBatchEntries uint64

	// Steal-hint counters, mirroring rt.Stats: probes routed by the
	// victim's segment-hosted occupancy hint or the last-victim cache
	// vs blind random probes.
	StealHintProbes  uint64
	StealCacheProbes uint64
	StealBlindProbes uint64

	// IdleSleeps counts idle-backoff sleep episodes — the dist analogue
	// of rt's Parks (there is no cross-process futex to park on, so an
	// idle worker sleeps in capped exponential backoff instead).
	IdleSleeps uint64

	WorkCycles   uint64
	MaxStackUsed uint64
	// RecordsLive is the owner-table live count sampled after the loop
	// exits; the coordinator sums it across workers for the quiescence
	// check (exactly one record — the root's — survives a clean run).
	RecordsLive int

	// Fault-resilience counters (non-zero only under injection; see
	// sched.ResilienceStats, whose fields these mirror).
	StealFaults      uint64
	StealRetries     uint64
	StealRollbacks   uint64
	StealAbortsFault uint64
	VictimBlacklists uint64
	FaultBackoffNS   uint64
}

// savedCtx is a suspended thread swapped out of the uni-address region
// onto the process-private Go heap, exactly as in rt: the bytes leave
// the arena so stealing stays legal, and return to their original VA on
// resume.
type savedCtx struct {
	base mem.VA
	size uint64
	buf  []byte
	rec  *sched.Record
}

const (
	ctxPoolCap = 64
	envPoolCap = 64
	// idleSpinRounds of cheap rechecks precede the first sleep;
	// idleSleepMin..idleSleepMax bound the backoff ladder. Sleeping —
	// not parking — because wake signals cannot cross process
	// boundaries through the segment without a futex, and the paper's
	// protocol keeps the data plane free of messages.
	idleSpinRounds = 64
	idleSleepMin   = 20 * time.Microsecond
	idleSleepMax   = time.Millisecond
)

// worker is one process's scheduling context. It implements core.Exec,
// so registered task functions run on it unchanged; every cross-worker
// interaction goes through the segment views (one-sided), never through
// a socket.
type worker struct {
	seg  *segment
	rank int

	arena   *sched.Arena // own arena view (owner side)
	deque   *sched.Deque // own deque view (owner side)
	records *sched.Table // own table view (owner side)

	waitq []savedCtx
	rng   *rand.Rand
	stats Stats
	spin  uint64

	stopFn func() bool

	lastVictim int32
	idleRounds int
	sleep      time.Duration

	// tiers orders victim ranks by rank-group distance (the dist
	// stand-in for fabric topology); the hint sweep walks them
	// near-to-far. stealBuf is the reusable batch buffer; grain is the
	// workload granularity cutoff surfaced via ExecGrain.
	tiers    [sched.NumTiers][]int
	stealBuf []sched.Entry
	grain    uint64

	// res is the thief-side fault state machine (owner-only; dormant
	// and free without an injector). hung, when non-nil and set, wedges
	// the worker at its next task entry (injected hang; see childMain).
	res  *sched.Resilience
	hung *atomic.Bool

	// wlog is this rank's segment-hosted wall-clock event ring (nil when
	// observability is off; every method is a nil no-op). The heartbeat
	// goroutine writes the same ring — it is multi-producer-safe.
	wlog *obs.WallLog

	ctxFree [][]byte
	envFree []*core.Env

	// Root plumbing; meaningful on rank 0 only (the init closure cannot
	// cross the process boundary, which is why the parent IS rank 0).
	rootFid    core.FuncID
	rootLocals uint32
	rootInit   func(*core.Env)
}

// tuning bundles the scheduler knobs every process must agree on; the
// parent fills it from Config, children from the childSpec.
type tuning struct {
	grain      uint64
	stealBatch int
	tierGroup  int
}

// stealBatchLimit resolves the StealBatch knob against the deque's
// claim bound: 0 → maxClaim, otherwise clamp to [1, maxClaim].
func stealBatchLimit(batch int, maxClaim uint64) int {
	n := int(maxClaim)
	if batch > 0 && batch < n {
		n = batch
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newWorker(seg *segment, rank int, seed uint64, plan *fault.Plan, hung *atomic.Bool, tune tuning) *worker {
	w := &worker{
		seg:        seg,
		rank:       rank,
		arena:      seg.arenas[rank],
		deque:      seg.deques[rank],
		records:    seg.tables[rank],
		rng:        rand.New(rand.NewSource(int64(seed*0x9e3779b97f4a7c15 + uint64(rank)*0xbf58476d1ce4e5b9 + 1))),
		lastVictim: -1,
		hung:       hung,
		grain:      tune.grain,
		tiers:      sched.BuildTiers(rank, seg.lay.workers, tune.tierGroup),
	}
	w.stealBuf = make([]sched.Entry, stealBatchLimit(tune.stealBatch, w.deque.MaxClaim()))
	// The interface value must be nil (not a typed nil *Plan) for the
	// resilience fast path to collapse.
	var inj sched.StealInjector
	if plan != nil {
		inj = plan
	}
	w.res = sched.NewResilience(rank, sched.DefaultResilienceConfig(), inj)
	w.wlog = seg.obsLog(rank)
	w.res.Log = w.wlog
	w.stopFn = seg.stopped
	return w
}

// run is the scheduler loop: pop local work, else clear dead stacks,
// resume a READY waiter or steal, else back off. Returns the panic (as
// an error) if the loop or a task body blew up; the caller publishes it
// through the fail word and the control plane.
func (w *worker) run() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, aborted := r.(abortRun); !aborted {
				err = fmt.Errorf("dist: worker %d panicked: %v", w.rank, r)
			}
		}
		w.stats.MaxStackUsed = w.arena.Max()
		w.stats.RecordsLive = w.records.Live()
		rs := w.res.Stats
		w.stats.StealFaults = rs.StealFaults
		w.stats.StealRetries = rs.StealRetries
		w.stats.StealRollbacks = rs.StealRollbacks
		w.stats.StealAbortsFault = rs.StealAbortsFault
		w.stats.VictimBlacklists = rs.VictimBlacklists
		w.stats.FaultBackoffNS = rs.BackoffNS
	}()
	if w.rank == 0 {
		w.runRoot()
	}
	for !w.seg.stopped() {
		if ent, ok := w.deque.Pop(w.stopFn); ok {
			w.stats.ResumesLocal++
			w.invoke(ent.FrameBase, ent.FrameSize)
			w.idleReset()
			continue
		}
		if !w.clearDead() {
			return nil
		}
		if w.seg.stopped() {
			return nil
		}
		if w.resumeReady() {
			w.idleReset()
			continue
		}
		if w.trySteal() {
			w.idleReset()
			continue
		}
		w.idleWait()
	}
	return nil
}

// clearDead empties the arena of dead stolen-thread copies, winning the
// deque lock once so any thief mid-copy of our last entry has committed
// before the bytes can be rewritten (same argument as rt.clearDead —
// the protocol does not care that the thief is another process).
func (w *worker) clearDead() bool {
	if !w.deque.LockOwner(w.stopFn) {
		return false
	}
	w.deque.Unlock()
	w.arena.Clear()
	return true
}

func (w *worker) idleReset() {
	w.idleRounds = 0
	w.sleep = idleSleepMin
}

// idleWait backs off an idle worker: spin cheaply first, then sleep
// with exponential backoff capped at idleSleepMax, so a crashed-quiet
// cluster costs microwatts while a wake-up (new stealable work) is
// noticed within a millisecond.
func (w *worker) idleWait() {
	w.idleRounds++
	if w.idleRounds < idleSpinRounds {
		runtime.Gosched()
		return
	}
	w.stats.IdleSleeps++
	ns := w.wlog.Clock()
	time.Sleep(w.sleep)
	w.wlog.Nap(ns)
	if w.sleep < idleSleepMax {
		w.sleep *= 2
	}
}

// runRoot builds the root thread's frame and runs it. The root record
// (rootRec: rank 0, index 0) was allocated by the coordinator before
// the start barrier.
func (w *worker) runRoot() {
	size := core.FrameBytes(w.rootLocals)
	base := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.MustSlice(base, core.FrameHeaderBytes), w.rootFid, w.rootLocals, rootRec())
	if w.rootInit != nil {
		e := w.getEnv(base, size, 0)
		w.rootInit(e)
		w.putEnv(e)
	}
	w.invoke(base, size)
}

func (w *worker) newFrame(size uint64) mem.VA {
	base, err := w.arena.AllocBelow(size)
	if err != nil {
		panic(err)
	}
	clear(w.arena.MustSlice(base, size))
	return base
}

func (w *worker) getEnv(base mem.VA, size uint64, rp uint32) *core.Env {
	if n := len(w.envFree); n > 0 {
		e := w.envFree[n-1]
		w.envFree[n-1] = nil
		w.envFree = w.envFree[:n-1]
		e.Reset(w, base, size, rp)
		return e
	}
	return core.NewEnv(w, base, size, rp)
}

func (w *worker) putEnv(e *core.Env) {
	if len(w.envFree) < envPoolCap {
		w.envFree = append(w.envFree, e)
	}
}

func (w *worker) getCtxBuf(n uint64) []byte {
	for len(w.ctxFree) > 0 {
		buf := w.ctxFree[len(w.ctxFree)-1]
		w.ctxFree[len(w.ctxFree)-1] = nil
		w.ctxFree = w.ctxFree[:len(w.ctxFree)-1]
		if uint64(cap(buf)) >= n {
			return buf[:n]
		}
	}
	return make([]byte, n)
}

func (w *worker) putCtxBuf(buf []byte) {
	if len(w.ctxFree) < ctxPoolCap {
		w.ctxFree = append(w.ctxFree, buf)
	}
}

// abortRun is the sentinel unwound through task frames when the run
// has FAILED (crashed sibling, watchdog): the task tree's state no
// longer matters, so the fastest correct response is to abandon the
// in-flight subtree wholesale. Never raised for normal completion —
// `done` lets in-flight tasks finish naturally.
type abortRun struct{}

// invoke runs (or resumes) the thread whose stack starts at base.
func (w *worker) invoke(base mem.VA, size uint64) core.Status {
	if w.seg.ctl.fail.Load() != 0 {
		panic(abortRun{})
	}
	if w.hung != nil && w.hung.Load() {
		// Injected hang: wedge, don't exit. A plain sleep loop — NOT
		// select{} — because Go's deadlock detector would turn a fully
		// blocked process into a crash, and the whole point is to look
		// alive while making no progress. Only the coordinator's
		// heartbeat monitor can end this (it kills the process).
		for {
			time.Sleep(time.Hour)
		}
	}
	h := core.DecodeFrameHeader(w.arena.MustSlice(base, core.FrameHeaderBytes))
	e := w.getEnv(base, size, h.Resume)
	ts := w.wlog.Clock()
	st := core.TaskFn(h.Fid)(e)
	w.wlog.Emit(obs.KTask, ts, w.wlog.Clock()-ts, uint64(h.Fid), 0, -1)
	if st == core.Done {
		if !e.Returned() {
			w.ExecComplete(e.Self(), 0)
		}
		w.stats.TasksExecuted++
		if err := w.arena.FreeLowest(base, size); err != nil {
			panic(err)
		}
	}
	w.putEnv(e)
	return st
}

// resumeReady restores the first suspended thread whose join target has
// completed. The completer may be any process; its Done store is a
// one-sided write into our rank's table region, observed here by a
// plain polling load.
func (w *worker) resumeReady() bool {
	for i := range w.waitq {
		if w.waitq[i].rec.Done.Load() != 0 {
			sc := w.waitq[i]
			copy(w.waitq[i:], w.waitq[i+1:])
			w.waitq[len(w.waitq)-1] = savedCtx{}
			w.waitq = w.waitq[:len(w.waitq)-1]
			w.resumeSaved(sc)
			return true
		}
	}
	return false
}

func (w *worker) resumeSaved(sc savedCtx) {
	if err := w.arena.Install(sc.base, sc.size); err != nil {
		panic(err)
	}
	copy(w.arena.MustSlice(sc.base, sc.size), sc.buf)
	w.putCtxBuf(sc.buf)
	w.stats.ResumesWait++
	w.invoke(sc.base, sc.size)
}

// trySteal attempts one steal round, hint-guided as in rt: cached
// victim, then a distance-tiered occupancy-hint sweep (near ranks
// first; see sched.BuildTiers), then one blind probe. Every read here
// is a one-sided load on another process's deque region — the
// occupancy hint word lives in the victim's deque header INSIDE the
// shared segment, so a probe decision costs one remote cache line, not
// a lock RMW.
func (w *worker) trySteal() bool {
	n := w.seg.lay.workers
	if n < 2 || !w.arena.Empty() {
		return false
	}
	if lv := w.lastVictim; lv >= 0 {
		if d := w.seg.deques[lv]; d.Occupancy() > 0 && !w.res.Banned(int(lv)) {
			w.stats.StealCacheProbes++
			w.wlog.Instant(obs.KProbeCache, 0, 0, int(lv))
			if w.stealFrom(int(lv)) {
				return true
			}
		}
		w.lastVictim = -1
	}
	for tier := range w.tiers {
		cands := w.tiers[tier]
		if len(cands) == 0 {
			continue
		}
		start := w.rng.Intn(len(cands))
		for i := 0; i < len(cands); i++ {
			vi := cands[(start+i)%len(cands)]
			if w.seg.deques[vi].Occupancy() > 0 && !w.res.Banned(vi) {
				w.stats.StealHintProbes++
				w.wlog.Instant(obs.KProbeHint, 0, 0, vi)
				return w.stealFrom(vi)
			}
		}
	}
	// Blind probe, steering around blacklisted victims for a few
	// redraws then proceeding anyway (liveness never depends on the
	// ban set; see rt.blindVictim).
	vi := 0
	for redraw := 0; redraw < 4; redraw++ {
		vi = w.rng.Intn(n - 1)
		if vi >= w.rank {
			vi++
		}
		if !w.res.Banned(vi) {
			break
		}
	}
	w.stats.StealBlindProbes++
	w.wlog.Instant(obs.KProbeBlind, 0, 0, vi)
	return w.stealFrom(vi)
}

// stealFrom is the thief side of the THE protocol against rank vi,
// through the shared resilience layer — batched: one claim/verify
// round trip moves up to ⌈size/2⌉ entries as ONE contiguous memcpy
// between two windows of the shared segment, the cross-process
// one-sided migration the paper performs with RDMA READ, now amortised
// over the batch. The stolen entries are pushed onto our own deque
// oldest-first (preserving deque order and the arena's descending-VA
// chain); the newest is popped and run, the rest stay stealable by
// other ranks.
func (w *worker) stealFrom(vi int) bool {
	w.stats.StealAttempts++
	ts := w.wlog.Clock()
	n, outcome := w.res.StealBatchFrom(vi, w.seg.deques[vi], w.seg.arenas[vi], w.arena, w.stealBuf)
	switch outcome {
	case sched.StealEmpty, sched.StealEmptyLocked:
		w.stats.StealAbortEmpty++
		w.wlog.Emit(obs.KStealEmpty, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case sched.StealLockBusy:
		w.stats.StealAbortLock++
		w.wlog.Emit(obs.KStealBusy, ts, w.wlog.Clock()-ts, 0, 0, vi)
		return false
	case sched.StealFaulted:
		// The resilience layer already recorded the fault/retry/abandon
		// ladder for this attempt.
		w.lastVictim = -1
		return false
	}
	var total uint64
	for i := 0; i < n; i++ {
		total += w.stealBuf[i].FrameSize
		if err := w.deque.Push(w.stealBuf[i]); err != nil {
			panic(err)
		}
	}
	w.stats.StealsOK += uint64(n)
	w.stats.BytesStolen += total
	w.stats.StealBatches++
	w.stats.StealBatchEntries += uint64(n)
	w.lastVictim = int32(vi)
	w.wlog.StealOK(ts, total, vi)
	// Pop (not invoke directly): entries on our deque are claimable by
	// other ranks, so only a successful pop grants execution rights.
	if ent, ok := w.deque.Pop(w.stopFn); ok {
		w.invoke(ent.FrameBase, ent.FrameSize)
	}
	return true
}

// --- core.Exec implementation ----------------------------------------

// ExecReadU64 implements core.Exec over the worker's arena window.
func (w *worker) ExecReadU64(va mem.VA) uint64 { return w.arena.ReadU64(va) }

// ExecWriteU64 implements core.Exec over the worker's arena window.
func (w *worker) ExecWriteU64(va mem.VA, v uint64) { w.arena.WriteU64(va, v) }

// ExecSlice implements core.Exec over the worker's arena window.
func (w *worker) ExecSlice(va mem.VA, n uint64) ([]byte, error) { return w.arena.Slice(va, n) }

// ExecWork burns roughly `cycles` iterations of an LCG, as in rt.
func (w *worker) ExecWork(cycles uint64) {
	x := w.spin
	for i := uint64(0); i < cycles; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	w.spin = x
	w.stats.WorkCycles += cycles
}

// ExecComplete publishes a task's result into its record — a one-sided
// write into the owning rank's table region, wherever that process
// lives. Completing the ROOT record additionally publishes the result
// and the done word on the control page, which is what terminates every
// process's scheduler loop.
func (w *worker) ExecComplete(rec core.Handle, result uint64) {
	r := w.seg.tables[rec.Rank()].Get(sched.RecordIndex(rec))
	r.Result.Store(result)
	r.Done.Store(1)
	// Record the waiter handshake for symmetry with rt; there is no
	// cross-process wake to deliver (idle workers poll), so the load is
	// advisory only.
	_ = r.Waiter.Load()
	if rec == rootRec() {
		w.seg.ctl.result.Store(result)
		w.seg.ctl.done.Store(1)
	}
}

// ExecSpawn is the child-first spawn, identical to rt's: the thief that
// takes the published continuation may now be another PROCESS.
func (w *worker) ExecSpawn(e *core.Env, resumeRP, handleSlot int, fid core.FuncID, localsLen uint32, init func(*core.Env)) bool {
	w.stats.Spawns++
	core.SetFrameResume(w.arena.MustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	rec := w.newRecord()
	e.SetHandle(handleSlot, rec)
	if err := w.deque.Push(sched.Entry{FrameBase: e.FrameBase(), FrameSize: e.FrameSize()}); err != nil {
		panic(err)
	}
	size := core.FrameBytes(localsLen)
	cbase := w.newFrame(size)
	core.EncodeFrameHeader(w.arena.MustSlice(cbase, core.FrameHeaderBytes), fid, localsLen, rec)
	if init != nil {
		ce := w.getEnv(cbase, size, 0)
		init(ce)
		w.putEnv(ce)
	}
	w.invoke(cbase, size)
	if ent, ok := w.deque.Pop(w.stopFn); ok {
		if ent.FrameBase != e.FrameBase() || ent.FrameSize != e.FrameSize() {
			panic(fmt.Sprintf("dist: deque corruption: popped %#x/%d, expected %#x/%d",
				ent.FrameBase, ent.FrameSize, e.FrameBase(), e.FrameSize()))
		}
		return true
	}
	w.stats.ParentStolen++
	if err := w.arena.FreeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	return false
}

// ExecJoin polls the record (a one-sided load on the owning rank's
// table); on a miss it publishes the waiter mark, re-checks, then swaps
// the frame out to the process-private heap and parks it on the wait
// queue. Unlike rt there is no precise cross-process wake: the idle
// loop re-polls waitq records between steal rounds.
func (w *worker) ExecJoin(e *core.Env, resumeRP int, h core.Handle) (uint64, bool) {
	if !h.Valid() {
		panic("dist: join on invalid handle")
	}
	r := w.seg.tables[h.Rank()].Get(sched.RecordIndex(h))
	if r.Done.Load() != 0 {
		w.stats.JoinsFast++
		v := r.Result.Load()
		w.releaseRecord(h)
		return v, true
	}
	r.Waiter.Store(int64(w.rank) + 1)
	if r.Done.Load() != 0 {
		r.Waiter.Store(0)
		w.stats.JoinsFast++
		v := r.Result.Load()
		w.releaseRecord(h)
		return v, true
	}
	w.stats.JoinsMiss++
	w.stats.Suspends++
	core.SetFrameResume(w.arena.MustSlice(e.FrameBase(), core.FrameHeaderBytes), uint32(resumeRP))
	buf := w.getCtxBuf(e.FrameSize())
	ss := w.wlog.Clock()
	copy(buf, w.arena.MustSlice(e.FrameBase(), e.FrameSize()))
	w.wlog.Suspend(ss, e.FrameSize())
	if err := w.arena.FreeLowest(e.FrameBase(), e.FrameSize()); err != nil {
		panic(err)
	}
	w.waitq = append(w.waitq, savedCtx{base: e.FrameBase(), size: e.FrameSize(), buf: buf, rec: r})
	return 0, false
}

func (w *worker) newRecord() core.Handle {
	idx, err := w.records.Alloc()
	if err != nil {
		panic(err)
	}
	return sched.RecordHandle(w.rank, idx)
}

// releaseRecord frees a joined record: owner-local fast path, or a CAS
// push onto the owning rank's shared release stack — which may live in
// another process's table region; the Treiber protocol doesn't care.
func (w *worker) releaseRecord(h core.Handle) {
	if h.Rank() == w.rank {
		w.records.ReleaseLocal(sched.RecordIndex(h))
		return
	}
	w.seg.tables[h.Rank()].Release(sched.RecordIndex(h))
}

// ExecGasHeap: no global heap on dist; gas workloads are sim-only.
func (w *worker) ExecGasHeap() *gas.Heap { return nil }

func (w *worker) execGasPanic() {
	panic("dist: global heap (gas) operations are not supported on the multi-process backend; run this workload on the simulator")
}

// ExecGasGet implements core.Exec; unsupported on dist.
func (w *worker) ExecGasGet(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasPut implements core.Exec; unsupported on dist.
func (w *worker) ExecGasPut(r gas.Ref, buf []byte) { w.execGasPanic() }

// ExecGasGetU64 implements core.Exec; unsupported on dist.
func (w *worker) ExecGasGetU64(r gas.Ref) uint64 { w.execGasPanic(); return 0 }

// ExecGasPutU64 implements core.Exec; unsupported on dist.
func (w *worker) ExecGasPutU64(r gas.Ref, v uint64) { w.execGasPanic() }

// ExecGasAlloc implements core.Exec; unsupported on dist.
func (w *worker) ExecGasAlloc(n uint64) gas.Ref { w.execGasPanic(); return gas.Ref(0) }

// ExecGrain returns the run's configured granularity cutoff.
func (w *worker) ExecGrain() uint64 { return w.grain }

// ExecCoalesce reports local work surplus: this rank's own deque
// already holds enough unstolen entries that spawning finer tasks only
// adds overhead (the adaptive gate for core.GrainAuto).
func (w *worker) ExecCoalesce() bool { return w.deque.Size() >= core.CoalesceDequeMin }

// SimWorker returns nil: this backend is not the simulator.
func (w *worker) SimWorker() *core.Worker { return nil }
