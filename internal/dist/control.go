package dist

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"uniaddr/internal/fault"
	"uniaddr/internal/mem"
)

// Control-plane wire format: JSON values over per-child Unix-domain
// stream sockets. The control plane runs exactly four exchanges per
// child — hello (registration + function-table check), start (barrier
// release), bye (stats + quiescence report) and ack (bye receipt) —
// everything between is one-sided shared memory.
//
// Resilience: every exchange is bounded by a deadline, and a child that
// loses any exchange (dropped, delayed past the deadline, or truncated
// message — all injectable via fault.Config's Ctl knobs) closes the
// connection and REDIALS, replaying the whole hello→start(→bye→ack)
// sequence with jittered exponential backoff. The coordinator's control
// server is therefore a pure state machine over per-rank LATEST state:
// a re-hello supersedes the rank's previous connection, a re-bye
// overwrites the previous bye, and start is re-sent to any conn that
// hellos after the barrier released. Idempotence, not reliability, is
// what makes the lossy channel safe.

// childEnvVar carries the childSpec to a re-exec'd worker process. Its
// presence is what turns a binary's MaybeChild() call into the child
// entrypoint.
const childEnvVar = "UNIADDR_DIST_CHILD"

// childSpec is everything a child needs to join the run: its identity,
// the segment geometry (which must reproduce the parent's layout
// bit-for-bit) and the rendezvous paths.
type childSpec struct {
	Rank      int
	Workers   int
	Seed      uint64
	ArenaSize uint64
	DequeCap  uint64
	RecordCap uint64
	ShmPath   string
	SegBase   uint64
	SockPath  string

	// Scheduler tuning (see Config): granularity cutoff, per-steal
	// batch bound and victim-tier group width. Every process must agree
	// on these — StealBatch in particular sizes the claim bound thieves
	// assume against each other's deques.
	Grain      uint64
	StealBatch int
	TierGroup  int

	// Fault is the run's deterministic fault schedule; every process
	// rebuilds the same Plan from it (pure function of config), so
	// thief-side decisions agree no matter which process draws them.
	Fault fault.Config
	// HangRank/HangAfter wedge this child mid-run (see Config).
	HangRank  int
	HangAfter time.Duration
	// HeartbeatInterval is the stamping period (<= 0 disables).
	HeartbeatInterval time.Duration

	// Obs/ObsRingCap select the segment-hosted event rings. They are
	// layout inputs: a child that failed to thread them would compute
	// offsets that silently disagree with the parent's, so layout() is
	// the only place a Config is rebuilt from a spec.
	Obs        bool
	ObsRingCap int
	// ObsEpoch is the parent-chosen wall epoch (unix nanos); every
	// process stamps events as UnixNano()-ObsEpoch so one merged
	// timeline holds all ranks.
	ObsEpoch int64
}

func (s childSpec) encode() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func childSpecFromEnv() (childSpec, bool, error) {
	v, ok := os.LookupEnv(childEnvVar)
	if !ok || v == "" {
		return childSpec{}, false, nil
	}
	var s childSpec
	if err := json.Unmarshal([]byte(v), &s); err != nil {
		return childSpec{}, true, fmt.Errorf("dist: malformed %s: %w", childEnvVar, err)
	}
	return s, true, nil
}

// layoutFor rebuilds the segment layout from a spec; parent and child
// call the same function so the offsets cannot drift.
func (s childSpec) layout() layout {
	cfg := Config{
		Workers:    s.Workers,
		ArenaSize:  s.ArenaSize,
		DequeCap:   s.DequeCap,
		RecordCap:  s.RecordCap,
		Obs:        s.Obs,
		ObsRingCap: s.ObsRingCap,
	}
	return computeLayout(&cfg)
}

// helloMsg is the child's registration: identity plus the function-
// table fingerprint (count + order-independent digest of registered
// names; see core.RegistryFingerprint). Err reports a child-side setup
// failure (e.g. the segment address was occupied in its address space)
// so the parent can surface a real error instead of a timeout.
type helloMsg struct {
	Rank   int
	PID    int
	Count  int
	Digest uint64
	Err    string `json:",omitempty"`
}

// startMsg releases the barrier — or aborts the child when OK is false
// (fingerprint mismatch, a sibling crashed during handshake, ...).
type startMsg struct {
	OK  bool
	Err string `json:",omitempty"`
}

// byeMsg is the child's final report after its scheduler loop exited.
type byeMsg struct {
	Rank  int
	Stats Stats
	Err   string `json:",omitempty"`
}

// ackMsg confirms the coordinator received a bye. Without it a child
// could not distinguish "bye delivered" from "bye dropped on a lossy
// channel" and a silently lost final report would masquerade as a
// crash.
type ackMsg struct {
	OK bool
}

// handshakeTimeout bounds how long the parent waits for children to
// map the segment and say hello, and how long it waits for byes after
// the run completes; a child that blows either deadline is treated as
// crashed.
const handshakeTimeout = 30 * time.Second

// Per-exchange deadlines and the child's redial budget. One attempt's
// exchanges are individually bounded, so ctlMaxAttempts bounds the
// whole control conversation in wall time; the jittered exponential
// backoff between attempts keeps redialing children from stampeding
// the coordinator's accept loop.
const (
	ctlHelloTimeout = 2 * time.Second
	ctlStartTimeout = 2 * time.Second
	ctlAckTimeout   = 2 * time.Second
	ctlMaxAttempts  = 8
	ctlBackoffBase  = 10 * time.Millisecond
	ctlBackoffCap   = 250 * time.Millisecond
)

// assertLayoutSane double-checks invariants both sides rely on.
func assertLayoutSane(l layout) error {
	if l.workers < 1 {
		return fmt.Errorf("dist: layout has %d workers", l.workers)
	}
	if l.arenaBase == mem.VA(0) {
		return fmt.Errorf("dist: layout has zero arena base")
	}
	return nil
}
