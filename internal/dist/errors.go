package dist

import "fmt"

// WorkerCrashError is the structured report for a worker process that
// died mid-run (crash, OOM-kill, explicit SIGKILL from the fault
// injector). The run's other workers are released via the shared fail
// word, so the caller gets this error instead of a hang.
type WorkerCrashError struct {
	Rank int
	PID  int
	// Phase says how far the worker got: "handshake" (died before the
	// start barrier) or "run".
	Phase string
	// Detail is the wait status ("signal: killed", "exit status 2", ...).
	Detail string
}

func (e *WorkerCrashError) Error() string {
	return fmt.Sprintf("dist: worker rank %d (pid %d) died during %s: %s", e.Rank, e.PID, e.Phase, e.Detail)
}

// FingerprintMismatchError reports a function-table divergence caught
// at the registration handshake: a worker process whose registered task
// functions are not the same set as the parent's. FuncIDs are content
// hashes of registered names (internal/core), so matching fingerprints
// guarantee a FuncID stamped into a stolen frame resolves to the same
// function everywhere.
type FingerprintMismatchError struct {
	Rank                     int
	ParentCount, RankCount   int
	ParentDigest, RankDigest uint64
}

func (e *FingerprintMismatchError) Error() string {
	return fmt.Sprintf(
		"dist: worker rank %d registered a different function table than the parent (parent: %d funcs, digest %#x; rank %d: %d funcs, digest %#x) — all processes must register the same task functions before Run",
		e.Rank, e.ParentCount, e.ParentDigest, e.Rank, e.RankCount, e.RankDigest)
}
