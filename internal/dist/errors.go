package dist

import (
	"fmt"
	"time"
)

// WorkerCrashError is the structured report for a worker process that
// died mid-run (crash, OOM-kill, explicit SIGKILL from the fault
// injector). The run's other workers are released via the shared fail
// word, so the caller gets this error instead of a hang.
type WorkerCrashError struct {
	Rank int
	PID  int
	// Phase says how far the worker got: "handshake" (died before the
	// start barrier) or "run".
	Phase string
	// Detail is the wait status ("signal: killed", "exit status 2", ...).
	Detail string
}

func (e *WorkerCrashError) Error() string {
	return fmt.Sprintf("dist: worker rank %d (pid %d) died during %s: %s", e.Rank, e.PID, e.Phase, e.Detail)
}

// WorkerHungError is the structured report for a worker process that is
// alive but silent: its per-rank heartbeat stamp stopped advancing for
// longer than the configured timeout while the process itself kept
// running. This is the failure mode a crash monitor cannot see — a
// wedged page fault, a livelocked spin, an ODP stall that never
// resolves — and the reason the control plane carries heartbeats at
// all. The coordinator kills the hung process after reporting, so the
// run ends in this error within a bounded delay, never a hang.
type WorkerHungError struct {
	Rank    int
	PID     int
	Silence time.Duration // how long the heartbeat had been stale
}

func (e *WorkerHungError) Error() string {
	return fmt.Sprintf("dist: worker rank %d (pid %d) hung: no heartbeat for %v (process alive but silent)", e.Rank, e.PID, e.Silence)
}

// ControlTimeoutError reports a control-plane exchange that blew its
// deadline: a worker that never completed its hello, or a start/bye
// exchange that could not be delivered within the retry budget.
type ControlTimeoutError struct {
	Phase   string // "hello", "start" or "bye"
	Rank    int    // first rank still missing (-1 if unknown)
	Timeout time.Duration
}

func (e *ControlTimeoutError) Error() string {
	if e.Rank >= 0 {
		return fmt.Sprintf("dist: control-plane %s from rank %d not completed within %v", e.Phase, e.Rank, e.Timeout)
	}
	return fmt.Sprintf("dist: control-plane %s not completed within %v", e.Phase, e.Timeout)
}

// MaxWallError reports a run that exceeded its MaxWall budget. It is
// deliberately a distinct type from WorkerCrashError / WorkerHungError:
// the error collector lets a concrete worker failure REPLACE a pending
// MaxWallError (the timeout is the symptom, the dead worker the cause),
// so exactly one structured error wins the race.
type MaxWallError struct {
	Budget time.Duration
}

func (e *MaxWallError) Error() string {
	return fmt.Sprintf("dist: run exceeded %v wall-clock budget (deadlock or undersized MaxWall?)", e.Budget)
}

// FingerprintMismatchError reports a function-table divergence caught
// at the registration handshake: a worker process whose registered task
// functions are not the same set as the parent's. FuncIDs are content
// hashes of registered names (internal/core), so matching fingerprints
// guarantee a FuncID stamped into a stolen frame resolves to the same
// function everywhere.
type FingerprintMismatchError struct {
	Rank                     int
	ParentCount, RankCount   int
	ParentDigest, RankDigest uint64
}

func (e *FingerprintMismatchError) Error() string {
	return fmt.Sprintf(
		"dist: worker rank %d registered a different function table than the parent (parent: %d funcs, digest %#x; rank %d: %d funcs, digest %#x) — all processes must register the same task functions before Run",
		e.Rank, e.ParentCount, e.ParentDigest, e.Rank, e.RankCount, e.RankDigest)
}
