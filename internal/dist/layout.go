// Package dist is the multi-process backend: each worker is a separate
// OS process, and the scheduler state — uni-address stack arenas,
// THE-protocol deques, task-record tables — lives in one mmap'd
// shared-memory segment mapped at the SAME base virtual address in
// every process. That is the paper's uni-address region realised across
// real address spaces: a steal is a genuine one-sided cross-process
// copy at identical offsets, driven by the identical FAA/claim-then-
// verify protocol (internal/sched) the in-process rt backend runs, with
// hardware cache coherence standing in for the RDMA NIC.
//
// Split of responsibilities:
//
//   - Data plane: everything inside the segment, accessed only through
//     sched.Deque / sched.Table / sched.Arena views and the control
//     page's atomics. After the start barrier, NO scheduling decision
//     involves a message — steals, joins, completions and termination
//     are all one-sided loads/stores/RMWs on the segment, exactly as in
//     the paper.
//   - Control plane: registration handshake (including the function-
//     table fingerprint check), start barrier, stats collection and
//     shutdown run over Unix-domain sockets; crash detection rides on
//     process exit (see dist.go).
//
// The parent process is both the coordinator and worker rank 0 — the
// root task's init closure cannot cross a process boundary, so the
// root must run where Run was called. Ranks 1..n-1 are children
// re-exec'd from the same binary (os.Executable), which also guarantees
// every process registered the same task functions; the fingerprint
// handshake turns any residual divergence (e.g. conditional Register
// calls) into a descriptive error instead of a silent wrong answer.
package dist

import (
	"math/bits"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/mem"
	"uniaddr/internal/obs"
	"uniaddr/internal/sched"
)

// Config sizes a dist run. The zero value of every field selects the
// same defaults as the rt backend, so differential runs compare like
// against like.
type Config struct {
	// Workers is the number of OS processes (including the parent,
	// which is worker rank 0).
	Workers int
	// Seed drives victim selection; each worker derives its own stream.
	Seed uint64
	// ArenaSize is the per-worker uni-address region size. The logical
	// base is core.DefaultUniBase in every worker, as in rt.
	ArenaSize uint64
	// DequeCap is the per-worker deque capacity (power of two).
	DequeCap uint64
	// RecordCap is the per-worker task-record table size.
	RecordCap uint64
	// MaxWall aborts a run that exceeds this wall-clock budget.
	MaxWall time.Duration
	// Grain is the task-granularity cutoff workloads read back through
	// core.Env.Grain (0 = off, core.GrainAuto = adaptive workload
	// default); identical semantics to rt.Config.Grain.
	Grain uint64
	// StealBatch bounds how many entries one steal round trip may move:
	// 0 selects the deque's own bound (steal-half default), 1 restores
	// single-entry steals.
	StealBatch int
	// TierGroup is the rank-block width for distance-tiered victim
	// selection (<= 0 selects sched.DefaultTierGroup).
	TierGroup int
	// KillRank, when > 0, SIGKILLs that child rank KillAfter into the
	// run — deterministic crash injection for the resilience tests and
	// the harness's crash probe. (Rank 0 is the parent and cannot be
	// the target.)
	KillRank  int
	KillAfter time.Duration
	// KillRanks SIGKILLs several child ranks concurrently, KillAfter
	// into the run (the double-kill regression: exactly one structured
	// error must win). Combines with KillRank.
	KillRanks []int
	// HangRank, when > 0, wedges that child rank HangAfter into the run
	// — alive but silent, heartbeats stopped — so the coordinator's
	// heartbeat monitor (not the crash monitor) must detect it.
	HangRank  int
	HangAfter time.Duration
	// HeartbeatInterval is how often each child stamps its liveness
	// slot; HeartbeatTimeout is how much silence the coordinator
	// tolerates before declaring the worker hung (0 = defaults, < 0
	// disables heartbeat monitoring).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Fault is the deterministic fault schedule (zero value = none):
	// the backend-neutral steal knobs plus the dist-only control-plane
	// knobs (dropped/delayed/truncated control messages).
	Fault fault.Config
	// Obs hosts one wall-clock event ring per rank INSIDE the shared
	// segment, so each worker process records into its own region and
	// the parent harvests them at quiescence — including after a crash
	// or hang, when the dead rank's last events are still mapped.
	Obs bool
	// ObsRingCap is the per-rank event-ring capacity (<= 0 selects
	// obs.DefaultWallRingCap; rounded up to a power of two).
	ObsRingCap int
}

// DefaultConfig returns the standard layout for n worker processes.
func DefaultConfig(n int) Config {
	return Config{
		Workers:   n,
		Seed:      1,
		ArenaSize: core.DefaultUniSize,
		DequeCap:  core.DefaultDequeCap,
		RecordCap: 1 << 16,
		MaxWall:   2 * time.Minute,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig(c.Workers)
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.ArenaSize == 0 {
		c.ArenaSize = d.ArenaSize
	}
	if c.DequeCap == 0 {
		c.DequeCap = d.DequeCap
	}
	if c.RecordCap == 0 {
		c.RecordCap = d.RecordCap
	}
	if c.MaxWall == 0 {
		c.MaxWall = d.MaxWall
	}
	// Heartbeats default ON with generous tolerance: detection must be
	// far slower than any plausible scheduling hiccup on a loaded CI
	// box, yet still bounded. Chaos tests tighten the timeout.
	if c.HeartbeatInterval == 0 {
		c.HeartbeatInterval = 25 * time.Millisecond
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = 2 * time.Second
	}
}

// segBaseCandidates are the virtual addresses the parent tries for the
// segment mapping, highest-preference first. They sit far from the Go
// heap, the default mmap area and the executable; MAP_FIXED_NOREPLACE
// makes a collision a clean error, and the parent falls through to the
// next candidate. Whichever wins is passed to the children, which must
// map at EXACTLY that address (no fallback — the whole point is that
// every process agrees).
var segBaseCandidates = []uintptr{
	0x5000_0000_0000,
	0x5100_0000_0000,
	0x5200_0000_0000,
	0x5300_0000_0000,
}

const pageSize = 4096

func pageAlign(n uint64) uint64 { return (n + pageSize - 1) &^ (pageSize - 1) }

// layout describes where each worker's structures live inside the
// segment, as OFFSETS from the segment base. Offsets — not pointers —
// are the cross-process currency, though with the same-VA mapping the
// distinction is invisible.
//
// Segment layout (every sub-region page-aligned):
//
//	[0, ctl)                      control page (ctlHdr)
//	[hb, hb+n*64)                 heartbeat page: one stamped cache
//	                              line per rank (hbSlot)
//	per worker w (w = 0..n-1):
//	  deque[w]                    sched.DequeBytes(DequeCap)
//	  table[w]                    sched.TableBytes(RecordCap)
//	  arena[w]                    ArenaSize bytes, logical VAs
//	                              [DefaultUniBase, +ArenaSize) — the
//	                              SAME logical range in every worker,
//	                              which is what makes a stolen frame's
//	                              interior pointers valid on arrival.
//	  obs[w] (when obsCap > 0)    obs.WallLogBytes(obsCap): rank w's
//	                              wall-clock event ring + histograms
type layout struct {
	workers   int
	hbOff     uint64
	dequeOff  []uint64
	tableOff  []uint64
	arenaOff  []uint64
	obsOff    []uint64
	dequeCap  uint64
	recordCap uint64
	arenaSize uint64
	obsCap    uint64 // wall-ring slots per rank; 0 = obs off
	total     uint64
	arenaBase mem.VA
}

func computeLayout(cfg *Config) layout {
	l := layout{
		workers:   cfg.Workers,
		dequeCap:  cfg.DequeCap,
		recordCap: cfg.RecordCap,
		arenaSize: cfg.ArenaSize,
		arenaBase: core.DefaultUniBase,
	}
	if cfg.Obs {
		l.obsCap = obsRingCap(cfg.ObsRingCap)
	}
	off := pageAlign(ctlBytes)
	l.hbOff = off
	off += pageAlign(uint64(cfg.Workers) * hbSlotBytes)
	for w := 0; w < cfg.Workers; w++ {
		l.dequeOff = append(l.dequeOff, off)
		off += pageAlign(sched.DequeBytes(cfg.DequeCap))
		l.tableOff = append(l.tableOff, off)
		off += pageAlign(sched.TableBytes(cfg.RecordCap))
		l.arenaOff = append(l.arenaOff, off)
		off += pageAlign(cfg.ArenaSize)
		if l.obsCap > 0 {
			l.obsOff = append(l.obsOff, off)
			off += pageAlign(obs.WallLogBytes(l.obsCap))
		}
	}
	l.total = off
	return l
}

// obsRingCap mirrors obs's capacity normalisation (<=0 → default,
// else round up to a power of two) so parent and children — which
// rebuild the layout independently from the childSpec — agree on it.
func obsRingCap(c int) uint64 {
	if c <= 0 {
		return obs.DefaultWallRingCap
	}
	if c < 2 {
		c = 2
	}
	return 1 << uint(bits.Len64(uint64(c-1)))
}

// rootRec is the root task's record handle: record 0 on rank 0,
// pre-allocated by the parent before the start barrier. Every process
// derives it from the layout alone — no communication needed — so any
// worker's ExecComplete can recognise "this completion finishes the
// run" with one comparison.
func rootRec() core.Handle { return sched.RecordHandle(0, 0) }
