//go:build !linux

package dist

import (
	"fmt"
	"os"
)

// The dist backend needs fixed-address shared mappings
// (MAP_FIXED_NOREPLACE); only the Linux path is implemented. These
// stubs make the package compile everywhere so the facade can return a
// descriptive error instead of failing the build.

var errUnsupported = fmt.Errorf("dist: the multi-process backend requires linux (fixed-address MAP_SHARED segments)")

func createSegmentFile(size uint64) (*os.File, error) { return nil, errUnsupported }

func mapSegmentAt(f *os.File, size uint64, base uintptr) ([]byte, error) {
	return nil, errUnsupported
}

func mapSegmentPickBase(f *os.File, size uint64) ([]byte, uintptr, error) {
	return nil, 0, errUnsupported
}

func unmapSegment(b []byte) error { return nil }
