package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"uniaddr/internal/core"
)

// Result is a completed dist run's report: the root task's result plus
// per-process scheduler counters (index = rank).
type Result struct {
	Root      uint64
	Elapsed   time.Duration
	PerWorker []Stats
}

// TotalStats sums the per-worker counters.
func (r *Result) TotalStats() Stats {
	var t Stats
	for _, s := range r.PerWorker {
		t.TasksExecuted += s.TasksExecuted
		t.Spawns += s.Spawns
		t.JoinsFast += s.JoinsFast
		t.JoinsMiss += s.JoinsMiss
		t.Suspends += s.Suspends
		t.ResumesLocal += s.ResumesLocal
		t.ResumesWait += s.ResumesWait
		t.ParentStolen += s.ParentStolen
		t.StealAttempts += s.StealAttempts
		t.StealsOK += s.StealsOK
		t.StealAbortEmpty += s.StealAbortEmpty
		t.StealAbortLock += s.StealAbortLock
		t.BytesStolen += s.BytesStolen
		t.IdleSleeps += s.IdleSleeps
		t.WorkCycles += s.WorkCycles
		t.RecordsLive += s.RecordsLive
		if s.MaxStackUsed > t.MaxStackUsed {
			t.MaxStackUsed = s.MaxStackUsed
		}
	}
	return t
}

// childProc tracks one spawned worker process through its lifecycle.
type childProc struct {
	rank     int
	cmd      *exec.Cmd
	conn     net.Conn
	bye      *byeMsg
	byeDone  chan struct{}
	waitErr  error
	waitDone chan struct{}
}

// errCollector keeps the first error reported; later ones (usually
// knock-on effects of the first) are dropped.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (c *errCollector) record(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

func (c *errCollector) get() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Run executes the root task fid across cfg.Workers OS processes and
// blocks until the run completes, fails, or a worker process dies. The
// calling process is the coordinator AND worker rank 0; the binary must
// route re-exec'd children through MaybeChild (see its doc).
func Run(cfg Config, fid core.FuncID, localsLen uint32, init func(*core.Env)) (Result, error) {
	cfg.fillDefaults()
	lay := computeLayout(&cfg)
	if err := assertLayoutSane(lay); err != nil {
		return Result{}, err
	}

	// --- segment ------------------------------------------------------
	f, err := createSegmentFile(lay.total)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	defer os.Remove(f.Name())
	segBytes, segBase, err := mapSegmentPickBase(f, lay.total)
	if err != nil {
		return Result{}, err
	}
	defer unmapSegment(segBytes)
	seg, err := attachSegment(segBytes, lay)
	if err != nil {
		return Result{}, err
	}

	// --- control socket ----------------------------------------------
	sockDir, err := os.MkdirTemp("", "uniaddr-dist")
	if err != nil {
		return Result{}, fmt.Errorf("dist: socket dir: %w", err)
	}
	defer os.RemoveAll(sockDir)
	sockPath := filepath.Join(sockDir, "ctl.sock")
	ln, err := net.Listen("unix", sockPath)
	if err != nil {
		return Result{}, fmt.Errorf("dist: control socket: %w", err)
	}
	defer ln.Close()
	uln := ln.(*net.UnixListener)

	// --- spawn children ----------------------------------------------
	exe, err := os.Executable()
	if err != nil {
		return Result{}, fmt.Errorf("dist: resolving own executable for re-exec: %w", err)
	}
	children := make([]*childProc, 0, cfg.Workers-1)
	killAll := func() {
		for _, c := range children {
			if c.cmd.Process != nil {
				c.cmd.Process.Kill()
			}
		}
	}
	for r := 1; r < cfg.Workers; r++ {
		spec := childSpec{
			Rank: r, Workers: cfg.Workers, Seed: cfg.Seed,
			ArenaSize: cfg.ArenaSize, DequeCap: cfg.DequeCap, RecordCap: cfg.RecordCap,
			ShmPath: f.Name(), SegBase: uint64(segBase), SockPath: sockPath,
		}
		envVal, err := spec.encode()
		if err != nil {
			killAll()
			return Result{}, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), childEnvVar+"="+envVal)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll()
			return Result{}, fmt.Errorf("dist: starting worker rank %d: %w", r, err)
		}
		children = append(children, &childProc{
			rank: r, cmd: cmd,
			byeDone:  make(chan struct{}),
			waitDone: make(chan struct{}),
		})
	}

	// --- registration handshake --------------------------------------
	// Children connect in arbitrary order; the hello's Rank field pairs
	// each connection with its process. The parent's own fingerprint is
	// the reference: a divergent child means the processes would
	// disagree about what a FuncID stamped into a migrating frame
	// executes, so the run must not start.
	pCount, pDigest := core.RegistryFingerprint()
	uln.SetDeadline(time.Now().Add(handshakeTimeout))
	abortHandshake := func(cause error) (Result, error) {
		for _, c := range children {
			if c.conn != nil {
				json.NewEncoder(c.conn).Encode(startMsg{OK: false, Err: cause.Error()})
				c.conn.Close()
			}
		}
		killAll()
		for _, c := range children {
			c.cmd.Wait()
		}
		return Result{}, cause
	}
	for i := 0; i < len(children); i++ {
		conn, err := uln.Accept()
		if err != nil {
			return abortHandshake(fmt.Errorf("dist: waiting for worker registration: %w (a worker process likely died before connecting)", err))
		}
		var hello helloMsg
		if err := json.NewDecoder(conn).Decode(&hello); err != nil {
			conn.Close()
			return abortHandshake(fmt.Errorf("dist: reading hello: %w", err))
		}
		if hello.Rank < 1 || hello.Rank >= cfg.Workers || children[hello.Rank-1].conn != nil {
			conn.Close()
			return abortHandshake(fmt.Errorf("dist: bogus or duplicate hello for rank %d", hello.Rank))
		}
		c := children[hello.Rank-1]
		c.conn = conn
		if hello.Err != "" {
			return abortHandshake(fmt.Errorf("dist: worker rank %d failed to attach the segment: %s", hello.Rank, hello.Err))
		}
		if hello.Count != pCount || hello.Digest != pDigest {
			return abortHandshake(&FingerprintMismatchError{
				Rank: hello.Rank, ParentCount: pCount, RankCount: hello.Count,
				ParentDigest: pDigest, RankDigest: hello.Digest,
			})
		}
	}

	// --- root record + start barrier ---------------------------------
	rootIdx, err := seg.tables[0].Alloc()
	if err != nil {
		return abortHandshake(err)
	}
	if rootIdx != 0 {
		return abortHandshake(fmt.Errorf("dist: root record landed at index %d, want 0 (rootRec contract)", rootIdx))
	}
	for _, c := range children {
		if err := json.NewEncoder(c.conn).Encode(startMsg{OK: true}); err != nil {
			return abortHandshake(fmt.Errorf("dist: releasing worker rank %d: %w", c.rank, err))
		}
	}

	// --- run ----------------------------------------------------------
	errs := &errCollector{}
	var reaping atomicFlag
	var wg sync.WaitGroup
	for _, c := range children {
		c := c
		// Bye reader: one blocking decode per child. EOF (crash) closes
		// byeDone with bye == nil.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(c.byeDone)
			var bye byeMsg
			if err := json.NewDecoder(c.conn).Decode(&bye); err == nil {
				c.bye = &bye
			}
		}()
		// Exit monitor: a process that dies without a bye is a crash.
		// The shared fail word is stored FIRST so every sibling's spins
		// (including deque lock spins wedged behind the dead process)
		// release before we even finish classifying the exit.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.waitErr = c.cmd.Wait()
			close(c.waitDone)
			<-c.byeDone
			if c.bye == nil && !reaping.get() {
				seg.failStore(failCoordinator)
				detail := "exited before reporting"
				if c.waitErr != nil {
					detail = c.waitErr.Error()
				}
				errs.record(&WorkerCrashError{Rank: c.rank, PID: c.cmd.Process.Pid, Phase: "run", Detail: detail})
			} else if c.bye != nil && c.bye.Err != "" {
				errs.record(fmt.Errorf("dist: worker rank %d failed: %s", c.rank, c.bye.Err))
			}
		}()
	}

	// Watchdog: the analogue of the simulator's MaxCycles deadlock
	// guard, and the backstop that turns any unforeseen wedge into an
	// error instead of a hang.
	watchdog := time.AfterFunc(cfg.MaxWall, func() {
		errs.record(fmt.Errorf("dist: run exceeded %v wall-clock budget (deadlock or undersized MaxWall?)", cfg.MaxWall))
		seg.failStore(failCoordinator)
	})
	defer watchdog.Stop()

	// Fault injection: SIGKILL a child mid-run, on request. This is the
	// crash the resilience gate requires to surface as a structured
	// WorkerCrashError rather than a hang.
	if cfg.KillRank > 0 && cfg.KillRank < cfg.Workers {
		victim := children[cfg.KillRank-1]
		killTimer := time.AfterFunc(cfg.KillAfter, func() {
			victim.cmd.Process.Kill()
		})
		defer killTimer.Stop()
	}

	start := time.Now()
	w0 := newWorker(seg, 0, cfg.Seed)
	w0.rootFid, w0.rootLocals, w0.rootInit = fid, localsLen, init
	if runErr := w0.run(); runErr != nil {
		seg.failStore(1)
		errs.record(runErr)
	}
	elapsed := time.Since(start)

	// --- shutdown / quiescence barrier -------------------------------
	// The loop exits only with done or fail set, so children are
	// draining toward their byes. Give them a grace period, then reap
	// stragglers; `reaping` keeps those late kills from masquerading as
	// mid-run crashes.
	grace := time.AfterFunc(10*time.Second, func() {
		reaping.set()
		killAll()
	})
	wg.Wait()
	grace.Stop()
	for _, c := range children {
		c.conn.Close()
	}

	if err := errs.get(); err != nil {
		return Result{}, err
	}
	if seg.ctl.done.Load() == 0 {
		return Result{}, fmt.Errorf("dist: workers exited without completing the root task")
	}

	res := Result{
		Root:      seg.ctl.result.Load(),
		Elapsed:   elapsed,
		PerWorker: make([]Stats, cfg.Workers),
	}
	res.PerWorker[0] = w0.stats
	for _, c := range children {
		res.PerWorker[c.rank] = c.bye.Stats
	}
	// Post-run quiescence: every deque drained (readable from the
	// parent's views now that all processes have passed their byes) and
	// exactly one record — the never-joined root's — still live.
	for r := 0; r < cfg.Workers; r++ {
		if n := seg.deques[r].Size(); n != 0 {
			return Result{}, fmt.Errorf("dist: rank %d deque holds %d entries after completion", r, n)
		}
	}
	if live := res.TotalStats().RecordsLive; live != 1 {
		return Result{}, fmt.Errorf("dist: %d records live after completion, want 1 (the root's)", live)
	}
	return res, nil
}

// atomicFlag is a tiny set-once boolean safe across goroutines.
type atomicFlag struct {
	mu  sync.Mutex
	val bool
}

func (f *atomicFlag) set() {
	f.mu.Lock()
	f.val = true
	f.mu.Unlock()
}

func (f *atomicFlag) get() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val
}
