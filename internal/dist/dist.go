package dist

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"uniaddr/internal/core"
	"uniaddr/internal/fault"
	"uniaddr/internal/obs"
)

// Result is a completed dist run's report: the root task's result plus
// per-process scheduler counters (index = rank).
type Result struct {
	Root      uint64
	Elapsed   time.Duration
	PerWorker []Stats
	// Obs is the harvested wall-clock export when Config.Obs was set
	// (nil otherwise). It is populated on FAILED runs too — Run returns
	// it beside WorkerCrashError/WorkerHungError so a dead rank's last
	// recorded events are still exportable.
	Obs *obs.Export
}

// TotalStats sums the per-worker counters.
func (r *Result) TotalStats() Stats {
	var t Stats
	for _, s := range r.PerWorker {
		t.TasksExecuted += s.TasksExecuted
		t.Spawns += s.Spawns
		t.JoinsFast += s.JoinsFast
		t.JoinsMiss += s.JoinsMiss
		t.Suspends += s.Suspends
		t.ResumesLocal += s.ResumesLocal
		t.ResumesWait += s.ResumesWait
		t.ParentStolen += s.ParentStolen
		t.StealAttempts += s.StealAttempts
		t.StealsOK += s.StealsOK
		t.StealAbortEmpty += s.StealAbortEmpty
		t.StealAbortLock += s.StealAbortLock
		t.BytesStolen += s.BytesStolen
		t.StealBatches += s.StealBatches
		t.StealBatchEntries += s.StealBatchEntries
		t.StealHintProbes += s.StealHintProbes
		t.StealCacheProbes += s.StealCacheProbes
		t.StealBlindProbes += s.StealBlindProbes
		t.IdleSleeps += s.IdleSleeps
		t.WorkCycles += s.WorkCycles
		t.RecordsLive += s.RecordsLive
		t.StealFaults += s.StealFaults
		t.StealRetries += s.StealRetries
		t.StealRollbacks += s.StealRollbacks
		t.StealAbortsFault += s.StealAbortsFault
		t.VictimBlacklists += s.VictimBlacklists
		t.FaultBackoffNS += s.FaultBackoffNS
		if s.MaxStackUsed > t.MaxStackUsed {
			t.MaxStackUsed = s.MaxStackUsed
		}
	}
	return t
}

// childProc tracks one spawned worker process through its lifecycle.
type childProc struct {
	rank     int
	cmd      *exec.Cmd
	bye      *byeMsg
	waitErr  error
	waitDone chan struct{}
}

// errCollector arbitrates the run's structured error. First error wins,
// with ONE exception: a concrete worker failure (crash or hang)
// REPLACES a pending MaxWallError — the watchdog firing concurrently
// with a crash is a race where the timeout is the symptom and the dead
// worker the cause, and the caller must see exactly one winner.
type errCollector struct {
	mu  sync.Mutex
	err error
}

func (c *errCollector) record(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
		return
	}
	var mw *MaxWallError
	if errors.As(c.err, &mw) {
		switch err.(type) {
		case *WorkerCrashError, *WorkerHungError:
			c.err = err
		}
	}
}

func (c *errCollector) get() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Run executes the root task fid across cfg.Workers OS processes and
// blocks until the run completes, fails, or a worker process dies or
// hangs. Every failure path — crash, hang, control-plane loss, budget
// blowout — ends in a structured typed error within bounded wall time:
// the crash monitor, heartbeat monitor and MaxWall watchdog between
// them cover every way a run can stop making progress, and the error
// collector arbitrates so exactly one wins. The calling process is the
// coordinator AND worker rank 0; the binary must route re-exec'd
// children through MaybeChild (see its doc).
func Run(cfg Config, fid core.FuncID, localsLen uint32, init func(*core.Env)) (Result, error) {
	cfg.fillDefaults()
	lay := computeLayout(&cfg)
	if err := assertLayoutSane(lay); err != nil {
		return Result{}, err
	}
	fc := cfg.Fault
	if fc.Seed == 0 {
		fc.Seed = cfg.Seed
	}
	plan, err := fault.NewPlan(fc, cfg.Workers)
	if err != nil {
		return Result{}, fmt.Errorf("dist: %w", err)
	}

	// --- segment ------------------------------------------------------
	f, err := createSegmentFile(lay.total)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	defer os.Remove(f.Name())
	segBytes, segBase, err := mapSegmentPickBase(f, lay.total)
	if err != nil {
		return Result{}, err
	}
	defer unmapSegment(segBytes)
	seg, err := attachSegment(segBytes, lay)
	if err != nil {
		return Result{}, err
	}
	// Wall epoch for the run: every process (parent and children, via
	// the childSpec) stamps events as UnixNano-epoch, so the harvested
	// rings share one timeline.
	var obsEpoch int64
	if cfg.Obs {
		obsEpoch = time.Now().UnixNano()
		if err := seg.attachObs(wallClockSince(obsEpoch)); err != nil {
			return Result{}, err
		}
	}

	// --- control server ----------------------------------------------
	sockDir, err := os.MkdirTemp("", "uniaddr-dist")
	if err != nil {
		return Result{}, fmt.Errorf("dist: socket dir: %w", err)
	}
	defer os.RemoveAll(sockDir)
	sockPath := filepath.Join(sockDir, "ctl.sock")
	ln, err := net.Listen("unix", sockPath)
	if err != nil {
		return Result{}, fmt.Errorf("dist: control socket: %w", err)
	}
	srv := newCtlServer(ln.(*net.UnixListener), cfg.Workers, plan, cfg.MaxWall+handshakeTimeout)
	defer srv.close()
	go srv.serve()

	// --- spawn children ----------------------------------------------
	exe, err := os.Executable()
	if err != nil {
		return Result{}, fmt.Errorf("dist: resolving own executable for re-exec: %w", err)
	}
	children := make([]*childProc, 0, cfg.Workers-1)
	killAll := func() {
		for _, c := range children {
			if c.cmd.Process != nil {
				c.cmd.Process.Kill()
			}
		}
	}
	for r := 1; r < cfg.Workers; r++ {
		spec := childSpec{
			Rank: r, Workers: cfg.Workers, Seed: cfg.Seed,
			ArenaSize: cfg.ArenaSize, DequeCap: cfg.DequeCap, RecordCap: cfg.RecordCap,
			ShmPath: f.Name(), SegBase: uint64(segBase), SockPath: sockPath,
			Grain: cfg.Grain, StealBatch: cfg.StealBatch, TierGroup: cfg.TierGroup,
			Fault: fc, HangRank: cfg.HangRank, HangAfter: cfg.HangAfter,
			HeartbeatInterval: cfg.HeartbeatInterval,
			Obs:               cfg.Obs, ObsRingCap: cfg.ObsRingCap, ObsEpoch: obsEpoch,
		}
		envVal, err := spec.encode()
		if err != nil {
			killAll()
			return Result{}, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), childEnvVar+"="+envVal)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			killAll()
			return Result{}, fmt.Errorf("dist: starting worker rank %d: %w", r, err)
		}
		children = append(children, &childProc{
			rank: r, cmd: cmd,
			waitDone: make(chan struct{}),
		})
	}

	// --- registration barrier ----------------------------------------
	// Children connect (and reconnect, under control-plane faults) in
	// arbitrary order; the server tracks latest per-rank state. A child
	// whose hello reported a setup failure or a divergent function
	// table aborts the whole run before it starts.
	abortRun := func(cause error) (Result, error) {
		srv.abort(cause.Error())
		// Give handlers a beat to deliver the abort, then reap.
		time.Sleep(50 * time.Millisecond)
		killAll()
		for _, c := range children {
			c.cmd.Wait()
		}
		return Result{}, cause
	}
	if err := srv.awaitHellos(handshakeTimeout); err != nil {
		return abortRun(err)
	}

	// --- root record + start barrier ---------------------------------
	rootIdx, err := seg.tables[0].Alloc()
	if err != nil {
		return abortRun(err)
	}
	if rootIdx != 0 {
		return abortRun(fmt.Errorf("dist: root record landed at index %d, want 0 (rootRec contract)", rootIdx))
	}
	srv.release()

	// --- run ----------------------------------------------------------
	errs := &errCollector{}
	var reaping atomicFlag
	var wg sync.WaitGroup
	for _, c := range children {
		c := c
		// Exit monitor: a process that dies without a bye is a crash.
		// The shared fail word is stored FIRST so every sibling's spins
		// (including deque lock spins wedged behind the dead process)
		// release before we even finish classifying the exit.
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.waitErr = c.cmd.Wait()
			close(c.waitDone)
			// The bye (if any) was sent before exit; give the server's
			// handler a moment to finish decoding it.
			c.bye = srv.waitBye(c.rank, time.Second)
			if c.bye == nil && !reaping.get() {
				seg.failStore(failCoordinator)
				detail := "exited before reporting"
				if c.waitErr != nil {
					detail = c.waitErr.Error()
				}
				errs.record(&WorkerCrashError{Rank: c.rank, PID: c.cmd.Process.Pid, Phase: "run", Detail: detail})
			} else if c.bye != nil && c.bye.Err != "" {
				errs.record(fmt.Errorf("dist: worker rank %d failed: %s", c.rank, c.bye.Err))
			}
		}()
	}

	// Heartbeat monitor: catches the failure the crash monitor cannot —
	// a process that is alive but silent. A rank whose stamp goes stale
	// past the timeout (while its process still runs) is declared hung:
	// record the structured error, release every sibling through the
	// fail word, then kill the wedged process so shutdown is not gated
	// on it. Detection latency is bounded by timeout + one poll tick.
	hbStop := make(chan struct{})
	var hbDone chan struct{}
	// Join, don't just signal: the monitor may be mid-read of the
	// segment when Run returns, and the deferred unmapSegment would
	// yank the mapping out from under it.
	defer func() {
		close(hbStop)
		if hbDone != nil {
			<-hbDone
		}
	}()
	if cfg.HeartbeatTimeout > 0 && len(children) > 0 {
		hbDone = make(chan struct{})
		go func() {
			defer close(hbDone)
			tick := cfg.HeartbeatTimeout / 4
			if tick > 50*time.Millisecond {
				tick = 50 * time.Millisecond
			}
			// Baseline every slot at the barrier release so a child hung
			// BEFORE its first stamp is still caught.
			now := uint64(time.Now().UnixNano())
			for _, c := range children {
				if seg.hbLast(c.rank) == 0 {
					seg.hbStamp(c.rank, now)
				}
			}
			for {
				select {
				case <-hbStop:
					return
				case <-time.After(tick):
				}
				if seg.stopped() {
					return
				}
				for _, c := range children {
					select {
					case <-c.waitDone:
						// Exited: the crash monitor owns classification.
						continue
					default:
					}
					last := seg.hbLast(c.rank)
					silence := time.Duration(uint64(time.Now().UnixNano()) - last)
					if last != 0 && silence > cfg.HeartbeatTimeout {
						errs.record(&WorkerHungError{Rank: c.rank, PID: c.cmd.Process.Pid, Silence: silence})
						seg.failStore(failCoordinator)
						c.cmd.Process.Kill()
						return
					}
				}
			}
		}()
	}

	// Watchdog: the analogue of the simulator's MaxCycles deadlock
	// guard, and the backstop that turns any unforeseen wedge into an
	// error instead of a hang. A concurrent crash/hang report replaces
	// it in the collector (see errCollector).
	watchdog := time.AfterFunc(cfg.MaxWall, func() {
		errs.record(&MaxWallError{Budget: cfg.MaxWall})
		seg.failStore(failCoordinator)
	})
	defer watchdog.Stop()

	// Fault injection: SIGKILL child ranks mid-run, on request. These
	// are the crashes the resilience gate requires to surface as
	// structured WorkerCrashErrors rather than hangs.
	killVictims := cfg.KillRanks
	if cfg.KillRank > 0 {
		killVictims = append(append([]int{}, killVictims...), cfg.KillRank)
	}
	for _, kr := range killVictims {
		if kr > 0 && kr < cfg.Workers {
			victim := children[kr-1]
			killTimer := time.AfterFunc(cfg.KillAfter, func() {
				victim.cmd.Process.Kill()
			})
			defer killTimer.Stop()
		}
	}

	start := time.Now()
	w0 := newWorker(seg, 0, cfg.Seed, plan, nil, tuning{grain: cfg.Grain, stealBatch: cfg.StealBatch, tierGroup: cfg.TierGroup})
	w0.rootFid, w0.rootLocals, w0.rootInit = fid, localsLen, init
	if runErr := w0.run(); runErr != nil {
		seg.failStore(1)
		errs.record(runErr)
	}
	elapsed := time.Since(start)

	// --- shutdown / quiescence barrier -------------------------------
	// The loop exits only with done or fail set, so children are
	// draining toward their byes. Give them a grace period, then reap
	// stragglers; `reaping` keeps those late kills from masquerading as
	// mid-run crashes.
	grace := time.AfterFunc(10*time.Second, func() {
		reaping.set()
		killAll()
	})
	wg.Wait()
	grace.Stop()

	// Harvest the segment-hosted event rings BEFORE the error gates: all
	// child processes have been wait()ed on (quiescence), the segment is
	// still mapped, and a crashed or hung rank's last events are exactly
	// what a failed run's caller wants to see.
	var obsExport *obs.Export
	if seg.obs != nil {
		obsExport = obs.NewWallRecorderOver(seg.obs).Export()
	}

	if err := errs.get(); err != nil {
		return Result{Obs: obsExport}, err
	}
	if seg.ctl.done.Load() == 0 {
		return Result{Obs: obsExport}, fmt.Errorf("dist: workers exited without completing the root task")
	}

	res := Result{
		Root:      seg.ctl.result.Load(),
		Elapsed:   elapsed,
		PerWorker: make([]Stats, cfg.Workers),
		Obs:       obsExport,
	}
	res.PerWorker[0] = w0.stats
	for _, c := range children {
		// A reaped child can reach here with no bye and no recorded
		// error; surface it as a structured crash rather than reading
		// through a nil report (the old zero-value-Report bug).
		if c.bye == nil {
			detail := "no final report"
			if c.waitErr != nil {
				detail = c.waitErr.Error()
			}
			return Result{Obs: obsExport}, &WorkerCrashError{Rank: c.rank, PID: c.cmd.Process.Pid, Phase: "report", Detail: detail}
		}
		res.PerWorker[c.rank] = c.bye.Stats
	}
	// Post-run quiescence: every deque drained (readable from the
	// parent's views now that all processes have passed their byes) and
	// exactly one record — the never-joined root's — still live.
	for r := 0; r < cfg.Workers; r++ {
		if n := seg.deques[r].Size(); n != 0 {
			return Result{Obs: obsExport}, fmt.Errorf("dist: rank %d deque holds %d entries after completion", r, n)
		}
	}
	if live := res.TotalStats().RecordsLive; live != 1 {
		return Result{Obs: obsExport}, fmt.Errorf("dist: %d records live after completion, want 1 (the root's)", live)
	}
	return res, nil
}

// wallClockSince returns the shared dist wall clock: nanoseconds since
// the parent-chosen epoch. Every process uses the same epoch (threaded
// through the childSpec), so event stamps from different ranks land on
// one timeline, skewed only by host clock-sync error between calls.
func wallClockSince(epochNano int64) func() uint64 {
	return func() uint64 { return uint64(time.Now().UnixNano() - epochNano) }
}

// atomicFlag is a tiny set-once boolean safe across goroutines.
type atomicFlag struct {
	mu  sync.Mutex
	val bool
}

func (f *atomicFlag) set() {
	f.mu.Lock()
	f.val = true
	f.mu.Unlock()
}

func (f *atomicFlag) get() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.val
}
