//go:build linux

package dist

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mapFixedNoreplace is MAP_FIXED_NOREPLACE (Linux >= 4.17): map at
// exactly the requested address, failing with EEXIST instead of
// silently clobbering an existing mapping — which MAP_FIXED would do to
// the Go heap without a sound.
const mapFixedNoreplace = 0x100000

// createSegmentFile creates the backing file for the shared segment,
// preferring /dev/shm (tmpfs: the pages never touch a disk) and falling
// back to the default temp dir. The file outlives the creating process
// only until Run's cleanup removes it; children open it by path.
func createSegmentFile(size uint64) (*os.File, error) {
	dir := os.TempDir()
	if st, err := os.Stat("/dev/shm"); err == nil && st.IsDir() {
		dir = "/dev/shm"
	}
	f, err := os.CreateTemp(dir, "uniaddr-dist-*.shm")
	if err != nil {
		return nil, fmt.Errorf("dist: creating segment file: %w", err)
	}
	if err := f.Truncate(int64(size)); err != nil {
		f.Close()
		os.Remove(f.Name())
		return nil, fmt.Errorf("dist: sizing segment file to %d bytes: %w", size, err)
	}
	return f, nil
}

// mapSegmentAt maps the file MAP_SHARED at exactly base. Every process
// in the run calls this with the same base, giving the segment
// identical virtual addresses everywhere — the uni-address property at
// the hardware-VA level.
func mapSegmentAt(f *os.File, size uint64, base uintptr) ([]byte, error) {
	addr, _, errno := syscall.Syscall6(syscall.SYS_MMAP,
		base, uintptr(size),
		syscall.PROT_READ|syscall.PROT_WRITE,
		syscall.MAP_SHARED|syscall.MAP_FIXED|mapFixedNoreplace,
		f.Fd(), 0)
	if errno != 0 {
		return nil, fmt.Errorf("dist: mmap %d bytes at %#x: %w", size, base, errno)
	}
	if addr != base {
		// Pre-4.17 kernels ignore the unknown MAP_FIXED_NOREPLACE bit;
		// MAP_FIXED still forces the address, so this cannot trigger
		// there. Guard anyway: a segment at the wrong address is
		// corruption waiting to happen.
		syscall.Syscall(syscall.SYS_MUNMAP, addr, uintptr(size), 0)
		return nil, fmt.Errorf("dist: mmap landed at %#x, requested %#x", addr, base)
	}
	return unsafe.Slice((*byte)(mappedPtr(addr)), size), nil
}

// mappedPtr materialises a pointer to mmap'd memory from the address
// the kernel returned. The memory is NOT a Go allocation, so the usual
// uintptr→Pointer hazards (GC moving the object between the two
// conversions) do not apply; loading the bits through a *unsafe.Pointer
// view keeps that reasoning visible to go vet's unsafeptr check.
func mappedPtr(addr uintptr) unsafe.Pointer {
	return *(*unsafe.Pointer)(unsafe.Pointer(&addr))
}

// mapSegmentPickBase tries each candidate base until one maps. Parent
// only; the winning base travels to the children in the child spec.
func mapSegmentPickBase(f *os.File, size uint64) ([]byte, uintptr, error) {
	var firstErr error
	for _, base := range segBaseCandidates {
		b, err := mapSegmentAt(f, size, base)
		if err == nil {
			return b, base, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, 0, fmt.Errorf("dist: no segment base candidate mappable: %w", firstErr)
}

func unmapSegment(b []byte) error {
	if b == nil {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MUNMAP,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), 0)
	if errno != 0 {
		return fmt.Errorf("dist: munmap: %w", errno)
	}
	return nil
}
