package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// traceDoc mirrors the exporter's output shape for validation.
type traceDoc struct {
	TraceEvents []struct {
		Name string          `json:"name"`
		Cat  string          `json:"cat"`
		Ph   string          `json:"ph"`
		Ts   uint64          `json:"ts"`
		Dur  *uint64         `json:"dur"`
		Pid  int             `json:"pid"`
		Tid  int32           `json:"tid"`
		ID   uint64          `json:"id"`
		Args json.RawMessage `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]uint64 `json:"otherData"`
}

func buildSyntheticRecorder() *Recorder {
	clock := uint64(0)
	r := NewRecorder(2, 256, func() uint64 { return clock })
	w0, w1 := r.Worker(0), r.Worker(1)

	clock = 5
	root := r.NewTask(0, 0, 1, 100)
	w0.Instant(KSpawn, 0, root, -1)
	clock = 10
	child := r.NewTask(root, 0, 2, 200)
	w0.Instant(KSpawn, uint64(root), child, -1)
	w0.Emit(KTask, 10, 40, 1, root, -1)

	// Worker 1 steals the child: fault, retry, then success.
	w1.Emit(KStealBegin, 20, 0, 0, 0, 0)
	clock = 25
	w1.EmitFlags(KRead, 20, 5, 64, 0, 0, FFailed)
	w1.Instant(KStealFault, 1, 0, 0)
	w1.Emit(KStealRetry, 25, 10, 2, 0, 0)
	w1.Emit(KRead, 35, 8, 256, 0, 0)
	w1.Emit(KXfer, 35, 8, 256, child, 0)
	w1.Emit(KStealOK, 20, 23, 256, child, 0)
	clock = 43
	r.TaskMoved(child, 0, 1)
	r.StealLatency.Record(23)

	w1.Emit(KTask, 43, 12, 2, child, -1)
	clock = 55
	r.TaskDone(child, 1)
	w1.Instant(KTaskDone, 0, child, -1)
	clock = 60
	r.TaskJoined(200, 0)
	w0.Instant(KJoinFast, 0, child, -1)
	w0.Depth(3)
	return r
}

func TestChromeTraceValidity(t *testing.T) {
	r := buildSyntheticRecorder()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, r, &ChromeOpts{Label: "test"}); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exporter emitted invalid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("missing displayTimeUnit")
	}

	flowS := map[uint64]int32{}
	flowF := map[uint64]int32{}
	names := map[string]bool{}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		switch e.Ph {
		case "X":
			slices++
			// Every complete event must carry an explicit duration.
			if e.Dur == nil {
				t.Errorf("slice %q at ts=%d has no dur field", e.Name, e.Ts)
			}
		case "i":
			instants++
		case "s":
			if _, dup := flowS[e.ID]; dup {
				t.Errorf("duplicate flow start id %d", e.ID)
			}
			flowS[e.ID] = e.Tid
		case "f":
			if _, dup := flowF[e.ID]; dup {
				t.Errorf("duplicate flow finish id %d", e.ID)
			}
			flowF[e.ID] = e.Tid
		case "M", "C":
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Tid < 0 || e.Tid > 1 {
			t.Errorf("event %q on unknown tid %d", e.Name, e.Tid)
		}
	}
	if slices == 0 || instants == 0 {
		t.Fatalf("want both slices and instants, got %d / %d", slices, instants)
	}
	// Flow arrows pair up: every start has a finish on a different
	// track and vice versa.
	if len(flowS) == 0 {
		t.Fatal("no flow arrows for a trace with a migration")
	}
	if len(flowS) != len(flowF) {
		t.Fatalf("unpaired flows: %d starts, %d finishes", len(flowS), len(flowF))
	}
	for id, from := range flowS {
		to, ok := flowF[id]
		if !ok {
			t.Errorf("flow %d has no finish", id)
		} else if from == to {
			t.Errorf("flow %d starts and finishes on the same track %d", id, from)
		}
	}
	for _, want := range []string{"steal", "steal-fault", "steal-retry", "xfer", "migrate", "fault"} {
		if !names[want] {
			t.Errorf("expected an event named %q in the trace", want)
		}
	}
	if doc.OtherData["steal_latency_p50"] == 0 {
		t.Error("steal latency percentiles missing from otherData")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, buildSyntheticRecorder(), nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, buildSyntheticRecorder(), nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of identical recorders differ")
	}
}

func TestChromeTraceNilRecorder(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err == nil {
		t.Fatal("want error exporting a nil recorder")
	}
}

func TestSummaryMentionsKeySections(t *testing.T) {
	r := buildSyntheticRecorder()
	var buf bytes.Buffer
	WriteSummary(&buf, r, nil)
	out := buf.String()
	for _, want := range []string{"steal", "task"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
