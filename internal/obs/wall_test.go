package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"unsafe"
)

// alignedBlock returns an 8-byte-aligned zeroed block of n bytes.
func alignedBlock(n uint64) []byte {
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), int(n))
}

func TestWallLogBytesLayout(t *testing.T) {
	if s := unsafe.Sizeof(Hist{}); s%8 != 0 {
		t.Fatalf("Hist size %d not word-multiple", s)
	}
	want := uint64(64) + 8*wallEventWords*8 + 4*uint64(unsafe.Sizeof(Hist{}))
	if got := WallLogBytes(8); got != want {
		t.Fatalf("WallLogBytes(8) = %d, want %d", got, want)
	}
}

func TestWallRingCapRounding(t *testing.T) {
	cases := map[int]uint64{
		-1: DefaultWallRingCap, 0: DefaultWallRingCap,
		1: 2, 2: 2, 3: 4, 1000: 1024, 1 << 12: 1 << 12,
	}
	for in, want := range cases {
		if got := wallRingCap(in); got != want {
			t.Errorf("wallRingCap(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestWallLogAtRejectsBadArgs(t *testing.T) {
	block := alignedBlock(WallLogBytes(8))
	if _, err := NewWallLogAt(block, 0, 7, nil); err == nil {
		t.Fatal("non-power-of-two cap accepted")
	}
	if _, err := NewWallLogAt(block[:100], 0, 8, nil); err == nil {
		t.Fatal("short block accepted")
	}
	mis := alignedBlock(WallLogBytes(8) + 8)
	if _, err := NewWallLogAt(mis[1:], 0, 8, nil); err == nil {
		t.Fatal("misaligned block accepted")
	}
}

func TestWallLogRoundTrip(t *testing.T) {
	var tick uint64
	now := func() uint64 { tick += 10; return tick }
	l, err := NewWallLogAt(alignedBlock(WallLogBytes(16)), 0, 16, now)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(KStealOK, 100, 50, 128, 7, 3)
	l.EmitFlags(KStealFault, 200, 0, 0, 0, 1, FFailed)
	l.Instant(KProbeBlind, 9, 0, 2)
	evs := l.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	e := evs[0]
	if e.Kind != KStealOK || e.Time != 100 || e.Dur != 50 || e.Arg != 128 || e.Task != 7 || e.Peer != 3 {
		t.Fatalf("event 0 round-trip: %+v", e)
	}
	if !evs[1].Failed() || evs[1].Peer != 1 {
		t.Fatalf("flags/peer lost: %+v", evs[1])
	}
	if evs[2].Kind != KProbeBlind || evs[2].Time != 10 || evs[2].Arg != 9 {
		t.Fatalf("instant: %+v", evs[2])
	}
	if l.Total() != 3 || l.Dropped() != 0 {
		t.Fatalf("total %d dropped %d", l.Total(), l.Dropped())
	}
	if l.Clock() == 0 {
		t.Fatal("Clock returned 0 with a live clock")
	}
}

func TestWallLogWrapKeepsNewest(t *testing.T) {
	l, err := NewWallLogAt(alignedBlock(WallLogBytes(4)), 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		l.Emit(KProbeBlind, i, 0, i, 0, int(i))
	}
	if l.Total() != 10 || l.Dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10/6", l.Total(), l.Dropped())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Arg != want || e.Time != want {
			t.Fatalf("event %d = %+v, want arg %d (newest kept, oldest first)", i, e, want)
		}
	}
}

// TestWallLogSharedAttach simulates the dist pattern: two views over
// the same block (as two processes would have), one writing, the other
// harvesting — including a "dead writer" slot that was reserved but
// never committed.
func TestWallLogSharedAttach(t *testing.T) {
	block := alignedBlock(WallLogBytes(8))
	wr, err := NewWallLogAt(block, 3, 8, func() uint64 { return 42 })
	if err != nil {
		t.Fatal(err)
	}
	wr.Instant(KHeartbeat, 0, 0, -1)
	wr.StealOK(40, 256, 1)

	// Simulate a writer killed between FAA and the word stores: bump
	// total without writing the slot.
	wr.reserveOnly()

	rd, err := NewWallLogAt(block, 3, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Rank() != 3 {
		t.Fatalf("rank %d", rd.Rank())
	}
	if rd.Total() != 3 {
		t.Fatalf("total %d", rd.Total())
	}
	evs := rd.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2 (torn slot skipped)", len(evs))
	}
	if evs[0].Kind != KHeartbeat || evs[1].Kind != KStealOK {
		t.Fatalf("kinds %v %v", evs[0].Kind, evs[1].Kind)
	}
	if rd.StealLatency.Count != 1 || rd.StealLatency.Max != 2 {
		t.Fatalf("steal hist not shared: %+v", rd.StealLatency)
	}
}

// TestWallLogConcurrentMPSC hammers one shared ring and eight private
// rings from eight goroutines, then reads at quiescence — the -race
// stress for the wall recorder's memory-ordering argument.
func TestWallLogConcurrentMPSC(t *testing.T) {
	const writers = 8
	const perWriter = 4096
	rec := NewWallRecorder(writers, 1024)
	shared, err := NewWallLogAt(alignedBlock(WallLogBytes(1024)), 99, 1024, rec.Worker(0).now)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := rec.Worker(w)
			for i := 0; i < perWriter; i++ {
				own.Instant(KProbeBlind, uint64(i), 0, w)
				own.StealOK(own.Clock(), uint64(i), (w+1)%writers)
				shared.Emit(KHeartbeat, uint64(w)<<32|uint64(i), 0, 0, 0, w)
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < writers; w++ {
		l := rec.Worker(w)
		if got := l.Total(); got != 2*perWriter {
			t.Fatalf("worker %d total %d, want %d", w, got, 2*perWriter)
		}
		for _, e := range l.Events() {
			if e.Kind != KProbeBlind && e.Kind != KStealOK {
				t.Fatalf("worker %d: unexpected kind %v", w, e.Kind)
			}
		}
		if l.StealLatency.Count != perWriter {
			t.Fatalf("worker %d steal hist count %d", w, l.StealLatency.Count)
		}
	}
	if got := shared.Total(); got != writers*perWriter {
		t.Fatalf("shared total %d, want %d", got, writers*perWriter)
	}
	evs := shared.Events()
	// With racing multi-lap writers a slot's final content may be from
	// an older lap (the decoder skips it), so the retained window can
	// be slightly short of cap — but never longer, and never corrupt.
	if len(evs) > 1024 || len(evs) < 1024-2*writers {
		t.Fatalf("shared ring kept %d, want ~cap 1024", len(evs))
	}
	for _, e := range evs {
		if e.Kind != KHeartbeat {
			t.Fatalf("shared ring corrupt kind %v", e.Kind)
		}
		if w := int(e.Time >> 32); w != int(e.Peer) {
			t.Fatalf("shared ring torn slot: writer tag %d vs peer %d", w, e.Peer)
		}
	}
	if d := shared.Dropped(); d != writers*perWriter-1024 {
		t.Fatalf("shared dropped %d", d)
	}
}

func TestWallNilSafety(t *testing.T) {
	var l *WallLog
	l.Emit(KTask, 1, 2, 3, 4, 5)
	l.EmitFlags(KTask, 1, 2, 3, 4, 5, FFailed)
	l.Instant(KPark, 0, 0, -1)
	l.StealOK(0, 0, 0)
	l.Park(0)
	l.Nap(0)
	l.Copy(0, 0, 0)
	l.Suspend(0, 0)
	if l.Clock() != 0 || l.Total() != 0 || l.Dropped() != 0 || l.Rank() != -1 || l.Events() != nil {
		t.Fatal("nil WallLog leaked state")
	}
	var r *WallRecorder
	if r.Now() != 0 || r.Worker(0) != nil || r.Logs() != nil || r.Export() != nil {
		t.Fatal("nil WallRecorder leaked state")
	}
}

// TestWallExportChrome drives wall-clock events through the unified
// exporter and checks the trace is valid Chrome JSON with the wall
// clock domain and per-worker drop accounting.
func TestWallExportChrome(t *testing.T) {
	rec := NewWallRecorder(2, 16)
	w0, w1 := rec.Worker(0), rec.Worker(1)
	w0.Instant(KProbeHint, 0, 0, 1)
	w0.StealOK(w0.Clock(), 512, 1)
	w0.Copy(w0.Clock(), 512, 1)
	w0.Park(w0.Clock())
	w0.Nap(w0.Clock())
	w0.Suspend(w0.Clock(), 256)
	for i := 0; i < 40; i++ { // overflow w1's 16-slot ring
		w1.Instant(KHeartbeat, 0, 0, -1)
	}
	ex := rec.Export()
	if ex.Clock != ClockWallNS {
		t.Fatalf("clock %q", ex.Clock)
	}
	if ex.Dropped() == 0 {
		t.Fatal("expected drops on w1")
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceExport(&buf, ex, nil); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		ClockDomain string                   `json:"clockDomain"`
		OtherData   map[string]uint64        `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if trace.ClockDomain != ClockWallNS {
		t.Fatalf("clockDomain %q", trace.ClockDomain)
	}
	names := map[string]bool{}
	for _, e := range trace.TraceEvents {
		if n, ok := e["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"steal", "probe-hint", "xfer", "park", "nap", "suspend", "heartbeat"} {
		if !names[want] {
			t.Errorf("trace missing %q event", want)
		}
	}
	if _, ok := trace.OtherData["dropped_events_w1"]; !ok {
		t.Error("otherData missing per-worker drop count")
	}
	if _, ok := trace.OtherData["steal_latency_p50"]; !ok {
		t.Error("otherData missing steal latency percentiles")
	}

	var sum strings.Builder
	WriteSummaryExport(&sum, ex, nil)
	for _, want := range []string{"wall ns", "dropped per worker", "steal latency", "park duration"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
}

// reserveOnly models a writer dying between the slot FAA and the word
// stores (test hook).
func (l *WallLog) reserveOnly() {
	*l.total++
}

func TestWallLogJobTagging(t *testing.T) {
	l, err := NewWallLogAt(alignedBlock(WallLogBytes(8)), 0, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(KTask, 1, 1, 0, 1, -1)
	l.SetJob(42)
	l.Emit(KTask, 2, 1, 0, 2, -1)
	l.Emit(KStealOK, 3, 1, 0, 0, 1)
	l.SetJob(0)
	l.Emit(KTask, 4, 1, 0, 3, -1)
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	want := []uint64{0, 42, 42, 0}
	for i, e := range evs {
		if e.Job != want[i] {
			t.Fatalf("event %d job = %d, want %d", i, e.Job, want[i])
		}
	}
	// Nil-safety of the new method.
	var nilLog *WallLog
	nilLog.SetJob(7)
}
