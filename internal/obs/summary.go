package obs

import (
	"fmt"
	"io"
	"sort"
)

// WriteSummary renders the virtual-time recorder's compact text
// post-mortem. fname resolves task FuncIDs to names (nil allowed).
func WriteSummary(w io.Writer, r *Recorder, fname func(uint32) string) {
	if r == nil {
		fmt.Fprintln(w, "obs: disabled")
		return
	}
	WriteSummaryExport(w, r.Export(), fname)
}

// WriteSummaryExport renders any export — virtual-time or wall-clock —
// as a compact text post-mortem: per-kind event counts, per-worker
// ring-overflow accounting, the latency histograms with tail
// percentiles, and (when lineage was tracked) the task lineage digest.
func WriteSummaryExport(w io.Writer, ex *Export, fname func(uint32) string) {
	if ex == nil {
		fmt.Fprintln(w, "obs: disabled")
		return
	}
	var counts [numKinds]uint64
	for _, l := range ex.Logs {
		for _, e := range l.Events {
			counts[e.Kind]++
		}
	}
	total, dropped := ex.Events(), ex.Dropped()
	fmt.Fprintf(w, "obs: %d events recorded on %d workers (%s)", total, len(ex.Logs), ex.ClockUnit())
	if dropped > 0 {
		fmt.Fprintf(w, " (%d dropped by full rings — oldest first)", dropped)
	}
	fmt.Fprintln(w)
	if dropped > 0 {
		// Per-worker truncation: a full ring silently biases a trace
		// toward the run's tail, so name the workers it happened on.
		fmt.Fprintf(w, "  dropped per worker:")
		for _, l := range ex.Logs {
			if l.Dropped > 0 {
				fmt.Fprintf(w, " w%d:%d", l.Rank, l.Dropped)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  events by kind:")
	n := 0
	for k := Kind(0); k < numKinds; k++ {
		if counts[k] == 0 {
			continue
		}
		if n%4 == 0 {
			fmt.Fprintf(w, "\n   ")
		}
		n++
		fmt.Fprintf(w, " %-14s %10d", k.String(), counts[k])
	}
	fmt.Fprintln(w)

	if len(ex.Hists) > 0 {
		fmt.Fprintf(w, "  latency histograms (%s):\n", ex.ClockUnit())
		fmt.Fprintf(w, "    %-18s %9s %12s %10s %10s %10s %10s\n",
			"quantity", "count", "mean", "p50", "p95", "p99", "max")
		for _, nh := range ex.Hists {
			h := nh.Hist
			fmt.Fprintf(w, "    %-18s %9d %12.1f %10d %10d %10d %10d\n",
				nh.Name, h.Count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
		}
	}

	if ex.Clock != ClockVirtual {
		return // lineage tracking is sim-only
	}
	tasks := ex.Tasks
	migrated, hops, maxHops := 0, 0, 0
	var farthest *Lineage
	for _, ln := range tasks {
		if len(ln.Hops) == 0 {
			continue
		}
		migrated++
		hops += len(ln.Hops)
		if len(ln.Hops) > maxHops {
			maxHops = len(ln.Hops)
			farthest = ln
		}
	}
	fmt.Fprintf(w, "  tasks: %d spawned, %d migrated (%d hops total, max %d per task)\n",
		len(tasks), migrated, hops, maxHops)
	if farthest != nil {
		name := "task"
		if fname != nil {
			name = fname(farthest.Func)
		}
		fmt.Fprintf(w, "    most-travelled: task %d (%s) spawned on w%d:",
			farthest.ID, name, farthest.Spawn.Worker)
		for _, h := range farthest.Hops {
			fmt.Fprintf(w, " →w%d@%d", h.To, h.Time)
		}
		if farthest.Done.Worker >= 0 {
			fmt.Fprintf(w, ", finished on w%d", farthest.Done.Worker)
		}
		if farthest.Joiner >= 0 {
			fmt.Fprintf(w, ", joined by w%d", farthest.Joiner)
		}
		fmt.Fprintln(w)
	}
	// Per-worker migration balance: where stolen work landed.
	recv := map[int32]int{}
	for _, ln := range tasks {
		for _, h := range ln.Hops {
			recv[h.To]++
		}
	}
	if len(recv) > 0 {
		ranks := make([]int, 0, len(recv))
		for r := range recv {
			ranks = append(ranks, int(r))
		}
		sort.Ints(ranks)
		fmt.Fprintf(w, "    migrations received:")
		for _, rk := range ranks {
			fmt.Fprintf(w, " w%d:%d", rk, recv[int32(rk)])
		}
		fmt.Fprintln(w)
	}
}
