package obs

import "math/bits"

// Hist is an HDR-style log-bucket histogram of uint64 samples
// (latencies in cycles, sizes in bytes). Buckets are powers of two
// split into 8 sub-buckets, giving ~12.5% relative resolution at any
// magnitude with a fixed 496-slot footprint and O(1) recording — no
// allocation, no floating point, fully deterministic.
type Hist struct {
	counts [histBuckets]uint64
	Count  uint64
	Sum    uint64
	Min    uint64
	Max    uint64
}

const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 sub-buckets per power of two
	histBuckets = (64-histSubBits)*histSub + histSub
)

// histBucket maps a value to its bucket index. Values below 8 get exact
// buckets; above, the index is (exponent, top-3-mantissa-bits).
func histBucket(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= histSubBits
	sub := (v >> (uint(exp) - histSubBits)) & (histSub - 1)
	return (exp-histSubBits+1)*histSub + int(sub)
}

// histBucketLow returns the smallest value mapping to bucket i.
func histBucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := uint(i/histSub - 1 + histSubBits)
	sub := uint64(i % histSub)
	return 1<<exp | sub<<(exp-histSubBits)
}

// Record adds one sample.
func (h *Hist) Record(v uint64) {
	h.counts[histBucket(v)]++
	h.Count++
	h.Sum += v
	if h.Count == 1 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Mean returns the exact sample mean (0 when empty).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]): the
// highest value of the bucket holding the q·Count-th sample, clamped to
// the observed Max. Resolution is the bucket width (~12.5%).
func (h *Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank = ceil(q * Count), at least 1.
	rank := uint64(q * float64(h.Count))
	if float64(rank) < q*float64(h.Count) || rank == 0 {
		rank++
	}
	if rank > h.Count {
		rank = h.Count
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			// Upper edge of bucket i: one below the next bucket's low.
			var hi uint64
			if i+1 < histBuckets {
				hi = histBucketLow(i+1) - 1
			} else {
				hi = ^uint64(0)
			}
			if hi > h.Max {
				hi = h.Max
			}
			if hi < h.Min {
				hi = h.Min
			}
			return hi
		}
	}
	return h.Max
}

// Merge adds q's samples into h.
func (h *Hist) Merge(q *Hist) {
	if q.Count == 0 {
		return
	}
	for i, c := range q.counts {
		h.counts[i] += c
	}
	if h.Count == 0 || q.Min < h.Min {
		h.Min = q.Min
	}
	if q.Max > h.Max {
		h.Max = q.Max
	}
	h.Count += q.Count
	h.Sum += q.Sum
}
