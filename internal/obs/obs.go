// Package obs is the structured observability subsystem shared by all
// backends: per-worker event rings, task-lineage tracking and
// log-bucket latency histograms, with exporters to Chrome trace-event
// JSON (Perfetto-viewable) and a compact text summary.
//
// Two recorder families share one event vocabulary and one export
// path (Export → WriteChromeTraceExport / WriteSummaryExport):
//
//   - Recorder/WorkerLog stamp events with the simulation engine's
//     virtual cycle clock. The engine is sequential (exactly one
//     simulated process executes at a time), so they need no locks and
//     must not be shared across real OS threads. Enabling them never
//     perturbs a run: two same-seed runs with and without a Recorder
//     execute the identical virtual-time schedule.
//   - WallRecorder/WallLog (wall.go) stamp events with a monotonic
//     wall clock and write flat, pointer-free rings that can live on
//     the heap or inside a shared-memory segment, for the rt and dist
//     backends.
//
// The disabled path is a nil-receiver guard in both families — a nil
// *Recorder, *WorkerLog, *WallRecorder or *WallLog accepts every call
// and does nothing, so instrumented code needs no conditionals and
// costs one pointer comparison per event when observability is off.
package obs

import "fmt"

// TaskID identifies one task (thread) for lineage tracking. IDs are
// assigned densely from 1 in spawn order — deterministic, because the
// engine serialises all spawns. 0 means "no task".
type TaskID uint64

// Kind classifies an event.
type Kind uint8

const (
	// KState is a worker scheduler-state change (Arg = trace state
	// code). State changes are kept out of the bounded ring — see
	// WorkerLog.StateChanges — so a full ring can never distort the
	// Gantt timeline derived from them.
	KState Kind = iota
	// KTask is one execution interval of a task function on this
	// worker: Task = id, Arg = FuncID, Dur = cycles on CPU.
	KTask
	// KSpawn records a spawn: Task = child id, Arg = parent id.
	KSpawn
	// KTaskDone records a task function returning Done (Task = id).
	KTaskDone
	// KPopFail is a failed continuation pop: the parent migrated
	// (Task = parent id).
	KPopFail
	// KJoinFast is a join that completed immediately.
	KJoinFast
	// KJoinMiss is a join that had to suspend (Task = suspending id).
	KJoinMiss
	// KSuspend is a thread swap-out to pinned memory (Task = id,
	// Dur = swap cycles, Arg = frame bytes).
	KSuspend
	// KResumeWait is a thread swap-in from the wait queue (Task = id,
	// Dur = swap cycles).
	KResumeWait
	// KStealBegin marks the start of a steal attempt (Peer = victim).
	KStealBegin
	// KStealOK is a successful steal: Peer = victim, Task = stolen id,
	// Arg = stack bytes, Dur = full attempt latency (begin → thread
	// runnable), Time = attempt begin.
	KStealOK
	// KStealEmpty / KStealBusy / KStealReject are failed attempts
	// (victim empty, lock busy, §5.1 slot mismatch).
	KStealEmpty
	KStealBusy
	KStealReject
	// KStealFault is a steal attempt aborted by an injected fabric
	// fault (Peer = victim).
	KStealFault
	// KStealRetry is a faulted attempt being retried after backoff
	// (Peer = victim, Dur = backoff cycles).
	KStealRetry
	// KStealRollback is a half-completed steal rolled back over the
	// THE abort path (Peer = victim).
	KStealRollback
	// KStealAbandon is an attempt abandoned after exhausting retries
	// (Peer = victim).
	KStealAbandon
	// KXfer is a stolen-stack transfer (Peer = victim, Arg = bytes,
	// Dur = cycles).
	KXfer
	// KRead / KWrite / KFAA are remote fabric operations issued by
	// this worker: Peer = target, Arg = bytes, Dur = op latency,
	// Time = issue instant. FFailed marks injected failures.
	KRead
	KWrite
	KFAA
	// KNetRetry is a reliable-wrapper backoff after a failed fabric op
	// (Dur = backoff cycles).
	KNetRetry
	// KLifelinePush is a thread pushed over a lifeline (Peer =
	// requester, Task = id, Arg = bytes).
	KLifelinePush
	// KLifelineRecv is a pushed thread arriving (Peer = pusher,
	// Task = id, Arg = bytes).
	KLifelineRecv
	// KDepth samples the owner-observed deque depth (Arg = depth)
	// after a local push/pop/take.
	KDepth
	// --- real-backend (wall-clock) kinds -------------------------------
	// KProbeCache / KProbeHint / KProbeBlind classify a steal-victim
	// probe on the rt/dist backends: last-successful-victim cache hit,
	// occupancy-hint sweep pick, or blind liveness fallback (Peer =
	// probed victim).
	KProbeCache
	KProbeHint
	KProbeBlind
	// KNap is one bounded idle sleep in the spin→nap→park ladder
	// (Dur = ns actually slept).
	KNap
	// KPark is one full park on the runtime parking lot, from blocking
	// on the wake channel to the wake token arriving (Dur = ns parked).
	KPark
	// KBlacklist records a victim being blacklisted after consecutive
	// steal faults (Peer = victim, Arg = ban duration ns).
	KBlacklist
	// KHeartbeat is one heartbeat stamp written to the shared segment
	// by a dist worker process.
	KHeartbeat
	// KCtlHello / KCtlBye are dist control-plane round trips: the
	// hello/start handshake and the bye/ack farewell (Dur = ns for the
	// full round trip, including any redials).
	KCtlHello
	KCtlBye
	// KCtlRetry is a control-plane redial after a connection fault
	// (Arg = attempt number).
	KCtlRetry
	numKinds
)

var kindNames = [numKinds]string{
	"state", "task", "spawn", "task-done", "pop-fail",
	"join-fast", "join-miss", "suspend", "resume-wait",
	"steal-begin", "steal-ok", "steal-empty", "steal-busy", "steal-reject",
	"steal-fault", "steal-retry", "steal-rollback", "steal-abandon",
	"xfer", "READ", "WRITE", "FAA", "net-retry",
	"lifeline-push", "lifeline-recv", "deque-depth",
	"probe-cache", "probe-hint", "probe-blind",
	"nap", "park", "blacklist", "heartbeat",
	"ctl-hello", "ctl-bye", "ctl-retry",
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event flags.
const (
	// FFailed marks a fabric op that an injected fault aborted.
	FFailed uint8 = 1 << iota
)

// Event is one typed timeline entry. Time is the event's (or
// interval's) start in virtual cycles; Dur is 0 for instants.
type Event struct {
	Time  uint64
	Dur   uint64
	Arg   uint64
	Task  TaskID
	Peer  int32 // victim/target rank; -1 when not applicable
	Kind  Kind
	Flags uint8
	// Job is the service job the producer was serving when it emitted
	// the event (0 outside a persistent service; always 0 in the
	// simulator's virtual-time rings).
	Job uint64
}

// Failed reports whether the event carries the injected-failure flag.
func (e Event) Failed() bool { return e.Flags&FFailed != 0 }

// StateChange is one scheduler-state transition of a worker.
type StateChange struct {
	Time  uint64
	State uint8
}

// Hop is one migration of a task between workers.
type Hop struct {
	Time     uint64
	From, To int32
}

// Lineage is the life story of one task: where it was spawned, every
// worker it migrated across, where it finished, and who joined it.
type Lineage struct {
	ID     TaskID
	Parent TaskID // 0 for the root
	Func   uint32 // core.FuncID of the task function
	Spawn  struct {
		Time   uint64
		Worker int32
	}
	Hops []Hop
	Done struct {
		Time   uint64
		Worker int32 // -1 until the task finishes
	}
	Joiner int32 // worker that joined the task; -1 if never joined
}

// DefaultRingCap is the per-worker event-ring capacity used when a
// Recorder is built with cap <= 0.
const DefaultRingCap = 1 << 18

// WorkerLog is one worker's event stream: a bounded ring of typed
// events (newest kept on overflow) plus an unbounded, transition-only
// state timeline. All methods are nil-safe.
type WorkerLog struct {
	rec  *Recorder
	rank int32

	states    []StateChange
	lastState uint8
	haveState bool

	ring    []Event
	head    int // next slot to write
	total   uint64
	dropped uint64
}

// Recorder collects WorkerLogs, task lineages and latency histograms
// for one machine run. All methods are nil-safe.
type Recorder struct {
	now  func() uint64
	logs []*WorkerLog

	nextTask TaskID
	tasks    []*Lineage        // index = TaskID-1
	byRecord map[uint64]TaskID // live completion-record handle → task

	// Latency histograms (virtual cycles unless noted).
	StealLatency Hist // successful steal, begin → thread runnable
	StackXfer    Hist // stolen-stack transfer time
	StackBytes   Hist // stolen-stack transfer size (bytes)
	FAARoundTrip Hist // software fetch-and-add round trips
	SuspendSwap  Hist // suspend swap-out time
}

// NewRecorder builds a recorder for n workers with the given per-worker
// ring capacity (<= 0 selects DefaultRingCap). now supplies the virtual
// clock (normally sim.Engine.Now).
func NewRecorder(n, ringCap int, now func() uint64) *Recorder {
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	r := &Recorder{now: now, byRecord: make(map[uint64]TaskID)}
	r.logs = make([]*WorkerLog, n)
	for i := range r.logs {
		r.logs[i] = &WorkerLog{rec: r, rank: int32(i), ring: make([]Event, 0, ringCap)}
	}
	return r
}

// Now returns the recorder's current virtual time (0 on nil).
func (r *Recorder) Now() uint64 {
	if r == nil {
		return 0
	}
	return r.now()
}

// Worker returns rank's log (nil on a nil recorder, so the result can
// be stored unconditionally).
func (r *Recorder) Worker(rank int) *WorkerLog {
	if r == nil {
		return nil
	}
	return r.logs[rank]
}

// Logs returns all worker logs in rank order (nil on nil).
func (r *Recorder) Logs() []*WorkerLog {
	if r == nil {
		return nil
	}
	return r.logs
}

// NewTask assigns the next task ID, recording the spawn site. record is
// the task's completion-record handle, used to attribute the eventual
// join (see TaskJoined). Returns 0 on a nil recorder.
func (r *Recorder) NewTask(parent TaskID, worker int, fn uint32, record uint64) TaskID {
	if r == nil {
		return 0
	}
	r.nextTask++
	id := r.nextTask
	ln := &Lineage{ID: id, Parent: parent, Func: fn, Joiner: -1}
	ln.Spawn.Time = r.now()
	ln.Spawn.Worker = int32(worker)
	ln.Done.Worker = -1
	r.tasks = append(r.tasks, ln)
	r.byRecord[record] = id
	return id
}

// TaskMoved appends a migration hop to id's lineage.
func (r *Recorder) TaskMoved(id TaskID, from, to int) {
	if r == nil || id == 0 {
		return
	}
	ln := r.tasks[id-1]
	ln.Hops = append(ln.Hops, Hop{Time: r.now(), From: int32(from), To: int32(to)})
}

// TaskDone records where and when id's task function returned Done.
func (r *Recorder) TaskDone(id TaskID, worker int) {
	if r == nil || id == 0 {
		return
	}
	ln := r.tasks[id-1]
	ln.Done.Time = r.now()
	ln.Done.Worker = int32(worker)
}

// TaskJoined records the final joiner of the task whose completion
// record is handle, and retires the handle mapping (record handles are
// reused after the join frees them). It returns the joined task's ID
// (0 if the record is unknown or the recorder nil).
func (r *Recorder) TaskJoined(record uint64, worker int) TaskID {
	if r == nil {
		return 0
	}
	id, ok := r.byRecord[record]
	if !ok {
		return 0
	}
	delete(r.byRecord, record)
	r.tasks[id-1].Joiner = int32(worker)
	return id
}

// Task returns id's lineage (nil if unknown or on a nil recorder).
func (r *Recorder) Task(id TaskID) *Lineage {
	if r == nil || id == 0 || int(id) > len(r.tasks) {
		return nil
	}
	return r.tasks[id-1]
}

// Tasks returns all lineages in spawn order (nil on nil).
func (r *Recorder) Tasks() []*Lineage {
	if r == nil {
		return nil
	}
	return r.tasks
}

// --- WorkerLog recording --------------------------------------------

// State records a scheduler-state transition at the current virtual
// time. Consecutive duplicates are dropped, mirroring the Gantt
// recorder the state stream feeds.
func (l *WorkerLog) State(s uint8) {
	if l == nil {
		return
	}
	if l.haveState && l.lastState == s {
		return
	}
	l.haveState = true
	l.lastState = s
	l.states = append(l.states, StateChange{Time: l.rec.now(), State: s})
}

// StateChanges returns the recorded transitions in time order.
func (l *WorkerLog) StateChanges() []StateChange {
	if l == nil {
		return nil
	}
	return l.states
}

// push appends e to the bounded ring, overwriting the oldest event when
// full.
func (l *WorkerLog) push(e Event) {
	l.total++
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
		return
	}
	l.ring[l.head] = e
	l.head = (l.head + 1) % len(l.ring)
	l.dropped++
}

// Emit records an interval event: [time, time+dur) of kind k.
func (l *WorkerLog) Emit(k Kind, time, dur, arg uint64, task TaskID, peer int) {
	if l == nil {
		return
	}
	l.push(Event{Time: time, Dur: dur, Arg: arg, Task: task, Peer: int32(peer), Kind: k})
}

// EmitFlags is Emit with explicit flags (e.g. FFailed).
func (l *WorkerLog) EmitFlags(k Kind, time, dur, arg uint64, task TaskID, peer int, flags uint8) {
	if l == nil {
		return
	}
	l.push(Event{Time: time, Dur: dur, Arg: arg, Task: task, Peer: int32(peer), Kind: k, Flags: flags})
}

// Instant records a zero-duration event at the current virtual time.
func (l *WorkerLog) Instant(k Kind, arg uint64, task TaskID, peer int) {
	if l == nil {
		return
	}
	l.push(Event{Time: l.rec.now(), Arg: arg, Task: task, Peer: int32(peer), Kind: k})
}

// Depth samples the owner-observed deque depth.
func (l *WorkerLog) Depth(n uint64) {
	if l == nil {
		return
	}
	l.push(Event{Time: l.rec.now(), Arg: n, Peer: -1, Kind: KDepth})
}

// Recorder returns the owning recorder (nil on nil).
func (l *WorkerLog) Recorder() *Recorder {
	if l == nil {
		return nil
	}
	return l.rec
}

// Rank returns the worker rank the log belongs to (-1 on nil).
func (l *WorkerLog) Rank() int {
	if l == nil {
		return -1
	}
	return int(l.rank)
}

// Events returns the ring contents in chronological (append) order.
func (l *WorkerLog) Events() []Event {
	if l == nil {
		return nil
	}
	if l.dropped == 0 {
		return l.ring
	}
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.head:]...)
	out = append(out, l.ring[:l.head]...)
	return out
}

// Dropped returns how many events the bounded ring discarded.
func (l *WorkerLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Total returns how many events were ever recorded (kept + dropped).
func (l *WorkerLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.total
}
