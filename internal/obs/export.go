package obs

// Unified export path: both recorder families (virtual-time Recorder,
// wall-clock WallRecorder) reduce to an Export — a clock-domain label,
// per-worker event streams with truncation accounting, optional task
// lineages, and named histograms — and the Chrome-trace / text-summary
// writers consume only that, so sim and real-backend traces go through
// one exporter.

// Clock-domain labels carried by Export and stamped into the Chrome
// trace's top-level "clockDomain" field.
const (
	// ClockVirtual: timestamps are simulation-engine virtual cycles.
	ClockVirtual = "virtual-cycles"
	// ClockWallNS: timestamps are wall-clock nanoseconds since the
	// run's epoch (monotonic within a process; dist aligns processes
	// on a shared epoch).
	ClockWallNS = "wall-ns"
)

// ExportLog is one worker's exported event stream.
type ExportLog struct {
	Rank    int32
	Events  []Event
	States  []StateChange // sim only; empty for wall logs
	Total   uint64        // events ever recorded (kept + dropped)
	Dropped uint64        // events the bounded ring discarded
}

// NamedHist pairs a histogram with its display name.
type NamedHist struct {
	Name string
	Hist *Hist
}

// Export is a recorder-family-neutral snapshot ready for the writers.
type Export struct {
	Clock string      // ClockVirtual or ClockWallNS
	Logs  []ExportLog // rank order
	Tasks []*Lineage  // sim lineage; empty for wall recorders
	Hists []NamedHist // only non-empty histograms
}

// Events returns the total number of events ever recorded across all
// workers (kept + dropped). Nil-safe.
func (ex *Export) Events() uint64 {
	if ex == nil {
		return 0
	}
	var n uint64
	for _, l := range ex.Logs {
		n += l.Total
	}
	return n
}

// Dropped returns the total number of ring-discarded events. Nil-safe.
func (ex *Export) Dropped() uint64 {
	if ex == nil {
		return 0
	}
	var n uint64
	for _, l := range ex.Logs {
		n += l.Dropped
	}
	return n
}

// ClockUnit returns the human unit for the export's clock domain.
func (ex *Export) ClockUnit() string {
	if ex != nil && ex.Clock == ClockWallNS {
		return "wall ns"
	}
	return "virtual cycles"
}

func appendHist(hists []NamedHist, name string, h *Hist) []NamedHist {
	if h == nil || h.Count == 0 {
		return hists
	}
	return append(hists, NamedHist{Name: name, Hist: h})
}

// Export snapshots the virtual-time recorder (nil on nil).
func (r *Recorder) Export() *Export {
	if r == nil {
		return nil
	}
	ex := &Export{Clock: ClockVirtual, Tasks: r.tasks}
	for _, l := range r.logs {
		ex.Logs = append(ex.Logs, ExportLog{
			Rank:    l.rank,
			Events:  l.Events(),
			States:  l.states,
			Total:   l.total,
			Dropped: l.dropped,
		})
	}
	ex.Hists = appendHist(ex.Hists, "steal latency", &r.StealLatency)
	ex.Hists = appendHist(ex.Hists, "stack transfer", &r.StackXfer)
	ex.Hists = appendHist(ex.Hists, "stack bytes", &r.StackBytes)
	ex.Hists = appendHist(ex.Hists, "software FAA", &r.FAARoundTrip)
	ex.Hists = appendHist(ex.Hists, "suspend swap", &r.SuspendSwap)
	return ex
}

// Export snapshots the wall-clock recorder, merging the per-worker
// histograms into run-wide aggregates (nil on nil). Call at
// quiescence — the per-worker rings are decoded here.
func (r *WallRecorder) Export() *Export {
	if r == nil {
		return nil
	}
	ex := &Export{Clock: ClockWallNS}
	var steal, park, copyNS, copyBytes Hist
	for _, l := range r.logs {
		if l == nil {
			continue
		}
		ex.Logs = append(ex.Logs, ExportLog{
			Rank:    l.rank,
			Events:  l.Events(),
			Total:   l.Total(),
			Dropped: l.Dropped(),
		})
		steal.Merge(l.StealLatency)
		park.Merge(l.ParkDur)
		copyNS.Merge(l.StackCopyNS)
		copyBytes.Merge(l.StackCopyBytes)
	}
	ex.Hists = appendHist(ex.Hists, "steal latency", &steal)
	ex.Hists = appendHist(ex.Hists, "park duration", &park)
	ex.Hists = appendHist(ex.Hists, "stack-copy ns", &copyNS)
	ex.Hists = appendHist(ex.Hists, "stack-copy bytes", &copyBytes)
	return ex
}
