package obs

import (
	"math/rand"
	"testing"
)

// --- histogram -------------------------------------------------------

func TestHistBucketBoundaries(t *testing.T) {
	// Every value below histSub gets its own exact bucket.
	for v := uint64(0); v < histSub; v++ {
		if got := histBucket(v); got != int(v) {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, v)
		}
	}
	// histBucketLow is the left inverse: low(bucket(v)) <= v and v maps
	// back into the same bucket as its bucket's low edge.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Int63()) >> uint(rng.Intn(60))
		b := histBucket(v)
		lo := histBucketLow(b)
		if lo > v {
			t.Fatalf("histBucketLow(%d) = %d > value %d", b, lo, v)
		}
		if histBucket(lo) != b {
			t.Fatalf("bucket(low(%d)) = %d, want %d (v=%d)", b, histBucket(lo), b, v)
		}
	}
	// Bucket low edges are strictly increasing.
	prev := histBucketLow(0)
	for i := 1; i < histBuckets; i++ {
		lo := histBucketLow(i)
		if lo <= prev {
			t.Fatalf("bucket lows not increasing at %d: %d <= %d", i, lo, prev)
		}
		prev = lo
	}
}

func TestHistQuantileExactForSmallValues(t *testing.T) {
	var h Hist
	for v := uint64(0); v < 8; v++ {
		h.Record(v)
	}
	// Values < 8 live in exact buckets, so quantiles are exact.
	cases := []struct {
		q    float64
		want uint64
	}{{0, 0}, {0.125, 0}, {0.5, 3}, {0.75, 5}, {1, 7}}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%g) = %d, want %d", c.q, got, c.want)
		}
	}
	if h.Min != 0 || h.Max != 7 || h.Count != 8 || h.Sum != 28 {
		t.Errorf("stats = min %d max %d count %d sum %d", h.Min, h.Max, h.Count, h.Sum)
	}
}

func TestHistQuantileWithinRelativeError(t *testing.T) {
	var h Hist
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Int63n(1 << 40))
		vals = append(vals, v)
		h.Record(v)
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		got := h.Quantile(q)
		if got < h.Min || got > h.Max {
			t.Fatalf("Quantile(%g) = %d outside [%d, %d]", q, got, h.Min, h.Max)
		}
	}
	// The quantile is an upper bound within one bucket (~12.5%) of the
	// exact order statistic.
	exact := append([]uint64(nil), vals...)
	sortU64(exact)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		rank := int(q * float64(len(exact)))
		want := exact[rank]
		got := h.Quantile(q)
		if got < want/2 || got > want+want/4 {
			t.Errorf("Quantile(%g) = %d too far from exact %d", q, got, want)
		}
	}
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestHistMerge(t *testing.T) {
	var a, b, all Hist
	for v := uint64(1); v <= 100; v++ {
		all.Record(v * 17)
		if v%2 == 0 {
			a.Record(v * 17)
		} else {
			b.Record(v * 17)
		}
	}
	a.Merge(&b)
	if a.Count != all.Count || a.Sum != all.Sum || a.Min != all.Min || a.Max != all.Max {
		t.Fatalf("merge mismatch: %+v vs %+v", a, all)
	}
	for _, q := range []float64{0.25, 0.5, 0.9, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("Quantile(%g): merged %d != direct %d", q, a.Quantile(q), all.Quantile(q))
		}
	}
	var empty Hist
	before := a
	a.Merge(&empty)
	if a != before {
		t.Error("merging an empty histogram changed the target")
	}
}

// --- event ring ------------------------------------------------------

func TestRingDropsOldestKeepsOrder(t *testing.T) {
	clock := uint64(0)
	r := NewRecorder(1, 4, func() uint64 { return clock })
	l := r.Worker(0)
	for i := uint64(1); i <= 10; i++ {
		clock = i * 100
		l.Instant(KSpawn, i, TaskID(i), -1)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(evs))
	}
	for i, e := range evs {
		want := uint64(7 + i) // newest four survive, in append order
		if e.Arg != want || e.Time != want*100 {
			t.Fatalf("event %d = arg %d time %d, want arg %d time %d",
				i, e.Arg, e.Time, want, want*100)
		}
	}
}

func TestStateDedup(t *testing.T) {
	clock := uint64(0)
	r := NewRecorder(1, 16, func() uint64 { return clock })
	l := r.Worker(0)
	for _, s := range []uint8{1, 1, 2, 2, 2, 1, 0, 0} {
		clock++
		l.State(s)
	}
	sc := l.StateChanges()
	want := []uint8{1, 2, 1, 0}
	if len(sc) != len(want) {
		t.Fatalf("got %d transitions, want %d", len(sc), len(want))
	}
	for i, s := range want {
		if sc[i].State != s {
			t.Errorf("transition %d = %d, want %d", i, sc[i].State, s)
		}
	}
}

// --- nil safety ------------------------------------------------------

func TestNilRecorderAndLogAreNoOps(t *testing.T) {
	var r *Recorder
	var l *WorkerLog

	// Every method on both nil receivers must be callable.
	if r.Now() != 0 {
		t.Error("nil Recorder.Now != 0")
	}
	if r.Worker(3) != nil {
		t.Error("nil Recorder.Worker != nil")
	}
	if r.Logs() != nil {
		t.Error("nil Recorder.Logs != nil")
	}
	if id := r.NewTask(0, 1, 2, 3); id != 0 {
		t.Errorf("nil NewTask = %d, want 0", id)
	}
	r.TaskMoved(1, 0, 1)
	r.TaskDone(1, 0)
	if id := r.TaskJoined(9, 0); id != 0 {
		t.Errorf("nil TaskJoined = %d, want 0", id)
	}
	if r.Task(1) != nil || r.Tasks() != nil {
		t.Error("nil Task/Tasks != nil")
	}

	l.State(1)
	l.Emit(KTask, 1, 2, 3, 4, 5)
	l.EmitFlags(KRead, 1, 2, 3, 4, 5, FFailed)
	l.Instant(KSpawn, 1, 2, 3)
	l.Depth(4)
	if l.Events() != nil || l.StateChanges() != nil {
		t.Error("nil WorkerLog events/states != nil")
	}
	if l.Recorder() != nil {
		t.Error("nil WorkerLog.Recorder != nil")
	}
	if l.Rank() != -1 {
		t.Error("nil WorkerLog.Rank != -1")
	}
	if l.Dropped() != 0 || l.Total() != 0 {
		t.Error("nil WorkerLog counters != 0")
	}
}

// --- lineage ---------------------------------------------------------

func TestLineageTracking(t *testing.T) {
	clock := uint64(0)
	r := NewRecorder(4, 64, func() uint64 { return clock })

	clock = 10
	root := r.NewTask(0, 0, 7, 100)
	clock = 20
	child := r.NewTask(root, 0, 8, 200)
	if root != 1 || child != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", root, child)
	}

	clock = 30
	r.TaskMoved(child, 0, 3)
	clock = 40
	r.TaskMoved(child, 3, 1)
	clock = 50
	r.TaskDone(child, 1)
	if id := r.TaskJoined(200, 0); id != child {
		t.Fatalf("TaskJoined(200) = %d, want %d", id, child)
	}
	// The handle retires with the join: a recycled record handle must
	// not resolve to the old task.
	if id := r.TaskJoined(200, 2); id != 0 {
		t.Fatalf("TaskJoined on retired handle = %d, want 0", id)
	}

	ln := r.Task(child)
	if ln == nil || ln.Parent != root || ln.Func != 8 {
		t.Fatalf("lineage = %+v", ln)
	}
	if ln.Spawn.Time != 20 || ln.Spawn.Worker != 0 {
		t.Errorf("spawn = %+v", ln.Spawn)
	}
	if len(ln.Hops) != 2 || ln.Hops[0] != (Hop{Time: 30, From: 0, To: 3}) ||
		ln.Hops[1] != (Hop{Time: 40, From: 3, To: 1}) {
		t.Errorf("hops = %+v", ln.Hops)
	}
	if ln.Done.Time != 50 || ln.Done.Worker != 1 {
		t.Errorf("done = %+v", ln.Done)
	}
	if ln.Joiner != 0 {
		t.Errorf("joiner = %d, want 0", ln.Joiner)
	}

	rootLn := r.Task(root)
	if rootLn.Joiner != -1 || rootLn.Done.Worker != -1 {
		t.Errorf("unfinished root lineage = %+v", rootLn)
	}
	if r.Task(0) != nil || r.Task(99) != nil {
		t.Error("out-of-range Task lookups should be nil")
	}
}
