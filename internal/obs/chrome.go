package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event exporter. The output is the JSON-object flavour of
// the trace-event format ("traceEvents" array) and loads directly in
// Perfetto (ui.perfetto.dev) or chrome://tracing: one track (tid) per
// worker carrying task-execution, steal-attempt, suspend and RDMA-op
// slices, instant markers for faults, probes and retries, a deque-depth
// counter track, and flow arrows connecting the two ends of every task
// migration.
//
// Timestamps are written into the "ts"/"dur" fields in the export's
// clock domain — virtual cycles for the simulator, wall nanoseconds for
// the rt/dist backends — and the domain is stamped into the top-level
// "clockDomain" field so a trace is self-describing. (The viewer labels
// ts as µs; the scale is exact, only the unit label is off.) All output
// is deterministic: same run, same bytes.

// ChromeOpts customises the export.
type ChromeOpts struct {
	// FuncName resolves a task FuncID to a display name (nil = "task").
	FuncName func(uint32) string
	// Label names the process track (default "uniaddr").
	Label string
}

type chromeArgs struct {
	Name    string  `json:"name,omitempty"`    // metadata payload
	Task    uint64  `json:"task,omitempty"`    // TaskID
	Parent  uint64  `json:"parent,omitempty"`  // parent TaskID
	Peer    *int32  `json:"peer,omitempty"`    // victim / target rank
	Bytes   uint64  `json:"bytes,omitempty"`
	Depth   *uint64 `json:"depth,omitempty"`
	Failed  bool    `json:"failed,omitempty"`
	Attempt uint64  `json:"attempt,omitempty"` // ctl redial attempt
	Job     uint64  `json:"job,omitempty"`     // service job ID
}

type chromeEvent struct {
	Name string      `json:"name,omitempty"`
	Cat  string      `json:"cat,omitempty"`
	Ph   string      `json:"ph"`
	Ts   uint64      `json:"ts"`
	Dur  *uint64     `json:"dur,omitempty"`
	Pid  int         `json:"pid"`
	Tid  int32       `json:"tid"`
	ID   uint64      `json:"id,omitempty"`
	BP   string      `json:"bp,omitempty"`
	S    string      `json:"s,omitempty"`
	Args *chromeArgs `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	ClockDomain     string            `json:"clockDomain"`
	OtherData       map[string]uint64 `json:"otherData,omitempty"`
}

func peerArg(p int32) *int32 {
	if p < 0 {
		return nil
	}
	v := p
	return &v
}

// WriteChromeTrace serialises the virtual-time recorder's contents as
// Chrome trace-event JSON.
func WriteChromeTrace(w io.Writer, r *Recorder, opts *ChromeOpts) error {
	if r == nil {
		return fmt.Errorf("obs: no recorder to export (observability disabled)")
	}
	return WriteChromeTraceExport(w, r.Export(), opts)
}

// WriteChromeTraceExport serialises any export — virtual-time or
// wall-clock — as Chrome trace-event JSON.
func WriteChromeTraceExport(w io.Writer, ex *Export, opts *ChromeOpts) error {
	if ex == nil {
		return fmt.Errorf("obs: no export to write (observability disabled)")
	}
	if opts == nil {
		opts = &ChromeOpts{}
	}
	label := opts.Label
	if label == "" {
		label = "uniaddr"
	}
	fname := opts.FuncName
	if fname == nil {
		fname = func(uint32) string { return "task" }
	}
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: &chromeArgs{Name: label},
	})
	for _, l := range ex.Logs {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: l.Rank,
			Args: &chromeArgs{Name: fmt.Sprintf("worker%d", l.Rank)},
		})
	}
	slice := func(tid int32, e Event, name, cat string, args *chromeArgs) {
		d := e.Dur
		evs = append(evs, chromeEvent{
			Name: name, Cat: cat, Ph: "X", Ts: e.Time, Dur: &d,
			Pid: 0, Tid: tid, Args: args,
		})
	}
	instant := func(tid int32, ts uint64, name, cat string, args *chromeArgs) {
		evs = append(evs, chromeEvent{
			Name: name, Cat: cat, Ph: "i", Ts: ts, Pid: 0, Tid: tid, S: "t", Args: args,
		})
	}
	for _, l := range ex.Logs {
		rank := l.Rank
		for _, e := range l.Events {
			switch e.Kind {
			case KTask:
				slice(rank, e, fname(uint32(e.Arg)), "task", &chromeArgs{Task: uint64(e.Task), Job: e.Job})
			case KSpawn:
				instant(rank, e.Time, "spawn", "task", &chromeArgs{Task: uint64(e.Task), Parent: e.Arg})
			case KPopFail:
				instant(rank, e.Time, "pop-fail", "task", &chromeArgs{Task: uint64(e.Task)})
			case KJoinFast:
				instant(rank, e.Time, "join-fast", "task", &chromeArgs{Task: uint64(e.Task)})
			case KJoinMiss:
				instant(rank, e.Time, "join-miss", "task", &chromeArgs{Task: uint64(e.Task)})
			case KSuspend:
				slice(rank, e, "suspend", "sched", &chromeArgs{Task: uint64(e.Task), Bytes: e.Arg})
			case KResumeWait:
				slice(rank, e, "resume", "sched", &chromeArgs{Task: uint64(e.Task)})
			case KStealOK:
				slice(rank, e, "steal", "steal", &chromeArgs{Task: uint64(e.Task), Peer: peerArg(e.Peer), Bytes: e.Arg})
			case KStealEmpty:
				slice(rank, e, "steal(empty)", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KStealBusy:
				slice(rank, e, "steal(busy)", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KStealReject:
				slice(rank, e, "steal(reject)", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KStealFault:
				instant(rank, e.Time, "steal-fault", "steal", &chromeArgs{Peer: peerArg(e.Peer), Failed: true})
			case KStealRetry:
				slice(rank, e, "steal-retry", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KStealRollback:
				instant(rank, e.Time, "steal-rollback", "steal", &chromeArgs{Peer: peerArg(e.Peer), Failed: true})
			case KStealAbandon:
				slice(rank, e, "steal(abandoned)", "steal", &chromeArgs{Peer: peerArg(e.Peer), Failed: true})
			case KXfer:
				slice(rank, e, "xfer", "steal", &chromeArgs{Peer: peerArg(e.Peer), Bytes: e.Arg})
			case KRead, KWrite, KFAA:
				args := &chromeArgs{Peer: peerArg(e.Peer), Bytes: e.Arg, Failed: e.Failed()}
				slice(rank, e, e.Kind.String(), "rdma", args)
				if e.Failed() {
					// Mark the injected fault on both ends: the initiator
					// (whose op died) and the target (whose endpoint the
					// injector struck), so a chaos timeline shows the
					// fault in both contexts.
					instant(rank, e.Time+e.Dur, "fault", "fault", &chromeArgs{Peer: peerArg(e.Peer)})
					if e.Peer >= 0 {
						instant(e.Peer, e.Time+e.Dur, "fault", "fault", &chromeArgs{Peer: peerArg(rank)})
					}
				}
			case KNetRetry:
				slice(rank, e, "net-retry", "rdma", &chromeArgs{Peer: peerArg(e.Peer)})
			case KLifelinePush:
				instant(rank, e.Time, "lifeline-push", "lifeline", &chromeArgs{Task: uint64(e.Task), Peer: peerArg(e.Peer), Bytes: e.Arg})
			case KLifelineRecv:
				instant(rank, e.Time, "lifeline-recv", "lifeline", &chromeArgs{Task: uint64(e.Task), Peer: peerArg(e.Peer), Bytes: e.Arg})
			case KDepth:
				d := e.Arg
				evs = append(evs, chromeEvent{
					Name: "deque", Ph: "C", Ts: e.Time, Pid: 0, Tid: rank,
					Args: &chromeArgs{Depth: &d},
				})
			case KProbeCache:
				instant(rank, e.Time, "probe-cache", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KProbeHint:
				instant(rank, e.Time, "probe-hint", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KProbeBlind:
				instant(rank, e.Time, "probe-blind", "steal", &chromeArgs{Peer: peerArg(e.Peer)})
			case KNap:
				slice(rank, e, "nap", "idle", nil)
			case KPark:
				slice(rank, e, "park", "idle", nil)
			case KBlacklist:
				instant(rank, e.Time, "blacklist", "steal", &chromeArgs{Peer: peerArg(e.Peer), Failed: true})
			case KHeartbeat:
				instant(rank, e.Time, "heartbeat", "ctl", nil)
			case KCtlHello:
				slice(rank, e, "ctl-hello", "ctl", nil)
			case KCtlBye:
				slice(rank, e, "ctl-bye", "ctl", nil)
			case KCtlRetry:
				instant(rank, e.Time, "ctl-retry", "ctl", &chromeArgs{Attempt: e.Arg, Failed: true})
			}
		}
	}
	// Flow arrows: one s→f pair per migration hop, in task order.
	var flowID uint64
	for _, ln := range ex.Tasks {
		for _, h := range ln.Hops {
			flowID++
			evs = append(evs, chromeEvent{
				Name: "migrate", Cat: "flow", Ph: "s", Ts: h.Time, Pid: 0, Tid: h.From,
				ID: flowID, Args: &chromeArgs{Task: uint64(ln.ID)},
			})
			evs = append(evs, chromeEvent{
				Name: "migrate", Cat: "flow", Ph: "f", BP: "e", Ts: h.Time, Pid: 0, Tid: h.To,
				ID: flowID, Args: &chromeArgs{Task: uint64(ln.ID)},
			})
		}
	}
	other := map[string]uint64{}
	for _, nh := range ex.Hists {
		if nh.Name == "steal latency" && nh.Hist.Count > 0 {
			other["steal_latency_p50"] = nh.Hist.Quantile(0.50)
			other["steal_latency_p95"] = nh.Hist.Quantile(0.95)
			other["steal_latency_p99"] = nh.Hist.Quantile(0.99)
		}
	}
	for _, l := range ex.Logs {
		if l.Dropped > 0 {
			other[fmt.Sprintf("dropped_events_w%d", l.Rank)] = l.Dropped
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		ClockDomain:     ex.Clock,
		OtherData:       other,
	})
}
