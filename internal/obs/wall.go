package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
	"unsafe"
)

// Wall-clock observability for the real backends (rt, dist).
//
// A WallLog is a flat, pointer-free event ring plus four latency
// histograms, laid out so the whole block can live either on the heap
// or inside a shared-memory segment mapped at the same address in
// several processes (the `internal/sched` attach-view idiom):
//
//	[ header: 1 atomic total word, padded to 64 B ]
//	[ ring:   ringCap slots × 5 words (40 B each) ]
//	[ hists:  steal-latency, park-dur, copy-ns, copy-bytes ]
//
// Writers reserve a slot with one fetch-and-add on the header word
// (slot = index & mask), store the four payload words, then store the
// packed fifth word — peer | kind | flags | lap-tag — last, all with
// atomic word stores. Multiple producers may share one ring (a dist
// child's heartbeat goroutine writes beside its worker goroutine); the
// FAA makes reservations disjoint, so writers never contend on a slot.
//
// Readers run at quiescence (after every writer has stopped or died —
// the dist parent harvests after wait()ing on all children), so they
// see fully written slots. The lap tag and a kind-validity check make
// the decode robust to the one case quiescence cannot rule out: a
// writer SIGKILLed between reserving a slot and completing its stores.
// Such a slot either still holds the previous lap's fifth word (lap
// mismatch → skipped) or is all-zero (decodes as KState, which wall
// rings never contain → skipped). A torn slot is dropped, never
// misreported.
//
// On overflow the ring keeps the NEWEST events: logical indices
// [total-cap, total) survive, older slots are overwritten in place.
// Dropped() = total - cap derives from the same header word, so
// truncation is always visible to exporters.
//
// All methods are nil-safe: a nil *WallLog accepts every call and does
// nothing, so instrumented hot paths need no conditionals and cost one
// pointer comparison per event when observability is off.

const (
	// wallEventWords is the flat footprint of one ring slot in words:
	// Time, Dur, Arg, Task, peer|kind|flags|lap packed, then the job ID
	// the producer was serving (0 outside a persistent service). The
	// packed word is stored LAST — it carries the lap tag that commits
	// the slot — so the job word is written before it.
	wallEventWords = 6
	// wallHdrWords pads the header's single atomic total word out to a
	// cache line so producer FAAs never false-share with slot 0.
	wallHdrWords = 8
	// wallHistCount is the number of flat histograms after the ring.
	wallHistCount = 4
)

// DefaultWallRingCap is the per-worker wall-clock ring capacity when a
// configuration leaves it zero: 2^16 events ≈ 2.6 MB per worker.
const DefaultWallRingCap = 1 << 16

// wallRingCap normalises a configured capacity: <=0 selects the
// default, anything else is rounded up to a power of two (the ring
// masks instead of dividing).
func wallRingCap(c int) uint64 {
	if c <= 0 {
		return DefaultWallRingCap
	}
	if c < 2 {
		c = 2
	}
	return 1 << uint(bits.Len64(uint64(c-1)))
}

// WallLogBytes returns the flat byte footprint of one per-worker wall
// log with the given (power-of-two) ring capacity.
func WallLogBytes(ringCap uint64) uint64 {
	return wallHdrWords*8 + ringCap*wallEventWords*8 +
		wallHistCount*uint64(unsafe.Sizeof(Hist{}))
}

// WallLog is one worker's wall-clock event stream over a flat memory
// block. All methods are nil-safe.
type WallLog struct {
	now   func() uint64
	total *uint64  // header word: events ever reserved
	slots []uint64 // ringCap × wallEventWords
	mask  uint64   // ringCap - 1
	shift uint     // log2(ringCap), for lap tags
	rank  int32

	// job tags every subsequent event with the job the producer is
	// serving (see SetJob). Atomic because a ring can have several
	// producers sharing one view (a dist child's heartbeat goroutine
	// writes beside its worker).
	job atomic.Uint64

	// Histograms, recorded by the owning worker only (the ring is
	// multi-producer; the hists are not). Read them only through a
	// non-nil log, or via Export.
	StealLatency   *Hist // successful steal, probe begin → frame installed (ns)
	ParkDur        *Hist // full park, block → wake token (ns)
	StackCopyNS    *Hist // stolen/suspended stack memcpy time (ns)
	StackCopyBytes *Hist // stolen/suspended stack size (bytes)
}

// NewWallLogAt builds an attach view of the wall log stored in block,
// which must be 8-byte aligned and at least WallLogBytes(ringCap)
// long. ringCap must be a power of two >= 2. The block is NOT zeroed:
// a fresh (zero-filled) block is an empty log, and re-attaching from
// another process sees whatever has been recorded so far. now supplies
// the wall clock (nil is allowed for harvest-only views; Clock then
// returns 0).
func NewWallLogAt(block []byte, rank int, ringCap uint64, now func() uint64) (*WallLog, error) {
	if ringCap < 2 || ringCap&(ringCap-1) != 0 {
		return nil, fmt.Errorf("obs: wall ring cap %d not a power of two >= 2", ringCap)
	}
	need := WallLogBytes(ringCap)
	if uint64(len(block)) < need {
		return nil, fmt.Errorf("obs: wall log block %d bytes, need %d", len(block), need)
	}
	p := unsafe.Pointer(&block[0])
	if uintptr(p)%8 != 0 {
		return nil, fmt.Errorf("obs: wall log block not 8-byte aligned")
	}
	words := unsafe.Slice((*uint64)(p), need/8)
	l := &WallLog{
		now:   now,
		total: &words[0],
		slots: words[wallHdrWords : wallHdrWords+ringCap*wallEventWords],
		mask:  ringCap - 1,
		shift: uint(bits.TrailingZeros64(ringCap)),
		rank:  int32(rank),
	}
	off := wallHdrWords + ringCap*wallEventWords
	hw := uint64(unsafe.Sizeof(Hist{})) / 8
	l.StealLatency = (*Hist)(unsafe.Pointer(&words[off+0*hw]))
	l.ParkDur = (*Hist)(unsafe.Pointer(&words[off+1*hw]))
	l.StackCopyNS = (*Hist)(unsafe.Pointer(&words[off+2*hw]))
	l.StackCopyBytes = (*Hist)(unsafe.Pointer(&words[off+3*hw]))
	return l, nil
}

// Clock returns the current wall timestamp (0 on a nil log or a
// harvest-only view), so call sites can take interval start stamps
// unconditionally.
func (l *WallLog) Clock() uint64 {
	if l == nil || l.now == nil {
		return 0
	}
	return l.now()
}

// EmitFlags records an interval event [time, time+dur) of kind k with
// explicit flags.
func (l *WallLog) EmitFlags(k Kind, time, dur, arg uint64, task TaskID, peer int, flags uint8) {
	if l == nil {
		return
	}
	idx := atomic.AddUint64(l.total, 1) - 1
	base := (idx & l.mask) * wallEventWords
	s := l.slots
	atomic.StoreUint64(&s[base+0], time)
	atomic.StoreUint64(&s[base+1], dur)
	atomic.StoreUint64(&s[base+2], arg)
	atomic.StoreUint64(&s[base+3], uint64(task))
	atomic.StoreUint64(&s[base+5], l.job.Load())
	lap := (idx >> l.shift) & 0xffff
	atomic.StoreUint64(&s[base+4],
		uint64(uint32(peer))|uint64(uint8(k))<<32|uint64(flags)<<40|lap<<48)
}

// SetJob tags every subsequent event from this view with the given job
// ID (a persistent service sets it when a worker switches onto another
// job's frames; 0 = no job). Nil-safe like every emission.
func (l *WallLog) SetJob(id uint64) {
	if l == nil {
		return
	}
	l.job.Store(id)
}

// Emit records an interval event [time, time+dur) of kind k.
func (l *WallLog) Emit(k Kind, time, dur, arg uint64, task TaskID, peer int) {
	l.EmitFlags(k, time, dur, arg, task, peer, 0)
}

// Instant records a zero-duration event stamped now.
func (l *WallLog) Instant(k Kind, arg uint64, task TaskID, peer int) {
	if l == nil {
		return
	}
	l.EmitFlags(k, l.Clock(), 0, arg, task, peer, 0)
}

// StealOK records a successful steal that began at start: a KStealOK
// interval (Arg = stolen bytes, Peer = victim) plus a steal-latency
// histogram sample.
func (l *WallLog) StealOK(start, bytes uint64, peer int) {
	if l == nil {
		return
	}
	d := l.Clock() - start
	l.EmitFlags(KStealOK, start, d, bytes, 0, peer, 0)
	l.StealLatency.Record(d)
}

// Park records a full park that began blocking at start: a KPark
// interval plus a park-duration histogram sample.
func (l *WallLog) Park(start uint64) {
	if l == nil {
		return
	}
	d := l.Clock() - start
	l.EmitFlags(KPark, start, d, 0, 0, -1, 0)
	l.ParkDur.Record(d)
}

// Nap records one bounded idle sleep that began at start.
func (l *WallLog) Nap(start uint64) {
	if l == nil {
		return
	}
	l.EmitFlags(KNap, start, l.Clock()-start, 0, 0, -1, 0)
}

// Copy records a cross-arena stack copy that began at start (KXfer,
// Peer = victim) plus stack-copy time/size histogram samples.
func (l *WallLog) Copy(start, bytes uint64, peer int) {
	if l == nil {
		return
	}
	d := l.Clock() - start
	l.EmitFlags(KXfer, start, d, bytes, 0, peer, 0)
	l.StackCopyNS.Record(d)
	l.StackCopyBytes.Record(bytes)
}

// Suspend records a suspend-to-heap stack copy that began at start
// (KSuspend, Arg = frame bytes) plus stack-copy histogram samples.
func (l *WallLog) Suspend(start, bytes uint64) {
	if l == nil {
		return
	}
	d := l.Clock() - start
	l.EmitFlags(KSuspend, start, d, bytes, 0, -1, 0)
	l.StackCopyNS.Record(d)
	l.StackCopyBytes.Record(bytes)
}

// Rank returns the worker rank the log belongs to (-1 on nil).
func (l *WallLog) Rank() int {
	if l == nil {
		return -1
	}
	return int(l.rank)
}

// Total returns how many events were ever recorded (kept + dropped).
func (l *WallLog) Total() uint64 {
	if l == nil {
		return 0
	}
	return atomic.LoadUint64(l.total)
}

// Dropped returns how many events the bounded ring discarded.
func (l *WallLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	total, ringCap := atomic.LoadUint64(l.total), l.mask+1
	if total <= ringCap {
		return 0
	}
	return total - ringCap
}

// Events decodes the ring contents in logical (reservation) order:
// indices [max(0, total-cap), total). Call at quiescence; slots a dead
// writer reserved but never finished are skipped, not misread.
func (l *WallLog) Events() []Event {
	if l == nil {
		return nil
	}
	total := atomic.LoadUint64(l.total)
	ringCap := l.mask + 1
	start := uint64(0)
	if total > ringCap {
		start = total - ringCap
	}
	out := make([]Event, 0, total-start)
	for i := start; i < total; i++ {
		base := (i & l.mask) * wallEventWords
		w4 := atomic.LoadUint64(&l.slots[base+4])
		if (w4>>48)&0xffff != (i>>l.shift)&0xffff {
			continue // reserved but never committed (dead writer) or stale lap
		}
		k := Kind(uint8(w4 >> 32))
		// KState never enters a wall ring, so an all-zero slot (fresh
		// memory behind a reserved-but-unwritten index) is rejected here.
		if k == KState || k >= numKinds {
			continue
		}
		out = append(out, Event{
			Time:  atomic.LoadUint64(&l.slots[base+0]),
			Dur:   atomic.LoadUint64(&l.slots[base+1]),
			Arg:   atomic.LoadUint64(&l.slots[base+2]),
			Task:  TaskID(atomic.LoadUint64(&l.slots[base+3])),
			Peer:  int32(uint32(w4)),
			Kind:  k,
			Flags: uint8(w4 >> 40),
			Job:   atomic.LoadUint64(&l.slots[base+5]),
		})
	}
	return out
}

// WallRecorder collects the per-worker WallLogs of one rt run (heap
// blocks) or one dist run (attach views over the shared segment). All
// methods are nil-safe.
type WallRecorder struct {
	logs  []*WallLog
	clock func() uint64
}

// NewWallRecorder builds a heap-backed wall recorder for n workers
// with the given per-worker ring capacity (<= 0 selects
// DefaultWallRingCap; other values round up to a power of two). The
// clock is monotonic ns since the recorder was created.
func NewWallRecorder(n, ringCap int) *WallRecorder {
	cp := wallRingCap(ringCap)
	epoch := time.Now()
	now := func() uint64 { return uint64(time.Since(epoch)) }
	r := &WallRecorder{clock: now, logs: make([]*WallLog, n)}
	for i := range r.logs {
		// A []uint64 backing keeps the block 8-aligned; the log's
		// interior pointers keep it alive.
		words := make([]uint64, WallLogBytes(cp)/8)
		block := unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), len(words)*8)
		l, err := NewWallLogAt(block, i, cp, now)
		if err != nil {
			panic(err) // sizing is self-consistent; unreachable
		}
		r.logs[i] = l
	}
	return r
}

// NewWallRecorderOver wraps existing wall logs (e.g. segment attach
// views) for export. logs must be in rank order.
func NewWallRecorderOver(logs []*WallLog) *WallRecorder {
	return &WallRecorder{logs: logs}
}

// Now returns the recorder's current wall timestamp (0 on nil or on a
// harvest-only recorder).
func (r *WallRecorder) Now() uint64 {
	if r == nil || r.clock == nil {
		return 0
	}
	return r.clock()
}

// Worker returns rank's log (nil on a nil recorder, so the result can
// be stored unconditionally).
func (r *WallRecorder) Worker(rank int) *WallLog {
	if r == nil {
		return nil
	}
	return r.logs[rank]
}

// Logs returns all worker logs in rank order (nil on nil).
func (r *WallRecorder) Logs() []*WallLog {
	if r == nil {
		return nil
	}
	return r.logs
}
