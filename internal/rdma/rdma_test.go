package rdma

import (
	"bytes"
	"testing"

	"uniaddr/internal/mem"
	"uniaddr/internal/sim"
)

// twoNodes builds an engine with two endpoints whose spaces each have a
// pinned 64 KiB region at 0x100000.
func twoNodes(t *testing.T, params Params) (*sim.Engine, *Fabric, []*mem.AddressSpace) {
	t.Helper()
	eng := sim.NewEngine()
	fab := NewFabric(eng, params)
	var spaces []*mem.AddressSpace
	for i := 0; i < 2; i++ {
		s := mem.NewAddressSpace("p")
		s.MustReserve("rdma", 0x100000, 64*1024, true)
		fab.AddEndpoint(s)
		spaces = append(spaces, s)
	}
	return eng, fab, spaces
}

func TestReadCopiesRemoteBytes(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	payload := []byte("steal me")
	if _, err := spaces[1].Write(0x100040, payload); err != nil {
		t.Fatal(err)
	}
	var got []byte
	var lat uint64
	eng.Spawn("thief", func(p *sim.Proc) {
		buf := make([]byte, len(payload))
		start := p.Now()
		fab.Endpoint(0).Read(p, 1, 0x100040, buf)
		lat = p.Now() - start
		got = buf
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("read %q", got)
	}
	if want := DefaultParams().ReadLatency(len(payload)); lat != want {
		t.Fatalf("latency = %d, want %d", lat, want)
	}
}

func TestWriteLandsAtCompletionTime(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	eng.Spawn("writer", func(p *sim.Proc) {
		fab.Endpoint(0).WriteU64(p, 1, 0x100000, 0xdead)
	})
	var sampledEarly uint64 = 1
	eng.Spawn("sampler", func(p *sim.Proc) {
		p.Advance(1) // long before the write completes
		sampledEarly, _ = spaces[1].ReadU64(0x100000)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sampledEarly != 0 {
		t.Fatalf("write visible before completion: %#x", sampledEarly)
	}
	if v, _ := spaces[1].ReadU64(0x100000); v != 0xdead {
		t.Fatalf("write lost: %#x", v)
	}
}

func TestUnpinnedRemoteAccessPanics(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, DefaultParams())
	s0 := mem.NewAddressSpace("p0")
	s0.MustReserve("rdma", 0x100000, 4096, true)
	fab.AddEndpoint(s0)
	s1 := mem.NewAddressSpace("p1")
	s1.MustReserve("private", 0x100000, 4096, false) // NOT pinned
	fab.AddEndpoint(s1)
	eng.Spawn("thief", func(p *sim.Proc) {
		fab.Endpoint(0).Read(p, 1, 0x100000, make([]byte, 8))
	})
	if _, err := eng.Run(); err == nil {
		t.Fatal("RDMA to unpinned region did not fail")
	}
}

func TestHardwareFetchAdd(t *testing.T) {
	params := DefaultParams()
	params.HardwareFAA = true
	eng, fab, spaces := twoNodes(t, params)
	spaces[1].MustWriteU64(0x100000, 40)
	var old uint64
	eng.Spawn("thief", func(p *sim.Proc) {
		old = fab.Endpoint(0).FetchAdd(p, 1, 0x100000, 2)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if old != 40 {
		t.Fatalf("old = %d, want 40", old)
	}
	if v, _ := spaces[1].ReadU64(0x100000); v != 42 {
		t.Fatalf("value = %d, want 42", v)
	}
}

func TestSoftwareFetchAddThroughServer(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	srv := NewServer(eng, "comm0")
	fab.Endpoint(1).SetServer(srv)
	spaces[1].MustWriteU64(0x100008, 7)
	var old, lat uint64
	eng.Spawn("thief", func(p *sim.Proc) {
		start := p.Now()
		old = fab.Endpoint(0).FetchAdd(p, 1, 0x100008, 1)
		lat = p.Now() - start
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if old != 7 {
		t.Fatalf("old = %d", old)
	}
	if v, _ := spaces[1].ReadU64(0x100008); v != 8 {
		t.Fatalf("value = %d", v)
	}
	want := DefaultParams().SoftwareFAALatency()
	if lat != want {
		t.Fatalf("software FAA latency = %d, want %d", lat, want)
	}
	// Paper: software remote fetch-and-add averages 9.8K cycles. Require
	// the default calibration to be within 15%.
	if lat < 8300 || lat > 11300 {
		t.Fatalf("software FAA latency %d cycles not within 15%% of 9.8K", lat)
	}
	if srv.Handled() != 1 {
		t.Fatalf("server handled %d", srv.Handled())
	}
}

func TestSoftwareFAASerializesConcurrentRequests(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	srv := NewServer(eng, "comm0")
	fab.Endpoint(1).SetServer(srv)
	// Add a third endpoint so two distinct thieves hit the same word.
	s2 := mem.NewAddressSpace("p2")
	s2.MustReserve("rdma", 0x100000, 4096, true)
	fab.AddEndpoint(s2)
	olds := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		i := i
		src := i * 2 // endpoints 0 and 2
		eng.Spawn("thief", func(p *sim.Proc) {
			olds[i] = fab.Endpoint(src).FetchAdd(p, 1, 0x100000, 1)
		})
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if v, _ := spaces[1].ReadU64(0x100000); v != 2 {
		t.Fatalf("final value = %d, want 2", v)
	}
	if !(olds[0] == 0 && olds[1] == 1 || olds[0] == 1 && olds[1] == 0) {
		t.Fatalf("non-serialized FAA results: %v", olds)
	}
}

func TestLocalFetchAddIsCheap(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	spaces[0].MustWriteU64(0x100000, 5)
	var lat uint64
	eng.Spawn("local", func(p *sim.Proc) {
		start := p.Now()
		fab.Endpoint(0).FetchAdd(p, 0, 0x100000, 1)
		lat = p.Now() - start
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if lat != DefaultParams().LocalAtomic {
		t.Fatalf("local FAA latency = %d", lat)
	}
}

func TestReadToVARequiresPinnedLocal(t *testing.T) {
	eng := sim.NewEngine()
	fab := NewFabric(eng, DefaultParams())
	s0 := mem.NewAddressSpace("p0")
	s0.MustReserve("unpinned", 0x200000, 4096, false)
	fab.AddEndpoint(s0)
	s1 := mem.NewAddressSpace("p1")
	s1.MustReserve("rdma", 0x100000, 4096, true)
	fab.AddEndpoint(s1)
	eng.Spawn("thief", func(p *sim.Proc) {
		fab.Endpoint(0).ReadToVA(p, 1, 0x100000, 0x200000, 64)
	})
	if _, err := eng.Run(); err == nil {
		t.Fatal("ReadToVA into unpinned local region did not fail")
	}
}

func TestLatencyModelMonotonicInSize(t *testing.T) {
	p := DefaultParams()
	last := uint64(0)
	for _, n := range []int{0, 8, 64, 512, 4096, 32768, 1 << 20} {
		l := p.ReadLatency(n)
		if l < last {
			t.Fatalf("latency not monotonic at %d bytes", n)
		}
		last = l
	}
	// Large transfers should be bandwidth-dominated: doubling the size
	// should nearly double time.
	l1, l2 := p.ReadLatency(1<<20), p.ReadLatency(2<<20)
	if float64(l2) < 1.8*float64(l1)*0.9 {
		t.Fatalf("large transfers not bandwidth-bound: %d vs %d", l1, l2)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng, fab, _ := twoNodes(t, DefaultParams())
	eng.Spawn("w", func(p *sim.Proc) {
		ep := fab.Endpoint(0)
		ep.ReadU64(p, 1, 0x100000)
		ep.WriteU64(p, 1, 0x100000, 1)
		ep.Write(p, 1, 0x100010, make([]byte, 100))
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := fab.Endpoint(0).Stats()
	if st.Reads != 1 || st.Writes != 2 {
		t.Fatalf("ops: %+v", st)
	}
	if st.BytesRead != 8 || st.BytesWritten != 108 {
		t.Fatalf("bytes: %+v", st)
	}
}

func TestIntraNodeLatencyScaling(t *testing.T) {
	params := DefaultParams()
	params.IntraNodeFactor = 0.25
	eng := sim.NewEngine()
	fab := NewFabric(eng, params)
	for i := 0; i < 3; i++ {
		s := mem.NewAddressSpace("p")
		s.MustReserve("rdma", 0x100000, 4096, true)
		ep := fab.AddEndpoint(s)
		if i < 2 {
			ep.SetNode(0) // 0 and 1 share a node; 2 is remote
		} else {
			ep.SetNode(1)
		}
	}
	var local, remote uint64
	eng.Spawn("bench", func(p *sim.Proc) {
		buf := make([]byte, 64)
		start := p.Now()
		fab.Endpoint(0).Read(p, 1, 0x100000, buf)
		local = p.Now() - start
		start = p.Now()
		fab.Endpoint(0).Read(p, 2, 0x100000, buf)
		remote = p.Now() - start
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if remote != params.ReadLatency(64) {
		t.Fatalf("remote read latency %d, want unscaled %d", remote, params.ReadLatency(64))
	}
	want := uint64(float64(params.ReadLatency(64)) * 0.25)
	if local != want {
		t.Fatalf("intra-node read latency %d, want %d", local, want)
	}
}

func TestIntraNodeFactorDefaultNoop(t *testing.T) {
	p := DefaultParams()
	if p.IntraNodeFactor != 1.0 {
		t.Fatalf("default IntraNodeFactor = %v, want 1 (paper's flat model)", p.IntraNodeFactor)
	}
}
