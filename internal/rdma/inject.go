package rdma

import "errors"

// Fault injection hooks. The fabric itself stays oblivious to *why* an
// operation fails — it consults an Injector (normally internal/fault's
// seeded, sim-clock-driven implementation) before every remote
// operation and either completes it, completes it late, or aborts it
// with an error.
//
// The model guarantees fail-before-effect: an operation that reports
// failure has had NO effect on the target's memory. Failed READs copied
// nothing, failed WRITEs landed nothing, and a failed (dropped or
// timed-out) fetch-and-add was never applied by the communication
// server. This makes blind retries of any fabric operation safe, which
// the reliable (non-Try) endpoint methods rely on.

// OpKind classifies a fabric operation for the injector.
type OpKind int

const (
	// OpRead is a one-sided READ.
	OpRead OpKind = iota
	// OpWrite is a one-sided WRITE.
	OpWrite
	// OpFAA is a hardware remote fetch-and-add.
	OpFAA
	// OpNotice is the request half of a software fetch-and-add (the
	// "RDMA WRITE with remote notice" carrying the request to the comm
	// server). A failed OpNotice models a dropped request: the server
	// never sees it and the initiator times out.
	OpNotice
)

// String returns the op name.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpFAA:
		return "FAA"
	case OpNotice:
		return "NOTICE"
	default:
		return "OP?"
	}
}

// Injector decides the fate of remote operations. Implementations must
// be deterministic functions of their own seeded state and the
// arguments: the simulation engine serialises all calls, so a fixed
// seed reproduces the exact same fault pattern.
type Injector interface {
	// Decide is consulted once per remote operation. extra is added to
	// the operation's model latency (a latency spike); fail aborts the
	// operation after that latency with no remote effect.
	Decide(op OpKind, from, target, bytes int, now uint64) (extra uint64, fail bool)
}

// ErrInjected is the sentinel wrapped by all injector-caused failures.
var ErrInjected = errors.New("rdma: injected fabric fault")

// ErrFAATimeout is returned when a software fetch-and-add request
// received no reply within Params.FAATimeout cycles (the request notice
// was dropped, or the server backlog exceeded the timeout). The
// operation was not applied: the server skips abandoned requests, so
// retrying is safe.
var ErrFAATimeout = errors.New("rdma: software fetch-and-add timed out")

// SetInjector attaches a fault injector to the fabric. nil (the
// default) disables injection entirely; the fast paths then cost
// nothing extra.
func (f *Fabric) SetInjector(inj Injector) { f.injector = inj }

// InjectorAttached reports whether a fault injector is active.
func (f *Fabric) InjectorAttached() bool { return f.injector != nil }
