package rdma

import (
	"testing"

	"uniaddr/internal/obs"
	"uniaddr/internal/sim"
)

// TestEndpointStatsAtQuiescence pins the Stats quiescence contract:
// reading through the checked accessor mid-run panics, post-run it
// returns the same snapshot as the unchecked one.
func TestEndpointStatsAtQuiescence(t *testing.T) {
	eng, fab, _ := twoNodes(t, DefaultParams())
	var midRunPanicked bool
	eng.Spawn("probe", func(p *sim.Proc) {
		buf := make([]byte, 8)
		fab.Endpoint(0).Read(p, 1, 0x100040, buf)
		func() {
			defer func() {
				if recover() != nil {
					midRunPanicked = true
				}
			}()
			fab.Endpoint(0).StatsAtQuiescence()
		}()
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !midRunPanicked {
		t.Fatal("StatsAtQuiescence did not panic mid-run")
	}
	if fab.Endpoint(0).StatsAtQuiescence() != fab.Endpoint(0).Stats() {
		t.Fatal("post-run StatsAtQuiescence differs from Stats")
	}
	if fab.Endpoint(0).Stats().Reads != 1 {
		t.Fatalf("Reads = %d, want 1", fab.Endpoint(0).Stats().Reads)
	}
}

// TestEndpointOpLogging checks that fabric ops land in an attached
// worker log with issue time, latency and target.
func TestEndpointOpLogging(t *testing.T) {
	eng, fab, spaces := twoNodes(t, DefaultParams())
	rec := obs.NewRecorder(2, 64, eng.Now)
	fab.Endpoint(0).SetLog(rec.Worker(0))
	if _, err := spaces[1].Write(0x100040, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	eng.Spawn("init", func(p *sim.Proc) {
		buf := make([]byte, 8)
		fab.Endpoint(0).Read(p, 1, 0x100040, buf)
		fab.Endpoint(0).Write(p, 1, 0x100080, buf)
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Worker(0).Events()
	if len(evs) != 2 {
		t.Fatalf("logged %d events, want 2", len(evs))
	}
	if evs[0].Kind != obs.KRead || evs[1].Kind != obs.KWrite {
		t.Fatalf("kinds = %v, %v", evs[0].Kind, evs[1].Kind)
	}
	for _, e := range evs {
		if e.Peer != 1 {
			t.Errorf("%v targeted peer %d, want 1", e.Kind, e.Peer)
		}
		if e.Arg != 8 {
			t.Errorf("%v moved %d bytes, want 8", e.Kind, e.Arg)
		}
		if e.Dur == 0 {
			t.Errorf("%v has zero latency", e.Kind)
		}
		if e.Failed() {
			t.Errorf("%v marked failed on a clean fabric", e.Kind)
		}
	}
	if evs[1].Time < evs[0].Time+evs[0].Dur {
		t.Error("write issued before the read completed")
	}
}
