package rdma

import (
	"uniaddr/internal/mem"
	"uniaddr/internal/sim"
)

// Server is a node-local communication server: a dedicated core that
// services software fetch-and-add requests for every process on its
// node (paper §6: "the fetch-and-add implementation reserves a
// processing core within a node in advance and uses it as a
// communication server"). With one server per 16-core node, only 15
// cores per node remain for computation — the cluster package accounts
// for this when building machines.
type Server struct {
	proc    *sim.Proc
	queue   []*faaRequest
	handled uint64
	dropped uint64
}

type faaRequest struct {
	fab    *Fabric
	target int
	addr   mem.VA
	delta  uint64
	from   *sim.Proc
	scale  float64 // intra-node latency factor requester→target
	old    uint64
	// done is set by the server the instant it applies the add;
	// abandoned is set by the initiator's timeout. Exactly one of them
	// ends the request: the server skips abandoned requests (so a timed-
	// out FAA is never applied — fail-before-effect), and the timeout
	// callback ignores done requests.
	done      bool
	abandoned bool
}

// NewServer spawns the server process on eng. The server idles
// (blocked, consuming no events) until a request arrives.
func NewServer(eng *sim.Engine, name string) *Server {
	s := &Server{}
	s.proc = eng.Spawn(name, s.run)
	return s
}

// Proc returns the server's simulated process.
func (s *Server) Proc() *sim.Proc { return s.proc }

// Handled returns the number of requests serviced.
func (s *Server) Handled() uint64 { return s.handled }

// Dropped returns the number of requests whose notice the injector
// dropped before they reached the server.
func (s *Server) Dropped() uint64 { return s.dropped }

// request is called from the requesting proc's goroutine. It models the
// full software FAA round trip: the request arrives at the server after
// a WRITE-with-notice latency, waits for the server core, is applied
// (ServerHandling cycles), and the reply returns after a WRITE latency.
// The caller blocks for the whole round trip and receives the old
// value.
//
// Under fault injection the request notice may be dropped (OpNotice
// failure) or arrive late (spike). With Params.FAATimeout > 0 the
// caller gives up after that many cycles and receives ErrFAATimeout;
// the server skips abandoned requests, so the add is guaranteed
// unapplied and the caller may blindly retry. A dropped notice with no
// timeout configured fails after the request latency instead of
// wedging the caller forever.
func (s *Server) request(p *sim.Proc, f *Fabric, scale float64, from, target int, addr mem.VA, delta uint64) (uint64, error) {
	req := &faaRequest{fab: f, target: target, addr: addr, delta: delta, from: p, scale: scale}
	reqLat := scaleLat(f.params.NoticeLatency(16), scale)
	var dropped bool
	if inj := f.injector; inj != nil {
		var extra uint64
		extra, dropped = inj.Decide(OpNotice, from, target, 16, p.Now())
		reqLat += extra
	}
	eng := p.Engine()
	if dropped {
		s.dropped++
	} else {
		eng.After(reqLat, func() {
			if req.abandoned {
				return
			}
			s.queue = append(s.queue, req)
			if s.proc.Blocked() {
				eng.UnblockProc(s.proc, 0)
			}
		})
	}
	timeout := f.params.FAATimeout
	switch {
	case timeout > 0:
		eng.After(timeout, func() {
			if req.done || req.abandoned {
				return
			}
			req.abandoned = true
			eng.UnblockProc(req.from, 0)
		})
	case dropped:
		// No timeout configured: the lost request would block the
		// caller forever. Report the failure as soon as the NIC-side
		// send completes.
		eng.After(reqLat, func() {
			req.abandoned = true
			eng.UnblockProc(req.from, 0)
		})
	}
	p.Block()
	if req.abandoned {
		return 0, ErrFAATimeout
	}
	return req.old, nil
}

// run is the server loop: pop a request, spend the handling cost, apply
// the atomic, send the reply. Requests abandoned by a timed-out
// initiator are skipped without applying the add.
func (s *Server) run(p *sim.Proc) {
	for {
		if len(s.queue) == 0 {
			p.Block()
			continue
		}
		req := s.queue[0]
		s.queue = s.queue[1:]
		if req.abandoned {
			continue
		}
		p.Advance(req.fab.params.ServerHandling)
		if req.abandoned {
			// The initiator gave up while we were busy: do not apply
			// (it may already be retrying) and do not unblock.
			continue
		}
		req.done = true
		req.old = req.fab.applyFAA(req.target, req.addr, req.delta)
		s.handled++
		p.Unblock(req.from, scaleLat(req.fab.params.WriteLatency(8), req.scale))
	}
}
